/// \file bench_omp_scaling.cpp
/// \brief Experiment P5: OpenMP thread scaling of the kernel backend (our
/// CPU substitute for the paper's GPU acceleration claim).  Sweeps the
/// thread count on a fixed 20-qubit state.  On a single-core machine every
/// row degenerates to the 1-thread time; the harness itself is the
/// deliverable.

#include <benchmark/benchmark.h>

#ifdef QCLAB_HAS_OPENMP
#include <omp.h>
#endif

#include "qclab/qclab.hpp"

namespace {

using T = double;
using C = std::complex<T>;

constexpr int kQubits = 20;

void BM_Apply1Threads(benchmark::State& state) {
#ifdef QCLAB_HAS_OPENMP
  omp_set_num_threads(static_cast<int>(state.range(0)));
#endif
  std::vector<C> psi(std::size_t{1} << kQubits);
  psi[0] = C(1);
  const auto u = qclab::qgates::Hadamard<T>(0).matrix();
  for (auto _ : state) {
    qclab::sim::apply1(psi, kQubits, kQubits / 2, u);
    benchmark::DoNotOptimize(psi.data());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Apply1Threads)->DenseRange(1, 4, 1)->UseRealTime();

void BM_SpmvThreads(benchmark::State& state) {
#ifdef QCLAB_HAS_OPENMP
  omp_set_num_threads(static_cast<int>(state.range(0)));
#endif
  const qclab::qgates::Hadamard<T> gate(kQubits / 2);
  const auto extended = qclab::sim::extendedUnitary(kQubits, gate);
  std::vector<C> psi(std::size_t{1} << kQubits);
  psi[0] = C(1);
  for (auto _ : state) {
    psi = extended.apply(psi);
    benchmark::DoNotOptimize(psi.data());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SpmvThreads)->DenseRange(1, 4, 1)->UseRealTime();

void BM_MeasureProbabilityThreads(benchmark::State& state) {
#ifdef QCLAB_HAS_OPENMP
  omp_set_num_threads(static_cast<int>(state.range(0)));
#endif
  std::vector<C> psi(std::size_t{1} << kQubits,
                     C(1.0 / std::sqrt(static_cast<double>(1ULL << kQubits))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qclab::sim::measureProbability0(psi, kQubits, kQubits / 2));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MeasureProbabilityThreads)->DenseRange(1, 4, 1)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();

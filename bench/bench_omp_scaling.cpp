/// \file bench_omp_scaling.cpp
/// \brief Experiment P5: OpenMP thread scaling of the kernel backend (our
/// CPU substitute for the paper's GPU acceleration claim).  Sweeps the
/// thread count on a fixed 20-qubit state.  On a single-core machine every
/// row degenerates to the 1-thread time; the harness itself is the
/// deliverable.
///
/// Prints the whole run as one BENCH_*.json-shaped object (obs::Report)
/// on stdout; `--obs-json <path>` additionally writes it to a file.

#include <cstdio>
#include <string>
#include <vector>

#ifdef QCLAB_HAS_OPENMP
#include <omp.h>
#endif

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

namespace {

using T = double;
using C = std::complex<T>;

constexpr int kQubits = 20;

void setThreads(int threads) {
#ifdef QCLAB_HAS_OPENMP
  omp_set_num_threads(threads);
#else
  (void)threads;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath);
  qclab::obs::Report report("bench_omp_scaling");

  const auto u = qclab::qgates::Hadamard<T>(0).matrix();
  const qclab::qgates::Hadamard<T> gate(kQubits / 2);
  const auto extended = qclab::sim::extendedUnitary(kQubits, gate);

  for (int threads = 1; threads <= 4; ++threads) {
    setThreads(threads);
    const std::string suffix = "/threads=" + std::to_string(threads);

    std::vector<C> psi(std::size_t{1} << kQubits);
    psi[0] = C(1);
    report.add("apply1" + suffix,
               qclab::benchutil::timeNsPerOp([&] {
                 qclab::sim::apply1(psi, kQubits, kQubits / 2, u);
               }),
               "ns/op");

    std::vector<C> phi(std::size_t{1} << kQubits);
    phi[0] = C(1);
    report.add("spmv" + suffix,
               qclab::benchutil::timeNsPerOp([&] { phi = extended.apply(phi); }),
               "ns/op");

    const std::vector<C> uniform(
        std::size_t{1} << kQubits,
        C(1.0 / std::sqrt(static_cast<double>(1ULL << kQubits))));
    volatile T sink = T(0);
    report.add("measureProbability0" + suffix,
               qclab::benchutil::timeNsPerOp([&] {
                 sink = qclab::sim::measureProbability0(uniform, kQubits,
                                                        kQubits / 2);
               }),
               "ns/op");
    (void)sink;
  }

  std::printf("%s\n", report.json().c_str());
  if (!obsJsonPath.empty() && !report.writeJson(obsJsonPath)) {
    std::fprintf(stderr, "error: cannot write obs JSON to %s\n",
                 obsJsonPath.c_str());
    return 1;
  }
  return 0;
}

/// \file bench_dispatch.cpp
/// \brief Adaptive-dispatch benchmark: stabilizer-routed QEC syndrome rounds
/// at 50-200 qubits (far beyond statevector reach), the hybrid
/// Clifford-prefix path on a mixed Clifford+T workload, and the headline
/// acceptance number — the measured tableau cost of a 100-qubit Clifford
/// QEC round against a statevector cost model calibrated at 20 qubits and
/// extrapolated by the 2^(100-20) state-size factor.
///
/// Prints the whole run as one BENCH_*.json-shaped object (obs::Report)
/// on stdout; `--obs-json <path>` additionally writes it to a file.

#include <cmath>
#include <cstdio>
#include <string>

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

namespace {

using T = double;

/// One repetition-code syndrome-extraction round on `n` qubits: data on
/// even wires, ancillas on odd wires.  Each ancilla is entangled with its
/// two data neighbours, measured, and reset — fully Clifford, so the
/// dispatcher routes it to the tableau backend at any width.
qclab::QCircuit<T> qecRound(const int n, const int rounds,
                            const bool withDataPrep) {
  qclab::QCircuit<T> circuit(n);
  if (withDataPrep) {
    // Superpose the data qubits so syndrome outcomes are non-trivial.
    for (int q = 0; q < n; q += 2) circuit.push_back(qclab::qgates::Hadamard<T>(q));
  }
  for (int r = 0; r < rounds; ++r) {
    for (int a = 1; a < n; a += 2) {
      circuit.push_back(qclab::qgates::CX<T>(a - 1, a));
      if (a + 1 < n) circuit.push_back(qclab::qgates::CX<T>(a + 1, a));
    }
    for (int a = 1; a < n; a += 2) {
      circuit.push_back(qclab::Measurement<T>(a));
      circuit.push_back(qclab::Reset<T>(a));
    }
  }
  return circuit;
}

/// Gate count of one round (CX only; measure/reset excluded so the
/// statevector model below stays conservative).
double qecGateCount(const int n, const int rounds) {
  double gates = 0;
  for (int a = 1; a < n; a += 2) gates += (a + 1 < n) ? 2 : 1;
  return gates * rounds;
}

/// Mixed Clifford+T workload: a long Clifford prefix (GHZ ladder + S/CZ
/// mixing), one T layer, and a short Clifford tail — the hybrid path runs
/// the prefix on the tableau, converts once, and finishes on the
/// statevector pipeline.
qclab::QCircuit<T> mixedCliffordT(const int n) {
  qclab::QCircuit<T> circuit(n);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  for (int q = 1; q < n; ++q) circuit.push_back(qclab::qgates::CX<T>(q - 1, q));
  for (int q = 0; q < n; ++q) circuit.push_back(qclab::qgates::SGate<T>(q));
  for (int q = 1; q < n; q += 2) circuit.push_back(qclab::qgates::CZ<T>(q - 1, q));
  for (int q = 0; q < n; q += 4) circuit.push_back(qclab::qgates::TGate<T>(q));
  for (int q = 0; q < n; q += 2) circuit.push_back(qclab::qgates::Hadamard<T>(q));
  return circuit;
}

double timeSampled(const qclab::QCircuit<T>& circuit,
                   const std::uint64_t shots) {
  std::uint64_t seed = 1;
  return qclab::benchutil::timeNsPerOp([&] {
    auto counts = qclab::sim::dispatchSampleCounts(circuit, shots, seed++);
    (void)counts;
  });
}

}  // namespace

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath);
  qclab::obs::Report report("bench_dispatch");

  constexpr std::uint64_t kShots = 256;
  constexpr int kRounds = 3;

  // Stabilizer-routed syndrome sampling at widths no statevector holds.
  for (const int n : {50, 100, 200}) {
    const auto circuit = qecRound(n, kRounds, true);
    const double ns = timeSampled(circuit, kShots);
    report.add("qec-sample/n=" + std::to_string(n) + "/shots=256", ns,
               "ns/op");
  }

  // Hybrid Clifford-prefix routing on a mixed Clifford+T circuit vs the
  // plain statevector path for the same workload.
  {
    const int n = 20;
    const auto circuit = mixedCliffordT(n);
    const std::string bits(static_cast<std::size_t>(n), '0');
    qclab::SimulateOptions autoRoute;
    autoRoute.dispatch = qclab::sim::DispatchMode::kAuto;
    qclab::SimulateOptions svOnly;
    const double autoNs = qclab::benchutil::timeNsPerOp(
        [&] { auto sim = circuit.simulate(bits, autoRoute); });
    const double svNs = qclab::benchutil::timeNsPerOp(
        [&] { auto sim = circuit.simulate(bits, svOnly); });
    report.add("mixed-auto/n=20", autoNs, "ns/op");
    report.add("mixed-statevector/n=20", svNs, "ns/op");
    report.add("mixed-auto-vs-sv/n=20", autoNs > 0 ? svNs / autoNs : 0.0,
               "x");
  }

  // Acceptance metric: measured tableau cost of one 100-qubit QEC-round
  // shot vs a statevector cost model.  Calibrate ns per gate-amplitude on
  // a 20-qubit measurement-free Clifford round, then extrapolate by gate
  // count and the 2^(100-20) state-size factor.  The model ignores the
  // branch forking that 150 mid-circuit measurements would force on the
  // statevector path, so it understates the real cost — the recorded
  // speedup is a floor.
  {
    const int calibN = 20;
    const auto calibCircuit = qecRound(calibN, kRounds, false);
    const auto initial = qclab::basisState<T>(
        std::string(static_cast<std::size_t>(calibN), '0'));
    qclab::SimulateOptions svOnly;
    const double calibNs = qclab::benchutil::timeNsPerOp(
        [&] { auto sim = calibCircuit.simulate(initial, svOnly); });
    const double calibGates = qecGateCount(calibN, kRounds);
    const double perGateAmpNs =
        calibNs / (calibGates * static_cast<double>(1ULL << calibN));
    report.add("sv-calibration/n=20", calibNs, "ns/op");

    const int bigN = 100;
    const auto bigCircuit = qecRound(bigN, kRounds, true);
    const double perShotNs = timeSampled(bigCircuit, kShots) /
                             static_cast<double>(kShots);
    const double modelNs = perGateAmpNs * qecGateCount(bigN, kRounds) *
                           std::pow(2.0, bigN);
    report.add("qec-shot-measured/n=100", perShotNs, "ns/op");
    report.add("speedup-vs-sv-model/n=100",
               perShotNs > 0 ? modelNs / perShotNs : 0.0, "x");
  }

  std::printf("%s\n", report.json().c_str());
  if (!obsJsonPath.empty() && !report.writeJson(obsJsonPath)) {
    std::fprintf(stderr, "error: cannot write obs JSON to %s\n",
                 obsJsonPath.c_str());
    return 1;
  }
  return 0;
}

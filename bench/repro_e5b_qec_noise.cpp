/// \file repro_e5b_qec_noise.cpp
/// \brief Experiment E5b (quantitative companion to paper §5.4): logical
/// error rate of the distance-3 repetition code vs physical bit-flip
/// probability.  Expected shape: logical error = 3p^2 - 2p^3, crossing the
/// unprotected error p at p = 0.5 (pseudo-threshold).

#include <cstdio>

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  const std::string obsProfPath =
      qclab::benchutil::extractObsProfPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath, obsProfPath);
  const qclab::benchutil::WallTimer wallTimer;

  using T = double;
  using namespace qclab;
  using namespace qclab::noise;

  const T h = 1.0 / std::sqrt(2.0);
  const std::vector<std::complex<T>> v = {{h, 0.0}, {0.0, h}};
  std::vector<std::complex<T>> logical(8);
  logical[0] = v[0];
  logical[7] = v[1];

  std::printf("E5b: repetition-code logical error rate (extension of "
              "paper Sec. 5.4)\n");
  std::printf("%10s %16s %16s %16s %10s\n", "p", "unprotected", "measured",
              "3p^2-2p^3", "wins?");
  for (double p = 0.0; p <= 0.6001; p += 0.05) {
    DensityMatrix<T> encoded(dense::kron(v, basisState<T>("0000")));
    simulateDensity(algorithms::repetitionEncoder<T>(5), encoded);
    for (int q = 0; q < 3; ++q) {
      encoded.applyChannel(KrausChannel<T>::bitFlip(p), {q});
    }
    simulateDensity(algorithms::repetitionSyndromeAndCorrect<T>(), encoded);
    const auto dataRho = density::partialTrace(encoded.matrix(), 5, {3, 4});
    const double logicalError = 1.0 - density::fidelity(logical, dataRho);
    const double analytic = 3 * p * p - 2 * p * p * p;
    std::printf("%10.2f %16.6f %16.6f %16.6f %10s\n", p, p, logicalError,
                analytic, logicalError < p - 1e-12 ? "yes" : "no");
  }
  return qclab::benchutil::writeReproReport(obsJsonPath, "repro_e5b_qec_noise",
                                            wallTimer, obsProfPath);
}

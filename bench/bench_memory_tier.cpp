/// \file bench_memory_tier.cpp
/// \brief Tiered state memory experiment: GHZ and QFT simulated with the
/// state on the heap tier, the NUMA first-touch tier, and the out-of-core
/// mmap tier (sim/state_buffer.hpp).  On a single-socket box the NUMA
/// rows are skipped (reported via "numa-nodes"); the mmap rows always
/// run — backed by an unlinked temporary file, they exercise the
/// schedule-driven madvise prefetch walk whose counters the report
/// carries.
///
/// The default register size keeps CI fast; QCLAB_BENCH_TIER_QUBITS
/// raises it (26-30+) to reproduce the out-of-core regime where the
/// state no longer fits comfortably in RAM.  QCLAB_STATE_DIR relocates
/// the backing files (a fast local disk beats a network tmp).
///
/// Prints the whole run as one BENCH_*.json-shaped object (obs::Report)
/// on stdout; `--obs-json <path>` additionally writes it to a file.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

namespace {

using T = double;
using qclab::sim::StateTier;

/// Register size: QCLAB_BENCH_TIER_QUBITS, default 20 (16 MiB state —
/// big enough to stream, small enough for the CI gate).
int benchQubits() {
  if (const char* env = std::getenv("QCLAB_BENCH_TIER_QUBITS")) {
    const int n = std::atoi(env);
    if (n >= 4 && n <= 40) return n;
  }
  return 20;
}

qclab::SimulateOptions tierOptions(StateTier tier) {
  qclab::SimulateOptions options;
  options.fusion = true;
  options.fusionOptions.maxQubits = 2;  // memory-bound sweeps (see
                                        // bench_blocking.cpp)
  options.stateTier.tier = tier;
  return options;
}

/// ns/op of simulating `circuit` from |0...0> with the state on `tier`.
double timeSimulate(const qclab::QCircuit<T>& circuit, StateTier tier) {
  const std::string bits(static_cast<std::size_t>(circuit.nbQubits()), '0');
  const auto options = tierOptions(tier);
  return qclab::benchutil::timeNsPerOp(
      [&] { auto simulation = circuit.simulate(bits, options); });
}

/// Benchmarks one workload across the available tiers.
void benchWorkload(qclab::obs::Report& report, const std::string& name,
                   const qclab::QCircuit<T>& circuit, bool multiSocket) {
  const double dim =
      static_cast<double>(std::size_t{1} << circuit.nbQubits());

  const double heapNs = timeSimulate(circuit, StateTier::kHeap);
  report.add("heap/" + name, heapNs, "ns/op");

  if (multiSocket) {
    // First-touch placement only differentiates itself across sockets;
    // single-node boxes skip the row (reported via "numa-nodes").
    const double numaNs = timeSimulate(circuit, StateTier::kNuma);
    report.add("numa/" + name, numaNs, "ns/op");
    report.add("numa-vs-heap/" + name, numaNs > 0 ? heapNs / numaNs : 0.0,
               "x");
  }

  const double mmapNs = timeSimulate(circuit, StateTier::kMmap);
  report.add("mmap/" + name, mmapNs, "ns/op");
  report.add("mmap-vs-heap/" + name, mmapNs > 0 ? heapNs / mmapNs : 0.0, "x");
  // Amplitudes per second through the out-of-core tier — the throughput
  // figure a 30-qubit run is judged by.
  report.add("mmap-throughput/" + name,
             mmapNs > 0 ? dim / mmapNs : 0.0, "Gamp/s");

  // Bit-identity of the mmap run against the heap reference (one clean
  // run each): the tiers must be indistinguishable in content.
  {
    const std::string bits(static_cast<std::size_t>(circuit.nbQubits()), '0');
    const auto heap = circuit.simulate(bits, tierOptions(StateTier::kHeap));
    const auto mmap = circuit.simulate(bits, tierOptions(StateTier::kMmap));
    const auto& a = heap.branches().front().state;
    const auto& b = mmap.branches().front().state;
    const bool identical =
        a.size() == b.size() &&
        std::memcmp(a.data(), b.data(), a.size() * sizeof(a[0])) == 0;
    report.add("mmap-bit-identical/" + name, identical ? 1.0 : 0.0, "bool");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath);
  qclab::obs::Report report("bench_memory_tier");

  const int n = benchQubits();
  const int nodes = qclab::sim::numaNodeCount();
  const bool multiSocket = nodes > 1;
  report.add("numa-nodes", static_cast<double>(nodes), "nodes");
  if (!multiSocket) {
    std::fprintf(stderr,
                 "note: single NUMA node detected — numa tier rows "
                 "skipped (heap and numa placement coincide)\n");
  }

  benchWorkload(report, "ghz/n=" + std::to_string(n),
                qclab::algorithms::ghz<T>(n), multiSocket);
  benchWorkload(report, "qft/n=" + std::to_string(n),
                qclab::algorithms::qft<T>(n), multiSocket);

  if (qclab::obs::kEnabled) {
    // Lifetime prefetch-walk counters of the mmap runs above.
    const auto& metrics = qclab::obs::metrics();
    report.add("prefetch-issued",
               static_cast<double>(metrics.prefetchIssued()), "granules");
    report.add("prefetch-hits",
               static_cast<double>(metrics.prefetchHits()), "granules");
    report.add("prefetch-retired",
               static_cast<double>(metrics.prefetchRetired()), "granules");
  }

  std::printf("%s\n", report.json().c_str());
  if (!obsJsonPath.empty() && !report.writeJson(obsJsonPath)) {
    std::fprintf(stderr, "error: cannot write obs JSON to %s\n",
                 obsJsonPath.c_str());
    return 1;
  }
  return 0;
}

/// \file repro_e5_qec.cpp
/// \brief Experiment E5 (paper §5.4): distance-3 repetition code protecting
/// v = (1/sqrt(2), i/sqrt(2)) against a bit flip on qubit 0.  The paper
/// reports syndrome result '11' (probability 1) and the restored logical
/// state.  Sweeps all error locations.

#include <cstdio>

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  const std::string obsProfPath =
      qclab::benchutil::extractObsProfPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath, obsProfPath);
  const qclab::benchutil::WallTimer wallTimer;

  using T = double;
  using namespace qclab;

  const T h = 1.0 / std::sqrt(2.0);
  const std::vector<std::complex<T>> v = {{h, 0.0}, {0.0, h}};
  const auto initial = dense::kron(v, basisState<T>("0000"));

  std::printf("E5: repetition-code error correction (paper Sec. 5.4)\n");
  std::printf("%-20s %-12s %s\n", "quantity", "paper", "measured");

  const auto qec = algorithms::repetitionCodeDemo<T>(0);
  const auto simulation = qec.simulate(initial);
  std::printf("%-20s %-12s '%s'\n", "syndrome", "'11'",
              simulation.result(0).c_str());
  std::printf("%-20s %-12s %.4f\n", "probability", "1.0000",
              simulation.probability(0));
  const auto data = reducedStatevector<T>(simulation.state(0), {3, 4},
                                          simulation.result(0));
  std::printf("%-20s %-12s %+.4f%+.4fi\n", "alpha (|000>)", "0.7071",
              data[0].real(), data[0].imag());
  std::printf("%-20s %-12s %+.4f%+.4fi\n", "beta (|111>)", "0.7071i",
              data[7].real(), data[7].imag());

  std::printf("\nerror qubit  syndrome (expected)  logical fidelity\n");
  for (int errorQubit = -1; errorQubit <= 2; ++errorQubit) {
    const auto demo = algorithms::repetitionCodeDemo<T>(errorQubit);
    const auto sweep = demo.simulate(initial);
    const auto reduced = reducedStatevector<T>(sweep.state(0), {3, 4},
                                               sweep.result(0));
    // Fidelity with the ideal logical state alpha|000> + beta|111>.
    const std::complex<T> overlap =
        std::conj(reduced[0]) * v[0] + std::conj(reduced[7]) * v[1];
    std::printf("%8d     '%s' ('%s')%17.6f\n", errorQubit,
                sweep.result(0).c_str(),
                algorithms::expectedSyndrome(errorQubit).c_str(),
                std::norm(overlap));
  }
  return qclab::benchutil::writeReproReport(obsJsonPath, "repro_e5_qec",
                                            wallTimer, obsProfPath);
}

/// \file bench_observable.cpp
/// \brief Experiment P8 (extension): cost of Pauli-observable expectation
/// values as a function of register size and term count — the primitive of
/// variational-algorithm prototyping on top of the simulator.

#include <benchmark/benchmark.h>

#include "obs_main.hpp"

#include "qclab/qclab.hpp"

namespace {

using T = double;
using C = std::complex<T>;

std::vector<C> uniformState(int nbQubits) {
  const std::size_t dim = std::size_t{1} << nbQubits;
  return std::vector<C>(dim, C(1.0 / std::sqrt(static_cast<double>(dim))));
}

void BM_SinglePauliString(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::string paulis(static_cast<std::size_t>(n), 'I');
  paulis[0] = 'X';
  paulis[static_cast<std::size_t>(n / 2)] = 'Z';
  paulis[static_cast<std::size_t>(n - 1)] = 'Y';
  const qclab::PauliString<T> term(paulis, 0.5);
  const auto psi = uniformState(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(term.expectation(psi));
  }
}
BENCHMARK(BM_SinglePauliString)->DenseRange(8, 18, 2);

void BM_IsingEnergy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto hamiltonian = qclab::isingHamiltonian<T>(n, 1.0, 0.5);
  const auto psi = uniformState(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hamiltonian.expectation(psi));
  }
  state.counters["terms"] = static_cast<double>(hamiltonian.nbTerms());
}
BENCHMARK(BM_IsingEnergy)->DenseRange(4, 16, 4);

void BM_IsingVariance(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto hamiltonian = qclab::isingHamiltonian<T>(n, 1.0, 0.5);
  const auto psi = uniformState(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hamiltonian.variance(psi));
  }
}
BENCHMARK(BM_IsingVariance)->DenseRange(4, 16, 4);

void BM_EntanglementEntropy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto circuit = qclab::algorithms::ghz<T>(n);
  const auto psi = circuit.simulate(std::string(n, '0')).state(0);
  std::vector<int> half;
  for (int q = 0; q < n / 2; ++q) half.push_back(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qclab::density::entanglementEntropy(psi, half));
  }
}
BENCHMARK(BM_EntanglementEntropy)->DenseRange(4, 10, 2);

}  // namespace

QCLAB_BENCH_MAIN("bench_observable")

/// \file bench_batch_sweep.cpp
/// \brief Parameter-sweep throughput: a 16-qubit complete-graph QAOA
/// (p=2) swept over many angle sets, naive loop vs. the batched engine.
///
/// The naive loop rebuilds the circuit and calls simulate per member —
/// paying circuit construction, planning, and state allocation every
/// time.  BatchedSimulation compiles the shape once (fusion plan + block
/// schedule + cached parameter-free prefix) and executes members by
/// parameter rebinding.  The engine targets >= 10x on this workload; the
/// report carries the ratio so the regression gate tracks it.
///
/// Prints the run as one BENCH_*.json-shaped object (obs::Report) on
/// stdout; `--obs-json <path>` additionally writes it to a file.

#include <algorithm>
#include <chrono>
#include <complex>
#include <cstdio>
#include <string>
#include <vector>

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

namespace {

using T = double;
using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Complete graph on `n` vertices: the densest QAOA cost layer (one RZZ
/// per edge — n(n-1)/2 diagonal gates per layer).
qclab::algorithms::Graph completeGraph(int n) {
  qclab::algorithms::Graph graph;
  graph.nbVertices = n;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) graph.edges.push_back({i, j});
  }
  return graph;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath);
  qclab::obs::Report report("bench_batch_sweep");

  const int n = 16;
  const int p = 2;
  const std::size_t members = 12;
  const auto graph = completeGraph(n);

  // Member m's angles: a deterministic spread over the sweep grid.
  std::vector<std::vector<T>> gammas(members), betas(members);
  for (std::size_t m = 0; m < members; ++m) {
    for (int layer = 0; layer < p; ++layer) {
      gammas[m].push_back(T(0.1) + T(0.05) * static_cast<T>(m + layer));
      betas[m].push_back(T(0.2) + T(0.03) * static_cast<T>(m) +
                         T(0.1) * static_cast<T>(layer));
    }
  }

  // Naive loop: rebuild + plain simulate per member.
  std::vector<std::vector<std::complex<T>>> naive(members);
  const auto naiveStart = Clock::now();
  for (std::size_t m = 0; m < members; ++m) {
    const auto circuit =
        qclab::algorithms::qaoaCircuit<T>(graph, gammas[m], betas[m]);
    auto simulation = circuit.simulate(std::string(n, '0'));
    naive[m] = simulation.branches().front().state.takeVector();
  }
  const double naiveMs = msSince(naiveStart);

  // Batched engine: one shape compile, members by rebinding.
  const auto prototype =
      qclab::algorithms::qaoaCircuit<T>(graph, gammas[0], betas[0]);
  const auto planStart = Clock::now();
  qclab::sim::BatchedSimulation<T> engine(prototype);
  const double planMs = msSince(planStart);

  std::vector<std::vector<T>> parameterSets(members);
  for (std::size_t m = 0; m < members; ++m) {
    auto instance =
        qclab::algorithms::qaoaCircuit<T>(graph, gammas[m], betas[m]);
    parameterSets[m] = engine.parametersOf(instance);
  }

  const auto batchStart = Clock::now();
  auto results = engine.run(parameterSets);
  const double batchMs = msSince(batchStart);

  // Numerical sanity: members must match the naive reference closely
  // (different kernel schedules, so equality is up to rounding here; the
  // bitwise guarantee against same-options simulate lives in the tests).
  double maxDiff = 0.0;
  for (std::size_t m = 0; m < members; ++m) {
    const auto& state = results[m].branches().front().state;
    for (std::size_t i = 0; i < state.size(); ++i) {
      maxDiff = std::max(maxDiff, std::abs(state[i] - naive[m][i]));
    }
  }

  const double perMemberNaive = naiveMs / static_cast<double>(members);
  const double perMemberBatch =
      (planMs + batchMs) / static_cast<double>(members);
  report.add("naive/qaoa-k16-p2", perMemberNaive, "ms/member");
  report.add("batch/qaoa-k16-p2", perMemberBatch, "ms/member");
  report.add("batch-plan/qaoa-k16-p2", planMs, "ms");
  report.add("batch-vs-naive/qaoa-k16-p2",
             perMemberBatch > 0 ? perMemberNaive / perMemberBatch : 0.0, "x");
  report.add("max-deviation/qaoa-k16-p2", maxDiff, "abs");

  std::printf("%s\n", report.json().c_str());
  if (!obsJsonPath.empty() && !report.writeJson(obsJsonPath)) {
    std::fprintf(stderr, "error: cannot write obs JSON to %s\n",
                 obsJsonPath.c_str());
    return 1;
  }
  return 0;
}

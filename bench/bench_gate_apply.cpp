/// \file bench_gate_apply.cpp
/// \brief Experiment P2: per-gate-type application cost of the QCLAB++-style
/// kernel backend as a function of register size.  The expected shape is
/// O(2^n) per gate with diagonal < single-qubit < controlled < general
/// two-qubit constants.

#include <benchmark/benchmark.h>

#include "obs_main.hpp"

#include "qclab/qclab.hpp"

namespace {

using T = double;
using C = std::complex<T>;

std::vector<C> makeState(int nbQubits) {
  std::vector<C> state(std::size_t{1} << nbQubits);
  state[0] = C(1);
  return state;
}

void BM_Hadamard(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto psi = makeState(n);
  const auto u = qclab::qgates::Hadamard<T>(0).matrix();
  for (auto _ : state) {
    qclab::sim::apply1(psi, n, n / 2, u);
    benchmark::DoNotOptimize(psi.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.size()) *
                          sizeof(C));
}
BENCHMARK(BM_Hadamard)->DenseRange(8, 20, 4);

void BM_DiagonalRz(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto psi = makeState(n);
  const auto u = qclab::qgates::RotationZ<T>(0, 0.7).matrix();
  for (auto _ : state) {
    qclab::sim::applyDiagonal1(psi, n, n / 2, u(0, 0), u(1, 1));
    benchmark::DoNotOptimize(psi.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.size()) *
                          sizeof(C));
}
BENCHMARK(BM_DiagonalRz)->DenseRange(8, 20, 4);

void BM_Cnot(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto psi = makeState(n);
  for (auto _ : state) {
    qclab::sim::applyControlled1(psi, n, {0}, {1}, n - 1,
                                 qclab::dense::pauliX<T>());
    benchmark::DoNotOptimize(psi.data());
  }
}
BENCHMARK(BM_Cnot)->DenseRange(8, 20, 4);

void BM_Toffoli(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto psi = makeState(n);
  for (auto _ : state) {
    qclab::sim::applyControlled1(psi, n, {0, 1}, {1, 1}, n - 1,
                                 qclab::dense::pauliX<T>());
    benchmark::DoNotOptimize(psi.data());
  }
}
BENCHMARK(BM_Toffoli)->DenseRange(8, 20, 4);

void BM_Swap(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto psi = makeState(n);
  for (auto _ : state) {
    qclab::sim::applySwap(psi, n, 0, n - 1);
    benchmark::DoNotOptimize(psi.data());
  }
}
BENCHMARK(BM_Swap)->DenseRange(8, 20, 4);

void BM_GeneralTwoQubit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto psi = makeState(n);
  const auto u = qclab::qgates::RotationXX<T>(0, 1, 0.9).matrix();
  for (auto _ : state) {
    qclab::sim::applyK(psi, n, {0, n - 1}, u);
    benchmark::DoNotOptimize(psi.data());
  }
}
BENCHMARK(BM_GeneralTwoQubit)->DenseRange(8, 20, 4);

// ---- SIMD tier: scalar vs vectorized, long vs short runs --------------
//
// Arg 0 is the register size, arg 1 the dispatch level (0 = scalar,
// 1 = highest detected).  Low qubit INDEX = high bit position = long
// unit-stride runs (the SIMD-friendly case); qubit n-1 has stride-1
// runs where the vector kernels cannot engage.

qclab::sim::SimdLevel benchLevel(const benchmark::State& state) {
  return state.range(1) ? qclab::sim::detectedSimdLevel()
                        : qclab::sim::SimdLevel::kScalar;
}

void BM_Apply1LongRuns(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto previous = qclab::sim::setSimdLevel(benchLevel(state));
  auto psi = makeState(n);
  const auto u = qclab::qgates::Hadamard<T>(0).matrix();
  for (auto _ : state) {
    qclab::sim::apply1(psi, n, 0, u);
    benchmark::DoNotOptimize(psi.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.size()) * sizeof(C));
  state.SetLabel(qclab::sim::simdLevelName(qclab::sim::activeSimdLevel()));
  qclab::sim::setSimdLevel(previous);
}
BENCHMARK(BM_Apply1LongRuns)
    ->ArgsProduct({{8, 12, 16, 20}, {0, 1}});

void BM_Apply1ShortRuns(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto previous = qclab::sim::setSimdLevel(benchLevel(state));
  auto psi = makeState(n);
  const auto u = qclab::qgates::Hadamard<T>(0).matrix();
  for (auto _ : state) {
    qclab::sim::apply1(psi, n, n - 1, u);
    benchmark::DoNotOptimize(psi.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.size()) * sizeof(C));
  state.SetLabel(qclab::sim::simdLevelName(qclab::sim::activeSimdLevel()));
  qclab::sim::setSimdLevel(previous);
}
BENCHMARK(BM_Apply1ShortRuns)
    ->ArgsProduct({{8, 12, 16, 20}, {0, 1}});

void BM_DiagonalLongRuns(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto previous = qclab::sim::setSimdLevel(benchLevel(state));
  auto psi = makeState(n);
  const auto u = qclab::qgates::RotationZ<T>(0, 0.7).matrix();
  for (auto _ : state) {
    qclab::sim::applyDiagonal1(psi, n, 0, u(0, 0), u(1, 1));
    benchmark::DoNotOptimize(psi.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.size()) * sizeof(C));
  state.SetLabel(qclab::sim::simdLevelName(qclab::sim::activeSimdLevel()));
  qclab::sim::setSimdLevel(previous);
}
BENCHMARK(BM_DiagonalLongRuns)
    ->ArgsProduct({{8, 12, 16, 20}, {0, 1}});

// The fused-2 hot path: a dense 4x4 block (what a fused pair of gates
// becomes) applied through apply2's quad-run kernel vs applyK's
// gather/scatter on the same targets.
void BM_Fused2Apply2(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto previous = qclab::sim::setSimdLevel(benchLevel(state));
  auto psi = makeState(n);
  const auto u = qclab::qgates::RotationXX<T>(0, 1, 0.9).matrix();
  for (auto _ : state) {
    qclab::sim::apply2(psi, n, 0, 1, u);
    benchmark::DoNotOptimize(psi.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.size()) * sizeof(C));
  state.SetLabel(qclab::sim::simdLevelName(qclab::sim::activeSimdLevel()));
  qclab::sim::setSimdLevel(previous);
}
BENCHMARK(BM_Fused2Apply2)
    ->ArgsProduct({{8, 12, 16, 20}, {0, 1}});

void BM_Fused2ApplyK(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto psi = makeState(n);
  const auto u = qclab::qgates::RotationXX<T>(0, 1, 0.9).matrix();
  for (auto _ : state) {
    qclab::sim::applyK(psi, n, {0, 1}, u);
    benchmark::DoNotOptimize(psi.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.size()) * sizeof(C));
}
BENCHMARK(BM_Fused2ApplyK)->DenseRange(8, 20, 4);

void BM_MeasureProbability(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto psi = makeState(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qclab::sim::measureProbability0(psi, n, n / 2));
  }
}
BENCHMARK(BM_MeasureProbability)->DenseRange(8, 20, 4);

}  // namespace

QCLAB_BENCH_MAIN("bench_gate_apply")

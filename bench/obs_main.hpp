#pragma once

/// \file obs_main.hpp
/// \brief Drop-in replacement for BENCHMARK_MAIN() that gives every
/// google-benchmark binary the shared `--obs-json <path>` flag: after the
/// benchmarks run, the process-wide obs counters are exported as one
/// BENCH_*.json-shaped object.  Usage (instead of BENCHMARK_MAIN()):
///
///   QCLAB_BENCH_MAIN("bench_gate_apply")

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "qclab/obs/report.hpp"
#include "obs_cli.hpp"

namespace qclab::benchutil {

inline int obsMain(int argc, char** argv, const char* benchName) {
  std::string obsJsonPath = extractObsJsonPath(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!obsJsonPath.empty()) {
    const obs::Report report(benchName);
    if (!report.writeJson(obsJsonPath)) {
      std::fprintf(stderr, "error: cannot write obs JSON to %s\n",
                   obsJsonPath.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace qclab::benchutil

#define QCLAB_BENCH_MAIN(benchName)                              \
  int main(int argc, char** argv) {                              \
    return qclab::benchutil::obsMain(argc, argv, benchName);     \
  }

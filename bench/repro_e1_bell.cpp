/// \file repro_e1_bell.cpp
/// \brief Experiment E1 (paper §2-§3.3, circuit (1)): Hadamard + CNOT +
/// measurements from |00>.  The paper reports results {'00', '11'} with
/// probabilities {0.5, 0.5}.  Prints the paper row and the measured row.

#include <cstdio>

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  const std::string obsProfPath =
      qclab::benchutil::extractObsProfPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath, obsProfPath);
  const qclab::benchutil::WallTimer wallTimer;

  using T = double;
  using namespace qclab;

  QCircuit<T> circuit(2);
  circuit.push_back(std::make_unique<qgates::Hadamard<T>>(0));
  circuit.push_back(std::make_unique<qgates::CNOT<T>>(0, 1));
  circuit.push_back(std::make_unique<Measurement<T>>(0));
  circuit.push_back(std::make_unique<Measurement<T>>(1));

  std::printf("E1: Bell circuit measurement (paper circuit (1), Sec. 3.3)\n");
  std::printf("%-28s %-20s %s\n", "quantity", "paper", "measured");

  // Run with both backends to show the two systems agree.
  const sim::KernelBackend<T> kernel;
  const sim::SparseKronBackend<T> sparse;
  for (const sim::Backend<T>* backend :
       {static_cast<const sim::Backend<T>*>(&kernel),
        static_cast<const sim::Backend<T>*>(&sparse)}) {
    const auto simulation = circuit.simulate("00", *backend);
    std::string results, probabilities;
    for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
      results += "'" + simulation.result(i) + "' ";
      char buffer[16];
      std::snprintf(buffer, sizeof(buffer), "%.4f ",
                    simulation.probability(i));
      probabilities += buffer;
    }
    std::printf("%-28s %-20s %s  [backend: %s]\n", "results", "'00' '11'",
                results.c_str(), backend->name());
    std::printf("%-28s %-20s %s  [backend: %s]\n", "probabilities",
                "0.5 0.5", probabilities.c_str(), backend->name());
  }
  return qclab::benchutil::writeReproReport(obsJsonPath, "repro_e1_bell",
                                            wallTimer, obsProfPath);
}

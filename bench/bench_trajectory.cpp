/// \file bench_trajectory.cpp
/// \brief Monte Carlo trajectory experiment: stochastic unravelling of a
/// noisy circuit as N independent state-vector runs.  A density-matrix
/// simulation stores 4^n amplitudes, so 20+ qubits are out of reach; the
/// trajectory engine keeps 2^n per worker and trades memory for sampling
/// noise.  The timings report ns per trajectory for a 20-qubit GHZ chain
/// under depolarizing gate noise, plus a measurement-heavy readout
/// workload at moderate width, fused and unfused.
///
/// Prints the whole run as one BENCH_*.json-shaped object (obs::Report)
/// on stdout; `--obs-json <path>` additionally writes it to a file.

#include <cstdio>
#include <string>
#include <vector>

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

namespace {

using T = double;

/// GHZ chain on n qubits with a terminal measurement on qubit 0.
qclab::QCircuit<T> ghzCircuit(int n) {
  qclab::QCircuit<T> circuit(n);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  for (int q = 1; q < n; ++q) {
    circuit.push_back(qclab::qgates::CX<T>(q - 1, q));
  }
  circuit.push_back(qclab::Measurement<T>(0));
  return circuit;
}

/// Layered rotation circuit measured on every qubit — measurement-noise
/// heavy, so the fused and unfused paths genuinely differ.
qclab::QCircuit<T> readoutCircuit(int n, int layers) {
  qclab::QCircuit<T> circuit(n);
  for (int layer = 0; layer < layers; ++layer) {
    for (int q = 0; q < n; ++q) {
      circuit.push_back(qclab::qgates::RotationY<T>(q, T(0.3) * (layer + 1)));
    }
    for (int q = 0; q + 1 < n; ++q) {
      circuit.push_back(qclab::qgates::CZ<T>(q, q + 1));
    }
  }
  for (int q = 0; q < n; ++q) {
    circuit.push_back(qclab::Measurement<T>(q));
  }
  return circuit;
}

/// ns per trajectory of a full trajectory-ensemble run.
double timeTrajectories(const qclab::QCircuit<T>& circuit,
                        const qclab::noise::NoiseModel<T>& model,
                        const qclab::noise::TrajectoryOptions& options) {
  const std::string zeros(static_cast<std::size_t>(circuit.nbQubits()), '0');
  const qclab::noise::TrajectorySimulator<T> simulator(circuit, model,
                                                       options);
  const double nsPerRun = qclab::benchutil::timeNsPerOp(
      [&] { auto result = simulator.run(zeros); });
  return nsPerRun / static_cast<double>(options.nbTrajectories);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath);
  qclab::obs::Report report("bench_trajectory");

  // 20+ qubit GHZ under depolarizing gate noise: the regime where the
  // 4^n density matrix is unrepresentable but 2^n trajectories fit.
  for (int n = 18; n <= 20; ++n) {
    qclab::noise::NoiseModel<T> model;
    model.gateNoise = qclab::noise::KrausChannel<T>::depolarizing(T(1e-3));
    qclab::noise::TrajectoryOptions options;
    options.seed = 2026;
    options.nbTrajectories = 4;
    report.add("ghz-depolarizing/n=" + std::to_string(n),
               timeTrajectories(ghzCircuit(n), model, options),
               "ns/trajectory");
  }

  // Measurement-only readout noise at moderate width: gate runs between
  // measurements are noise-free, so fusion genuinely restructures the
  // program.
  for (const bool fusion : {false, true}) {
    qclab::noise::NoiseModel<T> model;
    model.measurementNoise = qclab::noise::KrausChannel<T>::readout(T(0.02));
    qclab::noise::TrajectoryOptions options;
    options.seed = 2026;
    options.nbTrajectories = 16;
    options.fusion = fusion;
    report.add(std::string(fusion ? "fused" : "unfused") + "/readout/n=12",
               timeTrajectories(readoutCircuit(12, 3), model, options),
               "ns/trajectory");
  }

  std::printf("%s\n", report.json().c_str());
  if (!obsJsonPath.empty() && !report.writeJson(obsJsonPath)) {
    std::fprintf(stderr, "error: cannot write obs JSON to %s\n",
                 obsJsonPath.c_str());
    return 1;
  }
  return 0;
}

/// \file repro_e3_tomography.cpp
/// \brief Experiment E3 (paper §5.2): single-qubit tomography of
/// v = (1/sqrt(2), i/sqrt(2)) with 1000 shots per basis, seeded PRNG.
///
/// Paper reports counts_x = [471, 529], S = (1, -0.058, 1, -0.012), and
/// trace distance 0.006.  Our PRNG stream differs from MATLAB's, so the
/// absolute counts differ; the reproduction targets are the statistical
/// shape (counts ~ Binomial(1000, 0.5) in X/Z, deterministic in Y) and the
/// trace-distance magnitude (~1e-2).  A 100x shot run shows the estimate
/// converging, confirming the workflow.

#include <cstdio>

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  const std::string obsProfPath =
      qclab::benchutil::extractObsProfPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath, obsProfPath);
  const qclab::benchutil::WallTimer wallTimer;

  using T = double;
  using namespace qclab;

  const T h = 1.0 / std::sqrt(2.0);
  const std::vector<std::complex<T>> v = {{h, 0.0}, {0.0, h}};
  const auto trueRho = density::densityMatrix(v);

  std::printf("E3: quantum state tomography (paper Sec. 5.2)\n");
  std::printf("%-22s %-22s %s\n", "quantity", "paper", "measured");

  const auto result = algorithms::tomography1Qubit(v, 1000, 1);
  std::printf("%-22s %-22s [%llu, %llu]\n", "counts_x (1000 shots)",
              "[471, 529]",
              static_cast<unsigned long long>(result.counts[0][0]),
              static_cast<unsigned long long>(result.counts[0][1]));
  std::printf("%-22s %-22s [%llu, %llu]\n", "counts_y", "[1000, 0]",
              static_cast<unsigned long long>(result.counts[1][0]),
              static_cast<unsigned long long>(result.counts[1][1]));
  std::printf("%-22s %-22s [%llu, %llu]\n", "counts_z", "~[500, 500]",
              static_cast<unsigned long long>(result.counts[2][0]),
              static_cast<unsigned long long>(result.counts[2][1]));
  std::printf("%-22s %-22s (%.3f, %.3f, %.3f, %.3f)\n", "S coefficients",
              "(1, -0.058, 1, -0.012)", result.coefficients[0],
              result.coefficients[1], result.coefficients[2],
              result.coefficients[3]);
  std::printf("%-22s %-22s %.4f\n", "trace distance", "0.006",
              density::traceDistance(trueRho, result.estimate));

  // Convergence sweep: trace distance shrinks like 1/sqrt(shots).
  std::printf("\nshots -> trace distance (expected ~1/sqrt(shots) decay):\n");
  for (std::uint64_t shots : {100ULL, 1000ULL, 10000ULL, 100000ULL}) {
    const auto sweep = algorithms::tomography1Qubit(v, shots, 1);
    std::printf("  %8llu  %.5f\n", static_cast<unsigned long long>(shots),
                density::traceDistance(trueRho, sweep.estimate));
  }
  return qclab::benchutil::writeReproReport(obsJsonPath, "repro_e3_tomography",
                                            wallTimer, obsProfPath);
}

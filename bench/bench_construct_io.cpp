/// \file bench_construct_io.cpp
/// \brief Experiment P6: circuit construction and I/O cost (paper §2 and
/// §4) — push_back rate, terminal drawing, LaTeX export, OpenQASM export
/// and import, as a function of gate count.

#include <benchmark/benchmark.h>

#include "obs_main.hpp"

#include "qclab/qclab.hpp"

namespace {

using T = double;

qclab::QCircuit<T> layeredCircuit(int nbQubits, int nbGates) {
  qclab::QCircuit<T> circuit(nbQubits);
  qclab::random::Rng rng(7);
  for (int i = 0; i < nbGates; ++i) {
    const int q = static_cast<int>(rng.uniformInt(nbQubits));
    if (i % 3 == 0 && nbQubits > 1) {
      int target = static_cast<int>(rng.uniformInt(nbQubits));
      while (target == q) target = static_cast<int>(rng.uniformInt(nbQubits));
      circuit.push_back(qclab::qgates::CX<T>(q, target));
    } else {
      circuit.push_back(qclab::qgates::Hadamard<T>(q));
    }
  }
  return circuit;
}

void BM_PushBack(benchmark::State& state) {
  const int nbGates = static_cast<int>(state.range(0));
  for (auto _ : state) {
    qclab::QCircuit<T> circuit(8);
    for (int i = 0; i < nbGates; ++i) {
      circuit.push_back(qclab::qgates::Hadamard<T>(i % 8));
    }
    benchmark::DoNotOptimize(circuit.nbObjects());
  }
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(nbGates) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PushBack)->RangeMultiplier(10)->Range(10, 10000);

void BM_Draw(benchmark::State& state) {
  const auto circuit = layeredCircuit(8, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto drawing = circuit.draw();
    benchmark::DoNotOptimize(drawing.data());
  }
}
BENCHMARK(BM_Draw)->RangeMultiplier(4)->Range(16, 1024);

void BM_ToTex(benchmark::State& state) {
  const auto circuit = layeredCircuit(8, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto tex = circuit.toTex();
    benchmark::DoNotOptimize(tex.data());
  }
}
BENCHMARK(BM_ToTex)->RangeMultiplier(4)->Range(16, 1024);

void BM_ToQasm(benchmark::State& state) {
  const auto circuit = layeredCircuit(8, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto qasm = circuit.toQASM();
    benchmark::DoNotOptimize(qasm.data());
  }
}
BENCHMARK(BM_ToQasm)->RangeMultiplier(4)->Range(16, 1024);

void BM_ParseQasm(benchmark::State& state) {
  const auto qasm =
      layeredCircuit(8, static_cast<int>(state.range(0))).toQASM();
  for (auto _ : state) {
    auto circuit = qclab::io::parseQasm<T>(qasm);
    benchmark::DoNotOptimize(circuit.nbObjects());
  }
}
BENCHMARK(BM_ParseQasm)->RangeMultiplier(4)->Range(16, 1024);

void BM_CloneDeepCopy(benchmark::State& state) {
  const auto circuit = layeredCircuit(8, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto copy = circuit.clone();
    benchmark::DoNotOptimize(copy.get());
  }
}
BENCHMARK(BM_CloneDeepCopy)->RangeMultiplier(4)->Range(16, 1024);

void BM_Inverted(benchmark::State& state) {
  const auto circuit = layeredCircuit(8, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto inverse = circuit.inverted();
    benchmark::DoNotOptimize(inverse.nbObjects());
  }
}
BENCHMARK(BM_Inverted)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace

QCLAB_BENCH_MAIN("bench_construct_io")

/// \file bench_fusion.cpp
/// \brief Gate-fusion experiment: fused vs unfused simulation of the QFT
/// and a Trotterized Ising evolution.  Fusion merges runs of adjacent
/// gates into <= k-qubit blocks, so the full-state sweep count drops by
/// the gates-per-block factor; the timings show how much of that survives
/// as wall-clock speedup once the per-block dense arithmetic is paid.
///
/// Prints the whole run as one BENCH_*.json-shaped object (obs::Report)
/// on stdout; `--obs-json <path>` additionally writes it to a file.

#include <cstdio>
#include <string>
#include <vector>

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

namespace {

using T = double;

/// ns/op of simulating `circuit` from |0...0>, fused or not.
double timeSimulate(const qclab::QCircuit<T>& circuit,
                    const qclab::SimulateOptions& options) {
  const auto initial = qclab::basisState<T>(
      std::string(static_cast<std::size_t>(circuit.nbQubits()), '0'));
  return qclab::benchutil::timeNsPerOp(
      [&] { auto simulation = circuit.simulate(initial, options); });
}

/// Benchmarks one workload fused vs unfused and records the scheduler's
/// sweep statistics (one extra fused run feeds the fusion counters).
void benchWorkload(qclab::obs::Report& report, const std::string& name,
                   const qclab::QCircuit<T>& circuit) {
  qclab::SimulateOptions unfused;
  qclab::SimulateOptions fused;
  fused.fusion = true;

  report.add("unfused/" + name, timeSimulate(circuit, unfused), "ns/op");
  report.add("fused/" + name, timeSimulate(circuit, fused), "ns/op");

  // One clean fused run to read the scheduler stats for this workload.
  auto& metrics = qclab::obs::metrics();
  const std::uint64_t gatesInBefore = metrics.fusionGatesIn();
  const std::uint64_t blocksBefore = metrics.fusionBlocks();
  {
    const auto initial = qclab::basisState<T>(
        std::string(static_cast<std::size_t>(circuit.nbQubits()), '0'));
    auto simulation = circuit.simulate(initial, fused);
  }
  const double gatesIn =
      static_cast<double>(metrics.fusionGatesIn() - gatesInBefore);
  const double blocksOut =
      static_cast<double>(metrics.fusionBlocks() - blocksBefore);
  report.add("sweeps-unfused/" + name, gatesIn, "sweeps");
  report.add("sweeps-fused/" + name, blocksOut, "sweeps");
  report.add("sweep-reduction/" + name,
             blocksOut > 0 ? gatesIn / blocksOut : 0.0, "x");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath);
  qclab::obs::Report report("bench_fusion");

  for (int n = 8; n <= 14; n += 2) {
    benchWorkload(report, "qft/n=" + std::to_string(n),
                  qclab::algorithms::qft<T>(n));
  }
  for (int n = 8; n <= 14; n += 2) {
    benchWorkload(
        report, "trotter-ising/n=" + std::to_string(n),
        qclab::algorithms::trotterIsing<T>(n, T(1), T(0.7), T(1), 10));
  }

  std::printf("%s\n", report.json().c_str());
  if (!obsJsonPath.empty() && !report.writeJson(obsJsonPath)) {
    std::fprintf(stderr, "error: cannot write obs JSON to %s\n",
                 obsJsonPath.c_str());
    return 1;
  }
  return 0;
}

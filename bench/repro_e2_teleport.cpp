/// \file repro_e2_teleport.cpp
/// \brief Experiment E2 (paper §5.1): quantum teleportation of
/// v = (1/sqrt(2), i/sqrt(2)).  The paper reports four outcomes with
/// probability 0.25 each, and reducedStatevector recovering
/// (0.7071, 0.7071i) on qubit 2 for every outcome.

#include <cstdio>

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  const std::string obsProfPath =
      qclab::benchutil::extractObsProfPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath, obsProfPath);
  const qclab::benchutil::WallTimer wallTimer;

  using T = double;
  using namespace qclab;

  const T h = 1.0 / std::sqrt(2.0);
  const std::vector<std::complex<T>> v = {{h, 0.0}, {0.0, h}};

  const auto qtc = algorithms::teleportationCircuit<T>();
  const auto simulation = qtc.simulate(algorithms::teleportationInput(v));

  std::printf("E2: quantum teleportation (paper Sec. 5.1)\n");
  std::printf("%-12s %-18s %-18s %-28s\n", "outcome", "paper P", "measured P",
              "reduced q2 state (paper: 0.7071, 0.7071i)");
  for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
    const auto reduced = reducedStatevector<T>(
        simulation.state(i), {0, 1}, simulation.result(i));
    std::printf("'%s'         %-18s %-18.4f (%+.4f%+.4fi, %+.4f%+.4fi)\n",
                simulation.result(i).c_str(), "0.25",
                simulation.probability(i), reduced[0].real(),
                reduced[0].imag(), reduced[1].real(), reduced[1].imag());
  }
  return qclab::benchutil::writeReproReport(obsJsonPath, "repro_e2_teleport",
                                            wallTimer, obsProfPath);
}

/// \file bench_fable.cpp
/// \brief Experiment P11 (extension): FABLE block-encoding synthesis cost
/// and circuit size, with and without angle compression — reproducing the
/// shape of the FABLE paper's compression claim (structured matrices
/// compress dramatically; dense random matrices do not).

#include <benchmark/benchmark.h>

#include "obs_main.hpp"

#include "qclab/qclab.hpp"

namespace {

using T = double;
using C = std::complex<T>;
using M = qclab::dense::Matrix<T>;

M randomMatrix(int n, std::uint64_t seed) {
  const std::size_t dim = std::size_t{1} << n;
  qclab::random::Rng rng(seed);
  M a(dim, dim);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      a(i, j) = C(rng.uniform(-1.0, 1.0));
    }
  }
  return a;
}

M constantMatrix(int n, double value) {
  const std::size_t dim = std::size_t{1} << n;
  M a(dim, dim);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) a(i, j) = C(value);
  }
  return a;
}

void BM_FableSynthesisDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto a = randomMatrix(n, 5);
  std::size_t gates = 0;
  for (auto _ : state) {
    auto encoding = qclab::algorithms::fable(a);
    gates = encoding.circuit.nbObjectsRecursive();
    benchmark::DoNotOptimize(encoding.circuit.nbObjects());
  }
  state.counters["gates"] = static_cast<double>(gates);
}
BENCHMARK(BM_FableSynthesisDense)->DenseRange(1, 4, 1);

void BM_FableSynthesisCompressed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto a = constantMatrix(n, 0.4);  // maximally compressible
  std::size_t gates = 0;
  for (auto _ : state) {
    auto encoding = qclab::algorithms::fable(a, 1e-10);
    gates = encoding.circuit.nbObjectsRecursive();
    benchmark::DoNotOptimize(encoding.circuit.nbObjects());
  }
  state.counters["gates"] = static_cast<double>(gates);
}
BENCHMARK(BM_FableSynthesisCompressed)->DenseRange(1, 4, 1);

void BM_FableSimulate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto encoding = qclab::algorithms::fable(randomMatrix(n, 6));
  const auto initial = qclab::basisState<T>(
      std::string(static_cast<std::size_t>(2 * n + 1), '0'));
  for (auto _ : state) {
    auto simulation = encoding.circuit.simulate(initial);
    benchmark::DoNotOptimize(simulation.state(0).data());
  }
}
BENCHMARK(BM_FableSimulate)->DenseRange(1, 4, 1);

void BM_MultiplexedRySynthesis(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  qclab::random::Rng rng(7);
  std::vector<T> angles(std::size_t{1} << k);
  for (auto& angle : angles) angle = rng.uniform(-3.0, 3.0);
  std::vector<int> controls(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) controls[static_cast<std::size_t>(i)] = i;
  for (auto _ : state) {
    auto circuit = qclab::algorithms::multiplexedRY(controls, k, angles);
    benchmark::DoNotOptimize(circuit.nbObjects());
  }
}
BENCHMARK(BM_MultiplexedRySynthesis)->DenseRange(2, 10, 2);

}  // namespace

QCLAB_BENCH_MAIN("bench_fable")

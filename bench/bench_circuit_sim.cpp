/// \file bench_circuit_sim.cpp
/// \brief Experiment P3: end-to-end simulation throughput for the paper's
/// workload families — QFT, Grover, GHZ, and random circuits — on the
/// default kernel backend.

#include <benchmark/benchmark.h>

#include "obs_main.hpp"

#include "qclab/qclab.hpp"

namespace {

using T = double;

void simulateCircuit(benchmark::State& state,
                     const qclab::QCircuit<T>& circuit) {
  const auto initial = qclab::basisState<T>(
      std::string(static_cast<std::size_t>(circuit.nbQubits()), '0'));
  std::size_t gates = 0;
  for (auto _ : state) {
    auto simulation = circuit.simulate(initial);
    benchmark::DoNotOptimize(simulation.state(0).data());
    gates += circuit.nbObjectsRecursive();
  }
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(gates), benchmark::Counter::kIsRate);
}

void BM_Qft(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  simulateCircuit(state, qclab::algorithms::qft<T>(n));
}
BENCHMARK(BM_Qft)->DenseRange(4, 16, 4);

void BM_Ghz(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  simulateCircuit(state, qclab::algorithms::ghz<T>(n));
}
BENCHMARK(BM_Ghz)->DenseRange(4, 20, 4);

void BM_GroverOneIteration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string marked(static_cast<std::size_t>(n), '1');
  simulateCircuit(state,
                  qclab::algorithms::grover<T>(marked, 1, /*measure=*/false));
}
BENCHMARK(BM_GroverOneIteration)->DenseRange(4, 12, 2);

void BM_RandomCircuit100Gates(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qclab::random::Rng rng(42);
  qclab::QCircuit<T> circuit(n);
  // Inline random circuit builder (H / CX / RZ mix typical of benchmarks).
  for (int i = 0; i < 100; ++i) {
    const int q = static_cast<int>(rng.uniformInt(n));
    switch (rng.uniformInt(3)) {
      case 0:
        circuit.push_back(qclab::qgates::Hadamard<T>(q));
        break;
      case 1: {
        int target = static_cast<int>(rng.uniformInt(n));
        while (target == q) target = static_cast<int>(rng.uniformInt(n));
        circuit.push_back(qclab::qgates::CX<T>(q, target));
        break;
      }
      default:
        circuit.push_back(
            qclab::qgates::RotationZ<T>(q, rng.uniform(-3.14, 3.14)));
        break;
    }
  }
  simulateCircuit(state, circuit);
}
BENCHMARK(BM_RandomCircuit100Gates)->DenseRange(4, 16, 4);

void BM_CircuitMatrixExtraction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto circuit = qclab::algorithms::qft<T>(n);
  for (auto _ : state) {
    auto matrix = circuit.matrix();
    benchmark::DoNotOptimize(matrix.data());
  }
}
BENCHMARK(BM_CircuitMatrixExtraction)->DenseRange(2, 10, 2);

}  // namespace

QCLAB_BENCH_MAIN("bench_circuit_sim")

/// \file bench_stabilizer.cpp
/// \brief Experiment P10 (extension): stabilizer vs state-vector scaling on
/// Clifford workloads — the polynomial-vs-exponential crossover behind the
/// paper's §5.4 footnote on efficient QEC simulation.

#include <benchmark/benchmark.h>

#include "obs_main.hpp"

#include "qclab/qclab.hpp"

namespace {

using T = double;

qclab::QCircuit<T> ghzWithMeasurements(int n) {
  auto circuit = qclab::algorithms::ghz<T>(n);
  for (int q = 0; q < n; ++q) {
    circuit.push_back(qclab::Measurement<T>(q));
  }
  return circuit;
}

void BM_StateVector_GhzShot(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto circuit = ghzWithMeasurements(n);
  const auto initial = qclab::basisState<T>(std::string(n, '0'));
  for (auto _ : state) {
    auto simulation = circuit.simulate(initial);
    benchmark::DoNotOptimize(simulation.branches().data());
  }
}
BENCHMARK(BM_StateVector_GhzShot)->DenseRange(4, 16, 4);

void BM_Stabilizer_GhzShot(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto circuit = ghzWithMeasurements(n);
  qclab::random::Rng rng(1);
  for (auto _ : state) {
    qclab::stabilizer::Tableau tableau(n);
    auto outcome = qclab::stabilizer::simulateShot(circuit, tableau, rng);
    benchmark::DoNotOptimize(outcome.data());
  }
}
BENCHMARK(BM_Stabilizer_GhzShot)->RangeMultiplier(4)->Range(4, 1024);

void BM_Stabilizer_TableauGates(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qclab::stabilizer::Tableau tableau(n);
  int q = 0;
  for (auto _ : state) {
    tableau.h(q);
    tableau.cx(q, (q + 1) % n);
    tableau.s(q);
    q = (q + 1) % n;
    benchmark::DoNotOptimize(&tableau);
  }
}
BENCHMARK(BM_Stabilizer_TableauGates)->RangeMultiplier(4)->Range(16, 1024);

void BM_Stabilizer_Measurement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qclab::random::Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    qclab::stabilizer::Tableau tableau(n);
    for (int q = 0; q < n; ++q) tableau.h(q);
    state.ResumeTiming();
    for (int q = 0; q < n; ++q) {
      benchmark::DoNotOptimize(tableau.measure(q, rng));
    }
  }
}
BENCHMARK(BM_Stabilizer_Measurement)->RangeMultiplier(4)->Range(16, 256);

}  // namespace

QCLAB_BENCH_MAIN("bench_stabilizer")

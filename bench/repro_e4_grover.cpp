/// \file repro_e4_grover.cpp
/// \brief Experiment E4 (paper §5.3): Grover search for |11> on two qubits.
/// The paper reports result '11' with probability 1.0000.  Also sweeps the
/// generalized builder over register sizes against the analytic success
/// probability.

#include <cstdio>

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  const std::string obsProfPath =
      qclab::benchutil::extractObsProfPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath, obsProfPath);
  const qclab::benchutil::WallTimer wallTimer;

  using T = double;
  using namespace qclab;

  // Metered backend: fills the per-path histogram/perf/roofline sections
  // of the exported v3 report (plain kernels underneath, see
  // obs/instrumented.hpp).
  const obs::InstrumentedBackend<T> backend;

  // Paper construction: CZ oracle + H,Z,CZ,H diffuser as blocks.
  QCircuit<T> oracle(2);
  oracle.push_back(std::make_unique<qgates::CZ<T>>(0, 1));
  QCircuit<T> diffuser(2);
  diffuser.push_back(std::make_unique<qgates::Hadamard<T>>(0));
  diffuser.push_back(std::make_unique<qgates::Hadamard<T>>(1));
  diffuser.push_back(std::make_unique<qgates::PauliZ<T>>(0));
  diffuser.push_back(std::make_unique<qgates::PauliZ<T>>(1));
  diffuser.push_back(std::make_unique<qgates::CZ<T>>(0, 1));
  diffuser.push_back(std::make_unique<qgates::Hadamard<T>>(0));
  diffuser.push_back(std::make_unique<qgates::Hadamard<T>>(1));
  oracle.asBlock("oracle");
  diffuser.asBlock("diffuser");

  QCircuit<T> gc(2);
  gc.push_back(std::make_unique<qgates::Hadamard<T>>(0));
  gc.push_back(std::make_unique<qgates::Hadamard<T>>(1));
  gc.push_back(std::make_unique<QCircuit<T>>(oracle));
  gc.push_back(std::make_unique<QCircuit<T>>(diffuser));
  gc.push_back(std::make_unique<Measurement<T>>(0));
  gc.push_back(std::make_unique<Measurement<T>>(1));

  const auto simulation = gc.simulate("00", backend);
  std::printf("E4: Grover search for |11> (paper Sec. 5.3)\n");
  std::printf("%-16s %-12s %s\n", "quantity", "paper", "measured");
  std::printf("%-16s %-12s '%s'\n", "result", "'11'",
              simulation.result(0).c_str());
  std::printf("%-16s %-12s %.4f\n", "probability", "1.0000",
              simulation.probability(0));

  // Generalized sweep: success probability vs analytic formula.
  std::printf("\nn qubits  iterations  P(success) measured  analytic\n");
  for (int n = 2; n <= 8; ++n) {
    const std::string marked(static_cast<std::size_t>(n), '1');
    const int iterations = algorithms::groverIterations(n);
    const auto circuit = algorithms::grover<T>(marked, iterations);
    const auto sweep = circuit.simulate(
        std::string(static_cast<std::size_t>(n), '0'), backend);
    double success = 0.0;
    for (std::size_t i = 0; i < sweep.nbBranches(); ++i) {
      if (sweep.result(i) == marked) success = sweep.probability(i);
    }
    std::printf("%5d %10d %18.4f %12.4f\n", n, iterations, success,
                algorithms::groverSuccessProbability(n, iterations));
  }
  return qclab::benchutil::writeReproReport(obsJsonPath, "repro_e4_grover",
                                            wallTimer, obsProfPath);
}

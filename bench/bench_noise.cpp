/// \file bench_noise.cpp
/// \brief Experiment P9 (extension): cost of density-matrix (noisy)
/// simulation — O(4^n) state, gate conjugation, channel application — and
/// the repetition-code experiment end to end.

#include <benchmark/benchmark.h>

#include "obs_main.hpp"

#include "qclab/qclab.hpp"

namespace {

using T = double;

void BM_DensityGate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qclab::noise::DensityMatrix<T> rho(std::string(n, '0'));
  const qclab::qgates::Hadamard<T> gate(n / 2);
  for (auto _ : state) {
    rho.applyGate(gate);
    benchmark::DoNotOptimize(rho.matrix().data());
  }
}
BENCHMARK(BM_DensityGate)->DenseRange(2, 8, 2);

void BM_DensityChannel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qclab::noise::DensityMatrix<T> rho(std::string(n, '0'));
  const auto channel = qclab::noise::KrausChannel<T>::depolarizing(0.01);
  for (auto _ : state) {
    rho.applyChannel(channel, {n / 2});
    benchmark::DoNotOptimize(rho.matrix().data());
  }
}
BENCHMARK(BM_DensityChannel)->DenseRange(2, 8, 2);

void BM_NoisyBellCircuit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto circuit = qclab::algorithms::ghz<T>(n);
  const auto model = qclab::noise::NoiseModel<T>::depolarizing(0.01);
  for (auto _ : state) {
    auto rho = qclab::noise::simulateDensity(circuit, std::string(n, '0'),
                                             model);
    benchmark::DoNotOptimize(rho.matrix().data());
  }
}
BENCHMARK(BM_NoisyBellCircuit)->DenseRange(2, 8, 2);

void BM_RepetitionCodeExperiment(benchmark::State& state) {
  const double p = 0.05;
  const T h = 1.0 / std::sqrt(2.0);
  const std::vector<std::complex<T>> v = {{h, 0.0}, {0.0, h}};
  const auto initial =
      qclab::dense::kron(v, qclab::basisState<T>("0000"));
  const auto encoder = qclab::algorithms::repetitionEncoder<T>(5);
  const auto corrector =
      qclab::algorithms::repetitionSyndromeAndCorrect<T>();
  const auto channel = qclab::noise::KrausChannel<T>::bitFlip(p);
  for (auto _ : state) {
    qclab::noise::DensityMatrix<T> rho(initial);
    qclab::noise::simulateDensity(encoder, rho);
    for (int q = 0; q < 3; ++q) rho.applyChannel(channel, {q});
    qclab::noise::simulateDensity(corrector, rho);
    benchmark::DoNotOptimize(rho.purity());
  }
}
BENCHMARK(BM_RepetitionCodeExperiment);

}  // namespace

QCLAB_BENCH_MAIN("bench_noise")

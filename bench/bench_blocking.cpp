/// \file bench_blocking.cpp
/// \brief Cache-blocking experiment: 20+ qubit end-to-end simulation with
/// fusion off, fusion without blocking, and fusion + the cache-blocked
/// executor.  At these sizes the state (16-32 MB) no longer fits in L2,
/// so every plain sweep streams it from DRAM; blocking keeps a 2^b-chunk
/// resident while a whole run of low-window blocks is applied, and the
/// effective-GB/s attribution shows the sweeps it amortized away.
///
/// Prints the whole run as one BENCH_*.json-shaped object (obs::Report)
/// on stdout; `--obs-json <path>` additionally writes it to a file.

#include <cstdio>
#include <string>

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

namespace {

using T = double;

/// ns/op of simulating `circuit` from |0...0>.
double timeSimulate(const qclab::QCircuit<T>& circuit,
                    const qclab::SimulateOptions& options) {
  const auto initial = qclab::basisState<T>(
      std::string(static_cast<std::size_t>(circuit.nbQubits()), '0'));
  return qclab::benchutil::timeNsPerOp(
      [&] { auto simulation = circuit.simulate(initial, options); });
}

/// Benchmarks one workload across the three executor modes and records the
/// blocked executor's obs attribution (runs, bytes, effective GB/s).
void benchWorkload(qclab::obs::Report& report, const std::string& name,
                   const qclab::QCircuit<T>& circuit) {
  // Small fusion blocks keep the chunk kernels cheap (1-2 qubit dense /
  // diagonal) so the sweep stays memory-bound -- the regime blocking is
  // built for.  Large dense-k blocks are compute-bound and would mask the
  // bandwidth saving.
  qclab::SimulateOptions unfused;
  qclab::SimulateOptions fusedPlain;
  fusedPlain.fusion = true;
  fusedPlain.fusionOptions.maxQubits = 2;
  fusedPlain.fusionOptions.blocking = false;
  qclab::SimulateOptions fusedBlocked;
  fusedBlocked.fusion = true;
  fusedBlocked.fusionOptions.maxQubits = 2;

  const double plainNs = timeSimulate(circuit, unfused);
  const double fusedNs = timeSimulate(circuit, fusedPlain);
  const double blockedNs = timeSimulate(circuit, fusedBlocked);
  report.add("unfused/" + name, plainNs, "ns/op");
  report.add("fused/" + name, fusedNs, "ns/op");
  report.add("blocked/" + name, blockedNs, "ns/op");
  report.add("blocked-vs-unfused/" + name,
             blockedNs > 0 ? plainNs / blockedNs : 0.0, "x");
  report.add("blocked-vs-fused/" + name,
             blockedNs > 0 ? fusedNs / blockedNs : 0.0, "x");

  if (!qclab::obs::kEnabled) return;
  // One clean blocked run for the kBlocked attribution: bytes are counted
  // as one read+write stream of the state per blocked run (the roofline
  // numerator), so bytes/time is the run's effective bandwidth — it
  // exceeds DRAM bandwidth exactly when blocking kept chunks cache-hot.
  auto& metrics = qclab::obs::metrics();
  auto& histograms = qclab::obs::latencyHistograms();
  const std::uint64_t runsBefore =
      metrics.gateApplications(qclab::sim::KernelPath::kBlocked);
  const std::uint64_t bytesBefore =
      metrics.bytesTouched(qclab::sim::KernelPath::kBlocked);
  const double nsBefore =
      histograms.histogram(qclab::sim::KernelPath::kBlocked).sumNs();
  {
    const auto initial = qclab::basisState<T>(
        std::string(static_cast<std::size_t>(circuit.nbQubits()), '0'));
    auto simulation = circuit.simulate(initial, fusedBlocked);
  }
  const double runs = static_cast<double>(
      metrics.gateApplications(qclab::sim::KernelPath::kBlocked) -
      runsBefore);
  const double bytes = static_cast<double>(
      metrics.bytesTouched(qclab::sim::KernelPath::kBlocked) - bytesBefore);
  const double ns =
      histograms.histogram(qclab::sim::KernelPath::kBlocked).sumNs() -
      nsBefore;
  report.add("blocked-runs/" + name, runs, "runs");
  report.add("blocked-effective-bw/" + name, ns > 0 ? bytes / ns : 0.0,
             "GB/s");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath);
  qclab::obs::Report report("bench_blocking");

  benchWorkload(report, "qft/n=20", qclab::algorithms::qft<T>(20));
  benchWorkload(report, "ghz/n=21", qclab::algorithms::ghz<T>(21));
  benchWorkload(report, "trotter-ising/n=20",
                qclab::algorithms::trotterIsing<T>(20, T(1), T(0.7), T(1), 4));

  std::printf("%s\n", report.json().c_str());
  if (!obsJsonPath.empty() && !report.writeJson(obsJsonPath)) {
    std::fprintf(stderr, "error: cannot write obs JSON to %s\n",
                 obsJsonPath.c_str());
    return 1;
  }
  return 0;
}

#pragma once

/// \file obs_cli.hpp
/// \brief Tiny shared helpers for the bench binaries: the common
/// `--obs-json <path>` flag (export the run's obs::Report as one JSON
/// object), the `--obs-prof <path>` flag (run the SIGPROF sampling
/// profiler and write its collapsed-stack output on exit), crash-handler
/// installation, and a self-calibrating wall-clock timer.  Kept free of
/// google-benchmark so the hand-rolled JSON benches can use it too.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "qclab/obs/obs.hpp"
#include "qclab/obs/report.hpp"

namespace qclab::benchutil {

/// Extracts and strips `--obs-json <path>` (or `--obs-json=<path>`) from
/// argv, returning the path ("" if absent) and compacting argv/argc so the
/// remaining arguments can be handed to another parser.
inline std::string extractObsJsonPath(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--obs-json") == 0 && i + 1 < argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--obs-json=", 11) == 0) {
      path = argv[i] + 11;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

/// Extracts and strips `--obs-prof <path>` (or `--obs-prof=<path>`) from
/// argv, returning the collapsed-stack output path ("" if absent).
inline std::string extractObsProfPath(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--obs-prof") == 0 && i + 1 < argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--obs-prof=", 11) == 0) {
      path = argv[i] + 11;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

/// Shared head of the bench/repro binaries: installs the signal-safe
/// crash handlers (a dying bench leaves a qclab-crash-<pid>.json behind),
/// zeroes every obs registry so the exported report covers exactly this
/// run, enables hardware perf-counter sampling when an export was
/// requested via `--obs-json` (so the "perf" and "roofline" sections
/// carry per-path data), and starts the SIGPROF sampling profiler when
/// `--obs-prof` asked for a collapsed-stack dump.
inline void initObsRun(const std::string& obsJsonPath,
                       const std::string& obsProfPath = std::string()) {
  obs::installCrashHandlers();
  obs::resetAll();
  if (!obsJsonPath.empty()) obs::perfRegistry().enable();
  if (!obsProfPath.empty()) obs::profiler().start();
}

/// Wall-clock nanoseconds since construction — the whole-run timing the
/// repro binaries report as their gated trajectory result.
class WallTimer {
 public:
  double elapsedNs() const {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - begin_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point begin_ =
      std::chrono::steady_clock::now();
};

/// Shared tail of the repro binaries: stops the sampling profiler and
/// writes its collapsed stacks when `--obs-prof <path>` was given, and
/// exports the run's obs::Report (whole-run wall clock attached as
/// "total/run") when `--obs-json <path>` was.  Returns the process exit
/// code.
inline int writeReproReport(const std::string& obsJsonPath,
                            const char* reproName, const WallTimer& timer,
                            const std::string& obsProfPath = std::string()) {
  int exitCode = 0;
  if (!obsProfPath.empty()) {
    obs::profiler().stop();
    if (!obs::profiler().writeCollapsed(obsProfPath.c_str())) {
      std::fprintf(stderr, "error: cannot write collapsed stacks to %s\n",
                   obsProfPath.c_str());
      exitCode = 1;
    }
  }
  if (obsJsonPath.empty()) return exitCode;
  obs::Report report(reproName);
  report.add("total/run", timer.elapsedNs(), "ns");
  if (!report.writeJson(obsJsonPath)) {
    std::fprintf(stderr, "error: cannot write obs JSON to %s\n",
                 obsJsonPath.c_str());
    return 1;
  }
  return exitCode;
}

/// Average wall-clock nanoseconds per call of `f`, self-calibrating the
/// repetition count until one timed block spans at least `minTimeNs`
/// (default 20ms) so short kernels are measured above timer granularity.
template <typename F>
double timeNsPerOp(F&& f, double minTimeNs = 2e7) {
  using clock = std::chrono::steady_clock;
  f();  // warmup (page in the state, warm the caches)
  long reps = 1;
  for (;;) {
    const auto begin = clock::now();
    for (long r = 0; r < reps; ++r) f();
    const double elapsedNs = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             begin)
            .count());
    if (elapsedNs >= minTimeNs || reps >= (1L << 28)) {
      return elapsedNs / static_cast<double>(reps);
    }
    // Aim straight for the target block size instead of a fixed ramp.
    const double scale =
        elapsedNs > 0 ? minTimeNs / elapsedNs * 1.2 : 4.0;
    reps = scale > 4.0 ? static_cast<long>(static_cast<double>(reps) * scale)
                       : reps * 4;
  }
}

}  // namespace qclab::benchutil

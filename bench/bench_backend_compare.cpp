/// \file bench_backend_compare.cpp
/// \brief Experiment P1: the paper's central performance claim — the
/// QCLAB++ in-place kernels vs the MATLAB-QCLAB algorithm of forming the
/// sparse extended unitary I (x) U (x) I and multiplying (paper §3.2).
/// Expected shape: the kernel backend wins at every size and the gap grows
/// with the register size (the sparse path pays O(2^n) matrix construction
/// per gate on top of the multiply).
///
/// Prints the whole run as one BENCH_*.json-shaped object (obs::Report)
/// on stdout; `--obs-json <path>` additionally writes it to a file.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

namespace {

using T = double;
using C = std::complex<T>;

/// ns/op of applying `gate` to a fresh 2^n state through `backend`.
double timeGate(const qclab::sim::Backend<T>& backend, int n,
                const qclab::qgates::QGate<T>& gate) {
  std::vector<C> psi(std::size_t{1} << n);
  psi[0] = C(1);
  return qclab::benchutil::timeNsPerOp([&] { backend.applyGate(psi, n, gate); });
}

/// ns/op of simulating an n-qubit QFT through `backend`.
double timeQft(const qclab::sim::Backend<T>& backend, int n) {
  const auto circuit = qclab::algorithms::qft<T>(n);
  const auto initial =
      qclab::basisState<T>(std::string(static_cast<std::size_t>(n), '0'));
  return qclab::benchutil::timeNsPerOp(
      [&] { auto simulation = circuit.simulate(initial, backend); });
}

void sweepGate(qclab::obs::Report& report, const char* gateName, int maxN,
               int step,
               const std::function<std::unique_ptr<qclab::qgates::QGate<T>>(
                   int)>& makeGate) {
  const qclab::sim::KernelBackend<T> kernel;
  const qclab::sim::SparseKronBackend<T> sparse;
  for (int n = 4; n <= maxN; n += step) {
    const auto gate = makeGate(n);
    report.add(std::string("kernel/") + gateName + "/n=" + std::to_string(n),
               timeGate(kernel, n, *gate), "ns/op");
    report.add(
        std::string("sparse-kron/") + gateName + "/n=" + std::to_string(n),
        timeGate(sparse, n, *gate), "ns/op");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath);
  qclab::obs::Report report("bench_backend_compare");

  sweepGate(report, "hadamard", 16, 2, [](int n) {
    return std::unique_ptr<qclab::qgates::QGate<T>>(
        new qclab::qgates::Hadamard<T>(n / 2));
  });
  sweepGate(report, "cnot", 16, 2, [](int n) {
    return std::unique_ptr<qclab::qgates::QGate<T>>(
        new qclab::qgates::CX<T>(0, n - 1));
  });
  sweepGate(report, "rzz", 16, 4, [](int n) {
    return std::unique_ptr<qclab::qgates::QGate<T>>(
        new qclab::qgates::RotationZZ<T>(0, n - 1, 0.7));
  });

  const qclab::sim::KernelBackend<T> kernel;
  const qclab::sim::SparseKronBackend<T> sparse;
  for (int n = 4; n <= 12; n += 2) {
    report.add("kernel/qft-circuit/n=" + std::to_string(n),
               timeQft(kernel, n), "ns/op");
    report.add("sparse-kron/qft-circuit/n=" + std::to_string(n),
               timeQft(sparse, n), "ns/op");
  }

  std::printf("%s\n", report.json().c_str());
  if (!obsJsonPath.empty() && !report.writeJson(obsJsonPath)) {
    std::fprintf(stderr, "error: cannot write obs JSON to %s\n",
                 obsJsonPath.c_str());
    return 1;
  }
  return 0;
}

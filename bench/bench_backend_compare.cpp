/// \file bench_backend_compare.cpp
/// \brief Experiment P1: the paper's central performance claim — the
/// QCLAB++ in-place kernels vs the MATLAB-QCLAB algorithm of forming the
/// sparse extended unitary I (x) U (x) I and multiplying (paper §3.2).
/// Expected shape: the kernel backend wins at every size and the gap grows
/// with the register size (the sparse path pays O(2^n) matrix construction
/// per gate on top of the multiply).

#include <benchmark/benchmark.h>

#include "qclab/qclab.hpp"

namespace {

using T = double;
using C = std::complex<T>;

template <typename BackendT>
void runGate(benchmark::State& state, const qclab::qgates::QGate<T>& gate) {
  const int n = static_cast<int>(state.range(0));
  std::vector<C> psi(std::size_t{1} << n);
  psi[0] = C(1);
  const BackendT backend;
  for (auto _ : state) {
    backend.applyGate(psi, n, gate);
    benchmark::DoNotOptimize(psi.data());
  }
}

void BM_Kernel_Hadamard(benchmark::State& state) {
  const qclab::qgates::Hadamard<T> gate(static_cast<int>(state.range(0)) / 2);
  runGate<qclab::sim::KernelBackend<T>>(state, gate);
}
BENCHMARK(BM_Kernel_Hadamard)->DenseRange(4, 18, 2);

void BM_SparseKron_Hadamard(benchmark::State& state) {
  const qclab::qgates::Hadamard<T> gate(static_cast<int>(state.range(0)) / 2);
  runGate<qclab::sim::SparseKronBackend<T>>(state, gate);
}
BENCHMARK(BM_SparseKron_Hadamard)->DenseRange(4, 18, 2);

void BM_Kernel_Cnot(benchmark::State& state) {
  const qclab::qgates::CX<T> gate(0, static_cast<int>(state.range(0)) - 1);
  runGate<qclab::sim::KernelBackend<T>>(state, gate);
}
BENCHMARK(BM_Kernel_Cnot)->DenseRange(4, 18, 2);

void BM_SparseKron_Cnot(benchmark::State& state) {
  const qclab::qgates::CX<T> gate(0, static_cast<int>(state.range(0)) - 1);
  runGate<qclab::sim::SparseKronBackend<T>>(state, gate);
}
BENCHMARK(BM_SparseKron_Cnot)->DenseRange(4, 18, 2);

void BM_Kernel_Rzz(benchmark::State& state) {
  const qclab::qgates::RotationZZ<T> gate(
      0, static_cast<int>(state.range(0)) - 1, 0.7);
  runGate<qclab::sim::KernelBackend<T>>(state, gate);
}
BENCHMARK(BM_Kernel_Rzz)->DenseRange(4, 16, 4);

void BM_SparseKron_Rzz(benchmark::State& state) {
  const qclab::qgates::RotationZZ<T> gate(
      0, static_cast<int>(state.range(0)) - 1, 0.7);
  runGate<qclab::sim::SparseKronBackend<T>>(state, gate);
}
BENCHMARK(BM_SparseKron_Rzz)->DenseRange(4, 16, 4);

/// Whole-circuit comparison: a QFT, both backends.
template <typename BackendT>
void runQft(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto circuit = qclab::algorithms::qft<T>(n);
  const BackendT backend;
  const auto initial =
      qclab::basisState<T>(std::string(static_cast<std::size_t>(n), '0'));
  for (auto _ : state) {
    auto simulation = circuit.simulate(initial, backend);
    benchmark::DoNotOptimize(simulation.state(0).data());
  }
}

void BM_Kernel_QftCircuit(benchmark::State& state) {
  runQft<qclab::sim::KernelBackend<T>>(state);
}
BENCHMARK(BM_Kernel_QftCircuit)->DenseRange(4, 14, 2);

void BM_SparseKron_QftCircuit(benchmark::State& state) {
  runQft<qclab::sim::SparseKronBackend<T>>(state);
}
BENCHMARK(BM_SparseKron_QftCircuit)->DenseRange(4, 14, 2);

}  // namespace

BENCHMARK_MAIN();

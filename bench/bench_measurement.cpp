/// \file bench_measurement.cpp
/// \brief Experiment P4: cost of the measurement machinery — probability
/// accumulation, collapse, branching simulation, and `counts` shot sampling
/// (paper §3.3 and §5.2).

#include <benchmark/benchmark.h>

#include "obs_main.hpp"

#include "qclab/qclab.hpp"

namespace {

using T = double;
using C = std::complex<T>;

void BM_ProbabilityAndCollapse(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    // Uniform superposition so both outcomes stay alive.
    std::vector<C> psi(std::size_t{1} << n,
                       C(1.0 / std::sqrt(static_cast<double>(1ULL << n))));
    state.ResumeTiming();
    const T p0 = qclab::sim::measureProbability0(psi, n, n / 2);
    qclab::sim::collapse(psi, n, n / 2, 0, p0);
    benchmark::DoNotOptimize(psi.data());
  }
}
BENCHMARK(BM_ProbabilityAndCollapse)->DenseRange(8, 20, 4);

void BM_MidCircuitBranching(benchmark::State& state) {
  // k measured qubits -> 2^k branches; cost grows geometrically.
  const int nbMeasured = static_cast<int>(state.range(0));
  const int n = 10;
  qclab::QCircuit<T> circuit(n);
  for (int q = 0; q < n; ++q) {
    circuit.push_back(qclab::qgates::Hadamard<T>(q));
  }
  for (int q = 0; q < nbMeasured; ++q) {
    circuit.push_back(qclab::Measurement<T>(q));
  }
  const auto initial = qclab::basisState<T>(std::string(n, '0'));
  for (auto _ : state) {
    auto simulation = circuit.simulate(initial);
    benchmark::DoNotOptimize(simulation.branches().data());
  }
  state.counters["branches"] = static_cast<double>(1ULL << nbMeasured);
}
BENCHMARK(BM_MidCircuitBranching)->DenseRange(1, 8, 1);

void BM_BasisChangeMeasurement(benchmark::State& state) {
  // X-basis measurement costs two extra apply1 calls per branch.
  const int n = static_cast<int>(state.range(0));
  qclab::QCircuit<T> circuit(n);
  circuit.push_back(qclab::Measurement<T>(n / 2, 'x'));
  const auto initial = qclab::basisState<T>(
      std::string(static_cast<std::size_t>(n), '0'));
  for (auto _ : state) {
    auto simulation = circuit.simulate(initial);
    benchmark::DoNotOptimize(simulation.branches().data());
  }
}
BENCHMARK(BM_BasisChangeMeasurement)->DenseRange(8, 16, 4);

void BM_CountsSampling(benchmark::State& state) {
  const std::uint64_t shots = static_cast<std::uint64_t>(state.range(0));
  qclab::QCircuit<T> circuit(4);
  for (int q = 0; q < 4; ++q) {
    circuit.push_back(qclab::qgates::Hadamard<T>(q));
    circuit.push_back(qclab::Measurement<T>(q));
  }
  const auto simulation = circuit.simulate("0000");
  qclab::random::Rng rng(1);
  for (auto _ : state) {
    auto counts = simulation.counts(shots, rng);
    benchmark::DoNotOptimize(counts.data());
  }
  state.counters["shots/s"] = benchmark::Counter(
      static_cast<double>(shots) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CountsSampling)->RangeMultiplier(10)->Range(100, 1000000);

void BM_DirectSampling(benchmark::State& state) {
  // Direct |amplitude|^2 sampling of all qubits: the fast path for
  // terminal measurements — compare with BM_MidCircuitBranching, which
  // pays 2^k branches for k measured qubits.
  const int n = static_cast<int>(state.range(0));
  qclab::QCircuit<T> circuit(n);
  for (int q = 0; q < n; ++q) {
    circuit.push_back(qclab::qgates::Hadamard<T>(q));
  }
  const auto psi =
      circuit.simulate(std::string(static_cast<std::size_t>(n), '0'))
          .state(0);
  qclab::random::Rng rng(3);
  for (auto _ : state) {
    auto counts = qclab::sampleStateCounts(psi, 1024, rng);
    benchmark::DoNotOptimize(counts.data());
  }
}
BENCHMARK(BM_DirectSampling)->DenseRange(4, 16, 4);

void BM_Reset(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qclab::QCircuit<T> circuit(n);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  circuit.push_back(qclab::Reset<T>(0));
  const auto initial = qclab::basisState<T>(
      std::string(static_cast<std::size_t>(n), '0'));
  for (auto _ : state) {
    auto simulation = circuit.simulate(initial);
    benchmark::DoNotOptimize(simulation.branches().data());
  }
}
BENCHMARK(BM_Reset)->DenseRange(8, 16, 4);

}  // namespace

QCLAB_BENCH_MAIN("bench_measurement")

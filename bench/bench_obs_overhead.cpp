/// \file bench_obs_overhead.cpp
/// \brief Self-enforcing overhead budget of the observability layer.
///
/// Simulates the GHZ workload (H + chained CX, default n=20) through the
/// plain default backend and through the fully metered v4 path — an
/// InstrumentedBackend with perf-counter sampling, the always-on flight
/// recorder, AND the numerical-health sentinels (kLog policy) enabled —
/// in interleaved plain/instrumented PAIRS.  The obs machinery is toggled
/// around each timed call so the plain side pays none of the v4 cost and
/// the instrumented side pays all of it.
///
/// Each pair yields one overhead ratio; the verdict is the MEDIAN OF THE
/// PER-PAIR RATIOS over at least 5 pairs, not a ratio of two medians.  A
/// single slow outlier run (page cache miss, scheduler hiccup) lands in
/// one pair and is voted out by the other pairs' ratios, where the old
/// ratio-of-medians could tip the whole verdict on one noisy side.  The
/// median ratio must stay within `--max-overhead` (default 3%) of 1.0; a
/// breach is re-measured once with doubled pairs and then fails the
/// process with exit 1, which qclab_bench_trajectory propagates into the
/// bench-regression gate.
///
/// Under QCLAB_OBS_DISABLED both sides compile to the same plain run, so
/// the ratio sits at ~1.0 and the binary doubles as a no-op check in the
/// obs-disabled CI leg.
///
/// Flags: --n <qubits>, --samples <pairs>, --max-overhead <frac>
/// (QCLAB_OBS_OVERHEAD_TOL overrides the default), plus the shared
/// --obs-json <path>.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

namespace {

using T = double;

qclab::QCircuit<T> ghz(int n) {
  qclab::QCircuit<T> circuit(n);
  circuit.push_back(std::make_unique<qclab::qgates::Hadamard<T>>(0));
  for (int q = 1; q < n; ++q) {
    circuit.push_back(std::make_unique<qclab::qgates::CNOT<T>>(q - 1, q));
  }
  return circuit;
}

/// Wall ns of one simulate from |0...0> through `backend`.
double timeOnce(const qclab::QCircuit<T>& circuit,
                const std::vector<std::complex<T>>& initial,
                const qclab::sim::Backend<T>& backend) {
  const auto begin = std::chrono::steady_clock::now();
  auto simulation = circuit.simulate(initial, backend);
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - begin)
          .count());
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// Puts the obs layer in the state whose cost the next timed run should
/// measure: everything v4 pays on the instrumented side (flight recorder
/// on, sentinels logging at the default cadence), nothing on the plain
/// side.
void setObsActive(bool active) {
  if (active) {
    qclab::obs::flightRecorder().enable();
    qclab::obs::SentinelConfig config;  // kLog, default interval/tolerance
    qclab::obs::sentinel().configure(config);
  } else {
    qclab::obs::flightRecorder().disable();
    qclab::obs::SentinelConfig config;
    config.policy = qclab::obs::SentinelPolicy::kOff;
    qclab::obs::sentinel().configure(config);
  }
}

struct OverheadSample {
  double plainNs = 0.0;         ///< median of the plain pair halves
  double instrumentedNs = 0.0;  ///< median of the instrumented halves
  double ratio = 0.0;           ///< MEDIAN of the per-pair ratios
};

/// Interleaved plain/instrumented pairs: the two halves of a pair run
/// back to back, so slow drift (thermal, noisy neighbors) hits both
/// sides of each ratio equally, and the median over pair ratios rejects
/// outlier pairs entirely.
OverheadSample measure(const qclab::QCircuit<T>& circuit,
                       const std::vector<std::complex<T>>& initial,
                       const qclab::sim::Backend<T>& plain,
                       const qclab::sim::Backend<T>& instrumented,
                       int pairs) {
  setObsActive(false);
  timeOnce(circuit, initial, plain);  // warm pages + caches
  setObsActive(true);
  timeOnce(circuit, initial, instrumented);  // warm the obs registries too
  std::vector<double> plainNs;
  std::vector<double> instrumentedNs;
  std::vector<double> ratios;
  plainNs.reserve(static_cast<std::size_t>(pairs));
  instrumentedNs.reserve(static_cast<std::size_t>(pairs));
  ratios.reserve(static_cast<std::size_t>(pairs));
  for (int s = 0; s < pairs; ++s) {
    setObsActive(false);
    const double plainRun = timeOnce(circuit, initial, plain);
    setObsActive(true);
    const double instrumentedRun = timeOnce(circuit, initial, instrumented);
    plainNs.push_back(plainRun);
    instrumentedNs.push_back(instrumentedRun);
    ratios.push_back(plainRun > 0.0 ? instrumentedRun / plainRun : 1.0);
  }
  setObsActive(false);
  OverheadSample out;
  out.plainNs = median(plainNs);
  out.instrumentedNs = median(instrumentedNs);
  out.ratio = median(ratios);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath);
  // The instrumented side must pay the full metered cost — perf sampling
  // on — whether or not an export was requested.  The flight recorder and
  // sentinels are toggled per pair half by setObsActive().
  qclab::obs::perfRegistry().enable();

  int n = 20;
  int pairs = 15;
  double maxOverhead = 0.03;
  if (const char* tol = std::getenv("QCLAB_OBS_OVERHEAD_TOL")) {
    const double value = std::atof(tol);
    if (value > 0.0) maxOverhead = value;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      pairs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-overhead") == 0 &&
               i + 1 < argc) {
      maxOverhead = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      n = 16;
      pairs = 7;
    }
  }
  if (n < 2) n = 2;
  if (pairs < 5) pairs = 5;  // a median of ratios needs a real sample

  const auto circuit = ghz(n);
  const auto initial = qclab::basisState<T>(
      std::string(static_cast<std::size_t>(n), '0'));
  const auto& plain = qclab::sim::defaultBackend<T>();
  const qclab::obs::InstrumentedBackend<T> instrumented(plain);

  OverheadSample result =
      measure(circuit, initial, plain, instrumented, pairs);
  if (result.ratio > 1.0 + maxOverhead) {
    // One noise-resistant retry before declaring a real regression.
    std::fprintf(stderr,
                 "bench_obs_overhead: ratio %.4f over budget, re-measuring "
                 "with %d pairs\n",
                 result.ratio, 2 * pairs);
    result = measure(circuit, initial, plain, instrumented, 2 * pairs);
  }

  const std::string suffix = "/ghz/n=" + std::to_string(n);
  std::printf("bench_obs_overhead: ghz n=%d, %d pairs\n", n, pairs);
  std::printf("  plain        %12.0f ns/run\n", result.plainNs);
  std::printf("  instrumented %12.0f ns/run (flight + sentinel on)\n",
              result.instrumentedNs);
  std::printf("  overhead     %12.4f x median-of-ratios (budget %.2f)\n",
              result.ratio, 1.0 + maxOverhead);

  qclab::obs::Report report("bench_obs_overhead");
  report.add("simulate-plain" + suffix, result.plainNs, "ns/op");
  report.add("simulate-instrumented" + suffix, result.instrumentedNs,
             "ns/op");
  report.add("overhead" + suffix, result.ratio, "x");
  if (!obsJsonPath.empty() && !report.writeJson(obsJsonPath)) {
    std::fprintf(stderr, "error: cannot write obs JSON to %s\n",
                 obsJsonPath.c_str());
    return 1;
  }

  if (result.ratio > 1.0 + maxOverhead) {
    std::fprintf(stderr,
                 "bench_obs_overhead: FAIL — instrumented simulate is "
                 "%.2f%% slower than plain (budget %.0f%%)\n",
                 (result.ratio - 1.0) * 100.0, maxOverhead * 100.0);
    return 1;
  }
  return 0;
}

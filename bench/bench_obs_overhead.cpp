/// \file bench_obs_overhead.cpp
/// \brief Self-enforcing overhead budget of the observability layer.
///
/// Simulates the GHZ workload (H + chained CX, default n=20) through the
/// plain default backend and through the fully metered path — an
/// InstrumentedBackend with perf-counter sampling enabled — in
/// interleaved single-run samples, and compares the medians.  The
/// instrumented median must stay within `--max-overhead` (default 3%) of
/// the plain median; a breach is re-measured once with doubled samples
/// and then fails the process with exit 1, which qclab_bench_trajectory
/// propagates into the bench-regression gate.
///
/// Under QCLAB_OBS_DISABLED both sides compile to the same plain run, so
/// the ratio sits at ~1.0 and the binary doubles as a no-op check in the
/// obs-disabled CI leg.
///
/// Flags: --n <qubits>, --samples <count>, --max-overhead <frac>
/// (QCLAB_OBS_OVERHEAD_TOL overrides the default), plus the shared
/// --obs-json <path>.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "qclab/qclab.hpp"
#include "obs_cli.hpp"

namespace {

using T = double;

qclab::QCircuit<T> ghz(int n) {
  qclab::QCircuit<T> circuit(n);
  circuit.push_back(std::make_unique<qclab::qgates::Hadamard<T>>(0));
  for (int q = 1; q < n; ++q) {
    circuit.push_back(std::make_unique<qclab::qgates::CNOT<T>>(q - 1, q));
  }
  return circuit;
}

/// Wall ns of one simulate from |0...0> through `backend`.
double timeOnce(const qclab::QCircuit<T>& circuit,
                const std::vector<std::complex<T>>& initial,
                const qclab::sim::Backend<T>& backend) {
  const auto begin = std::chrono::steady_clock::now();
  auto simulation = circuit.simulate(initial, backend);
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - begin)
          .count());
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// Interleaved A/B medians: plain and instrumented samples alternate so
/// slow drift (thermal, noisy neighbors) hits both sides equally.
struct OverheadSample {
  double plainNs = 0.0;
  double instrumentedNs = 0.0;
  double ratio = 0.0;
};

OverheadSample measure(const qclab::QCircuit<T>& circuit,
                       const std::vector<std::complex<T>>& initial,
                       const qclab::sim::Backend<T>& plain,
                       const qclab::sim::Backend<T>& instrumented,
                       int samples) {
  timeOnce(circuit, initial, plain);         // warm pages + caches
  timeOnce(circuit, initial, instrumented);  // warm the obs registries too
  std::vector<double> plainNs;
  std::vector<double> instrumentedNs;
  plainNs.reserve(static_cast<std::size_t>(samples));
  instrumentedNs.reserve(static_cast<std::size_t>(samples));
  for (int s = 0; s < samples; ++s) {
    plainNs.push_back(timeOnce(circuit, initial, plain));
    instrumentedNs.push_back(timeOnce(circuit, initial, instrumented));
  }
  OverheadSample out;
  out.plainNs = median(plainNs);
  out.instrumentedNs = median(instrumentedNs);
  out.ratio = out.plainNs > 0.0 ? out.instrumentedNs / out.plainNs : 1.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string obsJsonPath =
      qclab::benchutil::extractObsJsonPath(argc, argv);
  qclab::benchutil::initObsRun(obsJsonPath);
  // The instrumented side must pay the full v3 cost — perf sampling on —
  // whether or not an export was requested.
  qclab::obs::perfRegistry().enable();

  int n = 20;
  int samples = 15;
  double maxOverhead = 0.03;
  if (const char* tol = std::getenv("QCLAB_OBS_OVERHEAD_TOL")) {
    const double value = std::atof(tol);
    if (value > 0.0) maxOverhead = value;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      samples = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-overhead") == 0 &&
               i + 1 < argc) {
      maxOverhead = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      n = 16;
      samples = 7;
    }
  }
  if (n < 2) n = 2;
  if (samples < 3) samples = 3;

  const auto circuit = ghz(n);
  const auto initial = qclab::basisState<T>(
      std::string(static_cast<std::size_t>(n), '0'));
  const auto& plain = qclab::sim::defaultBackend<T>();
  const qclab::obs::InstrumentedBackend<T> instrumented(plain);

  OverheadSample result =
      measure(circuit, initial, plain, instrumented, samples);
  if (result.ratio > 1.0 + maxOverhead) {
    // One noise-resistant retry before declaring a real regression.
    std::fprintf(stderr,
                 "bench_obs_overhead: ratio %.4f over budget, re-measuring "
                 "with %d samples\n",
                 result.ratio, 2 * samples);
    result = measure(circuit, initial, plain, instrumented, 2 * samples);
  }

  const std::string suffix = "/ghz/n=" + std::to_string(n);
  std::printf("bench_obs_overhead: ghz n=%d, %d samples\n", n, samples);
  std::printf("  plain        %12.0f ns/run\n", result.plainNs);
  std::printf("  instrumented %12.0f ns/run\n", result.instrumentedNs);
  std::printf("  overhead     %12.4f x (budget %.2f)\n", result.ratio,
              1.0 + maxOverhead);

  qclab::obs::Report report("bench_obs_overhead");
  report.add("simulate-plain" + suffix, result.plainNs, "ns/op");
  report.add("simulate-instrumented" + suffix, result.instrumentedNs,
             "ns/op");
  report.add("overhead" + suffix, result.ratio, "x");
  if (!obsJsonPath.empty() && !report.writeJson(obsJsonPath)) {
    std::fprintf(stderr, "error: cannot write obs JSON to %s\n",
                 obsJsonPath.c_str());
    return 1;
  }

  if (result.ratio > 1.0 + maxOverhead) {
    std::fprintf(stderr,
                 "bench_obs_overhead: FAIL — instrumented simulate is "
                 "%.2f%% slower than plain (budget %.0f%%)\n",
                 (result.ratio - 1.0) * 100.0, maxOverhead * 100.0);
    return 1;
  }
  return 0;
}

/// \file bench_transpile.cpp
/// \brief Experiment P7 (ablation): effect of the optimization passes on
/// gate count and downstream simulation time for rotation-heavy circuits
/// (the workload class of the F3C compiler built on QCLAB).

#include <benchmark/benchmark.h>

#include "obs_main.hpp"

#include "qclab/qclab.hpp"

namespace {

using T = double;

/// Trotter-like circuit: layers of RZ/RZZ with many same-axis repeats —
/// exactly what rotation fusion is for.
qclab::QCircuit<T> trotterLikeCircuit(int nbQubits, int layers) {
  qclab::QCircuit<T> circuit(nbQubits);
  qclab::random::Rng rng(13);
  for (int layer = 0; layer < layers; ++layer) {
    for (int q = 0; q < nbQubits; ++q) {
      circuit.push_back(
          qclab::qgates::RotationZ<T>(q, rng.uniform(-0.1, 0.1)));
      circuit.push_back(
          qclab::qgates::RotationZ<T>(q, rng.uniform(-0.1, 0.1)));
    }
    for (int q = 0; q + 1 < nbQubits; ++q) {
      circuit.push_back(
          qclab::qgates::RotationZZ<T>(q, q + 1, rng.uniform(-0.1, 0.1)));
      circuit.push_back(
          qclab::qgates::RotationZZ<T>(q, q + 1, rng.uniform(-0.1, 0.1)));
    }
  }
  return circuit;
}

void BM_OptimizePass(benchmark::State& state) {
  const auto circuit = trotterLikeCircuit(6, static_cast<int>(state.range(0)));
  std::size_t before = circuit.nbObjectsRecursive();
  std::size_t after = 0;
  for (auto _ : state) {
    auto optimized = qclab::transpile::optimize(circuit);
    after = optimized.nbObjectsRecursive();
    benchmark::DoNotOptimize(optimized.nbObjects());
  }
  state.counters["gates_before"] = static_cast<double>(before);
  state.counters["gates_after"] = static_cast<double>(after);
}
BENCHMARK(BM_OptimizePass)->DenseRange(1, 9, 2);

void BM_SimulateUnoptimized(benchmark::State& state) {
  const auto circuit = trotterLikeCircuit(10, static_cast<int>(state.range(0)));
  const auto initial = qclab::basisState<T>(std::string(10, '0'));
  for (auto _ : state) {
    auto simulation = circuit.simulate(initial);
    benchmark::DoNotOptimize(simulation.state(0).data());
  }
  state.counters["gates"] =
      static_cast<double>(circuit.nbObjectsRecursive());
}
BENCHMARK(BM_SimulateUnoptimized)->DenseRange(1, 9, 2);

void BM_SimulateOptimized(benchmark::State& state) {
  const auto circuit = qclab::transpile::optimize(
      trotterLikeCircuit(10, static_cast<int>(state.range(0))));
  const auto initial = qclab::basisState<T>(std::string(10, '0'));
  for (auto _ : state) {
    auto simulation = circuit.simulate(initial);
    benchmark::DoNotOptimize(simulation.state(0).data());
  }
  state.counters["gates"] =
      static_cast<double>(circuit.nbObjectsRecursive());
}
BENCHMARK(BM_SimulateOptimized)->DenseRange(1, 9, 2);

void BM_FuseRotationsOnly(benchmark::State& state) {
  const auto circuit = trotterLikeCircuit(6, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto fused = qclab::transpile::fuseRotations(circuit);
    benchmark::DoNotOptimize(fused.nbObjects());
  }
}
BENCHMARK(BM_FuseRotationsOnly)->DenseRange(1, 9, 4);

void BM_CancelInversePairsOnly(benchmark::State& state) {
  // H-heavy circuit with many adjacent self-inverses.
  qclab::QCircuit<T> circuit(6);
  for (int i = 0; i < 64 * static_cast<int>(state.range(0)); ++i) {
    circuit.push_back(qclab::qgates::Hadamard<T>(i % 6));
  }
  for (auto _ : state) {
    auto cleaned = qclab::transpile::cancelInversePairs(circuit);
    benchmark::DoNotOptimize(cleaned.nbObjects());
  }
}
BENCHMARK(BM_CancelInversePairsOnly)->DenseRange(1, 9, 4);

}  // namespace

QCLAB_BENCH_MAIN("bench_transpile")

#pragma once

/// \file decompose.hpp
/// \brief Matrix decompositions: ZYZ Euler angles of a 2x2 unitary.
///
/// Any U in U(2) factors as U = e^{iα} RZ(φ) RY(θ) RZ(λ), equivalently
/// U = e^{iα'} u3(θ, φ, λ).  This is used to export custom single-qubit
/// matrix gates to OpenQASM and by the transpiler's single-qubit merge pass.

#include <cmath>
#include <complex>

#include "qclab/dense/matrix.hpp"

namespace qclab::dense {

/// Euler angles such that U = e^{i alpha} u3(theta, phi, lambda), where
/// u3 is the OpenQASM generic gate (u3 = e^{i(phi+lambda)/2} RZ RY RZ).
template <typename T>
struct ZyzDecomposition {
  T alpha;
  T theta;
  T phi;
  T lambda;
};

/// Computes the ZYZ decomposition of a 2x2 unitary.  Throws on shape or
/// unitarity violations.
template <typename T>
ZyzDecomposition<T> zyzDecompose(const Matrix<T>& u) {
  using C = std::complex<T>;
  util::require(u.rows() == 2 && u.cols() == 2, "zyz needs a 2x2 matrix");
  util::require(u.isUnitary(T(1e-5)), "zyz needs a unitary matrix");

  // Pull out the determinant phase so the remainder is special unitary.
  const C det = u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0);
  const T delta = std::arg(det) / T(2);
  const C scale = std::polar(T(1), -delta);
  const C v00 = scale * u(0, 0);
  const C v10 = scale * u(1, 0);

  // V = [[c e^{-i(phi+lambda)/2}, .], [s e^{i(phi-lambda)/2}, .]],
  // c = cos(theta/2) >= 0, s = sin(theta/2) >= 0.
  const T c = std::abs(v00);
  const T s = std::abs(v10);
  const T theta = T(2) * std::atan2(s, c);

  T phi, lambda;
  constexpr T kTiny = T(1e-12);
  if (c <= kTiny) {
    // theta == pi: only phi - lambda is determined.
    lambda = T(0);
    phi = T(2) * std::arg(v10);
  } else if (s <= kTiny) {
    // theta == 0: only phi + lambda is determined.
    lambda = T(0);
    phi = T(-2) * std::arg(v00);
  } else {
    const T sum = T(-2) * std::arg(v00);   // phi + lambda
    const T diff = T(2) * std::arg(v10);   // phi - lambda
    phi = (sum + diff) / T(2);
    lambda = (sum - diff) / T(2);
  }

  // U = e^{i delta} RZ RY RZ and u3 = e^{i(phi+lambda)/2} RZ RY RZ.
  const T alpha = delta - (phi + lambda) / T(2);
  return {alpha, theta, phi, lambda};
}

}  // namespace qclab::dense

#pragma once

/// \file eig.hpp
/// \brief Eigen-decomposition of complex Hermitian matrices via the cyclic
/// Jacobi method.  Used for trace distance / fidelity of density matrices.
///
/// Jacobi is chosen over faster tridiagonalization-based solvers because the
/// matrices involved (density matrices of few-qubit subsystems) are tiny,
/// and Jacobi is simple, numerically robust, and dependency-free.

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <numeric>
#include <vector>

#include "qclab/dense/matrix.hpp"

namespace qclab::dense {

/// Result of a Hermitian eigen-decomposition: A = V diag(values) V^H with
/// eigenvalues sorted in ascending order.
template <typename T>
struct EigResult {
  std::vector<T> values;
  Matrix<T> vectors;  ///< eigenvectors in columns; empty if not requested
};

/// Computes the eigen-decomposition of the Hermitian matrix `a`.
/// Throws InvalidArgumentError if `a` is not square or not Hermitian within
/// a loose tolerance.  `computeVectors` controls whether eigenvectors are
/// accumulated.
template <typename T>
EigResult<T> eigh(Matrix<T> a, bool computeVectors = false) {
  using C = std::complex<T>;
  util::require(a.isSquare(), "eigh requires a square matrix");
  const std::size_t n = a.rows();
  const T hermTol = T(1e3) * std::numeric_limits<T>::epsilon() *
                    std::max<T>(T(1), a.normMax());
  util::require(a.isHermitian(hermTol), "eigh requires a Hermitian matrix");

  Matrix<T> v = computeVectors ? Matrix<T>::identity(n) : Matrix<T>();

  auto offDiagonalNorm = [&]() {
    T sum(0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) sum += std::norm(a(i, j));
    return std::sqrt(T(2) * sum);
  };

  const T tol = T(10) * std::numeric_limits<T>::epsilon() *
                std::max<T>(T(1), a.normF());
  constexpr int kMaxSweeps = 100;

  for (int sweep = 0; sweep < kMaxSweeps && offDiagonalNorm() > tol; ++sweep) {
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const C z = a(p, q);
        const T r = std::abs(z);
        if (r <= std::numeric_limits<T>::min()) continue;
        const C phase = z / r;  // e^{i phi}

        const T x = std::real(a(p, p));
        const T y = std::real(a(q, q));
        // Zero a(p,q) with the unitary J = [[c, s*phase], [-s*conj(phase), c]].
        // Zero B(0,1) = c*s*(x - y) + r*(c^2 - s^2): with t = s/c this is
        // r t^2 - (x - y) t - r = 0; take the smaller-magnitude root for
        // stability.
        const T tau = (x - y) / (T(2) * r);
        T t;
        if (tau >= 0) {
          t = T(-1) / (tau + std::sqrt(T(1) + tau * tau));
        } else {
          t = T(1) / (-tau + std::sqrt(T(1) + tau * tau));
        }
        const T c = T(1) / std::sqrt(T(1) + t * t);
        const T s = t * c;

        // Diagonal block update (both entries stay real).
        a(p, p) = C(x * c * c - T(2) * r * s * c + y * s * s);
        a(q, q) = C(x * s * s + T(2) * r * s * c + y * c * c);
        a(p, q) = C(0);
        a(q, p) = C(0);

        // Off-block rows/columns.
        for (std::size_t k = 0; k < n; ++k) {
          if (k == p || k == q) continue;
          const C akp = a(k, p);
          const C akq = a(k, q);
          const C newKp = akp * c - akq * s * std::conj(phase);
          const C newKq = akp * s * phase + akq * c;
          a(k, p) = newKp;
          a(p, k) = std::conj(newKp);
          a(k, q) = newKq;
          a(q, k) = std::conj(newKq);
        }

        if (computeVectors) {
          for (std::size_t k = 0; k < n; ++k) {
            const C vkp = v(k, p);
            const C vkq = v(k, q);
            v(k, p) = vkp * c - vkq * s * std::conj(phase);
            v(k, q) = vkp * s * phase + vkq * c;
          }
        }
      }
    }
  }

  EigResult<T> result;
  result.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.values[i] = std::real(a(i, i));

  // Sort ascending, permuting eigenvectors along.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return result.values[i] < result.values[j];
  });
  std::vector<T> sorted(n);
  for (std::size_t i = 0; i < n; ++i) sorted[i] = result.values[order[i]];
  result.values = std::move(sorted);
  if (computeVectors) {
    result.vectors = Matrix<T>(n, n);
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i)
        result.vectors(i, j) = v(i, order[j]);
  }
  return result;
}

}  // namespace qclab::dense

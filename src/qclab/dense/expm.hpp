#pragma once

/// \file expm.hpp
/// \brief Unitary exponential of a Hermitian matrix via the Jacobi
/// eigensolver: expUnitary(H, t) = exp(-i t H) = V exp(-i t Lambda) V^H.
/// Reference implementation for validating Trotterized time evolution.

#include <complex>

#include "qclab/dense/eig.hpp"

namespace qclab::dense {

/// Computes exp(-i t H) for Hermitian H.
template <typename T>
Matrix<T> expUnitary(const Matrix<T>& hermitian, T t) {
  const auto eig = eigh(hermitian, /*computeVectors=*/true);
  const std::size_t n = hermitian.rows();
  Matrix<T> result(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::complex<T> phase = std::polar(T(1), -t * eig.values[k]);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        result(i, j) +=
            phase * eig.vectors(i, k) * std::conj(eig.vectors(j, k));
      }
    }
  }
  return result;
}

}  // namespace qclab::dense

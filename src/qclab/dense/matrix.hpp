#pragma once

/// \file matrix.hpp
/// \brief Dense complex matrix type used for gate matrices, circuit
/// unitaries, and density matrices.
///
/// The library is templated over the real scalar type `T` (float or double),
/// mirroring QCLAB++; elements are std::complex<T> stored row-major.

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "qclab/util/errors.hpp"

namespace qclab::dense {

template <typename T>
class Matrix {
 public:
  using real_type = T;
  using value_type = std::complex<T>;

  /// Empty 0x0 matrix.
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, value_type(0)) {}

  /// Matrix from a row-major nested initializer list.
  Matrix(std::initializer_list<std::initializer_list<value_type>> rows) {
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
      util::require(row.size() == cols_, "ragged initializer list");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  /// n x n identity.
  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = value_type(1);
    return m;
  }

  /// rows x cols zero matrix.
  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols);
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool isSquare() const noexcept { return rows_ == cols_; }

  value_type& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  const value_type& operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  value_type* data() noexcept { return data_.data(); }
  const value_type* data() const noexcept { return data_.data(); }

  Matrix& operator+=(const Matrix& other) {
    checkSameShape(other);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
  }

  Matrix& operator-=(const Matrix& other) {
    checkSameShape(other);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
  }

  Matrix& operator*=(value_type scalar) {
    for (auto& x : data_) x *= scalar;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, value_type s) { return a *= s; }
  friend Matrix operator*(value_type s, Matrix a) { return a *= s; }

  /// Matrix product.
  friend Matrix operator*(const Matrix& a, const Matrix& b) {
    util::require(a.cols_ == b.rows_, "matmul dimension mismatch");
    Matrix c(a.rows_, b.cols_);
    for (std::size_t i = 0; i < a.rows_; ++i) {
      for (std::size_t k = 0; k < a.cols_; ++k) {
        const value_type aik = a(i, k);
        if (aik == value_type(0)) continue;
        for (std::size_t j = 0; j < b.cols_; ++j) {
          c(i, j) += aik * b(k, j);
        }
      }
    }
    return c;
  }

  /// Matrix-vector product.
  std::vector<value_type> apply(const std::vector<value_type>& x) const {
    util::require(cols_ == x.size(), "matvec dimension mismatch");
    std::vector<value_type> y(rows_, value_type(0));
    for (std::size_t i = 0; i < rows_; ++i) {
      value_type sum(0);
      for (std::size_t j = 0; j < cols_; ++j) sum += (*this)(i, j) * x[j];
      y[i] = sum;
    }
    return y;
  }

  /// Transpose.
  Matrix transpose() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
  }

  /// Elementwise complex conjugate.
  Matrix conj() const {
    Matrix c(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
      c.data_[i] = std::conj(data_[i]);
    return c;
  }

  /// Conjugate transpose (Hermitian adjoint).
  Matrix dagger() const {
    Matrix d(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j)
        d(j, i) = std::conj((*this)(i, j));
    return d;
  }

  /// Trace (square matrices only).
  value_type trace() const {
    util::require(isSquare(), "trace of non-square matrix");
    value_type t(0);
    for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
    return t;
  }

  /// Frobenius norm.
  T normF() const {
    T sum(0);
    for (const auto& x : data_) sum += std::norm(x);
    return std::sqrt(sum);
  }

  /// Largest absolute entry.
  T normMax() const {
    T best(0);
    for (const auto& x : data_) best = std::max(best, std::abs(x));
    return best;
  }

  /// Max-norm distance to another matrix of the same shape.
  T distanceMax(const Matrix& other) const {
    checkSameShape(other);
    T best(0);
    for (std::size_t i = 0; i < data_.size(); ++i)
      best = std::max(best, std::abs(data_[i] - other.data_[i]));
    return best;
  }

  /// True if U^H U == I within `tol` in the max norm.
  bool isUnitary(T tol) const {
    if (!isSquare()) return false;
    const Matrix product = dagger() * (*this);
    return product.distanceMax(identity(rows_)) <= tol;
  }

  /// True if A == A^H within `tol` in the max norm.
  bool isHermitian(T tol) const {
    if (!isSquare()) return false;
    return distanceMax(dagger()) <= tol;
  }

  /// True if entries match within `tol` in the max norm.
  bool approxEqual(const Matrix& other, T tol) const {
    if (rows_ != other.rows_ || cols_ != other.cols_) return false;
    return distanceMax(other) <= tol;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  void checkSameShape(const Matrix& other) const {
    util::require(rows_ == other.rows_ && cols_ == other.cols_,
                  "matrix shape mismatch");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<value_type> data_;
};

/// Square matrices share the representation; the alias documents intent at
/// API boundaries (gate matrices, unitaries, density matrices).
template <typename T>
using SquareMatrix = Matrix<T>;

}  // namespace qclab::dense

#pragma once

/// \file ops.hpp
/// \brief Free operations on dense matrices: Kronecker products, direct sums,
/// Pauli basis, vector helpers.

#include <complex>
#include <vector>

#include "qclab/dense/matrix.hpp"

namespace qclab::dense {

/// Kronecker (tensor) product a (x) b.
template <typename T>
Matrix<T> kron(const Matrix<T>& a, const Matrix<T>& b) {
  Matrix<T> k(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t ia = 0; ia < a.rows(); ++ia) {
    for (std::size_t ja = 0; ja < a.cols(); ++ja) {
      const auto aij = a(ia, ja);
      if (aij == std::complex<T>(0)) continue;
      for (std::size_t ib = 0; ib < b.rows(); ++ib) {
        for (std::size_t jb = 0; jb < b.cols(); ++jb) {
          k(ia * b.rows() + ib, ja * b.cols() + jb) = aij * b(ib, jb);
        }
      }
    }
  }
  return k;
}

/// Kronecker product of two vectors.
template <typename T>
std::vector<std::complex<T>> kron(const std::vector<std::complex<T>>& a,
                                  const std::vector<std::complex<T>>& b) {
  std::vector<std::complex<T>> k(a.size() * b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      k[i * b.size() + j] = a[i] * b[j];
    }
  }
  return k;
}

/// Block-diagonal direct sum diag(a, b).
template <typename T>
Matrix<T> directSum(const Matrix<T>& a, const Matrix<T>& b) {
  Matrix<T> s(a.rows() + b.rows(), a.cols() + b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) s(i, j) = a(i, j);
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j)
      s(a.rows() + i, a.cols() + j) = b(i, j);
  return s;
}

/// 2x2 identity.
template <typename T>
Matrix<T> pauliI() {
  return Matrix<T>{{1, 0}, {0, 1}};
}

/// Pauli X.
template <typename T>
Matrix<T> pauliX() {
  return Matrix<T>{{0, 1}, {1, 0}};
}

/// Pauli Y.
template <typename T>
Matrix<T> pauliY() {
  using C = std::complex<T>;
  return Matrix<T>{{C(0), C(0, -1)}, {C(0, 1), C(0)}};
}

/// Pauli Z.
template <typename T>
Matrix<T> pauliZ() {
  return Matrix<T>{{1, 0}, {0, -1}};
}

/// Squared 2-norm of a complex vector (any contiguous complex
/// container — std::vector, sim::StateBuffer, ...).
template <typename State>
auto normSquared(const State& v) {
  typename State::value_type::value_type sum(0);
  for (const auto& x : v) sum += std::norm(x);
  return sum;
}

/// 2-norm of a complex vector.
template <typename State>
auto norm2(const State& v) {
  return std::sqrt(normSquared(v));
}

/// Inner product <a|b> (conjugate-linear in the first argument).
template <typename T>
std::complex<T> inner(const std::vector<std::complex<T>>& a,
                      const std::vector<std::complex<T>>& b) {
  util::require(a.size() == b.size(), "inner product dimension mismatch");
  std::complex<T> sum(0);
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::conj(a[i]) * b[i];
  return sum;
}

/// Outer product |a><b|.
template <typename T>
Matrix<T> outer(const std::vector<std::complex<T>>& a,
                const std::vector<std::complex<T>>& b) {
  Matrix<T> m(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j)
      m(i, j) = a[i] * std::conj(b[j]);
  return m;
}

/// Max-norm distance between two vectors of equal length.
template <typename T>
T distanceMax(const std::vector<std::complex<T>>& a,
              const std::vector<std::complex<T>>& b) {
  util::require(a.size() == b.size(), "vector length mismatch");
  T best(0);
  for (std::size_t i = 0; i < a.size(); ++i)
    best = std::max(best, std::abs(a[i] - b[i]));
  return best;
}

/// True if the matrices are equal up to a global phase (within tol in the
/// max norm).  The phase is estimated from the largest entry of `a`.
template <typename T>
bool equalUpToGlobalPhase(const Matrix<T>& a, const Matrix<T>& b, T tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  // Locate the largest entry of a.
  std::size_t bestRow = 0, bestCol = 0;
  T best(0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (std::abs(a(i, j)) > best) {
        best = std::abs(a(i, j));
        bestRow = i;
        bestCol = j;
      }
    }
  }
  if (best <= tol) return b.normMax() <= tol;
  const std::complex<T> ratio = b(bestRow, bestCol) / a(bestRow, bestCol);
  const T magnitude = std::abs(ratio);
  if (std::abs(magnitude - T(1)) > tol) return false;
  const std::complex<T> phase = ratio / magnitude;
  return (a * phase).distanceMax(b) <= tol;
}

/// True if the vectors are equal up to a global phase (within tol).
/// Zero vectors compare equal only to zero vectors.
template <typename T>
bool equalUpToPhase(const std::vector<std::complex<T>>& a,
                    const std::vector<std::complex<T>>& b, T tol) {
  if (a.size() != b.size()) return false;
  const std::complex<T> overlap = inner(a, b);
  const T na = norm2(a);
  const T nb = norm2(b);
  if (na <= tol || nb <= tol) return na <= tol && nb <= tol;
  // |<a|b>| == |a||b| iff b = phase * a.
  return std::abs(std::abs(overlap) - na * nb) <= tol * na * nb + tol;
}

}  // namespace qclab::dense

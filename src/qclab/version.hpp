#pragma once

/// \file version.hpp
/// \brief Library version information.

namespace qclab {

/// Semantic version of the qclab-cpp library.
struct Version {
  int major;
  int minor;
  int patch;
};

/// Returns the compiled library version.
Version version() noexcept;

/// Returns the version as a "major.minor.patch" string.
const char* versionString() noexcept;

}  // namespace qclab

#pragma once

/// \file version.hpp
/// \brief Library version and compile-time build configuration.

namespace qclab {

/// Semantic version of the qclab-cpp library.
struct Version {
  int major;
  int minor;
  int patch;
};

/// Returns the compiled library version.
Version version() noexcept;

/// Returns the version as a "major.minor.patch" string.
const char* versionString() noexcept;

/// True if the library was compiled with OpenMP parallel kernels.
bool builtWithOpenMP() noexcept;

/// True if the library was compiled with the observability layer
/// (i.e. without QCLAB_OBS_DISABLED).
bool builtWithObs() noexcept;

/// True if the library was compiled with the SIMD kernel tier
/// (QCLAB_SIMD CMake option / QCLAB_HAS_SIMD define).  Whether the tier
/// actually runs also depends on the CPU and the QCLAB_SIMD_LEVEL
/// override — see sim::activeSimdLevel().
bool builtWithSimd() noexcept;

/// Comma-separated list of the real scalar types the templates are
/// intended for ("float,double").
const char* scalarTypes() noexcept;

/// One-line self-describing build string, e.g.
/// "qclab 1.0.0 (openmp=on, obs=on, scalars=float,double)".
/// Embedded in reports and traces so exported numbers carry their build
/// configuration.
const char* buildInfo() noexcept;

}  // namespace qclab

#pragma once

/// \file fable.hpp
/// \brief FABLE-style block encodings of real matrices (paper §1 cites
/// FABLE, refs [6, 7], as a quantum compiler built on QCLAB).
///
/// For a real N x N matrix A (N = 2^n, |a_ij| <= 1) the circuit acts on
/// 2n + 1 qubits — ancilla q0, work register q1..qn, system register
/// q_{n+1}..q_{2n} — such that the top-left N x N block of the circuit
/// unitary equals A / N:
///   <0, 0, i| U |0, 0, j> = a_ij / N.
/// Construction: H^n on the work register, a multiplexed RY on the ancilla
/// with angles 2 arccos(a_ij) controlled on both registers, a register
/// swap, and H^n again.  Dropping near-zero rotation angles (the
/// "fast approximate" part of FABLE) compresses the circuit; the stranded
/// CNOT pairs cancel in the transpiler.

#include <cmath>
#include <limits>

#include "qclab/algorithms/multiplexed.hpp"
#include "qclab/dense/matrix.hpp"
#include "qclab/transpile/passes.hpp"

namespace qclab::algorithms {

/// A block-encoding circuit together with its subnormalization:
/// topLeftBlock(circuit) * alpha == A.
template <typename T>
struct BlockEncoding {
  QCircuit<T> circuit;
  T alpha;  ///< subnormalization factor (N for FABLE)
};

/// Builds the FABLE block encoding of the real part of `a`.  Entries must
/// satisfy |a_ij| <= 1.  `compressTol` drops multiplexed-rotation angles
/// with magnitude <= tol and runs inverse-pair cancellation (0 disables
/// compression).
template <typename T>
BlockEncoding<T> fable(const dense::Matrix<T>& a, T compressTol = T(0)) {
  util::require(a.isSquare(), "FABLE needs a square matrix");
  const std::size_t dim = a.rows();
  util::require(util::isPowerOfTwo(dim), "FABLE needs a 2^n matrix");
  const int n = util::log2PowerOfTwo(dim);
  util::require(n >= 1, "FABLE needs at least a 2x2 matrix");

  // Rotation angles theta_ij = 2 arccos(a_ij), flattened row-major so the
  // control index (work register = i, system register = j) selects a_ij.
  std::vector<T> angles(dim * dim);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      const T entry = std::real(a(i, j));
      util::require(std::abs(std::imag(a(i, j))) <
                        T(1e3) * std::numeric_limits<T>::epsilon(),
                    "FABLE block encoding supports real matrices");
      util::require(entry >= T(-1) && entry <= T(1),
                    "FABLE entries must lie in [-1, 1]");
      angles[i * dim + j] = T(2) * std::acos(entry);
    }
  }

  const int total = 2 * n + 1;
  QCircuit<T> circuit(total);
  // Work register: q1..qn; system register: q_{n+1}..q_{2n}.
  for (int q = 1; q <= n; ++q) {
    circuit.push_back(qgates::Hadamard<T>(q));
  }
  std::vector<int> controls(static_cast<std::size_t>(2 * n));
  for (int q = 0; q < 2 * n; ++q) {
    controls[static_cast<std::size_t>(q)] = q + 1;
  }
  // Gray-code multiplexer: 2^{2n} CNOTs, and compression acts on the
  // transformed angle coefficients where matrix structure shows up.
  circuit.push_back(multiplexedRYGray<T>(controls, 0, angles, compressTol));
  for (int q = 1; q <= n; ++q) {
    circuit.push_back(qgates::SWAP<T>(q, q + n));
  }
  for (int q = 1; q <= n; ++q) {
    circuit.push_back(qgates::Hadamard<T>(q));
  }

  if (compressTol > T(0)) {
    circuit = transpile::cancelInversePairs(circuit);
  }
  return {std::move(circuit), static_cast<T>(dim)};
}

/// Extracts the top-left `blockDim` x `blockDim` sub-block of a circuit's
/// unitary scaled by `alpha` — the matrix a BlockEncoding represents.
template <typename T>
dense::Matrix<T> encodedBlock(const BlockEncoding<T>& encoding,
                              std::size_t blockDim) {
  const auto u = encoding.circuit.matrix();
  util::require(blockDim <= u.rows(), "block larger than the unitary");
  dense::Matrix<T> block(blockDim, blockDim);
  for (std::size_t i = 0; i < blockDim; ++i) {
    for (std::size_t j = 0; j < blockDim; ++j) {
      block(i, j) = u(i, j) * encoding.alpha;
    }
  }
  return block;
}

}  // namespace qclab::algorithms

#pragma once

/// \file repetition_code.hpp
/// \brief Distance-3 bit-flip repetition code (paper §5.4): encoding,
/// syndrome extraction with two ancillas, and multi-controlled-X correction.

#include "qclab/qcircuit.hpp"

namespace qclab::algorithms {

/// Encoder: |v>|00> -> alpha|000> + beta|111> on qubits 0-2 of a circuit
/// with `nbQubits` >= 3 qubits.
template <typename T>
QCircuit<T> repetitionEncoder(int nbQubits = 3) {
  util::require(nbQubits >= 3, "repetition code needs 3 data qubits");
  QCircuit<T> circuit(nbQubits);
  circuit.push_back(qgates::CX<T>(0, 1));
  circuit.push_back(qgates::CX<T>(0, 2));
  return circuit;
}

/// Syndrome extraction + measurement + correction on a 5-qubit register
/// (data qubits 0-2, ancillas 3-4), exactly as in the paper:
///  - ancilla 3 compares qubits 0 and 1, ancilla 4 compares qubits 0 and 2;
///  - syndrome '11' means qubit 0 flipped, '10' qubit 1, '01' qubit 2.
template <typename T>
QCircuit<T> repetitionSyndromeAndCorrect() {
  QCircuit<T> circuit(5);
  circuit.push_back(qgates::CX<T>(0, 3));
  circuit.push_back(qgates::CX<T>(1, 3));
  circuit.push_back(qgates::CX<T>(0, 4));
  circuit.push_back(qgates::CX<T>(2, 4));
  circuit.push_back(Measurement<T>(3));
  circuit.push_back(Measurement<T>(4));
  circuit.push_back(qgates::MCX<T>({3, 4}, 2, {0, 1}));
  circuit.push_back(qgates::MCX<T>({3, 4}, 1, {1, 0}));
  circuit.push_back(qgates::MCX<T>({3, 4}, 0, {1, 1}));
  return circuit;
}

/// The complete 5-qubit demonstration circuit of paper §5.4: encode,
/// inject a bit-flip on `errorQubit` (0, 1, 2, or -1 for no error), extract
/// the syndrome, and correct.
template <typename T>
QCircuit<T> repetitionCodeDemo(int errorQubit) {
  util::require(errorQubit >= -1 && errorQubit <= 2,
                "errorQubit must be -1 (none) or a data qubit 0-2");
  QCircuit<T> circuit(5);
  circuit.push_back(qgates::CX<T>(0, 1));
  circuit.push_back(qgates::CX<T>(0, 2));
  if (errorQubit >= 0) {
    circuit.push_back(qgates::PauliX<T>(errorQubit));
  }
  circuit.push_back(repetitionSyndromeAndCorrect<T>());
  return circuit;
}

/// The syndrome bitstring ('ancilla3 ancilla4') expected for an error on
/// `errorQubit` (-1 for none).
inline std::string expectedSyndrome(int errorQubit) {
  switch (errorQubit) {
    case 0: return "11";
    case 1: return "10";
    case 2: return "01";
    default: return "00";
  }
}

}  // namespace qclab::algorithms

#pragma once

/// \file algorithms.hpp
/// \brief Umbrella header for the circuit-builder library.

#include "qclab/algorithms/amplitude_estimation.hpp"
#include "qclab/algorithms/communication.hpp"
#include "qclab/algorithms/counting.hpp"
#include "qclab/algorithms/fable.hpp"
#include "qclab/algorithms/grover.hpp"
#include "qclab/algorithms/multiplexed.hpp"
#include "qclab/algorithms/oracles.hpp"
#include "qclab/algorithms/phase_estimation.hpp"
#include "qclab/algorithms/qaoa.hpp"
#include "qclab/algorithms/qft.hpp"
#include "qclab/algorithms/repetition_code.hpp"
#include "qclab/algorithms/states.hpp"
#include "qclab/algorithms/teleportation.hpp"
#include "qclab/algorithms/tomography.hpp"
#include "qclab/algorithms/trotter.hpp"

#pragma once

/// \file oracles.hpp
/// \brief Textbook oracle-based algorithms: Bernstein-Vazirani and
/// Deutsch-Jozsa.  Both follow the standard phase-kickback layout with an
/// ancilla prepared in |->; the oracles are built from CNOTs / X gates so
/// the circuits export cleanly to OpenQASM.

#include "qclab/qcircuit.hpp"
#include "qclab/util/bitstring.hpp"

namespace qclab::algorithms {

/// Oracle for f(x) = s . x (mod 2): CNOT from every data qubit with a
/// secret bit of 1 onto the ancilla (last qubit).
template <typename T>
QCircuit<T> innerProductOracle(const std::string& secret) {
  const int n = static_cast<int>(secret.size());
  util::require(n >= 1, "secret must have at least one bit");
  util::require(util::isBitstring(secret), "secret must be a bitstring");
  QCircuit<T> oracle(n + 1);
  for (int q = 0; q < n; ++q) {
    if (secret[static_cast<std::size_t>(q)] == '1') {
      oracle.push_back(qgates::CX<T>(q, n));
    }
  }
  oracle.asBlock("Uf");
  return oracle;
}

/// Bernstein-Vazirani circuit recovering the secret bitstring in a single
/// query: the measurement of the data register yields `secret` with
/// probability 1.
template <typename T>
QCircuit<T> bernsteinVazirani(const std::string& secret) {
  const int n = static_cast<int>(secret.size());
  util::require(n >= 1, "secret must have at least one bit");
  QCircuit<T> circuit(n + 1);
  // Ancilla to |->.
  circuit.push_back(qgates::PauliX<T>(n));
  circuit.push_back(qgates::Hadamard<T>(n));
  for (int q = 0; q < n; ++q) circuit.push_back(qgates::Hadamard<T>(q));
  circuit.push_back(innerProductOracle<T>(secret));
  for (int q = 0; q < n; ++q) circuit.push_back(qgates::Hadamard<T>(q));
  for (int q = 0; q < n; ++q) circuit.push_back(Measurement<T>(q));
  return circuit;
}

/// The kind of function a Deutsch-Jozsa oracle implements.
enum class DeutschJozsaOracle {
  kConstantZero,  ///< f(x) = 0
  kConstantOne,   ///< f(x) = 1
  kBalanced,      ///< f(x) = s . x for a nonzero mask (balanced)
};

/// Deutsch-Jozsa circuit on `nbQubits` data qubits.  For balanced oracles,
/// `mask` selects the inner-product function (must be a nonzero bitstring).
/// Measuring all-zeros on the data register means "constant"; anything else
/// means "balanced" — with certainty.
template <typename T>
QCircuit<T> deutschJozsa(int nbQubits, DeutschJozsaOracle kind,
                         const std::string& mask = "") {
  util::require(nbQubits >= 1, "Deutsch-Jozsa needs at least one data qubit");
  QCircuit<T> circuit(nbQubits + 1);
  circuit.push_back(qgates::PauliX<T>(nbQubits));
  circuit.push_back(qgates::Hadamard<T>(nbQubits));
  for (int q = 0; q < nbQubits; ++q) {
    circuit.push_back(qgates::Hadamard<T>(q));
  }

  switch (kind) {
    case DeutschJozsaOracle::kConstantZero:
      break;  // identity oracle
    case DeutschJozsaOracle::kConstantOne:
      circuit.push_back(qgates::PauliX<T>(nbQubits));
      break;
    case DeutschJozsaOracle::kBalanced: {
      util::require(static_cast<int>(mask.size()) == nbQubits,
                    "balanced oracle mask length must equal nbQubits");
      util::require(mask.find('1') != std::string::npos,
                    "balanced oracle mask must be nonzero");
      circuit.push_back(innerProductOracle<T>(mask));
      break;
    }
  }

  for (int q = 0; q < nbQubits; ++q) {
    circuit.push_back(qgates::Hadamard<T>(q));
  }
  for (int q = 0; q < nbQubits; ++q) {
    circuit.push_back(Measurement<T>(q));
  }
  return circuit;
}

}  // namespace qclab::algorithms

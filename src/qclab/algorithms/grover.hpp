#pragma once

/// \file grover.hpp
/// \brief Grover search circuits (paper §5.3), generalized to any register
/// size and any marked bitstring.
///
/// The oracle flips the phase of the marked state with a single
/// multi-controlled Z whose control states equal the marked bits; the
/// diffuser reflects about the uniform superposition.  For the 2-qubit
/// search of |11> this reduces exactly to the paper's CZ oracle and
/// H,Z,CZ,H diffuser (up to global phase).

#include <cmath>

#include "qclab/qcircuit.hpp"
#include "qclab/util/bitstring.hpp"

namespace qclab::algorithms {

/// Oracle circuit flipping the phase of |marked> (a bitstring of the
/// register size).
template <typename T>
QCircuit<T> groverOracle(const std::string& marked) {
  const int n = static_cast<int>(marked.size());
  util::require(n >= 2, "Grover oracle needs at least two qubits");
  util::require(util::isBitstring(marked), "marked state must be a bitstring");
  QCircuit<T> oracle(n);
  // Phase flip of |marked>: MCZ targeting the last qubit, with the control
  // states of qubits 0..n-2 equal to the marked bits.  A marked last bit of
  // 0 is handled by conjugating the target with X.
  std::vector<int> controls(static_cast<std::size_t>(n - 1));
  std::vector<int> states(static_cast<std::size_t>(n - 1));
  for (int q = 0; q + 1 < n; ++q) {
    controls[static_cast<std::size_t>(q)] = q;
    states[static_cast<std::size_t>(q)] = marked[static_cast<std::size_t>(q)] - '0';
  }
  const bool flipTarget = marked.back() == '0';
  if (flipTarget) oracle.push_back(qgates::PauliX<T>(n - 1));
  oracle.push_back(qgates::MCZ<T>(controls, n - 1, states));
  if (flipTarget) oracle.push_back(qgates::PauliX<T>(n - 1));
  oracle.asBlock("oracle");
  return oracle;
}

/// Diffuser circuit (reflection about the uniform superposition),
/// implemented as H^n X^n MCZ X^n H^n.
template <typename T>
QCircuit<T> groverDiffuser(int nbQubits) {
  util::require(nbQubits >= 2, "Grover diffuser needs at least two qubits");
  QCircuit<T> diffuser(nbQubits);
  for (int q = 0; q < nbQubits; ++q) diffuser.push_back(qgates::Hadamard<T>(q));
  for (int q = 0; q < nbQubits; ++q) diffuser.push_back(qgates::PauliX<T>(q));
  std::vector<int> controls(static_cast<std::size_t>(nbQubits - 1));
  for (int q = 0; q + 1 < nbQubits; ++q)
    controls[static_cast<std::size_t>(q)] = q;
  diffuser.push_back(
      qgates::MCZ<T>(controls, nbQubits - 1,
                     std::vector<int>(controls.size(), 1)));
  for (int q = 0; q < nbQubits; ++q) diffuser.push_back(qgates::PauliX<T>(q));
  for (int q = 0; q < nbQubits; ++q) diffuser.push_back(qgates::Hadamard<T>(q));
  diffuser.asBlock("diffuser");
  return diffuser;
}

/// Optimal iteration count round(pi/4 * sqrt(2^n)) (capped below at 1).
inline int groverIterations(int nbQubits) {
  const double amplitude = 1.0 / std::sqrt(static_cast<double>(1ULL << nbQubits));
  const double iterations =
      std::round(M_PI / (4.0 * std::asin(amplitude)) - 0.5);
  return iterations < 1.0 ? 1 : static_cast<int>(iterations);
}

/// Complete Grover circuit searching for `marked`: uniform superposition,
/// `iterations` oracle+diffuser rounds (default: the optimal count), and a
/// final measurement of every qubit.
template <typename T>
QCircuit<T> grover(const std::string& marked, int iterations = -1,
                   bool measure = true) {
  const int n = static_cast<int>(marked.size());
  util::require(n >= 2, "Grover needs at least two qubits");
  if (iterations < 0) iterations = groverIterations(n);
  QCircuit<T> circuit(n);
  for (int q = 0; q < n; ++q) circuit.push_back(qgates::Hadamard<T>(q));
  for (int i = 0; i < iterations; ++i) {
    circuit.push_back(groverOracle<T>(marked));
    circuit.push_back(groverDiffuser<T>(n));
  }
  if (measure) {
    for (int q = 0; q < n; ++q) circuit.push_back(Measurement<T>(q));
  }
  return circuit;
}

/// Analytic success probability of Grover search with `iterations` rounds
/// on `nbQubits` qubits and a single marked state:
/// sin^2((2k+1) * asin(2^{-n/2})).
inline double groverSuccessProbability(int nbQubits, int iterations) {
  const double amplitude = 1.0 / std::sqrt(static_cast<double>(1ULL << nbQubits));
  const double angle = std::asin(amplitude);
  const double s = std::sin(static_cast<double>(2 * iterations + 1) * angle);
  return s * s;
}

}  // namespace qclab::algorithms

#pragma once

/// \file qaoa.hpp
/// \brief QAOA circuits for MaxCut — a representative variational workload
/// for the prototyping platform the paper describes (§1).
///
/// For a graph G = (V, E) the MaxCut cost Hamiltonian is
///   C = sum_{(i,j) in E} (1 - Z_i Z_j) / 2,
/// and a depth-p QAOA circuit alternates cost layers exp(-i gamma_k C)
/// (RZZ gates per edge, phases absorbed) with mixer layers
/// exp(-i beta_k sum X) (RX on every vertex), starting from the uniform
/// superposition.

#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "qclab/observable.hpp"
#include "qclab/qcircuit.hpp"

namespace qclab::algorithms {

/// An undirected graph as an edge list over vertices 0..nbVertices-1.
struct Graph {
  int nbVertices;
  std::vector<std::pair<int, int>> edges;
};

/// The MaxCut cost observable C = sum_E (1 - Z_i Z_j)/2.  Its expectation
/// on a computational basis state equals the cut value of that vertex
/// bipartition.
template <typename T>
Observable<T> maxCutHamiltonian(const Graph& graph) {
  util::require(graph.nbVertices >= 2, "MaxCut needs at least two vertices");
  Observable<T> cost(graph.nbVertices);
  const std::string identity(static_cast<std::size_t>(graph.nbVertices), 'I');
  for (const auto& [i, j] : graph.edges) {
    util::checkQubit(i, graph.nbVertices);
    util::checkQubit(j, graph.nbVertices);
    util::require(i != j, "self-loop in MaxCut graph");
    cost.add(identity, T(0.5));
    std::string zz = identity;
    zz[static_cast<std::size_t>(i)] = 'Z';
    zz[static_cast<std::size_t>(j)] = 'Z';
    cost.add(zz, T(-0.5));
  }
  return cost;
}

/// The depth-p QAOA circuit with parameters gammas (cost angles) and betas
/// (mixer angles); sizes must match and define p.
template <typename T>
QCircuit<T> qaoaCircuit(const Graph& graph, const std::vector<T>& gammas,
                        const std::vector<T>& betas) {
  util::require(!gammas.empty() && gammas.size() == betas.size(),
                "QAOA needs equal, nonzero gamma/beta counts");
  QCircuit<T> circuit(graph.nbVertices);
  for (int v = 0; v < graph.nbVertices; ++v) {
    circuit.push_back(qgates::Hadamard<T>(v));
  }
  for (std::size_t layer = 0; layer < gammas.size(); ++layer) {
    // exp(-i gamma C): per edge, exp(+i gamma/2 Z_i Z_j) up to a global
    // phase -> RZZ(-gamma).
    for (const auto& [i, j] : graph.edges) {
      circuit.push_back(qgates::RotationZZ<T>(i, j, -gammas[layer]));
    }
    // exp(-i beta sum X): RX(2 beta) per vertex.
    for (int v = 0; v < graph.nbVertices; ++v) {
      circuit.push_back(qgates::RotationX<T>(v, T(2) * betas[layer]));
    }
  }
  return circuit;
}

/// Expected cut value of the depth-p QAOA state.
template <typename T>
T qaoaExpectedCut(const Graph& graph, const std::vector<T>& gammas,
                  const std::vector<T>& betas) {
  const auto circuit = qaoaCircuit(graph, gammas, betas);
  const auto state =
      circuit
          .simulate(std::string(static_cast<std::size_t>(graph.nbVertices),
                                '0'))
          .state(0);
  return maxCutHamiltonian<T>(graph).expectation(state);
}

/// Classical reference: the maximum cut by exhaustive search (small
/// graphs; used by tests and for reporting approximation ratios).
inline int maxCutBruteForce(const Graph& graph) {
  int best = 0;
  const std::uint64_t assignments = std::uint64_t{1}
                                    << graph.nbVertices;
  for (std::uint64_t mask = 0; mask < assignments; ++mask) {
    int cut = 0;
    for (const auto& [i, j] : graph.edges) {
      const int si = static_cast<int>((mask >> i) & 1);
      const int sj = static_cast<int>((mask >> j) & 1);
      cut += si != sj;
    }
    best = std::max(best, cut);
  }
  return best;
}

/// Coarse grid search over one QAOA layer (p = 1): returns the best
/// (gamma, beta, expected cut).  A stand-in for the classical optimizer of
/// a full variational loop.
template <typename T>
std::tuple<T, T, T> qaoaGridSearch(const Graph& graph, int resolution = 16) {
  util::require(resolution >= 2, "grid resolution too small");
  T bestGamma = 0, bestBeta = 0, bestValue = 0;
  for (int a = 0; a < resolution; ++a) {
    const T gamma = static_cast<T>(M_PI) * static_cast<T>(a) /
                    static_cast<T>(resolution);
    for (int b = 0; b < resolution; ++b) {
      const T beta = static_cast<T>(M_PI) * static_cast<T>(b) /
                     static_cast<T>(2 * resolution);
      const T value = qaoaExpectedCut<T>(graph, {gamma}, {beta});
      if (value > bestValue) {
        bestValue = value;
        bestGamma = gamma;
        bestBeta = beta;
      }
    }
  }
  return {bestGamma, bestBeta, bestValue};
}

}  // namespace qclab::algorithms

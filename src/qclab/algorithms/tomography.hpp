#pragma once

/// \file tomography.hpp
/// \brief Single-qubit quantum state tomography (paper §5.2): estimate the
/// density matrix of an unknown state from repeated measurements in the X,
/// Y, and Z bases.

#include <array>
#include <cstdint>

#include "qclab/density.hpp"
#include "qclab/qcircuit.hpp"

namespace qclab::algorithms {

/// Result of a tomography run.
template <typename T>
struct TomographyResult {
  /// Counts [n0, n1] per basis, in X, Y, Z order.
  std::array<std::array<std::uint64_t, 2>, 3> counts;
  /// Pauli coefficients (S0, S1, S2, S3) estimated from the counts.
  std::array<T, 4> coefficients;
  /// The reconstructed density matrix (Eq. (2) of the paper).
  dense::Matrix<T> estimate;
};

/// Runs the tomography workflow on the single-qubit state `v`: measures
/// `shots` times in each of the X, Y, Z bases (one PRNG seeded with `seed`
/// drives all three experiments, mirroring the paper's rng(1) setup) and
/// reconstructs the density matrix.
template <typename T>
TomographyResult<T> tomography1Qubit(const std::vector<std::complex<T>>& v,
                                     std::uint64_t shots,
                                     std::uint64_t seed = 1) {
  util::require(v.size() == 2, "tomography1Qubit expects a 1-qubit state");
  util::require(shots > 0, "tomography needs at least one shot");

  random::Rng rng(seed);
  TomographyResult<T> result;
  const char bases[3] = {'x', 'y', 'z'};
  std::array<T, 3> differences{};  // (n0 - n1) / shots per basis
  for (int b = 0; b < 3; ++b) {
    QCircuit<T> circuit(1);
    circuit.push_back(Measurement<T>(0, bases[b]));
    const auto simulation = circuit.simulate(v);
    const auto counts = simulation.counts(shots, rng);
    result.counts[static_cast<std::size_t>(b)] = {counts[0], counts[1]};
    differences[static_cast<std::size_t>(b)] =
        (static_cast<T>(counts[0]) - static_cast<T>(counts[1])) /
        static_cast<T>(shots);
  }

  // S0 = Pz(0) + Pz(1) = 1, S1 = Px(0) - Px(1), S2 = Py(0) - Py(1),
  // S3 = Pz(0) - Pz(1).
  result.coefficients = {T(1), differences[0], differences[1], differences[2]};
  result.estimate = density::fromPauliCoefficients(result.coefficients);
  return result;
}

}  // namespace qclab::algorithms

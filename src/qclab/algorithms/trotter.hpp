#pragma once

/// \file trotter.hpp
/// \brief Trotterized time evolution of the transverse-field Ising model —
/// the workload class of the F3C compiler built on QCLAB (paper §1).
///
/// H = -J sum Z_i Z_{i+1} - h sum X_i evolves as U(t) = exp(-i t H);
/// a first-order Trotter step of size dt is
///   prod_bonds RZZ(-2 J dt) . prod_sites RX(-2 h dt)
/// (RZZ(theta) = exp(-i theta/2 ZZ), so theta = -2 J dt reproduces
/// exp(+i J dt ZZ) per bond).  The second-order (Strang) splitting
/// sandwiches half X-steps around the ZZ layer.

#include "qclab/observable.hpp"
#include "qclab/qcircuit.hpp"

namespace qclab::algorithms {

/// One first-order Trotter step for the TFIM.
template <typename T>
QCircuit<T> trotterStepIsing(int nbQubits, T coupling, T field, T dt,
                             bool periodic = false) {
  util::require(nbQubits >= 2, "Ising chain needs at least two sites");
  QCircuit<T> step(nbQubits);
  // exp(+i J dt Z Z) per bond: RZZ(theta) with theta = -2 J dt.
  const T thetaZz = T(-2) * coupling * dt;
  for (int q = 0; q + 1 < nbQubits; ++q) {
    step.push_back(qgates::RotationZZ<T>(q, q + 1, thetaZz));
  }
  if (periodic && nbQubits > 2) {
    step.push_back(qgates::RotationZZ<T>(0, nbQubits - 1, thetaZz));
  }
  // exp(+i h dt X) per site: RX(theta) with theta = -2 h dt.
  const T thetaX = T(-2) * field * dt;
  for (int q = 0; q < nbQubits; ++q) {
    step.push_back(qgates::RotationX<T>(q, thetaX));
  }
  return step;
}

/// Trotter order selector.
enum class TrotterOrder { kFirst, kSecond };

/// Trotter circuit approximating exp(-i t H) with `steps` steps.
template <typename T>
QCircuit<T> trotterIsing(int nbQubits, T coupling, T field, T time, int steps,
                         TrotterOrder order = TrotterOrder::kFirst,
                         bool periodic = false) {
  util::require(steps >= 1, "Trotterization needs at least one step");
  const T dt = time / static_cast<T>(steps);
  QCircuit<T> circuit(nbQubits);
  if (order == TrotterOrder::kFirst) {
    for (int s = 0; s < steps; ++s) {
      circuit.push_back(
          trotterStepIsing<T>(nbQubits, coupling, field, dt, periodic));
    }
    return circuit;
  }
  // Second order (Strang): half X layer, full ZZ layer, half X layer,
  // with adjacent half layers merged across steps.
  const T thetaZz = T(-2) * coupling * dt;
  const T halfX = -field * dt;  // RX angle = -2 h (dt/2)
  auto addXLayer = [&](T theta) {
    for (int q = 0; q < nbQubits; ++q) {
      circuit.push_back(qgates::RotationX<T>(q, theta));
    }
  };
  auto addZzLayer = [&]() {
    for (int q = 0; q + 1 < nbQubits; ++q) {
      circuit.push_back(qgates::RotationZZ<T>(q, q + 1, thetaZz));
    }
    if (periodic && nbQubits > 2) {
      circuit.push_back(qgates::RotationZZ<T>(0, nbQubits - 1, thetaZz));
    }
  };
  addXLayer(halfX);
  for (int s = 0; s < steps; ++s) {
    addZzLayer();
    // Merge the trailing half layer with the next step's leading one.
    addXLayer(s + 1 < steps ? T(2) * halfX : halfX);
  }
  return circuit;
}

}  // namespace qclab::algorithms

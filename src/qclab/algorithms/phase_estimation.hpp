#pragma once

/// \file phase_estimation.hpp
/// \brief Quantum phase estimation for a single-qubit unitary.
///
/// Given U with eigenpair U|u> = e^{2 pi i phi}|u>, the circuit estimates
/// phi to `countingQubits` bits: Hadamards on the counting register,
/// controlled-U^{2^k} applications, then an inverse QFT and measurement of
/// the counting register.  The target qubit is the last one.

#include <cmath>

#include "qclab/algorithms/qft.hpp"
#include "qclab/qcircuit.hpp"

namespace qclab::algorithms {

/// Builds the QPE circuit for the 2x2 unitary `u`.  Counting qubits are
/// 0..m-1 (qubit 0 ends up holding the most significant phase bit), the
/// target is qubit m.  The caller prepares the target in the eigenstate via
/// the initial state of simulate().
template <typename T>
QCircuit<T> phaseEstimation(int countingQubits, const dense::Matrix<T>& u,
                            bool measure = true) {
  util::require(countingQubits >= 1, "QPE needs at least one counting qubit");
  util::require(u.rows() == 2 && u.cols() == 2, "QPE target must be 2x2");
  util::require(u.isUnitary(T(1e-10)), "QPE matrix must be unitary");
  const int m = countingQubits;
  QCircuit<T> circuit(m + 1);

  for (int q = 0; q < m; ++q) circuit.push_back(qgates::Hadamard<T>(q));

  // Controlled powers: counting qubit q controls U^{2^{m-1-q}} so that the
  // counting register (MSB-first) accumulates the phase in binary.  Each
  // power is an exact CU via the ZYZ decomposition (global phase included).
  dense::Matrix<T> power = u;
  for (int k = 0; k < m; ++k) {
    const int control = m - 1 - k;
    circuit.push_back(qgates::CU<T>::fromMatrix(control, m, power));
    if (k + 1 < m) power = power * power;
  }

  // Inverse QFT on the counting register as a nested sub-circuit.
  auto iqft = inverseQft<T>(m);
  iqft.asBlock("QFT†");
  circuit.push_back(std::move(iqft));

  if (measure) {
    for (int q = 0; q < m; ++q) circuit.push_back(Measurement<T>(q));
  }
  return circuit;
}

/// Converts a measured counting-register bitstring (MSB first) to the phase
/// estimate phi in [0, 1).
inline double phaseFromBits(const std::string& bits) {
  double phi = 0.0;
  double weight = 0.5;
  for (char c : bits) {
    if (c == '1') phi += weight;
    weight /= 2.0;
  }
  return phi;
}

}  // namespace qclab::algorithms

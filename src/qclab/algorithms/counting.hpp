#pragma once

/// \file counting.hpp
/// \brief Quantum counting: estimates the number of marked states of a
/// search problem by phase estimation on the Grover iterate.
///
/// The Grover operator G = diffuser . oracle has eigenvalues e^{±2 i theta}
/// with sin^2(theta) = M / N (M marked states out of N = 2^n).  Running QPE
/// with m counting qubits on G applied to the uniform superposition yields
/// an estimate of theta and hence of M.

#include <cmath>
#include <set>

#include "qclab/algorithms/grover.hpp"
#include "qclab/algorithms/phase_estimation.hpp"
#include "qclab/algorithms/qft.hpp"
#include "qclab/qcircuit.hpp"

namespace qclab::algorithms {

/// Oracle flipping the phase of every state in `marked` (distinct
/// bitstrings of equal length).  Built as a product of single-state MCZ
/// oracles.
template <typename T>
QCircuit<T> groverOracleMulti(const std::set<std::string>& marked) {
  util::require(!marked.empty(), "oracle needs at least one marked state");
  const int n = static_cast<int>(marked.begin()->size());
  QCircuit<T> oracle(n);
  for (const auto& state : marked) {
    util::require(static_cast<int>(state.size()) == n,
                  "marked states must share one length");
    oracle.push_back(groverOracle<T>(state));
  }
  oracle.asBlock("oracle");
  return oracle;
}

/// Grover search over a *set* of marked states: uniform superposition,
/// `iterations` multi-oracle + diffuser rounds (default: the optimal count
/// round(pi / (4 asin(sqrt(M/N))) - 1/2)), and a final measurement.
template <typename T>
QCircuit<T> grover(const std::set<std::string>& marked, int iterations = -1,
                   bool measure = true) {
  util::require(!marked.empty(), "Grover needs at least one marked state");
  const int n = static_cast<int>(marked.begin()->size());
  util::require(n >= 2, "Grover needs at least two qubits");
  if (iterations < 0) {
    const double amplitude =
        std::sqrt(static_cast<double>(marked.size()) /
                  static_cast<double>(1ULL << n));
    const double optimal =
        std::round(M_PI / (4.0 * std::asin(amplitude)) - 0.5);
    iterations = optimal < 1.0 ? 1 : static_cast<int>(optimal);
  }
  QCircuit<T> circuit(n);
  for (int q = 0; q < n; ++q) circuit.push_back(qgates::Hadamard<T>(q));
  for (int i = 0; i < iterations; ++i) {
    circuit.push_back(groverOracleMulti<T>(marked));
    circuit.push_back(groverDiffuser<T>(n));
  }
  if (measure) {
    for (int q = 0; q < n; ++q) circuit.push_back(Measurement<T>(q));
  }
  return circuit;
}

/// Analytic success probability with M marked states out of 2^n:
/// sin^2((2k+1) asin(sqrt(M/N))).
inline double groverSuccessProbabilityMulti(int nbQubits, int nbMarked,
                                            int iterations) {
  const double amplitude = std::sqrt(static_cast<double>(nbMarked) /
                                     static_cast<double>(1ULL << nbQubits));
  const double s =
      std::sin(static_cast<double>(2 * iterations + 1) * std::asin(amplitude));
  return s * s;
}

/// Result of a quantum counting run.
struct CountingResult {
  std::string bits;      ///< most likely counting-register outcome
  double probability;    ///< its probability
  double theta;          ///< estimated Grover angle
  double estimatedCount; ///< M_est = N sin^2(theta)
};

/// Runs quantum counting with `countingQubits` precision qubits over the
/// search space of the bitstrings in `marked` and returns the estimate of
/// the number of marked states.
template <typename T>
CountingResult quantumCounting(int countingQubits,
                               const std::set<std::string>& marked) {
  util::require(countingQubits >= 1, "counting needs >= 1 counting qubit");
  util::require(!marked.empty(), "counting needs >= 1 marked state");
  const int n = static_cast<int>(marked.begin()->size());
  const int m = countingQubits;
  const std::size_t searchDim = std::size_t{1} << n;

  // Grover iterate as a matrix on the data register.  groverDiffuser
  // implements I - 2|s><s| (a global phase of -1 relative to the textbook
  // reflection 2|s><s| - I, irrelevant for search); counting measures the
  // eigenphase, so restore the textbook convention explicitly.
  QCircuit<T> iterate(n);
  iterate.push_back(groverOracleMulti<T>(marked));
  iterate.push_back(groverDiffuser<T>(n));
  auto g = iterate.matrix();
  g *= std::complex<T>(-1);

  // QPE circuit: counting register 0..m-1, data register m..m+n-1.
  QCircuit<T> circuit(m + n);
  for (int q = 0; q < m; ++q) circuit.push_back(qgates::Hadamard<T>(q));
  for (int q = 0; q < n; ++q) circuit.push_back(qgates::Hadamard<T>(m + q));

  std::vector<int> dataQubits(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) dataQubits[static_cast<std::size_t>(q)] = m + q;

  dense::Matrix<T> power = g;
  for (int k = 0; k < m; ++k) {
    const int control = m - 1 - k;
    std::vector<int> gateQubits = {control};
    gateQubits.insert(gateQubits.end(), dataQubits.begin(), dataQubits.end());
    const auto controlled = qgates::controlledMatrix<T>(
        gateQubits, {control}, {1}, dataQubits, power);
    circuit.push_back(qgates::MatrixGateN<T>(
        gateQubits, controlled, "cG^" + std::to_string(1ULL << k)));
    if (k + 1 < m) power = power * power;
  }

  auto iqft = inverseQft<T>(m);
  iqft.asBlock("QFT†");
  iqft.setOffset(0);
  circuit.push_back(std::move(iqft));
  for (int q = 0; q < m; ++q) circuit.push_back(Measurement<T>(q));

  const auto simulation =
      circuit.simulate(std::string(static_cast<std::size_t>(m + n), '0'));

  CountingResult result{"", 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
    if (simulation.probability(i) > result.probability) {
      result.probability = simulation.probability(i);
      result.bits = simulation.result(i);
    }
  }
  // The register encodes phi = theta / pi (eigenphase 2*theta over 2*pi).
  const double phi = phaseFromBits(result.bits);
  result.theta = M_PI * phi;
  // Eigenphases come in ± pairs; fold into [0, pi/2].
  double folded = result.theta;
  if (folded > M_PI / 2.0) folded = M_PI - folded;
  const double s = std::sin(folded);
  result.estimatedCount = static_cast<double>(searchDim) * s * s;
  return result;
}

}  // namespace qclab::algorithms

#pragma once

/// \file communication.hpp
/// \brief Entanglement-assisted communication protocols: superdense coding
/// (the dual of the teleportation example in paper §5.1) and W-state
/// preparation.

#include <cmath>

#include "qclab/qcircuit.hpp"
#include "qclab/util/bitstring.hpp"

namespace qclab::algorithms {

/// Superdense coding: transmits the two classical bits `bits` ("00".."11")
/// through one qubit of a shared Bell pair.  The circuit prepares the Bell
/// pair, encodes on qubit 0 (X for the second bit, Z for the first), and
/// decodes; measuring yields `bits` with probability 1.
template <typename T>
QCircuit<T> superdenseCoding(const std::string& bits) {
  util::require(bits.size() == 2 && util::isBitstring(bits),
                "superdense coding transmits exactly two bits");
  QCircuit<T> circuit(2);
  // Shared Bell pair.
  circuit.push_back(qgates::Hadamard<T>(0));
  circuit.push_back(qgates::CX<T>(0, 1));
  // Encoding on the sender's qubit.
  if (bits[1] == '1') circuit.push_back(qgates::PauliX<T>(0));
  if (bits[0] == '1') circuit.push_back(qgates::PauliZ<T>(0));
  // Decoding at the receiver.
  circuit.push_back(qgates::CX<T>(0, 1));
  circuit.push_back(qgates::Hadamard<T>(0));
  circuit.push_back(Measurement<T>(0));
  circuit.push_back(Measurement<T>(1));
  return circuit;
}

/// Prepares the n-qubit W state (|10...0> + |01...0> + ... + |0...01>)
/// / sqrt(n) from |0...0>, using the cascade of controlled-RY rotations
/// followed by CNOTs.
template <typename T>
QCircuit<T> wState(int nbQubits) {
  util::require(nbQubits >= 2, "W state needs at least two qubits");
  QCircuit<T> circuit(nbQubits);
  circuit.push_back(qgates::PauliX<T>(0));
  for (int i = 0; i + 1 < nbQubits; ++i) {
    // Split amplitude 1/(n - i) off to the next qubit.
    const T theta =
        T(2) * std::acos(std::sqrt(T(1) / static_cast<T>(nbQubits - i)));
    circuit.push_back(qgates::CRotationY<T>(i, i + 1, theta));
    circuit.push_back(qgates::CX<T>(i + 1, i));
  }
  return circuit;
}

}  // namespace qclab::algorithms

#pragma once

/// \file qft.hpp
/// \brief Quantum Fourier transform circuits.
///
/// qft(n) maps basis state |j> to (1/sqrt(2^n)) sum_k e^{2 pi i j k / 2^n} |k>,
/// built from Hadamards, controlled phases, and a final qubit reversal.

#include <cmath>

#include "qclab/qcircuit.hpp"

namespace qclab::algorithms {

/// The n-qubit QFT circuit.  `withSwaps` appends the qubit-reversal swaps
/// (true gives the textbook DFT matrix).
template <typename T>
QCircuit<T> qft(int nbQubits, bool withSwaps = true) {
  util::require(nbQubits >= 1, "QFT needs at least one qubit");
  QCircuit<T> circuit(nbQubits);
  for (int q = 0; q < nbQubits; ++q) {
    circuit.push_back(qgates::Hadamard<T>(q));
    for (int k = q + 1; k < nbQubits; ++k) {
      const T theta = static_cast<T>(M_PI / static_cast<double>(1ULL << (k - q)));
      circuit.push_back(qgates::CPhase<T>(k, q, theta));
    }
  }
  if (withSwaps) {
    for (int q = 0; q < nbQubits / 2; ++q) {
      circuit.push_back(qgates::SWAP<T>(q, nbQubits - 1 - q));
    }
  }
  return circuit;
}

/// The inverse QFT circuit.
template <typename T>
QCircuit<T> inverseQft(int nbQubits, bool withSwaps = true) {
  return qft<T>(nbQubits, withSwaps).inverted();
}

/// The DFT matrix the QFT implements: F(j, k) = w^{jk} / sqrt(N) with
/// w = e^{2 pi i / N} (reference for tests).
template <typename T>
dense::Matrix<T> dftMatrix(int nbQubits) {
  const std::size_t dim = std::size_t{1} << nbQubits;
  dense::Matrix<T> f(dim, dim);
  const T scale = T(1) / std::sqrt(static_cast<T>(dim));
  for (std::size_t j = 0; j < dim; ++j) {
    for (std::size_t k = 0; k < dim; ++k) {
      const double angle = 2.0 * M_PI * static_cast<double>(j * k % dim) /
                           static_cast<double>(dim);
      f(j, k) = std::polar(scale, static_cast<T>(angle));
    }
  }
  return f;
}

}  // namespace qclab::algorithms

#pragma once

/// \file states.hpp
/// \brief Entangled-state preparation circuits: Bell pairs and GHZ states.

#include "qclab/qcircuit.hpp"

namespace qclab::algorithms {

/// Circuit preparing the Bell state (|00> + |11>)/sqrt(2) from |00>.
template <typename T>
QCircuit<T> bellPair() {
  QCircuit<T> circuit(2);
  circuit.push_back(qgates::Hadamard<T>(0));
  circuit.push_back(qgates::CX<T>(0, 1));
  return circuit;
}

/// The Bell state vector (|00> + |11>)/sqrt(2).
template <typename T>
std::vector<std::complex<T>> bellState() {
  const T h = T(1) / std::sqrt(T(2));
  return {std::complex<T>(h), {}, {}, std::complex<T>(h)};
}

/// Circuit preparing the n-qubit GHZ state (|0...0> + |1...1>)/sqrt(2).
template <typename T>
QCircuit<T> ghz(int nbQubits) {
  util::require(nbQubits >= 2, "GHZ needs at least two qubits");
  QCircuit<T> circuit(nbQubits);
  circuit.push_back(qgates::Hadamard<T>(0));
  for (int q = 1; q < nbQubits; ++q) {
    circuit.push_back(qgates::CX<T>(q - 1, q));
  }
  return circuit;
}

}  // namespace qclab::algorithms

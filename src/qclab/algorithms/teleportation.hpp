#pragma once

/// \file teleportation.hpp
/// \brief The quantum teleportation circuit of paper §5.1.
///
/// Qubit 0 carries the state to teleport, qubits 1-2 hold a Bell pair; the
/// sender Bell-measures qubits 0-1 mid-circuit and the corrections on qubit
/// 2 are applied as controlled gates from the (collapsed, basis-state)
/// measured qubits — exactly the construction in the paper.

#include "qclab/dense/ops.hpp"
#include "qclab/qcircuit.hpp"

namespace qclab::algorithms {

/// The 3-qubit teleportation circuit (expects the initial state
/// v (x) bell as in the paper).
template <typename T>
QCircuit<T> teleportationCircuit() {
  QCircuit<T> circuit(3);
  circuit.push_back(qgates::CX<T>(0, 1));
  circuit.push_back(qgates::Hadamard<T>(0));
  circuit.push_back(Measurement<T>(0));
  circuit.push_back(Measurement<T>(1));
  circuit.push_back(qgates::CX<T>(1, 2));
  circuit.push_back(qgates::CZ<T>(0, 2));
  return circuit;
}

/// The initial state kron(v, bell) of paper §5.1 for an arbitrary
/// single-qubit state `v`.
template <typename T>
std::vector<std::complex<T>> teleportationInput(
    const std::vector<std::complex<T>>& v) {
  util::require(v.size() == 2, "teleported state must be a single qubit");
  const T h = T(1) / std::sqrt(T(2));
  const std::vector<std::complex<T>> bell = {
      std::complex<T>(h), {}, {}, std::complex<T>(h)};
  return dense::kron(v, bell);
}

}  // namespace qclab::algorithms

#pragma once

/// \file amplitude_estimation.hpp
/// \brief Canonical (QPE-based) quantum amplitude estimation.
///
/// Given a state-preparation circuit A on n qubits and a set of "good"
/// basis states G, amplitude estimation recovers a = || P_G A|0> ||^2 with
/// quadratically fewer oracle queries than classical sampling.  The
/// Grover-like iterate Q = -A S_0 A^H S_G has eigenvalues e^{+-2 i theta}
/// with a = sin^2(theta); phase estimation on Q applied to A|0> reads
/// theta off the counting register.

#include <cmath>
#include <set>

#include "qclab/algorithms/phase_estimation.hpp"
#include "qclab/algorithms/qft.hpp"
#include "qclab/qcircuit.hpp"
#include "qclab/util/bitstring.hpp"

namespace qclab::algorithms {

/// Result of an amplitude-estimation run.
struct AmplitudeEstimate {
  std::string bits;         ///< most likely counting-register outcome
  double probability;       ///< its probability
  double theta;             ///< estimated Grover angle in [0, pi/2]
  double estimatedAmplitude;  ///< a_est = sin^2(theta)
};

/// Runs QPE-based amplitude estimation with `countingQubits` precision
/// qubits: `statePrep` is the A circuit (no measurements), `goodStates`
/// the set of good basis bitstrings on A's register.
template <typename T>
AmplitudeEstimate amplitudeEstimation(int countingQubits,
                                      const QCircuit<T>& statePrep,
                                      const std::set<std::string>& goodStates) {
  util::require(countingQubits >= 1, "QAE needs >= 1 counting qubit");
  util::require(!goodStates.empty(), "QAE needs >= 1 good state");
  const int n = statePrep.nbQubits();
  const int m = countingQubits;
  const std::size_t dim = std::size_t{1} << n;

  // Q = -A S_0 A^H S_G as a dense matrix on the data register.
  const auto a = statePrep.matrix();
  auto s0 = dense::Matrix<T>::identity(dim);
  s0(0, 0) = std::complex<T>(-1);
  auto sg = dense::Matrix<T>::identity(dim);
  for (const auto& state : goodStates) {
    const auto index = util::bitstringToIndex(state, n);
    sg(index, index) = std::complex<T>(-1);
  }
  auto q = a * s0 * a.dagger() * sg;
  q *= std::complex<T>(-1);

  // QPE circuit: counting register 0..m-1, data register m..m+n-1 prepared
  // by A.
  QCircuit<T> circuit(m + n);
  for (int c = 0; c < m; ++c) circuit.push_back(qgates::Hadamard<T>(c));
  auto prep = QCircuit<T>(statePrep);
  prep.setOffset(m);
  circuit.push_back(std::move(prep));

  std::vector<int> dataQubits(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) dataQubits[static_cast<std::size_t>(k)] = m + k;

  dense::Matrix<T> power = q;
  for (int k = 0; k < m; ++k) {
    const int control = m - 1 - k;
    std::vector<int> gateQubits = {control};
    gateQubits.insert(gateQubits.end(), dataQubits.begin(), dataQubits.end());
    const auto controlled = qgates::controlledMatrix<T>(
        gateQubits, {control}, {1}, dataQubits, power);
    circuit.push_back(qgates::MatrixGateN<T>(
        gateQubits, controlled, "cQ^" + std::to_string(1ULL << k)));
    if (k + 1 < m) power = power * power;
  }

  auto iqft = inverseQft<T>(m);
  iqft.asBlock("QFT†");
  circuit.push_back(std::move(iqft));
  for (int c = 0; c < m; ++c) circuit.push_back(Measurement<T>(c));

  const auto simulation =
      circuit.simulate(std::string(static_cast<std::size_t>(m + n), '0'));

  AmplitudeEstimate result{"", 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
    if (simulation.probability(i) > result.probability) {
      result.probability = simulation.probability(i);
      result.bits = simulation.result(i);
    }
  }
  const double phi = phaseFromBits(result.bits);
  double theta = M_PI * phi;
  if (theta > M_PI / 2.0) theta = M_PI - theta;  // fold the +- pair
  result.theta = theta;
  const double s = std::sin(theta);
  result.estimatedAmplitude = s * s;
  return result;
}

}  // namespace qclab::algorithms

#pragma once

/// \file multiplexed.hpp
/// \brief Uniformly controlled (multiplexed) rotations.
///
/// A multiplexed RY/RZ applies RY(theta_i) to the target for each basis
/// state |i> of the control register — the core primitive of the FABLE
/// block-encoding compiler built on QCLAB (paper §1, refs [6, 7]).  The
/// standard recursive decomposition produces 2^k rotations interleaved
/// with 2^k CNOTs:
///   UC(c0, rest; theta) = UC(rest; (t_lo + t_hi)/2) CX(c0, t)
///                         UC(rest; (t_lo - t_hi)/2) CX(c0, t).

#include <functional>
#include <vector>

#include "qclab/qcircuit.hpp"

namespace qclab::algorithms {

namespace detail {

template <typename T>
void multiplexedRotation(QCircuit<T>& circuit,
                         const std::vector<int>& controls, int target,
                         std::vector<T> angles, bool zAxis, T dropTol) {
  if (controls.empty()) {
    util::require(angles.size() == 1, "angle count mismatch");
    if (std::abs(angles[0]) > dropTol) {
      if (zAxis) {
        circuit.push_back(qgates::RotationZ<T>(target, angles[0]));
      } else {
        circuit.push_back(qgates::RotationY<T>(target, angles[0]));
      }
    }
    return;
  }
  const std::size_t half = angles.size() / 2;
  util::require(half * 2 == angles.size(), "angle count must be 2^k");
  std::vector<T> sum(half), difference(half);
  for (std::size_t i = 0; i < half; ++i) {
    sum[i] = (angles[i] + angles[half + i]) / T(2);
    difference[i] = (angles[i] - angles[half + i]) / T(2);
  }
  const std::vector<int> rest(controls.begin() + 1, controls.end());
  multiplexedRotation(circuit, rest, target, std::move(sum), zAxis, dropTol);
  circuit.push_back(qgates::CX<T>(controls[0], target));
  multiplexedRotation(circuit, rest, target, std::move(difference), zAxis,
                      dropTol);
  circuit.push_back(qgates::CX<T>(controls[0], target));
}

}  // namespace detail

/// Circuit applying RY(angles[i]) to `target` for control basis state |i>
/// (controls listed MSB-first).  `angles` must have 2^#controls entries.
/// Rotations with |angle| <= dropTol are omitted (FABLE-style compression;
/// run transpile::cancelInversePairs afterwards to remove the CNOT pairs
/// this strands).
template <typename T>
QCircuit<T> multiplexedRY(const std::vector<int>& controls, int target,
                          const std::vector<T>& angles, T dropTol = T(0)) {
  util::require(angles.size() == (std::size_t{1} << controls.size()),
                "multiplexed rotation needs 2^#controls angles");
  int maxQubit = target;
  for (int c : controls) maxQubit = std::max(maxQubit, c);
  QCircuit<T> circuit(maxQubit + 1);
  detail::multiplexedRotation(circuit, controls, target, angles,
                              /*zAxis=*/false, dropTol);
  return circuit;
}

/// Multiplexed RZ (see multiplexedRY).
template <typename T>
QCircuit<T> multiplexedRZ(const std::vector<int>& controls, int target,
                          const std::vector<T>& angles, T dropTol = T(0)) {
  util::require(angles.size() == (std::size_t{1} << controls.size()),
                "multiplexed rotation needs 2^#controls angles");
  int maxQubit = target;
  for (int c : controls) maxQubit = std::max(maxQubit, c);
  QCircuit<T> circuit(maxQubit + 1);
  detail::multiplexedRotation(circuit, controls, target, angles,
                              /*zAxis=*/true, dropTol);
  return circuit;
}

namespace detail {

/// Sequency transform of the angle vector for the Gray-code multiplexer:
/// phi_i = 2^{-k} sum_b (-1)^{gray(i) . b} theta_b.
template <typename T>
std::vector<T> grayAngles(const std::vector<T>& angles) {
  const std::size_t dim = angles.size();
  std::vector<T> transformed(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    const std::size_t gray = i ^ (i >> 1);
    T sum(0);
    for (std::size_t b = 0; b < dim; ++b) {
      const int parity = __builtin_popcountll(gray & b) & 1;
      sum += parity ? -angles[b] : angles[b];
    }
    transformed[i] = sum / static_cast<T>(dim);
  }
  return transformed;
}

template <typename T>
void multiplexedRotationGray(QCircuit<T>& circuit,
                             const std::vector<int>& controls, int target,
                             const std::vector<T>& angles, bool zAxis,
                             T dropTol) {
  const int k = static_cast<int>(controls.size());
  if (k == 0) {
    if (std::abs(angles[0]) > dropTol) {
      if (zAxis) {
        circuit.push_back(qgates::RotationZ<T>(target, angles[0]));
      } else {
        circuit.push_back(qgates::RotationY<T>(target, angles[0]));
      }
    }
    return;
  }
  const auto phi = grayAngles(angles);
  const std::size_t count = phi.size();
  // Runs of CNOTs between retained rotations compose: only the parity of
  // each control matters.  Dropping rotations therefore also removes the
  // CNOTs between them (the FABLE compression).
  std::vector<std::uint8_t> parity(static_cast<std::size_t>(k), 0);
  const auto flush = [&]() {
    for (int j = 0; j < k; ++j) {
      if (parity[static_cast<std::size_t>(j)]) {
        circuit.push_back(
            qgates::CX<T>(controls[static_cast<std::size_t>(j)], target));
        parity[static_cast<std::size_t>(j)] = 0;
      }
    }
  };
  for (std::size_t i = 0; i < count; ++i) {
    if (std::abs(phi[i]) > dropTol) {
      flush();
      if (zAxis) {
        circuit.push_back(qgates::RotationZ<T>(target, phi[i]));
      } else {
        circuit.push_back(qgates::RotationY<T>(target, phi[i]));
      }
    }
    // CNOT on the bit where gray(i) and gray(i+1) differ; the final step
    // wraps around to gray(0) = 0 and toggles the top bit.  Bit j (from
    // LSB) of the angle index corresponds to controls[k-1-j] (controls are
    // listed MSB-first).
    const int changedBit =
        (i + 1 == count) ? k - 1 : __builtin_ctzll(i + 1);
    parity[static_cast<std::size_t>(k - 1 - changedBit)] ^= 1;
  }
  flush();
}

}  // namespace detail

/// Gray-code multiplexed RY: equivalent to multiplexedRY but with only
/// 2^k CNOTs (the FABLE / Möttönen construction).  Angle compression via
/// `dropTol` applies to the *transformed* coefficients, which is where
/// structured matrices become sparse.
template <typename T>
QCircuit<T> multiplexedRYGray(const std::vector<int>& controls, int target,
                              const std::vector<T>& angles, T dropTol = T(0)) {
  util::require(angles.size() == (std::size_t{1} << controls.size()),
                "multiplexed rotation needs 2^#controls angles");
  int maxQubit = target;
  for (int c : controls) maxQubit = std::max(maxQubit, c);
  QCircuit<T> circuit(maxQubit + 1);
  detail::multiplexedRotationGray(circuit, controls, target, angles,
                                  /*zAxis=*/false, dropTol);
  return circuit;
}

/// Gray-code multiplexed RZ (see multiplexedRYGray).
template <typename T>
QCircuit<T> multiplexedRZGray(const std::vector<int>& controls, int target,
                              const std::vector<T>& angles, T dropTol = T(0)) {
  util::require(angles.size() == (std::size_t{1} << controls.size()),
                "multiplexed rotation needs 2^#controls angles");
  int maxQubit = target;
  for (int c : controls) maxQubit = std::max(maxQubit, c);
  QCircuit<T> circuit(maxQubit + 1);
  detail::multiplexedRotationGray(circuit, controls, target, angles,
                                  /*zAxis=*/true, dropTol);
  return circuit;
}

}  // namespace qclab::algorithms

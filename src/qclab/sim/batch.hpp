#pragma once

/// \file batch.hpp
/// \brief Batched multi-circuit execution: one fusion plan + block
/// schedule per circuit SHAPE, many parameter instances executed against
/// it with rebinding instead of re-planning.
///
/// A parameter sweep (QAOA angle scans, VQE optimizer steps, barren
/// plateau studies) simulates the SAME circuit structure thousands of
/// times with different angles.  The naive loop pays per member for work
/// that only depends on the structure: circuit construction, the fusion
/// scheduling pass, the block schedule, and the state allocation.
/// BatchedSimulation splits the two:
///
///   - SHAPE (once): clone the prototype circuit, collect its gate runs,
///     fuse them into plans (fuseGates) and build the cache-blocking
///     schedule.  The shape is fingerprinted by QCircuit::shapeHash(),
///     which covers everything the plan depends on and no angle values.
///   - INSTANCE (per member): write the member's parameter vector through
///     ParameterBinding (gate setTheta), refresh the fused matrices with
///     rebindFusionPlan (recipe replay — bit-identical to re-fusing), and
///     run the plan over a pooled state buffer.
///
/// The engine additionally caches the PARAMETER-FREE PREFIX of the plan:
/// the maximal leading run of fused blocks none of whose gates is a
/// ParameterBinding slot (e.g. the Hadamard layer opening every QAOA or
/// VQE ansatz).  Those blocks produce the same amplitudes for every
/// member, so the constructor applies them once and each member starts
/// from a copy of the cached state instead of re-sweeping them — both the
/// rebind and the application skip the prefix.  The cut point is clamped
/// to a block-schedule item boundary so scheduled runs stay chunked, and
/// the cached values are bit-identical to applying the same blocks per
/// member (kernel path choice never depends on where a sweep starts).
///
/// Execution is OpenMP-parallel across members; each worker thread owns a
/// private circuit clone + plans (gate pointers must target the clone the
/// thread mutates) and one reusable state buffer, so nothing is shared
/// mutably.  Every member's amplitudes are BIT-IDENTICAL to a standalone
/// `circuit.simulate(bits, options)` with the same fusion options: both
/// paths run the same kernels in the same order on the same values.
///
/// Restriction: unitary circuits only (gates, sub-circuits, barriers).
/// Measurements and resets branch the state per member, which has no
/// shared shape to amortize — the constructor throws on them.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qclab/obs/flightrecorder.hpp"
#include "qclab/obs/histogram.hpp"
#include "qclab/obs/metrics.hpp"
#include "qclab/obs/sentinel.hpp"
#include "qclab/obs/trace.hpp"
#include "qclab/parameter_binding.hpp"
#include "qclab/qcircuit.hpp"
#include "qclab/sim/backend.hpp"
#include "qclab/sim/fusion.hpp"
#include "qclab/util/bitstring.hpp"
#include "qclab/util/errors.hpp"

#ifdef QCLAB_HAS_OPENMP
#include <omp.h>
#endif

namespace qclab::sim {

/// Tuning knobs of the batched execution engine.
struct BatchOptions {
  /// Execute members through fused plans (recommended).  Off runs the
  /// per-gate kernel backend — still amortizing circuit construction and
  /// state allocation, and still bit-identical to standalone simulate
  /// with fusion off.
  bool fusion = true;
  /// Fusion knobs of the shared shape plan.  The defaults differ from
  /// FusionOptions' own: parameter sweeps are dominated by diagonal
  /// layers (RZZ cost layers, RZ mixers), so diagonal gates are fused
  /// into wide diagonal-only runs (applied as table-driven diagonal
  /// sweeps) while dense gates stay in narrow blocks with fast span
  /// kernels.
  FusionOptions fusionOptions{/*maxQubits=*/2,
                              /*blocking=*/true,
                              /*blockQubits=*/0,
                              /*minBlockRun=*/2,
                              /*separateDiagonalRuns=*/true,
                              /*diagonalMaxQubits=*/12};
  /// OpenMP threads across batch members; 0 = omp_get_max_threads().
  int nbThreads = 0;
  /// Initial basis state of every member ("" = |0...0>).
  std::string initialBits;
};

/// A circuit shape compiled for repeated execution under parameter
/// rebinding.  Construction does the per-shape work; run()/forEach() do
/// only per-instance work.  One engine instance must not be run from two
/// threads at once (it parallelizes internally); build one engine per
/// concurrent caller instead — plans themselves are const-shareable.
template <typename T>
class BatchedSimulation {
 public:
  /// Compiles `prototype`'s shape: clones it, collects the gate runs,
  /// builds the fusion plans + block schedules (under the "batch/plan"
  /// stage span).  Throws on measurements or resets.
  explicit BatchedSimulation(const QCircuit<T>& prototype,
                             BatchOptions options = {})
      : options_(std::move(options)),
        prototype_(prototype),
        shapeHash_(prototype.shapeHash()) {
    const obs::ScopedSpan span("batch/plan", "stage");
    if (options_.initialBits.empty()) {
      options_.initialBits.assign(
          static_cast<std::size_t>(prototype_.nbQubits()), '0');
    }
    util::require(static_cast<int>(options_.initialBits.size()) ==
                      prototype_.nbQubits(),
                  "initial bitstring length must equal nbQubits");
    initialIndex_ = util::bitstringToIndex(options_.initialBits);
    master_ = std::make_unique<Worker>(prototype_, options_, nullptr);
    if (options_.fusion) computePrefix();
  }

  /// Structural fingerprint of the compiled shape (QCircuit::shapeHash).
  std::uint64_t shapeHash() const noexcept { return shapeHash_; }

  /// Extent of the cached parameter-free prefix: number of leading plans
  /// executed entirely from the cache, and number of leading blocks of
  /// the next plan.  Both zero when nothing is cached (diagnostics and
  /// tests; members never re-sweep these blocks).
  std::size_t prefixPlanCount() const noexcept { return prefixPlans_; }
  std::size_t prefixBlockCount() const noexcept { return prefixBlocks_; }

  /// Number of bindable parameters per member (ParameterBinding order).
  std::size_t nbParameters() const noexcept {
    return master_->binding.nbParameters();
  }

  /// True when `circuit` has the same shape as the compiled prototype and
  /// can therefore be executed as a parameter instance of this engine.
  bool matchesShape(const QCircuit<T>& circuit) const {
    return circuit.shapeHash() == shapeHash_;
  }

  /// The current parameter vector of a circuit, in this engine's slot
  /// order — turns a same-shape circuit into a batch member.
  static std::vector<T> parametersOf(const QCircuit<T>& circuit) {
    QCircuit<T> copy(circuit);
    return ParameterBinding<T>(copy).parameters();
  }

  /// Simulates every parameter vector of `parameterSets` against the
  /// shape plan and returns one Simulation per member, in order.  Member
  /// m's amplitudes are bit-identical to
  /// `instance.simulate(bits, {fusion, fusionOptions})` where `instance`
  /// is the prototype with parameter set m bound.
  std::vector<Simulation<T>> run(
      const std::vector<std::vector<T>>& parameterSets) {
    std::vector<Simulation<T>> results(parameterSets.size());
    forEach(parameterSets, [&results](std::size_t member,
                                      Simulation<T>&& simulation) {
      results[member] = std::move(simulation);
    });
    return results;
  }

  /// Streaming variant of run(): invokes
  /// `callback(member, Simulation<T>&&)` for every member, from the
  /// worker thread that simulated it (callbacks for distinct members may
  /// run concurrently — the callback must be safe for that).  A callback
  /// that only reads the simulation lets the engine reclaim the member's
  /// state buffer into the per-thread pool; moving the simulation out
  /// transfers ownership and costs one fresh allocation for the next
  /// member.
  template <typename Callback>
  void forEach(const std::vector<std::vector<T>>& parameterSets,
               Callback&& callback) {
    const std::size_t members = parameterSets.size();
    if (members == 0) return;
    // Validate every member's arity up front: a throw inside the OpenMP
    // region below could not propagate (std::terminate), so the bind
    // precondition must fail on the calling thread.
    const std::size_t expected = master_->binding.nbParameters();
    for (std::size_t m = 0; m < members; ++m) {
      util::require(parameterSets[m].size() == expected,
                    "simulateBatch: member " + std::to_string(m) +
                        " carries " +
                        std::to_string(parameterSets[m].size()) +
                        " parameters, shape has " + std::to_string(expected));
    }
    obs::metrics().countBatchRun(members);
    const obs::ScopedSpan span(
        "batch(n=" + std::to_string(prototype_.nbQubits()) +
            ",M=" + std::to_string(members) + ")",
        "circuit", "batch");
    const obs::ScopedSpan executeSpan("batch/execute", "stage");
    const std::int64_t count = static_cast<std::int64_t>(members);
#ifdef QCLAB_HAS_OPENMP
    const int threads = options_.nbThreads > 0 ? options_.nbThreads
                                               : omp_get_max_threads();
    // Release/acquire edge mirroring the implicit end-of-region barrier
    // for TSan, which cannot see into libgomp (same pattern as the
    // trajectory engine).
    std::atomic<int> workersDone{0};
#pragma omp parallel num_threads(threads) if (count > 1 && !omp_in_parallel())
#endif
    {
      // Thread 0 reuses the master worker built at construction; other
      // threads clone it (circuit copy + plan copy, no re-scheduling).
      std::unique_ptr<Worker> local;
      Worker* worker = master_.get();
#ifdef QCLAB_HAS_OPENMP
      if (omp_get_thread_num() != 0) {
        local = std::make_unique<Worker>(prototype_, options_, master_.get());
        worker = local.get();
      }
#endif
      std::vector<std::complex<T>> buffer;  // per-thread pooled state
#ifdef QCLAB_HAS_OPENMP
#pragma omp for schedule(dynamic)
#endif
      for (std::int64_t m = 0; m < count; ++m) {
        const std::size_t member = static_cast<std::size_t>(m);
        {
          const obs::PathTimer timer(KernelPath::kBatch);
          runMember(*worker, parameterSets[member], buffer);
        }
        obs::flightRecorder().record(
            obs::FlightEventKind::kBatchMember,
            static_cast<std::uint16_t>(KernelPath::kBatch),
            /*qubitMask=*/0, static_cast<std::uint32_t>(member));
        // Throttled numerical-health check on the finished member's state.
        // kThrow cannot raise here (we may be inside the OMP region);
        // report() just latches and throwIfPending() below raises it.
        if (obs::sentinel().shouldCheck()) {
          obs::sentinelCheckState(buffer.data(), buffer.size(), "batch");
        }
        Simulation<T> simulation(prototype_.nbQubits(), std::move(buffer));
        callback(member, std::move(simulation));
        // Reclaim the buffer when the callback left the state behind.
        if (!simulation.branches().empty()) {
          buffer = simulation.branches().front().state.takeVector();
        } else {
          buffer.clear();
        }
      }
#ifdef QCLAB_HAS_OPENMP
      workersDone.fetch_add(1, std::memory_order_release);
#endif
    }
#ifdef QCLAB_HAS_OPENMP
    (void)workersDone.load(std::memory_order_acquire);
#endif
    // Safe point: back on the calling thread, outside any parallel
    // region — raise a sentinel violation latched by any member.
    obs::sentinel().throwIfPending();
  }

 private:
  /// Per-thread execution state: a private circuit clone (the instance
  /// the thread mutates), the binding + gate runs into that clone, and
  /// the fusion plans whose recipes resolve against those runs.
  struct Worker {
    QCircuit<T> circuit;
    ParameterBinding<T> binding;
    /// Barrier-delimited gate runs (barriers bound fusion in the
    /// standalone fused path too, so plans match it run for run).
    std::vector<std::vector<GateRef<T>>> runs;
    std::vector<FusionPlan<T>> plans;

    Worker(const QCircuit<T>& prototype, const BatchOptions& options,
           const Worker* master)
        : circuit(prototype), binding(circuit) {
      std::vector<GateRef<T>> open;
      collectRuns(circuit, 0, open);
      if (!open.empty()) runs.push_back(std::move(open));
      if (!options.fusion) return;
      if (master != nullptr) {
        // Copy the master's plans (matrices are values; recipes are gate
        // indices) — every member rebinds before applying, so the copied
        // matrices never execute stale.
        plans = master->plans;
        return;
      }
      plans.reserve(runs.size());
      for (const auto& run : runs) {
        plans.push_back(fuseGates(run, circuit.nbQubits(),
                                  options.fusionOptions));
      }
    }

    /// Collects the unitary gate sequence of `circuit` into
    /// barrier-delimited runs, recursing through sub-circuits with
    /// accumulated offsets — the same walk the fused simulate path does.
    void collectRuns(const QCircuit<T>& node, int offset,
                     std::vector<GateRef<T>>& open) {
      const int total = offset + node.offset();
      for (std::size_t i = 0; i < node.nbObjects(); ++i) {
        const QObject<T>& object = node.objectAt(i);
        switch (object.objectType()) {
          case ObjectType::kGate:
            open.push_back(
                {static_cast<const qgates::QGate<T>*>(&object), total});
            break;
          case ObjectType::kCircuit:
            collectRuns(static_cast<const QCircuit<T>&>(object), total,
                        open);
            break;
          case ObjectType::kBarrier:
            if (!open.empty()) runs.push_back(std::move(open));
            open.clear();
            break;
          default:
            throw InvalidArgumentError(
                "batched simulation supports unitary circuits only "
                "(no measurements or resets)");
        }
      }
    }
  };

  /// Finds the maximal leading run of fused blocks containing no
  /// ParameterBinding slot gate, clamps it to a schedule-item boundary,
  /// and caches the state those blocks produce from the initial basis
  /// state.  Members then start from a copy of that state (one memcpy)
  /// instead of re-sweeping blocks whose product cannot change.
  void computePrefix() {
    const Worker& w = *master_;
    const int nbQubits = prototype_.nbQubits();
    for (std::size_t r = 0; r < w.plans.size(); ++r) {
      const FusionPlan<T>& plan = w.plans[r];
      std::size_t blocks = 0;
      for (const auto& block : plan.blocks) {
        bool parameterFree = true;
        for (const auto& step : block.steps) {
          if (w.binding.isBound(w.runs[r][step.gateIndex].gate)) {
            parameterFree = false;
            break;
          }
        }
        if (!parameterFree) break;
        ++blocks;
      }
      if (blocks < plan.blocks.size() && !plan.schedule.items.empty()) {
        // Clamp to a schedule-item boundary so blocked runs after the cut
        // still execute as chunked sweeps.
        std::size_t boundary = 0;
        for (const auto& item : plan.schedule.items) {
          if (item.first + item.count > blocks) break;
          boundary = item.first + item.count;
        }
        blocks = boundary;
      }
      if (blocks == plan.blocks.size() && !plan.blocks.empty()) {
        prefixPlans_ = r + 1;
        prefixBlocks_ = 0;
        continue;
      }
      prefixBlocks_ = blocks;
      break;
    }
    if (prefixPlans_ == 0 && prefixBlocks_ == 0) return;

    const std::size_t dim = std::size_t{1} << nbQubits;
    prefixState_.assign(dim, std::complex<T>(0));
    prefixState_[initialIndex_] = std::complex<T>(1);
    for (std::size_t r = 0; r < prefixPlans_; ++r) {
      applyFusionPlan(prefixState_, nbQubits, w.plans[r]);
    }
    if (prefixBlocks_ == 0) return;
    const FusionPlan<T>& plan = w.plans[prefixPlans_];
    const std::uint64_t bytes = 2 * static_cast<std::uint64_t>(dim) *
                                sizeof(std::complex<T>);
    if (plan.schedule.items.empty()) {
      for (std::size_t i = 0; i < prefixBlocks_; ++i) {
        detail::applyFusedBlock(prefixState_, nbQubits, plan.blocks[i],
                                bytes);
      }
    } else {
      for (const auto& item : plan.schedule.items) {
        if (item.first >= prefixBlocks_) break;
        if (item.blocked) {
          applyBlockedRun(prefixState_, nbQubits, plan.blocks, item.first,
                          item.count, plan.schedule.blockQubits);
        } else {
          const std::size_t last =
              std::min(item.first + item.count, prefixBlocks_);
          for (std::size_t i = item.first; i < last; ++i) {
            detail::applyFusedBlock(prefixState_, nbQubits, plan.blocks[i],
                                    bytes);
          }
        }
      }
    }
  }

  /// Executes ONE member on `worker`: bind the parameters, refresh the
  /// fused matrices (recipe replay), reset the pooled state to the
  /// initial basis state (or the cached parameter-free prefix state), and
  /// run the plans (or the per-gate backend with fusion off).
  void runMember(Worker& worker, const std::vector<T>& parameters,
                 std::vector<std::complex<T>>& state) const {
    worker.binding.bind(parameters);
    const int nbQubits = prototype_.nbQubits();
    const std::size_t dim = std::size_t{1} << nbQubits;
    if (options_.fusion && !prefixState_.empty()) {
      state.assign(prefixState_.begin(), prefixState_.end());
    } else {
      state.assign(dim, std::complex<T>(0));
      state[initialIndex_] = std::complex<T>(1);
    }
    if (options_.fusion) {
      for (std::size_t r = prefixPlans_; r < worker.plans.size(); ++r) {
        const std::size_t first = r == prefixPlans_ ? prefixBlocks_ : 0;
        rebindFusionPlan(worker.plans[r], worker.runs[r], first);
        applyFusionPlan(state, nbQubits, worker.plans[r], first);
      }
    } else {
      const Backend<T>& backend = defaultBackend<T>();
      for (const auto& run : worker.runs) {
        for (const auto& ref : run) {
          backend.applyGate(state, nbQubits, *ref.gate, ref.offset);
        }
      }
    }
  }

  BatchOptions options_;
  QCircuit<T> prototype_;
  std::uint64_t shapeHash_ = 0;
  std::size_t initialIndex_ = 0;
  std::unique_ptr<Worker> master_;
  /// Parameter-free prefix: plans [0, prefixPlans_) are entirely
  /// member-invariant, plus the first prefixBlocks_ blocks of plan
  /// prefixPlans_.  prefixState_ holds the amplitudes after the prefix
  /// (empty when there is no prefix or fusion is off).
  std::size_t prefixPlans_ = 0;
  std::size_t prefixBlocks_ = 0;
  std::vector<std::complex<T>> prefixState_;
};

}  // namespace qclab::sim

namespace qclab {

/// Batched parameter sweep over this circuit's shape: compiles the shape
/// once (fusion plan + block schedule) and executes one member per
/// parameter vector with rebinding.  Declared in qcircuit.hpp; every
/// member is bit-identical to binding the same parameters and calling
/// simulate with the matching fusion options.
template <typename T>
std::vector<Simulation<T>> QCircuit<T>::simulateBatch(
    const std::vector<std::vector<T>>& parameterSets,
    const sim::BatchOptions& options) const {
  sim::BatchedSimulation<T> engine(*this, options);
  return engine.run(parameterSets);
}

template <typename T>
std::vector<Simulation<T>> QCircuit<T>::simulateBatch(
    const std::vector<std::vector<T>>& parameterSets) const {
  return simulateBatch(parameterSets, sim::BatchOptions{});
}

}  // namespace qclab

#pragma once

/// \file backend.hpp
/// \brief Gate-application strategies.
///
/// Two interchangeable backends reproduce the two systems of the paper:
///  - SparseKronBackend: the MATLAB-QCLAB algorithm (§3.2) — form the sparse
///    extended unitary I_l (x) U' (x) I_r over the full register and
///    multiply it with the state vector;
///  - KernelBackend: the QCLAB++ engine — in-place bit-sliced kernels with
///    fast paths for single-qubit, diagonal, controlled, and swap gates.
/// Both produce identical states (up to rounding); bench_backend_compare
/// measures the performance gap the paper alludes to.

#include <algorithm>
#include <complex>
#include <vector>

#include "qclab/qgates/qgates.hpp"
#include "qclab/sim/fusion.hpp"
#include "qclab/sim/kernel_path.hpp"
#include "qclab/sim/kernels.hpp"
#include "qclab/sim/state_buffer.hpp"
#include "qclab/sparse/csr.hpp"

namespace qclab::sim {

/// The kernel fast path the in-place engine selects for `gate` — the
/// single source of truth for KernelBackend's dispatch, exposed so that
/// decorators (obs::InstrumentedBackend) can tag applications with the
/// path actually taken without re-implementing the dispatch rules.
template <typename T>
KernelPath classifyKernelPath(const qgates::QGate<T>& gate) {
  if (dynamic_cast<const qgates::SWAP<T>*>(&gate) != nullptr) {
    return KernelPath::kSwap;
  }
  if (!gate.controls().empty() && gate.targets().size() == 1) {
    // Controlled gates with a diagonal target (CZ, CPhase, CRZ, MCZ, ...)
    // need only one multiply per active-subspace amplitude; the dense
    // 2x2 pair update of kControlled1 would double the work.
    return gate.isDiagonal() ? KernelPath::kControlledDiagonal1
                             : KernelPath::kControlled1;
  }
  if (gate.nbQubits() == 1) {
    return gate.isDiagonal() ? KernelPath::kDiagonal1 : KernelPath::kDense1;
  }
  if (gate.controls().empty() && gate.isDiagonal()) {
    return KernelPath::kDiagonalK;
  }
  return KernelPath::kDenseK;
}

/// Abstract gate-application strategy.
template <typename T>
class Backend {
 public:
  virtual ~Backend() = default;

  /// Applies `gate` (with its qubit indices shifted by `offset`) to the
  /// n-qubit state, in place.  Takes a StateSpan so one virtual
  /// signature serves plain vectors and tiered StateBuffers alike (both
  /// convert implicitly).
  virtual void applyGate(StateSpan<T> state, int nbQubits,
                         const qgates::QGate<T>& gate, int offset = 0) const = 0;

  /// The kernel path this backend would dispatch `gate` to.  Defaults to
  /// the in-place kernel classification; matrix-multiply style backends
  /// override it.
  virtual KernelPath dispatchPath(const qgates::QGate<T>& gate) const {
    return classifyKernelPath(gate);
  }

  /// Human-readable backend name (for benches and logs).
  virtual const char* name() const noexcept = 0;
};

/// QCLAB++-style in-place kernels (default backend).
template <typename T>
class KernelBackend final : public Backend<T> {
 public:
  void applyGate(StateSpan<T> state, int nbQubits,
                 const qgates::QGate<T>& gate, int offset = 0) const override {
    switch (classifyKernelPath(gate)) {
      case KernelPath::kSwap: {
        // SWAP: pure permutation.
        const auto& swap = static_cast<const qgates::SWAP<T>&>(gate);
        applySwap(state, nbQubits, swap.qubit0() + offset,
                  swap.qubit1() + offset);
        return;
      }
      case KernelPath::kControlled1: {
        // Controlled gate, single target: touch only the active subspace.
        std::vector<int> shiftedControls(gate.controls());
        for (int& c : shiftedControls) c += offset;
        applyControlled1(state, nbQubits, shiftedControls,
                         gate.controlStates(), gate.targets()[0] + offset,
                         gate.targetMatrix());
        return;
      }
      case KernelPath::kControlledDiagonal1: {
        // Controlled diagonal gate: one multiply on the active subspace.
        std::vector<int> shiftedControls(gate.controls());
        for (int& c : shiftedControls) c += offset;
        const auto u = gate.targetMatrix();
        applyControlledDiagonal1(state, nbQubits, shiftedControls,
                                 gate.controlStates(),
                                 gate.targets()[0] + offset, u(0, 0), u(1, 1));
        return;
      }
      case KernelPath::kDiagonal1: {
        const auto u = gate.matrix();
        applyDiagonal1(state, nbQubits, gate.qubits()[0] + offset, u(0, 0),
                       u(1, 1));
        return;
      }
      case KernelPath::kDense1: {
        apply1(state, nbQubits, gate.qubits()[0] + offset, gate.matrix());
        return;
      }
      case KernelPath::kDiagonalK: {
        // Multi-qubit diagonal gate (RZZ, ...): one multiply per amplitude.
        std::vector<int> qubits = gate.qubits();
        for (int& q : qubits) q += offset;
        const auto u = gate.matrix();
        std::vector<std::complex<T>> diagonal(u.rows());
        for (std::size_t i = 0; i < u.rows(); ++i) diagonal[i] = u(i, i);
        applyDiagonalK(state, nbQubits, qubits, diagonal);
        return;
      }
      case KernelPath::kDenseK:
      default: {
        // General k-qubit gate; the k = 2 hot path has a specialized
        // quad-run kernel that avoids applyK's gather/scatter.
        std::vector<int> qubits = gate.qubits();
        for (int& q : qubits) q += offset;
        if (qubits.size() == 2) {
          apply2(state, nbQubits, qubits[0], qubits[1], gate.matrix());
        } else {
          applyK(state, nbQubits, qubits, gate.matrix());
        }
        return;
      }
    }
  }

  const char* name() const noexcept override { return "kernel"; }
};

/// Gate-fusion strategy: fuses maximal runs of adjacent gates whose
/// combined support fits a <= maxQubits window into one dense (or
/// diagonal) block and applies each block with a single state sweep
/// (sim/fusion.hpp).  Fusion needs lookahead over a gate run, so the
/// per-gate applyGate falls back to the plain kernels; the run-level
/// entry points (fusePlan/applyFused) are driven by QCircuit::simulate
/// behind SimulateOptions::fusion.
template <typename T>
class FusionBackend final : public Backend<T> {
 public:
  explicit FusionBackend(FusionOptions options = {}) : options_(options) {}

  /// Single-gate call: no lookahead is possible, apply via the kernels.
  void applyGate(StateSpan<T> state, int nbQubits,
                 const qgates::QGate<T>& gate, int offset = 0) const override {
    kernel_.applyGate(state, nbQubits, gate, offset);
  }

  /// Schedules `gates` into fused blocks (build once, apply per branch).
  FusionPlan<T> fusePlan(const std::vector<GateRef<T>>& gates,
                         int nbQubits) const {
    return fuseGates(gates, nbQubits, options_);
  }

  /// Fuses `gates` and applies the resulting plan in one go.
  void applyFused(std::vector<std::complex<T>>& state, int nbQubits,
                  const std::vector<GateRef<T>>& gates) const {
    applyFusionPlan(state, nbQubits, fusePlan(gates, nbQubits));
  }

  const FusionOptions& options() const noexcept { return options_; }

  const char* name() const noexcept override { return "fusion"; }

 private:
  FusionOptions options_;
  KernelBackend<T> kernel_;
};

/// Builds the sparse extended unitary I_l (x) U_range (x) I_r of `gate`
/// over an `nbQubits` register (the paper's Eq. in §3.2).  U_range spans the
/// contiguous qubit range [minQubit, maxQubit] of the gate, with identity
/// action on in-range qubits the gate does not touch.
template <typename T>
sparse::CsrMatrix<T> extendedUnitary(int nbQubits,
                                     const qgates::QGate<T>& gate,
                                     int offset = 0) {
  std::vector<int> qubits = gate.qubits();
  for (int& q : qubits) q += offset;
  const int k = static_cast<int>(qubits.size());
  util::checkQubit(qubits.front(), nbQubits);
  util::checkQubit(qubits.back(), nbQubits);

  const int lo = qubits.front();
  const int hi = qubits.back();
  const int m = hi - lo + 1;  // contiguous range width

  // Bit positions of the gate qubits within a range index (MSB-first).
  std::vector<int> gatePositions(k);
  for (int i = 0; i < k; ++i) {
    gatePositions[i] = util::bitPosition(qubits[i] - lo, m);
  }
  // Offset of gate-subspace index r within a range index.
  const std::size_t gateDim = std::size_t{1} << k;
  std::vector<util::index_t> spread(gateDim, 0);
  for (util::index_t r = 0; r < gateDim; ++r) {
    for (int i = 0; i < k; ++i) {
      if (util::getBit(r, util::bitPosition(i, k))) {
        spread[r] = util::setBit(spread[r], gatePositions[i]);
      }
    }
  }

  // Filler bit positions (in-range qubits not touched by the gate),
  // ascending for insertZeroBits.
  std::vector<int> fillerPositions;
  for (int pos = 0; pos < m; ++pos) {
    if (std::find(gatePositions.begin(), gatePositions.end(), pos) ==
        gatePositions.end()) {
      fillerPositions.push_back(pos);
    }
  }

  const auto u = gate.matrix();
  std::vector<sparse::Triplet<T>> triplets;
  const util::index_t fillerCount = util::index_t{1}
                                    << fillerPositions.size();
  for (util::index_t filler = 0; filler < fillerCount; ++filler) {
    // Scatter the filler bits to their positions; gate bits stay 0.
    util::index_t base = 0;
    for (std::size_t i = 0; i < fillerPositions.size(); ++i) {
      if (util::getBit(filler, static_cast<int>(i))) {
        base = util::setBit(base, fillerPositions[i]);
      }
    }
    for (util::index_t r = 0; r < gateDim; ++r) {
      for (util::index_t c = 0; c < gateDim; ++c) {
        const auto value = u(r, c);
        if (value == std::complex<T>(0)) continue;
        triplets.push_back({static_cast<std::size_t>(base | spread[r]),
                            static_cast<std::size_t>(base | spread[c]),
                            value});
      }
    }
  }
  const std::size_t rangeDim = std::size_t{1} << m;
  auto uRange =
      sparse::CsrMatrix<T>::fromTriplets(rangeDim, rangeDim, std::move(triplets));

  // I_l (x) U_range (x) I_r.
  const std::size_t dimLeft = std::size_t{1} << lo;
  const std::size_t dimRight = std::size_t{1} << (nbQubits - 1 - hi);
  auto extended = kron(sparse::CsrMatrix<T>::identity(dimLeft), uRange);
  return kron(extended, sparse::CsrMatrix<T>::identity(dimRight));
}

/// MATLAB-QCLAB-style backend: sparse extended unitary times state vector.
template <typename T>
class SparseKronBackend final : public Backend<T> {
 public:
  void applyGate(StateSpan<T> state, int nbQubits,
                 const qgates::QGate<T>& gate, int offset = 0) const override {
    // The CSR multiply produces a fresh vector; a span cannot be
    // reseated, so copy through (this backend is the reference
    // implementation, not a hot path).
    const std::vector<std::complex<T>> input(state.begin(), state.end());
    const std::vector<std::complex<T>> output =
        extendedUnitary(nbQubits, gate, offset).apply(input);
    std::copy(output.begin(), output.end(), state.begin());
  }

  KernelPath dispatchPath(const qgates::QGate<T>&) const override {
    return KernelPath::kSparseKron;
  }

  const char* name() const noexcept override { return "sparse-kron"; }
};

/// The library-wide default backend (QCLAB++ kernels).
template <typename T>
const Backend<T>& defaultBackend() {
  static const KernelBackend<T> backend;
  return backend;
}

}  // namespace qclab::sim

#pragma once

/// \file fusion.hpp
/// \brief Simulation-time gate fusion (the Qulacs-style CPU optimization).
///
/// Applying one gate per pass over the 2^n-amplitude state makes deep
/// circuits memory-bandwidth bound: every gate streams the whole state
/// through the cache hierarchy.  The fusion scheduler greedily merges
/// maximal runs of adjacent gates whose combined qubit support fits a
/// <= maxQubits window (default 4) into one dense block, so dozens of
/// full-state sweeps collapse into a single applyK sweep per block.
/// Runs in which every merged gate is diagonal keep a diagonal block —
/// stored as its 2^k diagonal entries, never densified — and go through
/// the cheaper one-multiply-per-amplitude diagonal sweep instead.
///
/// With FusionOptions::separateDiagonalRuns the scheduler keeps diagonal
/// gates out of dense blocks entirely and grows diagonal-only blocks up
/// to the (usually much wider) diagonalMaxQubits window: a layer of RZZ
/// gates collapses into a couple of table-driven sweeps, while the dense
/// gates around it keep their cheap dense1/dense2 kernels.  This is the
/// batched-execution configuration (sim/batch.hpp) — wide diagonal
/// windows are only affordable because diagonal blocks store 2^k entries
/// instead of a 4^k dense matrix.
///
/// The scheduler is a pure function over gate sequences (fuseGates), so a
/// plan is built once per circuit run and applied to every simulation
/// branch; QCircuit::simulate drives it behind SimulateOptions::fusion.
/// Each block additionally records its *recipe* — which gate went in at
/// which step, over which window — so rebindFusionPlan can replay the
/// exact accumulation arithmetic after gate parameters changed (setTheta)
/// without re-running the scheduler.  A rebound plan is bit-identical to
/// a freshly fused one, which is what the batched engine relies on.
///
/// Plan application (applyFusionPlan) is const and re-entrant: all
/// mutable state lives in locals, so one plan can be shared by many
/// threads (trajectory workers, batch members) concurrently.
///
/// On top of the fused blocks the plan carries a cache-blocking schedule
/// (blocking.hpp): maximal runs of consecutive blocks whose qubits all
/// live in the low-bit-position window are executed with ONE streaming
/// sweep of the state in L2-sized chunks instead of one sweep per block.

#include <algorithm>
#include <complex>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "qclab/dense/matrix.hpp"
#include "qclab/obs/flightrecorder.hpp"
#include "qclab/obs/histogram.hpp"
#include "qclab/obs/metrics.hpp"
#include "qclab/obs/trace.hpp"
#include "qclab/qgates/qgate.hpp"
#include "qclab/sim/blocking.hpp"
#include "qclab/sim/kernel_path.hpp"
#include "qclab/sim/kernels.hpp"
#include "qclab/util/bits.hpp"
#include "qclab/util/errors.hpp"

namespace qclab::sim {

/// Tuning knobs of the fusion scheduler.
struct FusionOptions {
  /// Largest fused-block support; blocks hold 2^maxQubits x 2^maxQubits
  /// dense matrices, so values beyond ~6 trade sweep savings for per-block
  /// arithmetic.  Gates wider than the window pass through unfused.
  int maxQubits = 4;
  /// Cache-block runs of low-position fused blocks into single streamed
  /// sweeps (see blocking.hpp).
  bool blocking = true;
  /// Chunk size in qubits for blocked sweeps; 0 = size to the L2 cache.
  int blockQubits = 0;
  /// Minimum consecutive blockable fused blocks worth a blocked sweep.
  std::size_t minBlockRun = 2;
  /// Never merge diagonal gates into dense blocks (and vice versa):
  /// diagonal gates accumulate into diagonal-only blocks governed by
  /// diagonalMaxQubits, dense gates into dense blocks governed by
  /// maxQubits.  Off (the default) keeps the legacy mixed merging.
  bool separateDiagonalRuns = false;
  /// Window for diagonal-only blocks when separateDiagonalRuns is on;
  /// 0 = maxQubits.  A diagonal block stores 2^k entries (not a dense
  /// matrix), so windows of 10-12 qubits are cheap and collapse whole
  /// diagonal layers (QAOA cost layers, CZ/CPhase ladders) into one or
  /// two table-driven sweeps.
  int diagonalMaxQubits = 0;
};

/// A gate reference inside a fusion run: the gate plus the accumulated
/// qubit offset of the (sub-)circuit it came from.
template <typename T>
struct GateRef {
  const qgates::QGate<T>* gate = nullptr;
  int offset = 0;
};

/// One step of a block's accumulation recipe: gate `gateIndex` of the
/// fused run was merged over absolute `qubits` into window `window`
/// (the block's support right after this step).  rebindFusionPlan
/// replays these steps verbatim.
struct FusedStep {
  std::size_t gateIndex = 0;  ///< index into the fused gate run
  std::vector<int> qubits;    ///< absolute ascending gate qubits
  std::vector<int> window;    ///< block support after this step
};

/// One scheduled block: the product of a run of gates over a common
/// ascending qubit window (MSB-first, like every gate matrix).  Dense
/// blocks hold the 2^k x 2^k product in `matrix`; diagonal blocks hold
/// only the 2^k diagonal entries in `diag` (matrix stays empty).
template <typename T>
struct FusedBlock {
  std::vector<int> qubits;   ///< ascending absolute qubit indices
  dense::Matrix<T> matrix;   ///< dense blocks: 2^k x 2^k product
  std::vector<std::complex<T>> diag;  ///< diagonal blocks: 2^k entries
  bool diagonal = false;     ///< every merged gate was diagonal
  std::size_t gatesIn = 0;   ///< number of gates merged into this block
  std::vector<FusedStep> steps;  ///< rebind recipe (one per merged gate)
};

/// Aggregate scheduling outcome (the obs fusion counters use the same
/// three numbers).
struct FusionStats {
  std::uint64_t gatesIn = 0;      ///< gates consumed by the scheduler
  std::uint64_t blocksOut = 0;    ///< blocks emitted
  std::uint64_t sweepsSaved = 0;  ///< full-state sweeps avoided (in - out)
};

/// An ordered list of fused blocks, applied left to right.  The block
/// schedule partitions them into cache-blocked and plain runs; an empty
/// schedule means every block gets its own full-state sweep.
template <typename T>
struct FusionPlan {
  std::vector<FusedBlock<T>> blocks;
  BlockSchedule schedule;

  FusionStats stats() const noexcept {
    FusionStats s;
    for (const auto& block : blocks) {
      s.gatesIn += block.gatesIn;
      ++s.blocksOut;
    }
    s.sweepsSaved = s.gatesIn - s.blocksOut;
    return s;
  }
};

namespace detail {

/// Embeds a matrix over the ascending qubit list `from` into the superset
/// window `to` (identity on window qubits the gate does not touch), keeping
/// the MSB-first qubit ordering of both lists.
template <typename T>
dense::Matrix<T> embedInWindow(const dense::Matrix<T>& u,
                               const std::vector<int>& from,
                               const std::vector<int>& to) {
  if (from == to) return u;
  const int k = static_cast<int>(from.size());
  const int m = static_cast<int>(to.size());

  // Bit position of each `from` qubit within a window index.
  std::vector<int> positions(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const auto it = std::lower_bound(to.begin(), to.end(),
                                     from[static_cast<std::size_t>(i)]);
    util::require(it != to.end() && *it == from[static_cast<std::size_t>(i)],
                  "fusion window does not cover the gate qubits");
    positions[static_cast<std::size_t>(i)] =
        util::bitPosition(static_cast<int>(it - to.begin()), m);
  }

  const std::size_t dim = std::size_t{1} << m;
  dense::Matrix<T> full(dim, dim);
  for (util::index_t row = 0; row < dim; ++row) {
    util::index_t gateRow = 0;
    for (int i = 0; i < k; ++i) {
      gateRow = (gateRow << 1) |
                util::getBit(row, positions[static_cast<std::size_t>(i)]);
    }
    for (util::index_t gateCol = 0; gateCol < (util::index_t{1} << k);
         ++gateCol) {
      const std::complex<T> value = u(gateRow, gateCol);
      if (value == std::complex<T>(0)) continue;
      util::index_t col = row;
      for (int i = 0; i < k; ++i) {
        const int pos = positions[static_cast<std::size_t>(i)];
        col = util::getBit(gateCol, util::bitPosition(i, k))
                  ? util::setBit(col, pos)
                  : util::clearBit(col, pos);
      }
      full(row, col) = value;
    }
  }
  return full;
}

/// Bit position of each `from` qubit within an index over window `to`
/// (MSB-first), shared by the diagonal embed/grow/multiply helpers.
inline std::vector<int> windowPositions(const std::vector<int>& from,
                                        const std::vector<int>& to) {
  const int m = static_cast<int>(to.size());
  std::vector<int> positions(from.size());
  for (std::size_t i = 0; i < from.size(); ++i) {
    const auto it = std::lower_bound(to.begin(), to.end(), from[i]);
    util::require(it != to.end() && *it == from[i],
                  "fusion window does not cover the gate qubits");
    positions[i] = util::bitPosition(static_cast<int>(it - to.begin()), m);
  }
  return positions;
}

/// The 2^k diagonal entries of a (diagonal) gate matrix.
template <typename T>
std::vector<std::complex<T>> diagonalOf(const dense::Matrix<T>& u) {
  std::vector<std::complex<T>> d(u.rows());
  for (std::size_t i = 0; i < d.size(); ++i) d[i] = u(i, i);
  return d;
}

/// Embeds the diagonal `d` over qubits `from` into window `to`:
/// out[r] = d[bits of r at the `from` positions] (identity elsewhere).
template <typename T>
std::vector<std::complex<T>> embedDiagonalInWindow(
    const std::vector<std::complex<T>>& d, const std::vector<int>& from,
    const std::vector<int>& to) {
  if (from == to) return d;
  const std::vector<int> positions = windowPositions(from, to);
  std::vector<std::complex<T>> out(std::size_t{1} << to.size());
  for (util::index_t r = 0; r < out.size(); ++r) {
    util::index_t gateRow = 0;
    for (const int pos : positions) {
      gateRow = (gateRow << 1) | util::getBit(r, pos);
    }
    out[r] = d[gateRow];
  }
  return out;
}

/// One diagonal factor of a block product: a gate's 2^k diagonal entries
/// over its ascending absolute qubits.  Diagonal blocks accumulate as a
/// list of factors and materialize through the pairwise tree below.
template <typename T>
struct DiagFactor {
  std::vector<std::complex<T>> d;
  std::vector<int> qubits;
};

/// XOR-delta table for sequential gathers.  gatherRow(r) selects the bits
/// of r at the gather positions (MSB-first); selection distributes over
/// XOR, so gatherRow(r ^ f) == gatherRow(r) ^ gatherRow(f).  Walking r
/// from 0 to 2^m - 1 flips exactly the ctz(r)+1 low bits at each
/// increment, and those flip patterns take only m+1 distinct values —
/// precomputing gatherRow of each turns the per-entry k-bit gather loop
/// into one ctz plus one XOR.  Fills deltas[j] = gatherRow of the pattern
/// with j low bits, for the qubits of `from` inside window `to` (deltas
/// must have room for |to|+1 entries; no allocation).
inline void fillGatherDeltas(const std::vector<int>& from,
                             const std::vector<int>& to,
                             util::index_t* deltas) {
  const int m = static_cast<int>(to.size());
  const int k = static_cast<int>(from.size());
  int positions[64];
  for (int i = 0; i < k; ++i) {
    const auto it = std::lower_bound(to.begin(), to.end(),
                                     from[static_cast<std::size_t>(i)]);
    util::require(it != to.end() && *it == from[static_cast<std::size_t>(i)],
                  "fusion window does not cover the gate qubits");
    positions[i] = util::bitPosition(static_cast<int>(it - to.begin()), m);
  }
  for (int j = 0; j <= m; ++j) {
    util::index_t g = 0;
    for (int i = 0; i < k; ++i) {
      if (positions[i] < j) g |= util::index_t{1} << (k - 1 - i);
    }
    deltas[j] = g;
  }
}

/// Pairwise merge of two adjacent diagonal factors: the elementwise
/// product b∘a over the union of their supports.  Entry order follows the
/// left-to-right gate order (a applied first), using the same split
/// complex multiply as every other diagonal accumulation site.
template <typename T>
DiagFactor<T> mergeDiagonal(const DiagFactor<T>& a, const DiagFactor<T>& b) {
  DiagFactor<T> out;
  out.qubits.reserve(a.qubits.size() + b.qubits.size());
  std::set_union(a.qubits.begin(), a.qubits.end(), b.qubits.begin(),
                 b.qubits.end(), std::back_inserter(out.qubits));
  const int m = static_cast<int>(out.qubits.size());
  const std::size_t dim = std::size_t{1} << m;
  util::index_t dA[65], dB[65];
  fillGatherDeltas(a.qubits, out.qubits, dA);
  fillGatherDeltas(b.qubits, out.qubits, dB);
  out.d.resize(dim);
  const std::complex<T>* __restrict__ ad = a.d.data();
  const std::complex<T>* __restrict__ bd = b.d.data();
  std::complex<T>* __restrict__ od = out.d.data();
  util::index_t ga = 0, gb = 0;
  for (util::index_t r = 0;;) {
    const std::complex<T> va = ad[ga];
    const std::complex<T> g = bd[gb];
    od[r] = std::complex<T>(g.real() * va.real() - g.imag() * va.imag(),
                            g.real() * va.imag() + g.imag() * va.real());
    if (++r == dim) break;
    const int j = util::countTrailingZeros(r) + 1;
    ga ^= dA[j];
    gb ^= dB[j];
  }
  return out;
}

/// Materializes a diagonal block product over `window` via a deterministic
/// pairwise-adjacent tree over its factors: neighbors merge while their
/// union supports are still narrow, so long runs at a wide window cost
/// O(2^k log S) instead of the O(S 2^k) of left-fold accumulation.  Both
/// fuseGates and rebindFusionPlan materialize through THIS function — the
/// tree fixes the float association order once for both, which is what
/// keeps a rebound block bit-identical to a freshly fused one.
template <typename T>
std::vector<std::complex<T>> materializeDiagonal(
    std::vector<DiagFactor<T>> factors, const std::vector<int>& window) {
  util::require(!factors.empty(),
                "materializeDiagonal: no diagonal factors");
  while (factors.size() > 1) {
    std::vector<DiagFactor<T>> next;
    next.reserve((factors.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < factors.size(); i += 2) {
      next.push_back(mergeDiagonal(factors[i], factors[i + 1]));
    }
    if (factors.size() % 2 != 0) next.push_back(std::move(factors.back()));
    factors.swap(next);
  }
  if (factors.front().qubits == window) return std::move(factors.front().d);
  return embedDiagonalInWindow(factors.front().d, factors.front().qubits,
                               window);
}

/// Dense 2^k x 2^k matrix with `d` on the diagonal (used when a dense
/// gate joins a so-far-diagonal block under the legacy mixed merging).
template <typename T>
dense::Matrix<T> denseFromDiagonal(const std::vector<std::complex<T>>& d) {
  dense::Matrix<T> m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

/// Accumulates one block's product from a sequence of (gate, qubits,
/// window) steps.  fuseGates drives it while scheduling and records the
/// steps; rebindFusionPlan drives it again from the recorded steps — the
/// SAME member functions run in the same order, so a rebound block is
/// bit-identical to a freshly fused one.
template <typename T>
struct BlockBuilder {
  std::vector<int> support;            ///< current window (ascending)
  bool diagonal = true;                ///< all gates so far diagonal
  dense::Matrix<T> matrix;             ///< dense accumulation
  std::vector<DiagFactor<T>> factors;  ///< deferred diagonal factors
  std::size_t gatesIn = 0;

  bool open() const noexcept { return gatesIn > 0; }

  /// Starts the block with its first gate over window `window`.
  void start(const qgates::QGate<T>& gate, const std::vector<int>& qubits,
             std::vector<int> window) {
    support = std::move(window);
    diagonal = gate.isDiagonal();
    factors.clear();
    if (diagonal) {
      factors.push_back({diagonalOf(gate.matrix()), qubits});
      matrix = dense::Matrix<T>();
    } else {
      matrix = embedInWindow(gate.matrix(), qubits, support);
    }
    gatesIn = 1;
  }

  /// Merges the next gate; `window` is the (possibly grown) support.
  /// Diagonal-on-diagonal merges only record the factor — the table
  /// product is deferred to materializeDiagonal at finish time, so a run
  /// of S diagonal gates costs one tree product instead of S full-table
  /// multiply passes at the (possibly wide) window.
  void add(const qgates::QGate<T>& gate, const std::vector<int>& qubits,
           const std::vector<int>& window) {
    if (diagonal && gate.isDiagonal()) {
      support = window;
      factors.push_back({diagonalOf(gate.matrix()), qubits});
    } else {
      if (diagonal) {
        // First dense gate in a so-far-diagonal block (legacy mixed
        // merging only; separateDiagonalRuns never lets this happen).
        matrix = denseFromDiagonal(
            materializeDiagonal(std::move(factors), support));
        factors.clear();
        diagonal = false;
      }
      if (window != support) {
        matrix = embedInWindow(matrix, support, window);
        support = window;
      }
      matrix = embedInWindow(gate.matrix(), qubits, support) * matrix;
    }
    ++gatesIn;
  }

  /// Materializes the accumulated product into a block and resets.
  FusedBlock<T> finish(std::vector<FusedStep> steps) {
    FusedBlock<T> block;
    block.qubits = std::move(support);
    block.matrix = std::move(matrix);
    if (diagonal && !factors.empty()) {
      block.diag = materializeDiagonal(std::move(factors), block.qubits);
    }
    block.diagonal = diagonal;
    block.gatesIn = gatesIn;
    block.steps = std::move(steps);
    support.clear();
    matrix = dense::Matrix<T>();
    factors.clear();
    diagonal = true;
    gatesIn = 0;
    return block;
  }
};

}  // namespace detail

/// Greedily schedules `gates` (applied left to right) into fused blocks:
/// each gate joins the open block while the union of supports still fits
/// the window; otherwise the block is flushed and a new one starts.  Gates
/// wider than the window pass through as single-gate blocks.  With
/// separateDiagonalRuns, diagonal and dense gates never share a block;
/// each maximal run of consecutive diagonal gates is packed first-fit
/// into as few diagonalMaxQubits windows as the packing finds — a legal
/// reorder, since diagonal matrices commute elementwise exactly.
template <typename T>
FusionPlan<T> fuseGates(const std::vector<GateRef<T>>& gates, int nbQubits,
                        const FusionOptions& options = {}) {
  const obs::ScopedSpan span("fusion/plan", "stage");
  util::require(options.maxQubits >= 1,
                "fusion window must span at least one qubit");
  const int denseWindow = std::min(options.maxQubits, nbQubits);
  const int diagWindow =
      options.separateDiagonalRuns
          ? std::min(options.diagonalMaxQubits > 0 ? options.diagonalMaxQubits
                                                   : options.maxQubits,
                     nbQubits)
          : denseWindow;

  FusionPlan<T> plan;
  detail::BlockBuilder<T> builder;
  std::vector<FusedStep> steps;

  const auto flush = [&]() {
    if (!builder.open()) return;
    plan.blocks.push_back(builder.finish(std::move(steps)));
    steps.clear();
  };

  // Pending maximal run of consecutive diagonal gates (separated mode).
  // Diagonal matrices commute elementwise — exactly, even in floating
  // point — so the run may be PACKED first-fit into few wide windows
  // instead of split by greedy in-order growth: on a QAOA complete-graph
  // cost layer this cuts 7 fragmented 12-qubit blocks down to 3.  Fewer
  // blocks mean fewer full-state sweeps AND a cheaper rebind tree.
  std::vector<std::size_t> runIndices;
  std::vector<std::vector<int>> runQubits;
  const auto flushDiagonalRun = [&]() {
    if (runIndices.empty()) return;
    std::vector<bool> used(runIndices.size(), false);
    for (std::size_t i = 0; i < runIndices.size(); ++i) {
      if (used[i]) continue;
      std::vector<int> window = runQubits[i];
      std::vector<detail::DiagFactor<T>> factors;
      std::vector<FusedStep> blockSteps;
      factors.push_back(
          {detail::diagonalOf(gates[runIndices[i]].gate->matrix()),
           runQubits[i]});
      blockSteps.push_back({runIndices[i], runQubits[i], window});
      used[i] = true;
      for (std::size_t j = i + 1; j < runIndices.size(); ++j) {
        if (used[j]) continue;
        std::vector<int> merged;
        merged.reserve(window.size() + runQubits[j].size());
        std::set_union(window.begin(), window.end(), runQubits[j].begin(),
                       runQubits[j].end(), std::back_inserter(merged));
        if (static_cast<int>(merged.size()) > diagWindow) continue;
        window = std::move(merged);
        factors.push_back(
            {detail::diagonalOf(gates[runIndices[j]].gate->matrix()),
             runQubits[j]});
        blockSteps.push_back({runIndices[j], runQubits[j], window});
        used[j] = true;
      }
      FusedBlock<T> block;
      block.qubits = window;
      block.diag = detail::materializeDiagonal(std::move(factors), window);
      block.diagonal = true;
      block.gatesIn = blockSteps.size();
      block.steps = std::move(blockSteps);
      plan.blocks.push_back(std::move(block));
    }
    runIndices.clear();
    runQubits.clear();
  };

  for (std::size_t index = 0; index < gates.size(); ++index) {
    const auto& ref = gates[index];
    util::require(ref.gate != nullptr, "fuseGates: null gate reference");
    std::vector<int> qubits = ref.gate->qubits();
    for (int& q : qubits) q += ref.offset;
    util::checkQubit(qubits.front(), nbQubits);
    util::checkQubit(qubits.back(), nbQubits);

    const bool gateDiagonal = ref.gate->isDiagonal();
    if (options.separateDiagonalRuns && gateDiagonal &&
        static_cast<int>(qubits.size()) <= diagWindow) {
      // Close any open dense block, then let the diagonal run accumulate.
      flush();
      runIndices.push_back(index);
      runQubits.push_back(std::move(qubits));
      continue;
    }
    // A dense (or window-exceeding diagonal) gate ends the diagonal run.
    flushDiagonalRun();
    const int window = (options.separateDiagonalRuns && gateDiagonal)
                           ? diagWindow
                           : denseWindow;

    if (static_cast<int>(qubits.size()) > window) {
      // Wider than the window: emit unfused as its own block.
      flush();
      builder.start(*ref.gate, qubits, qubits);
      steps.push_back({index, qubits, qubits});
      flush();
      continue;
    }

    std::vector<int> merged;
    merged.reserve(builder.support.size() + qubits.size());
    std::set_union(builder.support.begin(), builder.support.end(),
                   qubits.begin(), qubits.end(), std::back_inserter(merged));
    if (static_cast<int>(merged.size()) > window) {
      flush();
      merged = qubits;
    }

    if (!builder.open()) {
      builder.start(*ref.gate, qubits, merged);
      steps.push_back({index, std::move(qubits), std::move(merged)});
    } else {
      builder.add(*ref.gate, qubits, merged);
      steps.push_back({index, std::move(qubits), std::move(merged)});
    }
  }
  flushDiagonalRun();
  flush();

  BlockingOptions blocking;
  blocking.enabled = options.blocking;
  blocking.blockQubits = options.blockQubits;
  blocking.minRunBlocks = options.minBlockRun;
  plan.schedule = buildBlockSchedule<T>(plan.blocks, nbQubits, blocking);
  return plan;
}

/// Recomputes every block product of `plan` from the CURRENT matrices of
/// `gates`, replaying each block's recorded recipe step by step.  Use
/// after mutating gate parameters (setTheta): a fusion plan captures gate
/// matrices at build time and does NOT see later parameter changes.  The
/// replay runs the exact accumulation sequence of fuseGates, so a rebound
/// plan is bit-identical to fusing the mutated gates from scratch — while
/// skipping the scheduling pass and reusing the block schedule (the
/// schedule depends only on gate supports, which rebinding cannot change).
///
/// `firstBlock` skips the rebind of leading blocks — callers that know a
/// prefix of the plan is parameter-invariant (the batched engine's cached
/// prefix) avoid rematerializing products that cannot have changed.
template <typename T>
void rebindFusionPlan(FusionPlan<T>& plan,
                      const std::vector<GateRef<T>>& gates,
                      std::size_t firstBlock = 0) {
  const obs::ScopedSpan span("fusion/rebind", "stage");
  detail::BlockBuilder<T> builder;
  for (std::size_t b = firstBlock; b < plan.blocks.size(); ++b) {
    auto& block = plan.blocks[b];
    util::require(!block.steps.empty(),
                  "rebindFusionPlan: plan has no recorded recipe");
    if (block.diagonal) {
      // Diagonal blocks: regather the per-gate factors and rerun the SAME
      // pairwise-tree product fuseGates materialized through — bit-
      // identical by sharing the code, and far cheaper than replaying S
      // full-table passes at the block's (possibly wide) window.
      std::vector<detail::DiagFactor<T>> factors;
      factors.reserve(block.steps.size());
      for (const auto& step : block.steps) {
        util::require(step.gateIndex < gates.size(),
                      "rebindFusionPlan: recipe gate index out of range");
        const auto& ref = gates[step.gateIndex];
        util::require(ref.gate != nullptr,
                      "rebindFusionPlan: null gate reference");
        factors.push_back(
            {detail::diagonalOf(ref.gate->matrix()), step.qubits});
      }
      block.diag =
          detail::materializeDiagonal(std::move(factors), block.qubits);
      continue;
    }
    bool first = true;
    for (const auto& step : block.steps) {
      util::require(step.gateIndex < gates.size(),
                    "rebindFusionPlan: recipe gate index out of range");
      const auto& ref = gates[step.gateIndex];
      util::require(ref.gate != nullptr,
                    "rebindFusionPlan: null gate reference");
      if (first) {
        builder.start(*ref.gate, step.qubits, step.window);
        first = false;
      } else {
        builder.add(*ref.gate, step.qubits, step.window);
      }
    }
    std::vector<FusedStep> steps = std::move(block.steps);
    const std::vector<int> qubits = std::move(block.qubits);
    block = builder.finish(std::move(steps));
    util::require(block.qubits == qubits,
                  "rebindFusionPlan: recipe window drifted from the plan");
  }
}

namespace detail {

/// Applies one fused block with its own full-state sweep: diagonal blocks
/// go through the run-structured diagonal sweep, dense blocks through
/// apply1/apply2/applyK.
template <typename State, typename T>
void applyFusedBlock(State& state, int nbQubits,
                     const FusedBlock<T>& block, std::uint64_t bytes) {
  if (block.diagonal) {
    const obs::PathTimer timer(KernelPath::kFusedDiagonalK);
    applyDiagonalBlock(state, nbQubits, block.qubits, block.diag);
    obs::metrics().countGate(KernelPath::kFusedDiagonalK, nullptr, bytes);
  } else if (block.qubits.size() == 1) {
    const obs::PathTimer timer(KernelPath::kFusedDenseK);
    apply1(state, nbQubits, block.qubits.front(), block.matrix);
    obs::metrics().countGate(KernelPath::kFusedDenseK, nullptr, bytes);
  } else if (block.qubits.size() == 2) {
    const obs::PathTimer timer(KernelPath::kFusedDenseK);
    apply2(state, nbQubits, block.qubits[0], block.qubits[1], block.matrix);
    obs::metrics().countGate(KernelPath::kFusedDenseK, nullptr, bytes);
  } else {
    const obs::PathTimer timer(KernelPath::kFusedDenseK);
    applyK(state, nbQubits, block.qubits, block.matrix);
    obs::metrics().countGate(KernelPath::kFusedDenseK, nullptr, bytes);
  }
  obs::flightRecorder().record(
      obs::FlightEventKind::kFusedBlock,
      static_cast<std::uint16_t>(block.diagonal
                                     ? KernelPath::kFusedDiagonalK
                                     : KernelPath::kFusedDenseK),
      obs::qubitMask64(block.qubits),
      static_cast<std::uint32_t>(block.gatesIn));
}

}  // namespace detail

/// Applies a fusion plan to the state.  Blocked runs in the plan's
/// schedule execute as ONE streamed chunked sweep each (counted as
/// kBlocked with one sweep's worth of bytes — so their effective GB/s in
/// the obs report measures the blocking win and can exceed DRAM
/// bandwidth); all other blocks get one full sweep each through the
/// fused-path kernels.  Block applications and the plan's fusion stats
/// are recorded in obs::metrics(), and each sweep is timed into the
/// per-path latency histograms (by kernel path only; the per-kind
/// counters stay an InstrumentedBackend concern).
///
/// Re-entrant: `plan` is read-only and all scratch is local, so many
/// threads may apply the same plan to their own states concurrently.
///
/// `firstBlock` starts the application mid-plan: leading blocks are
/// skipped (the batched engine applies its cached parameter-free prefix
/// as one state copy instead).  A blocked run straddling `firstBlock`
/// degrades to per-block full sweeps for its tail — bit-identical to the
/// chunked sweep because kernel path choice never depends on the chunk
/// length, only on qubit positions.  Fusion counters cover only the
/// blocks actually applied.
template <typename State, typename T>
void applyFusionPlan(State& state, int nbQubits,
                     const FusionPlan<T>& plan, std::size_t firstBlock = 0) {
  const std::uint64_t bytes =
      2 * static_cast<std::uint64_t>(state.size()) * sizeof(std::complex<T>);
  if (plan.schedule.items.empty()) {
    for (std::size_t i = firstBlock; i < plan.blocks.size(); ++i) {
      detail::applyFusedBlock(state, nbQubits, plan.blocks[i], bytes);
    }
  } else {
    for (const auto& item : plan.schedule.items) {
      if (item.first + item.count <= firstBlock) continue;
      if (item.blocked && item.first >= firstBlock) {
        const obs::PathTimer timer(KernelPath::kBlocked);
        applyBlockedRun(state, nbQubits, plan.blocks, item.first, item.count,
                        plan.schedule.blockQubits);
        obs::metrics().countGate(KernelPath::kBlocked, nullptr, bytes);
        obs::flightRecorder().record(
            obs::FlightEventKind::kBlockedRun,
            static_cast<std::uint16_t>(KernelPath::kBlocked),
            /*qubitMask=*/0, static_cast<std::uint32_t>(item.count));
      } else {
        const std::size_t start = std::max(item.first, firstBlock);
        for (std::size_t i = start; i < item.first + item.count; ++i) {
          detail::applyFusedBlock(state, nbQubits, plan.blocks[i], bytes);
        }
      }
    }
  }
  FusionStats stats;
  for (std::size_t i = firstBlock; i < plan.blocks.size(); ++i) {
    stats.gatesIn += plan.blocks[i].gatesIn;
    ++stats.blocksOut;
  }
  stats.sweepsSaved = stats.gatesIn - stats.blocksOut;
  obs::metrics().countFusion(stats.gatesIn, stats.blocksOut,
                             stats.sweepsSaved);
}

}  // namespace qclab::sim

#pragma once

/// \file fusion.hpp
/// \brief Simulation-time gate fusion (the Qulacs-style CPU optimization).
///
/// Applying one gate per pass over the 2^n-amplitude state makes deep
/// circuits memory-bandwidth bound: every gate streams the whole state
/// through the cache hierarchy.  The fusion scheduler greedily merges
/// maximal runs of adjacent gates whose combined qubit support fits a
/// <= maxQubits window (default 4) into one dense block, so dozens of
/// full-state sweeps collapse into a single applyK sweep per block.
/// Runs in which every merged gate is diagonal keep a diagonal block and
/// go through the cheaper applyDiagonalK sweep instead.
///
/// The scheduler is a pure function over gate sequences (fuseGates), so a
/// plan is built once per circuit run and applied to every simulation
/// branch; QCircuit::simulate drives it behind SimulateOptions::fusion.
///
/// On top of the fused blocks the plan carries a cache-blocking schedule
/// (blocking.hpp): maximal runs of consecutive blocks whose qubits all
/// live in the low-bit-position window are executed with ONE streaming
/// sweep of the state in L2-sized chunks instead of one sweep per block.

#include <algorithm>
#include <complex>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "qclab/dense/matrix.hpp"
#include "qclab/obs/histogram.hpp"
#include "qclab/obs/metrics.hpp"
#include "qclab/obs/trace.hpp"
#include "qclab/qgates/qgate.hpp"
#include "qclab/sim/blocking.hpp"
#include "qclab/sim/kernel_path.hpp"
#include "qclab/sim/kernels.hpp"
#include "qclab/util/bits.hpp"
#include "qclab/util/errors.hpp"

namespace qclab::sim {

/// Tuning knobs of the fusion scheduler.
struct FusionOptions {
  /// Largest fused-block support; blocks hold 2^maxQubits x 2^maxQubits
  /// dense matrices, so values beyond ~6 trade sweep savings for per-block
  /// arithmetic.  Gates wider than the window pass through unfused.
  int maxQubits = 4;
  /// Cache-block runs of low-position fused blocks into single streamed
  /// sweeps (see blocking.hpp).
  bool blocking = true;
  /// Chunk size in qubits for blocked sweeps; 0 = size to the L2 cache.
  int blockQubits = 0;
  /// Minimum consecutive blockable fused blocks worth a blocked sweep.
  std::size_t minBlockRun = 2;
};

/// A gate reference inside a fusion run: the gate plus the accumulated
/// qubit offset of the (sub-)circuit it came from.
template <typename T>
struct GateRef {
  const qgates::QGate<T>* gate = nullptr;
  int offset = 0;
};

/// One scheduled block: the product of a run of gates over a common
/// ascending qubit window (MSB-first, like every gate matrix).
template <typename T>
struct FusedBlock {
  std::vector<int> qubits;   ///< ascending absolute qubit indices
  dense::Matrix<T> matrix;   ///< 2^k x 2^k product of the merged gates
  bool diagonal = false;     ///< every merged gate was diagonal
  std::size_t gatesIn = 0;   ///< number of gates merged into this block
};

/// Aggregate scheduling outcome (the obs fusion counters use the same
/// three numbers).
struct FusionStats {
  std::uint64_t gatesIn = 0;      ///< gates consumed by the scheduler
  std::uint64_t blocksOut = 0;    ///< blocks emitted
  std::uint64_t sweepsSaved = 0;  ///< full-state sweeps avoided (in - out)
};

/// An ordered list of fused blocks, applied left to right.  The block
/// schedule partitions them into cache-blocked and plain runs; an empty
/// schedule means every block gets its own full-state sweep.
template <typename T>
struct FusionPlan {
  std::vector<FusedBlock<T>> blocks;
  BlockSchedule schedule;

  FusionStats stats() const noexcept {
    FusionStats s;
    for (const auto& block : blocks) {
      s.gatesIn += block.gatesIn;
      ++s.blocksOut;
    }
    s.sweepsSaved = s.gatesIn - s.blocksOut;
    return s;
  }
};

namespace detail {

/// Embeds a matrix over the ascending qubit list `from` into the superset
/// window `to` (identity on window qubits the gate does not touch), keeping
/// the MSB-first qubit ordering of both lists.
template <typename T>
dense::Matrix<T> embedInWindow(const dense::Matrix<T>& u,
                               const std::vector<int>& from,
                               const std::vector<int>& to) {
  if (from == to) return u;
  const int k = static_cast<int>(from.size());
  const int m = static_cast<int>(to.size());

  // Bit position of each `from` qubit within a window index.
  std::vector<int> positions(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const auto it = std::lower_bound(to.begin(), to.end(),
                                     from[static_cast<std::size_t>(i)]);
    util::require(it != to.end() && *it == from[static_cast<std::size_t>(i)],
                  "fusion window does not cover the gate qubits");
    positions[static_cast<std::size_t>(i)] =
        util::bitPosition(static_cast<int>(it - to.begin()), m);
  }

  const std::size_t dim = std::size_t{1} << m;
  dense::Matrix<T> full(dim, dim);
  for (util::index_t row = 0; row < dim; ++row) {
    util::index_t gateRow = 0;
    for (int i = 0; i < k; ++i) {
      gateRow = (gateRow << 1) |
                util::getBit(row, positions[static_cast<std::size_t>(i)]);
    }
    for (util::index_t gateCol = 0; gateCol < (util::index_t{1} << k);
         ++gateCol) {
      const std::complex<T> value = u(gateRow, gateCol);
      if (value == std::complex<T>(0)) continue;
      util::index_t col = row;
      for (int i = 0; i < k; ++i) {
        const int pos = positions[static_cast<std::size_t>(i)];
        col = util::getBit(gateCol, util::bitPosition(i, k))
                  ? util::setBit(col, pos)
                  : util::clearBit(col, pos);
      }
      full(row, col) = value;
    }
  }
  return full;
}

}  // namespace detail

/// Greedily schedules `gates` (applied left to right) into fused blocks:
/// each gate joins the open block while the union of supports still fits
/// the window; otherwise the block is flushed and a new one starts.  Gates
/// wider than the window pass through as single-gate blocks.
template <typename T>
FusionPlan<T> fuseGates(const std::vector<GateRef<T>>& gates, int nbQubits,
                        const FusionOptions& options = {}) {
  const obs::ScopedSpan span("fusion/plan", "stage");
  util::require(options.maxQubits >= 1,
                "fusion window must span at least one qubit");
  const int window = std::min(options.maxQubits, nbQubits);

  FusionPlan<T> plan;
  std::vector<int> support;  // ascending qubits of the open block
  dense::Matrix<T> matrix;   // product over `support`
  bool diagonal = true;
  std::size_t gatesIn = 0;

  const auto flush = [&]() {
    if (gatesIn == 0) return;
    FusedBlock<T> block;
    block.qubits = std::move(support);
    block.matrix = std::move(matrix);
    block.diagonal = diagonal;
    block.gatesIn = gatesIn;
    plan.blocks.push_back(std::move(block));
    support.clear();
    diagonal = true;
    gatesIn = 0;
  };

  for (const auto& ref : gates) {
    util::require(ref.gate != nullptr, "fuseGates: null gate reference");
    std::vector<int> qubits = ref.gate->qubits();
    for (int& q : qubits) q += ref.offset;
    util::checkQubit(qubits.front(), nbQubits);
    util::checkQubit(qubits.back(), nbQubits);

    if (static_cast<int>(qubits.size()) > window) {
      // Wider than the window: emit unfused as its own block.
      flush();
      FusedBlock<T> block;
      block.qubits = std::move(qubits);
      block.matrix = ref.gate->matrix();
      block.diagonal = ref.gate->isDiagonal();
      block.gatesIn = 1;
      plan.blocks.push_back(std::move(block));
      continue;
    }

    std::vector<int> merged;
    merged.reserve(support.size() + qubits.size());
    std::set_union(support.begin(), support.end(), qubits.begin(),
                   qubits.end(), std::back_inserter(merged));
    if (static_cast<int>(merged.size()) > window) {
      flush();
      merged = qubits;
    }

    if (gatesIn == 0) {
      support = std::move(merged);
      matrix = detail::embedInWindow(ref.gate->matrix(), qubits, support);
      diagonal = ref.gate->isDiagonal();
      gatesIn = 1;
    } else {
      if (merged != support) {
        matrix = detail::embedInWindow(matrix, support, merged);
        support = std::move(merged);
      }
      matrix = detail::embedInWindow(ref.gate->matrix(), qubits, support) *
               matrix;
      diagonal = diagonal && ref.gate->isDiagonal();
      ++gatesIn;
    }
  }
  flush();

  BlockingOptions blocking;
  blocking.enabled = options.blocking;
  blocking.blockQubits = options.blockQubits;
  blocking.minRunBlocks = options.minBlockRun;
  plan.schedule = buildBlockSchedule(plan.blocks, nbQubits, blocking);
  return plan;
}

namespace detail {

/// Applies one fused block with its own full-state sweep: diagonal blocks
/// go through applyDiagonalK, dense blocks through apply1/apply2/applyK.
template <typename T>
void applyFusedBlock(std::vector<std::complex<T>>& state, int nbQubits,
                     const FusedBlock<T>& block, std::uint64_t bytes) {
  if (block.diagonal) {
    const obs::PathTimer timer(KernelPath::kFusedDiagonalK);
    std::vector<std::complex<T>> diag(block.matrix.rows());
    for (std::size_t i = 0; i < diag.size(); ++i) {
      diag[i] = block.matrix(i, i);
    }
    applyDiagonalK(state, nbQubits, block.qubits, diag);
    obs::metrics().countGate(KernelPath::kFusedDiagonalK, nullptr, bytes);
  } else if (block.qubits.size() == 1) {
    const obs::PathTimer timer(KernelPath::kFusedDenseK);
    apply1(state, nbQubits, block.qubits.front(), block.matrix);
    obs::metrics().countGate(KernelPath::kFusedDenseK, nullptr, bytes);
  } else if (block.qubits.size() == 2) {
    const obs::PathTimer timer(KernelPath::kFusedDenseK);
    apply2(state, nbQubits, block.qubits[0], block.qubits[1], block.matrix);
    obs::metrics().countGate(KernelPath::kFusedDenseK, nullptr, bytes);
  } else {
    const obs::PathTimer timer(KernelPath::kFusedDenseK);
    applyK(state, nbQubits, block.qubits, block.matrix);
    obs::metrics().countGate(KernelPath::kFusedDenseK, nullptr, bytes);
  }
}

}  // namespace detail

/// Applies a fusion plan to the state.  Blocked runs in the plan's
/// schedule execute as ONE streamed chunked sweep each (counted as
/// kBlocked with one sweep's worth of bytes — so their effective GB/s in
/// the obs report measures the blocking win and can exceed DRAM
/// bandwidth); all other blocks get one full sweep each through the
/// fused-path kernels.  Block applications and the plan's fusion stats
/// are recorded in obs::metrics(), and each sweep is timed into the
/// per-path latency histograms (by kernel path only; the per-kind
/// counters stay an InstrumentedBackend concern).
template <typename T>
void applyFusionPlan(std::vector<std::complex<T>>& state, int nbQubits,
                     const FusionPlan<T>& plan) {
  const std::uint64_t bytes =
      2 * static_cast<std::uint64_t>(state.size()) * sizeof(std::complex<T>);
  if (plan.schedule.items.empty()) {
    for (const auto& block : plan.blocks) {
      detail::applyFusedBlock(state, nbQubits, block, bytes);
    }
  } else {
    for (const auto& item : plan.schedule.items) {
      if (item.blocked) {
        const obs::PathTimer timer(KernelPath::kBlocked);
        applyBlockedRun(state, nbQubits, plan.blocks, item.first, item.count,
                        plan.schedule.blockQubits);
        obs::metrics().countGate(KernelPath::kBlocked, nullptr, bytes);
      } else {
        for (std::size_t i = item.first; i < item.first + item.count; ++i) {
          detail::applyFusedBlock(state, nbQubits, plan.blocks[i], bytes);
        }
      }
    }
  }
  const FusionStats stats = plan.stats();
  obs::metrics().countFusion(stats.gatesIn, stats.blocksOut,
                             stats.sweepsSaved);
}

}  // namespace qclab::sim

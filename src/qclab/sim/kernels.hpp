#pragma once

/// \file kernels.hpp
/// \brief Optimized in-place gate-application kernels (the QCLAB++ engine).
///
/// Instead of forming the extended unitary I (x) U' (x) I like the MATLAB
/// toolbox, these kernels update the state vector in place by iterating over
/// the 2^{n-k} gate subspaces with bit-insertion index arithmetic.  All hot
/// loops are OpenMP-parallel; the paper's GPU backend is substituted by
/// these CPU kernels (see DESIGN.md).

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <utility>
#include <vector>

#include "qclab/dense/matrix.hpp"
#include "qclab/util/bits.hpp"
#include "qclab/util/errors.hpp"

namespace qclab::sim {

/// Threshold below which kernels stay single-threaded: parallelising tiny
/// states costs more than it saves.
inline constexpr std::int64_t kOmpThreshold = 1 << 12;

/// Applies a 2x2 gate to `qubit` of an n-qubit state, in place.
template <typename T>
void apply1(std::vector<std::complex<T>>& state, int nbQubits, int qubit,
            const dense::Matrix<T>& u) {
  util::checkQubit(qubit, nbQubits);
  util::require(u.rows() == 2 && u.cols() == 2, "apply1 needs a 2x2 matrix");
  const int pos = util::bitPosition(qubit, nbQubits);
  const std::complex<T> u00 = u(0, 0), u01 = u(0, 1);
  const std::complex<T> u10 = u(1, 0), u11 = u(1, 1);
  const std::int64_t half = std::int64_t{1} << (nbQubits - 1);
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (half >= kOmpThreshold)
#endif
  for (std::int64_t base = 0; base < half; ++base) {
    const util::index_t i0 =
        util::insertZeroBit(static_cast<util::index_t>(base), pos);
    const util::index_t i1 = util::setBit(i0, pos);
    const std::complex<T> a0 = state[i0];
    const std::complex<T> a1 = state[i1];
    state[i0] = u00 * a0 + u01 * a1;
    state[i1] = u10 * a0 + u11 * a1;
  }
}

/// Applies a diagonal 2x2 gate diag(d0, d1) to `qubit`, in place.
template <typename T>
void applyDiagonal1(std::vector<std::complex<T>>& state, int nbQubits,
                    int qubit, std::complex<T> d0, std::complex<T> d1) {
  util::checkQubit(qubit, nbQubits);
  const int pos = util::bitPosition(qubit, nbQubits);
  const std::int64_t dim = std::int64_t{1} << nbQubits;
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (dim >= kOmpThreshold)
#endif
  for (std::int64_t i = 0; i < dim; ++i) {
    state[i] *= util::getBit(static_cast<util::index_t>(i), pos) ? d1 : d0;
  }
}

/// Applies a 2x2 gate to `target`, controlled on `controls` being in the
/// per-control `controlStates`, in place.  Only the active subspace
/// (2^{n - nc - 1} pairs) is touched.
template <typename T>
void applyControlled1(std::vector<std::complex<T>>& state, int nbQubits,
                      const std::vector<int>& controls,
                      const std::vector<int>& controlStates, int target,
                      const dense::Matrix<T>& u) {
  util::checkQubit(target, nbQubits);
  util::require(controls.size() == controlStates.size(),
                "controls/controlStates length mismatch");
  util::require(u.rows() == 2 && u.cols() == 2,
                "applyControlled1 needs a 2x2 matrix");

  // Fixed bit positions (controls + target), ascending, with their values.
  std::vector<std::pair<int, util::index_t>> fixed;
  fixed.reserve(controls.size() + 1);
  for (std::size_t i = 0; i < controls.size(); ++i) {
    util::checkQubit(controls[i], nbQubits);
    util::require(controls[i] != target, "control equals target");
    fixed.emplace_back(util::bitPosition(controls[i], nbQubits),
                       static_cast<util::index_t>(controlStates[i]));
  }
  const int targetPos = util::bitPosition(target, nbQubits);
  fixed.emplace_back(targetPos, 0);
  std::sort(fixed.begin(), fixed.end());

  const int nbFixed = static_cast<int>(fixed.size());
  const std::int64_t count = std::int64_t{1} << (nbQubits - nbFixed);
  const std::complex<T> u00 = u(0, 0), u01 = u(0, 1);
  const std::complex<T> u10 = u(1, 0), u11 = u(1, 1);
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (count >= kOmpThreshold)
#endif
  for (std::int64_t base = 0; base < count; ++base) {
    util::index_t i0 = static_cast<util::index_t>(base);
    for (const auto& [pos, value] : fixed) {
      i0 = util::insertBit(i0, pos, value);
    }
    const util::index_t i1 = util::setBit(i0, targetPos);
    const std::complex<T> a0 = state[i0];
    const std::complex<T> a1 = state[i1];
    state[i0] = u00 * a0 + u01 * a1;
    state[i1] = u10 * a0 + u11 * a1;
  }
}

/// Applies a diagonal 2x2 gate diag(d0, d1) to `target`, controlled on
/// `controls` being in the per-control `controlStates`, in place.  Only the
/// active subspace (2^{n - nc} amplitudes) is touched, with one multiply
/// per amplitude — the fast path for CZ / CPhase / CRZ-like gates that the
/// dense pair-update of applyControlled1 would overwork.
template <typename T>
void applyControlledDiagonal1(std::vector<std::complex<T>>& state,
                              int nbQubits, const std::vector<int>& controls,
                              const std::vector<int>& controlStates,
                              int target, std::complex<T> d0,
                              std::complex<T> d1) {
  util::checkQubit(target, nbQubits);
  util::require(controls.size() == controlStates.size(),
                "controls/controlStates length mismatch");

  // Fixed bit positions (controls + target), ascending, with their values.
  std::vector<std::pair<int, util::index_t>> fixed;
  fixed.reserve(controls.size() + 1);
  for (std::size_t i = 0; i < controls.size(); ++i) {
    util::checkQubit(controls[i], nbQubits);
    util::require(controls[i] != target, "control equals target");
    fixed.emplace_back(util::bitPosition(controls[i], nbQubits),
                       static_cast<util::index_t>(controlStates[i]));
  }
  const int targetPos = util::bitPosition(target, nbQubits);
  fixed.emplace_back(targetPos, 0);
  std::sort(fixed.begin(), fixed.end());

  const int nbFixed = static_cast<int>(fixed.size());
  const std::int64_t count = std::int64_t{1} << (nbQubits - nbFixed);
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (count >= kOmpThreshold)
#endif
  for (std::int64_t base = 0; base < count; ++base) {
    util::index_t i0 = static_cast<util::index_t>(base);
    for (const auto& [pos, value] : fixed) {
      i0 = util::insertBit(i0, pos, value);
    }
    const util::index_t i1 = util::setBit(i0, targetPos);
    state[i0] *= d0;
    state[i1] *= d1;
  }
}

/// Swaps qubits q0 and q1, in place (permutation only, no arithmetic).
template <typename T>
void applySwap(std::vector<std::complex<T>>& state, int nbQubits, int qubit0,
               int qubit1) {
  util::checkQubit(qubit0, nbQubits);
  util::checkQubit(qubit1, nbQubits);
  util::require(qubit0 != qubit1, "swap needs distinct qubits");
  const int p0 = util::bitPosition(qubit0, nbQubits);
  const int p1 = util::bitPosition(qubit1, nbQubits);
  const int lo = std::min(p0, p1);
  const int hi = std::max(p0, p1);
  const std::int64_t count = std::int64_t{1} << (nbQubits - 2);
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (count >= kOmpThreshold)
#endif
  for (std::int64_t base = 0; base < count; ++base) {
    // Indices with bit(lo) = 1, bit(hi) = 0; swap with the (0, 1) partner.
    util::index_t i = util::insertZeroBit(static_cast<util::index_t>(base), lo);
    i = util::insertZeroBit(i, hi);
    const util::index_t i01 = util::setBit(i, lo);
    const util::index_t i10 = util::setBit(i, hi);
    std::swap(state[i01], state[i10]);
  }
}

/// Applies a general k-qubit gate on the (ascending, MSB-first) `qubits`
/// list, in place, via gather / dense multiply / scatter per subspace.
template <typename T>
void applyK(std::vector<std::complex<T>>& state, int nbQubits,
            const std::vector<int>& qubits, const dense::Matrix<T>& u) {
  const int k = static_cast<int>(qubits.size());
  util::require(k >= 1 && k <= nbQubits, "gate qubit count out of range");
  const std::size_t dim = std::size_t{1} << k;
  util::require(u.rows() == dim && u.cols() == dim,
                "applyK matrix dimension mismatch");

  // Gate-bit positions, ascending (for insertion), and the offset of each
  // gate-subspace index r (MSB-first over `qubits`).
  std::vector<int> positions(k);
  for (int i = 0; i < k; ++i) {
    util::checkQubit(qubits[i], nbQubits);
    if (i > 0) {
      util::require(qubits[i] > qubits[i - 1],
                    "applyK qubits must be strictly ascending");
    }
    positions[i] = util::bitPosition(qubits[i], nbQubits);
  }
  std::sort(positions.begin(), positions.end());

  std::vector<util::index_t> offsets(dim, 0);
  for (util::index_t r = 0; r < dim; ++r) {
    util::index_t offset = 0;
    for (int i = 0; i < k; ++i) {
      if (util::getBit(r, util::bitPosition(i, k))) {
        offset = util::setBit(offset, util::bitPosition(qubits[i], nbQubits));
      }
    }
    offsets[r] = offset;
  }

  const std::int64_t count = std::int64_t{1} << (nbQubits - k);
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel if (count >= kOmpThreshold)
#endif
  {
    std::vector<std::complex<T>> gathered(dim);
#ifdef QCLAB_HAS_OPENMP
#pragma omp for schedule(static)
#endif
    for (std::int64_t outer = 0; outer < count; ++outer) {
      util::index_t base = static_cast<util::index_t>(outer);
      for (int pos : positions) base = util::insertZeroBit(base, pos);
      for (util::index_t r = 0; r < dim; ++r) {
        gathered[r] = state[base | offsets[r]];
      }
      for (util::index_t r = 0; r < dim; ++r) {
        std::complex<T> sum(0);
        for (util::index_t c = 0; c < dim; ++c) {
          sum += u(r, c) * gathered[c];
        }
        state[base | offsets[r]] = sum;
      }
    }
  }
}

/// Applies a diagonal k-qubit gate given by its 2^k diagonal entries on
/// the (ascending, MSB-first) `qubits` list, in place.  One multiply per
/// amplitude — the fast path for RZZ / CZ-like gates.
template <typename T>
void applyDiagonalK(std::vector<std::complex<T>>& state, int nbQubits,
                    const std::vector<int>& qubits,
                    const std::vector<std::complex<T>>& diagonal) {
  const int k = static_cast<int>(qubits.size());
  util::require(k >= 1 && k <= nbQubits, "gate qubit count out of range");
  util::require(diagonal.size() == (std::size_t{1} << k),
                "diagonal length mismatch");
  std::vector<int> positions(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    util::checkQubit(qubits[static_cast<std::size_t>(i)], nbQubits);
    if (i > 0) {
      util::require(qubits[static_cast<std::size_t>(i)] >
                        qubits[static_cast<std::size_t>(i - 1)],
                    "applyDiagonalK qubits must be strictly ascending");
    }
    positions[static_cast<std::size_t>(i)] =
        util::bitPosition(qubits[static_cast<std::size_t>(i)], nbQubits);
  }
  const std::int64_t dim = std::int64_t{1} << nbQubits;
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (dim >= kOmpThreshold)
#endif
  for (std::int64_t i = 0; i < dim; ++i) {
    util::index_t row = 0;
    for (int b = 0; b < k; ++b) {
      row = (row << 1) |
            util::getBit(static_cast<util::index_t>(i),
                         positions[static_cast<std::size_t>(b)]);
    }
    state[i] *= diagonal[row];
  }
}

/// Probability of measuring |0> on `qubit` (paper §3.3, Eq. for P(|0>)).
template <typename T>
T measureProbability0(const std::vector<std::complex<T>>& state, int nbQubits,
                      int qubit) {
  util::checkQubit(qubit, nbQubits);
  const int pos = util::bitPosition(qubit, nbQubits);
  const std::int64_t half = std::int64_t{1} << (nbQubits - 1);
  T p0(0);
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) reduction(+ : p0) \
    if (half >= kOmpThreshold)
#endif
  for (std::int64_t base = 0; base < half; ++base) {
    const util::index_t i0 =
        util::insertZeroBit(static_cast<util::index_t>(base), pos);
    p0 += std::norm(state[i0]);
  }
  return p0;
}

/// Collapses `qubit` onto `outcome` and renormalizes by 1/sqrt(probability)
/// (paper §3.3): amplitudes of the other outcome are zeroed.
template <typename T>
void collapse(std::vector<std::complex<T>>& state, int nbQubits, int qubit,
              int outcome, T probability) {
  util::checkQubit(qubit, nbQubits);
  util::require(outcome == 0 || outcome == 1, "outcome must be 0 or 1");
  util::require(probability > T(0), "cannot collapse onto zero probability");
  const T scale = T(1) / std::sqrt(probability);
  const int pos = util::bitPosition(qubit, nbQubits);
  const std::int64_t half = std::int64_t{1} << (nbQubits - 1);
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (half >= kOmpThreshold)
#endif
  for (std::int64_t base = 0; base < half; ++base) {
    const util::index_t i0 =
        util::insertZeroBit(static_cast<util::index_t>(base), pos);
    const util::index_t i1 = util::setBit(i0, pos);
    const util::index_t keep = outcome == 0 ? i0 : i1;
    const util::index_t kill = outcome == 0 ? i1 : i0;
    state[keep] *= scale;
    state[kill] = std::complex<T>(0);
  }
}

}  // namespace qclab::sim

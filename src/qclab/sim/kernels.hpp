#pragma once

/// \file kernels.hpp
/// \brief Optimized in-place gate-application kernels (the QCLAB++ engine).
///
/// Instead of forming the extended unitary I (x) U' (x) I like the MATLAB
/// toolbox, these kernels update the state vector in place by iterating over
/// the 2^{n-k} gate subspaces with bit-insertion index arithmetic.  All hot
/// loops are OpenMP-parallel; the paper's GPU backend is substituted by
/// these CPU kernels (see DESIGN.md).
///
/// The single- and two-qubit hot paths are tiled wrappers over the
/// SIMD-dispatched span kernels of simd.hpp: for a target at bit position
/// `pos` the partner amplitudes form unit-stride runs of 2^pos, so each
/// OpenMP task hands whole runs (or kTile-sized slices of long runs) to
/// apply1Runs / scaleRun / apply2Runs, which use AVX2+FMA when active.

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <cstdint>
#include <utility>
#include <vector>

#include "qclab/dense/matrix.hpp"
#include "qclab/sim/simd.hpp"
#include "qclab/util/bits.hpp"
#include "qclab/util/errors.hpp"

#ifdef QCLAB_HAS_OPENMP
#include <omp.h>
#endif

namespace qclab::sim {

/// Threshold below which kernels stay single-threaded: parallelising tiny
/// states costs more than it saves.
inline constexpr std::int64_t kOmpThreshold = 1 << 12;

/// Tile length (complex amplitudes) for splitting long unit-stride runs
/// across OpenMP tasks; 2^12 doubles = 64 KiB per run slice, L1-friendly.
inline constexpr std::int64_t kRunTile = 1 << 12;

namespace detail {

/// Fixed bit positions (controls + target) with their pinned values, in an
/// inline buffer: applyControlled1 runs once per gate application, so a
/// heap-allocated + std::sort'ed vector here costs more than the loop it
/// feeds for small states (~35% of the per-call time for a 2-qubit CNOT
/// micro-bench; see DESIGN.md).  64 slots covers any index_t state.
struct FixedBits {
  std::array<std::pair<int, util::index_t>, 64> slots;
  int count = 0;

  /// Inserts (pos, value) keeping `slots[0..count)` ascending by position
  /// (insertion sort: the handful of controls is far below std::sort's
  /// break-even).
  void insert(int pos, util::index_t value) noexcept {
    int i = count++;
    while (i > 0 && slots[static_cast<std::size_t>(i - 1)].first > pos) {
      slots[static_cast<std::size_t>(i)] =
          slots[static_cast<std::size_t>(i - 1)];
      --i;
    }
    slots[static_cast<std::size_t>(i)] = {pos, value};
  }

  const std::pair<int, util::index_t>* begin() const noexcept {
    return slots.data();
  }
  const std::pair<int, util::index_t>* end() const noexcept {
    return slots.data() + count;
  }
};

/// Validates controls and collects the fixed (position, value) set for the
/// controlled kernels.
inline FixedBits collectFixedBits(int nbQubits,
                                  const std::vector<int>& controls,
                                  const std::vector<int>& controlStates,
                                  int target) {
  util::checkQubit(target, nbQubits);
  util::require(controls.size() == controlStates.size(),
                "controls/controlStates length mismatch");
  FixedBits fixed;
  for (std::size_t i = 0; i < controls.size(); ++i) {
    util::checkQubit(controls[i], nbQubits);
    util::require(controls[i] != target, "control equals target");
    fixed.insert(util::bitPosition(controls[i], nbQubits),
                 static_cast<util::index_t>(controlStates[i]));
  }
  fixed.insert(util::bitPosition(target, nbQubits), 0);
  return fixed;
}

}  // namespace detail

// All kernels are generic over the state container (`std::vector`,
// sim::StateBuffer, sim::StateSpan — anything contiguous with
// data()/operator[]); the scalar T is deduced from the gate payload.

/// Applies a 2x2 gate to `qubit` of an n-qubit state, in place.
template <typename State, typename T>
void apply1(State& state, int nbQubits, int qubit,
            const dense::Matrix<T>& u) {
  util::checkQubit(qubit, nbQubits);
  util::require(u.rows() == 2 && u.cols() == 2, "apply1 needs a 2x2 matrix");
  const int pos = util::bitPosition(qubit, nbQubits);
  const std::complex<T> coeffs[4] = {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
  const SimdLevel level = activeSimdLevel();

  const std::int64_t dim = std::int64_t{1} << nbQubits;
  const std::int64_t stride = std::int64_t{1} << pos;
  std::complex<T>* const data = state.data();
  if (stride < simd::kVectorLanes<T>) {
    // Short runs: a dispatch call per pair would dominate; hand aligned
    // power-of-two chunks (many groups each) to the hoisted span walker.
    const std::int64_t chunk =
        std::min(dim, std::max(2 * stride, kRunTile));
    const std::int64_t chunks = dim / chunk;
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (dim >= 2 * kOmpThreshold)
#endif
    for (std::int64_t c = 0; c < chunks; ++c) {
      simd::apply1Span(data + c * chunk, chunk, pos, coeffs, level);
    }
    return;
  }
  // Each task updates one `tile`-length slice of a (|0>, |1>) run pair.
  const std::int64_t tile = std::min(stride, kRunTile);
  const std::int64_t tilesPerRun = stride / tile;
  const std::int64_t tasks = (dim / (2 * stride)) * tilesPerRun;
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (dim >= 2 * kOmpThreshold)
#endif
  for (std::int64_t t = 0; t < tasks; ++t) {
    const std::int64_t offset =
        (t / tilesPerRun) * 2 * stride + (t % tilesPerRun) * tile;
    simd::apply1Runs(data + offset, data + offset + stride, tile, coeffs,
                     level);
  }
}

/// Applies a diagonal 2x2 gate diag(d0, d1) to `qubit`, in place.  The
/// two runs of every 2^{pos+1}-aligned group are scaled by their own
/// constant — no per-element bit test.
template <typename State, typename T>
void applyDiagonal1(State& state, int nbQubits,
                    int qubit, std::complex<T> d0, std::complex<T> d1) {
  util::checkQubit(qubit, nbQubits);
  const int pos = util::bitPosition(qubit, nbQubits);
  const SimdLevel level = activeSimdLevel();

  const std::int64_t dim = std::int64_t{1} << nbQubits;
  const std::int64_t stride = std::int64_t{1} << pos;
  const std::int64_t tile = std::min(stride, kRunTile);
  const std::int64_t tilesPerRun = stride / tile;
  const std::int64_t tasks = (dim / (2 * stride)) * tilesPerRun;
  std::complex<T>* const data = state.data();
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (dim >= kOmpThreshold)
#endif
  for (std::int64_t t = 0; t < tasks; ++t) {
    const std::int64_t offset =
        (t / tilesPerRun) * 2 * stride + (t % tilesPerRun) * tile;
    simd::scaleRun(data + offset, tile, d0, level);
    simd::scaleRun(data + offset + stride, tile, d1, level);
  }
}

/// Applies a 4x4 gate to the ascending pair (qubit0, qubit1), in place.
/// `u` is MSB-first over (qubit0, qubit1), like every gate matrix.  The
/// four partner runs of each subspace are unit-stride (length 2^posLo),
/// so this avoids the gather/scatter of applyK for the k = 2 hot path.
template <typename State, typename T>
void apply2(State& state, int nbQubits, int qubit0,
            int qubit1, const dense::Matrix<T>& u) {
  util::checkQubit(qubit0, nbQubits);
  util::checkQubit(qubit1, nbQubits);
  util::require(qubit0 < qubit1, "apply2 qubits must be strictly ascending");
  util::require(u.rows() == 4 && u.cols() == 4, "apply2 needs a 4x4 matrix");
  const int posHi = util::bitPosition(qubit0, nbQubits);
  const int posLo = util::bitPosition(qubit1, nbQubits);
  std::complex<T> coeffs[16];
  for (int i = 0; i < 16; ++i) {
    coeffs[i] = u(static_cast<std::size_t>(i / 4),
                  static_cast<std::size_t>(i % 4));
  }
  const SimdLevel level = activeSimdLevel();

  const std::int64_t dim = std::int64_t{1} << nbQubits;
  const std::int64_t sHi = std::int64_t{1} << posHi;
  const std::int64_t sLo = std::int64_t{1} << posLo;
  std::complex<T>* const data = state.data();
  if (sLo < simd::kVectorLanes<T>) {
    // Short runs: a dispatch call + matrix re-hoist per quad would
    // dominate; hand aligned power-of-two chunks to the span walker.
    const std::int64_t chunk = std::min(dim, std::max(2 * sHi, kRunTile));
    const std::int64_t chunks = dim / chunk;
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (dim >= 4 * kOmpThreshold)
#endif
    for (std::int64_t c = 0; c < chunks; ++c) {
      simd::apply2SpanShortRuns(data + c * chunk, chunk, posHi, posLo,
                                coeffs);
    }
    return;
  }
  // Flattened (outer group, inner group, run tile) task index; each task
  // updates one `tile`-length slice of a quad of partner runs.
  const std::int64_t tile = std::min(sLo, kRunTile);
  const std::int64_t tilesPerRun = sLo / tile;
  const std::int64_t innerGroups = sHi / (2 * sLo);
  const std::int64_t tasks = (dim / (2 * sHi)) * innerGroups * tilesPerRun;
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (dim >= 4 * kOmpThreshold)
#endif
  for (std::int64_t t = 0; t < tasks; ++t) {
    const std::int64_t q = t / tilesPerRun;
    const std::int64_t offset = (q / innerGroups) * 2 * sHi +
                                (q % innerGroups) * 2 * sLo +
                                (t % tilesPerRun) * tile;
    std::complex<T>* const quad[4] = {data + offset, data + offset + sLo,
                                      data + offset + sHi,
                                      data + offset + sHi + sLo};
    simd::apply2Runs(quad, tile, coeffs, level);
  }
}

/// Applies a 2x2 gate to `target`, controlled on `controls` being in the
/// per-control `controlStates`, in place.  Only the active subspace
/// (2^{n - nc - 1} pairs) is touched.
template <typename State, typename T>
void applyControlled1(State& state, int nbQubits,
                      const std::vector<int>& controls,
                      const std::vector<int>& controlStates, int target,
                      const dense::Matrix<T>& u) {
  util::require(u.rows() == 2 && u.cols() == 2,
                "applyControlled1 needs a 2x2 matrix");
  const detail::FixedBits fixed =
      detail::collectFixedBits(nbQubits, controls, controlStates, target);
  const int targetPos = util::bitPosition(target, nbQubits);

  const std::int64_t count = std::int64_t{1} << (nbQubits - fixed.count);
  const std::complex<T> u00 = u(0, 0), u01 = u(0, 1);
  const std::complex<T> u10 = u(1, 0), u11 = u(1, 1);
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (count >= kOmpThreshold)
#endif
  for (std::int64_t base = 0; base < count; ++base) {
    util::index_t i0 = static_cast<util::index_t>(base);
    for (const auto& [pos, value] : fixed) {
      i0 = util::insertBit(i0, pos, value);
    }
    const util::index_t i1 = util::setBit(i0, targetPos);
    const std::complex<T> a0 = state[i0];
    const std::complex<T> a1 = state[i1];
    state[i0] = u00 * a0 + u01 * a1;
    state[i1] = u10 * a0 + u11 * a1;
  }
}

/// Applies a diagonal 2x2 gate diag(d0, d1) to `target`, controlled on
/// `controls` being in the per-control `controlStates`, in place.  Only the
/// active subspace (2^{n - nc} amplitudes) is touched, with one multiply
/// per amplitude — the fast path for CZ / CPhase / CRZ-like gates that the
/// dense pair-update of applyControlled1 would overwork.
template <typename State, typename T>
void applyControlledDiagonal1(State& state,
                              int nbQubits, const std::vector<int>& controls,
                              const std::vector<int>& controlStates,
                              int target, std::complex<T> d0,
                              std::complex<T> d1) {
  const detail::FixedBits fixed =
      detail::collectFixedBits(nbQubits, controls, controlStates, target);
  const int targetPos = util::bitPosition(target, nbQubits);

  const std::int64_t count = std::int64_t{1} << (nbQubits - fixed.count);
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (count >= kOmpThreshold)
#endif
  for (std::int64_t base = 0; base < count; ++base) {
    util::index_t i0 = static_cast<util::index_t>(base);
    for (const auto& [pos, value] : fixed) {
      i0 = util::insertBit(i0, pos, value);
    }
    const util::index_t i1 = util::setBit(i0, targetPos);
    state[i0] *= d0;
    state[i1] *= d1;
  }
}

/// Swaps qubits q0 and q1, in place (permutation only, no arithmetic).
template <typename State>
void applySwap(State& state, int nbQubits, int qubit0,
               int qubit1) {
  util::checkQubit(qubit0, nbQubits);
  util::checkQubit(qubit1, nbQubits);
  util::require(qubit0 != qubit1, "swap needs distinct qubits");
  const int p0 = util::bitPosition(qubit0, nbQubits);
  const int p1 = util::bitPosition(qubit1, nbQubits);
  const int lo = std::min(p0, p1);
  const int hi = std::max(p0, p1);
  const std::int64_t count = std::int64_t{1} << (nbQubits - 2);
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (count >= kOmpThreshold)
#endif
  for (std::int64_t base = 0; base < count; ++base) {
    // Indices with bit(lo) = 1, bit(hi) = 0; swap with the (0, 1) partner.
    util::index_t i = util::insertZeroBit(static_cast<util::index_t>(base), lo);
    i = util::insertZeroBit(i, hi);
    const util::index_t i01 = util::setBit(i, lo);
    const util::index_t i10 = util::setBit(i, hi);
    std::swap(state[i01], state[i10]);
  }
}

/// Applies a general k-qubit gate on the (ascending, MSB-first) `qubits`
/// list, in place, via gather / dense multiply / scatter per subspace.
template <typename State, typename T>
void applyK(State& state, int nbQubits,
            const std::vector<int>& qubits, const dense::Matrix<T>& u) {
  const int k = static_cast<int>(qubits.size());
  util::require(k >= 1 && k <= nbQubits, "gate qubit count out of range");
  const std::size_t dim = std::size_t{1} << k;
  util::require(u.rows() == dim && u.cols() == dim,
                "applyK matrix dimension mismatch");

  // Gate-bit positions, ascending (for insertion), and the offset of each
  // gate-subspace index r (MSB-first over `qubits`).
  std::vector<int> positions(k);
  for (int i = 0; i < k; ++i) {
    util::checkQubit(qubits[i], nbQubits);
    if (i > 0) {
      util::require(qubits[i] > qubits[i - 1],
                    "applyK qubits must be strictly ascending");
    }
    positions[i] = util::bitPosition(qubits[i], nbQubits);
  }
  std::sort(positions.begin(), positions.end());

  std::vector<util::index_t> offsets(dim, 0);
  for (util::index_t r = 0; r < dim; ++r) {
    util::index_t offset = 0;
    for (int i = 0; i < k; ++i) {
      if (util::getBit(r, util::bitPosition(i, k))) {
        offset = util::setBit(offset, util::bitPosition(qubits[i], nbQubits));
      }
    }
    offsets[r] = offset;
  }

  const std::int64_t count = std::int64_t{1} << (nbQubits - k);
  // Restrict views keep the matrix and gather-buffer loads from being
  // treated as aliasing the state scatter (all complex<T>); without them
  // the compiler reloads u per element (see DESIGN.md, SIMD tier).
  std::complex<T>* __restrict__ psi = state.data();
  const std::complex<T>* __restrict__ mat = u.data();
  const util::index_t* __restrict__ off = offsets.data();
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel if (count >= kOmpThreshold)
#endif
  {
    std::vector<std::complex<T>> scratch(dim);
    std::complex<T>* __restrict__ gathered = scratch.data();
#ifdef QCLAB_HAS_OPENMP
#pragma omp for schedule(static)
#endif
    for (std::int64_t outer = 0; outer < count; ++outer) {
      util::index_t base = static_cast<util::index_t>(outer);
      for (int pos : positions) base = util::insertZeroBit(base, pos);
      for (util::index_t r = 0; r < dim; ++r) {
        gathered[r] = psi[base | off[r]];
      }
      for (util::index_t r = 0; r < dim; ++r) {
        T sumr(0), sumi(0);
        for (util::index_t c = 0; c < dim; ++c) {
          const std::complex<T> m = mat[r * dim + c];
          sumr += m.real() * gathered[c].real() -
                  m.imag() * gathered[c].imag();
          sumi += m.real() * gathered[c].imag() +
                  m.imag() * gathered[c].real();
        }
        psi[base | off[r]] = std::complex<T>(sumr, sumi);
      }
    }
  }
}

/// Applies a diagonal k-qubit gate given by its 2^k diagonal entries on
/// the (ascending, MSB-first) `qubits` list, in place.  One multiply per
/// amplitude — the fast path for RZZ / CZ-like gates.
template <typename State, typename T>
void applyDiagonalK(State& state, int nbQubits,
                    const std::vector<int>& qubits,
                    const std::vector<std::complex<T>>& diagonal) {
  const int k = static_cast<int>(qubits.size());
  util::require(k >= 1 && k <= nbQubits, "gate qubit count out of range");
  util::require(diagonal.size() == (std::size_t{1} << k),
                "diagonal length mismatch");
  std::vector<int> positions(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    util::checkQubit(qubits[static_cast<std::size_t>(i)], nbQubits);
    if (i > 0) {
      util::require(qubits[static_cast<std::size_t>(i)] >
                        qubits[static_cast<std::size_t>(i - 1)],
                    "applyDiagonalK qubits must be strictly ascending");
    }
    positions[static_cast<std::size_t>(i)] =
        util::bitPosition(qubits[static_cast<std::size_t>(i)], nbQubits);
  }
  const std::int64_t dim = std::int64_t{1} << nbQubits;
  // Restrict views: diagonal loads must not alias the state stores (both
  // complex<T>), or the table is reloaded per amplitude.
  std::complex<T>* __restrict__ psi = state.data();
  const std::complex<T>* __restrict__ diag = diagonal.data();
  const int* __restrict__ pos = positions.data();
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (dim >= kOmpThreshold)
#endif
  for (std::int64_t i = 0; i < dim; ++i) {
    util::index_t row = 0;
    for (int b = 0; b < k; ++b) {
      row = (row << 1) | util::getBit(static_cast<util::index_t>(i), pos[b]);
    }
    const std::complex<T> d = diag[row];
    const T xr = psi[i].real(), xi = psi[i].imag();
    psi[i] = std::complex<T>(d.real() * xr - d.imag() * xi,
                             d.real() * xi + d.imag() * xr);
  }
}

/// Applies a diagonal k-qubit gate given by its 2^k diagonal entries on
/// the (ascending, MSB-first) `qubits` list, in place, through the
/// run-structured sweep of simd::applyDiagonalRunsSpan — the fused-path
/// diagonal kernel (wide diagonal blocks from sim/fusion.hpp land here).
/// The state splits into independent 2^{maxPos+1}-amplitude groups, which
/// is also the OpenMP work division.
template <typename State, typename T>
void applyDiagonalBlock(State& state, int nbQubits,
                        const std::vector<int>& qubits,
                        const std::vector<std::complex<T>>& diagonal) {
  const int k = static_cast<int>(qubits.size());
  util::require(k >= 1 && k <= nbQubits, "gate qubit count out of range");
  util::require(diagonal.size() == (std::size_t{1} << k),
                "diagonal length mismatch");
  std::vector<int> positions(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    util::checkQubit(qubits[static_cast<std::size_t>(i)], nbQubits);
    if (i > 0) {
      util::require(qubits[static_cast<std::size_t>(i)] >
                        qubits[static_cast<std::size_t>(i - 1)],
                    "applyDiagonalBlock qubits must be strictly ascending");
    }
    positions[static_cast<std::size_t>(i)] =
        util::bitPosition(qubits[static_cast<std::size_t>(i)], nbQubits);
  }
  const SimdLevel level = activeSimdLevel();
  const std::int64_t dim = std::int64_t{1} << nbQubits;
  const std::int64_t groupDim = std::int64_t{1} << (positions.front() + 1);
  const std::int64_t groups = dim / groupDim;
  std::complex<T>* const data = state.data();
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) \
    if (dim >= kOmpThreshold && groups > 1 && !omp_in_parallel())
#endif
  for (std::int64_t g = 0; g < groups; ++g) {
    simd::applyDiagonalRunsSpan(data + g * groupDim, groupDim, positions,
                                diagonal, level);
  }
}

/// Probability of measuring |0> on `qubit` (paper §3.3, Eq. for P(|0>)).
template <typename State>
auto measureProbability0(const State& state, int nbQubits,
                         int qubit) {
  using T = typename State::value_type::value_type;
  util::checkQubit(qubit, nbQubits);
  const int pos = util::bitPosition(qubit, nbQubits);
  const std::int64_t half = std::int64_t{1} << (nbQubits - 1);
  T p0(0);
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) reduction(+ : p0) \
    if (half >= kOmpThreshold)
#endif
  for (std::int64_t base = 0; base < half; ++base) {
    const util::index_t i0 =
        util::insertZeroBit(static_cast<util::index_t>(base), pos);
    p0 += std::norm(state[i0]);
  }
  return p0;
}

/// Collapses `qubit` onto `outcome` and renormalizes by 1/sqrt(probability)
/// (paper §3.3): amplitudes of the other outcome are zeroed.
template <typename State, typename T>
void collapse(State& state, int nbQubits, int qubit,
              int outcome, T probability) {
  util::checkQubit(qubit, nbQubits);
  util::require(outcome == 0 || outcome == 1, "outcome must be 0 or 1");
  util::require(probability > T(0), "cannot collapse onto zero probability");
  const T scale = T(1) / std::sqrt(probability);
  const int pos = util::bitPosition(qubit, nbQubits);
  const std::int64_t half = std::int64_t{1} << (nbQubits - 1);
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (half >= kOmpThreshold)
#endif
  for (std::int64_t base = 0; base < half; ++base) {
    const util::index_t i0 =
        util::insertZeroBit(static_cast<util::index_t>(base), pos);
    const util::index_t i1 = util::setBit(i0, pos);
    const util::index_t keep = outcome == 0 ? i0 : i1;
    const util::index_t kill = outcome == 0 ? i1 : i0;
    state[keep] *= scale;
    state[kill] = std::complex<T>(0);
  }
}

}  // namespace qclab::sim

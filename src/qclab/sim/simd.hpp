#pragma once

/// \file simd.hpp
/// \brief SIMD kernel tier: runtime CPU dispatch + span-level gate kernels.
///
/// The gate kernels in kernels.hpp are wrappers over the *span* kernels
/// defined here: serial routines that update a contiguous span of
/// amplitudes in place.  Every span kernel exploits the run structure of
/// bit-indexed pair updates — for a target bit position `pos`, the |0>
/// and |1> partners of each 2^{pos+1}-aligned group form two unit-stride
/// runs of 2^pos amplitudes — and dispatches each run either to the
/// explicit AVX2+FMA kernels of simd_avx2.hpp or to a portable scalar
/// loop written in split re/im arithmetic (branch-free, autovectorizable,
/// and free of the __muldc3 inf/nan fixup call that std::complex
/// operator* can emit).
///
/// Dispatch is decided once at runtime:
///  - compile-time gate: the QCLAB_SIMD CMake option defines
///    QCLAB_HAS_SIMD; without it only the scalar tier exists,
///  - cpuid: detectedSimdLevel() probes AVX2 + FMA via
///    __builtin_cpu_supports, so a binary built with the SIMD tier still
///    runs correctly on hardware without it,
///  - override: the QCLAB_SIMD_LEVEL environment variable ("scalar" or
///    "avx2") or setSimdLevel() force a level, clamped to what the build
///    and the CPU support — this is how both paths are tested on one
///    machine.
///
/// Dispatch matrix (per span kernel, W = complex lanes per 256-bit
/// register: 2 for double, 4 for float):
///
///   kernel          | AVX2 level, run >= W lanes | otherwise
///   ----------------+----------------------------+------------------
///   apply1Span      | avx2::apply1Runs           | portable pairs
///   applyDiag1Span  | avx2::scaleRun             | portable scale
///   apply2Span      | avx2::apply2Runs           | portable quads
///   applyKSpan      | (scalar gather/scatter — no vector tier yet)
///   applyDiagKSpan  | (scalar — bit-gather row indexing)

#include <atomic>
#include <complex>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "qclab/dense/matrix.hpp"
#include "qclab/sim/kernel_path.hpp"
#include "qclab/util/bits.hpp"
#include "qclab/util/errors.hpp"

#if defined(QCLAB_HAS_SIMD) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define QCLAB_SIMD_X86 1
#include "qclab/sim/simd_avx2.hpp"
#endif

namespace qclab::sim {

/// The closed set of SIMD tiers the kernel layer can dispatch to.
enum class SimdLevel : int {
  kScalar = 0,  ///< portable split re/im loops
  kAvx2 = 1,    ///< 256-bit AVX2 + FMA kernels (x86 only)
};

/// Stable short name of a SIMD level ("scalar" / "avx2").
inline const char* simdLevelName(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2:   return "avx2";
  }
  return "unknown";
}

/// Highest level this build *and* this CPU support (cpuid, cached).
inline SimdLevel detectedSimdLevel() noexcept {
#ifdef QCLAB_SIMD_X86
  static const SimdLevel detected =
      (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
          ? SimdLevel::kAvx2
          : SimdLevel::kScalar;
  return detected;
#else
  return SimdLevel::kScalar;
#endif
}

namespace detail {

/// Clamps a requested level to what the build + CPU support.
inline SimdLevel clampSimdLevel(SimdLevel level) noexcept {
  return static_cast<int>(level) <= static_cast<int>(detectedSimdLevel())
             ? level
             : detectedSimdLevel();
}

/// Initial level: the QCLAB_SIMD_LEVEL environment override if set and
/// recognized, otherwise the detected level.  Unknown values are ignored
/// (the dispatch must never fail at startup over a typo).
inline SimdLevel initialSimdLevel() noexcept {
  const char* env = std::getenv("QCLAB_SIMD_LEVEL");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      return clampSimdLevel(SimdLevel::kAvx2);
    }
  }
  return detectedSimdLevel();
}

/// The mutable active level (-1 = not yet initialized from the env).
inline std::atomic<int>& activeSimdLevelCell() noexcept {
  static std::atomic<int> cell{-1};
  return cell;
}

}  // namespace detail

/// The level the kernels currently dispatch to (env-initialized, clamped).
inline SimdLevel activeSimdLevel() noexcept {
  std::atomic<int>& cell = detail::activeSimdLevelCell();
  int level = cell.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(detail::initialSimdLevel());
    int expected = -1;
    cell.compare_exchange_strong(expected, level, std::memory_order_relaxed);
    level = cell.load(std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

/// Forces the dispatch level (clamped to build/CPU support; used by the
/// differential tests and benches to exercise both tiers in one process).
/// Returns the previous level.
inline SimdLevel setSimdLevel(SimdLevel level) noexcept {
  const SimdLevel previous = activeSimdLevel();
  detail::activeSimdLevelCell().store(
      static_cast<int>(detail::clampSimdLevel(level)),
      std::memory_order_relaxed);
  return previous;
}

/// True when the vector tier is the active dispatch target.
inline bool simdActive() noexcept {
  return activeSimdLevel() != SimdLevel::kScalar;
}

/// The kernel path a gate application should be COUNTED under when the
/// SIMD tier is active: the dispatch rules (classifyKernelPath) are
/// unchanged — the same fast path is selected — but the obs layer
/// attributes the application to the vectorized variant so reports show
/// which tier did the work.  `gateQubits` disambiguates kDenseK (only the
/// two-qubit case has a vectorized quad-run kernel).
inline KernelPath simdCountedPath(KernelPath path, int gateQubits) noexcept {
  if (!simdActive()) return path;
  switch (path) {
    case KernelPath::kDense1:    return KernelPath::kSimdDense1;
    case KernelPath::kDiagonal1: return KernelPath::kSimdDiagonal1;
    case KernelPath::kDenseK:
      return gateQubits == 2 ? KernelPath::kSimdDenseK : path;
    default:                     return path;
  }
}

namespace simd {

/// Complex lanes per 256-bit register for scalar type T.
template <typename T>
inline constexpr std::int64_t kVectorLanes =
    static_cast<std::int64_t>(32 / (2 * sizeof(T)));

// ---- portable run kernels (split re/im, autovectorizable) -------------

/// (a0, a1) <- (u00 a0 + u01 a1, u10 a0 + u11 a1) over unit-stride runs.
template <typename T>
void apply1RunsScalar(std::complex<T>* a0, std::complex<T>* a1,
                      std::int64_t count, const std::complex<T> u[4]) {
  const T u00r = u[0].real(), u00i = u[0].imag();
  const T u01r = u[1].real(), u01i = u[1].imag();
  const T u10r = u[2].real(), u10i = u[2].imag();
  const T u11r = u[3].real(), u11i = u[3].imag();
  for (std::int64_t j = 0; j < count; ++j) {
    const T x0r = a0[j].real(), x0i = a0[j].imag();
    const T x1r = a1[j].real(), x1i = a1[j].imag();
    a0[j] = std::complex<T>(u00r * x0r - u00i * x0i + u01r * x1r - u01i * x1i,
                            u00r * x0i + u00i * x0r + u01r * x1i + u01i * x1r);
    a1[j] = std::complex<T>(u10r * x0r - u10i * x0i + u11r * x1r - u11i * x1i,
                            u10r * x0i + u10i * x0r + u11r * x1i + u11i * x1r);
  }
}

/// a <- d * a over a unit-stride run.
template <typename T>
void scaleRunScalar(std::complex<T>* a, std::int64_t count,
                    std::complex<T> d) {
  const T dr = d.real(), di = d.imag();
  for (std::int64_t j = 0; j < count; ++j) {
    const T xr = a[j].real(), xi = a[j].imag();
    a[j] = std::complex<T>(dr * xr - di * xi, dr * xi + di * xr);
  }
}

/// a[r] <- sum_c u[4r + c] a[c] over four unit-stride runs.  The matrix
/// is hoisted into split re/im locals and the (disjoint) runs marked
/// restrict: without both, every u load aliases the a[r][j] stores (same
/// complex type) and the compiler reloads the matrix per element.
template <typename T>
void apply2RunsScalar(std::complex<T>* const a[4], std::int64_t count,
                      const std::complex<T> u[16]) {
  T ur[16], ui[16];
  for (int e = 0; e < 16; ++e) {
    ur[e] = u[e].real();
    ui[e] = u[e].imag();
  }
  std::complex<T>* __restrict__ const r0 = a[0];
  std::complex<T>* __restrict__ const r1 = a[1];
  std::complex<T>* __restrict__ const r2 = a[2];
  std::complex<T>* __restrict__ const r3 = a[3];
  for (std::int64_t j = 0; j < count; ++j) {
    const T inr[4] = {r0[j].real(), r1[j].real(), r2[j].real(), r3[j].real()};
    const T ini[4] = {r0[j].imag(), r1[j].imag(), r2[j].imag(), r3[j].imag()};
    T outr[4], outi[4];
    for (int r = 0; r < 4; ++r) {
      T re = 0, im = 0;
      for (int c = 0; c < 4; ++c) {
        re += ur[4 * r + c] * inr[c] - ui[4 * r + c] * ini[c];
        im += ur[4 * r + c] * ini[c] + ui[4 * r + c] * inr[c];
      }
      outr[r] = re;
      outi[r] = im;
    }
    r0[j] = std::complex<T>(outr[0], outi[0]);
    r1[j] = std::complex<T>(outr[1], outi[1]);
    r2[j] = std::complex<T>(outr[2], outi[2]);
    r3[j] = std::complex<T>(outr[3], outi[3]);
  }
}

// ---- dispatched run kernels -------------------------------------------

/// Pair update over unit-stride runs, dispatched on `level`.
template <typename T>
inline void apply1Runs(std::complex<T>* a0, std::complex<T>* a1,
                       std::int64_t count, const std::complex<T> u[4],
                       SimdLevel level) {
#ifdef QCLAB_SIMD_X86
  if (level == SimdLevel::kAvx2 && count >= kVectorLanes<T>) {
    avx2::apply1Runs(a0, a1, count, u);
    return;
  }
#else
  (void)level;
#endif
  apply1RunsScalar(a0, a1, count, u);
}

/// Constant complex scale over a unit-stride run, dispatched on `level`.
template <typename T>
inline void scaleRun(std::complex<T>* a, std::int64_t count,
                     std::complex<T> d, SimdLevel level) {
#ifdef QCLAB_SIMD_X86
  if (level == SimdLevel::kAvx2 && count >= kVectorLanes<T>) {
    avx2::scaleRun(a, count, d);
    return;
  }
#else
  (void)level;
#endif
  scaleRunScalar(a, count, d);
}

/// Quad update over four unit-stride runs, dispatched on `level`.
template <typename T>
inline void apply2Runs(std::complex<T>* const a[4], std::int64_t count,
                       const std::complex<T> u[16], SimdLevel level) {
#ifdef QCLAB_SIMD_X86
  if (level == SimdLevel::kAvx2 && count >= kVectorLanes<T>) {
    avx2::apply2Runs(a, count, u);
    return;
  }
#else
  (void)level;
#endif
  apply2RunsScalar(a, count, u);
}

// ---- span kernels (serial; `dim` must cover whole aligned groups) -----

/// 2x2 dense gate at bit position `pos` over `dim` amplitudes.  `dim`
/// must be a multiple of 2^{pos+1} and `state` 2^{pos+1}-group aligned.
/// Short runs (stride below a vector width) take a hoisted-matrix index
/// walk instead of a per-pair run call — same scalar accumulation order
/// the run dispatch would have picked at that count, so the path split
/// never changes results.
template <typename T>
void apply1Span(std::complex<T>* state, std::int64_t dim, int pos,
                const std::complex<T> u[4], SimdLevel level) {
  const std::int64_t stride = std::int64_t{1} << pos;
  if (stride < kVectorLanes<T>) {
    const T u00r = u[0].real(), u00i = u[0].imag();
    const T u01r = u[1].real(), u01i = u[1].imag();
    const T u10r = u[2].real(), u10i = u[2].imag();
    const T u11r = u[3].real(), u11i = u[3].imag();
    std::complex<T>* __restrict__ psi = state;
    for (std::int64_t base = 0; base < dim; base += 2 * stride) {
      for (std::int64_t j = base; j < base + stride; ++j) {
        const T x0r = psi[j].real(), x0i = psi[j].imag();
        const T x1r = psi[j + stride].real(), x1i = psi[j + stride].imag();
        psi[j] =
            std::complex<T>(u00r * x0r - u00i * x0i + u01r * x1r - u01i * x1i,
                            u00r * x0i + u00i * x0r + u01r * x1i + u01i * x1r);
        psi[j + stride] =
            std::complex<T>(u10r * x0r - u10i * x0i + u11r * x1r - u11i * x1i,
                            u10r * x0i + u10i * x0r + u11r * x1i + u11i * x1r);
      }
    }
    return;
  }
  for (std::int64_t base = 0; base < dim; base += 2 * stride) {
    apply1Runs(state + base, state + base + stride, stride, u, level);
  }
}

/// diag(d0, d1) at bit position `pos` over `dim` amplitudes (same
/// alignment contract as apply1Span).  Branch-free: the two runs of each
/// group are scaled by their own constant — no per-element bit test.
template <typename T>
void applyDiagonal1Span(std::complex<T>* state, std::int64_t dim, int pos,
                        std::complex<T> d0, std::complex<T> d1,
                        SimdLevel level) {
  const std::int64_t stride = std::int64_t{1} << pos;
  for (std::int64_t base = 0; base < dim; base += 2 * stride) {
    scaleRun(state + base, stride, d0, level);
    scaleRun(state + base + stride, stride, d1, level);
  }
}

/// apply2Span for short runs (sLo below a vector width): the run path
/// re-hoists the 4x4 matrix into split locals and builds a pointer quad
/// per FOUR amplitudes, which dominates at these strides (a contiguous
/// qubit pair at the bottom of the register was ~6x slower than a strided
/// one).  This variant hoists the matrix once and walks the groups with
/// index arithmetic, using the same per-amplitude accumulation order as
/// apply2RunsScalar.
template <typename T>
void apply2SpanShortRuns(std::complex<T>* state, std::int64_t dim, int posHi,
                         int posLo, const std::complex<T> u[16]) {
  T ur[16], ui[16];
  for (int e = 0; e < 16; ++e) {
    ur[e] = u[e].real();
    ui[e] = u[e].imag();
  }
  const std::int64_t sHi = std::int64_t{1} << posHi;
  const std::int64_t sLo = std::int64_t{1} << posLo;
  std::complex<T>* __restrict__ psi = state;
  for (std::int64_t b2 = 0; b2 < dim; b2 += 2 * sHi) {
    for (std::int64_t b1 = b2; b1 < b2 + sHi; b1 += 2 * sLo) {
      for (std::int64_t j = 0; j < sLo; ++j) {
        const std::int64_t i0 = b1 + j;
        const std::int64_t i1 = i0 + sLo;
        const std::int64_t i2 = i0 + sHi;
        const std::int64_t i3 = i2 + sLo;
        const T inr[4] = {psi[i0].real(), psi[i1].real(), psi[i2].real(),
                          psi[i3].real()};
        const T ini[4] = {psi[i0].imag(), psi[i1].imag(), psi[i2].imag(),
                          psi[i3].imag()};
        T outr[4], outi[4];
        for (int r = 0; r < 4; ++r) {
          T re = 0, im = 0;
          for (int c = 0; c < 4; ++c) {
            re += ur[4 * r + c] * inr[c] - ui[4 * r + c] * ini[c];
            im += ur[4 * r + c] * ini[c] + ui[4 * r + c] * inr[c];
          }
          outr[r] = re;
          outi[r] = im;
        }
        psi[i0] = std::complex<T>(outr[0], outi[0]);
        psi[i1] = std::complex<T>(outr[1], outi[1]);
        psi[i2] = std::complex<T>(outr[2], outi[2]);
        psi[i3] = std::complex<T>(outr[3], outi[3]);
      }
    }
  }
}

/// 4x4 dense gate at bit positions posHi > posLo over `dim` amplitudes
/// (`dim` a multiple of 2^{posHi+1}, group-aligned).  `u` is MSB-first
/// over (bit at posHi, bit at posLo).  The path choice depends only on
/// the positions, never on `dim`, so chunked and full sweeps stay
/// bit-identical.
template <typename T>
void apply2Span(std::complex<T>* state, std::int64_t dim, int posHi,
                int posLo, const std::complex<T> u[16], SimdLevel level) {
  const std::int64_t sHi = std::int64_t{1} << posHi;
  const std::int64_t sLo = std::int64_t{1} << posLo;
  if (sLo < kVectorLanes<T>) {
    apply2SpanShortRuns(state, dim, posHi, posLo, u);
    return;
  }
  for (std::int64_t b2 = 0; b2 < dim; b2 += 2 * sHi) {
    for (std::int64_t b1 = b2; b1 < b2 + sHi; b1 += 2 * sLo) {
      std::complex<T>* const quad[4] = {state + b1, state + b1 + sLo,
                                        state + b1 + sHi,
                                        state + b1 + sHi + sLo};
      apply2Runs(quad, sLo, u, level);
    }
  }
}

/// General k-qubit dense gate over `dim` amplitudes via gather / dense
/// multiply / scatter.  `positions` are the ascending gate bit positions
/// within a span index, `offsets` the 2^k subspace offsets (MSB-first
/// row order), `scratch` a caller-provided gather buffer.
template <typename T>
void applyKSpan(std::complex<T>* __restrict__ state, std::int64_t dim,
                const std::vector<int>& positions,
                const std::vector<util::index_t>& offsets,
                const dense::Matrix<T>& u,
                std::vector<std::complex<T>>& scratch) {
  const std::size_t gateDim = offsets.size();
  scratch.resize(gateDim);
  // Raw restrict views: matrix/scratch loads must not be treated as
  // aliasing the state scatter (all three are complex<T>).
  const std::complex<T>* __restrict__ mat = u.data();
  std::complex<T>* __restrict__ gathered = scratch.data();
  const util::index_t* __restrict__ off = offsets.data();
  const std::int64_t count =
      dim >> static_cast<std::int64_t>(positions.size());
  for (std::int64_t outer = 0; outer < count; ++outer) {
    util::index_t base = static_cast<util::index_t>(outer);
    for (int pos : positions) base = util::insertZeroBit(base, pos);
    for (util::index_t r = 0; r < gateDim; ++r) {
      gathered[r] = state[base | off[r]];
    }
    for (util::index_t r = 0; r < gateDim; ++r) {
      T sumr(0), sumi(0);
      for (util::index_t c = 0; c < gateDim; ++c) {
        const std::complex<T> m = mat[r * gateDim + c];
        sumr += m.real() * gathered[c].real() - m.imag() * gathered[c].imag();
        sumi += m.real() * gathered[c].imag() + m.imag() * gathered[c].real();
      }
      state[base | off[r]] = std::complex<T>(sumr, sumi);
    }
  }
}

/// Diagonal k-qubit gate over `dim` amplitudes.  `positions` are the
/// MSB-first gate bit positions within a span index.
template <typename T>
void applyDiagonalKSpan(std::complex<T>* __restrict__ state, std::int64_t dim,
                        const std::vector<int>& positions,
                        const std::vector<std::complex<T>>& diagonal) {
  const int k = static_cast<int>(positions.size());
  // Restrict views: a plain diagonal[row] load aliases the state store
  // (same complex type) and costs a reload per amplitude (~5x).
  const int* __restrict__ pos = positions.data();
  const std::complex<T>* __restrict__ diag = diagonal.data();
  for (std::int64_t i = 0; i < dim; ++i) {
    util::index_t row = 0;
    for (int b = 0; b < k; ++b) {
      row = (row << 1) |
            util::getBit(static_cast<util::index_t>(i), pos[b]);
    }
    const std::complex<T> d = diag[row];
    const T xr = state[i].real(), xi = state[i].imag();
    state[i] = std::complex<T>(d.real() * xr - d.imag() * xi,
                               d.real() * xi + d.imag() * xr);
  }
}

/// Run-structured diagonal k-qubit gate over `dim` amplitudes: the row
/// index is constant over every unit-stride run of 2^minPos amplitudes
/// (minPos = the lowest gate bit position), so instead of the per-amplitude
/// bit-gather of applyDiagonalKSpan the table row is computed once per run
/// and the run is scaled through the dispatched scaleRun kernel.  Row
/// indices walk by XOR deltas: bit-gathering distributes over XOR and a
/// sequential counter flips exactly its ctz+1 low bits per increment, so
/// after precomputing the gather of each of the m+1 possible flip patterns
/// the per-step gather collapses to one ctz plus one XOR.  Three paths:
///  - gate bits contiguous at position 0 (the full-window / suffix case):
///    row = i mod 2^k, a sequential cyclic table walk,
///  - runs of >= 4 amplitudes: delta-walked row + scaleRun per run,
///  - short runs: per-amplitude delta-walked row.
/// The path choice depends only on `positions`, never on `dim`, so chunked
/// (blocked) and full-state sweeps stay bit-identical.
template <typename T>
void applyDiagonalRunsSpan(std::complex<T>* state, std::int64_t dim,
                           const std::vector<int>& positions,
                           const std::vector<std::complex<T>>& diagonal,
                           SimdLevel level) {
  const int k = static_cast<int>(positions.size());
  // `positions` is MSB-first over ascending qubits => strictly descending,
  // so front() is the highest bit and back() the lowest.
  if (positions.front() == k - 1) {
    // Contiguous suffix [0, k): row = i mod 2^k, cyclic table walk.
    const util::index_t mask = (util::index_t{1} << k) - 1;
    std::complex<T>* __restrict__ psi = state;
    const std::complex<T>* __restrict__ diag = diagonal.data();
    for (std::int64_t i = 0; i < dim; ++i) {
      const std::complex<T> d = diag[static_cast<util::index_t>(i) & mask];
      const T xr = psi[i].real(), xi = psi[i].imag();
      psi[i] = std::complex<T>(d.real() * xr - d.imag() * xi,
                               d.real() * xi + d.imag() * xr);
    }
    return;
  }
  const int minPos = positions.back();
  const std::int64_t runLen = std::int64_t{1} << minPos;
  // deltas[j]: gather of the flip pattern with j low counter bits set —
  // counter bit c lives at span position shift + c, and row bit (k-1-i)
  // collects span position positions[i].
  const int shift = runLen >= 4 ? minPos : 0;
  const int counterBits = [&] {
    int m = 0;
    while ((std::int64_t{1} << (m + shift)) < dim) ++m;
    return m;
  }();
  util::index_t deltas[64];
  for (int j = 0; j <= counterBits; ++j) {
    util::index_t g = 0;
    for (int i = 0; i < k; ++i) {
      const int c = positions[static_cast<std::size_t>(i)] - shift;
      if (c >= 0 && c < j) g |= util::index_t{1} << (k - 1 - i);
    }
    deltas[j] = g;
  }
  if (runLen >= 4) {
    const std::int64_t runs = dim >> minPos;
    util::index_t row = 0;
    for (std::int64_t t = 0;;) {
      scaleRun(state + (t << minPos), runLen, diagonal[row], level);
      if (++t == runs) break;
      row ^= deltas[util::countTrailingZeros(
                        static_cast<util::index_t>(t)) + 1];
    }
    return;
  }
  // Short runs: per-amplitude delta walk (same multiply as the naive
  // gather, only the row indexing is cheaper).
  std::complex<T>* __restrict__ psi = state;
  const std::complex<T>* __restrict__ diag = diagonal.data();
  util::index_t row = 0;
  for (std::int64_t i = 0;;) {
    const std::complex<T> d = diag[row];
    const T xr = psi[i].real(), xi = psi[i].imag();
    psi[i] = std::complex<T>(d.real() * xr - d.imag() * xi,
                             d.real() * xi + d.imag() * xr);
    if (++i == dim) break;
    row ^= deltas[util::countTrailingZeros(
                      static_cast<util::index_t>(i)) + 1];
  }
}

}  // namespace simd
}  // namespace qclab::sim

#pragma once

/// \file state_buffer.hpp
/// \brief Tiered storage for statevector amplitudes.
///
/// A `StateBuffer<T>` owns the 2^n amplitudes of one simulation branch
/// and picks, by size, WHERE they live (the tier ladder; DESIGN.md,
/// "Tiered state memory"):
///
///  - **heap**  — a plain `std::vector` (the historical representation;
///    small states, and the fallback for everything below).  Large heap
///    states get a transparent-hugepage `madvise` on their page-aligned
///    interior.
///  - **numa**  — an anonymous private mapping whose pages are placed by
///    an OpenMP *first-touch* zero-fill over the SAME even static
///    partition the blocked executor uses for its chunk loop
///    (`staticPartition`, memory_advisor.hpp), so on a multi-socket box
///    each socket's threads keep streaming the chunks whose pages they
///    faulted in.  No libnuma: nodes are counted via
///    /sys/devices/system/node and a single-node box simply gets an
///    ordinary (hugepage-advised) mapping.
///  - **mmap**  — an out-of-core tier backing the state with an
///    unlinked temporary file (`MAP_SHARED`), so states larger than RAM
///    spill to disk under kernel paging.  The buffer exposes a
///    `MemoryAdvisor` that the blocked executor drives along its
///    `BlockSchedule` walk: `madvise(MADV_WILLNEED)` on upcoming
///    granules, `MADV_DONTNEED` on retired ones — safe precisely
///    because the mapping is file-backed and shared (dropped dirty
///    pages are page-cache pages the file persists).
///
/// Tier selection is automatic by state size (`chooseStateTier`), with
/// `SimulateOptions::stateTier` and the `QCLAB_STATE_TIER` /
/// `QCLAB_STATE_DIR` environment knobs overriding it, and EVERY tier
/// degrades gracefully to the heap when the platform, the filesystem,
/// or the node topology can't serve it.  All tiers are bit-identical:
/// the executors see only `data()`/`size()`.

#include <algorithm>
#include <atomic>
#include <complex>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qclab/obs/metrics.hpp"
#include "qclab/sim/memory_advisor.hpp"
#include "qclab/util/errors.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define QCLAB_STATE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define QCLAB_STATE_HAS_MMAP 0
#endif

#ifdef QCLAB_HAS_OPENMP
#include <omp.h>
#endif

namespace qclab::sim {

/// Tuning knobs of the tier ladder (SimulateOptions::stateTier).
struct StateTierOptions {
  /// Requested tier; kAuto picks by state size (and degrades to heap
  /// whenever a higher tier is unavailable).
  StateTier tier = StateTier::kAuto;
  /// Auto mode considers the NUMA tier only at/above this size (small
  /// states fit one socket's cache hierarchy anyway).
  std::size_t numaMinBytes = std::size_t{256} << 20;
  /// Auto mode goes out-of-core at/above this size; 0 = three quarters
  /// of /proc/meminfo MemAvailable (16 GiB when unreadable).
  std::size_t mmapMinBytes = 0;
  /// Backing-file directory for the mmap tier; empty = QCLAB_STATE_DIR,
  /// then TMPDIR, then /tmp.
  std::string directory;
  /// Advise transparent huge pages on large heap/NUMA allocations.
  bool hugePages = true;
};

/// The QCLAB_STATE_TIER environment variable ("auto" / "heap" / "numa" /
/// "mmap") overrides the requested tier (mirroring QCLAB_DISPATCH);
/// unknown values are ignored.
inline StateTier resolveStateTier(StateTier requested) noexcept {
  const char* env = std::getenv("QCLAB_STATE_TIER");
  if (env == nullptr) return requested;
  if (std::strcmp(env, "auto") == 0) return StateTier::kAuto;
  if (std::strcmp(env, "heap") == 0) return StateTier::kHeap;
  if (std::strcmp(env, "numa") == 0) return StateTier::kNuma;
  if (std::strcmp(env, "mmap") == 0) return StateTier::kMmap;
  return requested;
}

/// Number of NUMA nodes, detected without libnuma by probing
/// /sys/devices/system/node/node<i>.  Returns 1 when the sysfs tree is
/// absent (non-Linux, containers) — i.e. "no placement to do".  Nodes
/// numbered sparsely after offlining undercount; that only makes the
/// auto ladder more conservative.
inline int numaNodeCount() noexcept {
#if QCLAB_STATE_HAS_MMAP
  int count = 0;
  for (int i = 0; i < 1024; ++i) {
    char path[64];
    std::snprintf(path, sizeof(path), "/sys/devices/system/node/node%d", i);
    if (::access(path, F_OK) != 0) break;
    ++count;
  }
  return count > 0 ? count : 1;
#else
  return 1;
#endif
}

/// MemAvailable from /proc/meminfo, in bytes; 0 when unreadable.
inline std::size_t availableMemoryBytes() noexcept {
  std::size_t kb = 0;
  if (std::FILE* f = std::fopen("/proc/meminfo", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "MemAvailable: %zu kB", &kb) == 1) break;
    }
    std::fclose(f);
  }
  return kb * 1024;
}

/// Backing-file directory for the mmap tier: options.directory, then
/// QCLAB_STATE_DIR, then TMPDIR, then /tmp.
inline std::string stateDirectory(const StateTierOptions& options) {
  if (!options.directory.empty()) return options.directory;
  if (const char* env = std::getenv("QCLAB_STATE_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
  if (const char* tmp = std::getenv("TMPDIR");
      tmp != nullptr && *tmp != '\0') {
    return tmp;
  }
  return "/tmp";
}

/// Resolves the tier a `bytes`-sized state should be allocated on:
/// explicit requests (options or QCLAB_STATE_TIER) win; auto walks the
/// ladder by size.  The result is still a *request* — allocation
/// degrades to heap when the tier is unavailable.
inline StateTier chooseStateTier(std::size_t bytes,
                                 const StateTierOptions& options) noexcept {
  const StateTier tier = resolveStateTier(options.tier);
  if (tier != StateTier::kAuto) return tier;
  std::size_t outOfCoreMin = options.mmapMinBytes;
  if (outOfCoreMin == 0) {
    const std::size_t available = availableMemoryBytes();
    outOfCoreMin =
        available != 0 ? available / 4 * 3 : (std::size_t{16} << 30);
  }
  if (bytes >= outOfCoreMin) return StateTier::kMmap;
  if (bytes >= options.numaMinBytes && numaNodeCount() > 1) {
    return StateTier::kNuma;
  }
  return StateTier::kHeap;
}

namespace detail {

/// Size threshold for bothering the kernel with hugepage advice.
inline constexpr std::size_t kHugePageBytes = std::size_t{2} << 20;

/// Advises transparent huge pages on the page-aligned interior of an
/// arbitrary buffer (heap allocations are not page-aligned; madvise
/// accepts any page-aligned subrange).  Best-effort, Linux-only.
inline void adviseHugePages(void* data, std::size_t bytes) noexcept {
#if QCLAB_STATE_HAS_MMAP && defined(MADV_HUGEPAGE)
  if (bytes < kHugePageBytes) return;
  const auto page = static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
  const auto addr = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t lo = (addr + page - 1) & ~(page - 1);
  const std::uintptr_t hi = (addr + bytes) & ~(page - 1);
  if (hi > lo) {
    ::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
  }
#else
  (void)data;
  (void)bytes;
#endif
}

/// Prefetch advisor of the out-of-core tier.  Batches madvise calls at
/// an 8 MiB granule and tracks per-granule residency in atomic flags,
/// so concurrent per-thread walkers from the blocked executor dedup
/// their advice without locks: a granule someone already faulted in is
/// a prefetch HIT (counted, no syscall), a fresh one is ISSUED, a
/// dropped one RETIRED.  Residency known to the advisor feeds the
/// per-tier resident-bytes gauge (kernel reclaim can evict more; this
/// is the upper bound the advisor maintains).
class MmapAdvisor final : public MemoryAdvisor {
 public:
  MmapAdvisor(void* base, std::uint64_t bytes) noexcept
      : base_(static_cast<unsigned char*>(base)),
        bytes_(bytes),
        granules_((bytes + kGranule - 1) / kGranule),
        resident_(std::make_unique<std::atomic<std::uint8_t>[]>(
            granules_ != 0 ? granules_ : 1)) {
    for (std::uint64_t g = 0; g < granules_; ++g) {
      resident_[g].store(0, std::memory_order_relaxed);
    }
  }

  ~MmapAdvisor() override {
    if constexpr (obs::kEnabled) {
      const std::uint64_t left =
          residentBytes_.load(std::memory_order_relaxed);
      if (left != 0) {
        obs::metrics().releaseTierBytes(StateTier::kMmap, left, 0);
      }
    }
  }

  std::uint64_t granuleBytes() const noexcept override { return kGranule; }

  void willNeed(std::uint64_t offsetBytes,
                std::uint64_t bytes) noexcept override {
    if (bytes == 0 || offsetBytes >= bytes_) return;
    const std::uint64_t end = std::min(offsetBytes + bytes, bytes_);
    std::uint64_t issued = 0, hits = 0, issuedBytes = 0;
    for (std::uint64_t g = offsetBytes / kGranule; g * kGranule < end; ++g) {
      if (resident_[g].exchange(1, std::memory_order_relaxed) != 0) {
        ++hits;
        continue;
      }
      const std::uint64_t len = granuleLength(g);
#if QCLAB_STATE_HAS_MMAP
      ::madvise(base_ + g * kGranule, len, MADV_WILLNEED);
#endif
      ++issued;
      issuedBytes += len;
    }
    if constexpr (obs::kEnabled) {
      if (issued != 0 || hits != 0) {
        obs::metrics().countPrefetch(issued, hits, 0);
      }
      if (issuedBytes != 0) {
        residentBytes_.fetch_add(issuedBytes, std::memory_order_relaxed);
        obs::metrics().addTierBytes(StateTier::kMmap, issuedBytes, 0);
      }
    }
  }

  void retire(std::uint64_t offsetBytes,
              std::uint64_t bytes) noexcept override {
    if (bytes == 0 || offsetBytes >= bytes_) return;
    const std::uint64_t end = std::min(offsetBytes + bytes, bytes_);
    // Only granules FULLY inside the range: a straddling granule may
    // still be live in a neighbour thread's chunk span.
    std::uint64_t first = (offsetBytes + kGranule - 1) / kGranule;
    std::uint64_t retired = 0, retiredBytes = 0;
    for (std::uint64_t g = first; (g + 1) * kGranule <= end; ++g) {
      if (resident_[g].exchange(0, std::memory_order_relaxed) == 0) continue;
      const std::uint64_t len = granuleLength(g);
#if QCLAB_STATE_HAS_MMAP
      ::madvise(base_ + g * kGranule, len, MADV_DONTNEED);
#endif
      ++retired;
      retiredBytes += len;
    }
    if constexpr (obs::kEnabled) {
      if (retired != 0) {
        obs::metrics().countPrefetch(0, 0, retired);
        residentBytes_.fetch_sub(retiredBytes, std::memory_order_relaxed);
        obs::metrics().releaseTierBytes(StateTier::kMmap, retiredBytes, 0);
      }
    }
  }

 private:
  static constexpr std::uint64_t kGranule = std::uint64_t{8} << 20;

  std::uint64_t granuleLength(std::uint64_t g) const noexcept {
    return std::min(kGranule, bytes_ - g * kGranule);
  }

  unsigned char* base_;
  std::uint64_t bytes_;
  std::uint64_t granules_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> resident_;
  std::atomic<std::uint64_t> residentBytes_{0};
};

}  // namespace detail

/// Owns one branch's amplitudes on one of the three tiers.  Constructed
/// implicitly from a `std::vector` (heap tier — the historical
/// representation every call site already produces) or via `zeros`
/// (tier chosen by size).  The executors only use data()/size(); the
/// blocked executor additionally discovers `advisor()` through an
/// `if constexpr (requires ...)` probe.
template <typename T>
class StateBuffer {
 public:
  using value_type = std::complex<T>;

  StateBuffer() = default;

  /// Adopts a heap vector (implicit: every legacy `std::vector` state
  /// flows into Simulation through this).
  StateBuffer(std::vector<value_type> state) : vec_(std::move(state)) {
    trackAlloc(byteSize(), byteSize());
  }

  /// Allocates a zeroed `dim`-amplitude state on the tier
  /// `chooseStateTier(dim * sizeof(value_type), options)` resolves,
  /// degrading to the heap tier when the choice is unavailable.
  static StateBuffer zeros(std::size_t dim,
                           const StateTierOptions& options = {}) {
    StateBuffer buffer;
    buffer.options_ = options;
    const std::size_t bytes = dim * sizeof(value_type);
    switch (chooseStateTier(bytes, options)) {
      case StateTier::kMmap:
        if (buffer.allocateMmap(dim)) return buffer;
        break;
      case StateTier::kNuma:
        if (buffer.allocateNuma(dim)) return buffer;
        break;
      default:
        break;
    }
    buffer.allocateHeap(dim);
    return buffer;
  }

  StateBuffer(const StateBuffer& other) { assign(other); }

  StateBuffer& operator=(const StateBuffer& other) {
    if (this != &other) {
      release();
      assign(other);
    }
    return *this;
  }

  StateBuffer(StateBuffer&& other) noexcept
      : vec_(std::move(other.vec_)),
        map_(std::exchange(other.map_, nullptr)),
        mapElems_(std::exchange(other.mapElems_, 0)),
        mapBytes_(std::exchange(other.mapBytes_, 0)),
        tier_(std::exchange(other.tier_, StateTier::kHeap)),
        advisor_(std::move(other.advisor_)),
        options_(std::move(other.options_)),
        trackedResident_(std::exchange(other.trackedResident_, 0)),
        trackedMapped_(std::exchange(other.trackedMapped_, 0)) {
    other.vec_.clear();
  }

  StateBuffer& operator=(StateBuffer&& other) noexcept {
    if (this != &other) {
      release();
      vec_ = std::move(other.vec_);
      other.vec_.clear();
      map_ = std::exchange(other.map_, nullptr);
      mapElems_ = std::exchange(other.mapElems_, 0);
      mapBytes_ = std::exchange(other.mapBytes_, 0);
      tier_ = std::exchange(other.tier_, StateTier::kHeap);
      advisor_ = std::move(other.advisor_);
      options_ = std::move(other.options_);
      trackedResident_ = std::exchange(other.trackedResident_, 0);
      trackedMapped_ = std::exchange(other.trackedMapped_, 0);
    }
    return *this;
  }

  /// Adopts a heap vector into an existing buffer (e.g. a tableau ->
  /// statevector conversion landing in a branch).
  StateBuffer& operator=(std::vector<value_type>&& state) {
    release();
    vec_ = std::move(state);
    trackAlloc(byteSize(), byteSize());
    return *this;
  }

  ~StateBuffer() { release(); }

  value_type* data() noexcept {
    return tier_ == StateTier::kHeap ? vec_.data() : map_;
  }
  const value_type* data() const noexcept {
    return tier_ == StateTier::kHeap ? vec_.data() : map_;
  }
  std::size_t size() const noexcept {
    return tier_ == StateTier::kHeap ? vec_.size() : mapElems_;
  }
  bool empty() const noexcept { return size() == 0; }
  value_type& operator[](std::size_t i) noexcept { return data()[i]; }
  const value_type& operator[](std::size_t i) const noexcept {
    return data()[i];
  }
  value_type* begin() noexcept { return data(); }
  value_type* end() noexcept { return data() + size(); }
  const value_type* begin() const noexcept { return data(); }
  const value_type* end() const noexcept { return data() + size(); }

  /// The tier this buffer's amplitudes live on.
  StateTier tier() const noexcept { return tier_; }

  /// Elementwise equality across any pair of tiers.
  friend bool operator==(const StateBuffer& a, const StateBuffer& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }

  /// The prefetch advisor of the out-of-core tier (nullptr otherwise);
  /// the blocked executor drives it along its chunk walk.
  MemoryAdvisor* advisor() const noexcept { return advisor_.get(); }

  /// The underlying heap vector — heap tier only (the compatibility
  /// accessor behind Simulation::state()); tiered states must be read
  /// through data()/toVector() instead.
  const std::vector<value_type>& vector() const {
    util::require(tier_ == StateTier::kHeap,
                  "StateBuffer::vector(): state lives on the " +
                      std::string(stateTierName(tier_)) +
                      " tier; use data()/toVector()");
    return vec_;
  }

  /// Copies the amplitudes out into a plain vector (any tier).
  std::vector<value_type> toVector() const {
    if (tier_ == StateTier::kHeap) return vec_;
    return std::vector<value_type>(map_, map_ + mapElems_);
  }

  /// Moves the amplitudes out as a plain vector, leaving the buffer
  /// empty (heap: steals the vector; tiered: copies, then unmaps).
  std::vector<value_type> takeVector() {
    if (tier_ == StateTier::kHeap) {
      untrack();
      return std::exchange(vec_, {});
    }
    std::vector<value_type> out(map_, map_ + mapElems_);
    release();
    return out;
  }

 private:
  std::uint64_t byteSize() const noexcept {
    return static_cast<std::uint64_t>(size()) * sizeof(value_type);
  }

  void trackAlloc(std::uint64_t resident, std::uint64_t mapped) noexcept {
    trackedResident_ = resident;
    trackedMapped_ = mapped;
    if constexpr (obs::kEnabled) {
      if (resident != 0 || mapped != 0) {
        obs::metrics().addTierBytes(tier_, resident, mapped);
      }
    }
  }

  void untrack() noexcept {
    if constexpr (obs::kEnabled) {
      if (trackedResident_ != 0 || trackedMapped_ != 0) {
        obs::metrics().releaseTierBytes(tier_, trackedResident_,
                                        trackedMapped_);
      }
    }
    trackedResident_ = 0;
    trackedMapped_ = 0;
  }

  void release() noexcept {
    untrack();
    advisor_.reset();  // flushes its remaining resident accounting
#if QCLAB_STATE_HAS_MMAP
    if (map_ != nullptr) ::munmap(map_, mapBytes_);
#endif
    map_ = nullptr;
    mapElems_ = 0;
    mapBytes_ = 0;
    vec_ = std::vector<value_type>();
    tier_ = StateTier::kHeap;
  }

  void assign(const StateBuffer& other) {
    options_ = other.options_;
    if (other.tier_ == StateTier::kNuma && allocateNuma(other.size())) {
      parallelCopy(other.data());
      return;
    }
    if (other.tier_ == StateTier::kMmap && allocateMmap(other.size())) {
      std::memcpy(map_, other.data(), mapBytes_);
      return;
    }
    // Heap source, or a tier that could not be re-allocated: heap copy.
    tier_ = StateTier::kHeap;
    vec_.assign(other.data(), other.data() + other.size());
    trackAlloc(byteSize(), byteSize());
  }

  void allocateHeap(std::size_t dim) {
    tier_ = StateTier::kHeap;
    vec_.assign(dim, value_type(0));
    if (options_.hugePages) {
      detail::adviseHugePages(vec_.data(), dim * sizeof(value_type));
    }
    trackAlloc(byteSize(), byteSize());
  }

  bool allocateNuma(std::size_t dim) {
#if QCLAB_STATE_HAS_MMAP
    const std::size_t bytes = dim * sizeof(value_type);
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) return false;
#ifdef MADV_HUGEPAGE
    if (options_.hugePages && bytes >= detail::kHugePageBytes) {
      ::madvise(p, bytes, MADV_HUGEPAGE);
    }
#endif
    map_ = static_cast<value_type*>(p);
    mapElems_ = dim;
    mapBytes_ = bytes;
    tier_ = StateTier::kNuma;
    firstTouchZero();
    trackAlloc(bytes, bytes);
    return true;
#else
    (void)dim;
    return false;
#endif
  }

  bool allocateMmap(std::size_t dim) {
#if QCLAB_STATE_HAS_MMAP
    const std::size_t bytes = dim * sizeof(value_type);
    std::string path = stateDirectory(options_) + "/qclab-state-XXXXXX";
    const int fd = ::mkstemp(path.data());
    if (fd < 0) return false;
    // Unlink immediately: the state file is anonymous-by-name and the
    // kernel reclaims the disk space when the mapping goes away, even
    // on a crash.
    ::unlink(path.c_str());
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
      ::close(fd);
      return false;
    }
    void* p =
        ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    if (p == MAP_FAILED) return false;
    map_ = static_cast<value_type*>(p);
    mapElems_ = dim;
    mapBytes_ = bytes;
    tier_ = StateTier::kMmap;
    advisor_ = std::make_unique<detail::MmapAdvisor>(p, bytes);
    // ftruncate made a hole: the state reads as zeros with NO pages
    // resident yet — the zero-fill is free.
    trackAlloc(0, bytes);
    return true;
#else
    (void)dim;
    return false;
#endif
  }

  /// First-touch zero-fill over the executor's static partition — the
  /// page-placement half of the affinity contract (DESIGN.md).
  void firstTouchZero() noexcept {
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel if (!omp_in_parallel())
    {
      const auto [lo, hi] = staticPartition(
          mapElems_, omp_get_num_threads(), omp_get_thread_num());
      if (hi > lo) {
        std::memset(static_cast<void*>(map_ + lo), 0,
                    (hi - lo) * sizeof(value_type));
      }
    }
#else
    std::memset(static_cast<void*>(map_), 0, mapBytes_);
#endif
  }

  void parallelCopy(const value_type* src) noexcept {
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel if (!omp_in_parallel())
    {
      const auto [lo, hi] = staticPartition(
          mapElems_, omp_get_num_threads(), omp_get_thread_num());
      if (hi > lo) {
        std::memcpy(map_ + lo, src + lo, (hi - lo) * sizeof(value_type));
      }
    }
#else
    std::memcpy(map_, src, mapBytes_);
#endif
  }

  std::vector<value_type> vec_;     ///< heap tier storage
  value_type* map_ = nullptr;       ///< numa/mmap tier storage
  std::size_t mapElems_ = 0;
  std::size_t mapBytes_ = 0;
  StateTier tier_ = StateTier::kHeap;
  std::unique_ptr<detail::MmapAdvisor> advisor_;  ///< mmap tier only
  StateTierOptions options_;
  std::uint64_t trackedResident_ = 0;  ///< obs tier-gauge attribution
  std::uint64_t trackedMapped_ = 0;
};

/// A borrowed view of contiguous amplitudes — what the backend virtual
/// interface takes, so one applyGate signature serves `std::vector`
/// states (noise/trajectory/batch pipelines, legacy call sites) and
/// `StateBuffer` states (tiered Simulation branches) alike.
template <typename T>
class StateSpan {
 public:
  using value_type = std::complex<T>;

  StateSpan(std::vector<value_type>& state) noexcept
      : data_(state.data()), size_(state.size()) {}
  StateSpan(StateBuffer<T>& state) noexcept
      : data_(state.data()), size_(state.size()) {}
  StateSpan(value_type* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  value_type* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  value_type& operator[](std::size_t i) const noexcept { return data_[i]; }
  value_type* begin() const noexcept { return data_; }
  value_type* end() const noexcept { return data_ + size_; }

 private:
  value_type* data_;
  std::size_t size_;
};

}  // namespace qclab::sim

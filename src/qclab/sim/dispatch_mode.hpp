#pragma once

/// \file dispatch_mode.hpp
/// \brief Routing knobs of the adaptive multi-backend dispatcher.
///
/// Kept in its own dependency-free header (like kernel_path.hpp) so that
/// SimulateOptions (qcircuit.hpp) and the observability layer can name the
/// routes without pulling in the dispatch engine itself
/// (sim/dispatch.hpp).

#include <cstdlib>

namespace qclab::sim {

/// Which simulation engine QCircuit::simulate routes a circuit to.
enum class DispatchMode : int {
  kStatevector = 0,  ///< force the statevector pipeline (the default)
  kStabilizer,       ///< force the CHP tableau for the Clifford prefix,
                     ///< converting to a statevector at the first
                     ///< non-Clifford gate
  kAuto,             ///< analyze the circuit and pick the cheapest
                     ///< capable engine
};

/// Stable short name of a dispatch mode (reports, env parsing).
inline const char* dispatchModeName(DispatchMode mode) noexcept {
  switch (mode) {
    case DispatchMode::kStatevector: return "statevector";
    case DispatchMode::kStabilizer:  return "stabilizer";
    case DispatchMode::kAuto:        return "auto";
  }
  return "unknown";
}

/// How a dispatched execution was actually routed (obs counters).
enum class DispatchRoute : int {
  kStatevector = 0,  ///< whole circuit ran on the statevector pipeline
  kStabilizer,       ///< whole circuit ran on the tableau
  kHybrid,           ///< tableau prefix, converted, statevector suffix
};

/// Number of enumerators in DispatchRoute (for counter arrays).
inline constexpr int kDispatchRouteCount = 3;

/// Stable short name of a dispatch route.
inline const char* dispatchRouteName(DispatchRoute route) noexcept {
  switch (route) {
    case DispatchRoute::kStatevector: return "statevector";
    case DispatchRoute::kStabilizer:  return "stabilizer";
    case DispatchRoute::kHybrid:      return "hybrid";
  }
  return "unknown";
}

/// Tuning knobs of the auto router (SimulateOptions::dispatchOptions).
struct DispatchOptions {
  /// Auto mode only routes through the tableau when the Clifford prefix
  /// has at least this many gates/measurements/resets — shorter prefixes
  /// are not worth building a 2n x (2n+1) tableau for.
  int minCliffordPrefixOps = 4;
};

/// Resolves the effective dispatch mode: the QCLAB_DISPATCH environment
/// variable ("auto" / "statevector" / "stabilizer") overrides the
/// requested mode (mirroring QCLAB_SIMD_LEVEL); unknown values are
/// ignored.
inline DispatchMode resolveDispatchMode(DispatchMode requested) noexcept {
  const char* env = std::getenv("QCLAB_DISPATCH");
  if (env == nullptr) return requested;
  const auto matches = [env](const char* name) noexcept {
    const char* e = env;
    for (; *e != '\0' && *name != '\0'; ++e, ++name) {
      if (*e != *name) return false;
    }
    return *e == '\0' && *name == '\0';
  };
  if (matches("auto")) return DispatchMode::kAuto;
  if (matches("statevector")) return DispatchMode::kStatevector;
  if (matches("stabilizer")) return DispatchMode::kStabilizer;
  return requested;
}

}  // namespace qclab::sim

#pragma once

/// \file blocking.hpp
/// \brief Cache-blocked execution of low-qubit gate runs.
///
/// A gate whose target bit positions are all below `b` permutes and mixes
/// amplitudes only *within* each 2^b-aligned chunk of the state: chunks
/// are closed under its index transform.  So a run of consecutive fused
/// blocks that all live in the low-position window can be applied with a
/// SINGLE streaming sweep of the state — load one 2^b-amplitude chunk
/// (sized to fit L2), apply the whole gate run to it while it is
/// cache-hot, store it, move on — instead of one full-state sweep per
/// block.  The chunked execution is bit-identical to the sequential
/// unblocked sweeps: every chunk sees the same span kernels, in the same
/// order, over the same amplitudes.
///
/// In the MSB-first qubit convention, bit position = nbQubits - 1 - qubit,
/// so the low-position window is the HIGH-index qubits [nbQubits - b,
/// nbQubits) — exactly the targets with long unit-stride runs that the
/// SIMD tier (simd.hpp) vectorizes best.  Blocking and SIMD compose: the
/// per-chunk kernels below are the same dispatched span kernels.
///
/// The scheduler here is generic over any block type exposing `.qubits`
/// (ascending), `.diagonal`, and the matching payload (`.matrix` for
/// dense blocks, the `.diag` table for diagonal ones), so fusion.hpp can
/// build a BlockSchedule into its FusionPlan without a dependency cycle.

#include <algorithm>
#include <chrono>
#include <complex>
#include <cstdint>
#include <vector>

#include "qclab/dense/matrix.hpp"
#include "qclab/obs/sentinel.hpp"
#include "qclab/obs/trace.hpp"
#include "qclab/sim/simd.hpp"
#include "qclab/util/bits.hpp"
#include "qclab/util/errors.hpp"

#ifdef QCLAB_HAS_OPENMP
#include <omp.h>
#endif

namespace qclab::sim {

/// Tuning knobs of the cache-blocking scheduler.
struct BlockingOptions {
  /// Master switch; off leaves every fused block on its own full sweep.
  bool enabled = true;
  /// Chunk size in qubits; 0 = size to l2Bytes (autoBlockQubits).
  int blockQubits = 0;
  /// Assumed per-core L2 capacity used by the automatic chunk sizing.
  std::size_t l2Bytes = std::size_t{1} << 20;
  /// Minimum consecutive blockable fused blocks worth a blocked sweep;
  /// a single block gains nothing from chunking (same one sweep).
  std::size_t minRunBlocks = 2;
};

/// Largest b such that a 2^b-amplitude chunk fills at most half of
/// l2Bytes (leaving room for gate data and the streaming frontier).
template <typename T>
int autoBlockQubits(std::size_t l2Bytes) noexcept {
  const std::size_t perChunk = 2 * sizeof(std::complex<T>);
  int b = 0;
  while ((std::size_t{2} << b) * perChunk <= l2Bytes) ++b;
  return b;
}

/// One scheduled run of consecutive fused blocks [first, first + count).
struct BlockItem {
  std::size_t first = 0;  ///< index of the first fused block in the run
  std::size_t count = 0;  ///< number of consecutive fused blocks
  bool blocked = false;   ///< true: one chunked sweep; false: plain sweeps
};

/// An ordered partition of a fused-block list into blocked and plain runs.
/// An empty item list means "no blocking" (every block on its own sweep).
struct BlockSchedule {
  std::vector<BlockItem> items;
  int blockQubits = 0;  ///< chunk size used by the blocked items

  /// Number of blocked runs in the schedule.
  std::size_t blockedRuns() const noexcept {
    std::size_t n = 0;
    for (const auto& item : items) n += item.blocked ? 1 : 0;
    return n;
  }
};

/// Partitions `blocks` into maximal runs of consecutive blocks whose
/// qubits all live in the low-position window of `blockQubits` bits
/// (i.e. every qubit index >= nbQubits - b).  Runs shorter than
/// minRunBlocks stay unblocked — a lone block gains nothing from
/// chunking.  Returns an empty schedule when blocking cannot help
/// (disabled, or the whole state already fits one chunk).
template <typename Block>
BlockSchedule buildBlockSchedule(const std::vector<Block>& blocks,
                                 int nbQubits,
                                 const BlockingOptions& options = {}) {
  const obs::ScopedSpan span("fusion/block-schedule", "stage");
  BlockSchedule schedule;
  if (!options.enabled || blocks.empty()) return schedule;

  int b = options.blockQubits;
  if (b <= 0) {
    // The scalar type does not change which runs are blockable enough to
    // matter here; size for double (the wider amplitude).
    b = autoBlockQubits<double>(options.l2Bytes);
  }
  b = std::min(b, nbQubits);
  // Whole state fits one chunk: every gate is already "cache-blocked".
  if (b >= nbQubits) return schedule;
  schedule.blockQubits = b;

  const int lowestBlockableQubit = nbQubits - b;
  const auto blockable = [&](const Block& block) {
    return !block.qubits.empty() && block.qubits.front() >= lowestBlockableQubit;
  };

  bool sawBlockedRun = false;
  std::size_t i = 0;
  while (i < blocks.size()) {
    std::size_t j = i;
    const bool runBlockable = blockable(blocks[i]);
    while (j < blocks.size() && blockable(blocks[j]) == runBlockable) ++j;
    BlockItem item;
    item.first = i;
    item.count = j - i;
    item.blocked = runBlockable && (j - i) >= options.minRunBlocks;
    sawBlockedRun = sawBlockedRun || item.blocked;
    schedule.items.push_back(item);
    i = j;
  }
  if (!sawBlockedRun) schedule.items.clear();  // nothing gained: plain plan
  return schedule;
}

namespace detail {

/// Which per-chunk routine a compiled block dispatches to.
enum class ChunkKernel { kDiagonal1, kDense1, kDense2, kDiagonalK, kDenseK };

/// A fused block lowered to chunk-local form: bit positions instead of
/// qubit indices (identical inside a chunk, since all positions < b) and
/// the kernel-specific coefficient layout, computed once per blocked run.
template <typename T>
struct CompiledBlock {
  ChunkKernel kernel = ChunkKernel::kDenseK;
  std::vector<int> positions;   ///< kernel-specific order (see compile)
  std::complex<T> u2[4] = {};   ///< kDense1: row-major 2x2
  std::complex<T> u4[16] = {};  ///< kDense2: row-major 4x4, MSB-first
  std::vector<std::complex<T>> diagonal;  ///< kDiagonal1 / kDiagonalK
  dense::Matrix<T> matrix;                ///< kDenseK
  std::vector<util::index_t> offsets;     ///< kDenseK subspace offsets
};

/// Lowers one fused block to its chunk-local compiled form.
template <typename T, typename Block>
CompiledBlock<T> compileBlock(const Block& block, int nbQubits) {
  CompiledBlock<T> compiled;
  const int k = static_cast<int>(block.qubits.size());
  // MSB-first positions: qubits ascending => positions descending; this
  // order matches the MSB-first row indexing of the block matrix.
  std::vector<int> msbFirst(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    msbFirst[static_cast<std::size_t>(i)] =
        util::bitPosition(block.qubits[static_cast<std::size_t>(i)], nbQubits);
  }

  if (block.diagonal) {
    compiled.diagonal = block.diag;
    compiled.kernel =
        k == 1 ? ChunkKernel::kDiagonal1 : ChunkKernel::kDiagonalK;
    compiled.positions = std::move(msbFirst);
    return compiled;
  }

  if (k == 1) {
    compiled.kernel = ChunkKernel::kDense1;
    compiled.positions = std::move(msbFirst);
    for (int i = 0; i < 4; ++i) {
      compiled.u2[i] = block.matrix(static_cast<std::size_t>(i / 2),
                                    static_cast<std::size_t>(i % 2));
    }
    return compiled;
  }

  if (k == 2) {
    compiled.kernel = ChunkKernel::kDense2;
    compiled.positions = std::move(msbFirst);  // {posHi, posLo}
    for (int i = 0; i < 16; ++i) {
      compiled.u4[i] = block.matrix(static_cast<std::size_t>(i / 4),
                                    static_cast<std::size_t>(i % 4));
    }
    return compiled;
  }

  compiled.kernel = ChunkKernel::kDenseK;
  compiled.matrix = block.matrix;
  // Ascending positions for bit insertion, MSB-first offsets for rows —
  // the same layout applyK uses, restricted to a chunk index.
  compiled.positions.assign(msbFirst.rbegin(), msbFirst.rend());
  compiled.offsets.assign(std::size_t{1} << k, 0);
  for (util::index_t r = 0; r < compiled.offsets.size(); ++r) {
    util::index_t offset = 0;
    for (int i = 0; i < k; ++i) {
      if (util::getBit(r, util::bitPosition(i, k))) {
        offset =
            util::setBit(offset, msbFirst[static_cast<std::size_t>(i)]);
      }
    }
    compiled.offsets[r] = offset;
  }
  return compiled;
}

/// Applies a compiled gate run to one chunk via the dispatched span
/// kernels of simd.hpp.  Serial: the caller parallelizes over chunks.
template <typename T>
void applyCompiledChunk(std::complex<T>* chunk, std::int64_t chunkDim,
                        const std::vector<CompiledBlock<T>>& run,
                        SimdLevel level,
                        std::vector<std::complex<T>>& scratch) {
  for (const auto& block : run) {
    switch (block.kernel) {
      case ChunkKernel::kDiagonal1:
        simd::applyDiagonal1Span(chunk, chunkDim, block.positions[0],
                                 block.diagonal[0], block.diagonal[1], level);
        break;
      case ChunkKernel::kDense1:
        simd::apply1Span(chunk, chunkDim, block.positions[0], block.u2,
                         level);
        break;
      case ChunkKernel::kDense2:
        simd::apply2Span(chunk, chunkDim, block.positions[0],
                         block.positions[1], block.u4, level);
        break;
      case ChunkKernel::kDiagonalK:
        simd::applyDiagonalRunsSpan(chunk, chunkDim, block.positions,
                                    block.diagonal, level);
        break;
      case ChunkKernel::kDenseK:
        simd::applyKSpan(chunk, chunkDim, block.positions, block.offsets,
                         block.matrix, scratch);
        break;
    }
  }
}

}  // namespace detail

/// Applies the run of fused blocks [first, first + count) with ONE
/// streaming sweep of the state in 2^blockQubits-amplitude chunks.  Every
/// block in the run must have all its qubits >= nbQubits - blockQubits
/// (enforced by buildBlockSchedule).  Bit-identical to applying the
/// blocks sequentially with full sweeps.
template <typename T, typename Block>
void applyBlockedRun(std::vector<std::complex<T>>& state, int nbQubits,
                     const std::vector<Block>& blocks, std::size_t first,
                     std::size_t count, int blockQubits) {
  util::require(blockQubits >= 1 && blockQubits < nbQubits,
                "applyBlockedRun: chunk size out of range");
  std::vector<detail::CompiledBlock<T>> run;
  run.reserve(count);
  for (std::size_t i = first; i < first + count; ++i) {
    const Block& block = blocks[i];
    util::require(!block.qubits.empty() &&
                      block.qubits.front() >= nbQubits - blockQubits,
                  "applyBlockedRun: block escapes the chunk window");
    run.push_back(detail::compileBlock<T>(block, nbQubits));
  }

  const SimdLevel level = activeSimdLevel();
  const std::int64_t chunkDim = std::int64_t{1} << blockQubits;
  const std::int64_t chunks = std::int64_t{1} << (nbQubits - blockQubits);

  // Numerical-health sentinel: when this run's check is due, each chunk is
  // scanned right after its kernels while it is still cache-hot, per-thread
  // partials are merged once, and ONE report covers the whole sweep — the
  // sentinel cost rides the blocking win instead of forcing its own
  // full-state pass.
  const bool sentinelDue = obs::sentinel().shouldCheck();
  double sentinelNormSq = 0.0;
  double sentinelMaxAmpSq = 0.0;
  bool sentinelNanSeen = false;
  const auto sentinelBegin = sentinelDue
                                 ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};

#ifdef QCLAB_HAS_OPENMP
  // Trajectory workers call fusion plans from inside an OMP region;
  // nested teams would only add overhead there.
#pragma omp parallel if (chunks > 1 && !omp_in_parallel())
#endif
  {
    std::vector<std::complex<T>> scratch;
    double threadNormSq = 0.0;
    double threadMaxAmpSq = 0.0;
    bool threadNanSeen = false;
#ifdef QCLAB_HAS_OPENMP
#pragma omp for schedule(static)
#endif
    for (std::int64_t c = 0; c < chunks; ++c) {
      detail::applyCompiledChunk(state.data() + c * chunkDim, chunkDim, run,
                                 level, scratch);
      if (sentinelDue) {
        obs::sentinelAccumulateChunk(state.data() + c * chunkDim,
                                     static_cast<std::size_t>(chunkDim),
                                     threadNormSq, threadMaxAmpSq,
                                     threadNanSeen);
      }
    }
    if (sentinelDue) {
#ifdef QCLAB_HAS_OPENMP
#pragma omp critical(qclab_blocked_sentinel)
#endif
      {
        sentinelNormSq += threadNormSq;
        if (threadMaxAmpSq > sentinelMaxAmpSq) {
          sentinelMaxAmpSq = threadMaxAmpSq;
        }
        sentinelNanSeen = sentinelNanSeen || threadNanSeen;
      }
    }
  }
  if (sentinelDue) {
    const auto elapsed = std::chrono::steady_clock::now() - sentinelBegin;
    obs::sentinel().report(
        sentinelNormSq, sentinelMaxAmpSq, sentinelNanSeen, "blocked",
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }
}

}  // namespace qclab::sim

#pragma once

/// \file blocking.hpp
/// \brief Cache-blocked execution of low-qubit gate runs.
///
/// A gate whose target bit positions are all below `b` permutes and mixes
/// amplitudes only *within* each 2^b-aligned chunk of the state: chunks
/// are closed under its index transform.  So a run of consecutive fused
/// blocks that all live in the low-position window can be applied with a
/// SINGLE streaming sweep of the state — load one 2^b-amplitude chunk
/// (sized to fit L2), apply the whole gate run to it while it is
/// cache-hot, store it, move on — instead of one full-state sweep per
/// block.  The chunked execution is bit-identical to the sequential
/// unblocked sweeps: every chunk sees the same span kernels, in the same
/// order, over the same amplitudes.
///
/// In the MSB-first qubit convention, bit position = nbQubits - 1 - qubit,
/// so the low-position window is the HIGH-index qubits [nbQubits - b,
/// nbQubits) — exactly the targets with long unit-stride runs that the
/// SIMD tier (simd.hpp) vectorizes best.  Blocking and SIMD compose: the
/// per-chunk kernels below are the same dispatched span kernels.
///
/// The scheduler here is generic over any block type exposing `.qubits`
/// (ascending), `.diagonal`, and the matching payload (`.matrix` for
/// dense blocks, the `.diag` table for diagonal ones), so fusion.hpp can
/// build a BlockSchedule into its FusionPlan without a dependency cycle.

#include <algorithm>
#include <chrono>
#include <complex>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "qclab/dense/matrix.hpp"
#include "qclab/obs/sentinel.hpp"
#include "qclab/obs/trace.hpp"
#include "qclab/sim/memory_advisor.hpp"
#include "qclab/sim/simd.hpp"
#include "qclab/util/bits.hpp"
#include "qclab/util/errors.hpp"

#ifdef QCLAB_HAS_OPENMP
#include <omp.h>
#endif

namespace qclab::sim {

/// Tuning knobs of the cache-blocking scheduler.
struct BlockingOptions {
  /// Master switch; off leaves every fused block on its own full sweep.
  bool enabled = true;
  /// Chunk size in qubits; 0 = size to l2Bytes (autoBlockQubits).
  int blockQubits = 0;
  /// Assumed per-core L2 capacity used by the automatic chunk sizing.
  std::size_t l2Bytes = std::size_t{1} << 20;
  /// Minimum consecutive blockable fused blocks worth a blocked sweep;
  /// a single block gains nothing from chunking (same one sweep).
  std::size_t minRunBlocks = 2;
};

/// Largest b such that a 2^b-amplitude chunk fills at most half of
/// l2Bytes (leaving room for gate data and the streaming frontier).
template <typename T>
int autoBlockQubits(std::size_t l2Bytes) noexcept {
  const std::size_t perChunk = 2 * sizeof(std::complex<T>);
  int b = 0;
  while ((std::size_t{2} << b) * perChunk <= l2Bytes) ++b;
  return b;
}

/// Applies the QCLAB_L2_BYTES / QCLAB_BLOCK_QUBITS environment
/// overrides to `options` (mirroring QCLAB_DISPATCH /
/// resolveDispatchMode): chunk sizing becomes tunable without a
/// rebuild.  Unparsable or out-of-range values are ignored.
inline BlockingOptions resolveBlockingOptions(
    BlockingOptions options) noexcept {
  if (const char* env = std::getenv("QCLAB_L2_BYTES")) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      options.l2Bytes = static_cast<std::size_t>(value);
    }
  }
  if (const char* env = std::getenv("QCLAB_BLOCK_QUBITS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0 && value < 63) {
      options.blockQubits = static_cast<int>(value);
    }
  }
  return options;
}

/// One scheduled run of consecutive fused blocks [first, first + count).
struct BlockItem {
  std::size_t first = 0;  ///< index of the first fused block in the run
  std::size_t count = 0;  ///< number of consecutive fused blocks
  bool blocked = false;   ///< true: one chunked sweep; false: plain sweeps
};

/// An ordered partition of a fused-block list into blocked and plain runs.
/// An empty item list means "no blocking" (every block on its own sweep).
struct BlockSchedule {
  std::vector<BlockItem> items;
  int blockQubits = 0;  ///< chunk size used by the blocked items

  /// Number of blocked runs in the schedule.
  std::size_t blockedRuns() const noexcept {
    std::size_t n = 0;
    for (const auto& item : items) n += item.blocked ? 1 : 0;
    return n;
  }
};

/// Partitions `blocks` into maximal runs of consecutive blocks whose
/// qubits all live in the low-position window of `blockQubits` bits
/// (i.e. every qubit index >= nbQubits - b).  Runs shorter than
/// minRunBlocks stay unblocked — a lone block gains nothing from
/// chunking.  Returns an empty schedule when blocking cannot help
/// (disabled, or the whole state already fits one chunk).
template <typename T = double, typename Block>
BlockSchedule buildBlockSchedule(const std::vector<Block>& blocks,
                                 int nbQubits,
                                 const BlockingOptions& options = {}) {
  const obs::ScopedSpan span("fusion/block-schedule", "stage");
  BlockSchedule schedule;
  const BlockingOptions resolved = resolveBlockingOptions(options);
  if (!resolved.enabled || blocks.empty()) return schedule;

  int b = resolved.blockQubits;
  if (b <= 0) {
    // Size the chunk by the ACTUAL amplitude width: a float state fits
    // twice the amplitudes of a double state in the same l2Bytes, so
    // sizing for double would leave half the configured cache unused.
    b = autoBlockQubits<T>(resolved.l2Bytes);
  }
  b = std::min(b, nbQubits);
  // Whole state fits one chunk: every gate is already "cache-blocked".
  if (b >= nbQubits) return schedule;
  schedule.blockQubits = b;

  const int lowestBlockableQubit = nbQubits - b;
  const auto blockable = [&](const Block& block) {
    return !block.qubits.empty() && block.qubits.front() >= lowestBlockableQubit;
  };

  bool sawBlockedRun = false;
  std::size_t i = 0;
  while (i < blocks.size()) {
    std::size_t j = i;
    const bool runBlockable = blockable(blocks[i]);
    while (j < blocks.size() && blockable(blocks[j]) == runBlockable) ++j;
    BlockItem item;
    item.first = i;
    item.count = j - i;
    item.blocked = runBlockable && (j - i) >= resolved.minRunBlocks;
    sawBlockedRun = sawBlockedRun || item.blocked;
    schedule.items.push_back(item);
    i = j;
  }
  if (!sawBlockedRun) schedule.items.clear();  // nothing gained: plain plan
  return schedule;
}

namespace detail {

/// Which per-chunk routine a compiled block dispatches to.
enum class ChunkKernel { kDiagonal1, kDense1, kDense2, kDiagonalK, kDenseK };

/// A fused block lowered to chunk-local form: bit positions instead of
/// qubit indices (identical inside a chunk, since all positions < b) and
/// the kernel-specific coefficient layout, computed once per blocked run.
template <typename T>
struct CompiledBlock {
  ChunkKernel kernel = ChunkKernel::kDenseK;
  std::vector<int> positions;   ///< kernel-specific order (see compile)
  std::complex<T> u2[4] = {};   ///< kDense1: row-major 2x2
  std::complex<T> u4[16] = {};  ///< kDense2: row-major 4x4, MSB-first
  std::vector<std::complex<T>> diagonal;  ///< kDiagonal1 / kDiagonalK
  dense::Matrix<T> matrix;                ///< kDenseK
  std::vector<util::index_t> offsets;     ///< kDenseK subspace offsets
};

/// Lowers one fused block to its chunk-local compiled form.
template <typename T, typename Block>
CompiledBlock<T> compileBlock(const Block& block, int nbQubits) {
  CompiledBlock<T> compiled;
  const int k = static_cast<int>(block.qubits.size());
  // MSB-first positions: qubits ascending => positions descending; this
  // order matches the MSB-first row indexing of the block matrix.
  std::vector<int> msbFirst(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    msbFirst[static_cast<std::size_t>(i)] =
        util::bitPosition(block.qubits[static_cast<std::size_t>(i)], nbQubits);
  }

  if (block.diagonal) {
    compiled.diagonal = block.diag;
    compiled.kernel =
        k == 1 ? ChunkKernel::kDiagonal1 : ChunkKernel::kDiagonalK;
    compiled.positions = std::move(msbFirst);
    return compiled;
  }

  if (k == 1) {
    compiled.kernel = ChunkKernel::kDense1;
    compiled.positions = std::move(msbFirst);
    for (int i = 0; i < 4; ++i) {
      compiled.u2[i] = block.matrix(static_cast<std::size_t>(i / 2),
                                    static_cast<std::size_t>(i % 2));
    }
    return compiled;
  }

  if (k == 2) {
    compiled.kernel = ChunkKernel::kDense2;
    compiled.positions = std::move(msbFirst);  // {posHi, posLo}
    for (int i = 0; i < 16; ++i) {
      compiled.u4[i] = block.matrix(static_cast<std::size_t>(i / 4),
                                    static_cast<std::size_t>(i % 4));
    }
    return compiled;
  }

  compiled.kernel = ChunkKernel::kDenseK;
  compiled.matrix = block.matrix;
  // Ascending positions for bit insertion, MSB-first offsets for rows —
  // the same layout applyK uses, restricted to a chunk index.
  compiled.positions.assign(msbFirst.rbegin(), msbFirst.rend());
  compiled.offsets.assign(std::size_t{1} << k, 0);
  for (util::index_t r = 0; r < compiled.offsets.size(); ++r) {
    util::index_t offset = 0;
    for (int i = 0; i < k; ++i) {
      if (util::getBit(r, util::bitPosition(i, k))) {
        offset =
            util::setBit(offset, msbFirst[static_cast<std::size_t>(i)]);
      }
    }
    compiled.offsets[r] = offset;
  }
  return compiled;
}

/// Applies a compiled gate run to one chunk via the dispatched span
/// kernels of simd.hpp.  Serial: the caller parallelizes over chunks.
template <typename T>
void applyCompiledChunk(std::complex<T>* chunk, std::int64_t chunkDim,
                        const std::vector<CompiledBlock<T>>& run,
                        SimdLevel level,
                        std::vector<std::complex<T>>& scratch) {
  for (const auto& block : run) {
    switch (block.kernel) {
      case ChunkKernel::kDiagonal1:
        simd::applyDiagonal1Span(chunk, chunkDim, block.positions[0],
                                 block.diagonal[0], block.diagonal[1], level);
        break;
      case ChunkKernel::kDense1:
        simd::apply1Span(chunk, chunkDim, block.positions[0], block.u2,
                         level);
        break;
      case ChunkKernel::kDense2:
        simd::apply2Span(chunk, chunkDim, block.positions[0],
                         block.positions[1], block.u4, level);
        break;
      case ChunkKernel::kDiagonalK:
        simd::applyDiagonalRunsSpan(chunk, chunkDim, block.positions,
                                    block.diagonal, level);
        break;
      case ChunkKernel::kDenseK:
        simd::applyKSpan(chunk, chunkDim, block.positions, block.offsets,
                         block.matrix, scratch);
        break;
    }
  }
}

}  // namespace detail

/// Applies the run of fused blocks [first, first + count) with ONE
/// streaming sweep of the state in 2^blockQubits-amplitude chunks.  Every
/// block in the run must have all its qubits >= nbQubits - blockQubits
/// (enforced by buildBlockSchedule).  Bit-identical to applying the
/// blocks sequentially with full sweeps.
///
/// Generic over the state container.  When the container exposes a
/// prefetch advisor (the out-of-core tier of sim::StateBuffer), each
/// thread walks its OWN contiguous chunk range — the same
/// staticPartition split the NUMA first-touch pass used — keeping a
/// WILLNEED window one advisor granule ahead of the chunk being
/// computed and DONTNEED-retiring granules it has fully streamed past,
/// so the resident set stays a few granules per thread regardless of
/// state size.
template <typename State, typename Block>
void applyBlockedRun(State& state, int nbQubits,
                     const std::vector<Block>& blocks, std::size_t first,
                     std::size_t count, int blockQubits) {
  using T = typename State::value_type::value_type;
  util::require(blockQubits >= 1 && blockQubits < nbQubits,
                "applyBlockedRun: chunk size out of range");
  std::vector<detail::CompiledBlock<T>> run;
  run.reserve(count);
  for (std::size_t i = first; i < first + count; ++i) {
    const Block& block = blocks[i];
    util::require(!block.qubits.empty() &&
                      block.qubits.front() >= nbQubits - blockQubits,
                  "applyBlockedRun: block escapes the chunk window");
    run.push_back(detail::compileBlock<T>(block, nbQubits));
  }

  const SimdLevel level = activeSimdLevel();
  const std::int64_t chunkDim = std::int64_t{1} << blockQubits;
  const std::int64_t chunks = std::int64_t{1} << (nbQubits - blockQubits);

  // Out-of-core states expose a prefetch advisor; plain vectors (and
  // the heap/NUMA tiers) do not, and the walk below compiles away.
  MemoryAdvisor* advisor = nullptr;
  if constexpr (requires { state.advisor(); }) {
    advisor = state.advisor();
  }

  // Numerical-health sentinel: when this run's check is due, each chunk is
  // scanned right after its kernels while it is still cache-hot, per-thread
  // partials are merged once, and ONE report covers the whole sweep — the
  // sentinel cost rides the blocking win instead of forcing its own
  // full-state pass.
  const bool sentinelDue = obs::sentinel().shouldCheck();
  double sentinelNormSq = 0.0;
  double sentinelMaxAmpSq = 0.0;
  bool sentinelNanSeen = false;
  const auto sentinelBegin = sentinelDue
                                 ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};

#ifdef QCLAB_HAS_OPENMP
  // Trajectory workers call fusion plans from inside an OMP region;
  // nested teams would only add overhead there.
#pragma omp parallel if (chunks > 1 && !omp_in_parallel())
#endif
  {
    std::vector<std::complex<T>> scratch;
    double threadNormSq = 0.0;
    double threadMaxAmpSq = 0.0;
    bool threadNanSeen = false;
    // Manual even static partition instead of `omp for schedule(static)`:
    // the SAME contiguous per-thread ranges the NUMA tier's first-touch
    // pass placed pages for (the affinity contract, DESIGN.md), and the
    // ranges the prefetch walk needs to know explicitly.
#ifdef QCLAB_HAS_OPENMP
    const int nThreads = omp_get_num_threads();
    const int tid = omp_get_thread_num();
#else
    const int nThreads = 1;
    const int tid = 0;
#endif
    const auto [chunkLo, chunkHi] =
        staticPartition(static_cast<std::size_t>(chunks), nThreads, tid);
    const std::uint64_t chunkBytes =
        static_cast<std::uint64_t>(chunkDim) * sizeof(std::complex<T>);
    const std::uint64_t granule = advisor ? advisor->granuleBytes() : 0;
    const std::uint64_t threadEnd = chunkHi * chunkBytes;
    std::uint64_t frontier = chunkLo * chunkBytes;  // willNeed high-water
    std::uint64_t retireMark = frontier;            // retired low-water
    for (std::size_t c = chunkLo; c < chunkHi; ++c) {
      if (advisor != nullptr) {
        // Keep the fault-ahead window one granule past the chunk at hand.
        const std::uint64_t offset = c * chunkBytes;
        const std::uint64_t wanted = std::min(
            threadEnd, std::max(offset + chunkBytes,
                                (offset / granule + 2) * granule));
        if (wanted > frontier) {
          advisor->willNeed(frontier, wanted - frontier);
          frontier = wanted;
        }
      }
      detail::applyCompiledChunk(state.data() + c * chunkDim, chunkDim, run,
                                 level, scratch);
      if (sentinelDue) {
        obs::sentinelAccumulateChunk(state.data() + c * chunkDim,
                                     static_cast<std::size_t>(chunkDim),
                                     threadNormSq, threadMaxAmpSq,
                                     threadNanSeen);
      }
      if (advisor != nullptr) {
        // Drop granules streamed fully past, keeping one behind so the
        // chunk straddling the granule boundary is not refaulted.
        const std::uint64_t done = (c + 1) * chunkBytes;
        if (done >= retireMark + 2 * granule) {
          advisor->retire(retireMark, done - granule - retireMark);
          retireMark = done - granule;
        }
      }
    }
    if (advisor != nullptr && threadEnd > retireMark) {
      advisor->retire(retireMark, threadEnd - retireMark);
    }
    if (sentinelDue) {
#ifdef QCLAB_HAS_OPENMP
#pragma omp critical(qclab_blocked_sentinel)
#endif
      {
        sentinelNormSq += threadNormSq;
        if (threadMaxAmpSq > sentinelMaxAmpSq) {
          sentinelMaxAmpSq = threadMaxAmpSq;
        }
        sentinelNanSeen = sentinelNanSeen || threadNanSeen;
      }
    }
  }
  if (sentinelDue) {
    const auto elapsed = std::chrono::steady_clock::now() - sentinelBegin;
    obs::sentinel().report(
        sentinelNormSq, sentinelMaxAmpSq, sentinelNanSeen, "blocked",
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }
}

}  // namespace qclab::sim

#pragma once

/// \file memory_advisor.hpp
/// \brief The executor -> memory-tier hinting contract.
///
/// The blocked executor (blocking.hpp) walks the state in deterministic
/// per-thread chunk ranges; a tiered state buffer (state_buffer.hpp) may
/// hold those amplitudes in memory the kernel should be told about —
/// e.g. a file-backed mmap whose pages are faulted from disk.  The
/// executor talks to the tier through this tiny interface so that
/// blocking.hpp never depends on the buffer implementation (and
/// state_buffer.hpp can include obs/metrics.hpp without a cycle).
///
/// Offsets and lengths are in BYTES from the start of the state.  The
/// advisor batches at its own granule size: willNeed/retire on a byte
/// range affect every granule the range overlaps.  All methods must be
/// thread-safe — the blocked executor calls them from inside an OpenMP
/// parallel region, one walker per thread.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace qclab::sim {

/// The memory tier a state buffer lives in.  The resolved tiers come
/// first so they double as 0-based counter indices (obs per-tier byte
/// gauges); kAuto is a request, never a resolved tier.
enum class StateTier : int {
  kHeap = 0,  ///< aligned heap allocation (std::vector), optional THP
  kNuma,      ///< first-touch-placed anonymous mapping (multi-socket)
  kMmap,      ///< file-backed out-of-core mapping with prefetch advisor
  kAuto,      ///< pick by state size (SimulateOptions / env default)
};

/// Number of resolved tiers (counter-array size; excludes kAuto).
inline constexpr int kStateTierCount = 3;

/// Stable short name of a tier (reports, env parsing).
inline const char* stateTierName(StateTier tier) noexcept {
  switch (tier) {
    case StateTier::kHeap: return "heap";
    case StateTier::kNuma: return "numa";
    case StateTier::kMmap: return "mmap";
    case StateTier::kAuto: return "auto";
  }
  return "unknown";
}

/// Hint sink for schedule-driven prefetch (out-of-core states).
class MemoryAdvisor {
 public:
  virtual ~MemoryAdvisor() = default;

  /// Batch size of the underlying advice calls, in bytes.  Always a
  /// power of two and a multiple of the page size.
  virtual std::uint64_t granuleBytes() const noexcept = 0;

  /// The executor is about to stream through [offsetBytes, offsetBytes
  /// + bytes): fault it in ahead of use (e.g. madvise(MADV_WILLNEED)).
  virtual void willNeed(std::uint64_t offsetBytes,
                        std::uint64_t bytes) noexcept = 0;

  /// The executor has finished with [offsetBytes, offsetBytes + bytes)
  /// for this sweep: the pages may be dropped (e.g. MADV_DONTNEED on a
  /// file-backed shared mapping, where the file keeps the data).
  virtual void retire(std::uint64_t offsetBytes,
                      std::uint64_t bytes) noexcept = 0;
};

/// The contiguous [lo, hi) share of `total` items owned by thread `tid`
/// of `threads` under an even static partition — the SAME split the
/// blocked executor uses for its chunk loop and the NUMA tier uses for
/// its first-touch pass.  Keeping both on this one helper IS the
/// first-touch affinity contract (DESIGN.md, memory tiers).
inline std::pair<std::size_t, std::size_t> staticPartition(
    std::size_t total, int threads, int tid) noexcept {
  if (threads <= 1) return {0, total};
  const std::size_t per = total / static_cast<std::size_t>(threads);
  const std::size_t rem = total % static_cast<std::size_t>(threads);
  const std::size_t t = static_cast<std::size_t>(tid);
  const std::size_t lo = t * per + std::min(t, rem);
  return {lo, lo + per + (t < rem ? 1 : 0)};
}

}  // namespace qclab::sim

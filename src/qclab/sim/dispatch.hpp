#pragma once

/// \file dispatch.hpp
/// \brief Adaptive multi-backend dispatch: statevector ↔ CHP stabilizer
/// tableau.
///
/// Three pieces (ROADMAP "adaptive dispatch layer"):
///
///  1. analyzeCircuit — one pass over a QCircuit producing a flat op list
///     with accumulated offsets, a gate census, the Clifford fraction, and
///     the length of the leading run of tableau-executable ops (the
///     "Clifford prefix").  Gate classification probes the exact code path
///     the executor uses (stabilizer::isCliffordGate), so analyzer and
///     executor cannot disagree.
///
///  2. DispatchRunner — the router behind SimulateOptions::dispatch.  The
///     Clifford prefix runs on the tableau in O(n^2) per op, forking
///     branches at random (exactly 50/50) measurements to reproduce the
///     statevector branch tree bit for bit; at the first non-Clifford op
///     every branch tableau expands into a statevector (the CHP-style
///     conversion point, O(2^rank) amplitudes) and the remaining suffix
///     runs on the existing fusion/blocking/SIMD pipeline.  A typed
///     UnsupportedGateError anywhere in the tableau phase falls back to
///     the pure statevector path.
///
///  3. dispatchSampleCounts — the at-scale API: counts-level sampling of
///     fully Clifford circuits (QEC rounds at hundreds of qubits) that
///     never materializes amplitudes.  Shots are partitioned into fixed
///     chunks, one random::Rng jump stream per chunk, so the histogram is
///     identical for every OMP thread count.
///
/// obs integration: `dispatch/analyze` and `dispatch/convert` stage spans,
/// KernelPath::kStabilizer per tableau gate, KernelPath::kDispatch latency
/// per routed execution, and route / fallback / conversion counters
/// surfaced in the v4 report and the OpenMetrics export.

#include <atomic>
#include <bit>
#include <cmath>
#include <complex>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "qclab/obs/histogram.hpp"
#include "qclab/obs/metrics.hpp"
#include "qclab/obs/trace.hpp"
#include "qclab/qcircuit.hpp"
#include "qclab/sim/dispatch_mode.hpp"
#include "qclab/stabilizer/apply.hpp"
#include "qclab/util/bits.hpp"

#ifdef QCLAB_HAS_OPENMP
#include <omp.h>
#endif

namespace qclab::sim {

// ---- circuit analysis ----------------------------------------------------

/// One elementary object of the flattened circuit walk, with the absolute
/// qubit offset accumulated over its nesting chain.
template <typename T>
struct FlatOp {
  const QObject<T>* object;
  int offset;
};

/// What one analyzer pass learned about a circuit.
template <typename T>
struct CircuitAnalysis {
  int nbQubits = 0;
  /// Elementary ops (gates, measurements, resets, barriers) in execution
  /// order — sub-circuits are flattened away.
  std::vector<FlatOp<T>> ops;
  std::size_t nbGates = 0;
  std::size_t nbCliffordGates = 0;
  std::size_t nbMeasurements = 0;
  std::size_t nbResets = 0;
  /// Number of leading ops executable on the tableau (the conversion
  /// point index).  Equals ops.size() when the whole circuit is Clifford.
  std::size_t cliffordPrefixOps = 0;
  /// True when every op runs on the tableau (no conversion needed).
  bool fullyClifford = false;
  /// Clifford gates / gates; 1.0 for gate-free circuits.
  double cliffordFraction = 1.0;
  /// Op histogram keyed like QCircuit::gateCounts (gate mnemonic, or
  /// "measure" / "reset" / "barrier").
  std::map<std::string, std::size_t> census;
};

namespace detail {

template <typename T>
void flattenCircuit(const QCircuit<T>& circuit, int offset,
                    std::vector<FlatOp<T>>& ops) {
  const int total = offset + circuit.offset();
  for (const auto& object : circuit) {
    if (object->objectType() == ObjectType::kCircuit) {
      flattenCircuit(static_cast<const QCircuit<T>&>(*object), total, ops);
    } else {
      ops.push_back({object.get(), total});
    }
  }
}

}  // namespace detail

/// Analyzes `circuit` in a single pass: flat op list, gate census,
/// Clifford fraction, and the tableau-executable prefix length.
template <typename T>
CircuitAnalysis<T> analyzeCircuit(const QCircuit<T>& circuit) {
  CircuitAnalysis<T> analysis;
  analysis.nbQubits = circuit.nbQubits();
  detail::flattenCircuit(circuit, 0, analysis.ops);
  bool cliffordSoFar = true;
  for (std::size_t index = 0; index < analysis.ops.size(); ++index) {
    const QObject<T>& object = *analysis.ops[index].object;
    bool supported = true;
    switch (object.objectType()) {
      case ObjectType::kGate: {
        const auto& gate = static_cast<const qgates::QGate<T>&>(object);
        ++analysis.nbGates;
        ++analysis.census[qgates::gateKindLabel(gate)];
        supported = stabilizer::isCliffordGate(gate);
        if (supported) ++analysis.nbCliffordGates;
        break;
      }
      case ObjectType::kMeasurement:
        ++analysis.nbMeasurements;
        ++analysis.census["measure"];
        supported = static_cast<const Measurement<T>&>(object).basis() !=
                    Basis::kCustom;
        break;
      case ObjectType::kReset:
        ++analysis.nbResets;
        ++analysis.census["reset"];
        break;
      case ObjectType::kBarrier:
        ++analysis.census["barrier"];
        break;
      case ObjectType::kCircuit:
        break;  // flattened away
    }
    if (cliffordSoFar && supported) {
      analysis.cliffordPrefixOps = index + 1;
    } else {
      cliffordSoFar = false;
    }
  }
  analysis.fullyClifford = analysis.cliffordPrefixOps == analysis.ops.size();
  analysis.cliffordFraction =
      analysis.nbGates == 0
          ? 1.0
          : static_cast<double>(analysis.nbCliffordGates) /
                static_cast<double>(analysis.nbGates);
  return analysis;
}

// ---- tableau -> statevector conversion -----------------------------------

/// Expands a stabilizer tableau into the 2^n statevector it represents.
///
/// Gaussian elimination over the stabilizer X-block yields `rank`
/// X-bearing generators (the state has 2^rank support states of magnitude
/// (1/sqrt(2))^rank each) and n-rank Z-only generators whose sign bits pin
/// one support basis state; the support is then enumerated by applying the
/// X-bearing generators with exact {±1, ±i} Pauli phase tracking.  The
/// anchor amplitude is real positive (global-phase convention); the
/// magnitude is computed as `rank` successive multiplications by 1/sqrt(2)
/// to reproduce the statevector path's Hadamard-cascade rounding bit for
/// bit.
template <typename T>
std::vector<std::complex<T>> tableauToStatevector(
    const stabilizer::Tableau& tableau) {
  const int n = tableau.nbQubits();
  util::require(n <= 30,
                "tableau -> statevector expansion needs 2^n amplitudes; "
                "capped at 30 qubits");
  using util::index_t;

  /// i^phase * product of per-qubit Paulis (Y where both masks set).
  struct Row {
    index_t x = 0;
    index_t z = 0;
    int phase = 0;  ///< exponent of i, 0..3 (stabilizers: 0 or 2)
  };
  std::vector<Row> rows(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    Row& row = rows[static_cast<std::size_t>(k)];
    for (int q = 0; q < n; ++q) {
      const index_t bit = index_t{1} << util::bitPosition(q, n);
      if (tableau.stabilizerX(k, q)) row.x |= bit;
      if (tableau.stabilizerZ(k, q)) row.z |= bit;
    }
    row.phase = tableau.stabilizerSign(k) ? 2 : 0;
  }

  // h := h * g with the same per-qubit phase bookkeeping as
  // Tableau::rowsum (phaseG), expressed on bitmask rows.
  const auto multiplyInto = [n](Row& h, const Row& g) {
    int phase = h.phase + g.phase;
    for (int p = 0; p < n; ++p) {
      const int x1 = static_cast<int>((g.x >> p) & 1);
      const int z1 = static_cast<int>((g.z >> p) & 1);
      const int x2 = static_cast<int>((h.x >> p) & 1);
      const int z2 = static_cast<int>((h.z >> p) & 1);
      if (x1 == 0 && z1 == 0) continue;
      if (x1 == 1 && z1 == 1) phase += z2 - x2;        // Y * P
      else if (x1 == 1) phase += z2 * (2 * x2 - 1);    // X * P
      else phase += x2 * (1 - 2 * z2);                 // Z * P
    }
    h.x ^= g.x;
    h.z ^= g.z;
    h.phase = ((phase % 4) + 4) % 4;
  };

  // Reduced row echelon over the X-block: rows[0..rank) carry X on
  // distinct pivot columns, rows[rank..n) are Z-only.
  int rank = 0;
  for (int q = 0; q < n && rank < n; ++q) {
    const index_t bit = index_t{1} << util::bitPosition(q, n);
    int pivot = -1;
    for (int k = rank; k < n; ++k) {
      if (rows[static_cast<std::size_t>(k)].x & bit) {
        pivot = k;
        break;
      }
    }
    if (pivot < 0) continue;
    std::swap(rows[static_cast<std::size_t>(rank)],
              rows[static_cast<std::size_t>(pivot)]);
    for (int k = 0; k < n; ++k) {
      if (k != rank && (rows[static_cast<std::size_t>(k)].x & bit)) {
        multiplyInto(rows[static_cast<std::size_t>(k)],
                     rows[static_cast<std::size_t>(rank)]);
      }
    }
    ++rank;
  }

  // Solve the Z-only sign constraints parity(v & z) == sign for one
  // support basis state `base` (free variables zero).
  std::vector<std::pair<index_t, int>> constraints;
  constraints.reserve(static_cast<std::size_t>(n - rank));
  for (int k = rank; k < n; ++k) {
    const Row& row = rows[static_cast<std::size_t>(k)];
    util::require(row.phase == 0 || row.phase == 2,
                  "stabilizer sign is not real (internal inconsistency)");
    constraints.emplace_back(row.z, row.phase == 2 ? 1 : 0);
  }
  std::vector<std::pair<std::size_t, index_t>> pivots;  // (row, bit)
  std::size_t firstOpen = 0;
  for (int p = 0; p < n && firstOpen < constraints.size(); ++p) {
    const index_t bit = index_t{1} << p;
    std::size_t found = constraints.size();
    for (std::size_t k = firstOpen; k < constraints.size(); ++k) {
      if (constraints[k].first & bit) {
        found = k;
        break;
      }
    }
    if (found == constraints.size()) continue;
    std::swap(constraints[firstOpen], constraints[found]);
    for (std::size_t k = 0; k < constraints.size(); ++k) {
      if (k != firstOpen && (constraints[k].first & bit)) {
        constraints[k].first ^= constraints[firstOpen].first;
        constraints[k].second ^= constraints[firstOpen].second;
      }
    }
    pivots.emplace_back(firstOpen, bit);
    ++firstOpen;
  }
  index_t base = 0;
  for (const auto& [row, bit] : pivots) {
    if (constraints[row].second) base |= bit;
  }

  // Anchor magnitude: rank successive 1/sqrt(2) factors.
  T magnitude = T(1);
  const T invSqrt2 = T(1) / std::sqrt(T(2));
  for (int k = 0; k < rank; ++k) magnitude *= invSqrt2;

  std::vector<std::complex<T>> state(index_t{1} << n, std::complex<T>(0));
  const auto amplitude = [magnitude](int phase) {
    switch (phase & 3) {
      case 0: return std::complex<T>(magnitude, T(0));
      case 1: return std::complex<T>(T(0), magnitude);
      case 2: return std::complex<T>(-magnitude, T(0));
      default: return std::complex<T>(T(0), -magnitude);
    }
  };
  // i-exponent of applying generator g to |v>:  i^{g.phase} * i^{#Y} *
  // (-1)^{popcount(v & z)}  (X flips bits, handled by the caller).
  const auto generatorPhase = [](const Row& g, index_t v) {
    const int yCount = std::popcount(g.x & g.z);
    const int zParity = static_cast<int>(std::popcount(v & g.z) & 1);
    return (g.phase + yCount + 2 * zParity) & 3;
  };
  // Enumerate the 2^rank support states: the X-parts of rows[0..rank) are
  // linearly independent, so each subset reaches a distinct basis state.
  const auto emit = [&](auto&& self, int k, index_t v, int phase) -> void {
    if (k == rank) {
      state[v] = amplitude(phase);
      return;
    }
    const Row& g = rows[static_cast<std::size_t>(k)];
    self(self, k + 1, v, phase);
    self(self, k + 1, v ^ g.x, (phase + generatorPhase(g, v)) & 3);
  };
  emit(emit, 0, base, 0);
  return state;
}

// ---- the router ----------------------------------------------------------

/// Executes routed QCircuit::simulate calls.  Granted friendship by
/// QCircuit for the suffix hand-off (applyObject / flushFusedRun).
template <typename T>
class DispatchRunner {
 public:
  /// Entry point of the bits-overload of QCircuit::simulate when the
  /// resolved dispatch mode is kAuto or kStabilizer.
  static Simulation<T> simulate(const QCircuit<T>& circuit,
                                const std::string& bits,
                                const SimulateOptions& options,
                                const Backend<T>& backend,
                                DispatchMode mode) {
    util::require(static_cast<int>(bits.size()) == circuit.nbQubits(),
                  "initial bitstring length must equal nbQubits");
    CircuitAnalysis<T> analysis;
    {
      const obs::ScopedSpan span("dispatch/analyze", "stage");
      analysis = analyzeCircuit(circuit);
    }
    if (mode == DispatchMode::kAuto &&
        analysis.cliffordPrefixOps <
            static_cast<std::size_t>(
                options.dispatchOptions.minCliffordPrefixOps)) {
      // Prefix too short to amortize a tableau: plain statevector run.
      obs::metrics().countDispatchRoute(DispatchRoute::kStatevector);
      return statevectorRun(circuit, bits, options, backend);
    }
    try {
      return tableauRun(circuit, bits, options, backend, analysis);
    } catch (const UnsupportedGateError&) {
      // The analyzer probes the executor's own code path, so this only
      // fires if the two ever drift — the typed error is the contract
      // that dispatch never fails where the statevector path would not.
      obs::metrics().countDispatchFallback();
      obs::metrics().countDispatchRoute(DispatchRoute::kStatevector);
      return statevectorRun(circuit, bits, options, backend);
    }
  }

 private:
  /// One tableau-side branch, mirroring sim Branch minus the state.
  struct TableauBranch {
    stabilizer::Tableau tableau;
    double probability = 1.0;
    std::string result;
    std::vector<std::pair<int, int>> measurements;
  };

  static Simulation<T> statevectorRun(const QCircuit<T>& circuit,
                                      const std::string& bits,
                                      const SimulateOptions& options,
                                      const Backend<T>& backend) {
    std::vector<std::complex<T>> state;
    {
      const obs::ScopedSpan span("state/alloc", "stage");
      state = basisState<T>(bits);
    }
    // The state overload never re-routes, so a QCLAB_DISPATCH override
    // cannot recurse back into the dispatcher.
    return circuit.simulate(std::move(state), options, backend);
  }

  static Simulation<T> tableauRun(const QCircuit<T>& circuit,
                                  const std::string& bits,
                                  const SimulateOptions& options,
                                  const Backend<T>& backend,
                                  const CircuitAnalysis<T>& analysis) {
    const int n = circuit.nbQubits();
    obs::metrics().countCircuitSimulation();
    const obs::ScopedSpan span("simulate(n=" + std::to_string(n) + ")",
                               "circuit", "simulate");
    const obs::PathTimer timer(KernelPath::kDispatch);
    const obs::ScopedSpan executeSpan("execute", "stage");
    // Tableau gates touch ~3 byte-columns across all 2n+1 rows.
    const std::uint64_t gateBytes =
        static_cast<std::uint64_t>(2 * n + 1) * 3;

    std::vector<TableauBranch> branches;
    branches.push_back({stabilizer::Tableau(n), 1.0, {}, {}});
    for (int q = 0; q < n; ++q) {
      if (bits[static_cast<std::size_t>(q)] == '1') {
        branches.front().tableau.x(q);
      }
    }

    // ---- Clifford prefix on the tableau, forking at 50/50 outcomes ----
    for (std::size_t index = 0; index < analysis.cliffordPrefixOps;
         ++index) {
      const FlatOp<T>& op = analysis.ops[index];
      switch (op.object->objectType()) {
        case ObjectType::kGate: {
          const auto& gate = static_cast<const qgates::QGate<T>&>(*op.object);
          for (auto& branch : branches) {
            stabilizer::detail::applyGate(branch.tableau, gate, op.offset);
            obs::metrics().countGate(KernelPath::kStabilizer, nullptr,
                                     gateBytes);
          }
          break;
        }
        case ObjectType::kMeasurement: {
          const auto& measurement =
              static_cast<const Measurement<T>&>(*op.object);
          const int qubit = measurement.qubit() + op.offset;
          util::checkQubit(qubit, n);
          std::vector<TableauBranch> next;
          next.reserve(branches.size());
          for (auto& branch : branches) {
            stabilizer::detail::applyMeasurementBasisChange(
                branch.tableau, measurement, qubit, false);
            if (branch.tableau.isDeterministic(qubit)) {
              // One outcome is impossible — the statevector path prunes.
              obs::metrics().countBranchPrune();
              const int outcome = branch.tableau.measureForced(qubit, 0);
              stabilizer::detail::applyMeasurementBasisChange(
                  branch.tableau, measurement, qubit, true);
              branch.result += static_cast<char>('0' + outcome);
              branch.measurements.emplace_back(qubit, outcome);
              next.push_back(std::move(branch));
            } else {
              // Exactly 50/50: fork, outcome 0 first (statevector order).
              obs::metrics().countBranchSpawn();
              TableauBranch zero = branch;
              zero.tableau.measureForced(qubit, 0);
              stabilizer::detail::applyMeasurementBasisChange(
                  zero.tableau, measurement, qubit, true);
              zero.probability *= 0.5;
              zero.result += '0';
              zero.measurements.emplace_back(qubit, 0);
              next.push_back(std::move(zero));
              TableauBranch one = std::move(branch);
              one.tableau.measureForced(qubit, 1);
              stabilizer::detail::applyMeasurementBasisChange(
                  one.tableau, measurement, qubit, true);
              one.probability *= 0.5;
              one.result += '1';
              one.measurements.emplace_back(qubit, 1);
              next.push_back(std::move(one));
            }
          }
          branches = std::move(next);
          break;
        }
        case ObjectType::kReset: {
          const int qubit =
              static_cast<const Reset<T>&>(*op.object).qubit() + op.offset;
          util::checkQubit(qubit, n);
          std::vector<TableauBranch> next;
          next.reserve(branches.size());
          for (auto& branch : branches) {
            if (branch.tableau.isDeterministic(qubit)) {
              obs::metrics().countBranchPrune();
              if (branch.tableau.measureForced(qubit, 0) == 1) {
                branch.tableau.x(qubit);
              }
              next.push_back(std::move(branch));
            } else {
              // Resets fork like measurements but record no outcome.
              obs::metrics().countBranchSpawn();
              TableauBranch zero = branch;
              zero.tableau.measureForced(qubit, 0);
              zero.probability *= 0.5;
              next.push_back(std::move(zero));
              TableauBranch one = std::move(branch);
              one.tableau.measureForced(qubit, 1);
              one.tableau.x(qubit);
              one.probability *= 0.5;
              next.push_back(std::move(one));
            }
          }
          branches = std::move(next);
          break;
        }
        case ObjectType::kBarrier:
          break;
        case ObjectType::kCircuit:
          break;  // flattened away by the analyzer
      }
    }

    // ---- conversion point: expand every branch tableau ----------------
    std::vector<Branch<T>> converted;
    {
      const obs::ScopedSpan convertSpan("dispatch/convert", "stage");
      converted.reserve(branches.size());
      for (auto& branch : branches) {
        Branch<T> out;
        out.state = tableauToStatevector<T>(branch.tableau);
        out.probability = branch.probability;
        out.result = std::move(branch.result);
        out.measurements = std::move(branch.measurements);
        obs::metrics().countDispatchConversion();
        converted.push_back(std::move(out));
      }
    }
    Simulation<T> simulation(n, {});
    simulation.branches() = std::move(converted);
    simulation.retrackStateBytes();

    // ---- non-Clifford suffix on the statevector pipeline --------------
    const bool hasSuffix = analysis.cliffordPrefixOps < analysis.ops.size();
    if (hasSuffix) {
      std::vector<GateRef<T>> run;
      for (std::size_t index = analysis.cliffordPrefixOps;
           index < analysis.ops.size(); ++index) {
        const FlatOp<T>& op = analysis.ops[index];
        if (options.fusion) {
          switch (op.object->objectType()) {
            case ObjectType::kGate:
              run.push_back(
                  {static_cast<const qgates::QGate<T>*>(op.object),
                   op.offset});
              break;
            case ObjectType::kBarrier:
              QCircuit<T>::flushFusedRun(simulation, options.fusionOptions,
                                         run);
              break;
            default:
              QCircuit<T>::flushFusedRun(simulation, options.fusionOptions,
                                         run);
              QCircuit<T>::applyObject(simulation, *op.object, op.offset,
                                       backend);
              break;
          }
        } else {
          QCircuit<T>::applyObject(simulation, *op.object, op.offset,
                                   backend);
        }
      }
      if (options.fusion) {
        QCircuit<T>::flushFusedRun(simulation, options.fusionOptions, run);
      }
    }
    obs::metrics().countDispatchRoute(hasSuffix ? DispatchRoute::kHybrid
                                                : DispatchRoute::kStabilizer);

    if (obs::sentinel().shouldCheck()) {
      for (const auto& branch : simulation.branches()) {
        obs::sentinelCheckState(branch.state.data(), branch.state.size(),
                                "simulate");
      }
    }
    obs::sentinel().throwIfPending();
    return simulation;
  }
};

// ---- counts-level sampling at scale --------------------------------------

/// Shots per random::Rng jump stream in dispatchSampleCounts.  Fixed so
/// the chunk -> stream mapping (and thus the histogram) is independent of
/// the OMP thread count.
inline constexpr std::uint64_t kDispatchShotChunk = 256;

/// Samples `shots` measurement-outcome strings of a fully Clifford
/// circuit on the tableau engine — never materializing amplitudes, so
/// QEC-round workloads scale to hundreds of qubits.  Shot chunks map to
/// random::Rng::jumpStreams(seed, ...) streams and merge in chunk order:
/// the same seed yields the same histogram for every thread count.
/// Throws UnsupportedGateError when the circuit has a non-Clifford gate
/// or a custom-basis measurement.
template <typename T>
std::map<std::string, std::uint64_t> dispatchSampleCounts(
    const QCircuit<T>& circuit, std::uint64_t shots, std::uint64_t seed) {
  CircuitAnalysis<T> analysis;
  {
    const obs::ScopedSpan span("dispatch/analyze", "stage");
    analysis = analyzeCircuit(circuit);
  }
  if (!analysis.fullyClifford) {
    throw UnsupportedGateError(
        "dispatchSampleCounts requires a fully Clifford circuit (use "
        "QCircuit::simulate + Simulation::counts otherwise)");
  }
  const int n = circuit.nbQubits();
  obs::metrics().countDispatchRoute(DispatchRoute::kStabilizer);
  obs::metrics().countShots(shots);
  const obs::ScopedSpan span(
      "dispatch/sample(n=" + std::to_string(n) +
          ",shots=" + std::to_string(shots) + ")",
      "circuit", "dispatch");
  const std::uint64_t gateBytes = static_cast<std::uint64_t>(2 * n + 1) * 3;

  const std::size_t nbChunks = static_cast<std::size_t>(
      (shots + kDispatchShotChunk - 1) / kDispatchShotChunk);
  std::vector<random::Rng> streams =
      random::Rng::jumpStreams(seed, nbChunks);
  std::vector<std::map<std::string, std::uint64_t>> partial(nbChunks);

  const auto runShot = [&](random::Rng& rng) {
    stabilizer::Tableau tableau(n);
    std::string outcomes;
    for (const FlatOp<T>& op : analysis.ops) {
      switch (op.object->objectType()) {
        case ObjectType::kGate: {
          stabilizer::detail::applyGate(
              tableau, static_cast<const qgates::QGate<T>&>(*op.object),
              op.offset);
          obs::metrics().countGate(KernelPath::kStabilizer, nullptr,
                                   gateBytes);
          break;
        }
        case ObjectType::kMeasurement: {
          const auto& measurement =
              static_cast<const Measurement<T>&>(*op.object);
          const int qubit = measurement.qubit() + op.offset;
          stabilizer::detail::applyMeasurementBasisChange(
              tableau, measurement, qubit, false);
          const int outcome = tableau.measure(qubit, rng);
          stabilizer::detail::applyMeasurementBasisChange(
              tableau, measurement, qubit, true);
          outcomes += static_cast<char>('0' + outcome);
          break;
        }
        case ObjectType::kReset:
          tableau.reset(
              static_cast<const Reset<T>&>(*op.object).qubit() + op.offset,
              rng);
          break;
        default:
          break;
      }
    }
    return outcomes;
  };

  const std::int64_t count = static_cast<std::int64_t>(nbChunks);
#ifdef QCLAB_HAS_OPENMP
  // Release/acquire edge mirroring the implicit end-of-region barrier for
  // TSan, which cannot see into libgomp (same pattern as the batch and
  // trajectory engines).
  std::atomic<int> workersDone{0};
#pragma omp parallel if (count > 1 && !omp_in_parallel())
#endif
  {
#ifdef QCLAB_HAS_OPENMP
#pragma omp for schedule(dynamic)
#endif
    for (std::int64_t c = 0; c < count; ++c) {
      const std::size_t chunk = static_cast<std::size_t>(c);
      random::Rng& rng = streams[chunk];
      const std::uint64_t begin = chunk * kDispatchShotChunk;
      const std::uint64_t end =
          begin + kDispatchShotChunk < shots ? begin + kDispatchShotChunk
                                             : shots;
      auto& histogram = partial[chunk];
      for (std::uint64_t shot = begin; shot < end; ++shot) {
        ++histogram[runShot(rng)];
      }
    }
#ifdef QCLAB_HAS_OPENMP
    workersDone.fetch_add(1, std::memory_order_release);
#endif
  }
#ifdef QCLAB_HAS_OPENMP
  (void)workersDone.load(std::memory_order_acquire);
#endif

  std::map<std::string, std::uint64_t> histogram;
  for (const auto& chunk : partial) {
    for (const auto& [outcomes, hits] : chunk) {
      histogram[outcomes] += hits;
    }
  }
  return histogram;
}

}  // namespace qclab::sim

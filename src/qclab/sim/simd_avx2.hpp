#pragma once

/// \file simd_avx2.hpp
/// \brief AVX2 + FMA gate kernels over unit-stride amplitude runs.
///
/// Every routine here operates on *contiguous* runs of amplitudes: the
/// run structure of the pair update (i, i + 2^pos) means that for any
/// target bit position the |0> and |1> halves of each 2^{pos+1}-aligned
/// group are themselves unit-stride arrays of 2^pos amplitudes, so the
/// kernels take one pointer per matrix column and stream them with plain
/// 256-bit loads — no gather instructions.
///
/// Complex arithmetic uses the interleaved-lane FMA pattern: for an
/// amplitude vector a = [re0, im0, re1, im1, ...] and a gate coefficient
/// c, the product c*a is fmaddsub(a, re(c), swap(a) * im(c)) where swap
/// exchanges the re/im lanes — one shuffle, one multiply, one FMA per
/// complex multiply, with a single rounding on the fused lanes.
///
/// All functions carry __attribute__((target("avx2,fma"))), so this
/// header compiles without -mavx2/-mfma on the command line and the
/// resulting code is only reached through the runtime cpuid dispatch in
/// simd.hpp (detectedSimdLevel).  The surrounding translation unit never
/// executes an AVX2 instruction on hardware that lacks it.

#include <complex>
#include <cstdint>
#include <immintrin.h>

#define QCLAB_AVX2_TARGET __attribute__((target("avx2,fma")))

namespace qclab::sim::avx2 {

// ---- double: 2 complex amplitudes per __m256d -------------------------

/// Lanes swapped within each complex slot: [im0, re0, im1, re1].
QCLAB_AVX2_TARGET inline __m256d swapLanes(__m256d x) noexcept {
  return _mm256_permute_pd(x, 0x5);
}

/// c * a for every complex lane of `a`, with c split into broadcast
/// re/im registers (cr = set1(re c), ci = set1(im c)).
QCLAB_AVX2_TARGET inline __m256d cmul(__m256d a, __m256d cr,
                                      __m256d ci) noexcept {
  return _mm256_fmaddsub_pd(a, cr, _mm256_mul_pd(swapLanes(a), ci));
}

/// In-place 2x2 dense update of the unit-stride runs a0 / a1 (`count`
/// complex amplitudes each): (a0, a1) <- (u00 a0 + u01 a1, u10 a0 + u11 a1).
QCLAB_AVX2_TARGET inline void apply1Runs(std::complex<double>* a0,
                                         std::complex<double>* a1,
                                         std::int64_t count,
                                         const std::complex<double> u[4]) {
  const __m256d u00r = _mm256_set1_pd(u[0].real());
  const __m256d u00i = _mm256_set1_pd(u[0].imag());
  const __m256d u01r = _mm256_set1_pd(u[1].real());
  const __m256d u01i = _mm256_set1_pd(u[1].imag());
  const __m256d u10r = _mm256_set1_pd(u[2].real());
  const __m256d u10i = _mm256_set1_pd(u[2].imag());
  const __m256d u11r = _mm256_set1_pd(u[3].real());
  const __m256d u11i = _mm256_set1_pd(u[3].imag());
  double* p0 = reinterpret_cast<double*>(a0);
  double* p1 = reinterpret_cast<double*>(a1);
  const std::int64_t vec = (count / 2) * 2;
  for (std::int64_t j = 0; j < vec; j += 2) {
    const __m256d v0 = _mm256_loadu_pd(p0 + 2 * j);
    const __m256d v1 = _mm256_loadu_pd(p1 + 2 * j);
    const __m256d r0 = _mm256_add_pd(cmul(v0, u00r, u00i),
                                     cmul(v1, u01r, u01i));
    const __m256d r1 = _mm256_add_pd(cmul(v0, u10r, u10i),
                                     cmul(v1, u11r, u11i));
    _mm256_storeu_pd(p0 + 2 * j, r0);
    _mm256_storeu_pd(p1 + 2 * j, r1);
  }
  for (std::int64_t j = vec; j < count; ++j) {
    const std::complex<double> x0 = a0[j];
    const std::complex<double> x1 = a1[j];
    a0[j] = std::complex<double>(
        u[0].real() * x0.real() - u[0].imag() * x0.imag() +
            u[1].real() * x1.real() - u[1].imag() * x1.imag(),
        u[0].real() * x0.imag() + u[0].imag() * x0.real() +
            u[1].real() * x1.imag() + u[1].imag() * x1.real());
    a1[j] = std::complex<double>(
        u[2].real() * x0.real() - u[2].imag() * x0.imag() +
            u[3].real() * x1.real() - u[3].imag() * x1.imag(),
        u[2].real() * x0.imag() + u[2].imag() * x0.real() +
            u[3].real() * x1.imag() + u[3].imag() * x1.real());
  }
}

/// In-place scale of a unit-stride run by the complex constant d.
QCLAB_AVX2_TARGET inline void scaleRun(std::complex<double>* a,
                                       std::int64_t count,
                                       std::complex<double> d) {
  const __m256d dr = _mm256_set1_pd(d.real());
  const __m256d di = _mm256_set1_pd(d.imag());
  double* p = reinterpret_cast<double*>(a);
  const std::int64_t vec = (count / 2) * 2;
  for (std::int64_t j = 0; j < vec; j += 2) {
    _mm256_storeu_pd(p + 2 * j, cmul(_mm256_loadu_pd(p + 2 * j), dr, di));
  }
  for (std::int64_t j = vec; j < count; ++j) {
    const std::complex<double> x = a[j];
    a[j] = std::complex<double>(d.real() * x.real() - d.imag() * x.imag(),
                                d.real() * x.imag() + d.imag() * x.real());
  }
}

/// In-place 4x4 dense update of the four unit-stride runs a[0..3]
/// (`count` complex amplitudes each, MSB-first row order):
/// a[r] <- sum_c u[4r + c] a[c].
QCLAB_AVX2_TARGET inline void apply2Runs(std::complex<double>* const a[4],
                                         std::int64_t count,
                                         const std::complex<double> u[16]) {
  __m256d cr[16], ci[16];
  for (int e = 0; e < 16; ++e) {
    cr[e] = _mm256_set1_pd(u[e].real());
    ci[e] = _mm256_set1_pd(u[e].imag());
  }
  const std::int64_t vec = (count / 2) * 2;
  for (std::int64_t j = 0; j < vec; j += 2) {
    __m256d in[4];
    for (int c = 0; c < 4; ++c) {
      in[c] = _mm256_loadu_pd(reinterpret_cast<double*>(a[c] + j));
    }
    for (int r = 0; r < 4; ++r) {
      __m256d acc = cmul(in[0], cr[4 * r], ci[4 * r]);
      for (int c = 1; c < 4; ++c) {
        acc = _mm256_add_pd(acc, cmul(in[c], cr[4 * r + c], ci[4 * r + c]));
      }
      _mm256_storeu_pd(reinterpret_cast<double*>(a[r] + j), acc);
    }
  }
  for (std::int64_t j = vec; j < count; ++j) {
    std::complex<double> in[4] = {a[0][j], a[1][j], a[2][j], a[3][j]};
    for (int r = 0; r < 4; ++r) {
      double re = 0, im = 0;
      for (int c = 0; c < 4; ++c) {
        re += u[4 * r + c].real() * in[c].real() -
              u[4 * r + c].imag() * in[c].imag();
        im += u[4 * r + c].real() * in[c].imag() +
              u[4 * r + c].imag() * in[c].real();
      }
      a[r][j] = std::complex<double>(re, im);
    }
  }
}

// ---- float: 4 complex amplitudes per __m256 ---------------------------

QCLAB_AVX2_TARGET inline __m256 swapLanes(__m256 x) noexcept {
  return _mm256_permute_ps(x, 0xB1);
}

QCLAB_AVX2_TARGET inline __m256 cmul(__m256 a, __m256 cr, __m256 ci) noexcept {
  return _mm256_fmaddsub_ps(a, cr, _mm256_mul_ps(swapLanes(a), ci));
}

QCLAB_AVX2_TARGET inline void apply1Runs(std::complex<float>* a0,
                                         std::complex<float>* a1,
                                         std::int64_t count,
                                         const std::complex<float> u[4]) {
  const __m256 u00r = _mm256_set1_ps(u[0].real());
  const __m256 u00i = _mm256_set1_ps(u[0].imag());
  const __m256 u01r = _mm256_set1_ps(u[1].real());
  const __m256 u01i = _mm256_set1_ps(u[1].imag());
  const __m256 u10r = _mm256_set1_ps(u[2].real());
  const __m256 u10i = _mm256_set1_ps(u[2].imag());
  const __m256 u11r = _mm256_set1_ps(u[3].real());
  const __m256 u11i = _mm256_set1_ps(u[3].imag());
  float* p0 = reinterpret_cast<float*>(a0);
  float* p1 = reinterpret_cast<float*>(a1);
  const std::int64_t vec = (count / 4) * 4;
  for (std::int64_t j = 0; j < vec; j += 4) {
    const __m256 v0 = _mm256_loadu_ps(p0 + 2 * j);
    const __m256 v1 = _mm256_loadu_ps(p1 + 2 * j);
    const __m256 r0 = _mm256_add_ps(cmul(v0, u00r, u00i),
                                    cmul(v1, u01r, u01i));
    const __m256 r1 = _mm256_add_ps(cmul(v0, u10r, u10i),
                                    cmul(v1, u11r, u11i));
    _mm256_storeu_ps(p0 + 2 * j, r0);
    _mm256_storeu_ps(p1 + 2 * j, r1);
  }
  for (std::int64_t j = vec; j < count; ++j) {
    const std::complex<float> x0 = a0[j];
    const std::complex<float> x1 = a1[j];
    a0[j] = std::complex<float>(
        u[0].real() * x0.real() - u[0].imag() * x0.imag() +
            u[1].real() * x1.real() - u[1].imag() * x1.imag(),
        u[0].real() * x0.imag() + u[0].imag() * x0.real() +
            u[1].real() * x1.imag() + u[1].imag() * x1.real());
    a1[j] = std::complex<float>(
        u[2].real() * x0.real() - u[2].imag() * x0.imag() +
            u[3].real() * x1.real() - u[3].imag() * x1.imag(),
        u[2].real() * x0.imag() + u[2].imag() * x0.real() +
            u[3].real() * x1.imag() + u[3].imag() * x1.real());
  }
}

QCLAB_AVX2_TARGET inline void scaleRun(std::complex<float>* a,
                                       std::int64_t count,
                                       std::complex<float> d) {
  const __m256 dr = _mm256_set1_ps(d.real());
  const __m256 di = _mm256_set1_ps(d.imag());
  float* p = reinterpret_cast<float*>(a);
  const std::int64_t vec = (count / 4) * 4;
  for (std::int64_t j = 0; j < vec; j += 4) {
    _mm256_storeu_ps(p + 2 * j, cmul(_mm256_loadu_ps(p + 2 * j), dr, di));
  }
  for (std::int64_t j = vec; j < count; ++j) {
    const std::complex<float> x = a[j];
    a[j] = std::complex<float>(d.real() * x.real() - d.imag() * x.imag(),
                               d.real() * x.imag() + d.imag() * x.real());
  }
}

QCLAB_AVX2_TARGET inline void apply2Runs(std::complex<float>* const a[4],
                                         std::int64_t count,
                                         const std::complex<float> u[16]) {
  __m256 cr[16], ci[16];
  for (int e = 0; e < 16; ++e) {
    cr[e] = _mm256_set1_ps(u[e].real());
    ci[e] = _mm256_set1_ps(u[e].imag());
  }
  const std::int64_t vec = (count / 4) * 4;
  for (std::int64_t j = 0; j < vec; j += 4) {
    __m256 in[4];
    for (int c = 0; c < 4; ++c) {
      in[c] = _mm256_loadu_ps(reinterpret_cast<float*>(a[c] + j));
    }
    for (int r = 0; r < 4; ++r) {
      __m256 acc = cmul(in[0], cr[4 * r], ci[4 * r]);
      for (int c = 1; c < 4; ++c) {
        acc = _mm256_add_ps(acc, cmul(in[c], cr[4 * r + c], ci[4 * r + c]));
      }
      _mm256_storeu_ps(reinterpret_cast<float*>(a[r] + j), acc);
    }
  }
  for (std::int64_t j = vec; j < count; ++j) {
    std::complex<float> in[4] = {a[0][j], a[1][j], a[2][j], a[3][j]};
    for (int r = 0; r < 4; ++r) {
      float re = 0, im = 0;
      for (int c = 0; c < 4; ++c) {
        re += u[4 * r + c].real() * in[c].real() -
              u[4 * r + c].imag() * in[c].imag();
        im += u[4 * r + c].real() * in[c].imag() +
              u[4 * r + c].imag() * in[c].real();
      }
      a[r][j] = std::complex<float>(re, im);
    }
  }
}

}  // namespace qclab::sim::avx2

#undef QCLAB_AVX2_TARGET

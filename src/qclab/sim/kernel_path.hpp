#pragma once

/// \file kernel_path.hpp
/// \brief The closed set of gate-application strategies a backend can
/// dispatch to.
///
/// Kept in its own dependency-free header so that both the simulation
/// backends (which dispatch on it) and the observability layer (which
/// counts by it) can name the paths without pulling in each other.

namespace qclab::sim {

/// Which specialized routine a backend uses for a given gate.
enum class KernelPath : int {
  kSwap = 0,             ///< SWAP: pure index permutation
  kControlled1,          ///< controlled gate, single target: active subspace only
  kDiagonal1,            ///< uncontrolled single-qubit diagonal: one multiply/amp
  kDense1,               ///< uncontrolled single-qubit dense 2x2 apply
  kDiagonalK,            ///< multi-qubit diagonal (RZZ, ...): one multiply/amp
  kDenseK,               ///< general k-qubit dense apply
  kSparseKron,           ///< sparse extended unitary I (x) U (x) I times state
  kControlledDiagonal1,  ///< controlled diagonal target (CZ, CPhase, CRZ):
                         ///< one multiply per active-subspace amplitude
  kFusedDenseK,          ///< fusion engine: dense block of merged gates
  kFusedDiagonalK,       ///< fusion engine: diagonal-only block of merged gates
  kTrajectory,           ///< noise engine: one full Monte Carlo trajectory
  kSimdDense1,           ///< SIMD tier: vectorized single-qubit dense apply
  kSimdDiagonal1,        ///< SIMD tier: vectorized single-qubit diagonal
  kSimdDenseK,           ///< SIMD tier: vectorized two-qubit dense apply
  kBlocked,              ///< cache-blocked executor: one streamed sweep
                         ///< applying a whole low-qubit gate run per chunk
  kBatch,                ///< batched engine: one parameter-rebound member
                         ///< executed against a shared circuit-shape plan
  kStabilizer,           ///< CHP tableau engine: one O(n^2) Clifford
                         ///< gate / measurement on the binary tableau
  kDispatch,             ///< adaptive router: one routed circuit execution
                         ///< (stabilizer prefix, conversion, or fallback)
};

/// Number of enumerators in KernelPath (for counter arrays).
inline constexpr int kKernelPathCount = 18;

/// Stable short name of a kernel path (used in reports and traces).
inline const char* kernelPathName(KernelPath path) noexcept {
  switch (path) {
    case KernelPath::kSwap:                return "swap";
    case KernelPath::kControlled1:         return "controlled1";
    case KernelPath::kDiagonal1:           return "diagonal1";
    case KernelPath::kDense1:              return "dense1";
    case KernelPath::kDiagonalK:           return "diagonal-k";
    case KernelPath::kDenseK:              return "dense-k";
    case KernelPath::kSparseKron:          return "sparse-kron";
    case KernelPath::kControlledDiagonal1: return "controlled-diagonal1";
    case KernelPath::kFusedDenseK:         return "fused-k";
    case KernelPath::kFusedDiagonalK:      return "fused-diagonal-k";
    case KernelPath::kTrajectory:          return "trajectory";
    case KernelPath::kSimdDense1:          return "simd-dense1";
    case KernelPath::kSimdDiagonal1:       return "simd-diagonal1";
    case KernelPath::kSimdDenseK:          return "simd-dense-k";
    case KernelPath::kBlocked:             return "blocked";
    case KernelPath::kBatch:               return "batch";
    case KernelPath::kStabilizer:          return "stabilizer";
    case KernelPath::kDispatch:            return "dispatch";
  }
  return "unknown";
}

}  // namespace qclab::sim

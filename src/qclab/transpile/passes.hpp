#pragma once

/// \file passes.hpp
/// \brief Circuit optimization passes.
///
/// QCLAB is the foundation of quantum compilers (F3C, FABLE — paper §1);
/// this module provides the core local-rewrite passes such compilers rely
/// on: flattening, trivial-gate removal, inverse-pair cancellation,
/// numerically stable rotation fusion (via QRotation's angle-sum
/// composition), and merging runs of single-qubit gates into one unitary.
/// All passes preserve the circuit unitary exactly (up to rounding); none
/// reorders gates across objects they do not commute with structurally
/// (only literally adjacent gates on identical qubit sets are touched).

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>

#include "qclab/qcircuit.hpp"

namespace qclab::transpile {

/// Inlines nested sub-circuits (applying their offsets) so the result is a
/// flat sequence of elementary objects.
template <typename T>
QCircuit<T> flatten(const QCircuit<T>& circuit) {
  QCircuit<T> flat(circuit.nbQubits(), circuit.offset());

  const auto inline_ = [&](auto&& self, const QCircuit<T>& sub,
                           int offset) -> void {
    for (const auto& object : sub) {
      if (object->objectType() == ObjectType::kCircuit) {
        const auto& child = static_cast<const QCircuit<T>&>(*object);
        self(self, child, offset + child.offset());
      } else {
        auto copy = object->clone();
        if (offset != 0) copy->shiftQubits(offset);
        flat.push_back(std::move(copy));
      }
    }
  };
  inline_(inline_, circuit, 0);
  return flat;
}

namespace detail {

/// True if `gate` is a plain unitary gate (not measurement/reset/...).
template <typename T>
const qgates::QGate<T>* asGate(const QObject<T>& object) {
  if (object.objectType() != ObjectType::kGate) return nullptr;
  return static_cast<const qgates::QGate<T>*>(&object);
}

/// True if the two qubit lists are identical.
inline bool sameQubits(const std::vector<int>& a, const std::vector<int>& b) {
  return a == b;
}

/// True if the product b * a is the identity within tol (max norm).
template <typename T>
bool isInversePair(const qgates::QGate<T>& a, const qgates::QGate<T>& b,
                   T tol) {
  if (!sameQubits(a.qubits(), b.qubits())) return false;
  const auto product = b.matrix() * a.matrix();
  return product.approxEqual(dense::Matrix<T>::identity(product.rows()), tol);
}

/// True if the gate is the identity within tol.
template <typename T>
bool isTrivial(const qgates::QGate<T>& gate, T tol) {
  const auto m = gate.matrix();
  return m.approxEqual(dense::Matrix<T>::identity(m.rows()), tol);
}

/// Attempts to fuse two adjacent rotations of the same kind on the same
/// qubits; returns the fused gate or nullptr.
template <typename T>
std::unique_ptr<qgates::QGate<T>> tryFuse(const qgates::QGate<T>& first,
                                          const qgates::QGate<T>& second) {
  using namespace qclab::qgates;

  // Same-axis single-qubit rotations.
  const auto fuse1 = [&]<typename Gate>(const Gate*) -> std::unique_ptr<QGate<T>> {
    const auto* a = dynamic_cast<const Gate*>(&first);
    const auto* b = dynamic_cast<const Gate*>(&second);
    if (a && b && a->qubit() == b->qubit()) {
      return std::make_unique<Gate>(a->qubit(), a->rotation() * b->rotation());
    }
    return nullptr;
  };
  if (auto fused = fuse1(static_cast<const RotationX<T>*>(nullptr))) return fused;
  if (auto fused = fuse1(static_cast<const RotationY<T>*>(nullptr))) return fused;
  if (auto fused = fuse1(static_cast<const RotationZ<T>*>(nullptr))) return fused;

  // Phase gates compose by adding full angles.
  {
    const auto* a = dynamic_cast<const Phase<T>*>(&first);
    const auto* b = dynamic_cast<const Phase<T>*>(&second);
    if (a && b && a->qubit() == b->qubit()) {
      const auto sum = a->angle() + b->angle();
      return std::make_unique<Phase<T>>(a->qubit(), sum.cos(), sum.sin());
    }
  }

  // Controlled phases with identical control/target/state.
  {
    const auto* a = dynamic_cast<const CPhase<T>*>(&first);
    const auto* b = dynamic_cast<const CPhase<T>*>(&second);
    if (a && b && a->control() == b->control() &&
        a->target() == b->target() &&
        a->controlState() == b->controlState()) {
      return std::make_unique<CPhase<T>>(a->control(), a->target(),
                                         a->theta() + b->theta(),
                                         a->controlState());
    }
  }

  // Controlled rotations with identical control/target/state.
  const auto fuseCr = [&]<typename Gate>(const Gate*) -> std::unique_ptr<QGate<T>> {
    const auto* a = dynamic_cast<const Gate*>(&first);
    const auto* b = dynamic_cast<const Gate*>(&second);
    if (a && b && a->control() == b->control() &&
        a->target() == b->target() &&
        a->controlState() == b->controlState()) {
      return std::make_unique<Gate>(a->control(), a->target(),
                                    a->theta() + b->theta(),
                                    a->controlState());
    }
    return nullptr;
  };
  if (auto fused = fuseCr(static_cast<const CRotationX<T>*>(nullptr))) return fused;
  if (auto fused = fuseCr(static_cast<const CRotationY<T>*>(nullptr))) return fused;
  if (auto fused = fuseCr(static_cast<const CRotationZ<T>*>(nullptr))) return fused;

  // Two-qubit axis rotations on the same pair.
  const auto fuse2 = [&]<typename Gate>(const Gate*) -> std::unique_ptr<QGate<T>> {
    const auto* a = dynamic_cast<const Gate*>(&first);
    const auto* b = dynamic_cast<const Gate*>(&second);
    if (a && b && a->qubit0() == b->qubit0() && a->qubit1() == b->qubit1()) {
      return std::make_unique<Gate>(a->qubit0(), a->qubit1(),
                                    a->rotation() * b->rotation());
    }
    return nullptr;
  };
  if (auto fused = fuse2(static_cast<const RotationXX<T>*>(nullptr))) return fused;
  if (auto fused = fuse2(static_cast<const RotationYY<T>*>(nullptr))) return fused;
  if (auto fused = fuse2(static_cast<const RotationZZ<T>*>(nullptr))) return fused;

  return nullptr;
}

/// True if two objects act on overlapping qubit sets.
template <typename T>
bool overlaps(const QObject<T>& a, const QObject<T>& b) {
  const auto qa = a.qubits();
  const auto qb = b.qubits();
  for (int q : qa) {
    if (std::find(qb.begin(), qb.end(), q) != qb.end()) return true;
  }
  return false;
}

}  // namespace detail

/// Removes gates whose matrix is the identity within `tol` (explicit
/// Identity gates, zero-angle rotations and phases).
template <typename T>
QCircuit<T> removeTrivialGates(const QCircuit<T>& circuit,
                               T tol = T(1e3) * std::numeric_limits<T>::epsilon()) {
  const auto flat = flatten(circuit);
  QCircuit<T> out(circuit.nbQubits(), circuit.offset());
  for (const auto& object : flat) {
    if (const auto* gate = detail::asGate<T>(*object)) {
      if (detail::isTrivial(*gate, tol)) continue;
    }
    out.push_back(object->clone());
  }
  return out;
}

/// Cancels adjacent inverse pairs (e.g. H H, CX CX, S Sdg) until no pair is
/// left.  "Adjacent" means no intervening object touches the pair's qubits.
template <typename T>
QCircuit<T> cancelInversePairs(const QCircuit<T>& circuit,
                               T tol = T(1e3) * std::numeric_limits<T>::epsilon()) {
  const auto flat = flatten(circuit);
  std::vector<std::unique_ptr<QObject<T>>> out;
  for (const auto& object : flat) {
    bool cancelled = false;
    if (const auto* gate = detail::asGate<T>(*object)) {
      // Find the last output object overlapping this gate's qubits.
      for (auto it = out.rbegin(); it != out.rend(); ++it) {
        if (!detail::overlaps(**it, *object)) continue;
        if (const auto* previous = detail::asGate<T>(**it)) {
          if (detail::isInversePair(*previous, *gate, tol)) {
            out.erase(std::next(it).base());
            cancelled = true;
          }
        }
        break;
      }
    }
    if (!cancelled) out.push_back(object->clone());
  }
  QCircuit<T> result(circuit.nbQubits(), circuit.offset());
  for (auto& object : out) result.push_back(std::move(object));
  return result;
}

/// Fuses adjacent same-kind rotations via the numerically stable QRotation
/// composition; fused gates that became trivial are dropped.
template <typename T>
QCircuit<T> fuseRotations(const QCircuit<T>& circuit,
                          T tol = T(1e3) * std::numeric_limits<T>::epsilon()) {
  const auto flat = flatten(circuit);
  std::vector<std::unique_ptr<QObject<T>>> out;
  for (const auto& object : flat) {
    bool fused = false;
    if (const auto* gate = detail::asGate<T>(*object)) {
      for (auto it = out.rbegin(); it != out.rend(); ++it) {
        if (!detail::overlaps(**it, *object)) continue;
        if (const auto* previous = detail::asGate<T>(**it)) {
          if (auto merged = detail::tryFuse(*previous, *gate)) {
            if (detail::isTrivial(*merged, tol)) {
              out.erase(std::next(it).base());
            } else {
              *it = std::move(merged);
            }
            fused = true;
          }
        }
        break;
      }
    }
    if (!fused) out.push_back(object->clone());
  }
  QCircuit<T> result(circuit.nbQubits(), circuit.offset());
  for (auto& object : out) result.push_back(std::move(object));
  return result;
}

/// Merges maximal runs of uncontrolled single-qubit gates on one qubit into
/// a single MatrixGate1 (runs of length 1 are kept as-is; runs that
/// multiply to the identity are dropped).
template <typename T>
QCircuit<T> mergeSingleQubitGates(const QCircuit<T>& circuit,
                                  T tol = T(1e3) * std::numeric_limits<T>::epsilon()) {
  const auto flat = flatten(circuit);
  QCircuit<T> out(circuit.nbQubits(), circuit.offset());

  struct Run {
    dense::Matrix<T> product;
    std::size_t length = 0;
    std::unique_ptr<QObject<T>> single;  // kept when length == 1
  };
  std::vector<std::optional<Run>> runs(
      static_cast<std::size_t>(circuit.nbQubits()));

  auto flushRun = [&](int qubit) {
    auto& run = runs[static_cast<std::size_t>(qubit)];
    if (!run) return;
    if (run->length == 1) {
      out.push_back(std::move(run->single));
    } else if (!run->product.approxEqual(
                   dense::Matrix<T>::identity(2), tol)) {
      out.push_back(
          std::make_unique<qgates::MatrixGate1<T>>(qubit, run->product));
    }
    run.reset();
  };

  for (const auto& object : flat) {
    const auto* gate = detail::asGate<T>(*object);
    const bool single1 =
        gate != nullptr && gate->nbQubits() == 1 && gate->controls().empty();
    if (single1) {
      const int qubit = gate->qubits()[0];
      auto& run = runs[static_cast<std::size_t>(qubit)];
      if (!run) {
        run.emplace();
        run->product = gate->matrix();
        run->length = 1;
        run->single = object->clone();
      } else {
        run->product = gate->matrix() * run->product;
        run->length += 1;
        run->single.reset();
      }
    } else {
      for (int q : object->qubits()) {
        if (q < circuit.nbQubits()) flushRun(q);
      }
      out.push_back(object->clone());
    }
  }
  for (int q = 0; q < circuit.nbQubits(); ++q) flushRun(q);
  return out;
}

/// Standard pipeline: flatten, fuse rotations, cancel inverse pairs,
/// remove trivial gates, and merge single-qubit runs, iterated to a
/// fixpoint (bounded rounds).  Rotation fusion runs first so same-axis
/// runs stay parameterized rotations instead of opaque MatrixGate1s.
template <typename T>
QCircuit<T> optimize(const QCircuit<T>& circuit,
                     T tol = T(1e3) * std::numeric_limits<T>::epsilon()) {
  const obs::ScopedSpan span("transpile/optimize", "stage");
  QCircuit<T> current = flatten(circuit);
  for (int round = 0; round < 10; ++round) {
    const std::size_t before = current.nbObjectsRecursive();
    current = fuseRotations(current, tol);
    current = cancelInversePairs(current, tol);
    current = removeTrivialGates(current, tol);
    current = mergeSingleQubitGates(current, tol);
    if (current.nbObjectsRecursive() >= before) break;
  }
  return current;
}

}  // namespace qclab::transpile

#include "qclab/version.hpp"

namespace qclab {

Version version() noexcept { return Version{1, 0, 0}; }

const char* versionString() noexcept { return "1.0.0"; }

bool builtWithOpenMP() noexcept {
#ifdef QCLAB_HAS_OPENMP
  return true;
#else
  return false;
#endif
}

bool builtWithObs() noexcept {
#ifdef QCLAB_OBS_DISABLED
  return false;
#else
  return true;
#endif
}

const char* scalarTypes() noexcept { return "float,double"; }

const char* buildInfo() noexcept {
#ifdef QCLAB_HAS_OPENMP
#ifdef QCLAB_OBS_DISABLED
  return "qclab 1.0.0 (openmp=on, obs=off, scalars=float,double)";
#else
  return "qclab 1.0.0 (openmp=on, obs=on, scalars=float,double)";
#endif
#else
#ifdef QCLAB_OBS_DISABLED
  return "qclab 1.0.0 (openmp=off, obs=off, scalars=float,double)";
#else
  return "qclab 1.0.0 (openmp=off, obs=on, scalars=float,double)";
#endif
#endif
}

}  // namespace qclab

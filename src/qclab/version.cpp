#include "qclab/version.hpp"

#include <string>

namespace qclab {

Version version() noexcept { return Version{1, 0, 0}; }

const char* versionString() noexcept { return "1.0.0"; }

bool builtWithOpenMP() noexcept {
#ifdef QCLAB_HAS_OPENMP
  return true;
#else
  return false;
#endif
}

bool builtWithObs() noexcept {
#ifdef QCLAB_OBS_DISABLED
  return false;
#else
  return true;
#endif
}

bool builtWithSimd() noexcept {
#ifdef QCLAB_HAS_SIMD
  return true;
#else
  return false;
#endif
}

const char* scalarTypes() noexcept { return "float,double"; }

const char* buildInfo() noexcept {
  // Composed once; the feature set grows, the #ifdef ladder does not.
  static const std::string info = [] {
    std::string s = "qclab ";
    s += versionString();
    s += " (openmp=";
    s += builtWithOpenMP() ? "on" : "off";
    s += ", obs=";
    s += builtWithObs() ? "on" : "off";
    s += ", simd=";
    s += builtWithSimd() ? "on" : "off";
    s += ", scalars=";
    s += scalarTypes();
    s += ")";
    return s;
  }();
  return info.c_str();
}

}  // namespace qclab

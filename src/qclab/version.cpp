#include "qclab/version.hpp"

namespace qclab {

Version version() noexcept { return Version{1, 0, 0}; }

const char* versionString() noexcept { return "1.0.0"; }

}  // namespace qclab

#pragma once

/// \file benchjson.hpp
/// \brief Parsing, merging, and baseline comparison of BENCH-shaped JSON.
///
/// The regression harness side of the observability layer: a minimal JSON
/// reader (just enough for the qclab-obs report shape — objects, arrays,
/// strings, numbers, bools, null), a trajectory merger that folds the
/// per-bench reports of one run into a single BENCH_<label>.json, and a
/// comparator that diffs a trajectory against a committed baseline with a
/// configurable relative tolerance and classifies every timing as ok /
/// improvement / regression.  tools/bench_trajectory.cpp and
/// tools/bench_compare.cpp are thin CLIs over these functions, and the
/// verdict logic is unit-tested in tests/test_bench_compare.cpp.
///
/// Everything here is plain data processing: it does not touch the global
/// obs registries and is fully functional under QCLAB_OBS_DISABLED.

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "qclab/obs/json.hpp"
#include "qclab/util/errors.hpp"

namespace qclab::obs::benchjson {

/// Schema tag of merged trajectory files.
inline constexpr const char* kTrajectorySchema = "qclab-bench-trajectory-v1";

// ---- JSON value ---------------------------------------------------------

/// A parsed JSON value (tagged union; object keys keep insertion order).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool isObject() const noexcept { return kind == Kind::kObject; }
  bool isArray() const noexcept { return kind == Kind::kArray; }
  bool isString() const noexcept { return kind == Kind::kString; }
  bool isNumber() const noexcept { return kind == Kind::kNumber; }

  /// First member named `key`, or nullptr (objects only).
  const JsonValue* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [name, value] : object) {
      if (name == key) return &value;
    }
    return nullptr;
  }

  /// String member `key`, or `fallback` when absent / not a string.
  std::string stringOr(const std::string& key,
                       const std::string& fallback) const {
    const JsonValue* value = find(key);
    return (value != nullptr && value->isString()) ? value->string
                                                   : fallback;
  }

  static JsonValue makeString(std::string s) {
    JsonValue v;
    v.kind = Kind::kString;
    v.string = std::move(s);
    return v;
  }

  static JsonValue makeArray() {
    JsonValue v;
    v.kind = Kind::kArray;
    return v;
  }

  static JsonValue makeObject() {
    JsonValue v;
    v.kind = Kind::kObject;
    return v;
  }
};

// ---- parser -------------------------------------------------------------

/// Recursive-descent JSON parser.  Throws InvalidArgumentError (with byte
/// offset) on malformed input.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    skipSpace();
    JsonValue value = parseValue();
    skipSpace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgumentError("JSON parse error at byte " +
                               std::to_string(pos_) + ": " + what);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  JsonValue parseValue() {
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parseString();
        return v;
      }
      case 't': parseLiteral("true");  return boolValue(true);
      case 'f': parseLiteral("false"); return boolValue(false);
      case 'n': parseLiteral("null");  return JsonValue{};
      default:  return parseNumber();
    }
  }

  static JsonValue boolValue(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = b;
    return v;
  }

  void parseLiteral(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) fail("invalid literal");
    pos_ += w.size();
  }

  JsonValue parseObject() {
    JsonValue v = JsonValue::makeObject();
    expect('{');
    skipSpace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skipSpace();
      std::string key = parseString();
      skipSpace();
      expect(':');
      skipSpace();
      v.object.emplace_back(std::move(key), parseValue());
      skipSpace();
      const char c = take();
      if (c == ',') continue;
      if (c == '}') return v;
      --pos_;
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parseArray() {
    JsonValue v = JsonValue::makeArray();
    expect('[');
    skipSpace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      skipSpace();
      v.array.push_back(parseValue());
      skipSpace();
      const char c = take();
      if (c == ',') continue;
      if (c == ']') return v;
      --pos_;
      fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"':  out += '"'; break;
        case '\\': out += '\\'; break;
        case '/':  out += '/'; break;
        case 'b':  out += '\b'; break;
        case 'f':  out += '\f'; break;
        case 'n':  out += '\n'; break;
        case 'r':  out += '\r'; break;
        case 't':  out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // Reports only emit \u00xx control escapes; encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  JsonValue parseNumber() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == begin) fail("expected a JSON value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(text_.substr(begin, pos_ - begin));
    } catch (const std::exception&) {
      fail("invalid number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Parses `text` as one JSON value.  Throws InvalidArgumentError.
inline JsonValue parseJson(const std::string& text) {
  return JsonParser(text).parse();
}

// ---- serializer ---------------------------------------------------------

inline void dumpTo(const JsonValue& value, std::string& out, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string padIn(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += value.boolean ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber: {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", value.number);
      out += buffer;
      return;
    }
    case JsonValue::Kind::kString:
      out += '"';
      out += jsonEscape(value.string);
      out += '"';
      return;
    case JsonValue::Kind::kArray: {
      if (value.array.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        out += padIn;
        dumpTo(value.array[i], out, indent + 1);
        if (i + 1 < value.array.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      if (value.object.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < value.object.size(); ++i) {
        out += padIn;
        out += '"';
        out += jsonEscape(value.object[i].first);
        out += "\": ";
        dumpTo(value.object[i].second, out, indent + 1);
        if (i + 1 < value.object.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += '}';
      return;
    }
  }
}

/// Pretty-prints `value` (2-space indent).
inline std::string dumpJson(const JsonValue& value) {
  std::string out;
  dumpTo(value, out, 0);
  return out;
}

// ---- trajectory merge ---------------------------------------------------

/// Folds the per-bench obs reports of one run into a single trajectory
/// object: {"schema": kTrajectorySchema, "label": label, "benches": [...]}.
/// Each report must be a JSON object (the qclab-obs report shape).
inline JsonValue mergeTrajectory(const std::string& label,
                                 std::vector<JsonValue> reports) {
  JsonValue trajectory = JsonValue::makeObject();
  trajectory.object.emplace_back("schema",
                                 JsonValue::makeString(kTrajectorySchema));
  trajectory.object.emplace_back("label", JsonValue::makeString(label));
  JsonValue benches = JsonValue::makeArray();
  for (auto& report : reports) {
    if (!report.isObject()) {
      throw InvalidArgumentError("trajectory entries must be JSON objects");
    }
    benches.array.push_back(std::move(report));
  }
  trajectory.object.emplace_back("benches", std::move(benches));
  return trajectory;
}

// ---- baseline comparison ------------------------------------------------

/// Verdict on one timing shared by baseline and current trajectories.
enum class Verdict {
  kOk,           ///< within tolerance of the baseline
  kImprovement,  ///< faster than baseline by more than the tolerance
  kRegression,   ///< slower than baseline by more than the tolerance
  kMissing,      ///< in the baseline, absent from the current run
  kNew,          ///< in the current run, absent from the baseline
};

inline const char* verdictName(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kOk:          return "ok";
    case Verdict::kImprovement: return "improvement";
    case Verdict::kRegression:  return "REGRESSION";
    case Verdict::kMissing:     return "MISSING";
    case Verdict::kNew:         return "new";
  }
  return "unknown";
}

/// One compared timing: "<bench>/<result>" plus values and verdict.
struct Comparison {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;  ///< current / baseline (0 when either side missing)
  Verdict verdict = Verdict::kOk;
};

/// Result of diffing a current trajectory against a baseline.
struct CompareOutcome {
  std::vector<Comparison> rows;
  int regressions = 0;
  int improvements = 0;
  int missing = 0;

  /// True when the gate should fail (any regression or missing timing).
  bool failed() const noexcept { return regressions > 0 || missing > 0; }
};

namespace detail {

/// Collects the gated timings of a trajectory as (name, value) pairs:
/// every result with a lower-is-better time unit ("ns/op", "ns", "ms",
/// "s/op", "ns/trajectory"), keyed "<bench name>/<result name>".
/// Counter-style results ("sweeps", "x", ...) are informational and not
/// gated.
inline std::vector<std::pair<std::string, double>> gatedTimings(
    const JsonValue& trajectory) {
  std::vector<std::pair<std::string, double>> timings;
  const JsonValue* benches = trajectory.find("benches");
  if (benches == nullptr || !benches->isArray()) {
    throw InvalidArgumentError(
        "not a trajectory file (missing \"benches\" array); expected "
        "schema " + std::string(kTrajectorySchema));
  }
  for (const auto& bench : benches->array) {
    const std::string benchName = bench.stringOr("name", "?");
    const JsonValue* results = bench.find("results");
    if (results == nullptr || !results->isArray()) continue;
    for (const auto& result : results->array) {
      const JsonValue* value = result.find("value");
      if (value == nullptr || !value->isNumber()) continue;
      const std::string unit = result.stringOr("unit", "");
      const bool timing = unit == "ns/op" || unit == "ns" || unit == "us" ||
                          unit == "ms" || unit == "s" || unit == "s/op" ||
                          unit == "ns/trajectory";
      if (!timing) continue;
      timings.emplace_back(benchName + "/" + result.stringOr("name", "?"),
                           value->number);
    }
  }
  return timings;
}

}  // namespace detail

/// Maps bench name -> dominant roofline classification ("memory-bound",
/// "compute-bound", ...) from each bench report's v3 "roofline" section.
/// Benches without one (pre-v3 baselines, runs without per-path data) are
/// simply absent, so callers fall back gracefully on old trajectories.
inline std::map<std::string, std::string> benchClassifications(
    const JsonValue& trajectory) {
  std::map<std::string, std::string> classifications;
  const JsonValue* benches = trajectory.find("benches");
  if (benches == nullptr || !benches->isArray()) return classifications;
  for (const auto& bench : benches->array) {
    const std::string name = bench.stringOr("name", "");
    if (name.empty()) continue;
    const JsonValue* roofline = bench.find("roofline");
    if (roofline == nullptr || !roofline->isObject()) continue;
    const std::string classification =
        roofline->stringOr("classification", "");
    if (!classification.empty()) classifications[name] = classification;
  }
  return classifications;
}

/// Diffs `current` against `baseline` (both trajectory objects).  A timing
/// regresses when current > baseline * (1 + tolerance) and improves when
/// current < baseline / (1 + tolerance); zero-valued baselines are only
/// checked for presence.  Baseline timings absent from the current run
/// count as failures (kMissing); new timings are informational.
inline CompareOutcome compareTrajectories(const JsonValue& baseline,
                                          const JsonValue& current,
                                          double tolerance) {
  if (tolerance < 0.0) {
    throw InvalidArgumentError("tolerance must be non-negative");
  }
  const auto baselineTimings = detail::gatedTimings(baseline);
  const auto currentTimings = detail::gatedTimings(current);

  CompareOutcome outcome;
  for (const auto& [name, baselineValue] : baselineTimings) {
    Comparison row;
    row.name = name;
    row.baseline = baselineValue;
    const auto hit =
        std::find_if(currentTimings.begin(), currentTimings.end(),
                     [&name = name](const auto& t) { return t.first == name; });
    if (hit == currentTimings.end()) {
      row.verdict = Verdict::kMissing;
      ++outcome.missing;
      outcome.rows.push_back(std::move(row));
      continue;
    }
    row.current = hit->second;
    if (baselineValue > 0.0) {
      row.ratio = row.current / baselineValue;
      if (row.current > baselineValue * (1.0 + tolerance)) {
        row.verdict = Verdict::kRegression;
        ++outcome.regressions;
      } else if (row.current < baselineValue / (1.0 + tolerance)) {
        row.verdict = Verdict::kImprovement;
        ++outcome.improvements;
      }
    }
    outcome.rows.push_back(std::move(row));
  }
  for (const auto& [name, currentValue] : currentTimings) {
    const auto hit =
        std::find_if(baselineTimings.begin(), baselineTimings.end(),
                     [&name = name](const auto& t) { return t.first == name; });
    if (hit != baselineTimings.end()) continue;
    Comparison row;
    row.name = name;
    row.current = currentValue;
    row.verdict = Verdict::kNew;
    outcome.rows.push_back(std::move(row));
  }
  return outcome;
}

}  // namespace qclab::obs::benchjson

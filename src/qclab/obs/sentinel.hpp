#pragma once

/// \file sentinel.hpp
/// \brief Numerical-health sentinels: throttled norm-drift / NaN / Inf
/// checks over the state vector.
///
/// Simulator bugs rarely crash at the offending gate — they surface many
/// gates later as NaN amplitudes or a drifting norm.  The sentinels make
/// that failure mode observable while cheap enough to leave on:
///
///  - CHECKS are full passes over a state (or per-chunk partial passes in
///    the cache-blocked executor, accumulated while the chunk is hot)
///    computing sum|amp|^2, max|amp|^2, and a NaN/Inf flag in double.
///    Checks are strictly read-only, so enabling them NEVER changes a
///    single amplitude bit — differential tests memcmp-verify this.
///  - THROTTLING: each check site first asks shouldCheck(), which passes
///    every `interval`-th opportunity per thread (default 8), bounding the
///    steady-state cost at a small fraction of one gate sweep.
///  - POLICY (off / log / throw) comes from QCLAB_OBS_SENTINEL at process
///    start (mirroring the other QCLAB_OBS_* knobs) or configure() at
///    runtime.  kLog prints one stderr line per violation.  kThrow NEVER
///    throws at the detection site — checks run inside OpenMP regions
///    where an escaping exception would std::terminate — it latches a
///    sticky violation that throwIfPending() raises at the next safe
///    point (end of QCircuit::simulate, end of BatchedSimulation::forEach)
///    on a thread that is outside any parallel region.
///
/// Every check records into counters (checks / nan / norm alerts), gauges
/// (last norm, running max amplitude), and a latency histogram of the
/// check passes themselves; reports render these as the v4 "sentinel"
/// section and the OpenMetrics exporter as qclab_sentinel_* families.
/// Violations also drop a kSentinelAlert event into the flight recorder so
/// crash dumps show *when* the state went bad relative to the event
/// stream.  Under QCLAB_OBS_DISABLED everything is an API-identical no-op.

#include <complex>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "qclab/obs/flightrecorder.hpp"
#include "qclab/obs/histogram.hpp"

#ifndef QCLAB_OBS_DISABLED
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#endif

#ifdef QCLAB_HAS_OPENMP
#include <omp.h>
#endif

namespace qclab::obs {

/// What the sentinels do when a check fails.
enum class SentinelPolicy : int {
  kOff = 0,  ///< no checks at all (shouldCheck() always false)
  kLog,      ///< count + flight event + one stderr line per violation
  kThrow,    ///< count + flight event + deferred NumericalHealthError
};

inline const char* sentinelPolicyName(SentinelPolicy policy) noexcept {
  switch (policy) {
    case SentinelPolicy::kOff:   return "off";
    case SentinelPolicy::kLog:   return "log";
    case SentinelPolicy::kThrow: return "throw";
  }
  return "unknown";
}

/// Raised by Sentinel::throwIfPending() under SentinelPolicy::kThrow.
class NumericalHealthError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Tuning of the sentinel checks.
struct SentinelConfig {
  SentinelPolicy policy = SentinelPolicy::kLog;
  /// Pass every Nth check opportunity per thread (>= 1).
  std::uint32_t interval = 8;
  /// Allowed |sum|amp|^2 - 1| before a norm-drift alert.
  double normTolerance = 1e-4;
};

#ifndef QCLAB_OBS_DISABLED

/// The process-wide sentinel registry: configuration, counters, and the
/// sticky deferred violation.
class Sentinel {
 public:
  Sentinel() {
    if (const char* env = std::getenv("QCLAB_OBS_SENTINEL")) {
      if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) {
        policy_.store(static_cast<int>(SentinelPolicy::kOff),
                      std::memory_order_relaxed);
      } else if (std::strcmp(env, "log") == 0) {
        policy_.store(static_cast<int>(SentinelPolicy::kLog),
                      std::memory_order_relaxed);
      } else if (std::strcmp(env, "throw") == 0) {
        policy_.store(static_cast<int>(SentinelPolicy::kThrow),
                      std::memory_order_relaxed);
      }
    }
  }

  SentinelPolicy policy() const noexcept {
    return static_cast<SentinelPolicy>(
        policy_.load(std::memory_order_relaxed));
  }

  SentinelConfig config() const noexcept {
    SentinelConfig cfg;
    cfg.policy = policy();
    cfg.interval = interval_.load(std::memory_order_relaxed);
    cfg.normTolerance = loadDouble(normToleranceBits_);
    return cfg;
  }

  /// Replaces the configuration (tests, benches, service knobs).
  void configure(const SentinelConfig& cfg) noexcept {
    policy_.store(static_cast<int>(cfg.policy), std::memory_order_relaxed);
    interval_.store(cfg.interval == 0 ? 1 : cfg.interval,
                    std::memory_order_relaxed);
    storeDouble(normToleranceBits_, cfg.normTolerance);
  }

  /// Throttle gate of every check site: true on every `interval`-th call
  /// per thread (and never under kOff).  Cost: one TLS increment.
  bool shouldCheck() noexcept {
    if (policy() == SentinelPolicy::kOff) return false;
    thread_local std::uint64_t opportunities = 0;
    return (opportunities++ %
            interval_.load(std::memory_order_relaxed)) == 0;
  }

  /// Feeds one completed check: `normSq` = sum|amp|^2 (double), `maxAmpSq`
  /// = max|amp|^2, `nanSeen` = any non-finite component, `site` = static
  /// string naming the hook ("simulate", "blocked", "batch"), `checkNs` =
  /// cost of the pass.  Applies the policy; never throws (kThrow defers).
  void report(double normSq, double maxAmpSq, bool nanSeen, const char* site,
              std::uint64_t checkNs) noexcept {
    checks_.fetch_add(1, std::memory_order_relaxed);
    checkHistogram_.record(checkNs);
    storeDouble(lastNormSqBits_, normSq);
    storeDoubleMax(maxAmpSqBits_, maxAmpSq);
    const bool nanBad = nanSeen || !std::isfinite(normSq);
    const bool normBad =
        !nanBad && std::abs(normSq - 1.0) > loadDouble(normToleranceBits_);
    if (!nanBad && !normBad) return;
    if (nanBad) nanDetected_.fetch_add(1, std::memory_order_relaxed);
    if (normBad) normAlerts_.fetch_add(1, std::memory_order_relaxed);
    flightRecorder().record(FlightEventKind::kSentinelAlert, 0, 0,
                            nanBad ? 1u : 2u);
    switch (policy()) {
      case SentinelPolicy::kOff:
        break;
      case SentinelPolicy::kLog:
        std::fprintf(stderr,
                     "qclab-sentinel: %s at %s: normSq=%.17g maxAmpSq=%.17g"
                     " (check #%llu)\n",
                     nanBad ? "non-finite amplitude" : "norm drift", site,
                     normSq, maxAmpSq,
                     static_cast<unsigned long long>(
                         checks_.load(std::memory_order_relaxed)));
        break;
      case SentinelPolicy::kThrow: {
        const std::lock_guard<std::mutex> lock(violationMutex_);
        if (!violationPending_.load(std::memory_order_relaxed)) {
          violationMessage_ =
              std::string("qclab-sentinel: ") +
              (nanBad ? "non-finite amplitude" : "norm drift") + " at " +
              site + ": normSq=" + std::to_string(normSq);
          violationPending_.store(true, std::memory_order_release);
        }
        break;
      }
    }
  }

  /// True when a kThrow violation awaits its safe point.
  bool violationPending() const noexcept {
    return violationPending_.load(std::memory_order_acquire);
  }

  /// Message of the pending (or last thrown) violation.
  std::string violationMessage() const {
    const std::lock_guard<std::mutex> lock(violationMutex_);
    return violationMessage_;
  }

  /// Safe-point raise: throws NumericalHealthError when a violation is
  /// pending AND this thread is outside any OpenMP parallel region (an
  /// exception escaping a parallel region would std::terminate, so nested
  /// callers stay silent and the orchestrating thread throws).  Clears
  /// the pending flag on throw.
  void throwIfPending() {
    if (!violationPending()) return;
#ifdef QCLAB_HAS_OPENMP
    if (omp_in_parallel()) return;
#endif
    std::string message;
    {
      const std::lock_guard<std::mutex> lock(violationMutex_);
      message = violationMessage_;
      violationPending_.store(false, std::memory_order_release);
    }
    throw NumericalHealthError(message);
  }

  // ---- readers --------------------------------------------------------

  std::uint64_t checks() const noexcept {
    return checks_.load(std::memory_order_relaxed);
  }
  std::uint64_t nanDetected() const noexcept {
    return nanDetected_.load(std::memory_order_relaxed);
  }
  std::uint64_t normAlerts() const noexcept {
    return normAlerts_.load(std::memory_order_relaxed);
  }
  std::uint64_t violations() const noexcept {
    return nanDetected() + normAlerts();
  }
  /// sum|amp|^2 of the most recent check (0 before any check).
  double lastNormSq() const noexcept { return loadDouble(lastNormSqBits_); }
  /// Largest |amp|^2 seen by any check since the last reset.
  double maxAmpSq() const noexcept { return loadDouble(maxAmpSqBits_); }
  /// Latency histogram of the check passes.
  const LatencyHistogram& checkHistogram() const noexcept {
    return checkHistogram_;
  }

  /// Zeroes counters, gauges, the histogram, and the pending violation
  /// (configuration is kept).
  void reset() noexcept {
    checks_.store(0, std::memory_order_relaxed);
    nanDetected_.store(0, std::memory_order_relaxed);
    normAlerts_.store(0, std::memory_order_relaxed);
    storeDouble(lastNormSqBits_, 0.0);
    storeDouble(maxAmpSqBits_, 0.0);
    checkHistogram_.reset();
    const std::lock_guard<std::mutex> lock(violationMutex_);
    violationMessage_.clear();
    violationPending_.store(false, std::memory_order_relaxed);
  }

 private:
  static double loadDouble(const std::atomic<std::uint64_t>& bits) noexcept {
    double value;
    const std::uint64_t raw = bits.load(std::memory_order_relaxed);
    std::memcpy(&value, &raw, sizeof(value));
    return value;
  }

  static void storeDouble(std::atomic<std::uint64_t>& bits,
                          double value) noexcept {
    std::uint64_t raw;
    std::memcpy(&raw, &value, sizeof(raw));
    bits.store(raw, std::memory_order_relaxed);
  }

  /// Monotonic max over the bit-stored double (NaN never replaces a max).
  static void storeDoubleMax(std::atomic<std::uint64_t>& bits,
                             double value) noexcept {
    if (!(value == value)) return;  // NaN
    std::uint64_t expected = bits.load(std::memory_order_relaxed);
    for (;;) {
      double current;
      std::memcpy(&current, &expected, sizeof(current));
      if (value <= current) return;
      std::uint64_t raw;
      std::memcpy(&raw, &value, sizeof(raw));
      if (bits.compare_exchange_weak(expected, raw,
                                     std::memory_order_relaxed)) {
        return;
      }
    }
  }

  static std::uint64_t doubleBits(double value) noexcept {
    std::uint64_t raw;
    std::memcpy(&raw, &value, sizeof(raw));
    return raw;
  }

  std::atomic<int> policy_{static_cast<int>(SentinelPolicy::kLog)};
  std::atomic<std::uint32_t> interval_{8};
  std::atomic<std::uint64_t> normToleranceBits_{doubleBits(1e-4)};
  std::atomic<std::uint64_t> checks_{0};
  std::atomic<std::uint64_t> nanDetected_{0};
  std::atomic<std::uint64_t> normAlerts_{0};
  std::atomic<std::uint64_t> lastNormSqBits_{0};
  std::atomic<std::uint64_t> maxAmpSqBits_{0};
  LatencyHistogram checkHistogram_;
  std::atomic<bool> violationPending_{false};
  mutable std::mutex violationMutex_;
  std::string violationMessage_;
};

/// The process-wide sentinel.
inline Sentinel& sentinel() {
  static Sentinel instance;
  return instance;
}

/// One full read-only health pass over `dim` amplitudes: accumulates
/// sum|amp|^2 and max|amp|^2 in double, flags non-finite components, and
/// reports the result (policy applied by Sentinel::report — never throws
/// here).  Callers gate on sentinel().shouldCheck().
template <typename T>
void sentinelCheckState(const std::complex<T>* data, std::size_t dim,
                        const char* site) {
  const auto begin = std::chrono::steady_clock::now();
  double normSq = 0.0;
  double maxAmpSq = 0.0;
  bool nanSeen = false;
  for (std::size_t i = 0; i < dim; ++i) {
    const double re = static_cast<double>(data[i].real());
    const double im = static_cast<double>(data[i].imag());
    const double ampSq = re * re + im * im;
    normSq += ampSq;
    if (ampSq > maxAmpSq) maxAmpSq = ampSq;
    // NaN fails every comparison, so track it explicitly.
    if (!std::isfinite(ampSq)) nanSeen = true;
  }
  const std::uint64_t checkNs = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - begin)
          .count());
  sentinel().report(normSq, maxAmpSq, nanSeen, site, checkNs);
}

/// Partial accumulation over one cache-hot chunk (the blocked executor
/// merges these per run before reporting).
template <typename T>
void sentinelAccumulateChunk(const std::complex<T>* chunk, std::size_t dim,
                             double& normSq, double& maxAmpSq,
                             bool& nanSeen) noexcept {
  for (std::size_t i = 0; i < dim; ++i) {
    const double re = static_cast<double>(chunk[i].real());
    const double im = static_cast<double>(chunk[i].imag());
    const double ampSq = re * re + im * im;
    normSq += ampSq;
    if (ampSq > maxAmpSq) maxAmpSq = ampSq;
    if (!std::isfinite(ampSq)) nanSeen = true;
  }
}

#else  // QCLAB_OBS_DISABLED

/// No-op sentinel: policy pinned off, every check site compiles away.
class Sentinel {
 public:
  SentinelPolicy policy() const noexcept { return SentinelPolicy::kOff; }
  SentinelConfig config() const noexcept {
    SentinelConfig cfg;
    cfg.policy = SentinelPolicy::kOff;
    return cfg;
  }
  void configure(const SentinelConfig&) noexcept {}
  bool shouldCheck() noexcept { return false; }
  void report(double, double, bool, const char*, std::uint64_t) noexcept {}
  bool violationPending() const noexcept { return false; }
  std::string violationMessage() const { return {}; }
  void throwIfPending() {}
  std::uint64_t checks() const noexcept { return 0; }
  std::uint64_t nanDetected() const noexcept { return 0; }
  std::uint64_t normAlerts() const noexcept { return 0; }
  std::uint64_t violations() const noexcept { return 0; }
  double lastNormSq() const noexcept { return 0.0; }
  double maxAmpSq() const noexcept { return 0.0; }
  const LatencyHistogram& checkHistogram() const noexcept {
    static const LatencyHistogram empty;
    return empty;
  }
  void reset() noexcept {}
};

inline Sentinel& sentinel() {
  static Sentinel instance;
  return instance;
}

template <typename T>
void sentinelCheckState(const std::complex<T>*, std::size_t, const char*) {}

template <typename T>
void sentinelAccumulateChunk(const std::complex<T>*, std::size_t, double&,
                             double&, bool&) noexcept {}

#endif  // QCLAB_OBS_DISABLED

}  // namespace qclab::obs

#pragma once

/// \file metrics.hpp
/// \brief Low-overhead global counters for the simulation engine.
///
/// A single process-wide Metrics registry accumulates
///  - gate applications, split by kernel path and by gate kind,
///  - an estimate of state-vector bytes touched by those applications,
///  - simulation branch spawns (mid-circuit measurement forks) and prunes
///    (outcomes dropped as numerically impossible),
///  - shots sampled and circuit simulations started,
///  - noise-channel applications of the density-matrix simulator.
///
/// Hot-path hooks are single relaxed atomic increments; the per-kind
/// histogram (string keyed) is only fed by InstrumentedBackend, never by
/// the bare kernels.  Compiling with QCLAB_OBS_DISABLED replaces the whole
/// registry with an API-identical no-op so that instrumented call sites
/// vanish and no obs state is linked into the binary.

#ifndef QCLAB_OBS_DISABLED
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "qclab/sim/kernel_path.hpp"

namespace qclab::obs {

/// True when the library was compiled with observability enabled.
inline constexpr bool kEnabled = true;

/// Process-wide counter registry.  All mutators are thread-safe; reads are
/// snapshots (relaxed, no cross-counter consistency guarantee).
class Metrics {
 public:
  // ---- mutators -------------------------------------------------------

  /// Records one gate application dispatched to `path`, touching an
  /// estimated `bytes` of state-vector memory.  `kind` is the gate
  /// mnemonic (same key scheme as QCircuit::gateCounts); pass nullptr to
  /// skip the per-kind histogram (bare counter-only call sites).
  void countGate(sim::KernelPath path, const char* kind,
                 std::uint64_t bytes) {
    gateTotal_.fetch_add(1, std::memory_order_relaxed);
    gateByPath_[static_cast<int>(path)].fetch_add(1,
                                                  std::memory_order_relaxed);
    bytesTouched_.fetch_add(bytes, std::memory_order_relaxed);
    if (kind != nullptr) {
      const std::lock_guard<std::mutex> lock(kindMutex_);
      ++gateByKind_[kind];
    }
  }

  /// Records a measurement/reset forking one branch into two.
  void countBranchSpawn() {
    branchSpawns_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records a measurement/reset outcome dropped as numerically impossible.
  void countBranchPrune() {
    branchPrunes_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records `shots` sampled outcomes (counts / countsMap / state sampling).
  void countShots(std::uint64_t shots) {
    shotsSampled_.fetch_add(shots, std::memory_order_relaxed);
  }

  /// Records one QCircuit::simulate run.
  void countCircuitSimulation() {
    circuitSimulations_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one Kraus-channel application in the noisy simulator.
  void countNoiseChannel() {
    noiseChannels_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one fusion-plan application: `gatesIn` gates were merged into
  /// `blocks` fused blocks, avoiding `sweepsSaved` full-state sweeps.
  void countFusion(std::uint64_t gatesIn, std::uint64_t blocks,
                   std::uint64_t sweepsSaved) {
    fusionGatesIn_.fetch_add(gatesIn, std::memory_order_relaxed);
    fusionBlocks_.fetch_add(blocks, std::memory_order_relaxed);
    fusionSweepsSaved_.fetch_add(sweepsSaved, std::memory_order_relaxed);
  }

  /// Zeroes every counter (start of a measured region / test).
  void reset() {
    gateTotal_.store(0, std::memory_order_relaxed);
    for (auto& counter : gateByPath_) {
      counter.store(0, std::memory_order_relaxed);
    }
    bytesTouched_.store(0, std::memory_order_relaxed);
    branchSpawns_.store(0, std::memory_order_relaxed);
    branchPrunes_.store(0, std::memory_order_relaxed);
    shotsSampled_.store(0, std::memory_order_relaxed);
    circuitSimulations_.store(0, std::memory_order_relaxed);
    noiseChannels_.store(0, std::memory_order_relaxed);
    fusionGatesIn_.store(0, std::memory_order_relaxed);
    fusionBlocks_.store(0, std::memory_order_relaxed);
    fusionSweepsSaved_.store(0, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(kindMutex_);
    gateByKind_.clear();
  }

  // ---- readers --------------------------------------------------------

  /// Total gate applications since the last reset.
  std::uint64_t gateApplications() const {
    return gateTotal_.load(std::memory_order_relaxed);
  }

  /// Gate applications dispatched to `path`.
  std::uint64_t gateApplications(sim::KernelPath path) const {
    return gateByPath_[static_cast<int>(path)].load(
        std::memory_order_relaxed);
  }

  /// Snapshot of the per-kind histogram (InstrumentedBackend runs only).
  std::map<std::string, std::uint64_t> gateKinds() const {
    const std::lock_guard<std::mutex> lock(kindMutex_);
    return gateByKind_;
  }

  /// Estimated state-vector bytes read + written by counted applications.
  std::uint64_t bytesTouched() const {
    return bytesTouched_.load(std::memory_order_relaxed);
  }

  std::uint64_t branchSpawns() const {
    return branchSpawns_.load(std::memory_order_relaxed);
  }

  std::uint64_t branchPrunes() const {
    return branchPrunes_.load(std::memory_order_relaxed);
  }

  std::uint64_t shotsSampled() const {
    return shotsSampled_.load(std::memory_order_relaxed);
  }

  std::uint64_t circuitSimulations() const {
    return circuitSimulations_.load(std::memory_order_relaxed);
  }

  std::uint64_t noiseChannelApplications() const {
    return noiseChannels_.load(std::memory_order_relaxed);
  }

  /// Gates consumed by fusion scheduling (per plan application).
  std::uint64_t fusionGatesIn() const {
    return fusionGatesIn_.load(std::memory_order_relaxed);
  }

  /// Fused blocks applied.
  std::uint64_t fusionBlocks() const {
    return fusionBlocks_.load(std::memory_order_relaxed);
  }

  /// Full-state sweeps avoided by fusion (gates in - blocks out).
  std::uint64_t fusionSweepsSaved() const {
    return fusionSweepsSaved_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> gateTotal_{0};
  std::atomic<std::uint64_t> gateByPath_[sim::kKernelPathCount] = {};
  std::atomic<std::uint64_t> bytesTouched_{0};
  std::atomic<std::uint64_t> branchSpawns_{0};
  std::atomic<std::uint64_t> branchPrunes_{0};
  std::atomic<std::uint64_t> shotsSampled_{0};
  std::atomic<std::uint64_t> circuitSimulations_{0};
  std::atomic<std::uint64_t> noiseChannels_{0};
  std::atomic<std::uint64_t> fusionGatesIn_{0};
  std::atomic<std::uint64_t> fusionBlocks_{0};
  std::atomic<std::uint64_t> fusionSweepsSaved_{0};
  mutable std::mutex kindMutex_;
  std::map<std::string, std::uint64_t> gateByKind_;
};

/// The process-wide registry.
inline Metrics& metrics() {
  static Metrics instance;
  return instance;
}

}  // namespace qclab::obs

#else  // QCLAB_OBS_DISABLED

#include <cstdint>
#include <map>
#include <string>

#include "qclab/sim/kernel_path.hpp"

namespace qclab::obs {

inline constexpr bool kEnabled = false;

/// API-identical no-op registry: every mutator is empty, every reader
/// returns zero, so instrumented call sites compile away entirely.
class Metrics {
 public:
  void countGate(sim::KernelPath, const char*, std::uint64_t) {}
  void countBranchSpawn() {}
  void countBranchPrune() {}
  void countShots(std::uint64_t) {}
  void countCircuitSimulation() {}
  void countNoiseChannel() {}
  void countFusion(std::uint64_t, std::uint64_t, std::uint64_t) {}
  void reset() {}

  std::uint64_t gateApplications() const { return 0; }
  std::uint64_t gateApplications(sim::KernelPath) const { return 0; }
  std::map<std::string, std::uint64_t> gateKinds() const { return {}; }
  std::uint64_t bytesTouched() const { return 0; }
  std::uint64_t branchSpawns() const { return 0; }
  std::uint64_t branchPrunes() const { return 0; }
  std::uint64_t shotsSampled() const { return 0; }
  std::uint64_t circuitSimulations() const { return 0; }
  std::uint64_t noiseChannelApplications() const { return 0; }
  std::uint64_t fusionGatesIn() const { return 0; }
  std::uint64_t fusionBlocks() const { return 0; }
  std::uint64_t fusionSweepsSaved() const { return 0; }
};

inline Metrics& metrics() {
  static Metrics instance;
  return instance;
}

}  // namespace qclab::obs

#endif  // QCLAB_OBS_DISABLED

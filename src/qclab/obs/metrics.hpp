#pragma once

/// \file metrics.hpp
/// \brief Low-overhead global counters for the simulation engine.
///
/// A single process-wide Metrics registry accumulates
///  - gate applications, split by kernel path and by gate kind,
///  - an estimate of state-vector bytes touched, total and per path,
///  - live and high-water state-vector memory (Simulation branch states
///    and density matrices attribute their allocations here),
///  - simulation branch spawns (mid-circuit measurement forks) and prunes
///    (outcomes dropped as numerically impossible),
///  - shots sampled and circuit simulations started,
///  - noise-channel applications of the density-matrix simulator.
///
/// Hot-path hooks are relaxed atomic increments.  The per-kind gate
/// counters (string keyed, fed only by InstrumentedBackend) are sharded
/// per thread: each thread owns a shard and increments node-stable atomic
/// cells through a thread-local index, so steady-state recording takes no
/// mutex on any thread; shard mutexes are touched only when a thread sees
/// a gate kind for the first time and when snapshots/resets merge the
/// shards.  Compiling with QCLAB_OBS_DISABLED replaces the whole registry
/// with an API-identical no-op so that instrumented call sites vanish and
/// no obs state is linked into the binary.

#ifndef QCLAB_OBS_DISABLED
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qclab/sim/dispatch_mode.hpp"
#include "qclab/sim/kernel_path.hpp"
#include "qclab/sim/memory_advisor.hpp"

namespace qclab::obs {

/// True when the library was compiled with observability enabled.
inline constexpr bool kEnabled = true;

/// String-keyed counters sharded per thread.  Incrementing is mutex-free
/// once a (thread, key) pair is warm: the owner thread resolves the key
/// through its private index (no synchronization — only the owner touches
/// it) and bumps a node-stable std::atomic cell.  A shard's mutex guards
/// only cell creation and cross-thread reads (snapshot/reset), so the
/// recording threads never contend with each other.
class ShardedCounters {
  struct Shard {
    std::mutex mutex;  ///< guards `cells` growth and snapshot iteration
    /// deque: grow-only, never invalidates references to existing cells.
    std::deque<std::pair<std::string, std::atomic<std::uint64_t>>> cells;
  };

  /// Owner-thread-private view of one shard.
  struct LocalShard {
    std::shared_ptr<Shard> shard;
    std::unordered_map<std::string, std::atomic<std::uint64_t>*> index;
  };

 public:
  /// Adds `delta` to the counter named `key` (thread-safe, mutex-free for
  /// keys this thread has already used).
  void add(const std::string& key, std::uint64_t delta) {
    LocalShard& local = localShard();
    const auto hit = local.index.find(key);
    if (hit != local.index.end()) {
      hit->second->fetch_add(delta, std::memory_order_relaxed);
      return;
    }
    std::atomic<std::uint64_t>* cell;
    {
      const std::lock_guard<std::mutex> lock(local.shard->mutex);
      cell = &local.shard->cells.emplace_back(key, 0).second;
    }
    local.index.emplace(key, cell);
    cell->fetch_add(delta, std::memory_order_relaxed);
  }

  /// Merged totals over all shards, zero-valued keys omitted (so a reset
  /// registry snapshots as empty even though cells persist).
  std::map<std::string, std::uint64_t> snapshot() const {
    std::map<std::string, std::uint64_t> merged;
    for (const auto& shard : shardList()) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      for (const auto& [key, cell] : shard->cells) {
        const std::uint64_t value = cell.load(std::memory_order_relaxed);
        if (value != 0) merged[key] += value;
      }
    }
    return merged;
  }

  /// Zeroes every cell in every shard (cells stay registered: the owning
  /// threads keep their mutex-free fast path).
  void reset() {
    for (const auto& shard : shardList()) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      for (auto& [key, cell] : shard->cells) {
        cell.store(0, std::memory_order_relaxed);
      }
    }
  }

 private:
  /// This thread's shard for this registry instance, created and
  /// registered on first use.  Shards are shared_ptr-owned by both the
  /// registry and the thread-local map, so they survive either's exit.
  LocalShard& localShard() {
    thread_local std::unordered_map<const ShardedCounters*, LocalShard>
        perInstance;
    LocalShard& local = perInstance[this];
    if (!local.shard) {
      local.shard = std::make_shared<Shard>();
      const std::lock_guard<std::mutex> lock(registryMutex_);
      shards_.push_back(local.shard);
    }
    return local;
  }

  std::vector<std::shared_ptr<Shard>> shardList() const {
    const std::lock_guard<std::mutex> lock(registryMutex_);
    return shards_;
  }

  mutable std::mutex registryMutex_;
  std::vector<std::shared_ptr<Shard>> shards_;
};

/// Process-wide counter registry.  All mutators are thread-safe; reads are
/// snapshots (relaxed, no cross-counter consistency guarantee).
class Metrics {
 public:
  // ---- mutators -------------------------------------------------------

  /// Records one gate application dispatched to `path`, touching an
  /// estimated `bytes` of state-vector memory.  `kind` is the gate
  /// mnemonic (same key scheme as QCircuit::gateCounts); pass nullptr to
  /// skip the per-kind counters (bare counter-only call sites).
  void countGate(sim::KernelPath path, const char* kind,
                 std::uint64_t bytes) {
    gateTotal_.fetch_add(1, std::memory_order_relaxed);
    gateByPath_[static_cast<int>(path)].fetch_add(1,
                                                  std::memory_order_relaxed);
    bytesTouched_.fetch_add(bytes, std::memory_order_relaxed);
    bytesByPath_[static_cast<int>(path)].fetch_add(
        bytes, std::memory_order_relaxed);
    if (kind != nullptr) {
      gateByKind_.add(kind, 1);
    }
  }

  /// Records a measurement/reset forking one branch into two.
  void countBranchSpawn() {
    branchSpawns_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records a measurement/reset outcome dropped as numerically impossible.
  void countBranchPrune() {
    branchPrunes_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records `shots` sampled outcomes (counts / countsMap / state sampling).
  void countShots(std::uint64_t shots) {
    shotsSampled_.fetch_add(shots, std::memory_order_relaxed);
  }

  /// Records one QCircuit::simulate run.
  void countCircuitSimulation() {
    circuitSimulations_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one Kraus-channel application in the noisy simulator.
  void countNoiseChannel() {
    noiseChannels_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one TrajectorySimulator::run call covering `trajectories`
  /// Monte Carlo unravellings.
  void countTrajectoryRun(std::uint64_t trajectories) {
    trajectoryRuns_.fetch_add(1, std::memory_order_relaxed);
    trajectoriesSimulated_.fetch_add(trajectories,
                                     std::memory_order_relaxed);
  }

  /// Records one BatchedSimulation run covering `members` parameter
  /// instances executed against a shared circuit-shape plan.
  void countBatchRun(std::uint64_t members) {
    batchRuns_.fetch_add(1, std::memory_order_relaxed);
    batchMembersSimulated_.fetch_add(members, std::memory_order_relaxed);
  }

  /// Records one dispatched circuit execution routed as `route`
  /// (statevector / stabilizer / hybrid).
  void countDispatchRoute(sim::DispatchRoute route) {
    dispatchRoutes_[static_cast<int>(route)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Records one auto-dispatch fallback: the tableau refused a gate with
  /// UnsupportedGateError and the run continued on the statevector path.
  void countDispatchFallback() {
    dispatchFallbacks_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one tableau -> statevector conversion (per expanded branch).
  void countDispatchConversion() {
    dispatchConversions_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one fusion-plan application: `gatesIn` gates were merged into
  /// `blocks` fused blocks, avoiding `sweepsSaved` full-state sweeps.
  void countFusion(std::uint64_t gatesIn, std::uint64_t blocks,
                   std::uint64_t sweepsSaved) {
    fusionGatesIn_.fetch_add(gatesIn, std::memory_order_relaxed);
    fusionBlocks_.fetch_add(blocks, std::memory_order_relaxed);
    fusionSweepsSaved_.fetch_add(sweepsSaved, std::memory_order_relaxed);
  }

  /// Attributes `bytes` of newly live simulation state (branch state
  /// vectors, density matrices) and raises the high-water mark.
  void addStateBytes(std::uint64_t bytes) {
    const std::uint64_t now =
        stateBytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::uint64_t peak = peakStateBytes_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peakStateBytes_.compare_exchange_weak(
               peak, now, std::memory_order_relaxed)) {
    }
  }

  /// Releases `bytes` of simulation state (branch pruned / owner freed).
  void releaseStateBytes(std::uint64_t bytes) {
    stateBytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Attributes bytes to a resolved memory tier (sim::StateBuffer).
  /// `mapped` is address space reserved by the tier; `resident` is the
  /// part expected to be RAM-backed.  Heap/NUMA allocations pass equal
  /// values; the mmap tier maps the whole state but counts resident
  /// bytes only as its prefetch advisor faults granules in.
  void addTierBytes(sim::StateTier tier, std::uint64_t resident,
                    std::uint64_t mapped) {
    tierResident_[static_cast<int>(tier)].fetch_add(
        resident, std::memory_order_relaxed);
    tierMapped_[static_cast<int>(tier)].fetch_add(
        mapped, std::memory_order_relaxed);
  }

  /// Releases tier-attributed bytes (buffer freed / granules retired).
  void releaseTierBytes(sim::StateTier tier, std::uint64_t resident,
                        std::uint64_t mapped) {
    tierResident_[static_cast<int>(tier)].fetch_sub(
        resident, std::memory_order_relaxed);
    tierMapped_[static_cast<int>(tier)].fetch_sub(
        mapped, std::memory_order_relaxed);
  }

  /// Records prefetch-advisor activity of the out-of-core tier:
  /// `issued` WILLNEED granule advices, `hits` granules that were
  /// already resident when re-requested, `retired` DONTNEED drops.
  void countPrefetch(std::uint64_t issued, std::uint64_t hits,
                     std::uint64_t retired) {
    if (issued != 0) {
      prefetchIssued_.fetch_add(issued, std::memory_order_relaxed);
    }
    if (hits != 0) {
      prefetchHits_.fetch_add(hits, std::memory_order_relaxed);
    }
    if (retired != 0) {
      prefetchRetired_.fetch_add(retired, std::memory_order_relaxed);
    }
  }

  /// Zeroes every counter (start of a measured region / test).  The
  /// high-water mark restarts from the currently live state bytes, so
  /// long-lived simulations stay attributed.
  void reset() {
    gateTotal_.store(0, std::memory_order_relaxed);
    for (auto& counter : gateByPath_) {
      counter.store(0, std::memory_order_relaxed);
    }
    bytesTouched_.store(0, std::memory_order_relaxed);
    for (auto& counter : bytesByPath_) {
      counter.store(0, std::memory_order_relaxed);
    }
    branchSpawns_.store(0, std::memory_order_relaxed);
    branchPrunes_.store(0, std::memory_order_relaxed);
    shotsSampled_.store(0, std::memory_order_relaxed);
    circuitSimulations_.store(0, std::memory_order_relaxed);
    noiseChannels_.store(0, std::memory_order_relaxed);
    trajectoryRuns_.store(0, std::memory_order_relaxed);
    trajectoriesSimulated_.store(0, std::memory_order_relaxed);
    batchRuns_.store(0, std::memory_order_relaxed);
    batchMembersSimulated_.store(0, std::memory_order_relaxed);
    for (auto& counter : dispatchRoutes_) {
      counter.store(0, std::memory_order_relaxed);
    }
    dispatchFallbacks_.store(0, std::memory_order_relaxed);
    dispatchConversions_.store(0, std::memory_order_relaxed);
    fusionGatesIn_.store(0, std::memory_order_relaxed);
    fusionBlocks_.store(0, std::memory_order_relaxed);
    fusionSweepsSaved_.store(0, std::memory_order_relaxed);
    peakStateBytes_.store(stateBytes_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    // Tier byte gauges track LIVE allocations (like stateBytes_), so a
    // reset must not zero them; only the prefetch flow counters restart.
    prefetchIssued_.store(0, std::memory_order_relaxed);
    prefetchHits_.store(0, std::memory_order_relaxed);
    prefetchRetired_.store(0, std::memory_order_relaxed);
    gateByKind_.reset();
  }

  // ---- readers --------------------------------------------------------

  /// Total gate applications since the last reset.
  std::uint64_t gateApplications() const {
    return gateTotal_.load(std::memory_order_relaxed);
  }

  /// Gate applications dispatched to `path`.
  std::uint64_t gateApplications(sim::KernelPath path) const {
    return gateByPath_[static_cast<int>(path)].load(
        std::memory_order_relaxed);
  }

  /// Snapshot of the per-kind counters (InstrumentedBackend runs only).
  std::map<std::string, std::uint64_t> gateKinds() const {
    return gateByKind_.snapshot();
  }

  /// Estimated state-vector bytes read + written by counted applications.
  std::uint64_t bytesTouched() const {
    return bytesTouched_.load(std::memory_order_relaxed);
  }

  /// Estimated bytes touched by applications dispatched to `path`.
  std::uint64_t bytesTouched(sim::KernelPath path) const {
    return bytesByPath_[static_cast<int>(path)].load(
        std::memory_order_relaxed);
  }

  /// Currently live simulation-state bytes (branch states + density
  /// matrices that attributed themselves).
  std::uint64_t currentStateBytes() const {
    return stateBytes_.load(std::memory_order_relaxed);
  }

  /// High-water mark of currentStateBytes() since the last reset.
  std::uint64_t peakStateBytes() const {
    return peakStateBytes_.load(std::memory_order_relaxed);
  }

  /// RAM-resident bytes currently attributed to `tier`.
  std::uint64_t tierResidentBytes(sim::StateTier tier) const {
    return tierResident_[static_cast<int>(tier)].load(
        std::memory_order_relaxed);
  }

  /// Mapped (address-space) bytes currently attributed to `tier`.
  std::uint64_t tierMappedBytes(sim::StateTier tier) const {
    return tierMapped_[static_cast<int>(tier)].load(
        std::memory_order_relaxed);
  }

  /// WILLNEED granule advices issued by the out-of-core advisor.
  std::uint64_t prefetchIssued() const {
    return prefetchIssued_.load(std::memory_order_relaxed);
  }

  /// Granules that were already resident when the executor asked.
  std::uint64_t prefetchHits() const {
    return prefetchHits_.load(std::memory_order_relaxed);
  }

  /// Granules dropped with DONTNEED after their sweep retired them.
  std::uint64_t prefetchRetired() const {
    return prefetchRetired_.load(std::memory_order_relaxed);
  }

  std::uint64_t branchSpawns() const {
    return branchSpawns_.load(std::memory_order_relaxed);
  }

  std::uint64_t branchPrunes() const {
    return branchPrunes_.load(std::memory_order_relaxed);
  }

  std::uint64_t shotsSampled() const {
    return shotsSampled_.load(std::memory_order_relaxed);
  }

  std::uint64_t circuitSimulations() const {
    return circuitSimulations_.load(std::memory_order_relaxed);
  }

  std::uint64_t noiseChannelApplications() const {
    return noiseChannels_.load(std::memory_order_relaxed);
  }

  /// TrajectorySimulator::run calls.
  std::uint64_t trajectoryRuns() const {
    return trajectoryRuns_.load(std::memory_order_relaxed);
  }

  /// Monte Carlo trajectories simulated across all runs.
  std::uint64_t trajectoriesSimulated() const {
    return trajectoriesSimulated_.load(std::memory_order_relaxed);
  }

  /// BatchedSimulation runs.
  std::uint64_t batchRuns() const {
    return batchRuns_.load(std::memory_order_relaxed);
  }

  /// Batch members simulated across all batched runs.
  std::uint64_t batchMembersSimulated() const {
    return batchMembersSimulated_.load(std::memory_order_relaxed);
  }

  /// Dispatched circuit executions routed as `route`.
  std::uint64_t dispatchRoutes(sim::DispatchRoute route) const {
    return dispatchRoutes_[static_cast<int>(route)].load(
        std::memory_order_relaxed);
  }

  /// All dispatched circuit executions (any route).
  std::uint64_t dispatchRoutesTotal() const {
    std::uint64_t total = 0;
    for (const auto& counter : dispatchRoutes_) {
      total += counter.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Auto-dispatch fallbacks to the statevector path.
  std::uint64_t dispatchFallbacks() const {
    return dispatchFallbacks_.load(std::memory_order_relaxed);
  }

  /// Tableau -> statevector conversions (per expanded branch).
  std::uint64_t dispatchConversions() const {
    return dispatchConversions_.load(std::memory_order_relaxed);
  }

  /// Gates consumed by fusion scheduling (per plan application).
  std::uint64_t fusionGatesIn() const {
    return fusionGatesIn_.load(std::memory_order_relaxed);
  }

  /// Fused blocks applied.
  std::uint64_t fusionBlocks() const {
    return fusionBlocks_.load(std::memory_order_relaxed);
  }

  /// Full-state sweeps avoided by fusion (gates in - blocks out).
  std::uint64_t fusionSweepsSaved() const {
    return fusionSweepsSaved_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> gateTotal_{0};
  std::atomic<std::uint64_t> gateByPath_[sim::kKernelPathCount] = {};
  std::atomic<std::uint64_t> bytesTouched_{0};
  std::atomic<std::uint64_t> bytesByPath_[sim::kKernelPathCount] = {};
  std::atomic<std::uint64_t> stateBytes_{0};
  std::atomic<std::uint64_t> peakStateBytes_{0};
  std::atomic<std::uint64_t> tierResident_[sim::kStateTierCount] = {};
  std::atomic<std::uint64_t> tierMapped_[sim::kStateTierCount] = {};
  std::atomic<std::uint64_t> prefetchIssued_{0};
  std::atomic<std::uint64_t> prefetchHits_{0};
  std::atomic<std::uint64_t> prefetchRetired_{0};
  std::atomic<std::uint64_t> branchSpawns_{0};
  std::atomic<std::uint64_t> branchPrunes_{0};
  std::atomic<std::uint64_t> shotsSampled_{0};
  std::atomic<std::uint64_t> circuitSimulations_{0};
  std::atomic<std::uint64_t> noiseChannels_{0};
  std::atomic<std::uint64_t> trajectoryRuns_{0};
  std::atomic<std::uint64_t> trajectoriesSimulated_{0};
  std::atomic<std::uint64_t> batchRuns_{0};
  std::atomic<std::uint64_t> batchMembersSimulated_{0};
  std::atomic<std::uint64_t> dispatchRoutes_[sim::kDispatchRouteCount] = {};
  std::atomic<std::uint64_t> dispatchFallbacks_{0};
  std::atomic<std::uint64_t> dispatchConversions_{0};
  std::atomic<std::uint64_t> fusionGatesIn_{0};
  std::atomic<std::uint64_t> fusionBlocks_{0};
  std::atomic<std::uint64_t> fusionSweepsSaved_{0};
  ShardedCounters gateByKind_;
};

/// The process-wide registry.
inline Metrics& metrics() {
  static Metrics instance;
  return instance;
}

}  // namespace qclab::obs

#else  // QCLAB_OBS_DISABLED

#include <cstdint>
#include <map>
#include <string>

#include "qclab/sim/dispatch_mode.hpp"
#include "qclab/sim/kernel_path.hpp"
#include "qclab/sim/memory_advisor.hpp"

namespace qclab::obs {

inline constexpr bool kEnabled = false;

/// API-identical no-op registry: every mutator is empty, every reader
/// returns zero, so instrumented call sites compile away entirely.
class Metrics {
 public:
  void countGate(sim::KernelPath, const char*, std::uint64_t) {}
  void countBranchSpawn() {}
  void countBranchPrune() {}
  void countShots(std::uint64_t) {}
  void countCircuitSimulation() {}
  void countNoiseChannel() {}
  void countTrajectoryRun(std::uint64_t) {}
  void countBatchRun(std::uint64_t) {}
  void countDispatchRoute(sim::DispatchRoute) {}
  void countDispatchFallback() {}
  void countDispatchConversion() {}
  void countFusion(std::uint64_t, std::uint64_t, std::uint64_t) {}
  void addStateBytes(std::uint64_t) {}
  void releaseStateBytes(std::uint64_t) {}
  void addTierBytes(sim::StateTier, std::uint64_t, std::uint64_t) {}
  void releaseTierBytes(sim::StateTier, std::uint64_t, std::uint64_t) {}
  void countPrefetch(std::uint64_t, std::uint64_t, std::uint64_t) {}
  void reset() {}

  std::uint64_t gateApplications() const { return 0; }
  std::uint64_t gateApplications(sim::KernelPath) const { return 0; }
  std::map<std::string, std::uint64_t> gateKinds() const { return {}; }
  std::uint64_t bytesTouched() const { return 0; }
  std::uint64_t bytesTouched(sim::KernelPath) const { return 0; }
  std::uint64_t currentStateBytes() const { return 0; }
  std::uint64_t peakStateBytes() const { return 0; }
  std::uint64_t tierResidentBytes(sim::StateTier) const { return 0; }
  std::uint64_t tierMappedBytes(sim::StateTier) const { return 0; }
  std::uint64_t prefetchIssued() const { return 0; }
  std::uint64_t prefetchHits() const { return 0; }
  std::uint64_t prefetchRetired() const { return 0; }
  std::uint64_t branchSpawns() const { return 0; }
  std::uint64_t branchPrunes() const { return 0; }
  std::uint64_t shotsSampled() const { return 0; }
  std::uint64_t circuitSimulations() const { return 0; }
  std::uint64_t noiseChannelApplications() const { return 0; }
  std::uint64_t trajectoryRuns() const { return 0; }
  std::uint64_t trajectoriesSimulated() const { return 0; }
  std::uint64_t batchRuns() const { return 0; }
  std::uint64_t batchMembersSimulated() const { return 0; }
  std::uint64_t dispatchRoutes(sim::DispatchRoute) const { return 0; }
  std::uint64_t dispatchRoutesTotal() const { return 0; }
  std::uint64_t dispatchFallbacks() const { return 0; }
  std::uint64_t dispatchConversions() const { return 0; }
  std::uint64_t fusionGatesIn() const { return 0; }
  std::uint64_t fusionBlocks() const { return 0; }
  std::uint64_t fusionSweepsSaved() const { return 0; }
};

inline Metrics& metrics() {
  static Metrics instance;
  return instance;
}

}  // namespace qclab::obs

#endif  // QCLAB_OBS_DISABLED

#pragma once

/// \file obs.hpp
/// \brief Umbrella header of the observability layer (qclab::obs):
/// counters (metrics.hpp), per-path latency histograms (histogram.hpp),
/// scoped-span tracing with Chrome trace_event export (trace.hpp),
/// aggregate text/JSON reporting (report.hpp), shared JSON escaping
/// (json.hpp), and the metering backend decorator (instrumented.hpp).
///
/// Compile with QCLAB_OBS_DISABLED (CMake: -DQCLAB_OBS_DISABLED=ON) to
/// turn the whole layer into API-identical no-ops.

#include "qclab/obs/histogram.hpp"
#include "qclab/obs/instrumented.hpp"
#include "qclab/obs/json.hpp"
#include "qclab/obs/metrics.hpp"
#include "qclab/obs/report.hpp"
#include "qclab/obs/trace.hpp"

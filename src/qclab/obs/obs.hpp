#pragma once

/// \file obs.hpp
/// \brief Umbrella header of the observability layer (qclab::obs):
/// counters (metrics.hpp), per-path latency histograms (histogram.hpp),
/// scoped-span tracing with Chrome trace_event export and pipeline-stage
/// aggregation (trace.hpp), hardware perf-counter sampling
/// (perfcounters.hpp), roofline attribution (roofline.hpp), aggregate
/// text/JSON reporting (report.hpp), the OpenMetrics exposition renderer
/// (openmetrics.hpp), shared JSON escaping (json.hpp), the metering
/// backend decorator (instrumented.hpp), the always-on flight recorder
/// (flightrecorder.hpp), numerical-health sentinels (sentinel.hpp),
/// signal-safe crash diagnostics (crashdump.hpp), and the SIGPROF
/// sampling profiler (profiler.hpp).
///
/// Compile with QCLAB_OBS_DISABLED (CMake: -DQCLAB_OBS_DISABLED=ON) to
/// turn the whole layer into API-identical no-ops.

#include "qclab/obs/crashdump.hpp"
#include "qclab/obs/flightrecorder.hpp"
#include "qclab/obs/histogram.hpp"
#include "qclab/obs/instrumented.hpp"
#include "qclab/obs/json.hpp"
#include "qclab/obs/metrics.hpp"
#include "qclab/obs/openmetrics.hpp"
#include "qclab/obs/perfcounters.hpp"
#include "qclab/obs/profiler.hpp"
#include "qclab/obs/report.hpp"
#include "qclab/obs/roofline.hpp"
#include "qclab/obs/sentinel.hpp"
#include "qclab/obs/trace.hpp"

namespace qclab::obs {

/// Zeroes every obs registry — counters, latency histograms, stage
/// aggregates, perf-counter totals, flight rings, sentinel counters, and
/// profiler samples — and clears the tracer's ring buffer.  The
/// start-of-measured-region reset used by benches and tests.
inline void resetAll() {
  metrics().reset();
  latencyHistograms().reset();
  stageStats().reset();
  perfRegistry().reset();
  tracer().clear();
  flightRecorder().reset();
  sentinel().reset();
  profiler().reset();
}

}  // namespace qclab::obs

#pragma once

/// \file profiler.hpp
/// \brief SIGPROF sampling profiler attributing CPU time to stage spans
/// and kernel paths, exported as collapsed stacks (flamegraph input).
///
/// start() arms an ITIMER_PROF interval timer; the kernel delivers
/// SIGPROF to whichever thread is burning CPU, and the handler snapshots
/// that thread's signal-safe stage-span stack (SpanFrameStack, trace.hpp
/// — interned static strings maintained by ScopedSpan) plus the kernel
/// path currently under a PathTimer (histogram.hpp).  Each distinct
/// (frames, path) pair becomes one slot in a fixed open-addressed table;
/// a sample is a CAS-free count bump on an existing slot or a CAS claim
/// of an empty one.  No allocation, no locks, no formatting in the
/// handler — everything textual happens later in folded()/collapsed().
///
/// Output is the classic collapsed-stack format, one line per distinct
/// stack: "simulate;execute;path:avx2 42\n" — feed it straight to
/// flamegraph.pl or speedscope.  Samples that land outside any span and
/// any timer fold into "(untracked)".
///
/// The profiler is strictly opt-in (a repro binary's --obs-prof flag or
/// an explicit start() call): SIGPROF at ~1 kHz is cheap but not free,
/// and always-on duty belongs to the flight recorder.  Under
/// QCLAB_OBS_DISABLED, or off POSIX, the class is an API-identical no-op.

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "qclab/obs/histogram.hpp"
#include "qclab/obs/trace.hpp"
#include "qclab/sim/kernel_path.hpp"

#if !defined(QCLAB_OBS_DISABLED) && \
    (defined(__linux__) || defined(__APPLE__))
#define QCLAB_OBS_PROFILER_POSIX 1
#endif

#ifdef QCLAB_OBS_PROFILER_POSIX
#include <signal.h>
#include <sys/time.h>

#include <atomic>
#include <cstdio>
#endif

namespace qclab::obs {

#ifdef QCLAB_OBS_PROFILER_POSIX

namespace detail {
inline void profilerSignalHandler(int);
}  // namespace detail

/// The SIGPROF sampler.  One process-wide instance (profiler()).
class SamplingProfiler {
 public:
  static constexpr int kMaxFrames = 16;    ///< span frames kept per sample
  static constexpr int kTableSlots = 1024; ///< distinct (stack, path) pairs
  static constexpr int kMaxProbes = 16;    ///< linear probes before drop

  /// Arms SIGPROF at `hz` samples/second.  Returns false (and changes
  /// nothing) when already running.  997 Hz default: prime, so sampling
  /// does not phase-lock with millisecond-periodic work.
  bool start(int hz = 997) {
    bool expected = false;
    if (!running_.compare_exchange_strong(expected, true)) return false;
    if (hz <= 0) hz = 997;

    struct sigaction action = {};
    action.sa_handler = &detail::profilerSignalHandler;
    action.sa_flags = SA_RESTART;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(SIGPROF, &action, &previousAction_);

    itimerval timer = {};
    timer.it_interval.tv_sec = 0;
    timer.it_interval.tv_usec = 1000000 / hz;
    if (timer.it_interval.tv_usec == 0) timer.it_interval.tv_usec = 1;
    timer.it_value = timer.it_interval;
    ::setitimer(ITIMER_PROF, &timer, nullptr);
    return true;
  }

  /// Disarms the timer and restores the previous SIGPROF disposition.
  void stop() {
    bool expected = true;
    if (!running_.compare_exchange_strong(expected, false)) return;
    itimerval off = {};
    ::setitimer(ITIMER_PROF, &off, nullptr);
    ::sigaction(SIGPROF, &previousAction_, nullptr);
  }

  bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }

  /// The handler body: attribute one sample to the interrupted thread's
  /// current (span frames, kernel path).  Async-signal-safe.
  void handleSample() noexcept {
    samples_.fetch_add(1, std::memory_order_relaxed);

    // Snapshot this thread's span frames (interned static strings).
    const SpanFrameStack& spanStack = spanFrames();
    int depth = spanStack.depth.load(std::memory_order_acquire);
    if (depth > kMaxFrames) depth = kMaxFrames;
    if (depth > SpanFrameStack::kMaxDepth) depth = SpanFrameStack::kMaxDepth;
    const char* frames[kMaxFrames];
    int kept = 0;
    for (int d = 0; d < depth; ++d) {
      const char* frame = spanStack.frames[d];
      if (frame != nullptr) frames[kept++] = frame;
    }
    const int path = detail::currentTimedPath().load(std::memory_order_relaxed);

    // FNV-1a over the frame pointers + path (pointer identity is stack
    // identity: frames are interned).
    std::uint64_t hash = 1469598103934665603ull;
    const auto mix = [&hash](std::uint64_t value) noexcept {
      hash ^= value;
      hash *= 1099511628211ull;
    };
    for (int d = 0; d < kept; ++d) {
      mix(reinterpret_cast<std::uint64_t>(frames[d]));
    }
    mix(static_cast<std::uint64_t>(path) + 0x9e3779b9u);
    mix(static_cast<std::uint64_t>(kept));

    for (int probe = 0; probe < kMaxProbes; ++probe) {
      Slot& slot = table_[(hash + static_cast<std::uint64_t>(probe)) &
                          (kTableSlots - 1)];
      const int state = slot.state.load(std::memory_order_acquire);
      if (state == 2) {
        if (slot.depth == kept && slot.path == path) {
          bool match = true;
          for (int d = 0; d < kept; ++d) {
            if (slot.frames[d] != frames[d]) {
              match = false;
              break;
            }
          }
          if (match) {
            slot.count.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
        continue;  // occupied by a different stack: keep probing
      }
      if (state == 0) {
        int expected = 0;
        if (slot.state.compare_exchange_strong(expected, 1,
                                               std::memory_order_acq_rel)) {
          slot.depth = kept;
          slot.path = path;
          for (int d = 0; d < kept; ++d) slot.frames[d] = frames[d];
          slot.count.store(1, std::memory_order_relaxed);
          slot.state.store(2, std::memory_order_release);
          return;
        }
      }
      // state == 1: another thread is mid-claim; try the next slot.
    }
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Total samples taken (including dropped ones).
  std::uint64_t samples() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }

  /// Samples dropped because the table probe sequence was exhausted.
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Number of distinct (stack, path) pairs observed.
  std::uint64_t distinctStacks() const noexcept {
    std::uint64_t n = 0;
    for (const Slot& slot : table_) {
      if (slot.state.load(std::memory_order_acquire) == 2) ++n;
    }
    return n;
  }

  /// Folded stacks: "frame;frame;path:<name>" -> sample count.  Merges
  /// slots that render identically.  NOT signal-safe.
  std::map<std::string, std::uint64_t> folded() const {
    std::map<std::string, std::uint64_t> out;
    for (const Slot& slot : table_) {
      if (slot.state.load(std::memory_order_acquire) != 2) continue;
      std::string key;
      for (int d = 0; d < slot.depth; ++d) {
        if (!key.empty()) key += ';';
        key += slot.frames[d];
      }
      if (slot.path >= 0 && slot.path < sim::kKernelPathCount) {
        if (!key.empty()) key += ';';
        key += "path:";
        key += sim::kernelPathName(static_cast<sim::KernelPath>(slot.path));
      }
      if (key.empty()) key = "(untracked)";
      out[key] += slot.count.load(std::memory_order_relaxed);
    }
    return out;
  }

  /// Collapsed-stack text, one "stack count\n" line per distinct stack,
  /// sorted by stack name — direct flamegraph.pl / speedscope input.
  std::string collapsed() const {
    std::string out;
    for (const auto& [stack, count] : folded()) {
      out += stack;
      out += ' ';
      out += std::to_string(count);
      out += '\n';
    }
    return out;
  }

  /// Writes collapsed() to `path`.  Returns false on I/O failure.
  bool writeCollapsed(const std::string& path) const {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) return false;
    const std::string text = collapsed();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), file) == text.size();
    return std::fclose(file) == 0 && ok;
  }

  /// Clears the table and counters.  Refuses while running (the handler
  /// could race a half-cleared slot).  Returns true when cleared.
  bool reset() noexcept {
    if (running()) return false;
    for (Slot& slot : table_) {
      slot.state.store(0, std::memory_order_relaxed);
      slot.count.store(0, std::memory_order_relaxed);
      slot.depth = 0;
      slot.path = -1;
      for (const char*& frame : slot.frames) frame = nullptr;
    }
    samples_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
    return true;
  }

 private:
  /// One distinct (stack, path) aggregate.  state: 0 empty, 1 claiming,
  /// 2 ready.  frames/depth/path are written exactly once, between the
  /// claim and the release-store of state 2.
  struct Slot {
    std::atomic<int> state{0};
    std::atomic<std::uint64_t> count{0};
    int depth = 0;
    int path = -1;
    const char* frames[kMaxFrames] = {};
  };

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> dropped_{0};
  struct sigaction previousAction_ = {};
  Slot table_[kTableSlots];
};

/// The process-wide sampling profiler.
inline SamplingProfiler& profiler() {
  static SamplingProfiler instance;
  return instance;
}

namespace detail {
inline void profilerSignalHandler(int) { profiler().handleSample(); }
}  // namespace detail

#else  // !QCLAB_OBS_PROFILER_POSIX

/// No-op profiler (obs disabled, or no POSIX signals).
class SamplingProfiler {
 public:
  static constexpr int kMaxFrames = 16;
  static constexpr int kTableSlots = 1024;

  bool start(int = 997) { return false; }
  void stop() {}
  bool running() const noexcept { return false; }
  void handleSample() noexcept {}
  std::uint64_t samples() const noexcept { return 0; }
  std::uint64_t dropped() const noexcept { return 0; }
  std::uint64_t distinctStacks() const noexcept { return 0; }
  std::map<std::string, std::uint64_t> folded() const { return {}; }
  std::string collapsed() const { return std::string(); }
  // Writes an empty file so `--obs-prof <path>` stays usable (and
  // successful) in disabled builds instead of failing the process.
  bool writeCollapsed(const std::string& path) const {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) return false;
    std::fclose(file);
    return true;
  }
  bool reset() noexcept { return true; }
};

inline SamplingProfiler& profiler() {
  static SamplingProfiler instance;
  return instance;
}

#endif  // QCLAB_OBS_PROFILER_POSIX

}  // namespace qclab::obs

#pragma once

/// \file roofline.hpp
/// \brief Roofline attribution: measured peak bandwidth vs. achieved rates.
///
/// The roofline model places every kernel path on a bandwidth/compute
/// plane: a path streaming near the machine's peak memory bandwidth is
/// memory-bound (faster math cannot help; blocking and fusion can), one
/// far below peak with a high IPC is compute-bound.  The peak is measured
/// once per process by a STREAM-style triad sweep (a[i] = b[i] + s*c[i])
/// over a working set far larger than the last-level cache; achieved GB/s
/// per path comes from the obs v2 bytes-touched estimates divided by the
/// summed histogram time, and the classification folds in the perf-counter
/// LLC miss rate / IPC when the host PMU delivers them.
///
/// Calibration is lazy (first rooflineCalibration() call, ~20-50 ms) and
/// overridable: QCLAB_OBS_PEAK_GBPS pins the peak without measuring,
/// QCLAB_OBS_NO_ROOFLINE skips calibration entirely.  QCLAB_OBS_DISABLED
/// builds never measure and render an explicit unavailable marker.

#include <cstdint>
#include <string>

#include "qclab/obs/perfcounters.hpp"
#include "qclab/sim/kernel_path.hpp"

#ifndef QCLAB_OBS_DISABLED
#include <chrono>
#include <cstdlib>
#include <vector>
#endif

namespace qclab::obs {

/// Result of the one-shot peak-bandwidth calibration.
struct RooflineCalibration {
  bool measured = false;      ///< peakGBps holds a usable value
  double peakGBps = 0.0;      ///< best triad bandwidth (decimal GB/s)
  double calibrationMs = 0.0; ///< wall time spent calibrating
  std::uint64_t bufferBytes = 0;  ///< triad working-set size
  std::string source;         ///< "stream-triad", "env:...", or skip reason
};

/// Representative floating-point operations per amplitude touched by a
/// kernel path (complex mult = 6 flops, complex add = 2 flops).  SWAP
/// moves data without arithmetic; diagonal paths pay one complex multiply
/// per amplitude; dense single-qubit rows cost 2 mults + 1 add per output
/// amplitude; dense k-qubit blocks are tabulated at the common k=2 shape.
inline double flopsPerAmp(sim::KernelPath path) noexcept {
  switch (path) {
    case sim::KernelPath::kSwap:
      return 0.0;
    case sim::KernelPath::kDiagonal1:
    case sim::KernelPath::kControlledDiagonal1:
    case sim::KernelPath::kDiagonalK:
    case sim::KernelPath::kFusedDiagonalK:
    case sim::KernelPath::kSimdDiagonal1:
      return 6.0;
    case sim::KernelPath::kDense1:
    case sim::KernelPath::kControlled1:
    case sim::KernelPath::kSimdDense1:
    case sim::KernelPath::kTrajectory:
      return 14.0;
    case sim::KernelPath::kDenseK:
    case sim::KernelPath::kFusedDenseK:
    case sim::KernelPath::kSimdDenseK:
    case sim::KernelPath::kBlocked:
      return 30.0;
    case sim::KernelPath::kSparseKron:
      return 8.0;
    default:
      return 14.0;
  }
}

/// Bytes the bytes-touched estimator attributes per touched amplitude on a
/// path (mirrors bytesTouchedEstimate: full-state paths stream read +
/// write, SWAP counts the moved half once, sparse pays a build pass).
inline double bytesPerAmp(sim::KernelPath path) noexcept {
  switch (path) {
    case sim::KernelPath::kSwap:
      return 16.0;
    case sim::KernelPath::kSparseKron:
      return 64.0;
    default:
      return 32.0;
  }
}

#ifndef QCLAB_OBS_DISABLED

/// Measures (once per process) the peak streaming bandwidth with a
/// STREAM-style triad, or adopts the QCLAB_OBS_PEAK_GBPS override.
inline const RooflineCalibration& rooflineCalibration() {
  static const RooflineCalibration calibration = [] {
    RooflineCalibration cal;
    if (const char* pinned = std::getenv("QCLAB_OBS_PEAK_GBPS")) {
      const double value = std::atof(pinned);
      if (value > 0.0) {
        cal.measured = true;
        cal.peakGBps = value;
        cal.source = "env:QCLAB_OBS_PEAK_GBPS";
        return cal;
      }
    }
    if (std::getenv("QCLAB_OBS_NO_ROOFLINE") != nullptr) {
      cal.source = "skipped (QCLAB_OBS_NO_ROOFLINE)";
      return cal;
    }
    // 3 x 16 MiB of doubles: comfortably past any LLC so the triad
    // streams from DRAM, small enough to calibrate in tens of ms.
    constexpr std::int64_t n = std::int64_t{1} << 21;
    std::vector<double> a(static_cast<std::size_t>(n), 1.0);
    std::vector<double> b(static_cast<std::size_t>(n), 2.0);
    std::vector<double> c(static_cast<std::size_t>(n), 0.5);
    const double scalar = 3.0;
    const auto wallStart = std::chrono::steady_clock::now();
    double best = 0.0;
    for (int iter = 0; iter < 4; ++iter) {  // iter 0 warms pages + caches
      const auto sweepStart = std::chrono::steady_clock::now();
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
      for (std::int64_t i = 0; i < n; ++i) {
        a[static_cast<std::size_t>(i)] =
            b[static_cast<std::size_t>(i)] +
            scalar * c[static_cast<std::size_t>(i)];
      }
      const double sweepNs = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - sweepStart)
              .count());
      if (iter == 0 || sweepNs <= 0.0) continue;
      // Triad traffic: read b, read c, write a = 24 bytes per element.
      const double gbps = 24.0 * static_cast<double>(n) / sweepNs;
      if (gbps > best) best = gbps;
    }
    volatile double sink = a[0];  // keep the triad observable
    (void)sink;
    cal.measured = best > 0.0;
    cal.peakGBps = best;
    cal.bufferBytes = 3 * static_cast<std::uint64_t>(n) * sizeof(double);
    cal.calibrationMs =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - wallStart)
                .count()) /
        1e3;
    cal.source = "stream-triad";
    return cal;
  }();
  return calibration;
}

#else  // QCLAB_OBS_DISABLED

/// Disabled builds never calibrate: explicit unavailable marker.
inline const RooflineCalibration& rooflineCalibration() {
  static const RooflineCalibration calibration = [] {
    RooflineCalibration cal;
    cal.source = "observability disabled (QCLAB_OBS_DISABLED)";
    return cal;
  }();
  return calibration;
}

#endif  // QCLAB_OBS_DISABLED

/// One kernel path placed on the roofline plane.
struct RooflinePoint {
  double achievedGBps = 0.0;           ///< bytes touched / timed ns
  double fractionOfPeak = 0.0;         ///< achieved / calibrated peak
  double estGflops = 0.0;              ///< estimated arithmetic rate
  double intensityFlopsPerByte = 0.0;  ///< estimated flops per byte moved
  std::string classification;          ///< memory-/compute-bound verdict
};

/// Boundedness verdict for a path: streaming at >= 50% of peak is
/// memory-bound outright; below that the PMU decides (LLC miss rate, then
/// IPC); with no PMU the bandwidth fraction alone decides, and a path with
/// no data is indeterminate.
inline std::string classifyBoundedness(double fractionOfPeak,
                                       const PerfCounts& perf) {
  if (fractionOfPeak >= 0.5) return "memory-bound";
  if (!perf.empty() && perf.llcReferences > 0) {
    return perf.llcMissRate() > 0.20 ? "memory-bound" : "compute-bound";
  }
  if (!perf.empty() && perf.cycles > 0) {
    return perf.ipc() < 1.0 ? "memory-bound" : "compute-bound";
  }
  if (fractionOfPeak > 0.0) {
    return fractionOfPeak >= 0.25 ? "memory-bound" : "compute-bound";
  }
  return "indeterminate";
}

/// Places a path on the roofline from its accumulated bytes-touched
/// estimate, summed timed nanoseconds, and perf-counter totals.
inline RooflinePoint rooflinePoint(sim::KernelPath path, std::uint64_t bytes,
                                   std::uint64_t ns,
                                   const PerfCounts& perf) {
  RooflinePoint point;
  if (bytes == 0 || ns == 0) {
    point.classification = "idle";
    return point;
  }
  point.achievedGBps =
      static_cast<double>(bytes) / static_cast<double>(ns);
  point.intensityFlopsPerByte = flopsPerAmp(path) / bytesPerAmp(path);
  point.estGflops = point.achievedGBps * point.intensityFlopsPerByte;
  const RooflineCalibration& cal = rooflineCalibration();
  if (cal.measured && cal.peakGBps > 0.0) {
    point.fractionOfPeak = point.achievedGBps / cal.peakGBps;
  }
  point.classification = classifyBoundedness(point.fractionOfPeak, perf);
  return point;
}

}  // namespace qclab::obs

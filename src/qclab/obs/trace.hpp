#pragma once

/// \file trace.hpp
/// \brief Scoped-span tracer with Chrome trace_event export.
///
/// A Span records wall-clock begin/end of a region (a whole simulate call,
/// a single gate application) into a fixed-capacity ring buffer; when the
/// buffer is full the oldest events are overwritten and counted as
/// dropped.  The buffer exports as Chrome trace_event JSON ("X" complete
/// events), loadable in about:tracing or https://ui.perfetto.dev — nesting
/// is inferred from time containment on the single displayed track.
///
/// The tracer is disabled by default (a disabled tracer only costs one
/// branch per span); enable() turns recording on.  Compiling with
/// QCLAB_OBS_DISABLED replaces Tracer and Span with API-identical no-ops.

#include <cstdint>
#include <string>
#include <vector>

#include "qclab/obs/json.hpp"

#ifndef QCLAB_OBS_DISABLED
#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>
#endif

namespace qclab::obs {

/// One completed span.
struct TraceEvent {
  std::string name;          ///< span label (gate mnemonic, "simulate", ...)
  const char* category;      ///< coarse grouping: "gate", "circuit", ...
  std::uint64_t startNs;     ///< begin, ns since tracer epoch
  std::uint64_t durationNs;  ///< duration in ns
};

#ifndef QCLAB_OBS_DISABLED

/// Ring-buffered span recorder.
class Tracer {
 public:
  /// `capacity` = maximum retained spans (oldest evicted beyond that).
  explicit Tracer(std::size_t capacity = std::size_t{1} << 16)
      : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {}

  /// Turns recording on/off.  Off (the default) makes spans ~free.
  void enable() noexcept { enabled_ = true; }
  void disable() noexcept { enabled_ = false; }
  bool enabled() const noexcept { return enabled_; }

  /// Discards all recorded events and the dropped count.
  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  /// Nanoseconds since this tracer was constructed.
  std::uint64_t nowNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Appends a completed span (ring semantics when at capacity).
  void record(std::string name, const char* category, std::uint64_t startNs,
              std::uint64_t durationNs) {
    if (!enabled_ || capacity_ == 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    TraceEvent event{std::move(name), category, startNs, durationNs};
    if (events_.size() < capacity_) {
      events_.push_back(std::move(event));
    } else {
      events_[head_] = std::move(event);
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }

  /// Recorded events, oldest first.
  std::vector<TraceEvent> events() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceEvent> ordered;
    ordered.reserve(events_.size());
    for (std::size_t i = 0; i < events_.size(); ++i) {
      ordered.push_back(events_[(head_ + i) % events_.size()]);
    }
    return ordered;
  }

  /// Number of recorded (retained) events.
  std::size_t nbEvents() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
  }

  /// Number of events evicted because the ring was full.
  std::uint64_t dropped() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

  /// Chrome trace_event JSON of the retained spans ("X" complete events,
  /// microsecond timestamps).  Open in about:tracing or Perfetto.
  std::string chromeTraceJson() const {
    std::ostringstream out;
    out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const auto& event : events()) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"" << jsonEscape(event.name) << "\",\"cat\":\""
          << jsonEscape(event.category) << "\",\"ph\":\"X\",\"ts\":"
          << static_cast<double>(event.startNs) / 1e3 << ",\"dur\":"
          << static_cast<double>(event.durationNs) / 1e3
          << ",\"pid\":0,\"tid\":0}";
    }
    out << "]}";
    return out.str();
  }

  /// Writes chromeTraceJson() to `path`.  Returns false on I/O failure.
  bool writeChromeTrace(const std::string& path) const {
    std::ofstream file(path);
    if (!file) return false;
    file << chromeTraceJson() << "\n";
    return static_cast<bool>(file);
  }

 private:
  std::size_t capacity_;
  bool enabled_ = false;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::size_t head_ = 0;       // oldest element once the ring is full
  std::uint64_t dropped_ = 0;  // evicted events
};

/// The process-wide tracer.
inline Tracer& tracer() {
  static Tracer instance;
  return instance;
}

/// RAII span: records [construction, destruction) into a tracer.
class Span {
 public:
  Span(Tracer& tracer, std::string name, const char* category) noexcept
      : tracer_(tracer),
        name_(std::move(name)),
        category_(category),
        startNs_(tracer.enabled() ? tracer.nowNs() : 0),
        active_(tracer.enabled()) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (active_) {
      tracer_.record(std::move(name_), category_, startNs_,
                     tracer_.nowNs() - startNs_);
    }
  }

 private:
  Tracer& tracer_;
  std::string name_;
  const char* category_;
  std::uint64_t startNs_;
  bool active_;
};

#else  // QCLAB_OBS_DISABLED

/// No-op tracer: same API, records nothing, exports an empty trace.
class Tracer {
 public:
  explicit Tracer(std::size_t = 0) {}
  void enable() noexcept {}
  void disable() noexcept {}
  bool enabled() const noexcept { return false; }
  void clear() {}
  std::uint64_t nowNs() const { return 0; }
  void record(std::string, const char*, std::uint64_t, std::uint64_t) {}
  std::vector<TraceEvent> events() const { return {}; }
  std::size_t nbEvents() const { return 0; }
  std::uint64_t dropped() const { return 0; }
  std::string chromeTraceJson() const {
    return "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}";
  }
  bool writeChromeTrace(const std::string&) const { return false; }
};

inline Tracer& tracer() {
  static Tracer instance;
  return instance;
}

/// No-op span.
class Span {
 public:
  Span(Tracer&, std::string, const char*) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // QCLAB_OBS_DISABLED

}  // namespace qclab::obs

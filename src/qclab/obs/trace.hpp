#pragma once

/// \file trace.hpp
/// \brief Scoped-span tracer with Chrome trace_event export.
///
/// A Span records wall-clock begin/end of a region (a whole simulate call,
/// a single gate application) into a fixed-capacity ring buffer; when the
/// buffer is full the oldest events are overwritten and counted as
/// dropped.  The buffer exports as Chrome trace_event JSON ("X" complete
/// events), loadable in about:tracing or https://ui.perfetto.dev — nesting
/// is inferred from time containment on the single displayed track.
///
/// The tracer is disabled by default (a disabled tracer only costs one
/// branch per span); enable() turns recording on.
///
/// ScopedSpan is the hierarchical variant for pipeline stages (QASM parse,
/// optimize, fusion planning, state allocation, execute, measurement): a
/// thread-local stack links each span to its enclosing parent, the parent
/// name and depth export into the Chrome trace "args", and every span
/// additionally accumulates (count, summed ns) into the always-on
/// StageStats registry — so reports carry a "stages" breakdown even when
/// the tracer itself is off.  Compiling with QCLAB_OBS_DISABLED replaces
/// Tracer, Span, ScopedSpan, and StageStats with API-identical no-ops.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "qclab/obs/json.hpp"

#ifndef QCLAB_OBS_DISABLED
#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>
#endif

namespace qclab::obs {

/// One completed span.
struct TraceEvent {
  std::string name;          ///< span label (gate mnemonic, "simulate", ...)
  const char* category;      ///< coarse grouping: "gate", "circuit", ...
  std::uint64_t startNs;     ///< begin, ns since tracer epoch
  std::uint64_t durationNs;  ///< duration in ns
  std::string parent;        ///< enclosing ScopedSpan name ("" = root)
  int depth = 0;             ///< nesting depth (0 = root)
};

/// Accumulated wall time of one pipeline stage.
struct StageAgg {
  std::uint64_t count = 0;  ///< completed spans of this stage
  std::uint64_t sumNs = 0;  ///< summed span durations in ns
};

#ifndef QCLAB_OBS_DISABLED

/// Ring-buffered span recorder.
class Tracer {
 public:
  /// `capacity` = maximum retained spans (oldest evicted beyond that).
  explicit Tracer(std::size_t capacity = std::size_t{1} << 16)
      : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {}

  /// Turns recording on/off.  Off (the default) makes spans ~free.
  void enable() noexcept { enabled_ = true; }
  void disable() noexcept { enabled_ = false; }
  bool enabled() const noexcept { return enabled_; }

  /// Discards all recorded events and the dropped count.
  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  /// Nanoseconds since this tracer was constructed.
  std::uint64_t nowNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Appends a completed span (ring semantics when at capacity).  The
  /// optional `parent`/`depth` carry ScopedSpan nesting into the export.
  void record(std::string name, const char* category, std::uint64_t startNs,
              std::uint64_t durationNs, std::string parent = "",
              int depth = 0) {
    if (!enabled_ || capacity_ == 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    TraceEvent event{std::move(name), category,          startNs,
                     durationNs,      std::move(parent), depth};
    if (events_.size() < capacity_) {
      events_.push_back(std::move(event));
    } else {
      events_[head_] = std::move(event);
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }

  /// Recorded events, oldest first.
  std::vector<TraceEvent> events() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceEvent> ordered;
    ordered.reserve(events_.size());
    for (std::size_t i = 0; i < events_.size(); ++i) {
      ordered.push_back(events_[(head_ + i) % events_.size()]);
    }
    return ordered;
  }

  /// Number of recorded (retained) events.
  std::size_t nbEvents() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
  }

  /// Number of events evicted because the ring was full.
  std::uint64_t dropped() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

  /// Chrome trace_event JSON of the retained spans ("X" complete events,
  /// microsecond timestamps).  Open in about:tracing or Perfetto.  The
  /// top-level "droppedEvents" records ring evictions so truncation is
  /// visible in the artifact itself; ScopedSpan nesting exports as
  /// per-event args.
  std::string chromeTraceJson() const {
    std::ostringstream out;
    const auto ordered = events();
    out << "{\"displayTimeUnit\":\"ns\",\"droppedEvents\":" << dropped()
        << ",\"retainedEvents\":" << ordered.size() << ",\"traceEvents\":[";
    bool first = true;
    for (const auto& event : ordered) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"" << jsonEscape(event.name) << "\",\"cat\":\""
          << jsonEscape(event.category) << "\",\"ph\":\"X\",\"ts\":"
          << static_cast<double>(event.startNs) / 1e3 << ",\"dur\":"
          << static_cast<double>(event.durationNs) / 1e3
          << ",\"pid\":0,\"tid\":0";
      if (!event.parent.empty() || event.depth != 0) {
        out << ",\"args\":{\"parent\":\"" << jsonEscape(event.parent)
            << "\",\"depth\":" << event.depth << "}";
      }
      out << "}";
    }
    out << "]}";
    return out.str();
  }

  /// Writes chromeTraceJson() to `path`.  Returns false on I/O failure.
  bool writeChromeTrace(const std::string& path) const {
    std::ofstream file(path);
    if (!file) return false;
    file << chromeTraceJson() << "\n";
    return static_cast<bool>(file);
  }

 private:
  std::size_t capacity_;
  bool enabled_ = false;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::size_t head_ = 0;       // oldest element once the ring is full
  std::uint64_t dropped_ = 0;  // evicted events
};

/// The process-wide tracer.
inline Tracer& tracer() {
  static Tracer instance;
  return instance;
}

/// RAII span: records [construction, destruction) into a tracer.
class Span {
 public:
  Span(Tracer& tracer, std::string name, const char* category) noexcept
      : tracer_(tracer),
        name_(std::move(name)),
        category_(category),
        startNs_(tracer.enabled() ? tracer.nowNs() : 0),
        active_(tracer.enabled()) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (active_) {
      tracer_.record(std::move(name_), category_, startNs_,
                     tracer_.nowNs() - startNs_);
    }
  }

 private:
  Tracer& tracer_;
  std::string name_;
  const char* category_;
  std::uint64_t startNs_;
  bool active_;
};

/// Always-on accumulation of pipeline-stage wall time.  Stages fire once
/// per simulate/parse/optimize call (never per gate), so a mutex-guarded
/// map is cheap; reports render the snapshot as the "stages" section even
/// when the tracer is disabled.
class StageStats {
 public:
  /// Adds one completed `ns` span to `stage`.
  void record(const std::string& stage, std::uint64_t ns) {
    const std::lock_guard<std::mutex> lock(mutex_);
    StageAgg& agg = stages_[stage];
    ++agg.count;
    agg.sumNs += ns;
  }

  /// Copy of every stage's totals.
  std::map<std::string, StageAgg> snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stages_;
  }

  /// Forgets every stage.
  void reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    stages_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, StageAgg> stages_;
};

/// The process-wide stage accumulator.
inline StageStats& stageStats() {
  static StageStats instance;
  return instance;
}

/// Async-signal-safe mirror of each thread's ScopedSpan nesting: a fixed
/// array of interned stage-key pointers plus an atomic depth.  The crash
/// handler (crashdump.hpp) reads the crashing thread's own stack, and the
/// SIGPROF sampling profiler (profiler.hpp) reads it from interrupted
/// threads — both with plain loads of static-lifetime strings, no
/// allocation, no locks.  Depths beyond kMaxDepth keep counting but stop
/// storing frames (the overflow is visible as depth > kMaxDepth).
struct SpanFrameStack {
  static constexpr int kMaxDepth = 32;
  const char* frames[kMaxDepth] = {};
  std::atomic<int> depth{0};
};

/// This thread's frame stack (constant-initialized thread_local: safe to
/// touch from signal handlers once any span has run on the thread).
inline SpanFrameStack& spanFrames() noexcept {
  thread_local SpanFrameStack stack;
  return stack;
}

/// Interns `key` into a process-lifetime pool and returns a stable
/// const char* — the currency of SpanFrameStack and the profiler's sample
/// table (pointer equality == key equality).  The pool is leaked on
/// purpose so crash handlers can read frames during static destruction.
inline const char* internStageKey(const std::string& key) {
  static std::mutex mutex;
  static std::set<std::string>* pool = new std::set<std::string>();
  const std::lock_guard<std::mutex> lock(mutex);
  return pool->insert(key).first->c_str();
}

/// RAII hierarchical span for pipeline stages.  A thread-local stack links
/// nested ScopedSpans: each records its enclosing span's name and its
/// depth into the trace (when the tracer is enabled) and always
/// accumulates its duration into stageStats() under `stageKey` (defaults
/// to `name`; pass a stable key when the display name carries run-specific
/// detail such as the qubit count).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, const char* category = "stage",
                      std::string stageKey = std::string())
      : name_(std::move(name)),
        stageKey_(stageKey.empty() ? name_ : std::move(stageKey)),
        category_(category),
        startNs_(tracer().nowNs()) {
    auto& stack = spanStack();
    if (!stack.empty()) parent_ = *stack.back();
    depth_ = static_cast<int>(stack.size());
    stack.push_back(&name_);
    // Mirror onto the signal-safe frame stack (interned pointer: stable
    // for the process lifetime, readable from crash/profiler handlers).
    SpanFrameStack& frames = spanFrames();
    const int d = frames.depth.load(std::memory_order_relaxed);
    if (d >= 0 && d < SpanFrameStack::kMaxDepth) {
      frames.frames[d] = internStageKey(stageKey_);
    }
    frames.depth.store(d + 1, std::memory_order_release);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    auto& stack = spanStack();
    if (!stack.empty() && stack.back() == &name_) stack.pop_back();
    SpanFrameStack& frames = spanFrames();
    const int d = frames.depth.load(std::memory_order_relaxed);
    if (d > 0) frames.depth.store(d - 1, std::memory_order_release);
    const std::uint64_t durationNs = tracer().nowNs() - startNs_;
    stageStats().record(stageKey_, durationNs);
    if (tracer().enabled()) {
      tracer().record(std::move(name_), category_, startNs_, durationNs,
                      std::move(parent_), depth_);
    }
  }

 private:
  static std::vector<const std::string*>& spanStack() {
    thread_local std::vector<const std::string*> stack;
    return stack;
  }

  std::string name_;
  std::string stageKey_;
  std::string parent_;
  const char* category_;
  std::uint64_t startNs_;
  int depth_ = 0;
};

#else  // QCLAB_OBS_DISABLED

/// No-op tracer: same API, records nothing, exports an empty trace.
class Tracer {
 public:
  explicit Tracer(std::size_t = 0) {}
  void enable() noexcept {}
  void disable() noexcept {}
  bool enabled() const noexcept { return false; }
  void clear() {}
  std::uint64_t nowNs() const { return 0; }
  void record(std::string, const char*, std::uint64_t, std::uint64_t,
              std::string = "", int = 0) {}
  std::vector<TraceEvent> events() const { return {}; }
  std::size_t nbEvents() const { return 0; }
  std::uint64_t dropped() const { return 0; }
  std::string chromeTraceJson() const {
    return "{\"displayTimeUnit\":\"ns\",\"droppedEvents\":0,"
           "\"retainedEvents\":0,\"traceEvents\":[]}";
  }
  bool writeChromeTrace(const std::string&) const { return false; }
};

inline Tracer& tracer() {
  static Tracer instance;
  return instance;
}

/// No-op span.
class Span {
 public:
  Span(Tracer&, std::string, const char*) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

/// No-op stage accumulator.
class StageStats {
 public:
  void record(const std::string&, std::uint64_t) {}
  std::map<std::string, StageAgg> snapshot() const { return {}; }
  void reset() {}
};

inline StageStats& stageStats() {
  static StageStats instance;
  return instance;
}

/// No-op hierarchical span.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string, const char* = "stage",
                      std::string = std::string()) noexcept {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#endif  // QCLAB_OBS_DISABLED

}  // namespace qclab::obs

#pragma once

/// \file instrumented.hpp
/// \brief Backend decorator that meters every gate application.
///
/// InstrumentedBackend<T> wraps any sim::Backend<T> and, per applyGate,
///  - asks the inner backend which kernel path it dispatches the gate to
///    (Backend::dispatchPath — the decorator seam, see DESIGN.md),
///  - counts the application by path and by gate kind in obs::metrics(),
///    with an estimate of the state-vector bytes touched,
///  - times the inner application into the per-path latency histogram
///    (obs::latencyHistograms(), histogram.hpp), feeding the p50/p90/p99
///    and effective-bandwidth figures of the v2 reports,
///  - records a trace span named after the gate when obs::tracer() is
///    enabled.
///
/// The decorator is opt-in and adds a per-gate cost (a label string and a
/// counter update, ~100ns) that the bare backends never pay.  Under
/// QCLAB_OBS_DISABLED it degenerates to a pure forwarder, so instrumented
/// and plain runs are bit-identical.

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "qclab/obs/flightrecorder.hpp"
#include "qclab/obs/histogram.hpp"
#include "qclab/obs/metrics.hpp"
#include "qclab/obs/trace.hpp"
#include "qclab/sim/backend.hpp"
#include "qclab/sim/kernel_path.hpp"

namespace qclab::obs {

/// Rough estimate of the state-vector bytes read + written when applying a
/// gate over a `dim`-amplitude state through `path`.  Intentionally
/// simple: full-state paths stream every amplitude in and out, SWAP moves
/// only the half with differing bits, a controlled gate touches only its
/// active subspace, and the sparse path pays an extra construction pass.
template <typename T>
std::uint64_t bytesTouchedEstimate(sim::KernelPath path, std::size_t dim,
                                   const qgates::QGate<T>& gate) {
  const std::uint64_t amp = sizeof(std::complex<T>);
  switch (path) {
    case sim::KernelPath::kSwap:
      return dim * amp;
    case sim::KernelPath::kControlled1:
    case sim::KernelPath::kControlledDiagonal1:
      return 2 * (static_cast<std::uint64_t>(dim) >> gate.controls().size()) *
             amp;
    case sim::KernelPath::kSparseKron:
      return 4 * dim * amp;
    default:
      return 2 * dim * amp;
  }
}

/// Metering decorator over any gate-application backend.
template <typename T>
class InstrumentedBackend final : public sim::Backend<T> {
 public:
  /// Wraps `inner` (kept by reference: it must outlive the decorator).
  explicit InstrumentedBackend(
      const sim::Backend<T>& inner = sim::defaultBackend<T>())
      : inner_(inner),
        name_(std::string("instrumented(") + inner.name() + ")") {}

  void applyGate(sim::StateSpan<T> state, int nbQubits,
                 const qgates::QGate<T>& gate,
                 int offset = 0) const override {
    if constexpr (kEnabled) {
      // dispatchPath stays the backend's truth; the counted path is
      // remapped to the kSimd* variant when the vector tier is active,
      // so reports attribute the work to the tier that did it.
      const sim::KernelPath path = sim::simdCountedPath(
          inner_.dispatchPath(gate), gate.nbQubits());
      std::string kind = qgates::gateKindLabel(gate);
      {
        const Span span(tracer(), kind, "gate");
        const PathTimer timer(path);
        inner_.applyGate(state, nbQubits, gate, offset);
      }
      metrics().countGate(path, kind.c_str(),
                          bytesTouchedEstimate(path, state.size(), gate));
      flightRecorder().record(FlightEventKind::kGate,
                              static_cast<std::uint16_t>(path),
                              qubitMask64(gate.qubits()));
    } else {
      inner_.applyGate(state, nbQubits, gate, offset);
    }
  }

  sim::KernelPath dispatchPath(const qgates::QGate<T>& gate) const override {
    return inner_.dispatchPath(gate);
  }

  const char* name() const noexcept override { return name_.c_str(); }

  /// The wrapped backend.
  const sim::Backend<T>& inner() const noexcept { return inner_; }

 private:
  const sim::Backend<T>& inner_;
  std::string name_;
};

}  // namespace qclab::obs

#pragma once

/// \file flightrecorder.hpp
/// \brief Always-on, lock-free per-thread flight recorder.
///
/// The postmortem complement of the counters and traces: a fixed-size ring
/// buffer per recording thread holds the last ~64k compact binary events
/// (gate kind of event, kernel path, qubit mask, timestamp, batch member
/// index), so when a long-running process crashes or hangs, the crash
/// handler (crashdump.hpp) — or an explicit obs::dumpNow() — can show what
/// every thread was doing *right before* things went wrong.  No file I/O
/// happens on the hot path; recording is one steady-clock read plus plain
/// stores and a release store of the ring head.
///
/// Design constraints, in order:
///  - RECORDING must be cheap enough to leave on (<3% end-to-end on the
///    GHZ n=20 overhead bench, enforced by bench_obs_overhead): the ring
///    is thread-private, so there is no sharing, no CAS, no mutex on the
///    record path — the only synchronization is the release store that
///    publishes the new head to readers.
///  - READING must be possible from an async signal handler on a crashed
///    process: rings are heap blocks published onto an atomic intrusive
///    list and NEVER freed, so a handler can walk the list with plain
///    loads regardless of which thread crashed.  Reads race benignly with
///    in-flight writers (a torn event at the ring head of a *live* thread
///    can misreport that one slot; every other slot is quiescent).
///
/// The recorder is enabled by default ("always-on black box");
/// QCLAB_OBS_FLIGHT=off (or 0) disables it at process start, and
/// enable()/disable() toggle it at runtime (the overhead bench uses this
/// to measure the plain side honestly).  Under QCLAB_OBS_DISABLED the
/// whole class is an API-identical no-op and no ring memory is allocated.

#include <cstdint>
#include <vector>

#include "qclab/obs/trace.hpp"

#ifndef QCLAB_OBS_DISABLED
#include <atomic>
#include <cstdlib>
#include <cstring>
#endif

namespace qclab::obs {

/// What a flight-recorder event describes.
enum class FlightEventKind : std::uint16_t {
  kGate = 0,       ///< one gate application (InstrumentedBackend)
  kFusedBlock,     ///< one fused-block full-state sweep (fusion engine)
  kBlockedRun,     ///< one cache-blocked chunked sweep (aux = blocks in run)
  kBatchMember,    ///< one batched member executed (aux = member index)
  kSentinelAlert,  ///< a numerical-health violation (aux: 1 NaN, 2 norm)
};

/// Stable short name of an event kind (static storage: safe to read from
/// signal handlers).
inline const char* flightEventKindName(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kGate:          return "gate";
    case FlightEventKind::kFusedBlock:    return "fused-block";
    case FlightEventKind::kBlockedRun:    return "blocked-run";
    case FlightEventKind::kBatchMember:   return "batch-member";
    case FlightEventKind::kSentinelAlert: return "sentinel-alert";
  }
  return "unknown";
}

/// One compact binary event (24 bytes).
struct FlightEvent {
  std::uint64_t timeNs = 0;     ///< ns since the tracer epoch
  std::uint64_t qubitMask = 0;  ///< bit q set = qubit q involved (q < 64)
  std::uint32_t aux = 0;        ///< kind-specific extra (batch member, ...)
  std::uint16_t kind = 0;       ///< FlightEventKind
  std::uint16_t path = 0;       ///< sim::KernelPath of the work
};

/// Events retained per recording thread (power of two).
inline constexpr std::size_t kFlightRingCapacity = std::size_t{1} << 16;

/// Bitmask over qubit indices < 64 (qubits beyond 64 are dropped from the
/// mask, not from the event).
inline std::uint64_t qubitMask64(const std::vector<int>& qubits) noexcept {
  std::uint64_t mask = 0;
  for (const int q : qubits) {
    if (q >= 0 && q < 64) mask |= std::uint64_t{1} << q;
  }
  return mask;
}

/// Copy of one thread's ring for reporting.
struct FlightThreadSnapshot {
  std::uint32_t threadId = 0;       ///< recorder-assigned sequential id
  std::uint64_t recorded = 0;       ///< events ever recorded by the thread
  std::vector<FlightEvent> events;  ///< retained events, oldest first
};

#ifndef QCLAB_OBS_DISABLED

/// One thread's ring.  Heap-allocated on the owning thread's first record,
/// pushed onto an atomic intrusive list, and intentionally never freed so
/// crash handlers can walk rings of exited threads.  ~1.5 MB per thread
/// that ever recorded.
struct FlightRing {
  std::atomic<std::uint64_t> head{0};  ///< events ever recorded (monotonic)
  std::uint32_t threadId = 0;
  FlightRing* next = nullptr;  ///< intrusive list, newest ring first
  FlightEvent events[kFlightRingCapacity];
};

/// The process-wide flight recorder.
class FlightRecorder {
 public:
  FlightRecorder() {
    const char* env = std::getenv("QCLAB_OBS_FLIGHT");
    if (env != nullptr &&
        (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0)) {
      enabled_.store(false, std::memory_order_relaxed);
    }
  }

  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept {
    enabled_.store(false, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one event into this thread's ring (lock-free; the ring is
  /// created on the thread's first record).
  void record(FlightEventKind kind, std::uint16_t path,
              std::uint64_t qubitMask, std::uint32_t aux = 0) noexcept {
    if (!enabled()) return;
    FlightRing* ring = localRing();
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    FlightEvent& slot = ring->events[head & (kFlightRingCapacity - 1)];
    slot.timeNs = tracer().nowNs();
    slot.qubitMask = qubitMask;
    slot.aux = aux;
    slot.kind = static_cast<std::uint16_t>(kind);
    slot.path = path;
    ring->head.store(head + 1, std::memory_order_release);
  }

  /// Head of the ring list for lock-free walks (crash handler).  Each
  /// ring's `next` and `threadId` are immutable after publication; `head`
  /// is an atomic the walker loads with acquire.
  const FlightRing* rings() const noexcept {
    return ringsHead_.load(std::memory_order_acquire);
  }

  /// Number of threads that ever recorded.
  std::size_t threadCount() const noexcept {
    std::size_t n = 0;
    for (const FlightRing* ring = rings(); ring != nullptr;
         ring = ring->next) {
      ++n;
    }
    return n;
  }

  /// Total events ever recorded across all threads.
  std::uint64_t totalRecorded() const noexcept {
    std::uint64_t total = 0;
    for (const FlightRing* ring = rings(); ring != nullptr;
         ring = ring->next) {
      total += ring->head.load(std::memory_order_acquire);
    }
    return total;
  }

  /// Per-thread copies of the retained events, oldest first (reporting /
  /// tests; NOT signal-safe — handlers walk rings() directly).
  std::vector<FlightThreadSnapshot> snapshot() const {
    std::vector<FlightThreadSnapshot> out;
    for (const FlightRing* ring = rings(); ring != nullptr;
         ring = ring->next) {
      FlightThreadSnapshot snap;
      snap.threadId = ring->threadId;
      snap.recorded = ring->head.load(std::memory_order_acquire);
      const std::uint64_t retained =
          snap.recorded < kFlightRingCapacity ? snap.recorded
                                              : kFlightRingCapacity;
      snap.events.reserve(static_cast<std::size_t>(retained));
      const std::uint64_t start = snap.recorded - retained;
      for (std::uint64_t i = 0; i < retained; ++i) {
        snap.events.push_back(
            ring->events[(start + i) & (kFlightRingCapacity - 1)]);
      }
      out.push_back(std::move(snap));
    }
    return out;
  }

  /// Rewinds every ring (start of a measured region).  Racy against
  /// concurrently recording threads — call from quiescent points only, as
  /// with every other obs reset.
  void reset() noexcept {
    for (const FlightRing* ring = rings(); ring != nullptr;
         ring = ring->next) {
      const_cast<FlightRing*>(ring)->head.store(0,
                                                std::memory_order_relaxed);
    }
  }

 private:
  /// This thread's ring, allocated and published on first use.
  FlightRing* localRing() {
    thread_local FlightRing* cached = nullptr;
    if (cached == nullptr) {
      FlightRing* ring = new FlightRing();
      ring->threadId = nextThreadId_.fetch_add(1, std::memory_order_relaxed);
      FlightRing* head = ringsHead_.load(std::memory_order_relaxed);
      do {
        ring->next = head;
      } while (!ringsHead_.compare_exchange_weak(head, ring,
                                                 std::memory_order_release,
                                                 std::memory_order_relaxed));
      cached = ring;
    }
    return cached;
  }

  std::atomic<bool> enabled_{true};
  std::atomic<FlightRing*> ringsHead_{nullptr};
  std::atomic<std::uint32_t> nextThreadId_{0};
};

/// The process-wide recorder.
inline FlightRecorder& flightRecorder() {
  static FlightRecorder instance;
  return instance;
}

#else  // QCLAB_OBS_DISABLED

/// No-op recorder: same API, records nothing, allocates nothing.
class FlightRecorder {
 public:
  void enable() noexcept {}
  void disable() noexcept {}
  bool enabled() const noexcept { return false; }
  void record(FlightEventKind, std::uint16_t, std::uint64_t,
              std::uint32_t = 0) noexcept {}
  std::size_t threadCount() const noexcept { return 0; }
  std::uint64_t totalRecorded() const noexcept { return 0; }
  std::vector<FlightThreadSnapshot> snapshot() const { return {}; }
  void reset() noexcept {}
};

inline FlightRecorder& flightRecorder() {
  static FlightRecorder instance;
  return instance;
}

#endif  // QCLAB_OBS_DISABLED

}  // namespace qclab::obs

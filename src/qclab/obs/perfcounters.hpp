#pragma once

/// \file perfcounters.hpp
/// \brief Hardware performance-counter sampling per kernel path.
///
/// A PerfScope reads a perf_event_open counter group at construction and
/// destruction and accumulates the deltas — cycles, instructions, LLC
/// references/misses, stalled cycles, task-clock, page faults — into a
/// process-wide PerfRegistry keyed by sim::KernelPath.  PathTimer embeds a
/// PerfScope, so every timed kernel scope also attributes IPC and LLC miss
/// rate to its path.
///
/// Availability is layered and probed once per process:
///  - hardware group (cycles + instructions required; LLC refs/misses and
///    stalled-cycles join when the PMU offers them),
///  - software group (task-clock, page-faults) independently, as many
///    virtualized hosts expose no PMU at all (perf_event_open returns
///    ENOENT for hardware events),
///  - neither: PerfCapability::reason carries the errno text and reports
///    render an explicit "unavailable" marker instead of numbers.
///
/// Sampling is additionally gated behind PerfRegistry::enable() (off by
/// default) so unit tests and library users pay only one branch per scope.
/// Non-Linux builds and QCLAB_OBS_DISABLED compile to API-identical no-ops.

#include <cstdint>
#include <string>

#include "qclab/sim/kernel_path.hpp"

#if !defined(QCLAB_OBS_DISABLED) && defined(__linux__)
#define QCLAB_OBS_PERF_LINUX 1
#endif

#ifndef QCLAB_OBS_DISABLED
#include <atomic>
#endif

#ifdef QCLAB_OBS_PERF_LINUX
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>
#endif

namespace qclab::obs {

/// Accumulated counter totals (raw sums over recorded scopes).
struct PerfCounts {
  std::uint64_t samples = 0;        ///< recorded PerfScope lifetimes
  std::uint64_t cycles = 0;         ///< PERF_COUNT_HW_CPU_CYCLES
  std::uint64_t instructions = 0;   ///< PERF_COUNT_HW_INSTRUCTIONS
  std::uint64_t llcReferences = 0;  ///< PERF_COUNT_HW_CACHE_REFERENCES
  std::uint64_t llcMisses = 0;      ///< PERF_COUNT_HW_CACHE_MISSES
  std::uint64_t stalledCycles = 0;  ///< PERF_COUNT_HW_STALLED_CYCLES_BACKEND
  std::uint64_t taskClockNs = 0;    ///< PERF_COUNT_SW_TASK_CLOCK (ns)
  std::uint64_t pageFaults = 0;     ///< PERF_COUNT_SW_PAGE_FAULTS

  bool empty() const noexcept { return samples == 0; }

  /// Instructions per cycle (0 when cycles were not measured).
  double ipc() const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }

  /// LLC misses / LLC references (0 when references were not measured).
  double llcMissRate() const noexcept {
    return llcReferences == 0 ? 0.0
                              : static_cast<double>(llcMisses) /
                                    static_cast<double>(llcReferences);
  }

  /// Backend-stalled cycles / cycles (0 when either was not measured).
  double stallFraction() const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(stalledCycles) /
                             static_cast<double>(cycles);
  }
};

/// What the host's PMU actually delivers, probed once per process.
struct PerfCapability {
  bool hardware = false;  ///< cycles + instructions opened
  bool llc = false;       ///< LLC references + misses joined the group
  bool stalled = false;   ///< stalled-cycles-backend joined the group
  bool software = false;  ///< task-clock + page-faults opened
  std::string reason;     ///< first failure, empty when fully available

  /// True when at least one counter group is live.
  bool any() const noexcept { return hardware || software; }
};

#ifndef QCLAB_OBS_DISABLED

#ifdef QCLAB_OBS_PERF_LINUX

namespace detail {

inline long perfEventOpen(perf_event_attr* attr, pid_t pid, int cpu,
                          int groupFd, unsigned long flags) {
  return ::syscall(SYS_perf_event_open, attr, pid, cpu, groupFd, flags);
}

/// One perf fd group owned by a single thread; all members are read in one
/// PERF_FORMAT_GROUP syscall on the leader.
class PerfEventGroup {
 public:
  PerfEventGroup() = default;
  PerfEventGroup(const PerfEventGroup&) = delete;
  PerfEventGroup& operator=(const PerfEventGroup&) = delete;

  ~PerfEventGroup() {
    for (const int fd : fds_) ::close(fd);
  }

  /// Opens a self-monitoring counter into this group.  Returns the slot
  /// index in group reads, or -1 (errno set) when the event is rejected.
  int add(std::uint32_t type, std::uint64_t config) {
    perf_event_attr attr{};
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.exclude_kernel = 1;  // self-profiling under perf_event_paranoid=2
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP;
    const int fd = static_cast<int>(
        perfEventOpen(&attr, 0, -1, leader_, 0));
    if (fd < 0) return -1;
    if (leader_ < 0) leader_ = fd;
    fds_.push_back(fd);
    return static_cast<int>(fds_.size()) - 1;
  }

  /// Reads all group members (creation order) into `values`.
  bool read(std::uint64_t* values, std::size_t capacity) const {
    if (leader_ < 0) return false;
    std::uint64_t buffer[1 + 8];  // nr + up to 8 members
    const ssize_t got = ::read(leader_, buffer, sizeof(buffer));
    if (got < static_cast<ssize_t>(sizeof(std::uint64_t))) return false;
    const std::uint64_t members = buffer[0];
    if (members > capacity || members > 8) return false;
    for (std::uint64_t i = 0; i < members; ++i) values[i] = buffer[1 + i];
    return true;
  }

  bool open() const noexcept { return leader_ >= 0; }

 private:
  int leader_ = -1;
  std::vector<int> fds_;
};

}  // namespace detail

/// Probes perf_event_open once and caches what this host can deliver.
inline const PerfCapability& perfCapability() {
  static const PerfCapability capability = [] {
    PerfCapability cap;
    const auto failure = [](const char* event) {
      return std::string("perf_event_open(") + event +
             ") failed: " + std::strerror(errno);
    };
    {
      detail::PerfEventGroup hw;
      const int cycles =
          hw.add(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
      if (cycles < 0) {
        cap.reason = failure("cycles");
      } else if (hw.add(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS) <
                 0) {
        cap.reason = failure("instructions");
      } else {
        cap.hardware = true;
        cap.llc =
            hw.add(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES) >=
                0 &&
            hw.add(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES) >= 0;
        cap.stalled = hw.add(PERF_TYPE_HARDWARE,
                             PERF_COUNT_HW_STALLED_CYCLES_BACKEND) >= 0;
      }
    }
    {
      detail::PerfEventGroup sw;
      cap.software =
          sw.add(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK) >= 0 &&
          sw.add(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS) >= 0;
      if (!cap.software && cap.reason.empty()) {
        cap.reason = failure("task-clock");
      }
    }
    return cap;
  }();
  return capability;
}

namespace detail {

/// The perf fds of one thread, laid out per the process-wide capability so
/// every thread shares the same slot mapping.  Counters run free; scopes
/// take start/end reads and record the deltas.
struct ThreadPerfEvents {
  PerfEventGroup hw;
  PerfEventGroup sw;
  int slotLlcReferences = -1;
  int slotLlcMisses = -1;
  int slotStalled = -1;
  bool hwOk = false;
  bool swOk = false;

  ThreadPerfEvents() {
    const PerfCapability& cap = perfCapability();
    if (cap.hardware) {
      hwOk = hw.add(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES) == 0 &&
             hw.add(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS) == 1;
      if (hwOk && cap.llc) {
        slotLlcReferences =
            hw.add(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES);
        slotLlcMisses =
            hw.add(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
      }
      if (hwOk && cap.stalled) {
        slotStalled = hw.add(PERF_TYPE_HARDWARE,
                             PERF_COUNT_HW_STALLED_CYCLES_BACKEND);
      }
    }
    if (cap.software) {
      swOk = sw.add(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK) == 0 &&
             sw.add(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS) == 1;
    }
  }

  bool usable() const noexcept { return hwOk || swOk; }

  /// Fills `out` with the running counter totals of this thread.
  bool sample(PerfCounts& out) const {
    bool any = false;
    if (hwOk) {
      std::uint64_t values[8] = {};
      if (hw.read(values, 8)) {
        out.cycles = values[0];
        out.instructions = values[1];
        if (slotLlcReferences >= 0) {
          out.llcReferences =
              values[static_cast<std::size_t>(slotLlcReferences)];
        }
        if (slotLlcMisses >= 0) {
          out.llcMisses = values[static_cast<std::size_t>(slotLlcMisses)];
        }
        if (slotStalled >= 0) {
          out.stalledCycles = values[static_cast<std::size_t>(slotStalled)];
        }
        any = true;
      }
    }
    if (swOk) {
      std::uint64_t values[2] = {};
      if (sw.read(values, 2)) {
        out.taskClockNs = values[0];  // task-clock reads in nanoseconds
        out.pageFaults = values[1];
        any = true;
      }
    }
    return any;
  }
};

inline ThreadPerfEvents& threadPerfEvents() {
  thread_local ThreadPerfEvents events;
  return events;
}

}  // namespace detail

#else  // !QCLAB_OBS_PERF_LINUX (obs enabled, non-Linux host)

/// Non-Linux hosts have no perf_event_open: report an explicit marker.
inline const PerfCapability& perfCapability() {
  static const PerfCapability capability = [] {
    PerfCapability cap;
    cap.reason = "perf_event_open is only available on Linux";
    return cap;
  }();
  return capability;
}

#endif  // QCLAB_OBS_PERF_LINUX

/// Process-wide per-path accumulation of PerfScope deltas.  Recording is
/// relaxed atomic adds; enable() gates sampling (off by default).
class PerfRegistry {
 public:
  /// Turns scope sampling on/off.  Off (the default) makes scopes ~free.
  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept {
    enabled_.store(false, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Adds one scope's counter deltas to `path`.
  void record(sim::KernelPath path, const PerfCounts& delta) noexcept {
    Cell& cell = cells_[static_cast<std::size_t>(path)];
    cell.samples.fetch_add(1, std::memory_order_relaxed);
    cell.cycles.fetch_add(delta.cycles, std::memory_order_relaxed);
    cell.instructions.fetch_add(delta.instructions,
                                std::memory_order_relaxed);
    cell.llcReferences.fetch_add(delta.llcReferences,
                                 std::memory_order_relaxed);
    cell.llcMisses.fetch_add(delta.llcMisses, std::memory_order_relaxed);
    cell.stalledCycles.fetch_add(delta.stalledCycles,
                                 std::memory_order_relaxed);
    cell.taskClockNs.fetch_add(delta.taskClockNs,
                               std::memory_order_relaxed);
    cell.pageFaults.fetch_add(delta.pageFaults, std::memory_order_relaxed);
  }

  /// Accumulated totals of `path`.
  PerfCounts counts(sim::KernelPath path) const noexcept {
    const Cell& cell = cells_[static_cast<std::size_t>(path)];
    PerfCounts out;
    out.samples = cell.samples.load(std::memory_order_relaxed);
    out.cycles = cell.cycles.load(std::memory_order_relaxed);
    out.instructions = cell.instructions.load(std::memory_order_relaxed);
    out.llcReferences = cell.llcReferences.load(std::memory_order_relaxed);
    out.llcMisses = cell.llcMisses.load(std::memory_order_relaxed);
    out.stalledCycles = cell.stalledCycles.load(std::memory_order_relaxed);
    out.taskClockNs = cell.taskClockNs.load(std::memory_order_relaxed);
    out.pageFaults = cell.pageFaults.load(std::memory_order_relaxed);
    return out;
  }

  /// Sum over every path.
  PerfCounts total() const noexcept {
    PerfCounts sum;
    for (int p = 0; p < sim::kKernelPathCount; ++p) {
      const PerfCounts c = counts(static_cast<sim::KernelPath>(p));
      sum.samples += c.samples;
      sum.cycles += c.cycles;
      sum.instructions += c.instructions;
      sum.llcReferences += c.llcReferences;
      sum.llcMisses += c.llcMisses;
      sum.stalledCycles += c.stalledCycles;
      sum.taskClockNs += c.taskClockNs;
      sum.pageFaults += c.pageFaults;
    }
    return sum;
  }

  /// Zeroes every accumulator (the enable gate is left as-is).
  void reset() noexcept {
    for (auto& cell : cells_) {
      cell.samples.store(0, std::memory_order_relaxed);
      cell.cycles.store(0, std::memory_order_relaxed);
      cell.instructions.store(0, std::memory_order_relaxed);
      cell.llcReferences.store(0, std::memory_order_relaxed);
      cell.llcMisses.store(0, std::memory_order_relaxed);
      cell.stalledCycles.store(0, std::memory_order_relaxed);
      cell.taskClockNs.store(0, std::memory_order_relaxed);
      cell.pageFaults.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> samples{0};
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::uint64_t> instructions{0};
    std::atomic<std::uint64_t> llcReferences{0};
    std::atomic<std::uint64_t> llcMisses{0};
    std::atomic<std::uint64_t> stalledCycles{0};
    std::atomic<std::uint64_t> taskClockNs{0};
    std::atomic<std::uint64_t> pageFaults{0};
  };

  std::atomic<bool> enabled_{false};
  Cell cells_[sim::kKernelPathCount];
};

/// The process-wide perf registry.
inline PerfRegistry& perfRegistry() {
  static PerfRegistry instance;
  return instance;
}

/// RAII counter scope: samples the thread's perf group at construction and
/// destruction and records the deltas against a kernel path.  Inactive
/// (one relaxed load) unless perfRegistry().enable() was called and the
/// host delivers at least one counter group.
class PerfScope {
 public:
  explicit PerfScope(sim::KernelPath path) noexcept : path_(path) {
#ifdef QCLAB_OBS_PERF_LINUX
    active_ = perfRegistry().enabled() &&
              detail::threadPerfEvents().sample(start_);
#endif
  }

  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

  ~PerfScope() {
#ifdef QCLAB_OBS_PERF_LINUX
    if (!active_) return;
    PerfCounts end;
    if (!detail::threadPerfEvents().sample(end)) return;
    PerfCounts delta;
    delta.cycles = end.cycles - start_.cycles;
    delta.instructions = end.instructions - start_.instructions;
    delta.llcReferences = end.llcReferences - start_.llcReferences;
    delta.llcMisses = end.llcMisses - start_.llcMisses;
    delta.stalledCycles = end.stalledCycles - start_.stalledCycles;
    delta.taskClockNs = end.taskClockNs - start_.taskClockNs;
    delta.pageFaults = end.pageFaults - start_.pageFaults;
    perfRegistry().record(path_, delta);
#endif
  }

 private:
  sim::KernelPath path_;
#ifdef QCLAB_OBS_PERF_LINUX
  PerfCounts start_;
  bool active_ = false;
#endif
};

#else  // QCLAB_OBS_DISABLED

/// Disabled builds have no perf surface at all.
inline const PerfCapability& perfCapability() {
  static const PerfCapability capability = [] {
    PerfCapability cap;
    cap.reason = "observability disabled (QCLAB_OBS_DISABLED)";
    return cap;
  }();
  return capability;
}

/// No-op registry: records nothing, reads all-zero.
class PerfRegistry {
 public:
  void enable() noexcept {}
  void disable() noexcept {}
  bool enabled() const noexcept { return false; }
  void record(sim::KernelPath, const PerfCounts&) noexcept {}
  PerfCounts counts(sim::KernelPath) const noexcept { return {}; }
  PerfCounts total() const noexcept { return {}; }
  void reset() noexcept {}
};

inline PerfRegistry& perfRegistry() {
  static PerfRegistry instance;
  return instance;
}

/// No-op scope.
class PerfScope {
 public:
  explicit PerfScope(sim::KernelPath) noexcept {}
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;
};

#endif  // QCLAB_OBS_DISABLED

}  // namespace qclab::obs

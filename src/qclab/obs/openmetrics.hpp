#pragma once

/// \file openmetrics.hpp
/// \brief OpenMetrics (Prometheus exposition) rendering of the obs state.
///
/// ObsSnapshot copies every live registry — counters, memory gauges,
/// per-path latency histograms, pipeline-stage aggregates, perf-counter
/// totals — at one point in time; snapshotDelta() subtracts a previous
/// snapshot so a long-running process (the ROADMAP's circuit-as-a-service
/// daemon) can expose per-scrape increments instead of lifetime totals.
/// renderOpenMetrics() serializes a snapshot in OpenMetrics text format:
/// `# TYPE` metadata per family, `_total`-suffixed counters, cumulative
/// `le` histogram buckets ending at `+Inf`, and the mandatory terminating
/// `# EOF` line.  `tools/qclab_metrics_dump` wraps this as a CLI.
///
/// Built entirely on the registry reader APIs, so the same code serves
/// QCLAB_OBS_DISABLED builds: every sample renders as zero and the
/// exposition stays valid.

#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "qclab/obs/flightrecorder.hpp"
#include "qclab/obs/histogram.hpp"
#include "qclab/obs/metrics.hpp"
#include "qclab/obs/perfcounters.hpp"
#include "qclab/obs/sentinel.hpp"
#include "qclab/obs/trace.hpp"
#include "qclab/sim/kernel_path.hpp"
#include "qclab/sim/simd.hpp"
#include "qclab/version.hpp"

namespace qclab::obs {

/// Point-in-time copy of every obs registry (counters are lifetime totals;
/// currentStateBytes/peakStateBytes are gauges).
struct ObsSnapshot {
  std::uint64_t gateApplications = 0;
  std::vector<std::uint64_t> gateByPath;   ///< kKernelPathCount entries
  std::map<std::string, std::uint64_t> gateByKind;
  std::uint64_t bytesTouched = 0;
  std::vector<std::uint64_t> bytesByPath;  ///< kKernelPathCount entries
  std::uint64_t branchSpawns = 0;
  std::uint64_t branchPrunes = 0;
  std::uint64_t shotsSampled = 0;
  std::uint64_t circuitSimulations = 0;
  std::uint64_t noiseChannelApplications = 0;
  std::uint64_t trajectoryRuns = 0;
  std::uint64_t trajectoriesSimulated = 0;
  std::uint64_t batchRuns = 0;
  std::uint64_t batchMembersSimulated = 0;
  std::uint64_t sentinelChecks = 0;
  std::uint64_t sentinelNanDetected = 0;
  std::uint64_t sentinelNormAlerts = 0;
  std::uint64_t flightEventsRecorded = 0;
  std::uint64_t fusionGatesIn = 0;
  std::uint64_t fusionBlocks = 0;
  std::uint64_t fusionSweepsSaved = 0;
  std::vector<std::uint64_t> dispatchRoutes;  ///< kDispatchRouteCount entries
  std::uint64_t dispatchFallbacks = 0;
  std::uint64_t dispatchConversions = 0;
  std::uint64_t currentStateBytes = 0;  ///< gauge
  std::uint64_t peakStateBytes = 0;     ///< gauge
  std::vector<std::uint64_t> tierResidentBytes;  ///< gauge, kStateTierCount
  std::vector<std::uint64_t> tierMappedBytes;    ///< gauge, kStateTierCount
  std::uint64_t prefetchIssued = 0;
  std::uint64_t prefetchHits = 0;
  std::uint64_t prefetchRetired = 0;
  std::vector<HistogramSnapshot> histograms;  ///< per kernel path
  std::map<std::string, StageAgg> stages;
  std::vector<PerfCounts> perf;               ///< per kernel path
};

/// Captures the current state of every registry.
inline ObsSnapshot captureSnapshot() {
  const Metrics& m = metrics();
  ObsSnapshot snap;
  snap.gateApplications = m.gateApplications();
  snap.bytesTouched = m.bytesTouched();
  snap.gateByPath.resize(sim::kKernelPathCount);
  snap.bytesByPath.resize(sim::kKernelPathCount);
  snap.histograms.resize(sim::kKernelPathCount);
  snap.perf.resize(sim::kKernelPathCount);
  for (int p = 0; p < sim::kKernelPathCount; ++p) {
    const auto path = static_cast<sim::KernelPath>(p);
    const auto i = static_cast<std::size_t>(p);
    snap.gateByPath[i] = m.gateApplications(path);
    snap.bytesByPath[i] = m.bytesTouched(path);
    snap.histograms[i] = latencyHistograms().histogram(path).snapshot();
    snap.perf[i] = perfRegistry().counts(path);
  }
  snap.gateByKind = m.gateKinds();
  snap.branchSpawns = m.branchSpawns();
  snap.branchPrunes = m.branchPrunes();
  snap.shotsSampled = m.shotsSampled();
  snap.circuitSimulations = m.circuitSimulations();
  snap.noiseChannelApplications = m.noiseChannelApplications();
  snap.trajectoryRuns = m.trajectoryRuns();
  snap.trajectoriesSimulated = m.trajectoriesSimulated();
  snap.batchRuns = m.batchRuns();
  snap.batchMembersSimulated = m.batchMembersSimulated();
  snap.sentinelChecks = sentinel().checks();
  snap.sentinelNanDetected = sentinel().nanDetected();
  snap.sentinelNormAlerts = sentinel().normAlerts();
  snap.flightEventsRecorded = flightRecorder().totalRecorded();
  snap.fusionGatesIn = m.fusionGatesIn();
  snap.fusionBlocks = m.fusionBlocks();
  snap.fusionSweepsSaved = m.fusionSweepsSaved();
  snap.dispatchRoutes.resize(sim::kDispatchRouteCount);
  for (int r = 0; r < sim::kDispatchRouteCount; ++r) {
    snap.dispatchRoutes[static_cast<std::size_t>(r)] =
        m.dispatchRoutes(static_cast<sim::DispatchRoute>(r));
  }
  snap.dispatchFallbacks = m.dispatchFallbacks();
  snap.dispatchConversions = m.dispatchConversions();
  snap.currentStateBytes = m.currentStateBytes();
  snap.peakStateBytes = m.peakStateBytes();
  snap.tierResidentBytes.resize(sim::kStateTierCount);
  snap.tierMappedBytes.resize(sim::kStateTierCount);
  for (int t = 0; t < sim::kStateTierCount; ++t) {
    const auto tier = static_cast<sim::StateTier>(t);
    snap.tierResidentBytes[static_cast<std::size_t>(t)] =
        m.tierResidentBytes(tier);
    snap.tierMappedBytes[static_cast<std::size_t>(t)] =
        m.tierMappedBytes(tier);
  }
  snap.prefetchIssued = m.prefetchIssued();
  snap.prefetchHits = m.prefetchHits();
  snap.prefetchRetired = m.prefetchRetired();
  snap.stages = stageStats().snapshot();
  return snap;
}

namespace detail {

inline std::uint64_t saturatingSub(std::uint64_t a,
                                   std::uint64_t b) noexcept {
  return a >= b ? a - b : 0;
}

}  // namespace detail

/// Captures the current state and subtracts `previous`: counters,
/// histogram buckets, stage aggregates, and perf totals become per-period
/// increments, while the memory gauges keep their current values.  The
/// scraping pattern is
///
///   ObsSnapshot last = captureSnapshot();
///   ... later, per scrape: ObsSnapshot delta = snapshotDelta(last);
///       last = captureSnapshot();
inline ObsSnapshot snapshotDelta(const ObsSnapshot& previous) {
  using detail::saturatingSub;
  ObsSnapshot delta = captureSnapshot();
  delta.gateApplications =
      saturatingSub(delta.gateApplications, previous.gateApplications);
  delta.bytesTouched =
      saturatingSub(delta.bytesTouched, previous.bytesTouched);
  for (std::size_t i = 0; i < delta.gateByPath.size(); ++i) {
    if (i < previous.gateByPath.size()) {
      delta.gateByPath[i] =
          saturatingSub(delta.gateByPath[i], previous.gateByPath[i]);
      delta.bytesByPath[i] =
          saturatingSub(delta.bytesByPath[i], previous.bytesByPath[i]);
    }
    const HistogramSnapshot* prior =
        i < previous.histograms.size() ? &previous.histograms[i] : nullptr;
    if (prior != nullptr) {
      HistogramSnapshot& h = delta.histograms[i];
      h.count = saturatingSub(h.count, prior->count);
      h.sumNs = saturatingSub(h.sumNs, prior->sumNs);
      for (std::size_t b = 0;
           b < h.buckets.size() && b < prior->buckets.size(); ++b) {
        h.buckets[b] = saturatingSub(h.buckets[b], prior->buckets[b]);
      }
    }
    const PerfCounts* priorPerf =
        i < previous.perf.size() ? &previous.perf[i] : nullptr;
    if (priorPerf != nullptr) {
      PerfCounts& c = delta.perf[i];
      c.samples = saturatingSub(c.samples, priorPerf->samples);
      c.cycles = saturatingSub(c.cycles, priorPerf->cycles);
      c.instructions =
          saturatingSub(c.instructions, priorPerf->instructions);
      c.llcReferences =
          saturatingSub(c.llcReferences, priorPerf->llcReferences);
      c.llcMisses = saturatingSub(c.llcMisses, priorPerf->llcMisses);
      c.stalledCycles =
          saturatingSub(c.stalledCycles, priorPerf->stalledCycles);
      c.taskClockNs = saturatingSub(c.taskClockNs, priorPerf->taskClockNs);
      c.pageFaults = saturatingSub(c.pageFaults, priorPerf->pageFaults);
    }
  }
  for (auto& [kind, count] : delta.gateByKind) {
    const auto prior = previous.gateByKind.find(kind);
    if (prior != previous.gateByKind.end()) {
      count = saturatingSub(count, prior->second);
    }
  }
  for (auto& [stage, agg] : delta.stages) {
    const auto prior = previous.stages.find(stage);
    if (prior != previous.stages.end()) {
      agg.count = saturatingSub(agg.count, prior->second.count);
      agg.sumNs = saturatingSub(agg.sumNs, prior->second.sumNs);
    }
  }
  delta.branchSpawns =
      saturatingSub(delta.branchSpawns, previous.branchSpawns);
  delta.branchPrunes =
      saturatingSub(delta.branchPrunes, previous.branchPrunes);
  delta.shotsSampled =
      saturatingSub(delta.shotsSampled, previous.shotsSampled);
  delta.circuitSimulations =
      saturatingSub(delta.circuitSimulations, previous.circuitSimulations);
  delta.noiseChannelApplications = saturatingSub(
      delta.noiseChannelApplications, previous.noiseChannelApplications);
  delta.trajectoryRuns =
      saturatingSub(delta.trajectoryRuns, previous.trajectoryRuns);
  delta.trajectoriesSimulated = saturatingSub(
      delta.trajectoriesSimulated, previous.trajectoriesSimulated);
  delta.batchRuns = saturatingSub(delta.batchRuns, previous.batchRuns);
  delta.batchMembersSimulated = saturatingSub(
      delta.batchMembersSimulated, previous.batchMembersSimulated);
  delta.sentinelChecks =
      saturatingSub(delta.sentinelChecks, previous.sentinelChecks);
  delta.sentinelNanDetected = saturatingSub(delta.sentinelNanDetected,
                                            previous.sentinelNanDetected);
  delta.sentinelNormAlerts = saturatingSub(delta.sentinelNormAlerts,
                                           previous.sentinelNormAlerts);
  delta.flightEventsRecorded = saturatingSub(
      delta.flightEventsRecorded, previous.flightEventsRecorded);
  delta.fusionGatesIn =
      saturatingSub(delta.fusionGatesIn, previous.fusionGatesIn);
  delta.fusionBlocks =
      saturatingSub(delta.fusionBlocks, previous.fusionBlocks);
  delta.fusionSweepsSaved =
      saturatingSub(delta.fusionSweepsSaved, previous.fusionSweepsSaved);
  for (std::size_t r = 0; r < delta.dispatchRoutes.size() &&
                          r < previous.dispatchRoutes.size();
       ++r) {
    delta.dispatchRoutes[r] =
        saturatingSub(delta.dispatchRoutes[r], previous.dispatchRoutes[r]);
  }
  delta.dispatchFallbacks =
      saturatingSub(delta.dispatchFallbacks, previous.dispatchFallbacks);
  delta.dispatchConversions =
      saturatingSub(delta.dispatchConversions, previous.dispatchConversions);
  // Tier bytes are gauges (kept current, like state bytes); the prefetch
  // walk counters are counters and delta like the rest.
  delta.prefetchIssued =
      saturatingSub(delta.prefetchIssued, previous.prefetchIssued);
  delta.prefetchHits = saturatingSub(delta.prefetchHits, previous.prefetchHits);
  delta.prefetchRetired =
      saturatingSub(delta.prefetchRetired, previous.prefetchRetired);
  return delta;
}

namespace detail {

/// Escapes a label value per the OpenMetrics text format (backslash,
/// double quote, and newline are the only escapable characters).
inline std::string openMetricsLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"':  out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default:   out += c;
    }
  }
  return out;
}

/// Shortest round-trippable decimal of a double for sample values.
inline std::string openMetricsNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace detail

/// Renders `snap` in OpenMetrics text format, terminated by `# EOF`.
inline std::string renderOpenMetrics(const ObsSnapshot& snap) {
  using detail::openMetricsLabel;
  using detail::openMetricsNumber;
  std::ostringstream out;

  out << "# TYPE qclab_build info\n"
      << "# HELP qclab_build Compile-time configuration of the qclab "
         "library.\n"
      << "qclab_build_info{version=\""
      << openMetricsLabel(versionString()) << "\",simd_level=\""
      << openMetricsLabel(sim::simdLevelName(sim::activeSimdLevel()))
      << "\",obs=\"" << (builtWithObs() ? "true" : "false") << "\"} 1\n";

  const auto counter = [&out](const char* name, const char* help,
                              std::uint64_t value) {
    out << "# TYPE " << name << " counter\n";
    if (help != nullptr) out << "# HELP " << name << " " << help << "\n";
    out << name << "_total " << value << "\n";
  };
  counter("qclab_gate_applications",
          "Gate applications counted by the instrumented backends.",
          snap.gateApplications);
  counter("qclab_bytes_touched",
          "Estimated state-vector bytes read and written.",
          snap.bytesTouched);
  counter("qclab_branch_spawns", nullptr, snap.branchSpawns);
  counter("qclab_branch_prunes", nullptr, snap.branchPrunes);
  counter("qclab_shots_sampled", nullptr, snap.shotsSampled);
  counter("qclab_circuit_simulations", nullptr, snap.circuitSimulations);
  counter("qclab_noise_channel_applications", nullptr,
          snap.noiseChannelApplications);
  counter("qclab_trajectory_runs", nullptr, snap.trajectoryRuns);
  counter("qclab_trajectories_simulated", nullptr,
          snap.trajectoriesSimulated);
  counter("qclab_batch_runs",
          "Batched multi-circuit executions (BatchedSimulation runs).",
          snap.batchRuns);
  counter("qclab_batch_members_simulated",
          "Parameter-set members executed across all batch runs.",
          snap.batchMembersSimulated);
  counter("qclab_sentinel_checks",
          "Numerical-health checks performed by the sentinels.",
          snap.sentinelChecks);
  counter("qclab_sentinel_nan_detected",
          "Sentinel checks that found non-finite amplitudes.",
          snap.sentinelNanDetected);
  counter("qclab_sentinel_norm_alerts",
          "Sentinel checks that found norm drift beyond tolerance.",
          snap.sentinelNormAlerts);
  counter("qclab_flight_events_recorded",
          "Events recorded by the always-on flight recorder.",
          snap.flightEventsRecorded);
  counter("qclab_fusion_gates_in", nullptr, snap.fusionGatesIn);
  counter("qclab_fusion_blocks", nullptr, snap.fusionBlocks);
  counter("qclab_fusion_sweeps_saved", nullptr, snap.fusionSweepsSaved);
  counter("qclab_dispatch_fallbacks",
          "Tableau-phase refusals that fell back to the statevector path.",
          snap.dispatchFallbacks);
  counter("qclab_dispatch_conversions",
          "Tableau branches expanded into statevectors at the conversion "
          "point.",
          snap.dispatchConversions);

  out << "# TYPE qclab_state_bytes gauge\n"
      << "# HELP qclab_state_bytes Live simulation-state bytes.\n"
      << "qclab_state_bytes " << snap.currentStateBytes << "\n";
  out << "# TYPE qclab_state_bytes_peak gauge\n"
      << "qclab_state_bytes_peak " << snap.peakStateBytes << "\n";

  // Per-tier memory gauges (state_buffer.hpp tier ladder): resident is
  // what the tier believes is backed by RAM, mapped is address space.
  out << "# TYPE qclab_state_tier_resident_bytes gauge\n"
      << "# HELP qclab_state_tier_resident_bytes Live state bytes "
         "resident in RAM per memory tier.\n";
  for (std::size_t t = 0; t < snap.tierResidentBytes.size(); ++t) {
    out << "qclab_state_tier_resident_bytes{tier=\""
        << openMetricsLabel(sim::stateTierName(
               static_cast<sim::StateTier>(static_cast<int>(t))))
        << "\"} " << snap.tierResidentBytes[t] << "\n";
  }
  out << "# TYPE qclab_state_tier_mapped_bytes gauge\n";
  for (std::size_t t = 0; t < snap.tierMappedBytes.size(); ++t) {
    out << "qclab_state_tier_mapped_bytes{tier=\""
        << openMetricsLabel(sim::stateTierName(
               static_cast<sim::StateTier>(static_cast<int>(t))))
        << "\"} " << snap.tierMappedBytes[t] << "\n";
  }
  counter("qclab_prefetch_issued",
          "madvise(WILLNEED) granules issued by the out-of-core walk.",
          snap.prefetchIssued);
  counter("qclab_prefetch_hits",
          "Prefetch requests that found the granule already resident.",
          snap.prefetchHits);
  counter("qclab_prefetch_retired",
          "madvise(DONTNEED) granules dropped behind the walk.",
          snap.prefetchRetired);

  const auto pathName = [](std::size_t i) {
    return sim::kernelPathName(
        static_cast<sim::KernelPath>(static_cast<int>(i)));
  };

  bool any = false;
  for (std::size_t i = 0; i < snap.gateByPath.size(); ++i) {
    if (snap.gateByPath[i] == 0) continue;
    if (!any) {
      out << "# TYPE qclab_path_gate_applications counter\n";
      any = true;
    }
    out << "qclab_path_gate_applications_total{path=\""
        << openMetricsLabel(pathName(i)) << "\"} " << snap.gateByPath[i]
        << "\n";
  }
  any = false;
  for (std::size_t i = 0; i < snap.bytesByPath.size(); ++i) {
    if (snap.bytesByPath[i] == 0) continue;
    if (!any) {
      out << "# TYPE qclab_path_bytes_touched counter\n";
      any = true;
    }
    out << "qclab_path_bytes_touched_total{path=\""
        << openMetricsLabel(pathName(i)) << "\"} " << snap.bytesByPath[i]
        << "\n";
  }
  if (!snap.gateByKind.empty()) {
    out << "# TYPE qclab_kind_gate_applications counter\n";
    for (const auto& [kind, count] : snap.gateByKind) {
      out << "qclab_kind_gate_applications_total{kind=\""
          << openMetricsLabel(kind) << "\"} " << count << "\n";
    }
  }
  any = false;
  for (std::size_t r = 0; r < snap.dispatchRoutes.size(); ++r) {
    if (snap.dispatchRoutes[r] == 0) continue;
    if (!any) {
      out << "# TYPE qclab_dispatch_routes counter\n"
          << "# HELP qclab_dispatch_routes Route decisions of the "
             "adaptive dispatcher.\n";
      any = true;
    }
    out << "qclab_dispatch_routes_total{route=\""
        << openMetricsLabel(sim::dispatchRouteName(
               static_cast<sim::DispatchRoute>(static_cast<int>(r))))
        << "\"} " << snap.dispatchRoutes[r] << "\n";
  }

  if (!snap.stages.empty()) {
    out << "# TYPE qclab_stage_runs counter\n";
    for (const auto& [stage, agg] : snap.stages) {
      out << "qclab_stage_runs_total{stage=\"" << openMetricsLabel(stage)
          << "\"} " << agg.count << "\n";
    }
    out << "# TYPE qclab_stage_duration_seconds counter\n"
        << "# HELP qclab_stage_duration_seconds Summed wall time per "
           "pipeline stage.\n";
    for (const auto& [stage, agg] : snap.stages) {
      out << "qclab_stage_duration_seconds_total{stage=\""
          << openMetricsLabel(stage) << "\"} "
          << openMetricsNumber(static_cast<double>(agg.sumNs) / 1e9)
          << "\n";
    }
  }

  // Per-path latency histograms: log2 ns buckets exported as cumulative
  // seconds-bounded `le` buckets, trailing empties folded into +Inf.
  any = false;
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    if (h.empty()) continue;
    if (!any) {
      out << "# TYPE qclab_path_latency_seconds histogram\n"
          << "# HELP qclab_path_latency_seconds Kernel latency per "
             "dispatch path.\n";
      any = true;
    }
    const std::string label = openMetricsLabel(pathName(i));
    int last = static_cast<int>(h.buckets.size()) - 1;
    while (last > 0 && h.buckets[static_cast<std::size_t>(last)] == 0) {
      --last;
    }
    std::uint64_t cumulative = 0;
    for (int b = 0; b <= last; ++b) {
      cumulative += h.buckets[static_cast<std::size_t>(b)];
      out << "qclab_path_latency_seconds_bucket{path=\"" << label
          << "\",le=\""
          << openMetricsNumber(HistogramSnapshot::bucketHighNs(b) / 1e9)
          << "\"} " << cumulative << "\n";
    }
    out << "qclab_path_latency_seconds_bucket{path=\"" << label
        << "\",le=\"+Inf\"} " << h.count << "\n";
    out << "qclab_path_latency_seconds_sum{path=\"" << label << "\"} "
        << openMetricsNumber(static_cast<double>(h.sumNs) / 1e9) << "\n";
    out << "qclab_path_latency_seconds_count{path=\"" << label << "\"} "
        << h.count << "\n";
  }

  // Hardware counter totals, only for paths with recorded scopes.
  struct PerfField {
    const char* family;
    std::uint64_t PerfCounts::* member;
    double scale;  // multiplies the raw value (1e-9 for ns -> seconds)
  };
  static const PerfField perfFields[] = {
      {"qclab_path_perf_samples", &PerfCounts::samples, 1.0},
      {"qclab_path_cpu_cycles", &PerfCounts::cycles, 1.0},
      {"qclab_path_instructions", &PerfCounts::instructions, 1.0},
      {"qclab_path_llc_references", &PerfCounts::llcReferences, 1.0},
      {"qclab_path_llc_misses", &PerfCounts::llcMisses, 1.0},
      {"qclab_path_stalled_cycles", &PerfCounts::stalledCycles, 1.0},
      {"qclab_path_task_clock_seconds", &PerfCounts::taskClockNs, 1e-9},
      {"qclab_path_page_faults", &PerfCounts::pageFaults, 1.0},
  };
  for (const PerfField& field : perfFields) {
    bool headed = false;
    for (std::size_t i = 0; i < snap.perf.size(); ++i) {
      if (snap.perf[i].empty()) continue;
      const std::uint64_t raw = snap.perf[i].*field.member;
      if (raw == 0) continue;
      if (!headed) {
        out << "# TYPE " << field.family << " counter\n";
        headed = true;
      }
      out << field.family << "_total{path=\""
          << openMetricsLabel(pathName(i)) << "\"} ";
      if (field.scale == 1.0) {
        out << raw;
      } else {
        out << openMetricsNumber(static_cast<double>(raw) * field.scale);
      }
      out << "\n";
    }
  }

  out << "# EOF\n";
  return out.str();
}

/// Renders the live registries (lifetime totals).
inline std::string renderOpenMetrics() {
  return renderOpenMetrics(captureSnapshot());
}

}  // namespace qclab::obs

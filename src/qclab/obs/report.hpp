#pragma once

/// \file report.hpp
/// \brief Aggregate export of the observability state.
///
/// A Report snapshots the global Metrics registry, latency histograms, and
/// Tracer, stamps the compile-time build configuration (qclab::buildInfo),
/// and optionally carries named measurement results (benchmark timings).
/// It renders as
///  - a pretty text block for terminals, and
///  - one JSON object in the repo's canonical BENCH_*.json shape
///    (schema "qclab-obs-v4"), so every bench and every instrumented run
///    exports machine-readable numbers the trajectory tooling can diff.
///
/// Each schema is a strict superset of the previous one.  v2 added
/// "histograms" (per-path log2 buckets with p50/p90/p99), "memory" (live
/// and high-water state bytes), and "bandwidth" (effective GB/s per path =
/// bytes touched / timed ns) to v1's counters/trace/results.  v3 added
///  - "perf": hardware-counter totals per kernel path (IPC, LLC miss
///    rate, stall fraction) or an explicit unavailable marker when the
///    host PMU delivers nothing (perfcounters.hpp),
///  - "roofline": the calibrated peak bandwidth and each path's achieved
///    GB/s, fraction of peak, and memory-/compute-bound classification
///    (roofline.hpp),
///  - "stages": pipeline-stage wall time (parse, optimize, fusion
///    planning, state allocation, execute, measurement) from the
///    always-on StageStats registry (trace.hpp).
/// v4 adds
///  - "sentinel": the numerical-health policy, check and alert counters,
///    last norm and peak amplitude, and the cost percentiles of the
///    checks themselves (sentinel.hpp),
///  - "flight": the always-on flight recorder's thread count and total
///    events recorded (flightrecorder.hpp; the events themselves are a
///    crash-dump concern, not a report concern),
///  - "profiler": SIGPROF sample totals and distinct stacks when the
///    sampling profiler ran (profiler.hpp).
/// Every quoted string goes through jsonEscape().
///
/// The same implementation serves QCLAB_OBS_DISABLED builds: the no-op
/// registries snapshot as all-zeros, and "obs": false marks the file.

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "qclab/obs/flightrecorder.hpp"
#include "qclab/obs/histogram.hpp"
#include "qclab/obs/json.hpp"
#include "qclab/obs/metrics.hpp"
#include "qclab/obs/perfcounters.hpp"
#include "qclab/obs/profiler.hpp"
#include "qclab/obs/roofline.hpp"
#include "qclab/obs/sentinel.hpp"
#include "qclab/obs/trace.hpp"
#include "qclab/sim/kernel_path.hpp"
#include "qclab/sim/simd.hpp"
#include "qclab/version.hpp"

namespace qclab::obs {

/// One named scalar measurement (e.g. a benchmark timing).
struct ReportResult {
  std::string name;   ///< e.g. "kernel/hadamard/n=12"
  double value;       ///< measured value
  std::string unit;   ///< e.g. "ns/op"
};

/// Snapshot + renderer of the observability state.
class Report {
 public:
  /// `name` identifies the run (bench binary, experiment, ...).
  explicit Report(std::string name) : name_(std::move(name)) {}

  /// Attaches a named measurement to the report.
  void add(std::string resultName, double value, std::string unit) {
    results_.push_back(
        {std::move(resultName), value, std::move(unit)});
  }

  const std::string& name() const noexcept { return name_; }
  const std::vector<ReportResult>& results() const noexcept {
    return results_;
  }

  /// Pretty text block: build line, counter table, latency percentiles,
  /// memory line, results table.
  std::string text() const {
    const Metrics& m = metrics();
    std::ostringstream out;
    out << "== qclab::obs report — " << name_ << " ==\n";
    out << "build: " << buildInfo() << "\n";
    out << "simd level: " << sim::simdLevelName(sim::activeSimdLevel())
        << " (detected " << sim::simdLevelName(sim::detectedSimdLevel())
        << ")\n";
    out << "gate applications: " << m.gateApplications() << "\n";
    for (int p = 0; p < sim::kKernelPathCount; ++p) {
      const auto path = static_cast<sim::KernelPath>(p);
      const std::uint64_t count = m.gateApplications(path);
      if (count == 0) continue;
      out << "  path " << std::left << std::setw(12)
          << sim::kernelPathName(path) << " " << count << "\n";
    }
    for (const auto& [kind, count] : m.gateKinds()) {
      out << "  kind " << std::left << std::setw(12) << kind << " " << count
          << "\n";
    }
    for (int p = 0; p < sim::kKernelPathCount; ++p) {
      const auto path = static_cast<sim::KernelPath>(p);
      const HistogramSnapshot snap =
          latencyHistograms().histogram(path).snapshot();
      if (snap.empty()) continue;
      out << "  latency " << std::left << std::setw(20)
          << sim::kernelPathName(path) << " p50 " << std::fixed
          << std::setprecision(0) << snap.percentileNs(0.50) << "ns  p90 "
          << snap.percentileNs(0.90) << "ns  p99 " << snap.percentileNs(0.99)
          << "ns  (" << snap.count << " samples)\n";
      const std::uint64_t pathBytes = m.bytesTouched(path);
      if (snap.sumNs > 0 && pathBytes > 0) {
        out << "  bandwidth " << std::left << std::setw(18)
            << sim::kernelPathName(path) << " " << std::setprecision(2)
            << static_cast<double>(pathBytes) /
                   static_cast<double>(snap.sumNs)
            << " GB/s (est.)\n";
      }
    }
    out << "bytes touched (est.): " << m.bytesTouched() << "\n";
    out << "state memory: " << m.currentStateBytes() << " live, "
        << m.peakStateBytes() << " peak\n";
    for (int t = 0; t < sim::kStateTierCount; ++t) {
      const auto tier = static_cast<sim::StateTier>(t);
      const std::uint64_t resident = m.tierResidentBytes(tier);
      const std::uint64_t mapped = m.tierMappedBytes(tier);
      if (resident == 0 && mapped == 0) continue;
      out << "  tier " << sim::stateTierName(tier) << ": " << resident
          << " resident, " << mapped << " mapped\n";
    }
    if (m.prefetchIssued() != 0 || m.prefetchHits() != 0 ||
        m.prefetchRetired() != 0) {
      out << "prefetch: " << m.prefetchIssued() << " issued, "
          << m.prefetchHits() << " hits, " << m.prefetchRetired()
          << " retired\n";
    }
    out << "branches: " << m.branchSpawns() << " spawned, "
        << m.branchPrunes() << " pruned\n";
    out << "shots sampled: " << m.shotsSampled() << "\n";
    out << "circuit simulations: " << m.circuitSimulations() << "\n";
    out << "noise channel applications: " << m.noiseChannelApplications()
        << "\n";
    if (m.trajectoryRuns() != 0) {
      out << "trajectories: " << m.trajectoriesSimulated() << " over "
          << m.trajectoryRuns() << " runs\n";
    }
    if (m.batchRuns() != 0) {
      out << "batch: " << m.batchMembersSimulated() << " members over "
          << m.batchRuns() << " runs\n";
    }
    if (m.fusionGatesIn() != 0) {
      out << "fusion: " << m.fusionGatesIn() << " gates -> "
          << m.fusionBlocks() << " blocks (" << m.fusionSweepsSaved()
          << " sweeps saved)\n";
    }
    if (m.dispatchRoutesTotal() != 0) {
      out << "dispatch:";
      for (int r = 0; r < sim::kDispatchRouteCount; ++r) {
        const auto route = static_cast<sim::DispatchRoute>(r);
        out << " " << sim::dispatchRouteName(route) << " "
            << m.dispatchRoutes(route);
      }
      out << " (" << m.dispatchConversions() << " conversions, "
          << m.dispatchFallbacks() << " fallbacks)\n";
    }
    const PerfCapability& perfCap = perfCapability();
    if (!perfCap.any()) {
      out << "perf counters: unavailable (" << perfCap.reason << ")\n";
    } else {
      out << "perf counters: " << (perfCap.hardware ? "hardware" : "")
          << (perfCap.hardware && perfCap.software ? "+" : "")
          << (perfCap.software ? "software" : "") << "\n";
      for (int p = 0; p < sim::kKernelPathCount; ++p) {
        const auto path = static_cast<sim::KernelPath>(p);
        const PerfCounts counts = perfRegistry().counts(path);
        if (counts.empty()) continue;
        out << "  perf " << std::left << std::setw(20)
            << sim::kernelPathName(path) << " " << counts.samples
            << " samples";
        if (counts.cycles != 0) {
          out << ", ipc " << std::fixed << std::setprecision(2)
              << counts.ipc();
        }
        if (counts.llcReferences != 0) {
          out << ", llc-miss " << std::setprecision(1)
              << counts.llcMissRate() * 100.0 << "%";
        }
        out << "\n";
      }
    }
    const RooflineCalibration& cal = rooflineCalibration();
    if (cal.measured) {
      out << "roofline peak: " << std::fixed << std::setprecision(2)
          << cal.peakGBps << " GB/s (" << cal.source << ")\n";
      for (int p = 0; p < sim::kKernelPathCount; ++p) {
        const auto path = static_cast<sim::KernelPath>(p);
        const HistogramSnapshot snap =
            latencyHistograms().histogram(path).snapshot();
        const std::uint64_t pathBytes = m.bytesTouched(path);
        if (snap.sumNs == 0 || pathBytes == 0) continue;
        const RooflinePoint point = rooflinePoint(
            path, pathBytes, snap.sumNs, perfRegistry().counts(path));
        out << "  roofline " << std::left << std::setw(18)
            << sim::kernelPathName(path) << " " << std::setprecision(2)
            << point.achievedGBps << " GB/s ("
            << std::setprecision(0) << point.fractionOfPeak * 100.0
            << "% of peak, " << point.classification << ")\n";
      }
    } else {
      out << "roofline: unavailable (" << cal.source << ")\n";
    }
    for (const auto& [stage, agg] : stageStats().snapshot()) {
      out << "  stage " << std::left << std::setw(20) << stage << " "
          << agg.count << " x " << std::fixed << std::setprecision(0)
          << (agg.count == 0 ? 0.0
                             : static_cast<double>(agg.sumNs) /
                                   static_cast<double>(agg.count))
          << "ns\n";
    }
    const Sentinel& sentinelRef = sentinel();
    out << "sentinel: policy " << sentinelPolicyName(sentinelRef.policy())
        << ", " << sentinelRef.checks() << " checks, "
        << sentinelRef.nanDetected() << " nan, "
        << sentinelRef.normAlerts() << " norm alerts";
    if (sentinelRef.checks() != 0) {
      out << " (last |psi|^2 " << std::fixed << std::setprecision(6)
          << sentinelRef.lastNormSq() << ")";
    }
    out << "\n";
    out << "flight recorder: "
        << (flightRecorder().enabled() ? "on" : "off") << ", "
        << flightRecorder().totalRecorded() << " events over "
        << flightRecorder().threadCount() << " threads\n";
    if (profiler().samples() != 0) {
      out << "profiler: " << profiler().samples() << " samples, "
          << profiler().distinctStacks() << " stacks, "
          << profiler().dropped() << " dropped\n";
    }
    out << "trace: " << tracer().nbEvents() << " spans retained, "
        << tracer().dropped() << " dropped\n";
    if (!results_.empty()) {
      out << "results:\n";
      for (const auto& result : results_) {
        out << "  " << std::left << std::setw(36) << result.name << " "
            << std::right << std::setw(14) << std::fixed
            << std::setprecision(2) << result.value << " " << result.unit
            << "\n";
      }
    }
    return out.str();
  }

  /// The canonical BENCH_*.json object (schema "qclab-obs-v4").
  std::string json() const {
    const Metrics& m = metrics();
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"qclab-obs-v4\",\n";
    out << "  \"name\": \"" << jsonEscape(name_) << "\",\n";
    out << "  \"build\": {\n";
    out << "    \"version\": \"" << jsonEscape(versionString()) << "\",\n";
    out << "    \"openmp\": " << (builtWithOpenMP() ? "true" : "false")
        << ",\n";
    out << "    \"obs\": " << (builtWithObs() ? "true" : "false") << ",\n";
    out << "    \"simd\": " << (builtWithSimd() ? "true" : "false") << ",\n";
    out << "    \"simd_level\": \""
        << jsonEscape(sim::simdLevelName(sim::activeSimdLevel())) << "\",\n";
    out << "    \"simd_detected\": \""
        << jsonEscape(sim::simdLevelName(sim::detectedSimdLevel()))
        << "\",\n";
    out << "    \"scalars\": \"" << jsonEscape(scalarTypes()) << "\",\n";
    out << "    \"info\": \"" << jsonEscape(buildInfo()) << "\"\n";
    out << "  },\n";
    out << "  \"counters\": {\n";
    out << "    \"gate_applications\": " << m.gateApplications() << ",\n";
    out << "    \"gate_applications_by_path\": {";
    bool first = true;
    for (int p = 0; p < sim::kKernelPathCount; ++p) {
      const auto path = static_cast<sim::KernelPath>(p);
      const std::uint64_t count = m.gateApplications(path);
      if (count == 0) continue;
      if (!first) out << ", ";
      first = false;
      out << "\"" << jsonEscape(sim::kernelPathName(path))
          << "\": " << count;
    }
    out << "},\n";
    out << "    \"gate_applications_by_kind\": {";
    first = true;
    for (const auto& [kind, count] : m.gateKinds()) {
      if (!first) out << ", ";
      first = false;
      out << "\"" << jsonEscape(kind) << "\": " << count;
    }
    out << "},\n";
    out << "    \"bytes_touched\": " << m.bytesTouched() << ",\n";
    out << "    \"bytes_touched_by_path\": {";
    first = true;
    for (int p = 0; p < sim::kKernelPathCount; ++p) {
      const auto path = static_cast<sim::KernelPath>(p);
      const std::uint64_t bytes = m.bytesTouched(path);
      if (bytes == 0) continue;
      if (!first) out << ", ";
      first = false;
      out << "\"" << jsonEscape(sim::kernelPathName(path))
          << "\": " << bytes;
    }
    out << "},\n";
    out << "    \"branch_spawns\": " << m.branchSpawns() << ",\n";
    out << "    \"branch_prunes\": " << m.branchPrunes() << ",\n";
    out << "    \"shots_sampled\": " << m.shotsSampled() << ",\n";
    out << "    \"circuit_simulations\": " << m.circuitSimulations()
        << ",\n";
    out << "    \"noise_channel_applications\": "
        << m.noiseChannelApplications() << ",\n";
    out << "    \"trajectory_runs\": " << m.trajectoryRuns() << ",\n";
    out << "    \"trajectories_simulated\": " << m.trajectoriesSimulated()
        << ",\n";
    out << "    \"batch_runs\": " << m.batchRuns() << ",\n";
    out << "    \"batch_members_simulated\": " << m.batchMembersSimulated()
        << ",\n";
    out << "    \"fusion_gates_in\": " << m.fusionGatesIn() << ",\n";
    out << "    \"fusion_blocks_out\": " << m.fusionBlocks() << ",\n";
    out << "    \"fusion_sweeps_saved\": " << m.fusionSweepsSaved() << ",\n";
    // v4 (additive): adaptive-dispatch route decisions.
    out << "    \"dispatch_routes\": {";
    first = true;
    for (int r = 0; r < sim::kDispatchRouteCount; ++r) {
      const auto route = static_cast<sim::DispatchRoute>(r);
      const std::uint64_t count = m.dispatchRoutes(route);
      if (count == 0) continue;
      if (!first) out << ", ";
      first = false;
      out << "\"" << jsonEscape(sim::dispatchRouteName(route))
          << "\": " << count;
    }
    out << "},\n";
    out << "    \"dispatch_conversions\": " << m.dispatchConversions()
        << ",\n";
    out << "    \"dispatch_fallbacks\": " << m.dispatchFallbacks() << "\n";
    out << "  },\n";
    out << "  \"memory\": {\n";
    out << "    \"current_state_bytes\": " << m.currentStateBytes() << ",\n";
    out << "    \"peak_state_bytes\": " << m.peakStateBytes() << ",\n";
    out << "    \"tiers\": {";
    for (int t = 0; t < sim::kStateTierCount; ++t) {
      const auto tier = static_cast<sim::StateTier>(t);
      if (t != 0) out << ",";
      out << "\n      \"" << sim::stateTierName(tier) << "\": {"
          << "\"resident_bytes\": " << m.tierResidentBytes(tier)
          << ", \"mapped_bytes\": " << m.tierMappedBytes(tier) << "}";
    }
    out << "\n    },\n";
    out << "    \"prefetch\": {\"issued\": " << m.prefetchIssued()
        << ", \"hits\": " << m.prefetchHits()
        << ", \"retired\": " << m.prefetchRetired() << "}\n";
    out << "  },\n";
    out << "  \"histograms\": {";
    first = true;
    for (int p = 0; p < sim::kKernelPathCount; ++p) {
      const auto path = static_cast<sim::KernelPath>(p);
      const HistogramSnapshot snap =
          latencyHistograms().histogram(path).snapshot();
      if (snap.empty()) continue;
      if (!first) out << ",";
      first = false;
      out << "\n    \"" << jsonEscape(sim::kernelPathName(path)) << "\": {"
          << "\"count\": " << snap.count << ", \"sum_ns\": " << snap.sumNs
          << ", \"mean_ns\": " << std::setprecision(17) << snap.meanNs()
          << ", \"p50_ns\": " << snap.percentileNs(0.50)
          << ", \"p90_ns\": " << snap.percentileNs(0.90)
          << ", \"p99_ns\": " << snap.percentileNs(0.99)
          << ", \"buckets_log2_ns\": [";
      // Trailing zero buckets are trimmed to keep the file compact.
      int last = static_cast<int>(snap.buckets.size()) - 1;
      while (last > 0 && snap.buckets[static_cast<std::size_t>(last)] == 0) {
        --last;
      }
      for (int b = 0; b <= last; ++b) {
        if (b != 0) out << ", ";
        out << snap.buckets[static_cast<std::size_t>(b)];
      }
      out << "]}";
    }
    if (!first) out << "\n  ";
    out << "},\n";
    out << "  \"bandwidth_gbps_by_path\": {";
    first = true;
    for (int p = 0; p < sim::kKernelPathCount; ++p) {
      const auto path = static_cast<sim::KernelPath>(p);
      const HistogramSnapshot snap =
          latencyHistograms().histogram(path).snapshot();
      const std::uint64_t pathBytes = m.bytesTouched(path);
      if (snap.sumNs == 0 || pathBytes == 0) continue;
      if (!first) out << ", ";
      first = false;
      // bytes/ns == GB/s (decimal), the QCLAB++ effective-bandwidth metric.
      out << "\"" << jsonEscape(sim::kernelPathName(path))
          << "\": " << std::setprecision(17)
          << static_cast<double>(pathBytes) /
                 static_cast<double>(snap.sumNs);
    }
    out << "},\n";
    // v3: hardware counters per path, or the explicit unavailable marker.
    const PerfCapability& perfCap = perfCapability();
    out << "  \"perf\": {\n";
    out << "    \"available\": " << (perfCap.any() ? "true" : "false")
        << ",\n";
    out << "    \"hardware\": " << (perfCap.hardware ? "true" : "false")
        << ",\n";
    out << "    \"llc\": " << (perfCap.llc ? "true" : "false") << ",\n";
    out << "    \"software\": " << (perfCap.software ? "true" : "false")
        << ",\n";
    out << "    \"unavailable\": \"" << jsonEscape(perfCap.reason)
        << "\",\n";
    out << "    \"by_path\": {";
    first = true;
    for (int p = 0; p < sim::kKernelPathCount; ++p) {
      const auto path = static_cast<sim::KernelPath>(p);
      const PerfCounts counts = perfRegistry().counts(path);
      if (counts.empty()) continue;
      if (!first) out << ",";
      first = false;
      out << "\n      \"" << jsonEscape(sim::kernelPathName(path))
          << "\": {\"samples\": " << counts.samples
          << ", \"cycles\": " << counts.cycles
          << ", \"instructions\": " << counts.instructions
          << ", \"ipc\": " << std::setprecision(17) << counts.ipc()
          << ", \"llc_references\": " << counts.llcReferences
          << ", \"llc_misses\": " << counts.llcMisses
          << ", \"llc_miss_rate\": " << counts.llcMissRate()
          << ", \"stalled_cycles\": " << counts.stalledCycles
          << ", \"stall_fraction\": " << counts.stallFraction()
          << ", \"task_clock_ns\": " << counts.taskClockNs
          << ", \"page_faults\": " << counts.pageFaults << "}";
    }
    if (!first) out << "\n    ";
    out << "}\n";
    out << "  },\n";
    // v3: achieved vs. calibrated-peak bandwidth and boundedness verdicts.
    const RooflineCalibration& cal = rooflineCalibration();
    out << "  \"roofline\": {\n";
    out << "    \"available\": " << (cal.measured ? "true" : "false")
        << ",\n";
    out << "    \"peak_gbps\": " << std::setprecision(17) << cal.peakGBps
        << ",\n";
    out << "    \"calibration_ms\": " << cal.calibrationMs << ",\n";
    out << "    \"calibration_bytes\": " << cal.bufferBytes << ",\n";
    out << "    \"source\": \"" << jsonEscape(cal.source) << "\",\n";
    std::string dominant = "indeterminate";
    std::uint64_t dominantBytes = 0;
    out << "    \"by_path\": {";
    first = true;
    for (int p = 0; p < sim::kKernelPathCount; ++p) {
      const auto path = static_cast<sim::KernelPath>(p);
      const HistogramSnapshot snap =
          latencyHistograms().histogram(path).snapshot();
      const std::uint64_t pathBytes = m.bytesTouched(path);
      if (snap.sumNs == 0 || pathBytes == 0) continue;
      const RooflinePoint point = rooflinePoint(
          path, pathBytes, snap.sumNs, perfRegistry().counts(path));
      if (pathBytes > dominantBytes) {
        dominantBytes = pathBytes;
        dominant = point.classification;
      }
      if (!first) out << ",";
      first = false;
      out << "\n      \"" << jsonEscape(sim::kernelPathName(path))
          << "\": {\"achieved_gbps\": " << std::setprecision(17)
          << point.achievedGBps
          << ", \"fraction_of_peak\": " << point.fractionOfPeak
          << ", \"est_gflops\": " << point.estGflops
          << ", \"intensity_flops_per_byte\": "
          << point.intensityFlopsPerByte << ", \"classification\": \""
          << jsonEscape(point.classification) << "\"}";
    }
    if (!first) out << "\n    ";
    out << "},\n";
    out << "    \"classification\": \"" << jsonEscape(dominant) << "\"\n";
    out << "  },\n";
    // v3: pipeline-stage wall time from the always-on StageStats registry.
    out << "  \"stages\": {";
    first = true;
    for (const auto& [stage, agg] : stageStats().snapshot()) {
      if (!first) out << ",";
      first = false;
      out << "\n    \"" << jsonEscape(stage)
          << "\": {\"count\": " << agg.count
          << ", \"sum_ns\": " << agg.sumNs
          << ", \"mean_ns\": " << std::setprecision(17)
          << (agg.count == 0 ? 0.0
                             : static_cast<double>(agg.sumNs) /
                                   static_cast<double>(agg.count))
          << "}";
    }
    if (!first) out << "\n  ";
    out << "},\n";
    // v4: numerical-health sentinels — policy, alert counters, and the
    // cost distribution of the checks themselves.
    const Sentinel& sentinelRef = sentinel();
    const HistogramSnapshot checkSnap = sentinelRef.checkHistogram().snapshot();
    out << "  \"sentinel\": {\n";
    out << "    \"policy\": \""
        << jsonEscape(sentinelPolicyName(sentinelRef.policy())) << "\",\n";
    out << "    \"checks\": " << sentinelRef.checks() << ",\n";
    out << "    \"nan_detected\": " << sentinelRef.nanDetected() << ",\n";
    out << "    \"norm_alerts\": " << sentinelRef.normAlerts() << ",\n";
    out << "    \"violations\": " << sentinelRef.violations() << ",\n";
    out << "    \"last_norm_sq\": " << std::setprecision(17)
        << sentinelRef.lastNormSq() << ",\n";
    out << "    \"max_amp_sq\": " << sentinelRef.maxAmpSq() << ",\n";
    out << "    \"check_cost_ns\": {\"count\": " << checkSnap.count
        << ", \"sum_ns\": " << checkSnap.sumNs
        << ", \"p50_ns\": " << checkSnap.percentileNs(0.50)
        << ", \"p99_ns\": " << checkSnap.percentileNs(0.99) << "}\n";
    out << "  },\n";
    // v4: flight-recorder occupancy (the events themselves go to crash
    // dumps, not reports).
    out << "  \"flight\": {\n";
    out << "    \"enabled\": "
        << (flightRecorder().enabled() ? "true" : "false") << ",\n";
    out << "    \"threads\": " << flightRecorder().threadCount() << ",\n";
    out << "    \"recorded_total\": " << flightRecorder().totalRecorded()
        << ",\n";
    out << "    \"ring_capacity\": " << kFlightRingCapacity << "\n";
    out << "  },\n";
    // v4: SIGPROF sampling-profiler totals (zeros unless start() ran).
    out << "  \"profiler\": {\n";
    out << "    \"samples\": " << profiler().samples() << ",\n";
    out << "    \"distinct_stacks\": " << profiler().distinctStacks()
        << ",\n";
    out << "    \"dropped\": " << profiler().dropped() << "\n";
    out << "  },\n";
    out << "  \"trace\": {\"events\": " << tracer().nbEvents()
        << ", \"dropped\": " << tracer().dropped() << "},\n";
    out << "  \"results\": [";
    first = true;
    for (const auto& result : results_) {
      if (!first) out << ",";
      first = false;
      out << "\n    {\"name\": \"" << jsonEscape(result.name)
          << "\", \"value\": " << std::setprecision(17) << result.value
          << ", \"unit\": \"" << jsonEscape(result.unit) << "\"}";
    }
    if (!results_.empty()) out << "\n  ";
    out << "]\n";
    out << "}";
    return out.str();
  }

  /// Writes json() to `path`.  Returns false on I/O failure.
  bool writeJson(const std::string& path) const {
    std::ofstream file(path);
    if (!file) return false;
    file << json() << "\n";
    return static_cast<bool>(file);
  }

 private:
  std::string name_;
  std::vector<ReportResult> results_;
};

}  // namespace qclab::obs

#pragma once

/// \file histogram.hpp
/// \brief Lock-free log2-bucketed latency histograms keyed by kernel path.
///
/// A LatencyHistogram spreads nanosecond samples over power-of-two buckets
/// (bucket 0 holds exact zeros, bucket b >= 1 holds [2^(b-1), 2^b - 1]);
/// recording is three relaxed atomic increments, so the hot path stays
/// mutex-free even with many threads timing concurrently.  Snapshots carry
/// the bucket array plus count/sum and estimate percentiles (p50/p90/p99)
/// by linear interpolation inside the selected bucket.
///
/// PathHistograms holds one histogram per sim::KernelPath; the process-wide
/// instance (latencyHistograms()) is fed by the RAII PathTimer from
/// InstrumentedBackend and the fusion sweep paths, and rendered into
/// reports next to the per-path counters.  Compiling with
/// QCLAB_OBS_DISABLED replaces everything with API-identical no-ops.

#include <cstdint>
#include <vector>

#include "qclab/obs/perfcounters.hpp"
#include "qclab/sim/kernel_path.hpp"

#ifndef QCLAB_OBS_DISABLED
#include <atomic>
#include <bit>
#include <chrono>
#endif

namespace qclab::obs {

/// Number of log2 buckets: zeros + one bucket per uint64 bit width.
inline constexpr int kLatencyBuckets = 65;

/// Immutable copy of a histogram's state with percentile estimation.
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;  ///< kLatencyBuckets counts
  std::uint64_t count = 0;             ///< total recorded samples
  std::uint64_t sumNs = 0;             ///< sum of recorded nanoseconds

  bool empty() const noexcept { return count == 0; }

  /// Mean sample in nanoseconds (0 when empty).
  double meanNs() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sumNs) / static_cast<double>(count);
  }

  /// Estimated `q`-quantile (q in [0, 1]) in nanoseconds: walks the
  /// cumulative bucket counts to the bucket containing the target rank and
  /// interpolates linearly between the bucket's bounds.
  double percentileNs(double q) const noexcept {
    if (count == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double targetRank = q * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (int b = 0; b < static_cast<int>(buckets.size()); ++b) {
      const std::uint64_t inBucket = buckets[static_cast<std::size_t>(b)];
      if (inBucket == 0) continue;
      if (static_cast<double>(cumulative + inBucket) >= targetRank) {
        const double lo = bucketLowNs(b);
        const double hi = bucketHighNs(b);
        const double within =
            (targetRank - static_cast<double>(cumulative)) /
            static_cast<double>(inBucket);
        return lo + (hi - lo) * (within < 0.0 ? 0.0 : within);
      }
      cumulative += inBucket;
    }
    return bucketHighNs(kLatencyBuckets - 1);
  }

  /// Inclusive lower bound of bucket `b` in nanoseconds.
  static double bucketLowNs(int b) noexcept {
    if (b <= 0) return 0.0;
    return static_cast<double>(std::uint64_t{1} << (b - 1));
  }

  /// Inclusive upper bound of bucket `b` in nanoseconds.
  static double bucketHighNs(int b) noexcept {
    if (b <= 0) return 0.0;
    if (b >= 64) return 1.8446744073709552e19;  // ~2^64
    return static_cast<double>((std::uint64_t{1} << b) - 1);
  }
};

#ifndef QCLAB_OBS_DISABLED

/// Index of the bucket holding a `ns` sample: 0 for zero, otherwise the
/// bit width of the value (1 -> 1, 2..3 -> 2, 4..7 -> 3, ...).
inline int latencyBucketOf(std::uint64_t ns) noexcept {
  return std::bit_width(ns);  // bit_width(0) == 0
}

/// Lock-free log2-bucketed nanosecond histogram.
class LatencyHistogram {
 public:
  /// Records one sample.  Three relaxed atomic adds; safe from any thread.
  void record(std::uint64_t ns) noexcept {
    buckets_[static_cast<std::size_t>(latencyBucketOf(ns))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sumNs_.fetch_add(ns, std::memory_order_relaxed);
  }

  /// Total recorded samples.
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Sum of recorded nanoseconds.
  std::uint64_t sumNs() const noexcept {
    return sumNs_.load(std::memory_order_relaxed);
  }

  /// Zeroes the histogram.
  void reset() noexcept {
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sumNs_.store(0, std::memory_order_relaxed);
  }

  /// Consistent-enough copy for reporting (relaxed loads; concurrent
  /// recording may skew count vs buckets by in-flight samples).
  HistogramSnapshot snapshot() const {
    HistogramSnapshot snap;
    snap.buckets.resize(kLatencyBuckets);
    for (int b = 0; b < kLatencyBuckets; ++b) {
      snap.buckets[static_cast<std::size_t>(b)] =
          buckets_[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    }
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sumNs = sumNs_.load(std::memory_order_relaxed);
    return snap;
  }

 private:
  std::atomic<std::uint64_t> buckets_[kLatencyBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sumNs_{0};
};

/// One latency histogram per kernel path.
class PathHistograms {
 public:
  /// Records an `ns` sample against `path`.
  void record(sim::KernelPath path, std::uint64_t ns) noexcept {
    paths_[static_cast<std::size_t>(path)].record(ns);
  }

  /// The histogram of `path`.
  const LatencyHistogram& histogram(sim::KernelPath path) const noexcept {
    return paths_[static_cast<std::size_t>(path)];
  }

  /// Zeroes every path histogram.
  void reset() noexcept {
    for (auto& histogram : paths_) histogram.reset();
  }

 private:
  LatencyHistogram paths_[sim::kKernelPathCount];
};

/// The process-wide per-path latency histograms.
inline PathHistograms& latencyHistograms() {
  static PathHistograms instance;
  return instance;
}

namespace detail {

/// Kernel path currently being timed on this thread (-1 = none).
/// Maintained by PathTimer (save/restore, so nested timers unwind
/// correctly) and read by the SIGPROF sampling profiler to attribute
/// samples to kernel paths.  Constant-initialized thread_local: safe to
/// read from a signal handler interrupting this thread.
inline std::atomic<int>& currentTimedPath() noexcept {
  thread_local std::atomic<int> path{-1};
  return path;
}

}  // namespace detail

/// RAII timer: records [construction, destruction) in nanoseconds into the
/// process-wide histogram of a kernel path, and — when the perf registry
/// is enabled — samples hardware counters over the same scope so each
/// path's latency comes with its IPC and LLC miss rate (perfcounters.hpp).
class PathTimer {
 public:
  explicit PathTimer(sim::KernelPath path) noexcept
      : perf_(path), path_(path), start_(std::chrono::steady_clock::now()) {
    auto& current = detail::currentTimedPath();
    previousPath_ = current.load(std::memory_order_relaxed);
    current.store(static_cast<int>(path), std::memory_order_relaxed);
  }

  PathTimer(const PathTimer&) = delete;
  PathTimer& operator=(const PathTimer&) = delete;

  ~PathTimer() {
    detail::currentTimedPath().store(previousPath_,
                                     std::memory_order_relaxed);
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    latencyHistograms().record(
        path_,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

 private:
  PerfScope perf_;  // destroyed after the histogram record; scope covers
                    // at least the timed region
  sim::KernelPath path_;
  int previousPath_ = -1;
  std::chrono::steady_clock::time_point start_;
};

#else  // QCLAB_OBS_DISABLED

inline int latencyBucketOf(std::uint64_t) noexcept { return 0; }

/// No-op histogram: records nothing, snapshots as empty.
class LatencyHistogram {
 public:
  void record(std::uint64_t) noexcept {}
  std::uint64_t count() const noexcept { return 0; }
  std::uint64_t sumNs() const noexcept { return 0; }
  void reset() noexcept {}
  HistogramSnapshot snapshot() const {
    HistogramSnapshot snap;
    snap.buckets.resize(kLatencyBuckets);
    return snap;
  }
};

/// No-op per-path registry.
class PathHistograms {
 public:
  void record(sim::KernelPath, std::uint64_t) noexcept {}
  const LatencyHistogram& histogram(sim::KernelPath) const noexcept {
    static const LatencyHistogram empty;
    return empty;
  }
  void reset() noexcept {}
};

inline PathHistograms& latencyHistograms() {
  static PathHistograms instance;
  return instance;
}

/// No-op timer.
class PathTimer {
 public:
  explicit PathTimer(sim::KernelPath) noexcept {}
  PathTimer(const PathTimer&) = delete;
  PathTimer& operator=(const PathTimer&) = delete;
};

#endif  // QCLAB_OBS_DISABLED

}  // namespace qclab::obs

#pragma once

/// \file json.hpp
/// \brief Shared JSON string escaping for every obs exporter.
///
/// All JSON emitted by the observability layer (Chrome traces, reports,
/// bench trajectories) quotes strings through this one function, so a
/// gate-kind key, result name, or build-info string containing quotes,
/// backslashes, or control characters can never corrupt an export.
/// Available in QCLAB_OBS_DISABLED builds too: the no-op Report still
/// writes well-formed JSON.

#include <string>

namespace qclab::obs {

/// Escapes a string for embedding in a JSON string literal.
inline std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace qclab::obs

#pragma once

/// \file crashdump.hpp
/// \brief Signal-safe crash diagnostics: dump the flight recorder, stage
/// stack, and counters to qclab-crash-<pid>.json when the process dies.
///
/// installCrashHandlers() arms SIGSEGV / SIGBUS / SIGILL / SIGFPE /
/// SIGABRT (on an alternate stack, so a blown stack still dumps) plus
/// std::terminate, and optionally SIGUSR1 for watchdog-style "dump but
/// keep running" pokes.  When one fires, the handler writes one JSON
/// object (schema "qclab-crash-v1") containing
///  - the signal and a pre-formatted build line,
///  - the crashing thread's active stage-span stack (the signal-safe
///    SpanFrameStack mirror maintained by ScopedSpan, trace.hpp),
///  - the plain atomic counters of obs::metrics() and obs::sentinel()
///    (the string-sharded per-kind counters are deliberately skipped:
///    their snapshot takes mutexes and walks deques — not signal-safe),
///  - the flight-recorder rings of every thread (flightrecorder.hpp),
///    newest kCrashDumpMaxEventsPerRing events each,
/// then restores the default disposition and re-raises, so the process
/// still dies with the correct signal for its supervisor.
///
/// EVERYTHING on the dump path is async-signal-safe: open/write/close,
/// strlen/memcpy, manual integer formatting, relaxed/acquire atomic loads,
/// and walks of immutable intrusive lists.  No malloc, no stdio, no
/// locks, no C++ streams.  The singletons it reads are forced into
/// existence at install time so a handler never runs a first-time static
/// constructor.  obs::dumpNow() exposes the same dump for non-fatal use
/// (watchdogs, debugging a hung run via SIGUSR1).
///
/// The dump lands in the current working directory, or $QCLAB_OBS_CRASH_DIR
/// when set (captured at install time); QCLAB_OBS_CRASH=off disables
/// installation entirely.  Under QCLAB_OBS_DISABLED, or off POSIX, every
/// entry point is an API-identical no-op returning false.

#include <cstdint>

#include "qclab/obs/flightrecorder.hpp"
#include "qclab/obs/metrics.hpp"
#include "qclab/obs/sentinel.hpp"
#include "qclab/obs/trace.hpp"
#include "qclab/sim/kernel_path.hpp"
#include "qclab/version.hpp"

#if !defined(QCLAB_OBS_DISABLED) && \
    (defined(__linux__) || defined(__APPLE__))
#define QCLAB_OBS_CRASH_POSIX 1
#endif

#ifdef QCLAB_OBS_CRASH_POSIX
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#endif

namespace qclab::obs {

/// Newest events dumped per flight ring (bounds the crash-file size; the
/// ring itself retains kFlightRingCapacity).
inline constexpr std::uint64_t kCrashDumpMaxEventsPerRing = 4096;

#ifdef QCLAB_OBS_CRASH_POSIX

namespace detail {

/// Static-storage signal name (signal-safe; strsignal is not).
inline const char* crashSignalName(int sig) noexcept {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS:  return "SIGBUS";
    case SIGILL:  return "SIGILL";
    case SIGFPE:  return "SIGFPE";
    case SIGABRT: return "SIGABRT";
    case SIGUSR1: return "SIGUSR1";
    case 0:       return "none";
  }
  return "signal";
}

/// Async-signal-safe JSON emitter over a file descriptor: write(2) only,
/// manual integer formatting, no allocation.
class CrashWriter {
 public:
  explicit CrashWriter(int fd) noexcept : fd_(fd) {}

  void raw(const char* data, std::size_t size) noexcept {
    while (size > 0) {
      const ssize_t written = ::write(fd_, data, size);
      if (written <= 0) return;  // EINTR/ENOSPC: best effort
      data += written;
      size -= static_cast<std::size_t>(written);
    }
  }

  void str(const char* s) noexcept { raw(s, std::strlen(s)); }

  void u64(std::uint64_t value) noexcept {
    char buffer[24];
    int i = sizeof(buffer);
    do {
      buffer[--i] = static_cast<char>('0' + value % 10);
      value /= 10;
    } while (value != 0);
    raw(buffer + i, sizeof(buffer) - static_cast<std::size_t>(i));
  }

  void i64(std::int64_t value) noexcept {
    if (value < 0) {
      str("-");
      u64(static_cast<std::uint64_t>(-value));
    } else {
      u64(static_cast<std::uint64_t>(value));
    }
  }

  /// Doubles render as quoted fixed-point strings ("1.000000", "nan"):
  /// keeps the JSON well-formed without signal-unsafe printf formatting.
  void fixedQuoted(double value) noexcept {
    str("\"");
    if (!(value == value)) {
      str("nan");
    } else if (value > 1.8446744073709551e18 ||
               value < -1.8446744073709551e18) {
      str(value > 0 ? "inf" : "-inf");
    } else {
      if (value < 0) {
        str("-");
        value = -value;
      }
      const std::uint64_t whole = static_cast<std::uint64_t>(value);
      u64(whole);
      str(".");
      double frac = value - static_cast<double>(whole);
      for (int d = 0; d < 6; ++d) {
        frac *= 10.0;
        const int digit = static_cast<int>(frac);
        const char c = static_cast<char>('0' + (digit < 0   ? 0
                                                : digit > 9 ? 9
                                                            : digit));
        raw(&c, 1);
        frac -= digit;
      }
    }
    str("\"");
  }

 private:
  int fd_;
};

/// Install-time state: pre-formatted strings the handlers must not build
/// themselves, the once-guard, and the alternate stack.
struct CrashState {
  std::atomic<bool> installed{false};
  std::atomic<int> dumping{0};  ///< 0 idle, 1 a dump ran (or is running)
  char path[512] = {};          ///< "dir/qclab-crash-<pid>.json"
  char build[256] = {};         ///< buildInfo() captured at install
  char altStack[64 * 1024];
};

inline CrashState& crashState() noexcept {
  static CrashState state;
  return state;
}

/// The dump body (signal-safe; `sig` 0 = non-signal reasons).
inline void writeCrashDump(int fd, int sig, const char* reason) noexcept {
  CrashWriter w(fd);
  w.str("{\"schema\":\"qclab-crash-v1\",\"signal\":");
  w.i64(sig);
  w.str(",\"signal_name\":\"");
  w.str(crashSignalName(sig));
  w.str("\",\"reason\":\"");
  w.str(reason);
  w.str("\",\"pid\":");
  w.i64(static_cast<std::int64_t>(::getpid()));
  w.str(",\"build\":\"");
  w.str(crashState().build);
  w.str("\"");

  // Active stage-span stack of THIS thread (the crashing one): interned
  // static strings pushed by ScopedSpan, read with plain loads.
  w.str(",\"stage_stack\":[");
  const SpanFrameStack& frames = spanFrames();
  int depth = frames.depth.load(std::memory_order_acquire);
  if (depth > SpanFrameStack::kMaxDepth) depth = SpanFrameStack::kMaxDepth;
  bool first = true;
  for (int d = 0; d < depth; ++d) {
    const char* frame = frames.frames[d];
    if (frame == nullptr) continue;
    if (!first) w.str(",");
    first = false;
    w.str("\"");
    w.str(frame);
    w.str("\"");
  }
  w.str("]");

  // Plain atomic counters (relaxed loads are signal-safe).  The sharded
  // per-kind map is skipped: snapshotting it locks mutexes.
  const Metrics& m = metrics();
  w.str(",\"counters\":{\"gate_applications\":");
  w.u64(m.gateApplications());
  w.str(",\"gate_applications_by_path\":{");
  first = true;
  for (int p = 0; p < sim::kKernelPathCount; ++p) {
    const auto path = static_cast<sim::KernelPath>(p);
    const std::uint64_t count = m.gateApplications(path);
    if (count == 0) continue;
    if (!first) w.str(",");
    first = false;
    w.str("\"");
    w.str(sim::kernelPathName(path));
    w.str("\":");
    w.u64(count);
  }
  w.str("},\"bytes_touched\":");
  w.u64(m.bytesTouched());
  w.str(",\"current_state_bytes\":");
  w.u64(m.currentStateBytes());
  w.str(",\"peak_state_bytes\":");
  w.u64(m.peakStateBytes());
  w.str(",\"circuit_simulations\":");
  w.u64(m.circuitSimulations());
  w.str(",\"shots_sampled\":");
  w.u64(m.shotsSampled());
  w.str(",\"trajectory_runs\":");
  w.u64(m.trajectoryRuns());
  w.str(",\"batch_runs\":");
  w.u64(m.batchRuns());
  w.str(",\"batch_members_simulated\":");
  w.u64(m.batchMembersSimulated());
  w.str("}");

  // Numerical-health sentinels at the moment of death.
  const Sentinel& s = sentinel();
  w.str(",\"sentinel\":{\"checks\":");
  w.u64(s.checks());
  w.str(",\"nan_detected\":");
  w.u64(s.nanDetected());
  w.str(",\"norm_alerts\":");
  w.u64(s.normAlerts());
  w.str(",\"last_norm_sq\":");
  w.fixedQuoted(s.lastNormSq());
  w.str(",\"max_amp_sq\":");
  w.fixedQuoted(s.maxAmpSq());
  w.str("}");

  // Flight-recorder rings: newest events per thread, oldest first.
  w.str(",\"flight\":{\"ring_capacity\":");
  w.u64(kFlightRingCapacity);
  w.str(",\"rings\":[");
  bool firstRing = true;
  for (const FlightRing* ring = flightRecorder().rings(); ring != nullptr;
       ring = ring->next) {
    if (!firstRing) w.str(",");
    firstRing = false;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    std::uint64_t retained =
        head < kFlightRingCapacity ? head : kFlightRingCapacity;
    if (retained > kCrashDumpMaxEventsPerRing) {
      retained = kCrashDumpMaxEventsPerRing;
    }
    w.str("{\"thread\":");
    w.u64(ring->threadId);
    w.str(",\"recorded\":");
    w.u64(head);
    w.str(",\"events\":[");
    const std::uint64_t start = head - retained;
    for (std::uint64_t i = 0; i < retained; ++i) {
      const FlightEvent& event =
          ring->events[(start + i) & (kFlightRingCapacity - 1)];
      if (i != 0) w.str(",");
      w.str("{\"t\":");
      w.u64(event.timeNs);
      w.str(",\"kind\":\"");
      w.str(flightEventKindName(
          static_cast<FlightEventKind>(event.kind)));
      w.str("\",\"path\":\"");
      w.str(event.path < static_cast<std::uint16_t>(sim::kKernelPathCount)
                ? sim::kernelPathName(
                      static_cast<sim::KernelPath>(event.path))
                : "unknown");
      w.str("\",\"mask\":");
      w.u64(event.qubitMask);
      w.str(",\"aux\":");
      w.u64(event.aux);
      w.str("}");
    }
    w.str("]}");
  }
  w.str("]}}\n");
}

/// Formats "dir/qclab-crash-<pid>.json" into `buffer` signal-safely
/// (`dir` must be a plain captured string, not getenv from a handler).
inline void formatCrashPath(char* buffer, std::size_t size,
                            const char* dir) noexcept {
  std::size_t n = 0;
  const auto append = [&](const char* s) noexcept {
    while (*s != '\0' && n + 1 < size) buffer[n++] = *s++;
  };
  append(dir == nullptr || dir[0] == '\0' ? "." : dir);
  append("/qclab-crash-");
  char pid[24];
  int i = sizeof(pid);
  auto value = static_cast<std::uint64_t>(::getpid());
  do {
    pid[--i] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  while (i < static_cast<int>(sizeof(pid)) && n + 1 < size) {
    buffer[n++] = pid[i++];
  }
  append(".json");
  buffer[n] = '\0';
}

/// Opens the dump file and writes one dump.  Signal-safe.
inline bool dumpTo(const char* path, int sig, const char* reason) noexcept {
  if (path == nullptr || path[0] == '\0') return false;
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  writeCrashDump(fd, sig, reason);
  ::close(fd);
  return true;
}

/// Fatal-signal handler: dump once, then die with the original signal.
inline void crashSignalHandler(int sig) noexcept {
  CrashState& state = crashState();
  int expected = 0;
  if (state.dumping.compare_exchange_strong(expected, 1,
                                            std::memory_order_acq_rel)) {
    dumpTo(state.path, sig, "fatal-signal");
  }
  // Restore the default disposition and re-raise so the exit status (and
  // any core dump) reflects the real signal, not this handler.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

/// std::terminate handler: dump once, then abort (the SIGABRT handler
/// sees the guard already taken and just re-raises the default).
[[noreturn]] inline void crashTerminateHandler() {
  CrashState& state = crashState();
  int expected = 0;
  if (state.dumping.compare_exchange_strong(expected, 1,
                                            std::memory_order_acq_rel)) {
    dumpTo(state.path, 0, "terminate");
  }
  std::abort();
}

/// SIGUSR1 handler: dump and KEEP RUNNING (watchdog "what are you doing
/// right now" poke on a hung process).
inline void crashUsr1Handler(int) noexcept {
  CrashState& state = crashState();
  int expected = 0;
  if (!state.dumping.compare_exchange_strong(expected, 1,
                                             std::memory_order_acq_rel)) {
    return;  // a fatal dump is in flight; stay out of its way
  }
  dumpTo(state.path, SIGUSR1, "sigusr1");
  state.dumping.store(0, std::memory_order_release);
}

}  // namespace detail

/// Arms the crash handlers (idempotent; returns true when armed).  Call
/// early — before the workload — from a normal context: installation
/// pre-formats the dump path and build line, raises the alternate signal
/// stack, and touches every singleton the handlers read so no handler
/// ever runs a first-time static constructor.  `handleSigusr1` adds the
/// non-fatal SIGUSR1 dump.  QCLAB_OBS_CRASH=off (or 0) disables.
inline bool installCrashHandlers(bool handleSigusr1 = false) {
  if (const char* env = std::getenv("QCLAB_OBS_CRASH")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) {
      return false;
    }
  }
  detail::CrashState& state = detail::crashState();
  bool expected = false;
  if (!state.installed.compare_exchange_strong(expected, true)) {
    return true;  // already armed
  }

  // Pre-format everything a handler must not build itself.
  detail::formatCrashPath(state.path, sizeof(state.path),
                          std::getenv("QCLAB_OBS_CRASH_DIR"));
  std::snprintf(state.build, sizeof(state.build), "%s", buildInfo());

  // Force-construct the singletons the dump path reads.
  (void)metrics().gateApplications();
  (void)flightRecorder().enabled();
  (void)sentinel().checks();
  (void)tracer().enabled();
  (void)spanFrames().depth.load(std::memory_order_relaxed);

  stack_t altStack = {};
  altStack.ss_sp = state.altStack;
  altStack.ss_size = sizeof(state.altStack);
  ::sigaltstack(&altStack, nullptr);

  struct sigaction action = {};
  action.sa_handler = &detail::crashSignalHandler;
  action.sa_flags = SA_ONSTACK;
  ::sigemptyset(&action.sa_mask);
  for (const int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    ::sigaction(sig, &action, nullptr);
  }
  std::set_terminate(&detail::crashTerminateHandler);

  if (handleSigusr1) {
    struct sigaction usr1 = {};
    usr1.sa_handler = &detail::crashUsr1Handler;
    usr1.sa_flags = SA_RESTART;
    ::sigemptyset(&usr1.sa_mask);
    ::sigaction(SIGUSR1, &usr1, nullptr);
  }
  return true;
}

/// True when installCrashHandlers() armed the handlers in this process.
inline bool crashHandlersInstalled() noexcept {
  return detail::crashState().installed.load(std::memory_order_acquire);
}

/// Writes one crash-style dump NOW and keeps running.  `path` overrides
/// the installed qclab-crash-<pid>.json destination.  Signal-safe when
/// the handlers are installed (the path pre-exists); from normal code it
/// works standalone too (formatting a default path on the fly).  Returns
/// false when the file cannot be written.
inline bool dumpNow(const char* path = nullptr) noexcept {
  if (path == nullptr || path[0] == '\0') {
    detail::CrashState& state = detail::crashState();
    if (state.installed.load(std::memory_order_acquire)) {
      return detail::dumpTo(state.path, 0, "manual");
    }
    char local[512];
    detail::formatCrashPath(local, sizeof(local),
                            std::getenv("QCLAB_OBS_CRASH_DIR"));
    return detail::dumpTo(local, 0, "manual");
  }
  return detail::dumpTo(path, 0, "manual");
}

#else  // !QCLAB_OBS_CRASH_POSIX

/// No-op crash diagnostics (obs disabled, or no POSIX signals).
inline bool installCrashHandlers(bool = false) { return false; }
inline bool crashHandlersInstalled() noexcept { return false; }
inline bool dumpNow(const char* = nullptr) noexcept { return false; }

#endif  // QCLAB_OBS_CRASH_POSIX

}  // namespace qclab::obs

#pragma once

/// \file bitstring.hpp
/// \brief Conversions between classical bitstrings ("0110") and basis-state
/// indices, following the MSB-first qubit ordering of bits.hpp.

#include <string>

#include "qclab/util/bits.hpp"

namespace qclab::util {

/// Converts a bitstring such as "01" to the index of the corresponding basis
/// state.  Character k of the string is the value of qubit k (qubit 0 is the
/// most significant bit).  Throws InvalidArgumentError on characters other
/// than '0'/'1' or on length mismatch with `nbQubits` (pass -1 to skip the
/// length check).
index_t bitstringToIndex(const std::string& bits, int nbQubits = -1);

/// Converts a basis-state index to its bitstring for an `nbQubits` register.
std::string indexToBitstring(index_t index, int nbQubits);

/// Validates that `bits` consists only of '0'/'1' characters.
bool isBitstring(const std::string& bits) noexcept;

}  // namespace qclab::util

#pragma once

/// \file bits.hpp
/// \brief Bit-manipulation primitives for state-vector indexing.
///
/// Convention (matching QCLAB / the paper): qubit 0 is the *most significant*
/// bit of a basis-state index, i.e. for an n-qubit register the amplitude of
/// |b0 b1 ... b_{n-1}> lives at index  b0*2^{n-1} + b1*2^{n-2} + ... + b_{n-1}.
/// This is the ordering produced by kron(q0_state, kron(q1_state, ...)).

#include <bit>
#include <cstdint>
#include <vector>

#include "qclab/util/errors.hpp"

namespace qclab::util {

/// Index type for state-vector positions (supports up to 63 qubits).
using index_t = std::uint64_t;

/// Bit position (counted from the least significant bit) of `qubit` in an
/// `nbQubits`-qubit register index.
constexpr int bitPosition(int qubit, int nbQubits) noexcept {
  return nbQubits - 1 - qubit;
}

/// Value (0 or 1) of the bit at position `pos` (from LSB) of `i`.
constexpr index_t getBit(index_t i, int pos) noexcept {
  return (i >> pos) & index_t{1};
}

/// `i` with the bit at position `pos` set to 1.
constexpr index_t setBit(index_t i, int pos) noexcept {
  return i | (index_t{1} << pos);
}

/// `i` with the bit at position `pos` cleared to 0.
constexpr index_t clearBit(index_t i, int pos) noexcept {
  return i & ~(index_t{1} << pos);
}

/// `i` with the bit at position `pos` flipped.
constexpr index_t flipBit(index_t i, int pos) noexcept {
  return i ^ (index_t{1} << pos);
}

/// Inserts a 0 bit at position `pos`: bits of `i` at positions >= pos are
/// shifted one place up, lower bits are kept.  The result has one more
/// significant bit than `i`.  At pos == 63 the shifted-up bits fall off the
/// top of the 64-bit index (only the low 63 bits of `i` survive); at
/// pos >= 64 the insertion happens above every representable bit and `i`
/// is returned unchanged — both edges are well-defined here instead of the
/// undefined behaviour a shift by pos + 1 >= 64 would invoke.
constexpr index_t insertZeroBit(index_t i, int pos) noexcept {
  if (pos >= 63) {
    return pos >= 64 ? i : i & ((index_t{1} << 63) - 1);
  }
  const index_t low = i & ((index_t{1} << pos) - 1);
  const index_t high = (i >> pos) << (pos + 1);
  return high | low;
}

/// Inserts the bit `value` at position `pos` (see insertZeroBit; the same
/// 64-bit edge rules apply, and a value inserted at pos >= 64 is dropped).
constexpr index_t insertBit(index_t i, int pos, index_t value) noexcept {
  const index_t inserted = insertZeroBit(i, pos);
  return pos >= 64 ? inserted : inserted | (value << pos);
}

/// Inserts 0 bits at every position in `positions`.  Positions refer to the
/// *final* index and must be sorted in ascending order.
inline index_t insertZeroBits(index_t i, const std::vector<int>& positions) noexcept {
  for (int pos : positions) i = insertZeroBit(i, pos);
  return i;
}

/// Removes the bit at position `pos`, shifting higher bits down.  At
/// pos == 63 the removed bit is the topmost one, so only the low 63 bits
/// survive; at pos >= 64 there is no representable bit to remove and `i`
/// is returned unchanged (avoiding the undefined shift by pos + 1 >= 64).
constexpr index_t removeBit(index_t i, int pos) noexcept {
  if (pos >= 63) {
    return pos >= 64 ? i : i & ((index_t{1} << 63) - 1);
  }
  const index_t low = i & ((index_t{1} << pos) - 1);
  const index_t high = (i >> (pos + 1)) << pos;
  return high | low;
}

/// Number of trailing zero bits of a nonzero index.
constexpr int countTrailingZeros(index_t value) noexcept {
  return std::countr_zero(value);
}

/// True if `value` is a power of two (and nonzero).
constexpr bool isPowerOfTwo(index_t value) noexcept {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Base-2 logarithm of a power of two.  Throws InvalidArgumentError on 0,
/// which has no logarithm (the old behaviour silently returned 0, aliasing
/// an empty register with a single-amplitude one).
constexpr int log2PowerOfTwo(index_t value) {
  if (value == 0) {
    throw InvalidArgumentError("log2PowerOfTwo(0) is undefined");
  }
  int log = 0;
  while (value > 1) {
    value >>= 1;
    ++log;
  }
  return log;
}

}  // namespace qclab::util

#pragma once

/// \file bits.hpp
/// \brief Bit-manipulation primitives for state-vector indexing.
///
/// Convention (matching QCLAB / the paper): qubit 0 is the *most significant*
/// bit of a basis-state index, i.e. for an n-qubit register the amplitude of
/// |b0 b1 ... b_{n-1}> lives at index  b0*2^{n-1} + b1*2^{n-2} + ... + b_{n-1}.
/// This is the ordering produced by kron(q0_state, kron(q1_state, ...)).

#include <cstdint>
#include <vector>

namespace qclab::util {

/// Index type for state-vector positions (supports up to 63 qubits).
using index_t = std::uint64_t;

/// Bit position (counted from the least significant bit) of `qubit` in an
/// `nbQubits`-qubit register index.
constexpr int bitPosition(int qubit, int nbQubits) noexcept {
  return nbQubits - 1 - qubit;
}

/// Value (0 or 1) of the bit at position `pos` (from LSB) of `i`.
constexpr index_t getBit(index_t i, int pos) noexcept {
  return (i >> pos) & index_t{1};
}

/// `i` with the bit at position `pos` set to 1.
constexpr index_t setBit(index_t i, int pos) noexcept {
  return i | (index_t{1} << pos);
}

/// `i` with the bit at position `pos` cleared to 0.
constexpr index_t clearBit(index_t i, int pos) noexcept {
  return i & ~(index_t{1} << pos);
}

/// `i` with the bit at position `pos` flipped.
constexpr index_t flipBit(index_t i, int pos) noexcept {
  return i ^ (index_t{1} << pos);
}

/// Inserts a 0 bit at position `pos`: bits of `i` at positions >= pos are
/// shifted one place up, lower bits are kept.  The result has one more
/// significant bit than `i`.
constexpr index_t insertZeroBit(index_t i, int pos) noexcept {
  const index_t low = i & ((index_t{1} << pos) - 1);
  const index_t high = (i >> pos) << (pos + 1);
  return high | low;
}

/// Inserts the bit `value` at position `pos` (see insertZeroBit).
constexpr index_t insertBit(index_t i, int pos, index_t value) noexcept {
  return insertZeroBit(i, pos) | (value << pos);
}

/// Inserts 0 bits at every position in `positions`.  Positions refer to the
/// *final* index and must be sorted in ascending order.
inline index_t insertZeroBits(index_t i, const std::vector<int>& positions) noexcept {
  for (int pos : positions) i = insertZeroBit(i, pos);
  return i;
}

/// Removes the bit at position `pos`, shifting higher bits down.
constexpr index_t removeBit(index_t i, int pos) noexcept {
  const index_t low = i & ((index_t{1} << pos) - 1);
  const index_t high = (i >> (pos + 1)) << pos;
  return high | low;
}

/// True if `value` is a power of two (and nonzero).
constexpr bool isPowerOfTwo(index_t value) noexcept {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Base-2 logarithm of a power of two.
constexpr int log2PowerOfTwo(index_t value) noexcept {
  int log = 0;
  while (value > 1) {
    value >>= 1;
    ++log;
  }
  return log;
}

}  // namespace qclab::util

#pragma once

/// \file errors.hpp
/// \brief Exception types and checking helpers used across the library.

#include <stdexcept>
#include <string>

namespace qclab {

/// Base class for all qclab errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a qubit index is out of range for the circuit/register.
class QubitRangeError : public Error {
 public:
  using Error::Error;
};

/// Thrown when an argument is structurally invalid (dimension mismatch,
/// duplicate qubits, non-unitary matrix, malformed bitstring, ...).
class InvalidArgumentError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a gate (or measurement basis) is outside the set a
/// simulation engine supports — e.g. a non-Clifford gate handed to the
/// stabilizer tableau.  Derives from InvalidArgumentError so callers that
/// treat "bad gate for this engine" as an argument error keep working;
/// the dispatch layer catches this type specifically to fall back to the
/// statevector path.
class UnsupportedGateError : public InvalidArgumentError {
 public:
  using InvalidArgumentError::InvalidArgumentError;
};

/// Thrown by the OpenQASM parser on malformed input.
class QasmParseError : public Error {
 public:
  QasmParseError(const std::string& message, int line);
  /// 1-based source line the error was detected on.
  int line() const noexcept { return line_; }

 private:
  int line_;
};

namespace util {

/// Throws QubitRangeError unless `0 <= qubit < nbQubits`.
void checkQubit(int qubit, int nbQubits);

/// Throws InvalidArgumentError with `message` unless `condition` holds.
void require(bool condition, const std::string& message);

}  // namespace util
}  // namespace qclab

#include "qclab/util/errors.hpp"

namespace qclab {

QasmParseError::QasmParseError(const std::string& message, int line)
    : Error("QASM parse error (line " + std::to_string(line) + "): " + message),
      line_(line) {}

namespace util {

void checkQubit(int qubit, int nbQubits) {
  if (qubit < 0 || qubit >= nbQubits) {
    throw QubitRangeError("qubit index " + std::to_string(qubit) +
                          " out of range [0, " + std::to_string(nbQubits) +
                          ")");
  }
}

void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgumentError(message);
}

}  // namespace util
}  // namespace qclab

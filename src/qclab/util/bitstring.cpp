#include "qclab/util/bitstring.hpp"

#include "qclab/util/errors.hpp"

namespace qclab::util {

index_t bitstringToIndex(const std::string& bits, int nbQubits) {
  if (nbQubits >= 0 && static_cast<int>(bits.size()) != nbQubits) {
    throw InvalidArgumentError("bitstring '" + bits + "' has length " +
                               std::to_string(bits.size()) + ", expected " +
                               std::to_string(nbQubits));
  }
  require(bits.size() <= 63, "bitstring longer than 63 qubits");
  index_t index = 0;
  for (char c : bits) {
    if (c != '0' && c != '1') {
      throw InvalidArgumentError("bitstring '" + bits +
                                 "' contains a character other than 0/1");
    }
    index = (index << 1) | static_cast<index_t>(c - '0');
  }
  return index;
}

std::string indexToBitstring(index_t index, int nbQubits) {
  require(nbQubits >= 0 && nbQubits <= 63, "nbQubits out of range [0, 63]");
  std::string bits(static_cast<std::size_t>(nbQubits), '0');
  for (int q = 0; q < nbQubits; ++q) {
    bits[static_cast<std::size_t>(q)] =
        getBit(index, bitPosition(q, nbQubits)) ? '1' : '0';
  }
  return bits;
}

bool isBitstring(const std::string& bits) noexcept {
  for (char c : bits) {
    if (c != '0' && c != '1') return false;
  }
  return true;
}

}  // namespace qclab::util

#pragma once

/// \file simulator.hpp
/// \brief Runs QCircuits on the stabilizer tableau.
///
/// Supports the Clifford subset of the gate catalog (Paulis, H, S/S†,
/// sqrt(X)/sqrt(X)†, CX/CY/CZ, SWAP/iSWAP, singly-controlled X/Z through
/// MCX/MCZ) plus Z/X/Y-basis measurements and resets.  Non-Clifford gates
/// throw InvalidArgumentError.  One run produces one shot; measurement
/// randomness draws from the provided generator.

#include <map>

#include "qclab/qcircuit.hpp"
#include "qclab/stabilizer/tableau.hpp"

namespace qclab::stabilizer {

namespace detail {

template <typename T>
void applyGate(Tableau& tableau, const qgates::QGate<T>& gate, int offset) {
  using namespace qclab::qgates;
  if (dynamic_cast<const Identity<T>*>(&gate)) return;
  if (const auto* g = dynamic_cast<const PauliX<T>*>(&gate)) {
    tableau.x(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const PauliY<T>*>(&gate)) {
    tableau.y(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const PauliZ<T>*>(&gate)) {
    tableau.z(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const Hadamard<T>*>(&gate)) {
    tableau.h(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const SGate<T>*>(&gate)) {
    tableau.s(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const SdgGate<T>*>(&gate)) {
    tableau.sdg(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const SX<T>*>(&gate)) {
    tableau.sx(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const SXdg<T>*>(&gate)) {
    tableau.sxdg(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const CX<T>*>(&gate)) {
    const int c = g->control() + offset;
    const int t = g->target() + offset;
    if (g->controlState() == 0) tableau.x(c);
    tableau.cx(c, t);
    if (g->controlState() == 0) tableau.x(c);
    return;
  }
  if (const auto* g = dynamic_cast<const CY<T>*>(&gate)) {
    const int c = g->control() + offset;
    const int t = g->target() + offset;
    if (g->controlState() == 0) tableau.x(c);
    tableau.sdg(t);
    tableau.cx(c, t);
    tableau.s(t);
    if (g->controlState() == 0) tableau.x(c);
    return;
  }
  if (const auto* g = dynamic_cast<const CZ<T>*>(&gate)) {
    const int c = g->control() + offset;
    const int t = g->target() + offset;
    if (g->controlState() == 0) tableau.x(c);
    tableau.cz(c, t);
    if (g->controlState() == 0) tableau.x(c);
    return;
  }
  if (const auto* g = dynamic_cast<const SWAP<T>*>(&gate)) {
    tableau.swap(g->qubit0() + offset, g->qubit1() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const iSWAP<T>*>(&gate)) {
    tableau.iswap(g->qubit0() + offset, g->qubit1() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const iSWAPdg<T>*>(&gate)) {
    // Inverse of iSWAP = SWAP . CZ . (S (x) S).
    const int a = g->qubit0() + offset;
    const int b = g->qubit1() + offset;
    tableau.swap(a, b);
    tableau.cz(a, b);
    tableau.sdg(a);
    tableau.sdg(b);
    return;
  }
  if (const auto* g = dynamic_cast<const MCGate<T>*>(&gate)) {
    if (g->controlQubits().size() == 1) {
      const int c = g->controlQubits()[0] + offset;
      const int t = g->target() + offset;
      const bool invert = g->states()[0] == 0;
      if (invert) tableau.x(c);
      if (dynamic_cast<const MCX<T>*>(&gate)) {
        tableau.cx(c, t);
      } else if (dynamic_cast<const MCZ<T>*>(&gate)) {
        tableau.cz(c, t);
      } else if (dynamic_cast<const MCY<T>*>(&gate)) {
        tableau.sdg(t);
        tableau.cx(c, t);
        tableau.s(t);
      } else {
        throw InvalidArgumentError("unsupported multi-controlled gate in "
                                   "stabilizer simulation");
      }
      if (invert) tableau.x(c);
      return;
    }
  }
  throw InvalidArgumentError(
      "gate is not in the Clifford subset supported by the stabilizer "
      "simulator");
}

template <typename T>
void applyMeasurementBasisChange(Tableau& tableau,
                                 const Measurement<T>& measurement, int qubit,
                                 bool revert) {
  switch (measurement.basis()) {
    case Basis::kZ:
      break;
    case Basis::kX:
      tableau.h(qubit);
      break;
    case Basis::kY:
      // V^H = H S^H before, V = S H after.
      if (!revert) {
        tableau.sdg(qubit);
        tableau.h(qubit);
      } else {
        tableau.h(qubit);
        tableau.s(qubit);
      }
      break;
    case Basis::kCustom:
      throw InvalidArgumentError(
          "custom-basis measurement is not supported by the stabilizer "
          "simulator");
  }
}

template <typename T>
void run(const QCircuit<T>& circuit, Tableau& tableau, random::Rng& rng,
         std::string& outcomes, int offset) {
  const int total = offset + circuit.offset();
  for (const auto& object : circuit) {
    switch (object->objectType()) {
      case ObjectType::kGate:
        applyGate(tableau, static_cast<const qgates::QGate<T>&>(*object),
                  total);
        break;
      case ObjectType::kMeasurement: {
        const auto& measurement = static_cast<const Measurement<T>&>(*object);
        const int qubit = measurement.qubit() + total;
        applyMeasurementBasisChange(tableau, measurement, qubit, false);
        const int outcome = tableau.measure(qubit, rng);
        applyMeasurementBasisChange(tableau, measurement, qubit, true);
        outcomes += static_cast<char>('0' + outcome);
        break;
      }
      case ObjectType::kReset:
        tableau.reset(static_cast<const Reset<T>&>(*object).qubit() + total,
                      rng);
        break;
      case ObjectType::kBarrier:
        break;
      case ObjectType::kCircuit:
        run(static_cast<const QCircuit<T>&>(*object), tableau, rng, outcomes,
            total);
        break;
    }
  }
}

}  // namespace detail

/// One stabilizer-simulation shot of `circuit` from |0...0>: returns the
/// concatenated measurement outcomes and leaves the collapsed tableau in
/// `tableau` (pass a fresh Tableau of circuit.nbQubits()).
template <typename T>
std::string simulateShot(const QCircuit<T>& circuit, Tableau& tableau,
                         random::Rng& rng) {
  util::require(tableau.nbQubits() >= circuit.nbQubits() + circuit.offset(),
                "tableau too small for the circuit");
  std::string outcomes;
  detail::run(circuit, tableau, rng, outcomes, 0);
  return outcomes;
}

/// Runs `shots` stabilizer shots from |0...0> and returns the outcome
/// histogram (the stabilizer analogue of Simulation::countsMap).
template <typename T>
std::map<std::string, std::uint64_t> sampleCounts(const QCircuit<T>& circuit,
                                                  std::uint64_t shots,
                                                  random::Rng& rng) {
  std::map<std::string, std::uint64_t> histogram;
  for (std::uint64_t shot = 0; shot < shots; ++shot) {
    Tableau tableau(circuit.nbQubits() + circuit.offset());
    ++histogram[simulateShot(circuit, tableau, rng)];
  }
  return histogram;
}

}  // namespace qclab::stabilizer

#pragma once

/// \file simulator.hpp
/// \brief Runs QCircuits on the stabilizer tableau.
///
/// Supports the Clifford subset of the gate catalog (see
/// stabilizer/apply.hpp for the full coverage map, including the
/// value-Clifford angles of the parametric gates) plus Z/X/Y-basis
/// measurements and resets.  Non-Clifford gates throw
/// UnsupportedGateError (an InvalidArgumentError).  One run produces one
/// shot; measurement randomness draws from the provided generator.

#include <map>

#include "qclab/qcircuit.hpp"
#include "qclab/stabilizer/apply.hpp"

namespace qclab::stabilizer {

namespace detail {

template <typename T>
void run(const QCircuit<T>& circuit, Tableau& tableau, random::Rng& rng,
         std::string& outcomes, int offset) {
  const int total = offset + circuit.offset();
  for (const auto& object : circuit) {
    switch (object->objectType()) {
      case ObjectType::kGate:
        applyGate(tableau, static_cast<const qgates::QGate<T>&>(*object),
                  total);
        break;
      case ObjectType::kMeasurement: {
        const auto& measurement = static_cast<const Measurement<T>&>(*object);
        const int qubit = measurement.qubit() + total;
        applyMeasurementBasisChange(tableau, measurement, qubit, false);
        const int outcome = tableau.measure(qubit, rng);
        applyMeasurementBasisChange(tableau, measurement, qubit, true);
        outcomes += static_cast<char>('0' + outcome);
        break;
      }
      case ObjectType::kReset:
        tableau.reset(static_cast<const Reset<T>&>(*object).qubit() + total,
                      rng);
        break;
      case ObjectType::kBarrier:
        break;
      case ObjectType::kCircuit:
        run(static_cast<const QCircuit<T>&>(*object), tableau, rng, outcomes,
            total);
        break;
    }
  }
}

}  // namespace detail

/// One stabilizer-simulation shot of `circuit` from |0...0>: returns the
/// concatenated measurement outcomes and leaves the collapsed tableau in
/// `tableau` (pass a fresh Tableau of circuit.nbQubits()).
template <typename T>
std::string simulateShot(const QCircuit<T>& circuit, Tableau& tableau,
                         random::Rng& rng) {
  util::require(tableau.nbQubits() >= circuit.nbQubits() + circuit.offset(),
                "tableau too small for the circuit");
  std::string outcomes;
  detail::run(circuit, tableau, rng, outcomes, 0);
  return outcomes;
}

/// Runs `shots` stabilizer shots from |0...0> and returns the outcome
/// histogram (the stabilizer analogue of Simulation::countsMap).
template <typename T>
std::map<std::string, std::uint64_t> sampleCounts(const QCircuit<T>& circuit,
                                                  std::uint64_t shots,
                                                  random::Rng& rng) {
  std::map<std::string, std::uint64_t> histogram;
  for (std::uint64_t shot = 0; shot < shots; ++shot) {
    Tableau tableau(circuit.nbQubits() + circuit.offset());
    ++histogram[simulateShot(circuit, tableau, rng)];
  }
  return histogram;
}

}  // namespace qclab::stabilizer

#pragma once

/// \file tableau.hpp
/// \brief Stabilizer (Clifford) simulation with the Aaronson-Gottesman
/// CHP tableau.
///
/// The paper's error-correction example notes (§5.4, footnote) that QEC
/// corrections are implemented in practice "using Clifford gates and
/// classical control, or even entirely in software by tracking the Pauli
/// frame".  This module provides that substrate: Clifford circuits
/// (H, S, Paulis, CX/CZ/SWAP, measurement, reset) simulate in O(n^2) per
/// gate / measurement instead of O(2^n), so repetition-code style circuits
/// scale to thousands of qubits.
///
/// Representation: the standard 2n x (2n+1) binary tableau — n destabilizer
/// rows, n stabilizer rows, one scratch row; each row stores the x/z bits
/// of a Pauli operator plus its sign.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "qclab/random/rng.hpp"
#include "qclab/util/errors.hpp"

namespace qclab::stabilizer {

class Tableau {
 public:
  /// |0...0> on `nbQubits` qubits: destabilizers X_i, stabilizers Z_i.
  explicit Tableau(int nbQubits) : n_(nbQubits) {
    util::require(nbQubits >= 1, "tableau needs at least one qubit");
    const std::size_t rows = 2 * static_cast<std::size_t>(n_) + 1;
    x_.assign(rows, std::vector<std::uint8_t>(static_cast<std::size_t>(n_), 0));
    z_.assign(rows, std::vector<std::uint8_t>(static_cast<std::size_t>(n_), 0));
    r_.assign(rows, 0);
    for (int i = 0; i < n_; ++i) {
      x_[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1;
      z_[static_cast<std::size_t>(n_ + i)][static_cast<std::size_t>(i)] = 1;
    }
  }

  int nbQubits() const noexcept { return n_; }

  // ---- Clifford generators ------------------------------------------------

  /// Hadamard on `a`.
  void h(int a) {
    check(a);
    for (std::size_t i = 0; i < rows(); ++i) {
      auto& xi = x_[i][static_cast<std::size_t>(a)];
      auto& zi = z_[i][static_cast<std::size_t>(a)];
      r_[i] ^= static_cast<std::uint8_t>(xi & zi);
      std::swap(xi, zi);
    }
  }

  /// Phase gate S on `a`.
  void s(int a) {
    check(a);
    for (std::size_t i = 0; i < rows(); ++i) {
      const auto xi = x_[i][static_cast<std::size_t>(a)];
      auto& zi = z_[i][static_cast<std::size_t>(a)];
      r_[i] ^= static_cast<std::uint8_t>(xi & zi);
      zi ^= xi;
    }
  }

  /// S† on `a` (S Z).
  void sdg(int a) {
    z(a);
    s(a);
  }

  /// CNOT with control `a`, target `b`.
  void cx(int a, int b) {
    check(a);
    check(b);
    util::require(a != b, "control equals target");
    for (std::size_t i = 0; i < rows(); ++i) {
      const auto xa = x_[i][static_cast<std::size_t>(a)];
      const auto zb = z_[i][static_cast<std::size_t>(b)];
      auto& xb = x_[i][static_cast<std::size_t>(b)];
      auto& za = z_[i][static_cast<std::size_t>(a)];
      r_[i] ^= static_cast<std::uint8_t>(xa & zb & (xb ^ za ^ 1));
      xb ^= xa;
      za ^= zb;
    }
  }

  /// Pauli X on `a` (sign flip of rows with Z support on a).
  void x(int a) {
    check(a);
    for (std::size_t i = 0; i < rows(); ++i) {
      r_[i] ^= z_[i][static_cast<std::size_t>(a)];
    }
  }

  /// Pauli Y on `a`.
  void y(int a) {
    check(a);
    for (std::size_t i = 0; i < rows(); ++i) {
      r_[i] ^= static_cast<std::uint8_t>(x_[i][static_cast<std::size_t>(a)] ^
                                         z_[i][static_cast<std::size_t>(a)]);
    }
  }

  /// Pauli Z on `a`.
  void z(int a) {
    check(a);
    for (std::size_t i = 0; i < rows(); ++i) {
      r_[i] ^= x_[i][static_cast<std::size_t>(a)];
    }
  }

  // ---- derived Clifford gates ---------------------------------------------

  /// CZ(a, b) = H(b) CX(a, b) H(b).
  void cz(int a, int b) {
    h(b);
    cx(a, b);
    h(b);
  }

  /// SWAP via three CNOTs.
  void swap(int a, int b) {
    cx(a, b);
    cx(b, a);
    cx(a, b);
  }

  /// sqrt(X) = H S H (up to global phase).
  void sx(int a) {
    h(a);
    s(a);
    h(a);
  }

  /// sqrt(X)† = H S† H.
  void sxdg(int a) {
    h(a);
    sdg(a);
    h(a);
  }

  /// iSWAP = SWAP . CZ . (S (x) S).
  void iswap(int a, int b) {
    s(a);
    s(b);
    cz(a, b);
    swap(a, b);
  }

  // ---- measurement ---------------------------------------------------------

  /// True if a Z measurement of `a` has a deterministic outcome.
  bool isDeterministic(int a) const {
    check(a);
    for (int p = n_; p < 2 * n_; ++p) {
      if (x_[static_cast<std::size_t>(p)][static_cast<std::size_t>(a)]) {
        return false;
      }
    }
    return true;
  }

  /// Measures qubit `a` in the computational basis; random outcomes draw
  /// from `rng`.  Returns 0 or 1 and collapses the state.
  int measure(int a, random::Rng& rng) {
    check(a);
    const int pivot = measurePivot(a);
    if (pivot >= 0) {
      const int outcome = static_cast<int>(rng.uniformInt(2));
      collapseRandom(a, pivot, outcome);
      return outcome;
    }
    return deterministicOutcome(a);
  }

  /// Measures qubit `a` forcing a random outcome to `desired` (0 or 1) —
  /// the dispatch layer's branch-forking primitive: a 50/50 measurement is
  /// explored once per outcome instead of sampled.  When the outcome is
  /// deterministic `desired` is ignored and the determined value returned.
  int measureForced(int a, int desired) {
    check(a);
    util::require(desired == 0 || desired == 1,
                  "forced measurement outcome must be 0 or 1");
    const int pivot = measurePivot(a);
    if (pivot >= 0) {
      collapseRandom(a, pivot, desired);
      return desired;
    }
    return deterministicOutcome(a);
  }

  /// Resets qubit `a` to |0> (measure, flip on outcome 1).
  void reset(int a, random::Rng& rng) {
    if (measure(a, rng) == 1) {
      x(a);
    }
  }

  /// Expectation value of the Pauli string `paulis` (characters I/X/Y/Z,
  /// one per qubit) on the stabilizer state: +1 or -1 if +-P is in the
  /// stabilizer group, 0 otherwise.  O(n^2).
  int expectation(const std::string& paulis) const {
    util::require(static_cast<int>(paulis.size()) == n_,
                  "Pauli string length must equal nbQubits");
    std::vector<std::uint8_t> px(static_cast<std::size_t>(n_), 0);
    std::vector<std::uint8_t> pz(static_cast<std::size_t>(n_), 0);
    for (int j = 0; j < n_; ++j) {
      switch (paulis[static_cast<std::size_t>(j)]) {
        case 'I': case 'i': break;
        case 'X': case 'x': px[static_cast<std::size_t>(j)] = 1; break;
        case 'Y': case 'y':
          px[static_cast<std::size_t>(j)] = 1;
          pz[static_cast<std::size_t>(j)] = 1;
          break;
        case 'Z': case 'z': pz[static_cast<std::size_t>(j)] = 1; break;
        default:
          throw InvalidArgumentError(
              "Pauli string may contain only I, X, Y, Z");
      }
    }
    const auto anticommutes = [&](std::size_t row) {
      int parity = 0;
      for (int j = 0; j < n_; ++j) {
        const std::size_t col = static_cast<std::size_t>(j);
        parity ^= (x_[row][col] & pz[col]) ^ (z_[row][col] & px[col]);
      }
      return parity != 0;
    };
    // P anticommuting with any stabilizer generator -> expectation 0.
    for (int i = 0; i < n_; ++i) {
      if (anticommutes(static_cast<std::size_t>(n_ + i))) return 0;
    }
    // Otherwise +-P is a product of the stabilizer generators: generator i
    // participates iff destabilizer i anticommutes with P.  Accumulate the
    // product in the scratch row and read off the sign.
    const std::size_t scratch = 2 * static_cast<std::size_t>(n_);
    auto* self = const_cast<Tableau*>(this);
    std::fill(self->x_[scratch].begin(), self->x_[scratch].end(),
              std::uint8_t{0});
    std::fill(self->z_[scratch].begin(), self->z_[scratch].end(),
              std::uint8_t{0});
    self->r_[scratch] = 0;
    for (int i = 0; i < n_; ++i) {
      if (anticommutes(static_cast<std::size_t>(i))) {
        self->rowsum(scratch, static_cast<std::size_t>(n_ + i));
      }
    }
    // The product must match P bit-for-bit (it does whenever P commutes
    // with the full group).
    for (int j = 0; j < n_; ++j) {
      const std::size_t col = static_cast<std::size_t>(j);
      util::require(x_[scratch][col] == px[col] &&
                        z_[scratch][col] == pz[col],
                    "Pauli string is not in the stabilizer group (internal "
                    "inconsistency)");
    }
    return r_[scratch] ? -1 : 1;
  }

  // ---- raw row access (statevector conversion, tests) ----------------------

  /// X bit of stabilizer generator `k` (0..n-1) on qubit `a`.
  bool stabilizerX(int k, int a) const {
    checkRow(k);
    check(a);
    return x_[static_cast<std::size_t>(n_ + k)][static_cast<std::size_t>(a)];
  }

  /// Z bit of stabilizer generator `k` (0..n-1) on qubit `a`.
  bool stabilizerZ(int k, int a) const {
    checkRow(k);
    check(a);
    return z_[static_cast<std::size_t>(n_ + k)][static_cast<std::size_t>(a)];
  }

  /// Sign bit of stabilizer generator `k` (0..n-1): true for "-".
  bool stabilizerSign(int k) const {
    checkRow(k);
    return r_[static_cast<std::size_t>(n_ + k)];
  }

  /// The sign and Pauli letters of stabilizer row `k` (0..n-1), e.g.
  /// "+XXI" — for inspection and tests.
  std::string stabilizer(int k) const {
    util::require(k >= 0 && k < n_, "stabilizer index out of range");
    const std::size_t row = static_cast<std::size_t>(n_ + k);
    std::string out(r_[row] ? "-" : "+");
    for (int j = 0; j < n_; ++j) {
      const bool xb = x_[row][static_cast<std::size_t>(j)];
      const bool zb = z_[row][static_cast<std::size_t>(j)];
      out += xb ? (zb ? 'Y' : 'X') : (zb ? 'Z' : 'I');
    }
    return out;
  }

 private:
  std::size_t rows() const noexcept {
    return 2 * static_cast<std::size_t>(n_) + 1;
  }

  void check(int a) const { util::checkQubit(a, n_); }

  void checkRow(int k) const {
    util::require(k >= 0 && k < n_, "stabilizer index out of range");
  }

  /// Index of a stabilizer row anticommuting with Z_a, or -1 when the
  /// measurement outcome is deterministic.
  int measurePivot(int a) const {
    for (int p = n_; p < 2 * n_; ++p) {
      if (x_[static_cast<std::size_t>(p)][static_cast<std::size_t>(a)]) {
        return p;
      }
    }
    return -1;
  }

  /// Collapses a random Z_a measurement through stabilizer row `pivot`
  /// to the given outcome (the Aaronson-Gottesman random branch).
  void collapseRandom(int a, int pivot, int outcome) {
    const std::size_t p = static_cast<std::size_t>(pivot);
    for (std::size_t i = 0; i < 2 * static_cast<std::size_t>(n_); ++i) {
      if (i != p && x_[i][static_cast<std::size_t>(a)]) {
        rowsum(i, p);
      }
    }
    // Destabilizer partner takes the old stabilizer row.
    x_[p - static_cast<std::size_t>(n_)] = x_[p];
    z_[p - static_cast<std::size_t>(n_)] = z_[p];
    r_[p - static_cast<std::size_t>(n_)] = r_[p];
    // New stabilizer: +/- Z_a with the chosen sign.
    std::fill(x_[p].begin(), x_[p].end(), std::uint8_t{0});
    std::fill(z_[p].begin(), z_[p].end(), std::uint8_t{0});
    z_[p][static_cast<std::size_t>(a)] = 1;
    r_[p] = static_cast<std::uint8_t>(outcome);
  }

  /// Deterministic Z_a measurement outcome, accumulated in the scratch row.
  int deterministicOutcome(int a) {
    const std::size_t scratch = 2 * static_cast<std::size_t>(n_);
    std::fill(x_[scratch].begin(), x_[scratch].end(), std::uint8_t{0});
    std::fill(z_[scratch].begin(), z_[scratch].end(), std::uint8_t{0});
    r_[scratch] = 0;
    for (int i = 0; i < n_; ++i) {
      if (x_[static_cast<std::size_t>(i)][static_cast<std::size_t>(a)]) {
        rowsum(scratch, static_cast<std::size_t>(n_ + i));
      }
    }
    return r_[scratch];
  }

  /// Phase-exponent contribution of multiplying single-qubit Paulis
  /// (x1, z1) * (x2, z2), in {-1, 0, +1} (mod 4 arithmetic).
  static int phaseG(int x1, int z1, int x2, int z2) {
    if (x1 == 0 && z1 == 0) return 0;
    if (x1 == 1 && z1 == 1) return z2 - x2;           // Y * P
    if (x1 == 1) return z2 * (2 * x2 - 1);            // X * P
    return x2 * (1 - 2 * z2);                         // Z * P
  }

  /// Row h <- row h * row i (Pauli product with sign tracking).
  void rowsum(std::size_t h, std::size_t i) {
    int phase = 2 * r_[h] + 2 * r_[i];
    for (int j = 0; j < n_; ++j) {
      const std::size_t col = static_cast<std::size_t>(j);
      phase += phaseG(x_[i][col], z_[i][col], x_[h][col], z_[h][col]);
      x_[h][col] ^= x_[i][col];
      z_[h][col] ^= z_[i][col];
    }
    phase %= 4;
    if (phase < 0) phase += 4;
    // For stabilizer rows the sum is always 0 or 2 (they commute pairwise);
    // destabilizer rows may anticommute with the pivot, giving 1 or 3 — but
    // destabilizer signs are never read, so any consistent bit works.
    r_[h] = static_cast<std::uint8_t>((phase >> 1) & 1);
  }

  int n_;
  std::vector<std::vector<std::uint8_t>> x_;
  std::vector<std::vector<std::uint8_t>> z_;
  std::vector<std::uint8_t> r_;
};

}  // namespace qclab::stabilizer

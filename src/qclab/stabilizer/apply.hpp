#pragma once

/// \file apply.hpp
/// \brief Maps QGate objects onto tableau operations — the gate-coverage
/// layer shared by the stabilizer simulator (stabilizer/simulator.hpp) and
/// the adaptive dispatcher (sim/dispatch.hpp).
///
/// Supports the structural Clifford gates (Paulis, H, S/S†, sqrt(X)/
/// sqrt(X)†, CX/CY/CZ, SWAP/iSWAP/iSWAP†, singly-controlled X/Y/Z through
/// MCGate) and the *value*-Clifford cases of the parametric gates: Phase /
/// RotationX / RotationY / RotationZ and RotationXX / RotationYY /
/// RotationZZ at multiples of π/2, CPhase at π (= CZ), and the controlled
/// rotations CRotationX/Y/Z at π.  Parametric matches are up to global
/// phase, which the tableau does not track.  Everything else throws
/// UnsupportedGateError — a typed signal the dispatcher catches to fall
/// back to the statevector path (no gate ever silently no-ops).
///
/// This header is deliberately free of qcircuit.hpp so the dispatch layer
/// can use it without an include cycle.

#include <cmath>
#include <limits>

#include "qclab/measurement.hpp"
#include "qclab/qgates/qgates.hpp"
#include "qclab/stabilizer/tableau.hpp"

namespace qclab::stabilizer {

namespace detail {

/// Snaps `theta` to a multiple of π/2 on the circle: returns true and sets
/// `k` to the quarter-turn count in {0, 1, 2, 3} when theta is within a
/// few-ulp tolerance of k·π/2 (mod 2π), false otherwise.
template <typename T>
bool quarterTurns(T theta, int& k) {
  constexpr T twoPi = T(2) * T(3.14159265358979323846264338327950288L);
  constexpr T quarter = twoPi / T(4);
  T reduced = std::fmod(theta, twoPi);
  if (reduced < T(0)) reduced += twoPi;
  const int nearest = static_cast<int>(std::lround(reduced / quarter));
  const T tol = T(512) * std::numeric_limits<T>::epsilon();
  if (std::abs(reduced - static_cast<T>(nearest) * quarter) > tol) {
    return false;
  }
  k = nearest % 4;
  return true;
}

/// RZZ by k quarter turns (diagonal, order-free), up to global phase.
inline void applyRzzQuarters(Tableau& tableau, int a, int b, int k) {
  switch (k) {
    case 0: break;
    case 1: tableau.s(a); tableau.s(b); tableau.cz(a, b); break;
    case 2: tableau.z(a); tableau.z(b); break;
    case 3: tableau.sdg(a); tableau.sdg(b); tableau.cz(a, b); break;
  }
}

template <typename T>
void applyGate(Tableau& tableau, const qgates::QGate<T>& gate, int offset) {
  using namespace qclab::qgates;
  if (dynamic_cast<const Identity<T>*>(&gate)) return;
  if (const auto* g = dynamic_cast<const PauliX<T>*>(&gate)) {
    tableau.x(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const PauliY<T>*>(&gate)) {
    tableau.y(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const PauliZ<T>*>(&gate)) {
    tableau.z(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const Hadamard<T>*>(&gate)) {
    tableau.h(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const SGate<T>*>(&gate)) {
    tableau.s(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const SdgGate<T>*>(&gate)) {
    tableau.sdg(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const SX<T>*>(&gate)) {
    tableau.sx(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const SXdg<T>*>(&gate)) {
    tableau.sxdg(g->qubit() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const Phase<T>*>(&gate)) {
    // diag(1, e^{iθ}): exactly I / S / Z / S† at quarter turns.
    int k;
    if (!quarterTurns(g->theta(), k)) {
      throw UnsupportedGateError(
          "Phase gate angle is not a multiple of pi/2 (non-Clifford)");
    }
    const int q = g->qubit() + offset;
    switch (k) {
      case 0: break;
      case 1: tableau.s(q); break;
      case 2: tableau.z(q); break;
      case 3: tableau.sdg(q); break;
    }
    return;
  }
  if (const auto* g = dynamic_cast<const RotationZ<T>*>(&gate)) {
    // RZ(θ) = Phase(θ) up to global phase.
    int k;
    if (!quarterTurns(g->theta(), k)) {
      throw UnsupportedGateError(
          "RotationZ angle is not a multiple of pi/2 (non-Clifford)");
    }
    const int q = g->qubit() + offset;
    switch (k) {
      case 0: break;
      case 1: tableau.s(q); break;
      case 2: tableau.z(q); break;
      case 3: tableau.sdg(q); break;
    }
    return;
  }
  if (const auto* g = dynamic_cast<const RotationX<T>*>(&gate)) {
    // RX(θ) = sqrt(X)^k up to global phase at quarter turns.
    int k;
    if (!quarterTurns(g->theta(), k)) {
      throw UnsupportedGateError(
          "RotationX angle is not a multiple of pi/2 (non-Clifford)");
    }
    const int q = g->qubit() + offset;
    switch (k) {
      case 0: break;
      case 1: tableau.sx(q); break;
      case 2: tableau.x(q); break;
      case 3: tableau.sxdg(q); break;
    }
    return;
  }
  if (const auto* g = dynamic_cast<const RotationY<T>*>(&gate)) {
    // RY(π/2) = H·Z, RY(π) = X·Z, RY(3π/2) = Z·H (the first two exactly,
    // the last up to global phase); right factor applies first.
    int k;
    if (!quarterTurns(g->theta(), k)) {
      throw UnsupportedGateError(
          "RotationY angle is not a multiple of pi/2 (non-Clifford)");
    }
    const int q = g->qubit() + offset;
    switch (k) {
      case 0: break;
      case 1: tableau.z(q); tableau.h(q); break;
      case 2: tableau.z(q); tableau.x(q); break;
      case 3: tableau.h(q); tableau.z(q); break;
    }
    return;
  }
  if (const auto* g = dynamic_cast<const CX<T>*>(&gate)) {
    const int c = g->control() + offset;
    const int t = g->target() + offset;
    if (g->controlState() == 0) tableau.x(c);
    tableau.cx(c, t);
    if (g->controlState() == 0) tableau.x(c);
    return;
  }
  if (const auto* g = dynamic_cast<const CY<T>*>(&gate)) {
    const int c = g->control() + offset;
    const int t = g->target() + offset;
    if (g->controlState() == 0) tableau.x(c);
    tableau.sdg(t);
    tableau.cx(c, t);
    tableau.s(t);
    if (g->controlState() == 0) tableau.x(c);
    return;
  }
  if (const auto* g = dynamic_cast<const CZ<T>*>(&gate)) {
    const int c = g->control() + offset;
    const int t = g->target() + offset;
    if (g->controlState() == 0) tableau.x(c);
    tableau.cz(c, t);
    if (g->controlState() == 0) tableau.x(c);
    return;
  }
  if (const auto* g = dynamic_cast<const CPhase<T>*>(&gate)) {
    // Only CPhase(π) = CZ (and the trivial 0) are Clifford: the quarter
    // turns (controlled S / S†) are not.
    int k;
    if (!quarterTurns(g->theta(), k) || (k % 2) != 0) {
      throw UnsupportedGateError(
          "CPhase angle is not 0 or pi (non-Clifford)");
    }
    if (k == 0) return;
    const int c = g->control() + offset;
    const int t = g->target() + offset;
    if (g->controlState() == 0) tableau.x(c);
    tableau.cz(c, t);
    if (g->controlState() == 0) tableau.x(c);
    return;
  }
  if (const auto* g = dynamic_cast<const CRotationX<T>*>(&gate)) {
    // CRX(π) = CX · S†(control) up to global phase.
    int k;
    if (!quarterTurns(g->theta(), k) || (k % 2) != 0) {
      throw UnsupportedGateError(
          "CRotationX angle is not 0 or pi (non-Clifford)");
    }
    if (k == 0) return;
    const int c = g->control() + offset;
    const int t = g->target() + offset;
    if (g->controlState() == 0) tableau.x(c);
    tableau.sdg(c);
    tableau.cx(c, t);
    if (g->controlState() == 0) tableau.x(c);
    return;
  }
  if (const auto* g = dynamic_cast<const CRotationY<T>*>(&gate)) {
    // CRY(π) = CY · S†(control) up to global phase.
    int k;
    if (!quarterTurns(g->theta(), k) || (k % 2) != 0) {
      throw UnsupportedGateError(
          "CRotationY angle is not 0 or pi (non-Clifford)");
    }
    if (k == 0) return;
    const int c = g->control() + offset;
    const int t = g->target() + offset;
    if (g->controlState() == 0) tableau.x(c);
    tableau.sdg(c);
    tableau.sdg(t);
    tableau.cx(c, t);
    tableau.s(t);
    if (g->controlState() == 0) tableau.x(c);
    return;
  }
  if (const auto* g = dynamic_cast<const CRotationZ<T>*>(&gate)) {
    // CRZ(π) = CZ · S†(control) up to global phase.
    int k;
    if (!quarterTurns(g->theta(), k) || (k % 2) != 0) {
      throw UnsupportedGateError(
          "CRotationZ angle is not 0 or pi (non-Clifford)");
    }
    if (k == 0) return;
    const int c = g->control() + offset;
    const int t = g->target() + offset;
    if (g->controlState() == 0) tableau.x(c);
    tableau.sdg(c);
    tableau.cz(c, t);
    if (g->controlState() == 0) tableau.x(c);
    return;
  }
  if (const auto* g = dynamic_cast<const SWAP<T>*>(&gate)) {
    tableau.swap(g->qubit0() + offset, g->qubit1() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const iSWAP<T>*>(&gate)) {
    tableau.iswap(g->qubit0() + offset, g->qubit1() + offset);
    return;
  }
  if (const auto* g = dynamic_cast<const iSWAPdg<T>*>(&gate)) {
    // Inverse of iSWAP = SWAP . CZ . (S (x) S).
    const int a = g->qubit0() + offset;
    const int b = g->qubit1() + offset;
    tableau.swap(a, b);
    tableau.cz(a, b);
    tableau.sdg(a);
    tableau.sdg(b);
    return;
  }
  if (const auto* g = dynamic_cast<const RotationZZ<T>*>(&gate)) {
    int k;
    if (!quarterTurns(g->theta(), k)) {
      throw UnsupportedGateError(
          "RotationZZ angle is not a multiple of pi/2 (non-Clifford)");
    }
    applyRzzQuarters(tableau, g->qubit0() + offset, g->qubit1() + offset, k);
    return;
  }
  if (const auto* g = dynamic_cast<const RotationXX<T>*>(&gate)) {
    // RXX = (H⊗H) RZZ (H⊗H).
    int k;
    if (!quarterTurns(g->theta(), k)) {
      throw UnsupportedGateError(
          "RotationXX angle is not a multiple of pi/2 (non-Clifford)");
    }
    const int a = g->qubit0() + offset;
    const int b = g->qubit1() + offset;
    tableau.h(a);
    tableau.h(b);
    applyRzzQuarters(tableau, a, b, k);
    tableau.h(a);
    tableau.h(b);
    return;
  }
  if (const auto* g = dynamic_cast<const RotationYY<T>*>(&gate)) {
    // RYY = (V⊗V) RZZ (V⊗V)† with V = S·H (so V Z V† = Y).
    int k;
    if (!quarterTurns(g->theta(), k)) {
      throw UnsupportedGateError(
          "RotationYY angle is not a multiple of pi/2 (non-Clifford)");
    }
    const int a = g->qubit0() + offset;
    const int b = g->qubit1() + offset;
    tableau.sdg(a);
    tableau.h(a);
    tableau.sdg(b);
    tableau.h(b);
    applyRzzQuarters(tableau, a, b, k);
    tableau.h(a);
    tableau.s(a);
    tableau.h(b);
    tableau.s(b);
    return;
  }
  if (const auto* g = dynamic_cast<const MCGate<T>*>(&gate)) {
    if (g->controlQubits().size() == 1) {
      const int c = g->controlQubits()[0] + offset;
      const int t = g->target() + offset;
      const bool invert = g->states()[0] == 0;
      if (invert) tableau.x(c);
      if (dynamic_cast<const MCX<T>*>(&gate)) {
        tableau.cx(c, t);
      } else if (dynamic_cast<const MCZ<T>*>(&gate)) {
        tableau.cz(c, t);
      } else if (dynamic_cast<const MCY<T>*>(&gate)) {
        tableau.sdg(t);
        tableau.cx(c, t);
        tableau.s(t);
      } else {
        if (invert) tableau.x(c);
        throw UnsupportedGateError(
            "unsupported multi-controlled gate in stabilizer simulation");
      }
      if (invert) tableau.x(c);
      return;
    }
    throw UnsupportedGateError(
        "multi-controlled gate with more than one control is not Clifford");
  }
  throw UnsupportedGateError(
      "gate is not in the Clifford subset supported by the stabilizer "
      "simulator");
}

template <typename T>
void applyMeasurementBasisChange(Tableau& tableau,
                                 const Measurement<T>& measurement, int qubit,
                                 bool revert) {
  switch (measurement.basis()) {
    case Basis::kZ:
      break;
    case Basis::kX:
      tableau.h(qubit);
      break;
    case Basis::kY:
      // V^H = H S^H before, V = S H after.
      if (!revert) {
        tableau.sdg(qubit);
        tableau.h(qubit);
      } else {
        tableau.h(qubit);
        tableau.s(qubit);
      }
      break;
    case Basis::kCustom:
      throw UnsupportedGateError(
          "custom-basis measurement is not supported by the stabilizer "
          "simulator");
  }
}

}  // namespace detail

/// True when `gate` maps onto tableau operations (structurally Clifford,
/// or a parametric gate at a Clifford angle).  Probes the same code path
/// the executor uses, so analyzer and executor can never disagree.
template <typename T>
bool isCliffordGate(const qgates::QGate<T>& gate) {
  const auto qubits = gate.qubits();
  if (qubits.empty()) return false;
  // Shift the gate's qubit span down to 0 so the probe tableau stays as
  // small as the gate itself, independent of its position in the circuit.
  Tableau probe(qubits.back() - qubits.front() + 1);
  try {
    detail::applyGate(probe, gate, -qubits.front());
  } catch (const UnsupportedGateError&) {
    return false;
  }
  return true;
}

}  // namespace qclab::stabilizer

#pragma once

/// \file reset.hpp
/// \brief Qubit reset to |0>, supporting qubit-reuse workflows
/// (paper §3.3, citing DeCross et al. on qubit-reuse compilation).
///
/// Semantically a reset is a non-recorded Z measurement followed by a
/// conditional X: both measurement branches continue, but the reset qubit is
/// in |0> on each of them and no classical outcome is appended to the
/// result string.

#include <ostream>

#include "qclab/qobject.hpp"
#include "qclab/util/errors.hpp"

namespace qclab {

template <typename T>
class Reset final : public QObject<T> {
 public:
  explicit Reset(int qubit) : qubit_(qubit) {
    util::require(qubit >= 0, "qubit index must be nonnegative");
  }

  ObjectType objectType() const noexcept override { return ObjectType::kReset; }
  int nbQubits() const noexcept override { return 1; }
  std::vector<int> qubits() const override { return {qubit_}; }

  /// The reset qubit.
  int qubit() const noexcept { return qubit_; }

  void shiftQubits(int delta) override {
    util::require(qubit_ + delta >= 0, "qubit shift would go negative");
    qubit_ += delta;
  }

  std::unique_ptr<QObject<T>> clone() const override {
    return std::make_unique<Reset<T>>(*this);
  }

  void toQASM(std::ostream& stream, int offset = 0) const override {
    stream << "reset q[" << (qubit_ + offset) << "];\n";
  }

  void appendDrawItems(std::vector<io::DrawItem>& items,
                       int offset = 0) const override {
    io::DrawItem item;
    item.kind = io::DrawItem::Kind::kReset;
    item.label = "|0>";
    item.boxTop = qubit_ + offset;
    item.boxBottom = qubit_ + offset;
    items.push_back(std::move(item));
  }

 private:
  int qubit_;
};

}  // namespace qclab

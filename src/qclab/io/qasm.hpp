#pragma once

/// \file qasm.hpp
/// \brief OpenQASM 2.0 importer: parses a program into a QCircuit.
///
/// The paper's QCLAB exports to OpenQASM (toQASM); this importer closes the
/// loop so exported circuits round-trip, and external QASM circuits can be
/// simulated.  The supported statement set covers everything the library
/// emits: the qelib1 standard gates, measure, reset, and barrier.  Gate
/// definitions, conditionals (`if`), and multiple registers are not
/// supported.

#include <string>
#include <vector>

#include "qclab/io/qasm_lexer.hpp"
#include "qclab/qcircuit.hpp"

namespace qclab::io {

namespace detail {

/// Recursive-descent evaluator for QASM angle expressions:
/// numbers, pi, + - * /, unary minus, parentheses.
class AngleParser {
 public:
  AngleParser(const std::vector<Token>& tokens, std::size_t& pos)
      : tokens_(tokens), pos_(pos) {}

  double parse() { return parseSum(); }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }
  bool isSymbol(const char* s) const {
    return peek().type == Token::Type::kSymbol && peek().text == s;
  }

  double parseSum() {
    double value = parseProduct();
    while (isSymbol("+") || isSymbol("-")) {
      const bool add = advance().text == "+";
      const double rhs = parseProduct();
      value = add ? value + rhs : value - rhs;
    }
    return value;
  }

  double parseProduct() {
    double value = parseUnary();
    while (isSymbol("*") || isSymbol("/")) {
      const bool mul = advance().text == "*";
      const double rhs = parseUnary();
      if (!mul && rhs == 0.0) {
        throw QasmParseError("division by zero in angle", peek().line);
      }
      value = mul ? value * rhs : value / rhs;
    }
    return value;
  }

  double parseUnary() {
    if (isSymbol("-")) {
      advance();
      return -parseUnary();
    }
    if (isSymbol("+")) {
      advance();
      return parseUnary();
    }
    return parseAtom();
  }

  double parseAtom() {
    const Token& token = peek();
    if (token.type == Token::Type::kNumber) {
      advance();
      return std::stod(token.text);
    }
    if (token.type == Token::Type::kIdentifier && token.text == "pi") {
      advance();
      return M_PI;
    }
    if (isSymbol("(")) {
      advance();
      const double value = parseSum();
      if (!isSymbol(")")) {
        throw QasmParseError("expected ')' in angle expression", peek().line);
      }
      advance();
      return value;
    }
    throw QasmParseError("expected number, pi, or '(' in angle expression",
                         token.line);
  }

  const std::vector<Token>& tokens_;
  std::size_t& pos_;
};

}  // namespace detail

/// Parses an OpenQASM 2.0 program into a circuit.  Throws QasmParseError on
/// malformed or unsupported input.
template <typename T>
QCircuit<T> parseQasm(const std::string& source) {
  const obs::ScopedSpan span("qasm/parse", "stage");
  const auto tokens = tokenizeQasm(source);
  std::size_t pos = 0;

  auto peek = [&]() -> const Token& { return tokens[pos]; };
  auto advance = [&]() -> const Token& { return tokens[pos++]; };
  auto expectSymbol = [&](const char* s) {
    if (peek().type != Token::Type::kSymbol || peek().text != s) {
      throw QasmParseError(std::string("expected '") + s + "', got '" +
                               peek().text + "'",
                           peek().line);
    }
    advance();
  };
  auto expectIdentifier = [&]() -> std::string {
    if (peek().type != Token::Type::kIdentifier) {
      throw QasmParseError("expected identifier, got '" + peek().text + "'",
                           peek().line);
    }
    return advance().text;
  };
  auto parseInt = [&]() -> int {
    if (peek().type != Token::Type::kNumber) {
      throw QasmParseError("expected integer, got '" + peek().text + "'",
                           peek().line);
    }
    const Token& token = advance();
    try {
      return std::stoi(token.text);
    } catch (const std::exception&) {
      throw QasmParseError("integer literal '" + token.text +
                               "' is out of range",
                           token.line);
    }
  };

  // Parses "name[index]" and returns the index; the register name must
  // match `regName` once registers are declared.
  std::string qregName;
  std::string cregName;
  int nbQubits = 0;
  auto parseQubit = [&]() -> int {
    const std::string name = expectIdentifier();
    if (name != qregName) {
      throw QasmParseError("unknown quantum register '" + name + "'",
                           peek().line);
    }
    expectSymbol("[");
    const int index = parseInt();
    expectSymbol("]");
    if (index < 0 || index >= nbQubits) {
      throw QasmParseError("qubit index out of range", peek().line);
    }
    return index;
  };

  auto parseAngles = [&](int count) -> std::vector<double> {
    expectSymbol("(");
    std::vector<double> angles;
    for (int i = 0; i < count; ++i) {
      if (i > 0) expectSymbol(",");
      detail::AngleParser parser(tokens, pos);
      angles.push_back(parser.parse());
    }
    expectSymbol(")");
    return angles;
  };

  // Header.
  {
    const std::string keyword = expectIdentifier();
    if (keyword != "OPENQASM") {
      throw QasmParseError("program must start with OPENQASM", peek().line);
    }
    if (peek().type != Token::Type::kNumber) {
      throw QasmParseError("expected version number", peek().line);
    }
    const std::string version = advance().text;
    if (version != "2.0" && version != "2") {
      throw QasmParseError("unsupported OpenQASM version " + version,
                           peek().line);
    }
    expectSymbol(";");
  }

  // Declarations and statements.
  std::vector<std::unique_ptr<QObject<T>>> pending;
  while (peek().type != Token::Type::kEnd) {
    const int line = peek().line;
    const std::string keyword = expectIdentifier();

    if (keyword == "include") {
      if (peek().type != Token::Type::kString) {
        throw QasmParseError("expected include file name", line);
      }
      advance();
      expectSymbol(";");
      continue;
    }
    if (keyword == "qreg") {
      if (!qregName.empty()) {
        throw QasmParseError("multiple quantum registers are not supported",
                             line);
      }
      qregName = expectIdentifier();
      expectSymbol("[");
      nbQubits = parseInt();
      expectSymbol("]");
      expectSymbol(";");
      if (nbQubits < 1) {
        throw QasmParseError("qreg must have at least one qubit", line);
      }
      continue;
    }
    if (keyword == "creg") {
      cregName = expectIdentifier();
      expectSymbol("[");
      parseInt();
      expectSymbol("]");
      expectSymbol(";");
      continue;
    }

    if (qregName.empty()) {
      throw QasmParseError("statement before qreg declaration", line);
    }

    if (keyword == "measure") {
      const int qubit = parseQubit();
      expectSymbol("->");
      const std::string creg = expectIdentifier();
      if (creg != cregName) {
        throw QasmParseError("unknown classical register '" + creg + "'",
                             line);
      }
      expectSymbol("[");
      parseInt();
      expectSymbol("]");
      expectSymbol(";");
      pending.push_back(std::make_unique<Measurement<T>>(qubit));
      continue;
    }
    if (keyword == "reset") {
      const int qubit = parseQubit();
      expectSymbol(";");
      pending.push_back(std::make_unique<Reset<T>>(qubit));
      continue;
    }
    if (keyword == "barrier") {
      std::vector<int> qubits;
      qubits.push_back(parseQubit());
      while (peek().type == Token::Type::kSymbol && peek().text == ",") {
        advance();
        qubits.push_back(parseQubit());
      }
      expectSymbol(";");
      const auto [lo, hi] = std::minmax_element(qubits.begin(), qubits.end());
      pending.push_back(std::make_unique<Barrier<T>>(*lo, *hi));
      continue;
    }

    // Gate statements.
    using namespace qclab::qgates;
    std::vector<double> angles;
    auto needsAngles = [&](const std::string& g) -> int {
      if (g == "p" || g == "u1" || g == "rx" || g == "ry" || g == "rz" ||
          g == "cp" || g == "cu1" || g == "crx" || g == "cry" ||
          g == "crz" || g == "rxx" || g == "ryy" || g == "rzz") {
        return 1;
      }
      if (g == "u2") return 2;
      if (g == "u3" || g == "u" || g == "cu3") return 3;
      return 0;
    };
    const int angleCount = needsAngles(keyword);
    if (angleCount > 0) angles = parseAngles(angleCount);

    std::vector<int> qubits;
    qubits.push_back(parseQubit());
    while (peek().type == Token::Type::kSymbol && peek().text == ",") {
      advance();
      qubits.push_back(parseQubit());
    }
    expectSymbol(";");

    auto requireQubits = [&](std::size_t count) {
      if (qubits.size() != count) {
        throw QasmParseError("gate '" + keyword + "' expects " +
                                 std::to_string(count) + " qubit(s)",
                             line);
      }
    };

    std::unique_ptr<QObject<T>> object;
    const auto angle = [&](std::size_t i) { return static_cast<T>(angles[i]); };
    if (keyword == "id") { requireQubits(1); object = std::make_unique<Identity<T>>(qubits[0]); }
    else if (keyword == "x") { requireQubits(1); object = std::make_unique<PauliX<T>>(qubits[0]); }
    else if (keyword == "y") { requireQubits(1); object = std::make_unique<PauliY<T>>(qubits[0]); }
    else if (keyword == "z") { requireQubits(1); object = std::make_unique<PauliZ<T>>(qubits[0]); }
    else if (keyword == "h") { requireQubits(1); object = std::make_unique<Hadamard<T>>(qubits[0]); }
    else if (keyword == "s") { requireQubits(1); object = std::make_unique<SGate<T>>(qubits[0]); }
    else if (keyword == "sdg") { requireQubits(1); object = std::make_unique<SdgGate<T>>(qubits[0]); }
    else if (keyword == "t") { requireQubits(1); object = std::make_unique<TGate<T>>(qubits[0]); }
    else if (keyword == "tdg") { requireQubits(1); object = std::make_unique<TdgGate<T>>(qubits[0]); }
    else if (keyword == "sx") { requireQubits(1); object = std::make_unique<SX<T>>(qubits[0]); }
    else if (keyword == "sxdg") { requireQubits(1); object = std::make_unique<SXdg<T>>(qubits[0]); }
    else if (keyword == "p" || keyword == "u1") { requireQubits(1); object = std::make_unique<Phase<T>>(qubits[0], angle(0)); }
    else if (keyword == "rx") { requireQubits(1); object = std::make_unique<RotationX<T>>(qubits[0], angle(0)); }
    else if (keyword == "ry") { requireQubits(1); object = std::make_unique<RotationY<T>>(qubits[0], angle(0)); }
    else if (keyword == "rz") { requireQubits(1); object = std::make_unique<RotationZ<T>>(qubits[0], angle(0)); }
    else if (keyword == "u2") { requireQubits(1); object = std::make_unique<U2<T>>(qubits[0], angle(0), angle(1)); }
    else if (keyword == "u3" || keyword == "u") { requireQubits(1); object = std::make_unique<U3<T>>(qubits[0], angle(0), angle(1), angle(2)); }
    else if (keyword == "cx") { requireQubits(2); object = std::make_unique<CX<T>>(qubits[0], qubits[1]); }
    else if (keyword == "cy") { requireQubits(2); object = std::make_unique<CY<T>>(qubits[0], qubits[1]); }
    else if (keyword == "cz") { requireQubits(2); object = std::make_unique<CZ<T>>(qubits[0], qubits[1]); }
    else if (keyword == "ch") { requireQubits(2); object = std::make_unique<CH<T>>(qubits[0], qubits[1]); }
    else if (keyword == "cp" || keyword == "cu1") { requireQubits(2); object = std::make_unique<CPhase<T>>(qubits[0], qubits[1], angle(0)); }
    else if (keyword == "crx") { requireQubits(2); object = std::make_unique<CRotationX<T>>(qubits[0], qubits[1], angle(0)); }
    else if (keyword == "cry") { requireQubits(2); object = std::make_unique<CRotationY<T>>(qubits[0], qubits[1], angle(0)); }
    else if (keyword == "crz") { requireQubits(2); object = std::make_unique<CRotationZ<T>>(qubits[0], qubits[1], angle(0)); }
    else if (keyword == "swap") { requireQubits(2); object = std::make_unique<SWAP<T>>(qubits[0], qubits[1]); }
    else if (keyword == "iswap") { requireQubits(2); object = std::make_unique<iSWAP<T>>(qubits[0], qubits[1]); }
    else if (keyword == "iswapdg") { requireQubits(2); object = std::make_unique<iSWAPdg<T>>(qubits[0], qubits[1]); }
    else if (keyword == "rxx") { requireQubits(2); object = std::make_unique<RotationXX<T>>(qubits[0], qubits[1], angle(0)); }
    else if (keyword == "ryy") { requireQubits(2); object = std::make_unique<RotationYY<T>>(qubits[0], qubits[1], angle(0)); }
    else if (keyword == "rzz") { requireQubits(2); object = std::make_unique<RotationZZ<T>>(qubits[0], qubits[1], angle(0)); }
    else if (keyword == "cu3") { requireQubits(2); object = std::make_unique<CU<T>>(qubits[0], qubits[1], angle(0), angle(1), angle(2)); }
    else if (keyword == "cswap") { requireQubits(3); object = std::make_unique<Fredkin<T>>(qubits[0], qubits[1], qubits[2]); }
    else if (keyword == "ccx") { requireQubits(3); object = std::make_unique<Toffoli<T>>(qubits[0], qubits[1], qubits[2]); }
    else if (keyword == "c3x" || keyword == "c4x") {
      const std::size_t nc = keyword == "c3x" ? 3 : 4;
      requireQubits(nc + 1);
      std::vector<int> controls(qubits.begin(), qubits.end() - 1);
      object = std::make_unique<MCX<T>>(controls, qubits.back());
    }
    else {
      throw QasmParseError("unsupported gate '" + keyword + "'", line);
    }
    pending.push_back(std::move(object));
  }

  if (qregName.empty()) {
    throw QasmParseError("program declares no quantum register",
                         tokens.back().line);
  }
  QCircuit<T> circuit(nbQubits);
  for (auto& object : pending) circuit.push_back(std::move(object));
  return circuit;
}

}  // namespace qclab::io

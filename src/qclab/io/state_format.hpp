#pragma once

/// \file state_format.hpp
/// \brief Pretty-printing of state vectors and outcome tables, matching
/// the style of the outputs shown in the paper (e.g. "0.7071 + 0.0000i").

#include <complex>
#include <sstream>
#include <string>
#include <vector>

#include "qclab/util/bits.hpp"
#include "qclab/util/bitstring.hpp"
#include "qclab/util/errors.hpp"

namespace qclab::io {

/// Formatting options for formatStatevector.
struct StateFormat {
  int precision = 4;          ///< digits after the decimal point
  bool skipZeros = false;     ///< omit amplitudes below `zeroTol`
  double zeroTol = 5e-13;     ///< threshold for skipZeros
  bool basisLabels = true;    ///< append |bitstring> labels
};

/// Formats one complex amplitude as "a + bi" with fixed precision.
template <typename T>
std::string formatAmplitude(std::complex<T> amplitude, int precision = 4) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << static_cast<double>(amplitude.real())
      << (amplitude.imag() < 0 ? " - " : " + ")
      << std::abs(static_cast<double>(amplitude.imag())) << "i";
  return out.str();
}

/// Formats a state vector, one amplitude per line:
///   0.7071 + 0.0000i |00>
///   0.0000 + 0.7071i |11>
template <typename T>
std::string formatStatevector(const std::vector<std::complex<T>>& state,
                              const StateFormat& format = {}) {
  util::require(util::isPowerOfTwo(state.size()),
                "state dimension must be a power of two");
  const int nbQubits = util::log2PowerOfTwo(state.size());
  std::string out;
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (format.skipZeros &&
        std::abs(state[i]) < static_cast<T>(format.zeroTol)) {
      continue;
    }
    out += formatAmplitude(state[i], format.precision);
    if (format.basisLabels) {
      out += " |" + util::indexToBitstring(i, nbQubits) + ">";
    }
    out += '\n';
  }
  return out;
}

}  // namespace qclab::io

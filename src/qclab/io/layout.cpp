#include "qclab/io/layout.hpp"

#include <algorithm>
#include <sstream>

#include "qclab/util/errors.hpp"

namespace qclab::io {

int DrawItem::top() const {
  int t = boxTop;
  for (int c : controls1) t = std::min(t, c);
  for (int c : controls0) t = std::min(t, c);
  for (int q : swapQubits) t = std::min(t, q);
  return t;
}

int DrawItem::bottom() const {
  int b = boxBottom;
  for (int c : controls1) b = std::max(b, c);
  for (int c : controls0) b = std::max(b, c);
  for (int q : swapQubits) b = std::max(b, q);
  return b;
}

std::vector<int> assignColumns(const std::vector<DrawItem>& items,
                               int nbQubits, int& nbColumns) {
  std::vector<int> nextFree(static_cast<std::size_t>(nbQubits), 0);
  std::vector<int> columns(items.size(), 0);
  nbColumns = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const int top = items[i].top();
    const int bottom = items[i].bottom();
    util::require(top >= 0 && bottom < nbQubits,
                  "draw item outside qubit range");
    int column = 0;
    for (int row = top; row <= bottom; ++row) {
      column = std::max(column, nextFree[static_cast<std::size_t>(row)]);
    }
    // A barrier starts a fresh column over its span and blocks packing
    // across it.
    columns[i] = column;
    for (int row = top; row <= bottom; ++row) {
      nextFree[static_cast<std::size_t>(row)] = column + 1;
    }
    nbColumns = std::max(nbColumns, column + 1);
  }
  return columns;
}

namespace {

/// A text grid of display cells (one UTF-8 glyph per cell).
class Grid {
 public:
  Grid(std::size_t rows, std::size_t cols)
      : cols_(cols), cells_(rows * cols, " ") {}

  std::string& at(std::size_t row, std::size_t col) {
    return cells_[row * cols_ + col];
  }

  std::string toString(std::size_t rows) const {
    std::string out;
    for (std::size_t r = 0; r < rows; ++r) {
      std::string line;
      for (std::size_t c = 0; c < cols_; ++c) {
        line += cells_[r * cols_ + c];
      }
      // Trim trailing spaces.
      while (!line.empty() && line.back() == ' ') line.pop_back();
      out += line;
      out += '\n';
    }
    return out;
  }

 private:
  std::size_t cols_;
  std::vector<std::string> cells_;
};

/// Number of display glyphs in a UTF-8 string (counts non-continuation
/// bytes; good enough for the labels we generate).
std::size_t displayLength(const std::string& s) {
  std::size_t length = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++length;
  }
  return length;
}

/// Splits a UTF-8 string into display glyphs.
std::vector<std::string> glyphs(const std::string& s) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < s.size();) {
    std::size_t len = 1;
    const auto c = static_cast<unsigned char>(s[i]);
    if ((c & 0xF8) == 0xF0) len = 4;
    else if ((c & 0xF0) == 0xE0) len = 3;
    else if ((c & 0xE0) == 0xC0) len = 2;
    out.push_back(s.substr(i, len));
    i += len;
  }
  return out;
}

bool hasBox(const DrawItem& item) {
  switch (item.kind) {
    case DrawItem::Kind::kBox:
    case DrawItem::Kind::kMeasure:
    case DrawItem::Kind::kReset:
    case DrawItem::Kind::kBlock:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string renderAscii(const std::vector<DrawItem>& items, int nbQubits) {
  int nbColumns = 0;
  const auto columns = assignColumns(items, nbQubits, nbColumns);

  // Column body widths: label + 2 box borders, at least 1.
  std::vector<std::size_t> bodyWidth(static_cast<std::size_t>(nbColumns), 1);
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (hasBox(items[i])) {
      auto& w = bodyWidth[static_cast<std::size_t>(columns[i])];
      w = std::max(w, displayLength(items[i].label) + 2);
    }
  }
  // Total cell width: body + one wire glyph on each side.
  std::vector<std::size_t> cellWidth(static_cast<std::size_t>(nbColumns));
  std::vector<std::size_t> cellStart(static_cast<std::size_t>(nbColumns));
  const std::string prefixTemplate =
      "q" + std::to_string(nbQubits > 0 ? nbQubits - 1 : 0) + ": ";
  const std::size_t margin = prefixTemplate.size();
  std::size_t width = margin;
  for (int c = 0; c < nbColumns; ++c) {
    cellStart[static_cast<std::size_t>(c)] = width;
    cellWidth[static_cast<std::size_t>(c)] =
        bodyWidth[static_cast<std::size_t>(c)] + 2;
    width += cellWidth[static_cast<std::size_t>(c)];
  }
  width += 1;  // trailing wire glyph

  const std::size_t rows = static_cast<std::size_t>(nbQubits) * 3;
  Grid grid(rows, width);

  // Wires and qubit labels.
  for (int q = 0; q < nbQubits; ++q) {
    const std::size_t mid = static_cast<std::size_t>(q) * 3 + 1;
    const std::string prefix = "q" + std::to_string(q) + ": ";
    for (std::size_t j = 0; j < prefix.size(); ++j) {
      grid.at(mid, j) = prefix[j];
    }
    for (std::size_t j = prefix.size(); j < width; ++j) {
      if (j >= margin) grid.at(mid, j) = "─";
    }
  }

  auto midRow = [](int q) { return static_cast<std::size_t>(q) * 3 + 1; };
  auto topRow = [](int q) { return static_cast<std::size_t>(q) * 3; };
  auto botRow = [](int q) { return static_cast<std::size_t>(q) * 3 + 2; };

  for (std::size_t i = 0; i < items.size(); ++i) {
    const DrawItem& item = items[i];
    const std::size_t col = static_cast<std::size_t>(columns[i]);
    const std::size_t start = cellStart[col];
    const std::size_t bw = bodyWidth[col];
    const std::size_t center = start + 1 + bw / 2;

    if (item.kind == DrawItem::Kind::kBarrier) {
      for (int q = item.boxTop; q <= item.boxBottom; ++q) {
        grid.at(topRow(q), center) = "░";
        grid.at(midRow(q), center) = "░";
        grid.at(botRow(q), center) = "░";
      }
      continue;
    }

    if (item.kind == DrawItem::Kind::kSwap) {
      for (int q : item.swapQubits) {
        grid.at(midRow(q), center) = "╳";
      }
    }

    if (hasBox(item)) {
      const std::size_t boxLeft = start + 1;
      const std::size_t boxRight = boxLeft + bw - 1;
      const int labelQubit = (item.boxTop + item.boxBottom) / 2;
      for (int q = item.boxTop; q <= item.boxBottom; ++q) {
        // Vertical box sides on the wire row.
        grid.at(midRow(q), boxLeft) = "┤";
        grid.at(midRow(q), boxRight) = "├";
        for (std::size_t j = boxLeft + 1; j < boxRight; ++j) {
          grid.at(midRow(q), j) = " ";
        }
        // Rows between wires inside a multi-qubit box.
        if (q > item.boxTop) {
          grid.at(topRow(q), boxLeft) = "│";
          grid.at(topRow(q), boxRight) = "│";
          for (std::size_t j = boxLeft + 1; j < boxRight; ++j) {
            grid.at(topRow(q), j) = " ";
          }
        }
        if (q < item.boxBottom) {
          grid.at(botRow(q), boxLeft) = "│";
          grid.at(botRow(q), boxRight) = "│";
          for (std::size_t j = boxLeft + 1; j < boxRight; ++j) {
            grid.at(botRow(q), j) = " ";
          }
        }
      }
      // Borders.
      grid.at(topRow(item.boxTop), boxLeft) = "┌";
      grid.at(topRow(item.boxTop), boxRight) = "┐";
      grid.at(botRow(item.boxBottom), boxLeft) = "└";
      grid.at(botRow(item.boxBottom), boxRight) = "┘";
      for (std::size_t j = boxLeft + 1; j < boxRight; ++j) {
        grid.at(topRow(item.boxTop), j) = "─";
        grid.at(botRow(item.boxBottom), j) = "─";
      }
      // Label, centered on the middle wire of the box.
      const auto labelGlyphs = glyphs(item.label);
      const std::size_t inner = bw - 2;
      const std::size_t offset =
          boxLeft + 1 + (inner - std::min(inner, labelGlyphs.size())) / 2;
      for (std::size_t j = 0; j < labelGlyphs.size() && j < inner; ++j) {
        grid.at(midRow(labelQubit), offset + j) = labelGlyphs[j];
      }
    }

    // Controls and their vertical connectors.
    auto drawControl = [&](int q, const char* dot) {
      grid.at(midRow(q), center) = dot;
    };
    for (int q : item.controls1) drawControl(q, "●");
    for (int q : item.controls0) drawControl(q, "○");

    // Vertical connector over the full item span.
    const int top = item.top();
    const int bottom = item.bottom();
    if (top < bottom) {
      auto isEndpoint = [&](int q) {
        if (hasBox(item) && q >= item.boxTop && q <= item.boxBottom)
          return true;
        if (std::find(item.controls1.begin(), item.controls1.end(), q) !=
            item.controls1.end())
          return true;
        if (std::find(item.controls0.begin(), item.controls0.end(), q) !=
            item.controls0.end())
          return true;
        if (std::find(item.swapQubits.begin(), item.swapQubits.end(), q) !=
            item.swapQubits.end())
          return true;
        return false;
      };
      for (int q = top; q <= bottom; ++q) {
        const bool endpoint = isEndpoint(q);
        const bool boxRow =
            hasBox(item) && q >= item.boxTop && q <= item.boxBottom;
        // Segment above the wire of q.
        if (q > top && !boxRow) {
          grid.at(topRow(q), center) = "│";
        }
        // Segment below the wire of q.
        if (q < bottom && !boxRow) {
          grid.at(botRow(q), center) = "│";
        }
        // Crossing a wire that is not an endpoint.
        if (!endpoint) {
          grid.at(midRow(q), center) = "┼";
        }
        // Connector meeting a box border.
        if (boxRow && q == item.boxTop && top < item.boxTop) {
          grid.at(topRow(q), center) = "┴";
        }
        if (boxRow && q == item.boxBottom && bottom > item.boxBottom) {
          grid.at(botRow(q), center) = "┬";
        }
      }
    }
  }

  return grid.toString(rows);
}

std::string renderLatex(const std::vector<DrawItem>& items, int nbQubits) {
  int nbColumns = 0;
  const auto columns = assignColumns(items, nbQubits, nbColumns);

  // cell[qubit][column]
  std::vector<std::vector<std::string>> cell(
      static_cast<std::size_t>(nbQubits),
      std::vector<std::string>(static_cast<std::size_t>(nbColumns), ""));

  auto escape = [](const std::string& label) {
    std::string out;
    for (char c : label) {
      switch (c) {
        case '\\': out += "\\textbackslash{}"; break;
        case '{': out += "\\{"; break;
        case '}': out += "\\}"; break;
        case '&': out += "\\&"; break;
        case '%': out += "\\%"; break;
        case '#': out += "\\#"; break;
        case '_': out += "\\_"; break;
        case '^': out += "\\^{}"; break;
        case '~': out += "\\~{}"; break;
        case '$': out += "\\$"; break;
        default: out += c;
      }
    }
    return out;
  };

  for (std::size_t i = 0; i < items.size(); ++i) {
    const DrawItem& item = items[i];
    const std::size_t col = static_cast<std::size_t>(columns[i]);
    switch (item.kind) {
      case DrawItem::Kind::kBarrier: {
        cell[static_cast<std::size_t>(item.boxTop)][col] =
            "\\slice[style=black]{}";
        break;
      }
      case DrawItem::Kind::kSwap: {
        const int q0 = item.swapQubits[0];
        const int q1 = item.swapQubits[1];
        cell[static_cast<std::size_t>(q0)][col] =
            "\\swap{" + std::to_string(q1 - q0) + "}";
        cell[static_cast<std::size_t>(q1)][col] = "\\targX{}";
        break;
      }
      case DrawItem::Kind::kMeasure: {
        std::string meter = "\\meter{}";
        if (item.label.size() > 1) {
          meter = "\\meter{" + escape(item.label.substr(1)) + "}";
        }
        cell[static_cast<std::size_t>(item.boxTop)][col] = meter;
        break;
      }
      case DrawItem::Kind::kReset: {
        cell[static_cast<std::size_t>(item.boxTop)][col] =
            "\\push{\\ket{0}}";
        break;
      }
      case DrawItem::Kind::kBox:
      case DrawItem::Kind::kBlock: {
        const int wires = item.boxBottom - item.boxTop + 1;
        std::string gate = "\\gate";
        if (wires > 1) gate += "[wires=" + std::to_string(wires) + "]";
        gate += "{" + escape(item.label) + "}";
        cell[static_cast<std::size_t>(item.boxTop)][col] = gate;
        break;
      }
    }
    for (int q : item.controls1) {
      cell[static_cast<std::size_t>(q)][col] =
          "\\ctrl{" + std::to_string(item.boxTop - q) + "}";
    }
    for (int q : item.controls0) {
      cell[static_cast<std::size_t>(q)][col] =
          "\\octrl{" + std::to_string(item.boxTop - q) + "}";
    }
  }

  std::ostringstream out;
  out << "\\documentclass{standalone}\n"
      << "\\usepackage{tikz}\n"
      << "\\usetikzlibrary{quantikz}\n"
      << "\\begin{document}\n"
      << "\\begin{quantikz}\n";
  for (int q = 0; q < nbQubits; ++q) {
    out << "\\lstick{$q_{" << q << "}$}";
    for (int c = 0; c < nbColumns; ++c) {
      const std::string& s =
          cell[static_cast<std::size_t>(q)][static_cast<std::size_t>(c)];
      out << " & " << (s.empty() ? "\\qw" : s);
    }
    out << " & \\qw";
    if (q + 1 < nbQubits) out << " \\\\";
    out << "\n";
  }
  out << "\\end{quantikz}\n"
      << "\\end{document}\n";
  return out.str();
}

}  // namespace qclab::io

#pragma once

/// \file layout.hpp
/// \brief Column layout and rendering of circuit diagrams.
///
/// The layout engine packs DrawItems greedily into diagram columns (an item
/// goes into the earliest column whose rows are all free), then the two
/// renderers produce either a UTF-8 musical-score diagram for the terminal
/// (paper §4, command-window visualization) or quantikz LaTeX source
/// (paper §4, toTex).

#include <string>
#include <vector>

#include "qclab/io/draw_ir.hpp"

namespace qclab::io {

/// Assigns a diagram column to every item (greedy left packing; barriers
/// claim a full column over their span).  Returns the column index per item
/// and sets `nbColumns`.
std::vector<int> assignColumns(const std::vector<DrawItem>& items,
                               int nbQubits, int& nbColumns);

/// Renders the items as a UTF-8 terminal diagram with one wire per qubit.
std::string renderAscii(const std::vector<DrawItem>& items, int nbQubits);

/// Renders the items as a standalone quantikz LaTeX document.
std::string renderLatex(const std::vector<DrawItem>& items, int nbQubits);

}  // namespace qclab::io

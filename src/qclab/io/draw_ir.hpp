#pragma once

/// \file draw_ir.hpp
/// \brief Renderer-independent intermediate representation of circuit
/// diagram elements.
///
/// Every circuit object (gate, measurement, reset, barrier, block
/// sub-circuit) lowers itself to one DrawItem; the column-layout engine
/// (layout.hpp) packs the items into diagram columns, and the ASCII and
/// LaTeX renderers consume the packed layout.  Keeping the IR non-templated
/// lets the layout/render code live in a plain .cpp.

#include <string>
#include <vector>

namespace qclab::io {

/// One diagram element.
struct DrawItem {
  enum class Kind {
    kBox,      ///< labeled gate box over boxTop..boxBottom
    kMeasure,  ///< measurement box (label holds basis, e.g. "M" / "Mx")
    kReset,    ///< reset box
    kBarrier,  ///< barrier line over the full span
    kSwap,     ///< swap crosses on the two swapQubits
    kBlock,    ///< boxed sub-circuit with label
  };

  Kind kind = Kind::kBox;

  /// Label rendered inside the box (gate mnemonic, possibly with angles).
  std::string label;

  /// Inclusive qubit span of the box itself.
  int boxTop = 0;
  int boxBottom = 0;

  /// Control qubits drawn as filled dots (control on |1>).
  std::vector<int> controls1;
  /// Control qubits drawn as open dots (control on |0>).
  std::vector<int> controls0;

  /// For Kind::kSwap: the two qubits carrying the crosses.
  std::vector<int> swapQubits;

  /// Inclusive qubit span of the whole item (box plus controls/crosses).
  int top() const;
  int bottom() const;
};

}  // namespace qclab::io

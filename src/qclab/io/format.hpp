#pragma once

/// \file format.hpp
/// \brief Small numeric formatting helpers shared by the QASM emitter and
/// the circuit drawers.

#include <cstdio>
#include <string>

namespace qclab::io {

/// Formats an angle for OpenQASM output with full round-trip precision.
inline std::string formatAngle(double angle) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", angle);
  return buffer;
}

/// Formats an angle for diagram labels (compact, 2 decimals).
inline std::string formatAngleShort(double angle) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", angle);
  return buffer;
}

}  // namespace qclab::io

#pragma once

/// \file qasm_lexer.hpp
/// \brief Tokenizer for the OpenQASM 2.0 importer.

#include <string>
#include <vector>

namespace qclab::io {

/// One OpenQASM token.
struct Token {
  enum class Type {
    kIdentifier,  ///< names and keywords (h, qreg, measure, pi, ...)
    kNumber,      ///< integer or real literal
    kString,      ///< quoted string (include file name)
    kSymbol,      ///< punctuation: ( ) [ ] , ; + - * / ->
    kEnd,         ///< end of input
  };

  Type type = Type::kEnd;
  std::string text;
  int line = 0;  ///< 1-based source line
};

/// Tokenizes OpenQASM 2.0 source.  Comments (// ...) are skipped.  Throws
/// QasmParseError on unexpected characters.  The token list always ends
/// with one kEnd token.
std::vector<Token> tokenizeQasm(const std::string& source);

}  // namespace qclab::io

#include "qclab/io/qasm_lexer.hpp"

#include <cctype>

#include "qclab/util/errors.hpp"

namespace qclab::io {

std::vector<Token> tokenizeQasm(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      tokens.push_back(
          {Token::Type::kIdentifier, source.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      std::size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(source[i])) ||
                       source[i] == '.')) {
        ++i;
      }
      // Exponent part.
      if (i < n && (source[i] == 'e' || source[i] == 'E')) {
        std::size_t mark = i;
        ++i;
        if (i < n && (source[i] == '+' || source[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
          while (i < n &&
                 std::isdigit(static_cast<unsigned char>(source[i]))) {
            ++i;
          }
        } else {
          i = mark;  // not an exponent after all
        }
      }
      tokens.push_back(
          {Token::Type::kNumber, source.substr(start, i - start), line});
      continue;
    }
    if (c == '"') {
      std::size_t start = ++i;
      while (i < n && source[i] != '"') ++i;
      if (i >= n) throw QasmParseError("unterminated string", line);
      tokens.push_back(
          {Token::Type::kString, source.substr(start, i - start), line});
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && source[i + 1] == '>') {
      tokens.push_back({Token::Type::kSymbol, "->", line});
      i += 2;
      continue;
    }
    switch (c) {
      case '(': case ')': case '[': case ']': case ',': case ';':
      case '+': case '-': case '*': case '/':
        tokens.push_back({Token::Type::kSymbol, std::string(1, c), line});
        ++i;
        break;
      default:
        throw QasmParseError(
            std::string("unexpected character '") + c + "'", line);
    }
  }
  tokens.push_back({Token::Type::kEnd, "", line});
  return tokens;
}

}  // namespace qclab::io

#pragma once

/// \file parameter_binding.hpp
/// \brief The parameter rebinding layer of the batched execution engine:
/// a flat, ordered view of every continuous gate parameter in a circuit.
///
/// A ParameterBinding walks a MUTABLE circuit once at construction and
/// records one slot per parametrized gate — rotations (RX/RY/RZ), phases
/// (Phase), controlled rotations and phases (CRX/CRY/CRZ/CPhase), and the
/// two-qubit rotations (RXX/RYY/RZZ) — in circuit order, descending into
/// nested sub-circuits.  `bind` then retargets every angle through the
/// gates' own `setTheta` surfaces without touching the circuit structure,
/// so a fusion plan built for the circuit SHAPE stays valid and only its
/// fused matrices need rebinding (sim::rebindFusionPlan).
///
/// The binding holds raw pointers into the circuit it walked: it must not
/// outlive the circuit, and structural edits (push_back / insert / erase)
/// invalidate it.  Rebinding angles does NOT invalidate it.

#include <cstddef>
#include <vector>

#include "qclab/qcircuit.hpp"
#include "qclab/qgates/qgates.hpp"
#include "qclab/util/errors.hpp"

namespace qclab {

/// Ordered slots over every continuous parameter of one circuit instance.
template <typename T>
class ParameterBinding {
 public:
  /// Walks `circuit` (recursively) and records a slot per parametrized
  /// gate, in the order the simulate path applies them.
  explicit ParameterBinding(QCircuit<T>& circuit) { collect(circuit); }

  /// Number of bindable parameters found.
  std::size_t nbParameters() const noexcept { return slots_.size(); }

  /// Writes `values[i]` into parameter slot i (gate setTheta).  Requires
  /// exactly nbParameters() values.
  void bind(const std::vector<T>& values) const {
    util::require(values.size() == slots_.size(),
                  "ParameterBinding::bind: expected " +
                      std::to_string(slots_.size()) + " values, got " +
                      std::to_string(values.size()));
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      slots_[i].set(slots_[i].gate, values[i]);
    }
  }

  /// Reads the current parameter values back, in slot order.
  std::vector<T> parameters() const {
    std::vector<T> values(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      values[i] = slots_[i].get(slots_[i].gate);
    }
    return values;
  }

  /// True when `gate` is one of the recorded parameter slots — i.e. bind()
  /// can change its matrix.  The batched engine uses this to find the
  /// parameter-free circuit prefix it may precompute once per shape.
  bool isBound(const QObject<T>* gate) const noexcept {
    for (const Slot& slot : slots_) {
      if (slot.gate == gate) return true;
    }
    return false;
  }

 private:
  /// One parameter slot: a type-erased setter/getter pair over the gate.
  /// Plain function pointers (no std::function) keep slots trivially
  /// copyable and the bind loop branch-predictable.
  struct Slot {
    QObject<T>* gate;
    void (*set)(QObject<T>*, T);
    T (*get)(const QObject<T>*);
  };

  template <typename Gate>
  void addSlot(Gate* gate) {
    slots_.push_back(Slot{
        gate,
        [](QObject<T>* object, T theta) {
          static_cast<Gate*>(object)->setTheta(theta);
        },
        [](const QObject<T>* object) {
          return static_cast<const Gate*>(object)->theta();
        }});
  }

  /// Matches `object` against every parametrized gate family.  Returns
  /// true when a slot was recorded.  RotationGate1 covers RX/RY/RZ and
  /// RotationGate2 covers RXX/RYY/RZZ through their shared bases; the
  /// controlled families are matched per concrete type (their common base
  /// QControlledGate2 has no setTheta).
  bool tryAddSlot(QObject<T>& object) {
    if (auto* g = dynamic_cast<qgates::RotationGate1<T>*>(&object)) {
      addSlot(g);
    } else if (auto* g = dynamic_cast<qgates::RotationGate2<T>*>(&object)) {
      addSlot(g);
    } else if (auto* g = dynamic_cast<qgates::Phase<T>*>(&object)) {
      addSlot(g);
    } else if (auto* g = dynamic_cast<qgates::CPhase<T>*>(&object)) {
      addSlot(g);
    } else if (auto* g = dynamic_cast<qgates::CRotationX<T>*>(&object)) {
      addSlot(g);
    } else if (auto* g = dynamic_cast<qgates::CRotationY<T>*>(&object)) {
      addSlot(g);
    } else if (auto* g = dynamic_cast<qgates::CRotationZ<T>*>(&object)) {
      addSlot(g);
    } else {
      return false;
    }
    return true;
  }

  void collect(QCircuit<T>& circuit) {
    for (std::size_t i = 0; i < circuit.nbObjects(); ++i) {
      QObject<T>& object = circuit.objectAt(i);
      if (object.objectType() == ObjectType::kCircuit) {
        collect(static_cast<QCircuit<T>&>(object));
        continue;
      }
      tryAddSlot(object);
    }
  }

  std::vector<Slot> slots_;
};

}  // namespace qclab

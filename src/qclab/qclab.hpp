#pragma once

/// \file qclab.hpp
/// \brief Umbrella header: the complete public API.
///
/// Typical usage mirrors QCLAB++ (paper §4):
///
///   #include <qclab/qclab.hpp>
///   qclab::QCircuit<double> circuit(2);
///   circuit.push_back(std::make_unique<qclab::qgates::Hadamard<double>>(0));
///   circuit.push_back(std::make_unique<qclab::qgates::CNOT<double>>(0, 1));
///   circuit.push_back(std::make_unique<qclab::Measurement<double>>(0));
///   auto simulation = circuit.simulate("00");

#include "qclab/algorithms/algorithms.hpp"
#include "qclab/barrier.hpp"
#include "qclab/density.hpp"
#include "qclab/io/qasm.hpp"
#include "qclab/io/state_format.hpp"
#include "qclab/measurement.hpp"
#include "qclab/noise/noise.hpp"
#include "qclab/obs/obs.hpp"
#include "qclab/observable.hpp"
#include "qclab/parameter_binding.hpp"
#include "qclab/qcircuit.hpp"
#include "qclab/sim/batch.hpp"
#include "qclab/qgates/qgates.hpp"
#include "qclab/reset.hpp"
#include "qclab/simulation.hpp"
#include "qclab/stabilizer/simulator.hpp"
#include "qclab/stabilizer/tableau.hpp"
#include "qclab/transpile/passes.hpp"
#include "qclab/version.hpp"

#pragma once

/// \file csr.hpp
/// \brief Compressed-sparse-row complex matrix.
///
/// This module reproduces the substrate MATLAB provides to QCLAB: sparse
/// matrices with Kronecker products and sparse matrix-vector multiplication.
/// QCLAB applies a gate by forming the extended unitary I (x) U' (x) I as a
/// sparse matrix over the full register and multiplying it with the state
/// vector (paper, Section 3.2); SparseKronBackend is built on this class.

#include <algorithm>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "qclab/dense/matrix.hpp"
#include "qclab/util/errors.hpp"

namespace qclab::sparse {

/// One (row, col, value) entry used to assemble a CSR matrix.
template <typename T>
struct Triplet {
  std::size_t row;
  std::size_t col;
  std::complex<T> value;
};

template <typename T>
class CsrMatrix {
 public:
  using value_type = std::complex<T>;

  /// Empty 0x0 matrix.
  CsrMatrix() : rowPtr_(1, 0) {}

  /// Zero matrix of the given shape.
  CsrMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), rowPtr_(rows + 1, 0) {}

  /// Builds from triplets (duplicates are summed).
  static CsrMatrix fromTriplets(std::size_t rows, std::size_t cols,
                                std::vector<Triplet<T>> triplets) {
    for (const auto& t : triplets) {
      util::require(t.row < rows && t.col < cols, "triplet out of bounds");
    }
    // Counting sort by row, then order columns within each row.
    CsrMatrix m(rows, cols);
    std::vector<std::size_t> counts(rows, 0);
    for (const auto& t : triplets) ++counts[t.row];
    for (std::size_t r = 0; r < rows; ++r)
      m.rowPtr_[r + 1] = m.rowPtr_[r] + counts[r];
    std::vector<std::size_t> cursor(m.rowPtr_.begin(), m.rowPtr_.end() - 1);
    m.colInd_.resize(triplets.size());
    m.values_.resize(triplets.size());
    for (const auto& t : triplets) {
      const std::size_t slot = cursor[t.row]++;
      m.colInd_[slot] = t.col;
      m.values_[slot] = t.value;
    }
    m.sortRowsAndCompress();
    return m;
  }

  /// n x n sparse identity.
  static CsrMatrix identity(std::size_t n) {
    CsrMatrix m(n, n);
    m.colInd_.resize(n);
    m.values_.assign(n, value_type(1));
    for (std::size_t i = 0; i < n; ++i) {
      m.rowPtr_[i + 1] = i + 1;
      m.colInd_[i] = i;
    }
    return m;
  }

  /// Converts a dense matrix, dropping exact zeros.
  static CsrMatrix fromDense(const dense::Matrix<T>& d) {
    std::vector<Triplet<T>> triplets;
    for (std::size_t i = 0; i < d.rows(); ++i) {
      for (std::size_t j = 0; j < d.cols(); ++j) {
        if (d(i, j) != value_type(0)) triplets.push_back({i, j, d(i, j)});
      }
    }
    return fromTriplets(d.rows(), d.cols(), std::move(triplets));
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nnz() const noexcept { return values_.size(); }

  const std::vector<std::size_t>& rowPtr() const noexcept { return rowPtr_; }
  const std::vector<std::size_t>& colInd() const noexcept { return colInd_; }
  const std::vector<value_type>& values() const noexcept { return values_; }

  /// Entry lookup (binary search within the row); zero if not stored.
  value_type at(std::size_t row, std::size_t col) const {
    util::require(row < rows_ && col < cols_, "index out of bounds");
    std::size_t lo = rowPtr_[row], hi = rowPtr_[row + 1];
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (colInd_[mid] < col) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < rowPtr_[row + 1] && colInd_[lo] == col) return values_[lo];
    return value_type(0);
  }

  /// Sparse matrix-vector product y = A x (OpenMP-parallel over rows).
  std::vector<value_type> apply(const std::vector<value_type>& x) const {
    util::require(x.size() == cols_, "spmv dimension mismatch");
    std::vector<value_type> y(rows_);
    const std::int64_t n = static_cast<std::int64_t>(rows_);
#ifdef QCLAB_HAS_OPENMP
#pragma omp parallel for schedule(static) if (n > 4096)
#endif
    for (std::int64_t i = 0; i < n; ++i) {
      value_type sum(0);
      for (std::size_t k = rowPtr_[i]; k < rowPtr_[i + 1]; ++k) {
        sum += values_[k] * x[colInd_[k]];
      }
      y[i] = sum;
    }
    return y;
  }

  /// Sparse-sparse product C = A B (row-by-row merge with a dense scatter
  /// workspace).
  friend CsrMatrix operator*(const CsrMatrix& a, const CsrMatrix& b) {
    util::require(a.cols_ == b.rows_, "spgemm dimension mismatch");
    CsrMatrix c(a.rows_, b.cols_);
    std::vector<value_type> accumulator(b.cols_, value_type(0));
    std::vector<std::size_t> touched;
    for (std::size_t i = 0; i < a.rows_; ++i) {
      touched.clear();
      for (std::size_t ka = a.rowPtr_[i]; ka < a.rowPtr_[i + 1]; ++ka) {
        const value_type aik = a.values_[ka];
        const std::size_t k = a.colInd_[ka];
        for (std::size_t kb = b.rowPtr_[k]; kb < b.rowPtr_[k + 1]; ++kb) {
          const std::size_t j = b.colInd_[kb];
          if (accumulator[j] == value_type(0)) touched.push_back(j);
          accumulator[j] += aik * b.values_[kb];
        }
      }
      std::sort(touched.begin(), touched.end());
      for (std::size_t j : touched) {
        if (accumulator[j] != value_type(0)) {
          c.colInd_.push_back(j);
          c.values_.push_back(accumulator[j]);
        }
        accumulator[j] = value_type(0);
      }
      c.rowPtr_[i + 1] = c.colInd_.size();
    }
    return c;
  }

  /// Kronecker product of two sparse matrices (the core of QCLAB's
  /// I (x) U' (x) I construction).
  friend CsrMatrix kron(const CsrMatrix& a, const CsrMatrix& b) {
    CsrMatrix k(a.rows_ * b.rows_, a.cols_ * b.cols_);
    k.colInd_.reserve(a.nnz() * b.nnz());
    k.values_.reserve(a.nnz() * b.nnz());
    for (std::size_t ia = 0; ia < a.rows_; ++ia) {
      for (std::size_t ib = 0; ib < b.rows_; ++ib) {
        const std::size_t row = ia * b.rows_ + ib;
        for (std::size_t ka = a.rowPtr_[ia]; ka < a.rowPtr_[ia + 1]; ++ka) {
          const value_type av = a.values_[ka];
          const std::size_t acol = a.colInd_[ka];
          for (std::size_t kb = b.rowPtr_[ib]; kb < b.rowPtr_[ib + 1]; ++kb) {
            k.colInd_.push_back(acol * b.cols_ + b.colInd_[kb]);
            k.values_.push_back(av * b.values_[kb]);
          }
        }
        k.rowPtr_[row + 1] = k.colInd_.size();
      }
    }
    return k;
  }

  /// Dense conversion (small matrices / tests only).
  dense::Matrix<T> toDense() const {
    dense::Matrix<T> d(rows_, cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = rowPtr_[i]; k < rowPtr_[i + 1]; ++k) {
        d(i, colInd_[k]) += values_[k];
      }
    }
    return d;
  }

 private:
  /// Sorts column indices within each row and merges duplicate entries.
  void sortRowsAndCompress() {
    std::vector<std::size_t> newRowPtr(rows_ + 1, 0);
    std::vector<std::size_t> newCol;
    std::vector<value_type> newVal;
    newCol.reserve(colInd_.size());
    newVal.reserve(values_.size());
    std::vector<std::pair<std::size_t, value_type>> row;
    for (std::size_t i = 0; i < rows_; ++i) {
      row.clear();
      for (std::size_t k = rowPtr_[i]; k < rowPtr_[i + 1]; ++k) {
        row.emplace_back(colInd_[k], values_[k]);
      }
      std::sort(row.begin(), row.end(),
                [](const auto& x, const auto& y) { return x.first < y.first; });
      const std::size_t rowStart = newCol.size();
      for (const auto& [col, value] : row) {
        if (newCol.size() > rowStart && newCol.back() == col) {
          newVal.back() += value;  // merge duplicate entry
        } else {
          newCol.push_back(col);
          newVal.push_back(value);
        }
      }
      newRowPtr[i + 1] = newCol.size();
    }
    rowPtr_ = std::move(newRowPtr);
    colInd_ = std::move(newCol);
    values_ = std::move(newVal);
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> rowPtr_;
  std::vector<std::size_t> colInd_;
  std::vector<value_type> values_;
};

}  // namespace qclab::sparse

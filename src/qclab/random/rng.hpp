#pragma once

/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation for shot sampling.
///
/// QCLAB relies on MATLAB's `rng(seed)` for reproducible measurement
/// statistics; this module provides the equivalent: a small, fast, seedable
/// generator (xoshiro256**) plus the sampling routines the simulator needs
/// (uniform, discrete, binomial, multinomial).  The MATLAB stream itself is
/// proprietary, so absolute draws differ; the statistics are equivalent.

#include <array>
#include <cstdint>
#include <vector>

namespace qclab::random {

/// xoshiro256** 1.0 by Blackman & Vigna: 256-bit state, period 2^256 - 1,
/// passes BigCrush.  Seeded through splitmix64 so that any 64-bit seed
/// (including 0) yields a well-mixed state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator seeded with `seed` (default 0, like `rng(0)`).
  explicit Rng(std::uint64_t seed = 0) noexcept { this->seed(seed); }

  /// Re-seeds the generator deterministically.
  void seed(std::uint64_t seed) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t operator()() noexcept;

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() noexcept;

  /// Uniform double in [low, high).
  double uniform(double low, double high) noexcept;

  /// Uniform integer in [0, n).  n must be positive.
  std::uint64_t uniformInt(std::uint64_t n) noexcept;

  /// Standard normal deviate (Box-Muller; pairs are cached).
  double normal() noexcept;

  /// Samples an index from the unnormalized weight vector `weights`
  /// (linear scan over the cumulative sum).  Weights must be nonnegative
  /// with a positive total.
  std::size_t discrete(const std::vector<double>& weights) noexcept;

  /// Number of successes in `trials` Bernoulli(p) draws.  O(trials).
  std::uint64_t binomial(std::uint64_t trials, double p) noexcept;

  /// Distributes `trials` draws over categories with the given unnormalized
  /// weights; returns per-category counts.  Uses the conditional-binomial
  /// decomposition, O(categories + trials).
  std::vector<std::uint64_t> multinomial(std::uint64_t trials,
                                         const std::vector<double>& weights);

  /// Advances the state by 2^128 steps; use to split independent parallel
  /// streams from one seed.
  void jump() noexcept;

  /// `count` generators derived from one seed: stream 0 is Rng(seed) and
  /// each following stream is the previous one advanced by jump(), so the
  /// streams draw from pairwise disjoint 2^128-long slices of the xoshiro
  /// sequence.  The trajectory engine hands stream i to trajectory i, which
  /// is what makes its results independent of thread count and schedule.
  static std::vector<Rng> jumpStreams(std::uint64_t seed, std::size_t count);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cachedNormal_ = 0.0;
  bool hasCachedNormal_ = false;
};

}  // namespace qclab::random

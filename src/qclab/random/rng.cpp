#include "qclab/random/rng.hpp"

#include <cmath>

#include "qclab/util/errors.hpp"

namespace qclab::random {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::seed(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  hasCachedNormal_ = false;
}

std::uint64_t Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double low, double high) noexcept {
  return low + (high - low) * uniform();
}

std::uint64_t Rng::uniformInt(std::uint64_t n) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() noexcept {
  if (hasCachedNormal_) {
    hasCachedNormal_ = false;
    return cachedNormal_;
  }
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cachedNormal_ = radius * std::sin(angle);
  hasCachedNormal_ = true;
  return radius * std::cos(angle);
}

std::size_t Rng::discrete(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  const double r = uniform() * total;
  double cumulative = 0.0;
  for (std::size_t k = 0; k < weights.size(); ++k) {
    cumulative += weights[k];
    if (r < cumulative) return k;
  }
  return weights.size() - 1;  // guard against rounding at the top end
}

std::uint64_t Rng::binomial(std::uint64_t trials, double p) noexcept {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return trials;
  // BTPE would be faster for huge trial counts; shot counts in circuit
  // simulation are small enough that the direct method is fine and exact.
  std::uint64_t successes = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    if (uniform() < p) ++successes;
  }
  return successes;
}

std::vector<std::uint64_t> Rng::multinomial(std::uint64_t trials,
                                            const std::vector<double>& weights) {
  util::require(!weights.empty(), "multinomial requires at least one category");
  double remainingWeight = 0.0;
  for (double w : weights) {
    util::require(w >= 0.0, "multinomial weights must be nonnegative");
    remainingWeight += w;
  }
  util::require(remainingWeight > 0.0, "multinomial weights sum to zero");

  std::vector<std::uint64_t> counts(weights.size(), 0);
  std::uint64_t remainingTrials = trials;
  for (std::size_t k = 0; k + 1 < weights.size() && remainingTrials > 0; ++k) {
    const double p = weights[k] / remainingWeight;
    const std::uint64_t draw = binomial(remainingTrials, p);
    counts[k] = draw;
    remainingTrials -= draw;
    remainingWeight -= weights[k];
    if (remainingWeight <= 0.0) break;
  }
  counts.back() += remainingTrials;
  return counts;
}

void Rng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> accumulated{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) accumulated[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = accumulated;
}

std::vector<Rng> Rng::jumpStreams(std::uint64_t seed, std::size_t count) {
  std::vector<Rng> streams;
  streams.reserve(count);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    streams.push_back(rng);
    rng.jump();
  }
  return streams;
}

}  // namespace qclab::random

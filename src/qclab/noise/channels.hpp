#pragma once

/// \file channels.hpp
/// \brief Quantum noise channels in Kraus form.
///
/// Extension module motivated by the paper's error-correction example
/// (§5.4): the repetition code is only interesting when errors are
/// probabilistic.  A KrausChannel is a completely positive trace-preserving
/// map rho -> sum_i K_i rho K_i^H; the standard single-qubit channels are
/// provided as factories.

#include <cmath>
#include <utility>
#include <vector>

#include "qclab/dense/matrix.hpp"
#include "qclab/dense/ops.hpp"

namespace qclab::noise {

template <typename T>
class KrausChannel {
 public:
  /// Builds a channel from its Kraus operators (all must be square with
  /// the same power-of-two dimension, and satisfy sum K^H K = I within
  /// `tol`).
  explicit KrausChannel(std::vector<dense::Matrix<T>> operators,
                        T tol = T(1e-10))
      : operators_(std::move(operators)) {
    util::require(!operators_.empty(), "channel needs >= 1 Kraus operator");
    const std::size_t dim = operators_.front().rows();
    util::require(dim >= 2 && (dim & (dim - 1)) == 0,
                  "Kraus operator dimension must be a power of two");
    dense::Matrix<T> completeness(dim, dim);
    for (const auto& k : operators_) {
      util::require(k.rows() == dim && k.cols() == dim,
                    "Kraus operators must share one square dimension");
      completeness += k.dagger() * k;
    }
    util::require(
        completeness.distanceMax(dense::Matrix<T>::identity(dim)) <= tol,
        "Kraus operators do not satisfy sum K^H K = I");
  }

  /// The Kraus operators.
  const std::vector<dense::Matrix<T>>& operators() const noexcept {
    return operators_;
  }

  /// Number of qubits the channel acts on.
  int nbQubits() const noexcept {
    std::size_t dim = operators_.front().rows();
    int n = 0;
    while (dim > 1) {
      dim >>= 1;
      ++n;
    }
    return n;
  }

  /// Identity (no-op) channel.
  static KrausChannel identity() {
    return KrausChannel({dense::Matrix<T>::identity(2)});
  }

  /// Bit-flip channel: X with probability p.
  static KrausChannel bitFlip(T p) {
    checkProbability(p);
    return KrausChannel(
        {dense::pauliI<T>() * std::complex<T>(std::sqrt(T(1) - p)),
         dense::pauliX<T>() * std::complex<T>(std::sqrt(p))});
  }

  /// Phase-flip channel: Z with probability p.
  static KrausChannel phaseFlip(T p) {
    checkProbability(p);
    return KrausChannel(
        {dense::pauliI<T>() * std::complex<T>(std::sqrt(T(1) - p)),
         dense::pauliZ<T>() * std::complex<T>(std::sqrt(p))});
  }

  /// Bit-phase-flip channel: Y with probability p.
  static KrausChannel bitPhaseFlip(T p) {
    checkProbability(p);
    return KrausChannel(
        {dense::pauliI<T>() * std::complex<T>(std::sqrt(T(1) - p)),
         dense::pauliY<T>() * std::complex<T>(std::sqrt(p))});
  }

  /// Depolarizing channel: with probability p the qubit is replaced by the
  /// maximally mixed state (X, Y, Z each with probability p/4... using the
  /// standard parameterization K0 = sqrt(1 - 3p/4) I).
  static KrausChannel depolarizing(T p) {
    checkProbability(p);
    const T rest = std::sqrt(p / T(4));
    return KrausChannel(
        {dense::pauliI<T>() * std::complex<T>(std::sqrt(T(1) - T(3) * p / T(4))),
         dense::pauliX<T>() * std::complex<T>(rest),
         dense::pauliY<T>() * std::complex<T>(rest),
         dense::pauliZ<T>() * std::complex<T>(rest)});
  }

  /// Amplitude damping with decay probability gamma (|1> -> |0>).
  static KrausChannel amplitudeDamping(T gamma) {
    checkProbability(gamma);
    using C = std::complex<T>;
    dense::Matrix<T> k0{{C(1), C(0)}, {C(0), C(std::sqrt(T(1) - gamma))}};
    dense::Matrix<T> k1{{C(0), C(std::sqrt(gamma))}, {C(0), C(0)}};
    return KrausChannel({std::move(k0), std::move(k1)});
  }

  /// Asymmetric readout-error channel: a prepared |0> is recorded as 1
  /// with probability p01 and a prepared |1> as 0 with probability p10.
  /// On diagonal (post-dephasing) states this acts exactly like the
  /// classical 2x2 confusion matrix [[1-p01, p10], [p01, 1-p10]]; attach
  /// it as NoiseModel::measurementNoise to model noisy readout.
  static KrausChannel readout(T p01, T p10) {
    checkProbability(p01);
    checkProbability(p10);
    using C = std::complex<T>;
    dense::Matrix<T> keep{{C(std::sqrt(T(1) - p01)), C(0)},
                          {C(0), C(std::sqrt(T(1) - p10))}};
    dense::Matrix<T> flip01{{C(0), C(0)}, {C(std::sqrt(p01)), C(0)}};
    dense::Matrix<T> flip10{{C(0), C(std::sqrt(p10))}, {C(0), C(0)}};
    return KrausChannel(
        {std::move(keep), std::move(flip01), std::move(flip10)});
  }

  /// Symmetric readout-error channel (both outcomes flip with probability p).
  static KrausChannel readout(T p) { return readout(p, p); }

  /// Phase damping with parameter lambda (pure dephasing).
  static KrausChannel phaseDamping(T lambda) {
    checkProbability(lambda);
    using C = std::complex<T>;
    dense::Matrix<T> k0{{C(1), C(0)}, {C(0), C(std::sqrt(T(1) - lambda))}};
    dense::Matrix<T> k1{{C(0), C(0)}, {C(0), C(std::sqrt(lambda))}};
    return KrausChannel({std::move(k0), std::move(k1)});
  }

 private:
  static void checkProbability(T p) {
    util::require(p >= T(0) && p <= T(1),
                  "channel probability must be in [0, 1]");
  }

  std::vector<dense::Matrix<T>> operators_;
};

}  // namespace qclab::noise

#pragma once

/// \file simulator.hpp
/// \brief Noisy circuit simulation on density matrices.
///
/// Walks a QCircuit exactly like the state-vector simulator but evolves a
/// DensityMatrix and injects noise channels according to a NoiseModel:
/// after every gate, the per-qubit channel is applied to each qubit the
/// gate touched; measurements rotate into the measurement basis (V†),
/// apply the readout channel, and then dephase the qubit (the outcome
/// distribution stays available on the diagonal, and classically
/// controlled corrections expressed as multi-controlled gates — paper
/// §5.4 — act correctly on the dephased state).  Readout noise acts in
/// the *measurement* frame: a bit-flip readout channel flips the recorded
/// outcome whatever the basis, which is why it is injected between the
/// basis change and the dephase rather than before the basis change.

#include <complex>
#include <cstdint>
#include <optional>

#include "qclab/noise/density_matrix.hpp"
#include "qclab/obs/metrics.hpp"
#include "qclab/obs/trace.hpp"
#include "qclab/qcircuit.hpp"

namespace qclab::noise {

/// Which channels to inject where.
template <typename T>
struct NoiseModel {
  /// Applied to every qubit touched by a gate, after the gate.
  std::optional<KrausChannel<T>> gateNoise;
  /// Applied to the measured qubit before each measurement.
  std::optional<KrausChannel<T>> measurementNoise;
  /// Applied to every qubit during idle steps is out of scope (no
  /// scheduling model); gate/measurement noise covers the circuit model.

  /// Uniform depolarizing noise model with gate error probability p.
  static NoiseModel depolarizing(T p) {
    NoiseModel model;
    model.gateNoise = KrausChannel<T>::depolarizing(p);
    return model;
  }

  /// Bit-flip noise on gates with probability p (the repetition-code
  /// setting of paper §5.4).
  static NoiseModel bitFlip(T p) {
    NoiseModel model;
    model.gateNoise = KrausChannel<T>::bitFlip(p);
    return model;
  }

  /// Symmetric readout error on measurements with flip probability p.
  static NoiseModel readout(T p) {
    NoiseModel model;
    model.measurementNoise = KrausChannel<T>::readout(p);
    return model;
  }
};

/// Simulates `circuit` on the density matrix `state`, injecting noise per
/// `model`.  `offset` accumulates sub-circuit offsets (internal).
template <typename T>
void simulateDensity(const QCircuit<T>& circuit, DensityMatrix<T>& state,
                     const NoiseModel<T>& model = {}, int offset = 0) {
  const int total = offset + circuit.offset();
  for (const auto& object : circuit) {
    switch (object->objectType()) {
      case ObjectType::kGate: {
        const auto& gate = static_cast<const qgates::QGate<T>&>(*object);
        state.applyGate(gate, total);
        if (model.gateNoise) {
          for (int qubit : gate.qubits()) {
            state.applyChannel(*model.gateNoise, {qubit + total});
            obs::metrics().countNoiseChannel();
          }
        }
        break;
      }
      case ObjectType::kMeasurement: {
        const auto& measurement = static_cast<const Measurement<T>&>(*object);
        const int qubit = measurement.qubit() + total;
        // Basis change, readout noise, dephase, change back (paper §3.3
        // recipe applied at the density-matrix level).  The readout
        // channel must act on the rotated qubit: before the V† it would
        // commute with the measurement it is supposed to corrupt (e.g. a
        // bit-flip readout error in front of an X-basis measurement is a
        // no-op on the recorded distribution).
        if (measurement.basis() != Basis::kZ) {
          const qgates::MatrixGate1<T> change(
              measurement.qubit(), measurement.basisChangeMatrix());
          state.applyGate(change, total);
        }
        if (model.measurementNoise) {
          state.applyChannel(*model.measurementNoise, {qubit});
          obs::metrics().countNoiseChannel();
        }
        state.dephase(qubit);
        if (measurement.basis() != Basis::kZ) {
          const qgates::MatrixGate1<T> revert(measurement.qubit(),
                                              measurement.basisVectors());
          state.applyGate(revert, total);
        }
        break;
      }
      case ObjectType::kReset:
        state.reset(static_cast<const Reset<T>&>(*object).qubit() + total);
        break;
      case ObjectType::kBarrier:
        break;
      case ObjectType::kCircuit:
        simulateDensity(static_cast<const QCircuit<T>&>(*object), state,
                        model, total);
        break;
    }
  }
}

/// Attributes a density matrix's 4^n amplitudes to the obs live-memory
/// accounting for the duration of a simulateDensity run.
class ScopedDensityBytes {
 public:
  /// `nbQubits` register qubits with `ampBytes` bytes per amplitude.
  ScopedDensityBytes(int nbQubits, std::uint64_t ampBytes) noexcept
      : bytes_(obs::kEnabled
                   ? (std::uint64_t{1} << (2 * nbQubits)) * ampBytes
                   : 0) {
    obs::metrics().addStateBytes(bytes_);
  }
  ScopedDensityBytes(const ScopedDensityBytes&) = delete;
  ScopedDensityBytes& operator=(const ScopedDensityBytes&) = delete;
  ~ScopedDensityBytes() { obs::metrics().releaseStateBytes(bytes_); }

 private:
  std::uint64_t bytes_;
};

/// Convenience: runs `circuit` from |bits> under `model` and returns the
/// final density matrix.
template <typename T>
DensityMatrix<T> simulateDensity(const QCircuit<T>& circuit,
                                 const std::string& bits,
                                 const NoiseModel<T>& model = {}) {
  util::require(static_cast<int>(bits.size()) == circuit.nbQubits(),
                "initial bitstring length must equal nbQubits");
  const obs::Span span(
      obs::tracer(),
      "simulateDensity(n=" + std::to_string(circuit.nbQubits()) + ")",
      "noise");
  const ScopedDensityBytes memory(circuit.nbQubits(),
                                  sizeof(std::complex<T>));
  DensityMatrix<T> state(bits);
  simulateDensity(circuit, state, model);
  return state;
}

}  // namespace qclab::noise

#pragma once

/// \file trajectory.hpp
/// \brief Monte Carlo quantum-trajectory simulation of noisy circuits.
///
/// The density-matrix simulator (simulator.hpp) is exact but walks 4^n
/// amplitudes, which caps it at ~13 qubits.  TrajectorySimulator trades
/// exactness for scale the way QCLAB++ and Quantum++ do: it stochastically
/// unravels the NoiseModel into N independent 2^n state-vector runs, each
/// sampling one Kraus operator per channel application with probability
/// p_i = ||K_i psi||^2 and renormalizing.  Averaged over trajectories the
/// ensemble converges to the density-matrix result at O(1/sqrt(N)), so
/// noisy simulation becomes possible at qubit counts (20+) the 4^n walk
/// can never reach.
///
/// Determinism contract: trajectory t always consumes random stream t,
/// obtained by seeding xoshiro256** once and advancing it t jump()s (each
/// jump skips 2^128 draws, so the streams are pairwise disjoint).  All
/// probability reductions inside a trajectory (Kraus branch norms,
/// measurement probabilities) are serial fixed-order sums, and per-
/// trajectory results are written to preassigned slots that are merged
/// sequentially after the parallel loop — so the aggregate result is
/// bit-identical for any OpenMP thread count and any schedule.  The
/// OpenMP parallelism is over trajectories (schedule(runtime), so
/// OMP_SCHEDULE applies); the gate kernels themselves only parallelize
/// when the trajectory loop leaves them a thread to use.
///
/// Gate fusion: with TrajectoryOptions::fusion set, runs of gates with no
/// intervening noise, measurement, or reset are scheduled once through
/// sim::fuseGates and every trajectory replays the shared plan.  A
/// NoiseModel with gateNoise samples a channel after every gate, which
/// leaves no run longer than one gate to merge — the engine then applies
/// gates through the kernel backend directly, so fusion on and off are
/// bit-identical under gate noise (the fuzz tests rely on this).  With
/// measurement-only noise the fused blocks genuinely engage.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <complex>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#ifdef QCLAB_HAS_OPENMP
#include <omp.h>
#endif

#include "qclab/measurement.hpp"
#include "qclab/noise/channels.hpp"
#include "qclab/noise/simulator.hpp"
#include "qclab/observable.hpp"
#include "qclab/obs/histogram.hpp"
#include "qclab/obs/metrics.hpp"
#include "qclab/obs/trace.hpp"
#include "qclab/qcircuit.hpp"
#include "qclab/random/rng.hpp"
#include "qclab/reset.hpp"
#include "qclab/sim/backend.hpp"
#include "qclab/sim/fusion.hpp"
#include "qclab/sim/kernel_path.hpp"
#include "qclab/sim/kernels.hpp"
#include "qclab/util/bits.hpp"
#include "qclab/util/errors.hpp"

namespace qclab::noise {

/// Tuning knobs of the trajectory engine.
struct TrajectoryOptions {
  /// Seed of the master stream; trajectory t uses the t-th jump() stream.
  std::uint64_t seed = 0;
  /// Number of Monte Carlo unravellings (statistical error ~ 1/sqrt(N)).
  std::size_t nbTrajectories = 256;
  /// Fuse noise-free gate runs through sim::fuseGates (see file comment).
  bool fusion = false;
  /// Fusion window configuration when `fusion` is set.
  sim::FusionOptions fusionOptions{};
  /// OpenMP threads over trajectories; 0 = the OpenMP default.  Any value
  /// yields bit-identical results.
  int nbThreads = 0;
  /// Qubits (MSB-first, at most 16) whose final-state outcome distribution
  /// is averaged over trajectories; required for probabilities() /
  /// sampleCounts().  Empty skips the per-trajectory marginal pass, which
  /// is the right call at high qubit counts when only recorded measurement
  /// outcomes matter.
  std::vector<int> marginalQubits;
};

/// Aggregated outcome of a trajectory run.  Per-trajectory data (outcome
/// strings, functional values) stays accessible; everything aggregate is
/// merged in trajectory order so it is reproducible bit for bit.
template <typename T>
class TrajectoryResult {
 public:
  /// Number of trajectories simulated.
  std::size_t nbTrajectories() const noexcept { return results_.size(); }

  /// Recorded measurement outcomes per trajectory, in circuit order.
  const std::vector<std::string>& results() const noexcept {
    return results_;
  }

  /// Number of measurements each trajectory recorded.
  std::size_t nbMeasurements() const noexcept { return nbMeasurements_; }

  /// Trajectory counts per recorded-outcome index (MSB-first, like
  /// Simulation::counts); requires at least one measurement.
  std::vector<std::uint64_t> counts() const {
    const int m = static_cast<int>(nbMeasurements_);
    util::require(m >= 1, "counts requires measurements in the circuit");
    util::require(m <= 26, "counts vector would exceed 2^26 entries; use "
                           "countsMap for many measurements");
    std::vector<std::uint64_t> result(std::size_t{1} << m, 0);
    for (const auto& outcomes : results_) {
      std::size_t index = 0;
      for (char bit : outcomes) index = (index << 1) | (bit == '1' ? 1 : 0);
      ++result[index];
    }
    return result;
  }

  /// Trajectory counts keyed by recorded-outcome string.
  std::map<std::string, std::uint64_t> countsMap() const {
    std::map<std::string, std::uint64_t> result;
    for (const auto& outcomes : results_) ++result[outcomes];
    return result;
  }

  /// Trajectory-averaged outcome distribution over
  /// TrajectoryOptions::marginalQubits (MSB-first) — the quantity that
  /// converges to DensityMatrix::probabilities on the same qubits.
  const std::vector<T>& probabilities() const {
    util::require(!meanMarginal_.empty(),
                  "probabilities requires TrajectoryOptions::marginalQubits");
    return meanMarginal_;
  }

  /// Samples `shots` outcomes over the marginal qubits from the averaged
  /// distribution (multinomial, like sampleStateCounts).
  std::vector<std::uint64_t> sampleCounts(std::uint64_t shots,
                                          random::Rng& rng) const {
    util::require(!meanMarginal_.empty(),
                  "sampleCounts requires TrajectoryOptions::marginalQubits");
    obs::metrics().countShots(shots);
    std::vector<double> weights(meanMarginal_.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
      weights[i] = std::max(0.0, static_cast<double>(meanMarginal_[i]));
    }
    return rng.multinomial(shots, weights);
  }

  /// sampleCounts() with a fresh generator seeded by `seed`.
  std::vector<std::uint64_t> sampleCounts(std::uint64_t shots,
                                          std::uint64_t seed = 0) const {
    random::Rng rng(seed);
    return sampleCounts(shots, rng);
  }

  /// Per-trajectory functional values (run(bits, observable) or
  /// runFunctional); empty when no functional was supplied.
  const std::vector<double>& expectations() const noexcept {
    return values_;
  }

  /// Trajectory-averaged functional value (sequential mean, reproducible).
  double expectation() const {
    util::require(!values_.empty(),
                  "expectation requires run(bits, observable) or "
                  "runFunctional");
    double sum = 0.0;
    for (double value : values_) sum += value;
    return sum / static_cast<double>(values_.size());
  }

 private:
  template <typename U>
  friend class TrajectorySimulator;

  std::vector<std::string> results_;
  std::vector<double> values_;
  std::vector<T> meanMarginal_;
  std::size_t nbMeasurements_ = 0;
};

namespace detail {

/// Attributes per-thread trajectory working buffers to the obs live-memory
/// accounting (same contract as ScopedDensityBytes).
class ScopedTrajectoryBytes {
 public:
  explicit ScopedTrajectoryBytes(std::uint64_t bytes) noexcept
      : bytes_(obs::kEnabled ? bytes : 0) {
    obs::metrics().addStateBytes(bytes_);
  }
  ScopedTrajectoryBytes(const ScopedTrajectoryBytes&) = delete;
  ScopedTrajectoryBytes& operator=(const ScopedTrajectoryBytes&) = delete;
  ~ScopedTrajectoryBytes() { obs::metrics().releaseStateBytes(bytes_); }

 private:
  std::uint64_t bytes_;
};

}  // namespace detail

/// Monte Carlo trajectory engine over a circuit + noise model.  The
/// circuit is deep-copied and compiled once into a flat program (gate
/// runs, shared fusion plans, measurements, resets); run() replays the
/// program N times with independent random streams.
template <typename T>
class TrajectorySimulator {
  using C = std::complex<T>;

 public:
  TrajectorySimulator(const QCircuit<T>& circuit, NoiseModel<T> model,
                      TrajectoryOptions options = {})
      : circuit_(circuit),
        model_(std::move(model)),
        options_(std::move(options)),
        nbQubits_(circuit.nbQubits()),
        backend_(sim::defaultBackend<T>()) {
    util::require(options_.nbTrajectories >= 1,
                  "trajectory count must be positive");
    util::require(options_.nbThreads >= 0,
                  "thread count must be nonnegative");
    if (model_.gateNoise) {
      util::require(model_.gateNoise->nbQubits() == 1,
                    "trajectory engine supports single-qubit gate noise");
    }
    if (model_.measurementNoise) {
      util::require(
          model_.measurementNoise->nbQubits() == 1,
          "trajectory engine supports single-qubit measurement noise");
    }
    util::require(options_.marginalQubits.size() <= 16,
                  "marginal qubit list capped at 16 qubits (the averaged "
                  "distribution holds 2^k entries per thread)");
    marginalPositions_.reserve(options_.marginalQubits.size());
    for (int qubit : options_.marginalQubits) {
      util::checkQubit(qubit, nbQubits_);
      marginalPositions_.push_back(util::bitPosition(qubit, nbQubits_));
    }
    compile(circuit_, 0);
    finishGateRun();
  }

  int nbQubits() const noexcept { return nbQubits_; }
  const TrajectoryOptions& options() const noexcept { return options_; }

  /// Runs N trajectories from |bits>.
  TrajectoryResult<T> run(const std::string& bits) const {
    return runFunctional(bits, [](const std::vector<C>&) { return 0.0; },
                         false);
  }

  /// Runs N trajectories and records observable.expectation(state) of each
  /// final state; TrajectoryResult::expectation() is the ensemble average.
  TrajectoryResult<T> run(const std::string& bits,
                          const Observable<T>& observable) const {
    return runFunctional(bits, [&observable](const std::vector<C>& state) {
      return static_cast<double>(observable.expectation(state));
    });
  }

  /// Runs N trajectories and records fn(state) (double) of each final
  /// state.  `fn` is called concurrently and must be thread-safe.
  template <typename StateFn>
  TrajectoryResult<T> runFunctional(const std::string& bits, StateFn&& fn,
                                    bool recordValues = true) const {
    util::require(static_cast<int>(bits.size()) == nbQubits_,
                  "initial bitstring length must equal nbQubits");
    for (char bit : bits) {
      util::require(bit == '0' || bit == '1',
                    "initial bitstring must be over {0, 1}");
    }
    const std::size_t total = options_.nbTrajectories;
    const obs::Span span(
        obs::tracer(),
        "simulateTrajectories(n=" + std::to_string(nbQubits_) +
            ",N=" + std::to_string(total) + ")",
        "noise");
    obs::metrics().countTrajectoryRun(total);

    // One disjoint stream per trajectory, regardless of threading.
    const std::vector<random::Rng> streams =
        random::Rng::jumpStreams(options_.seed, total);

    TrajectoryResult<T> result;
    result.nbMeasurements_ = nbMeasurements_;
    result.results_.resize(total);
    if (recordValues) result.values_.resize(total);
    std::vector<std::vector<T>> marginals;
    if (!marginalPositions_.empty()) marginals.resize(total);

    const std::int64_t count = static_cast<std::int64_t>(total);
    const std::uint64_t stateBytes =
        (std::uint64_t{1} << nbQubits_) * sizeof(C);
    // Release/acquire edge mirroring the implicit end-of-region barrier:
    // gcc's libgomp is not TSan-instrumented, so without it the tool
    // cannot see that worker writes happen-before the merge below.
    std::atomic<int> workersDone{0};
#ifdef QCLAB_HAS_OPENMP
    const int threads = options_.nbThreads > 0 ? options_.nbThreads
                                               : omp_get_max_threads();
#pragma omp parallel num_threads(threads)
#endif
    {
      // Per-thread working set: the 2^n state plus channel scratch.
      std::vector<C> state(std::size_t{1} << nbQubits_);
      Scratch scratch;
      const detail::ScopedTrajectoryBytes memory(stateBytes);
#ifdef QCLAB_HAS_OPENMP
#pragma omp for schedule(runtime)
#endif
      for (std::int64_t t = 0; t < count; ++t) {
        const obs::PathTimer timer(sim::KernelPath::kTrajectory);
        random::Rng rng = streams[static_cast<std::size_t>(t)];
        initState(state, bits);
        std::string& outcomes = result.results_[static_cast<std::size_t>(t)];
        outcomes.reserve(nbMeasurements_);
        runOne(state, rng, scratch, outcomes);
        if (!marginalPositions_.empty()) {
          marginals[static_cast<std::size_t>(t)] = marginalOf(state);
        }
        if (recordValues) {
          result.values_[static_cast<std::size_t>(t)] =
              static_cast<double>(fn(state));
        }
      }
      workersDone.fetch_add(1, std::memory_order_release);
    }
    // RMWs form a release sequence, so this single acquire load
    // synchronizes with every worker's fetch_add above.
    (void)workersDone.load(std::memory_order_acquire);

    // Sequential merge in trajectory order: the aggregate is bit-identical
    // for every thread count and schedule.
    if (!marginals.empty()) {
      std::vector<T> mean(std::size_t{1} << marginalPositions_.size(), T(0));
      for (const auto& marginal : marginals) {
        for (std::size_t i = 0; i < mean.size(); ++i) {
          mean[i] += marginal[i];
        }
      }
      const T scale = T(1) / static_cast<T>(total);
      for (T& value : mean) value *= scale;
      result.meanMarginal_ = std::move(mean);
    }
    return result;
  }

 private:
  /// Per-trajectory scratch reused across channel applications.
  struct Scratch {
    std::vector<double> probs;   ///< branch probabilities per Kraus operator
    std::vector<C> entries;      ///< cached 2x2 entries per Kraus operator
  };

  struct GateStep {
    const qgates::QGate<T>* gate = nullptr;
    int offset = 0;
    std::vector<int> qubits;  ///< absolute qubits, for noise injection
  };

  struct Instruction {
    enum class Kind { kGates, kFused, kMeasure, kReset };
    Kind kind = Kind::kGates;
    std::vector<GateStep> gates;   ///< kGates
    sim::FusionPlan<T> plan;       ///< kFused (shared by all trajectories)
    int qubit = 0;                 ///< kMeasure / kReset (absolute)
    bool computational = true;     ///< kMeasure: Z basis?
    dense::Matrix<T> basisChange;  ///< V† (kMeasure, non-computational)
    dense::Matrix<T> basisRevert;  ///< V  (kMeasure, non-computational)
  };

  void compile(const QCircuit<T>& circuit, int offset) {
    const int total = offset + circuit.offset();
    for (const auto& object : circuit) {
      switch (object->objectType()) {
        case ObjectType::kGate: {
          const auto& gate = static_cast<const qgates::QGate<T>&>(*object);
          GateStep step;
          step.gate = &gate;
          step.offset = total;
          step.qubits = gate.qubits();
          for (int& qubit : step.qubits) qubit += total;
          openRun_.push_back(std::move(step));
          break;
        }
        case ObjectType::kMeasurement: {
          finishGateRun();
          const auto& measurement =
              static_cast<const Measurement<T>&>(*object);
          Instruction instr;
          instr.kind = Instruction::Kind::kMeasure;
          instr.qubit = measurement.qubit() + total;
          instr.computational = measurement.basis() == Basis::kZ;
          if (!instr.computational) {
            instr.basisChange = measurement.basisChangeMatrix();
            instr.basisRevert = measurement.basisVectors();
          }
          program_.push_back(std::move(instr));
          ++nbMeasurements_;
          break;
        }
        case ObjectType::kReset: {
          finishGateRun();
          Instruction instr;
          instr.kind = Instruction::Kind::kReset;
          instr.qubit = static_cast<const Reset<T>&>(*object).qubit() + total;
          program_.push_back(std::move(instr));
          break;
        }
        case ObjectType::kBarrier:
          break;
        case ObjectType::kCircuit:
          compile(static_cast<const QCircuit<T>&>(*object), total);
          break;
      }
    }
  }

  /// Closes the open gate run: fused into one shared plan when fusion is
  /// on and no per-gate noise interleaves, otherwise kept as per-gate
  /// kernel applications.
  void finishGateRun() {
    if (openRun_.empty()) return;
    Instruction instr;
    if (options_.fusion && !model_.gateNoise && openRun_.size() >= 2) {
      instr.kind = Instruction::Kind::kFused;
      std::vector<sim::GateRef<T>> refs;
      refs.reserve(openRun_.size());
      for (const GateStep& step : openRun_) {
        refs.push_back({step.gate, step.offset});
      }
      instr.plan = sim::fuseGates(refs, nbQubits_, options_.fusionOptions);
    } else {
      instr.kind = Instruction::Kind::kGates;
      instr.gates = std::move(openRun_);
    }
    program_.push_back(std::move(instr));
    openRun_.clear();
  }

  void initState(std::vector<C>& state, const std::string& bits) const {
    std::fill(state.begin(), state.end(), C(0));
    std::size_t index = 0;
    for (char bit : bits) index = (index << 1) | (bit == '1' ? 1 : 0);
    state[index] = C(1);
  }

  void runOne(std::vector<C>& state, random::Rng& rng, Scratch& scratch,
              std::string& outcomes) const {
    for (const Instruction& instr : program_) {
      switch (instr.kind) {
        case Instruction::Kind::kFused:
          sim::applyFusionPlan(state, nbQubits_, instr.plan);
          break;
        case Instruction::Kind::kGates:
          for (const GateStep& step : instr.gates) {
            backend_.applyGate(state, nbQubits_, *step.gate, step.offset);
            if (model_.gateNoise) {
              for (int qubit : step.qubits) {
                sampleChannel(state, *model_.gateNoise, qubit, rng, scratch);
              }
            }
          }
          break;
        case Instruction::Kind::kMeasure: {
          if (!instr.computational) {
            sim::apply1(state, nbQubits_, instr.qubit, instr.basisChange);
          }
          // Readout noise acts in the measurement frame — after V†,
          // before the projective sample (same ordering as the fixed
          // density-matrix simulator).
          if (model_.measurementNoise) {
            sampleChannel(state, *model_.measurementNoise, instr.qubit, rng,
                          scratch);
          }
          const int outcome = sampleAndCollapse(state, instr.qubit, rng);
          if (!instr.computational) {
            sim::apply1(state, nbQubits_, instr.qubit, instr.basisRevert);
          }
          outcomes.push_back(outcome == 0 ? '0' : '1');
          break;
        }
        case Instruction::Kind::kReset: {
          const int outcome = sampleAndCollapse(state, instr.qubit, rng);
          if (outcome == 1) {
            sim::apply1(state, nbQubits_, instr.qubit, dense::pauliX<T>());
          }
          break;
        }
      }
    }
  }

  /// Samples one Kraus operator of `channel` on `qubit` with probability
  /// ||K_i psi||^2 and applies K_i / sqrt(p_i).  The branch norms are
  /// serial fixed-order sums so the sampled index never depends on thread
  /// count.
  void sampleChannel(std::vector<C>& state, const KrausChannel<T>& channel,
                     int qubit, random::Rng& rng, Scratch& scratch) const {
    obs::metrics().countNoiseChannel();
    const auto& ops = channel.operators();
    if (ops.size() == 1) {
      // Completeness makes a lone Kraus operator unitary: apply directly.
      sim::apply1(state, nbQubits_, qubit, ops.front());
      return;
    }
    const std::size_t nbOps = ops.size();
    scratch.entries.resize(4 * nbOps);
    for (std::size_t i = 0; i < nbOps; ++i) {
      scratch.entries[4 * i + 0] = ops[i](0, 0);
      scratch.entries[4 * i + 1] = ops[i](0, 1);
      scratch.entries[4 * i + 2] = ops[i](1, 0);
      scratch.entries[4 * i + 3] = ops[i](1, 1);
    }
    scratch.probs.assign(nbOps, 0.0);
    const int pos = util::bitPosition(qubit, nbQubits_);
    const std::int64_t half = std::int64_t{1} << (nbQubits_ - 1);
    for (std::int64_t base = 0; base < half; ++base) {
      const util::index_t i0 =
          util::insertZeroBit(static_cast<util::index_t>(base), pos);
      const util::index_t i1 = util::setBit(i0, pos);
      const C a0 = state[i0];
      const C a1 = state[i1];
      for (std::size_t i = 0; i < nbOps; ++i) {
        const C* k = &scratch.entries[4 * i];
        scratch.probs[i] +=
            static_cast<double>(std::norm(k[0] * a0 + k[1] * a1) +
                                std::norm(k[2] * a0 + k[3] * a1));
      }
    }
    double total = 0.0;
    for (double p : scratch.probs) total += p;
    const double r = rng.uniform() * total;
    std::size_t chosen = nbOps;
    double cumulative = 0.0;
    for (std::size_t i = 0; i < nbOps; ++i) {
      cumulative += scratch.probs[i];
      if (r < cumulative) {
        chosen = i;
        break;
      }
    }
    if (chosen == nbOps) {
      // Rounding pushed r to the top of the CDF: take the last branch
      // with nonzero probability.
      chosen = nbOps - 1;
      while (chosen > 0 && scratch.probs[chosen] <= 0.0) --chosen;
    }
    const T scale =
        T(1) / std::sqrt(static_cast<T>(scratch.probs[chosen]));
    const dense::Matrix<T> scaled = ops[chosen] * C(scale);
    sim::apply1(state, nbQubits_, qubit, scaled);
  }

  /// Projective Z sample of `qubit` + collapse.  Serial fixed-order
  /// probability sum (sim::measureProbability0 uses an OpenMP reduction
  /// whose summation order varies with thread count — unusable here).
  int sampleAndCollapse(std::vector<C>& state, int qubit,
                        random::Rng& rng) const {
    const int pos = util::bitPosition(qubit, nbQubits_);
    const std::int64_t half = std::int64_t{1} << (nbQubits_ - 1);
    T p0(0);
    for (std::int64_t base = 0; base < half; ++base) {
      p0 += std::norm(state[util::insertZeroBit(
          static_cast<util::index_t>(base), pos)]);
    }
    const double p0Clamped =
        std::min(1.0, std::max(0.0, static_cast<double>(p0)));
    int outcome = rng.uniform() < p0Clamped ? 0 : 1;
    T probability = outcome == 0 ? p0 : T(1) - p0;
    if (!(probability > T(0))) {
      // The drawn branch is numerically impossible; take the other one.
      outcome = 1 - outcome;
      probability = outcome == 0 ? p0 : T(1) - p0;
    }
    sim::collapse(state, nbQubits_, qubit, outcome, probability);
    return outcome;
  }

  /// Outcome distribution of `state` over the marginal qubits (serial).
  std::vector<T> marginalOf(const std::vector<C>& state) const {
    std::vector<T> probs(std::size_t{1} << marginalPositions_.size(), T(0));
    for (std::size_t i = 0; i < state.size(); ++i) {
      util::index_t outcome = 0;
      for (int pos : marginalPositions_) {
        outcome = (outcome << 1) |
                  util::getBit(static_cast<util::index_t>(i), pos);
      }
      probs[outcome] += std::norm(state[i]);
    }
    return probs;
  }

  QCircuit<T> circuit_;  ///< deep copy: the program's gate pointers stay valid
  NoiseModel<T> model_;
  TrajectoryOptions options_;
  int nbQubits_;
  const sim::Backend<T>& backend_;
  std::vector<Instruction> program_;
  std::vector<GateStep> openRun_;  ///< compile-time accumulator
  std::size_t nbMeasurements_ = 0;
  std::vector<int> marginalPositions_;
};

/// Convenience: runs `nbTrajectories` unravellings of `circuit` from
/// |bits> under `model` with default options.
template <typename T>
TrajectoryResult<T> simulateTrajectories(const QCircuit<T>& circuit,
                                         const std::string& bits,
                                         const NoiseModel<T>& model,
                                         TrajectoryOptions options = {}) {
  const TrajectorySimulator<T> simulator(circuit, model, std::move(options));
  return simulator.run(bits);
}

}  // namespace qclab::noise

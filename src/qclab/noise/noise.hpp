#pragma once

/// \file noise.hpp
/// \brief Umbrella header for the noisy-simulation extension.

#include "qclab/noise/channels.hpp"
#include "qclab/noise/density_matrix.hpp"
#include "qclab/noise/simulator.hpp"
#include "qclab/noise/trajectory.hpp"

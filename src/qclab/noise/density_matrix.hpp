#pragma once

/// \file density_matrix.hpp
/// \brief Density-matrix state for mixed-state (noisy) simulation.
///
/// The state is a dense 2^n x 2^n density matrix; unitary gates are applied
/// as rho -> U rho U^H using the same in-place kernels as the state-vector
/// simulator (column pass + adjoint column pass), channels as Kraus sums,
/// and measurements either dephase (mid-circuit, outcome kept coherent for
/// classically-controlled corrections) or collapse.

#include <complex>
#include <vector>

#include "qclab/dense/matrix.hpp"
#include "qclab/dense/ops.hpp"
#include "qclab/noise/channels.hpp"
#include "qclab/qgates/qgate.hpp"
#include "qclab/sim/backend.hpp"
#include "qclab/sim/kernels.hpp"
#include "qclab/util/bitstring.hpp"

namespace qclab::noise {

template <typename T>
class DensityMatrix {
 public:
  using value_type = std::complex<T>;

  /// Pure basis state |bits><bits|.
  explicit DensityMatrix(const std::string& bits)
      : nbQubits_(static_cast<int>(bits.size())),
        rho_(std::size_t{1} << bits.size(), std::size_t{1} << bits.size()) {
    const auto index = util::bitstringToIndex(bits);
    rho_(index, index) = value_type(1);
  }

  /// Pure state |state><state|.
  explicit DensityMatrix(const std::vector<value_type>& state)
      : nbQubits_(util::log2PowerOfTwo(state.size())),
        rho_(dense::outer(state, state)) {
    util::require(util::isPowerOfTwo(state.size()),
                  "state dimension must be a power of two");
  }

  /// Wraps an existing density matrix (validated loosely).
  DensityMatrix(int nbQubits, dense::Matrix<T> rho)
      : nbQubits_(nbQubits), rho_(std::move(rho)) {
    util::require(rho_.rows() == (std::size_t{1} << nbQubits) &&
                      rho_.isSquare(),
                  "density matrix dimension mismatch");
  }

  int nbQubits() const noexcept { return nbQubits_; }
  const dense::Matrix<T>& matrix() const noexcept { return rho_; }

  /// tr(rho) — should stay 1 up to rounding.
  T trace() const { return std::real(rho_.trace()); }

  /// tr(rho^2).
  T purity() const {
    T sum(0);
    for (std::size_t i = 0; i < rho_.rows(); ++i)
      for (std::size_t j = 0; j < rho_.cols(); ++j)
        sum += std::norm(rho_(i, j));
    return sum;
  }

  /// <psi| rho |psi> — fidelity with a pure reference state.
  T fidelityWith(const std::vector<value_type>& state) const {
    util::require(state.size() == rho_.rows(),
                  "fidelity dimension mismatch");
    value_type sum(0);
    for (std::size_t i = 0; i < state.size(); ++i) {
      for (std::size_t j = 0; j < state.size(); ++j) {
        sum += std::conj(state[i]) * rho_(i, j) * state[j];
      }
    }
    return std::real(sum);
  }

  /// Applies a unitary gate: rho <- U rho U^H (kernel-based, two passes).
  void applyGate(const qgates::QGate<T>& gate, int offset = 0) {
    const auto& backend = sim::defaultBackend<T>();
    applyMatrixConjugation([&](std::vector<value_type>& column) {
      backend.applyGate(column, nbQubits_, gate, offset);
    });
  }

  /// Applies a Kraus channel on the given qubits:
  /// rho <- sum_i K_i rho K_i^H.
  void applyChannel(const KrausChannel<T>& channel,
                    const std::vector<int>& qubits) {
    util::require(static_cast<int>(qubits.size()) == channel.nbQubits(),
                  "channel qubit count mismatch");
    dense::Matrix<T> result(rho_.rows(), rho_.cols());
    for (const auto& kraus : channel.operators()) {
      dense::Matrix<T> branch = rho_;
      conjugateWithMatrix(branch, qubits, kraus);
      result += branch;
    }
    rho_ = std::move(result);
  }

  /// Probability of measuring |0> on `qubit`.
  T probability0(int qubit) const {
    util::checkQubit(qubit, nbQubits_);
    const int pos = util::bitPosition(qubit, nbQubits_);
    T p0(0);
    for (std::size_t i = 0; i < rho_.rows(); ++i) {
      if (util::getBit(i, pos) == 0) p0 += std::real(rho_(i, i));
    }
    return p0;
  }

  /// Mid-circuit measurement without recording the outcome: dephases the
  /// qubit, rho <- P0 rho P0 + P1 rho P1.  Subsequent classically
  /// controlled corrections can be applied coherently (e.g. the MCX gates
  /// of the repetition code).
  void dephase(int qubit) {
    util::checkQubit(qubit, nbQubits_);
    const int pos = util::bitPosition(qubit, nbQubits_);
    for (std::size_t i = 0; i < rho_.rows(); ++i) {
      for (std::size_t j = 0; j < rho_.cols(); ++j) {
        if (util::getBit(i, pos) != util::getBit(j, pos)) {
          rho_(i, j) = value_type(0);
        }
      }
    }
  }

  /// Collapses `qubit` onto `outcome` (renormalized); returns the outcome
  /// probability that was consumed.
  T collapse(int qubit, int outcome) {
    util::checkQubit(qubit, nbQubits_);
    util::require(outcome == 0 || outcome == 1, "outcome must be 0 or 1");
    const int pos = util::bitPosition(qubit, nbQubits_);
    const T p0 = probability0(qubit);
    const T p = outcome == 0 ? p0 : T(1) - p0;
    util::require(p > T(0), "cannot collapse onto zero probability");
    const auto keep = static_cast<util::index_t>(outcome);
    for (std::size_t i = 0; i < rho_.rows(); ++i) {
      for (std::size_t j = 0; j < rho_.cols(); ++j) {
        if (util::getBit(i, pos) != keep || util::getBit(j, pos) != keep) {
          rho_(i, j) = value_type(0);
        } else {
          rho_(i, j) /= p;
        }
      }
    }
    return p;
  }

  /// Reset: rho <- P0 rho P0 + X P1 rho P1 X.
  void reset(int qubit) {
    util::checkQubit(qubit, nbQubits_);
    const int pos = util::bitPosition(qubit, nbQubits_);
    dense::Matrix<T> result(rho_.rows(), rho_.cols());
    for (std::size_t i = 0; i < rho_.rows(); ++i) {
      for (std::size_t j = 0; j < rho_.cols(); ++j) {
        if (util::getBit(i, pos) == util::getBit(j, pos)) {
          result(util::clearBit(i, pos), util::clearBit(j, pos)) +=
              rho_(i, j);
        }
      }
    }
    rho_ = std::move(result);
  }

  /// Outcome distribution over the listed qubits (in list order, MSB
  /// first), read from the diagonal.
  std::vector<T> probabilities(const std::vector<int>& qubits) const {
    const int k = static_cast<int>(qubits.size());
    std::vector<T> result(std::size_t{1} << k, T(0));
    for (std::size_t i = 0; i < rho_.rows(); ++i) {
      util::index_t outcome = 0;
      for (int b = 0; b < k; ++b) {
        util::checkQubit(qubits[static_cast<std::size_t>(b)], nbQubits_);
        outcome = (outcome << 1) |
                  util::getBit(i, util::bitPosition(
                                      qubits[static_cast<std::size_t>(b)],
                                      nbQubits_));
      }
      result[outcome] += std::real(rho_(i, i));
    }
    return result;
  }

 private:
  /// rho <- M rho M^H where `columnOp` applies M to a state vector.
  template <typename ColumnOp>
  void applyMatrixConjugation(ColumnOp&& columnOp) {
    // Pass 1: columns (rho <- M rho), via B = (M (M rho)^H)^H.
    applyToColumns(rho_, columnOp);
    dense::Matrix<T> adjoint = rho_.dagger();
    applyToColumns(adjoint, columnOp);
    rho_ = adjoint.dagger();
  }

  template <typename ColumnOp>
  static void applyToColumns(dense::Matrix<T>& matrix, ColumnOp&& columnOp) {
    std::vector<value_type> column(matrix.rows());
    for (std::size_t j = 0; j < matrix.cols(); ++j) {
      for (std::size_t i = 0; i < matrix.rows(); ++i) column[i] = matrix(i, j);
      columnOp(column);
      for (std::size_t i = 0; i < matrix.rows(); ++i) matrix(i, j) = column[i];
    }
  }

  /// branch <- K branch K^H for a (possibly non-unitary) k-qubit matrix.
  void conjugateWithMatrix(dense::Matrix<T>& branch,
                           const std::vector<int>& qubits,
                           const dense::Matrix<T>& kraus) {
    auto op = [&](std::vector<value_type>& column) {
      if (qubits.size() == 1) {
        sim::apply1(column, nbQubits_, qubits[0], kraus);
      } else {
        sim::applyK(column, nbQubits_, qubits, kraus);
      }
    };
    applyToColumns(branch, op);
    dense::Matrix<T> adjoint = branch.dagger();
    applyToColumns(adjoint, op);
    branch = adjoint.dagger();
  }

  int nbQubits_;
  dense::Matrix<T> rho_;
};

}  // namespace qclab::noise

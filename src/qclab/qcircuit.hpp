#pragma once

/// \file qcircuit.hpp
/// \brief The quantum circuit container: an ordered sequence of gates,
/// measurements, resets, barriers, and nested sub-circuits, with
/// simulation, unitary extraction, inversion, and QASM / LaTeX / terminal
/// output (paper §2-§4).

#include <cmath>
#include <complex>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <utility>
#include <vector>

#include "qclab/barrier.hpp"
#include "qclab/io/layout.hpp"
#include "qclab/measurement.hpp"
#include "qclab/obs/metrics.hpp"
#include "qclab/obs/sentinel.hpp"
#include "qclab/obs/trace.hpp"
#include "qclab/qgates/qgates.hpp"
#include "qclab/reset.hpp"
#include "qclab/sim/backend.hpp"
#include "qclab/sim/dispatch_mode.hpp"
#include "qclab/simulation.hpp"

namespace qclab {

namespace sim {
struct BatchOptions;  // sim/batch.hpp — knobs of QCircuit::simulateBatch
template <typename U>
class DispatchRunner;  // sim/dispatch.hpp — executes routed simulate calls
}

/// Simulation-time options of QCircuit::simulate.
struct SimulateOptions {
  /// Fuse runs of adjacent gates into <= fusionOptions.maxQubits blocks
  /// applied with one state sweep each (sim/fusion.hpp).  Measurements,
  /// resets, and barriers flush the open run; results are identical to an
  /// unfused run up to rounding.
  bool fusion = false;
  /// Scheduler knobs used when `fusion` is on.
  sim::FusionOptions fusionOptions{};
  /// Which engine runs the circuit (sim/dispatch.hpp).  kAuto analyzes
  /// the circuit and runs its Clifford prefix on a CHP stabilizer tableau
  /// (O(n^2) per gate), expanding to a statevector at the first
  /// non-Clifford op; kStabilizer forces the tableau prefix regardless of
  /// length.  The QCLAB_DISPATCH environment variable overrides this
  /// field.  Only the bits-overload of simulate routes — simulating from
  /// an arbitrary state vector always uses the statevector pipeline.
  sim::DispatchMode dispatch = sim::DispatchMode::kStatevector;
  /// Tuning knobs of the kAuto router.
  sim::DispatchOptions dispatchOptions{};
  /// Where the state amplitudes live (sim/state_buffer.hpp): heap, a
  /// NUMA first-touch mapping, or an out-of-core mmap tier — chosen
  /// automatically by state size, overridable here and through the
  /// QCLAB_STATE_TIER / QCLAB_STATE_DIR environment variables.  Only
  /// the bits-overload of simulate allocates tiered; simulating from an
  /// arbitrary state vector adopts it on the heap tier.
  sim::StateTierOptions stateTier{};
};

template <typename T>
class QCircuit final : public QObject<T> {
 public:
  /// Circuit over `nbQubits` qubits.  `offset` shifts all qubit indices
  /// when this circuit is nested inside a larger one (QCLAB's
  /// QCircuit(nbQubits, offset)).
  explicit QCircuit(int nbQubits, int offset = 0)
      : nbQubits_(nbQubits), offset_(offset) {
    util::require(nbQubits >= 1, "circuit needs at least one qubit");
    util::require(offset >= 0, "offset must be nonnegative");
  }

  QCircuit(const QCircuit& other)
      : nbQubits_(other.nbQubits_),
        offset_(other.offset_),
        isBlock_(other.isBlock_),
        label_(other.label_) {
    objects_.reserve(other.objects_.size());
    for (const auto& object : other.objects_) {
      objects_.push_back(object->clone());
    }
  }

  QCircuit& operator=(const QCircuit& other) {
    if (this != &other) {
      QCircuit copy(other);
      *this = std::move(copy);
    }
    return *this;
  }

  QCircuit(QCircuit&&) noexcept = default;
  QCircuit& operator=(QCircuit&&) noexcept = default;

  // ---- container interface -------------------------------------------

  /// Appends an object (gate, measurement, reset, barrier, sub-circuit).
  void push_back(std::unique_ptr<QObject<T>> object) {
    checkFits(*object);
    objects_.push_back(std::move(object));
  }

  /// Appends a copy-constructed object:
  ///   circuit.push_back(qclab::qgates::Hadamard<double>(0));
  template <typename ObjectT>
    requires std::is_base_of_v<QObject<T>, std::decay_t<ObjectT>>
  void push_back(ObjectT object) {
    push_back(std::make_unique<std::decay_t<ObjectT>>(std::move(object)));
  }

  /// Inserts an object before position `pos`.
  void insert(std::size_t pos, std::unique_ptr<QObject<T>> object) {
    util::require(pos <= objects_.size(), "insert position out of range");
    checkFits(*object);
    objects_.insert(objects_.begin() + static_cast<std::ptrdiff_t>(pos),
                    std::move(object));
  }

  /// Removes the object at position `pos`.
  void erase(std::size_t pos) {
    util::require(pos < objects_.size(), "erase position out of range");
    objects_.erase(objects_.begin() + static_cast<std::ptrdiff_t>(pos));
  }

  /// Removes all objects.
  void clear() noexcept { objects_.clear(); }

  /// Number of objects in the circuit (non-recursive).
  std::size_t nbObjects() const noexcept { return objects_.size(); }

  /// Total number of elementary objects, descending into sub-circuits.
  std::size_t nbObjectsRecursive() const {
    std::size_t count = 0;
    for (const auto& object : objects_) {
      if (object->objectType() == ObjectType::kCircuit) {
        count += static_cast<const QCircuit<T>&>(*object).nbObjectsRecursive();
      } else {
        ++count;
      }
    }
    return count;
  }

  /// Histogram of elementary objects by kind, descending into
  /// sub-circuits: gates keyed by their diagram label / class behaviour
  /// ("measure", "reset", "barrier" for non-gates).
  std::map<std::string, std::size_t> gateCounts() const {
    std::map<std::string, std::size_t> counts;
    collectGateCounts(counts);
    return counts;
  }

  /// Circuit depth: the number of layers when objects are packed greedily
  /// to the left (the same packing the diagram renderer uses).  Barriers
  /// occupy a layer of their own over their span; nested circuits
  /// contribute their elements individually.
  int depth() const {
    std::vector<int> nextFree(static_cast<std::size_t>(nbQubits_ + offset_),
                              0);
    int layers = 0;
    collectDepth(nextFree, layers, 0);
    return layers;
  }

  /// Structural fingerprint of the circuit SHAPE: a 64-bit FNV-1a hash
  /// over everything the simulate path's plan depends on — qubit count,
  /// object kinds (concrete gate types), qubit layout, control qubits and
  /// control states, measurement bases, nesting structure and offsets —
  /// and over no parameter VALUE (rotation angles and phases are
  /// excluded).  Two circuits with equal shapeHash can share one fusion
  /// plan + block schedule and differ only by parameter rebinding
  /// (sim::BatchedSimulation); circuits with the same gate sequence but
  /// different qubit counts, targets, or control layouts hash apart.
  std::uint64_t shapeHash() const {
    std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
    hashShapeValue(h, 0x51c1ab);                // domain tag
    hashShapeValue(h, static_cast<std::uint64_t>(nbQubits_));
    hashShape(h, 0);
    return h;
  }

  /// Object access.
  const QObject<T>& objectAt(std::size_t pos) const {
    util::require(pos < objects_.size(), "object position out of range");
    return *objects_[pos];
  }

  /// Mutable object access — the surface the parameter rebinding layer
  /// (parameter_binding.hpp) uses to reach gate setTheta in place.
  QObject<T>& objectAt(std::size_t pos) {
    util::require(pos < objects_.size(), "object position out of range");
    return *objects_[pos];
  }

  auto begin() const noexcept { return objects_.begin(); }
  auto end() const noexcept { return objects_.end(); }

  // ---- properties ------------------------------------------------------

  int nbQubits() const noexcept override { return nbQubits_; }

  /// Qubit offset of this circuit inside its parent.
  int offset() const noexcept { return offset_; }
  /// Changes the qubit offset.
  void setOffset(int offset) {
    util::require(offset >= 0, "offset must be nonnegative");
    offset_ = offset;
  }

  std::vector<int> qubits() const override {
    std::vector<int> qs(static_cast<std::size_t>(nbQubits_));
    for (int q = 0; q < nbQubits_; ++q) qs[static_cast<std::size_t>(q)] = q + offset_;
    return qs;
  }

  ObjectType objectType() const noexcept override {
    return ObjectType::kCircuit;
  }

  std::unique_ptr<QObject<T>> clone() const override {
    return std::make_unique<QCircuit<T>>(*this);
  }

  void shiftQubits(int delta) override { setOffset(offset_ + delta); }

  // ---- block drawing (paper §5.3: asBlock / unBlock) --------------------

  /// Draw this circuit as a single labeled box when nested.
  void asBlock(std::string label = "U") {
    isBlock_ = true;
    label_ = std::move(label);
  }
  /// Draw this circuit's contents individually again.
  void unBlock() noexcept { isBlock_ = false; }
  bool isBlock() const noexcept { return isBlock_; }
  const std::string& label() const noexcept { return label_; }

  // ---- linear algebra ----------------------------------------------------

  /// The 2^n x 2^n unitary of the circuit (throws if the circuit contains
  /// measurements or resets).  Computed column-by-column with the kernel
  /// backend.
  dense::Matrix<T> matrix() const {
    const std::size_t dim = std::size_t{1} << nbQubits_;
    dense::Matrix<T> u(dim, dim);
    const sim::KernelBackend<T> backend;
    for (std::size_t j = 0; j < dim; ++j) {
      std::vector<std::complex<T>> state(dim);
      state[j] = std::complex<T>(1);
      applyUnitaryOnly(state, 0, backend);
      for (std::size_t i = 0; i < dim; ++i) u(i, j) = state[i];
    }
    return u;
  }

  /// The inverse circuit (objects reversed, each gate inverted); QCLAB's
  /// ctranspose.  Throws if the circuit contains measurements or resets.
  QCircuit<T> inverted() const {
    QCircuit<T> inverse(nbQubits_, offset_);
    if (isBlock_) inverse.asBlock(label_ + "†");
    for (auto it = objects_.rbegin(); it != objects_.rend(); ++it) {
      const QObject<T>& object = **it;
      switch (object.objectType()) {
        case ObjectType::kGate:
          inverse.objects_.push_back(
              static_cast<const qgates::QGate<T>&>(object).inverse());
          break;
        case ObjectType::kCircuit:
          inverse.objects_.push_back(std::make_unique<QCircuit<T>>(
              static_cast<const QCircuit<T>&>(object).inverted()));
          break;
        case ObjectType::kBarrier:
          inverse.objects_.push_back(object.clone());
          break;
        default:
          throw InvalidArgumentError(
              "cannot invert a circuit containing measurements or resets");
      }
    }
    return inverse;
  }

  // ---- simulation (paper §3) --------------------------------------------

  /// Simulates from the basis state given by `bits` (e.g. "00").
  Simulation<T> simulate(
      const std::string& bits,
      const sim::Backend<T>& backend = sim::defaultBackend<T>()) const {
    return simulate(bits, SimulateOptions{}, backend);
  }

  /// Simulates from an arbitrary initial state vector (normalized within
  /// 1e-6 relative; renormalized exactly before the run).
  Simulation<T> simulate(
      std::vector<std::complex<T>> state,
      const sim::Backend<T>& backend = sim::defaultBackend<T>()) const {
    return simulate(std::move(state), SimulateOptions{}, backend);
  }

  /// Simulates from the basis state given by `bits` with explicit options.
  /// When the resolved dispatch mode (options.dispatch, overridden by the
  /// QCLAB_DISPATCH environment variable) is not kStatevector, the run is
  /// routed through sim::DispatchRunner (sim/dispatch.hpp).
  Simulation<T> simulate(
      const std::string& bits, const SimulateOptions& options,
      const sim::Backend<T>& backend = sim::defaultBackend<T>()) const {
    util::require(static_cast<int>(bits.size()) == nbQubits_,
                  "initial bitstring length must equal nbQubits");
    const sim::DispatchMode mode = sim::resolveDispatchMode(options.dispatch);
    if (mode != sim::DispatchMode::kStatevector) {
      return sim::DispatchRunner<T>::simulate(*this, bits, options, backend,
                                              mode);
    }
    obs::metrics().countDispatchRoute(sim::DispatchRoute::kStatevector);
    sim::StateBuffer<T> state;
    {
      // Allocating through the tier ladder (instead of basisState's
      // plain vector) lets 30+ qubit runs land on the NUMA or
      // out-of-core tier; on the mmap tier the zero-fill is a file
      // hole, so only the basis amplitude's page faults in here.
      const obs::ScopedSpan span("state/alloc", "stage");
      state = sim::StateBuffer<T>::zeros(std::size_t{1} << nbQubits_,
                                         options.stateTier);
      state.data()[util::bitstringToIndex(bits)] = std::complex<T>(1);
    }
    return simulate(std::move(state), options, backend);
  }

  /// Simulates from an arbitrary initial state with explicit options.
  /// With options.fusion the unitary gate runs between measurement / reset
  /// / barrier boundaries are fused into blocks (plan built once, applied
  /// to every branch); non-gate objects still go through `backend`.
  /// Takes a StateBuffer so both legacy vectors (implicit heap adoption)
  /// and tiered allocations flow through one pipeline.
  Simulation<T> simulate(
      sim::StateBuffer<T> state, const SimulateOptions& options,
      const sim::Backend<T>& backend = sim::defaultBackend<T>()) const {
    util::require(state.size() == (std::size_t{1} << nbQubits_),
                  "initial state dimension must be 2^nbQubits");
    const T norm = dense::norm2(state);
    util::require(std::abs(norm - T(1)) < T(1e-4),
                  "initial state must be normalized");
    if (norm != T(1)) {
      const T scale = T(1) / norm;
      for (auto& amplitude : state) amplitude *= scale;
    }
    obs::metrics().countCircuitSimulation();
    const obs::ScopedSpan span(
        "simulate(n=" + std::to_string(nbQubits_) + ")", "circuit",
        "simulate");
    Simulation<T> simulation(nbQubits_, std::move(state));
    {
      const obs::ScopedSpan executeSpan("execute", "stage");
      if (options.fusion) {
        std::vector<sim::GateRef<T>> run;
        applyToFused(simulation, 0, options, backend, run);
        flushFusedRun(simulation, options.fusionOptions, run);
      } else {
        applyTo(simulation, 0, backend);
      }
    }
    // Throttled numerical-health check on the finished state (sentinel.hpp;
    // covers the scalar, SIMD, fused, and blocked execution paths alike).
    // Branch weights are factored out of branch states, so each branch
    // should be unit-norm on its own.
    if (obs::sentinel().shouldCheck()) {
      for (const auto& branch : simulation.branches()) {
        obs::sentinelCheckState(branch.state.data(), branch.state.size(),
                                "simulate");
      }
    }
    obs::sentinel().throwIfPending();
    return simulation;
  }

  /// Batched parameter sweep (sim/batch.hpp — include it to use these):
  /// compiles this circuit's shape ONCE (fusion plan + block schedule),
  /// then executes one member per parameter vector by rebinding the
  /// plan's gate parameters (ParameterBinding slot order).  Every
  /// member's amplitudes are bit-identical to binding the same vector on
  /// a copy and calling simulate with the matching options.  Defined
  /// out-of-line in qclab/sim/batch.hpp.
  std::vector<Simulation<T>> simulateBatch(
      const std::vector<std::vector<T>>& parameterSets,
      const sim::BatchOptions& options) const;

  /// simulateBatch with default BatchOptions.
  std::vector<Simulation<T>> simulateBatch(
      const std::vector<std::vector<T>>& parameterSets) const;

  /// Applies this circuit to an existing simulation (used recursively for
  /// sub-circuits; `offset` accumulates parent offsets, this circuit's own
  /// offset is added on top).
  void applyTo(Simulation<T>& simulation, int offset,
               const sim::Backend<T>& backend) const {
    const int total = offset + offset_;
    for (const auto& object : objects_) {
      applyObject(simulation, *object, total, backend);
    }
  }

  // ---- I/O (paper §4) -----------------------------------------------------

  /// Full OpenQASM 2.0 program.
  std::string toQASM() const {
    std::ostringstream stream;
    stream << "OPENQASM 2.0;\n"
           << "include \"qelib1.inc\";\n"
           << "qreg q[" << nbQubits_ << "];\n"
           << "creg c[" << nbQubits_ << "];\n";
    toQASM(stream, 0);
    return stream.str();
  }

  /// Emits only the body statements (used when nested).
  void toQASM(std::ostream& stream, int offset = 0) const override {
    for (const auto& object : objects_) {
      object->toQASM(stream, offset + offset_);
    }
  }

  /// UTF-8 terminal diagram of the circuit.
  std::string draw() const {
    std::vector<io::DrawItem> items;
    for (const auto& object : objects_) {
      object->appendDrawItems(items, offset_);
    }
    return io::renderAscii(items, nbQubits_ + offset_);
  }

  /// Standalone quantikz LaTeX document of the circuit diagram.
  std::string toTex() const {
    std::vector<io::DrawItem> items;
    for (const auto& object : objects_) {
      object->appendDrawItems(items, offset_);
    }
    return io::renderLatex(items, nbQubits_ + offset_);
  }

  void appendDrawItems(std::vector<io::DrawItem>& items,
                       int offset = 0) const override {
    if (isBlock_) {
      io::DrawItem item;
      item.kind = io::DrawItem::Kind::kBlock;
      item.label = label_;
      item.boxTop = offset + offset_;
      item.boxBottom = offset + offset_ + nbQubits_ - 1;
      items.push_back(std::move(item));
      return;
    }
    for (const auto& object : objects_) {
      object->appendDrawItems(items, offset + offset_);
    }
  }

 private:
  /// The dispatch router hands the post-conversion suffix back to the
  /// statevector pipeline through applyObject / flushFusedRun.
  friend class sim::DispatchRunner<T>;

  /// Probability below which a measurement outcome is treated as impossible
  /// (suppresses branches created purely by rounding, e.g. Grover's "wrong"
  /// outcomes at probability ~1e-32).
  static constexpr T kDropTol = T(100) * std::numeric_limits<T>::epsilon();

  // ---- shape hashing (see shapeHash) ------------------------------------

  static void hashShapeValue(std::uint64_t& h, std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h ^= (value >> (8 * i)) & 0xff;
      h *= 1099511628211ull;  // FNV-1a prime
    }
  }

  static void hashShapeBytes(std::uint64_t& h, const char* bytes) {
    for (; *bytes != '\0'; ++bytes) {
      h ^= static_cast<unsigned char>(*bytes);
      h *= 1099511628211ull;
    }
  }

  /// Hashes this circuit's objects with absolute qubit indices (`offset`
  /// accumulates parent offsets, mirroring the simulate walk).  Gate
  /// kinds are keyed by typeid name: stable within a process, and — the
  /// property the batch engine needs — equal exactly when the concrete
  /// gate class is the same regardless of its parameter values.
  void hashShape(std::uint64_t& h, int offset) const {
    const int total = offset + offset_;
    hashShapeValue(h, static_cast<std::uint64_t>(objects_.size()));
    for (const auto& object : objects_) {
      hashShapeValue(h, static_cast<std::uint64_t>(object->objectType()));
      if (object->objectType() == ObjectType::kCircuit) {
        const auto& sub = static_cast<const QCircuit<T>&>(*object);
        hashShapeValue(h, static_cast<std::uint64_t>(sub.nbQubits_));
        sub.hashShape(h, total);
        continue;
      }
      hashShapeBytes(h, typeid(*object).name());
      for (const int qubit : object->qubits()) {
        hashShapeValue(h, static_cast<std::uint64_t>(qubit + total));
      }
      if (object->objectType() == ObjectType::kGate) {
        const auto& gate = static_cast<const qgates::QGate<T>&>(*object);
        const auto controls = gate.controls();
        const auto states = gate.controlStates();
        hashShapeValue(h, static_cast<std::uint64_t>(controls.size()));
        for (std::size_t i = 0; i < controls.size(); ++i) {
          hashShapeValue(h, static_cast<std::uint64_t>(controls[i] + total));
          hashShapeValue(h, static_cast<std::uint64_t>(states[i]));
        }
      } else if (object->objectType() == ObjectType::kMeasurement) {
        hashShapeValue(h, static_cast<std::uint64_t>(
                              static_cast<const Measurement<T>&>(*object)
                                  .basis()));
      }
    }
  }

  void collectGateCounts(std::map<std::string, std::size_t>& counts) const {
    for (const auto& object : objects_) {
      switch (object->objectType()) {
        case ObjectType::kCircuit:
          static_cast<const QCircuit<T>&>(*object).collectGateCounts(counts);
          break;
        case ObjectType::kMeasurement:
          ++counts["measure"];
          break;
        case ObjectType::kReset:
          ++counts["reset"];
          break;
        case ObjectType::kBarrier:
          ++counts["barrier"];
          break;
        case ObjectType::kGate:
          // Key by the shared label scheme (gate mnemonic incl. controls),
          // so these static counts match obs-metered application counts.
          ++counts[qgates::gateKindLabel(
              static_cast<const qgates::QGate<T>&>(*object))];
          break;
      }
    }
  }

  void collectDepth(std::vector<int>& nextFree, int& layers,
                    int offset) const {
    const int total = offset + offset_;
    for (const auto& object : objects_) {
      if (object->objectType() == ObjectType::kCircuit) {
        static_cast<const QCircuit<T>&>(*object).collectDepth(nextFree,
                                                              layers, total);
        continue;
      }
      const int top = object->minQubit() + total;
      const int bottom = object->maxQubit() + total;
      int layer = 0;
      for (int row = top; row <= bottom; ++row) {
        layer = std::max(layer, nextFree[static_cast<std::size_t>(row)]);
      }
      for (int row = top; row <= bottom; ++row) {
        nextFree[static_cast<std::size_t>(row)] = layer + 1;
      }
      layers = std::max(layers, layer + 1);
    }
  }

  void checkFits(const QObject<T>& object) const {
    const auto qs = object.qubits();
    util::require(!qs.empty(), "object acts on no qubits");
    util::require(qs.back() < nbQubits_,
                  "object qubit " + std::to_string(qs.back()) +
                      " does not fit in a " + std::to_string(nbQubits_) +
                      "-qubit circuit");
  }

  /// Applies the gates of this circuit to a bare state; throws on
  /// non-unitary objects.  Used by matrix().
  void applyUnitaryOnly(std::vector<std::complex<T>>& state, int offset,
                        const sim::Backend<T>& backend) const {
    const int total = offset + offset_;
    const int nbStateQubits = util::log2PowerOfTwo(state.size());
    for (const auto& object : objects_) {
      switch (object->objectType()) {
        case ObjectType::kGate:
          backend.applyGate(state, nbStateQubits,
                            static_cast<const qgates::QGate<T>&>(*object),
                            total);
          break;
        case ObjectType::kCircuit:
          static_cast<const QCircuit<T>&>(*object).applyUnitaryOnly(
              state, total, backend);
          break;
        case ObjectType::kBarrier:
          break;
        default:
          throw InvalidArgumentError(
              "circuit with measurements or resets has no unitary matrix");
      }
    }
  }

  /// Fusion-mode walk: gates accumulate into `run` (with their absolute
  /// offsets), sub-circuits recurse, and anything that is not a unitary
  /// gate flushes the run first.  Barriers are semantically neutral but
  /// double as explicit fusion boundaries.
  void applyToFused(Simulation<T>& simulation, int offset,
                    const SimulateOptions& options,
                    const sim::Backend<T>& backend,
                    std::vector<sim::GateRef<T>>& run) const {
    const int total = offset + offset_;
    for (const auto& object : objects_) {
      switch (object->objectType()) {
        case ObjectType::kGate:
          run.push_back(
              {static_cast<const qgates::QGate<T>*>(object.get()), total});
          break;
        case ObjectType::kCircuit:
          static_cast<const QCircuit<T>&>(*object).applyToFused(
              simulation, total, options, backend, run);
          break;
        case ObjectType::kBarrier:
          flushFusedRun(simulation, options.fusionOptions, run);
          break;
        default:
          flushFusedRun(simulation, options.fusionOptions, run);
          applyObject(simulation, *object, total, backend);
          break;
      }
    }
  }

  /// Fuses the accumulated gate run (plan built once) and applies it to
  /// every simulation branch, then clears the run.
  static void flushFusedRun(Simulation<T>& simulation,
                            const sim::FusionOptions& options,
                            std::vector<sim::GateRef<T>>& run) {
    if (run.empty()) return;
    const sim::FusionPlan<T> plan =
        sim::fuseGates(run, simulation.nbQubits(), options);
    for (auto& branch : simulation.branches()) {
      sim::applyFusionPlan(branch.state, simulation.nbQubits(), plan);
    }
    run.clear();
  }

  static void applyObject(Simulation<T>& simulation, const QObject<T>& object,
                          int offset, const sim::Backend<T>& backend) {
    switch (object.objectType()) {
      case ObjectType::kGate: {
        const auto& gate = static_cast<const qgates::QGate<T>&>(object);
        for (auto& branch : simulation.branches()) {
          backend.applyGate(branch.state, simulation.nbQubits(), gate, offset);
        }
        break;
      }
      case ObjectType::kMeasurement:
        applyMeasurement(simulation,
                         static_cast<const Measurement<T>&>(object), offset);
        break;
      case ObjectType::kReset:
        applyReset(simulation, static_cast<const Reset<T>&>(object), offset);
        break;
      case ObjectType::kBarrier:
        break;
      case ObjectType::kCircuit:
        static_cast<const QCircuit<T>&>(object).applyTo(simulation, offset,
                                                        backend);
        break;
    }
  }

  static void applyMeasurement(Simulation<T>& simulation,
                               const Measurement<T>& measurement, int offset) {
    const obs::ScopedSpan span("measure", "stage");
    const int nbQubits = simulation.nbQubits();
    const int qubit = measurement.qubit() + offset;
    util::checkQubit(qubit, nbQubits);
    const bool computational = measurement.basis() == Basis::kZ;
    const dense::Matrix<T> v = measurement.basisVectors();
    const dense::Matrix<T> vDagger = v.dagger();

    std::vector<Branch<T>> next;
    next.reserve(simulation.branches().size());
    for (auto& branch : simulation.branches()) {
      if (!computational) {
        sim::apply1(branch.state, nbQubits, qubit, vDagger);
      }
      T p0 = sim::measureProbability0(branch.state, nbQubits, qubit);
      p0 = std::min(std::max(p0, T(0)), T(1));
      const T p1 = T(1) - p0;
      const T probabilities[2] = {p0, p1};
      const bool both = p0 > kDropTol && p1 > kDropTol;
      if (both) {
        obs::metrics().countBranchSpawn();
      } else {
        obs::metrics().countBranchPrune();
      }
      for (int outcome = 0; outcome < 2; ++outcome) {
        const T p = probabilities[outcome];
        if (p <= kDropTol) continue;
        Branch<T> child;
        // The state of the last surviving outcome can be moved.
        if (both && outcome == 0) {
          child.state = branch.state;
        } else {
          child.state = std::move(branch.state);
        }
        sim::collapse(child.state, nbQubits, qubit, outcome, p);
        if (!computational) {
          sim::apply1(child.state, nbQubits, qubit, v);
        }
        child.probability = branch.probability * static_cast<double>(p);
        child.result = branch.result + static_cast<char>('0' + outcome);
        child.measurements = branch.measurements;
        child.measurements.emplace_back(qubit, outcome);
        next.push_back(std::move(child));
      }
    }
    simulation.branches() = std::move(next);
    simulation.retrackStateBytes();
  }

  static void applyReset(Simulation<T>& simulation, const Reset<T>& reset,
                         int offset) {
    const obs::ScopedSpan span("reset", "stage");
    const int nbQubits = simulation.nbQubits();
    const int qubit = reset.qubit() + offset;
    util::checkQubit(qubit, nbQubits);
    const auto x = dense::pauliX<T>();

    std::vector<Branch<T>> next;
    next.reserve(simulation.branches().size());
    for (auto& branch : simulation.branches()) {
      T p0 = sim::measureProbability0(branch.state, nbQubits, qubit);
      p0 = std::min(std::max(p0, T(0)), T(1));
      const T p1 = T(1) - p0;
      const T probabilities[2] = {p0, p1};
      const bool both = p0 > kDropTol && p1 > kDropTol;
      if (both) {
        obs::metrics().countBranchSpawn();
      } else {
        obs::metrics().countBranchPrune();
      }
      for (int outcome = 0; outcome < 2; ++outcome) {
        const T p = probabilities[outcome];
        if (p <= kDropTol) continue;
        Branch<T> child;
        if (both && outcome == 0) {
          child.state = branch.state;
        } else {
          child.state = std::move(branch.state);
        }
        sim::collapse(child.state, nbQubits, qubit, outcome, p);
        if (outcome == 1) {
          sim::apply1(child.state, nbQubits, qubit, x);
        }
        child.probability = branch.probability * static_cast<double>(p);
        child.result = branch.result;  // resets record no classical outcome
        child.measurements = branch.measurements;
        next.push_back(std::move(child));
      }
    }
    simulation.branches() = std::move(next);
    simulation.retrackStateBytes();
  }

  int nbQubits_;
  int offset_;
  bool isBlock_ = false;
  std::string label_ = "U";
  std::vector<std::unique_ptr<QObject<T>>> objects_;
};

}  // namespace qclab

// The dispatch engine behind SimulateOptions::dispatch.  Included at the
// bottom because DispatchRunner needs the complete QCircuit (and vice
// versa); the mutual includes are #pragma-once safe in either order.
#include "qclab/sim/dispatch.hpp"

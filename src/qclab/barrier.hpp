#pragma once

/// \file barrier.hpp
/// \brief Drawing / OpenQASM barrier over a contiguous qubit range.
/// Simulation treats it as a no-op; the column-layout engine never packs
/// elements across it.

#include <numeric>
#include <ostream>

#include "qclab/qobject.hpp"
#include "qclab/util/errors.hpp"

namespace qclab {

template <typename T>
class Barrier final : public QObject<T> {
 public:
  /// Barrier spanning qubits `first`..`last` (inclusive).
  Barrier(int first, int last) : first_(first), last_(last) {
    util::require(first >= 0 && last >= first, "invalid barrier range");
  }

  ObjectType objectType() const noexcept override {
    return ObjectType::kBarrier;
  }
  int nbQubits() const noexcept override { return last_ - first_ + 1; }
  std::vector<int> qubits() const override {
    std::vector<int> qs(static_cast<std::size_t>(nbQubits()));
    std::iota(qs.begin(), qs.end(), first_);
    return qs;
  }

  std::unique_ptr<QObject<T>> clone() const override {
    return std::make_unique<Barrier<T>>(*this);
  }

  void shiftQubits(int delta) override {
    util::require(first_ + delta >= 0, "qubit shift would go negative");
    first_ += delta;
    last_ += delta;
  }

  void toQASM(std::ostream& stream, int offset = 0) const override {
    stream << "barrier";
    const char* separator = " ";
    for (int q = first_; q <= last_; ++q) {
      stream << separator << "q[" << (q + offset) << "]";
      separator = ", ";
    }
    stream << ";\n";
  }

  void appendDrawItems(std::vector<io::DrawItem>& items,
                       int offset = 0) const override {
    io::DrawItem item;
    item.kind = io::DrawItem::Kind::kBarrier;
    item.boxTop = first_ + offset;
    item.boxBottom = last_ + offset;
    items.push_back(std::move(item));
  }

 private:
  int first_;
  int last_;
};

}  // namespace qclab

#pragma once

/// \file measurement.hpp
/// \brief Single-qubit measurement in the Z, X, Y, or a custom basis.
///
/// Measurements in a non-computational basis are realized exactly as the
/// paper describes (§3.3): the basis change V† is applied before a standard
/// Z measurement and V is applied again afterwards, so probabilities and
/// post-measurement states are correct in the requested basis.

#include <cmath>
#include <limits>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

#include "qclab/dense/matrix.hpp"
#include "qclab/qobject.hpp"
#include "qclab/util/errors.hpp"

namespace qclab {

/// Measurement basis selector.
enum class Basis { kZ, kX, kY, kCustom };

template <typename T>
class Measurement final : public QObject<T> {
 public:
  /// Z-basis measurement of `qubit`.
  explicit Measurement(int qubit) : Measurement(qubit, Basis::kZ) {}

  /// Measurement of `qubit` in a preconfigured basis.
  Measurement(int qubit, Basis basis) : qubit_(qubit), basis_(basis) {
    util::require(qubit >= 0, "qubit index must be nonnegative");
    util::require(basis != Basis::kCustom,
                  "custom basis requires the matrix constructor");
  }

  /// Measurement in a basis given by a character: 'z', 'x', or 'y'
  /// (mirrors QCLAB's Measurement(0, 'x')).
  Measurement(int qubit, char basis) : qubit_(qubit) {
    util::require(qubit >= 0, "qubit index must be nonnegative");
    switch (basis) {
      case 'z': case 'Z': basis_ = Basis::kZ; break;
      case 'x': case 'X': basis_ = Basis::kX; break;
      case 'y': case 'Y': basis_ = Basis::kY; break;
      default:
        throw InvalidArgumentError("unknown measurement basis character");
    }
  }

  /// Measurement in the custom basis whose vectors are the *columns* of the
  /// 2x2 unitary `basisVectors`.
  Measurement(int qubit, dense::Matrix<T> basisVectors)
      : qubit_(qubit), basis_(Basis::kCustom), custom_(std::move(basisVectors)) {
    util::require(qubit >= 0, "qubit index must be nonnegative");
    util::require(custom_.rows() == 2 && custom_.cols() == 2,
                  "custom measurement basis must be a 2x2 unitary");
    util::require(custom_.isUnitary(T(1e4) * std::numeric_limits<T>::epsilon()),
                  "custom measurement basis must be unitary");
  }

  ObjectType objectType() const noexcept override {
    return ObjectType::kMeasurement;
  }

  int nbQubits() const noexcept override { return 1; }
  std::vector<int> qubits() const override { return {qubit_}; }

  /// The measured qubit.
  int qubit() const noexcept { return qubit_; }

  void shiftQubits(int delta) override {
    util::require(qubit_ + delta >= 0, "qubit shift would go negative");
    qubit_ += delta;
  }
  /// The measurement basis.
  Basis basis() const noexcept { return basis_; }

  /// Unitary V whose columns are the measurement basis vectors.
  dense::Matrix<T> basisVectors() const {
    using C = std::complex<T>;
    const T h = T(1) / std::sqrt(T(2));
    switch (basis_) {
      case Basis::kZ:
        return dense::Matrix<T>::identity(2);
      case Basis::kX:
        return dense::Matrix<T>{{h, h}, {h, -h}};
      case Basis::kY:
        return dense::Matrix<T>{{C(h), C(h)}, {C(0, h), C(0, -h)}};
      case Basis::kCustom:
        return custom_;
    }
    return dense::Matrix<T>::identity(2);
  }

  /// Basis change applied before the standard Z measurement (V†).
  dense::Matrix<T> basisChangeMatrix() const { return basisVectors().dagger(); }

  std::unique_ptr<QObject<T>> clone() const override {
    return std::make_unique<Measurement<T>>(*this);
  }

  void toQASM(std::ostream& stream, int offset = 0) const override {
    const int q = qubit_ + offset;
    // Hardware realizes non-Z bases by a basis change before a Z measurement.
    switch (basis_) {
      case Basis::kZ:
        break;
      case Basis::kX:
        stream << "h q[" << q << "];\n";
        break;
      case Basis::kY:
        stream << "sdg q[" << q << "];\n" << "h q[" << q << "];\n";
        break;
      case Basis::kCustom:
        throw InvalidArgumentError(
            "custom-basis measurement has no direct OpenQASM 2 form; apply "
            "the basis change explicitly");
    }
    stream << "measure q[" << q << "] -> c[" << q << "];\n";
  }

  void appendDrawItems(std::vector<io::DrawItem>& items,
                       int offset = 0) const override {
    io::DrawItem item;
    item.kind = io::DrawItem::Kind::kMeasure;
    switch (basis_) {
      case Basis::kZ: item.label = "M"; break;
      case Basis::kX: item.label = "Mx"; break;
      case Basis::kY: item.label = "My"; break;
      case Basis::kCustom: item.label = "Mu"; break;
    }
    item.boxTop = qubit_ + offset;
    item.boxBottom = qubit_ + offset;
    items.push_back(std::move(item));
  }

 private:
  int qubit_;
  Basis basis_ = Basis::kZ;
  dense::Matrix<T> custom_;
};

}  // namespace qclab

#pragma once

/// \file density.hpp
/// \brief Density-matrix utilities supporting the tomography example
/// (paper §5.2): construction, trace distance, fidelity, purity, partial
/// trace, and single-qubit Pauli coefficients.

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <limits>
#include <vector>

#include "qclab/dense/eig.hpp"
#include "qclab/dense/matrix.hpp"
#include "qclab/dense/ops.hpp"
#include "qclab/util/bits.hpp"
#include "qclab/util/errors.hpp"

namespace qclab::density {

/// Density matrix |v><v| of a pure state.
template <typename T>
dense::Matrix<T> densityMatrix(const std::vector<std::complex<T>>& state) {
  return dense::outer(state, state);
}

/// Checks the basic density-matrix structure: square, Hermitian, unit trace.
template <typename T>
bool isDensityMatrix(const dense::Matrix<T>& rho, T tol) {
  if (!rho.isSquare() || !rho.isHermitian(tol)) return false;
  return std::abs(rho.trace() - std::complex<T>(1)) <= tol;
}

/// Trace distance D(rho, sigma) = 0.5 * ||rho - sigma||_1 (sum of absolute
/// eigenvalues of the Hermitian difference).
template <typename T>
T traceDistance(const dense::Matrix<T>& rho, const dense::Matrix<T>& sigma) {
  util::require(rho.rows() == sigma.rows() && rho.cols() == sigma.cols(),
                "trace distance dimension mismatch");
  const auto eig = dense::eigh(rho - sigma);
  T sum(0);
  for (T value : eig.values) sum += std::abs(value);
  return sum / T(2);
}

/// Purity tr(rho^2).
template <typename T>
T purity(const dense::Matrix<T>& rho) {
  util::require(rho.isSquare(), "purity of non-square matrix");
  // tr(rho^2) = sum_ij rho_ij rho_ji = sum_ij |rho_ij|^2 for Hermitian rho.
  T sum(0);
  for (std::size_t i = 0; i < rho.rows(); ++i)
    for (std::size_t j = 0; j < rho.cols(); ++j) sum += std::norm(rho(i, j));
  return sum;
}

/// Hermitian PSD matrix square root via eigen-decomposition.
template <typename T>
dense::Matrix<T> sqrtPsd(const dense::Matrix<T>& a, T clipTol = T(1e-12)) {
  const auto eig = dense::eigh(a, /*computeVectors=*/true);
  const std::size_t n = a.rows();
  dense::Matrix<T> result(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    T value = eig.values[k];
    util::require(value > -clipTol - T(1e3) * std::numeric_limits<T>::epsilon(),
                  "matrix is not positive semidefinite");
    value = value > T(0) ? std::sqrt(value) : T(0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        result(i, j) +=
            value * eig.vectors(i, k) * std::conj(eig.vectors(j, k));
      }
    }
  }
  return result;
}

/// Uhlmann fidelity F(rho, sigma) = (tr sqrt(sqrt(rho) sigma sqrt(rho)))^2.
template <typename T>
T fidelity(const dense::Matrix<T>& rho, const dense::Matrix<T>& sigma) {
  util::require(rho.rows() == sigma.rows() && rho.cols() == sigma.cols(),
                "fidelity dimension mismatch");
  const auto sqrtRho = sqrtPsd(rho);
  const auto inner = sqrtRho * sigma * sqrtRho;
  const auto eig = dense::eigh(inner);
  T sum(0);
  for (T value : eig.values) {
    if (value > T(0)) sum += std::sqrt(value);
  }
  return sum * sum;
}

/// Fidelity of a pure state with a density matrix: <v| rho |v>.
template <typename T>
T fidelity(const std::vector<std::complex<T>>& state,
           const dense::Matrix<T>& rho) {
  util::require(rho.rows() == state.size() && rho.cols() == state.size(),
                "fidelity dimension mismatch");
  std::complex<T> sum(0);
  for (std::size_t i = 0; i < state.size(); ++i) {
    for (std::size_t j = 0; j < state.size(); ++j) {
      sum += std::conj(state[i]) * rho(i, j) * state[j];
    }
  }
  return std::real(sum);
}

/// Partial trace over `traceOutQubits` of an n-qubit density matrix
/// (qubit ordering as everywhere: qubit 0 = most significant).
template <typename T>
dense::Matrix<T> partialTrace(const dense::Matrix<T>& rho, int nbQubits,
                              const std::vector<int>& traceOutQubits) {
  util::require(rho.rows() == (std::size_t{1} << nbQubits) && rho.isSquare(),
                "density matrix dimension mismatch");
  const int k = static_cast<int>(traceOutQubits.size());
  util::require(k <= nbQubits, "tracing out more qubits than available");

  // Bit positions of the traced qubits, ascending (for insertion).
  std::vector<int> tracedPositions(traceOutQubits.size());
  for (std::size_t i = 0; i < traceOutQubits.size(); ++i) {
    util::checkQubit(traceOutQubits[i], nbQubits);
    tracedPositions[i] = util::bitPosition(traceOutQubits[i], nbQubits);
  }
  std::sort(tracedPositions.begin(), tracedPositions.end());
  for (std::size_t i = 1; i < tracedPositions.size(); ++i) {
    util::require(tracedPositions[i] != tracedPositions[i - 1],
                  "duplicate traced qubit");
  }

  const std::size_t keptDim = std::size_t{1} << (nbQubits - k);
  const std::size_t tracedDim = std::size_t{1} << k;
  dense::Matrix<T> reduced(keptDim, keptDim);
  for (util::index_t a = 0; a < keptDim; ++a) {
    for (util::index_t b = 0; b < keptDim; ++b) {
      std::complex<T> sum(0);
      for (util::index_t e = 0; e < tracedDim; ++e) {
        util::index_t rowIndex = a;
        util::index_t colIndex = b;
        for (std::size_t i = 0; i < tracedPositions.size(); ++i) {
          const util::index_t bit = util::getBit(e, static_cast<int>(i));
          rowIndex = util::insertBit(rowIndex, tracedPositions[i], bit);
          colIndex = util::insertBit(colIndex, tracedPositions[i], bit);
        }
        sum += rho(rowIndex, colIndex);
      }
      reduced(a, b) = sum;
    }
  }
  return reduced;
}

/// Schmidt decomposition of a pure state across the cut separating
/// `subsystemQubits` (A) from the rest (B): the descending singular values
/// lambda_i with |psi> = sum_i lambda_i |a_i>|b_i>.  Obtained as the
/// square roots of the eigenvalues of the reduced density matrix of A.
template <typename T>
std::vector<T> schmidtCoefficients(const std::vector<std::complex<T>>& state,
                                   const std::vector<int>& subsystemQubits) {
  util::require(util::isPowerOfTwo(state.size()), "state size not 2^n");
  const int nbQubits = util::log2PowerOfTwo(state.size());
  util::require(!subsystemQubits.empty() &&
                    static_cast<int>(subsystemQubits.size()) < nbQubits,
                "Schmidt cut must be a proper nonempty subsystem");
  std::vector<int> complement;
  for (int q = 0; q < nbQubits; ++q) {
    if (std::find(subsystemQubits.begin(), subsystemQubits.end(), q) ==
        subsystemQubits.end()) {
      complement.push_back(q);
    }
  }
  const auto reduced =
      partialTrace(densityMatrix(state), nbQubits, complement);
  auto eig = dense::eigh(reduced);
  std::vector<T> coefficients;
  coefficients.reserve(eig.values.size());
  // eigh sorts ascending; report descending, clipping rounding negatives.
  for (auto it = eig.values.rbegin(); it != eig.values.rend(); ++it) {
    coefficients.push_back(*it > T(0) ? std::sqrt(*it) : T(0));
  }
  return coefficients;
}

/// Schmidt rank (number of coefficients above `tol`): 1 for product
/// states across the cut, > 1 for entangled ones.  The default tolerance
/// reflects that coefficients are square roots of eigenvalues computed to
/// ~1e-14: rounding-level eigenvalues surface as ~1e-7 coefficients.
template <typename T>
int schmidtRank(const std::vector<std::complex<T>>& state,
                const std::vector<int>& subsystemQubits, T tol = T(1e-6)) {
  const auto coefficients = schmidtCoefficients(state, subsystemQubits);
  int rank = 0;
  for (T value : coefficients) {
    if (value > tol) ++rank;
  }
  return rank;
}

/// Von Neumann entropy S(rho) = -tr(rho log2 rho) in bits.
template <typename T>
T vonNeumannEntropy(const dense::Matrix<T>& rho) {
  const auto eig = dense::eigh(rho);
  T entropy(0);
  for (T value : eig.values) {
    if (value > T(0)) {
      entropy -= value * std::log2(value);
    }
  }
  return entropy;
}

/// Entanglement entropy of a pure state across the cut that separates
/// `subsystemQubits` from the rest: the von Neumann entropy of the reduced
/// density matrix of the subsystem.
template <typename T>
T entanglementEntropy(const std::vector<std::complex<T>>& state,
                      const std::vector<int>& subsystemQubits) {
  util::require(util::isPowerOfTwo(state.size()), "state size not 2^n");
  const int nbQubits = util::log2PowerOfTwo(state.size());
  // Trace out the complement of the subsystem.
  std::vector<int> complement;
  for (int q = 0; q < nbQubits; ++q) {
    if (std::find(subsystemQubits.begin(), subsystemQubits.end(), q) ==
        subsystemQubits.end()) {
      complement.push_back(q);
    }
  }
  const auto reduced =
      partialTrace(densityMatrix(state), nbQubits, complement);
  return vonNeumannEntropy(reduced);
}

/// Coefficients (S0, S1, S2, S3) of a single-qubit density matrix in the
/// Pauli basis: rho = (S0 I + S1 X + S2 Y + S3 Z) / 2, with Si = tr(rho si).
template <typename T>
std::array<T, 4> pauliCoefficients(const dense::Matrix<T>& rho) {
  util::require(rho.rows() == 2 && rho.cols() == 2,
                "pauliCoefficients needs a 1-qubit density matrix");
  const auto traceWith = [&](const dense::Matrix<T>& pauli) {
    return std::real((rho * pauli).trace());
  };
  return {traceWith(dense::pauliI<T>()), traceWith(dense::pauliX<T>()),
          traceWith(dense::pauliY<T>()), traceWith(dense::pauliZ<T>())};
}

/// Reconstructs a single-qubit density matrix from Pauli coefficients
/// (paper §5.2, Eq. (2)).
template <typename T>
dense::Matrix<T> fromPauliCoefficients(const std::array<T, 4>& s) {
  auto rho = dense::pauliI<T>() * std::complex<T>(s[0]);
  rho += dense::pauliX<T>() * std::complex<T>(s[1]);
  rho += dense::pauliY<T>() * std::complex<T>(s[2]);
  rho += dense::pauliZ<T>() * std::complex<T>(s[3]);
  rho *= std::complex<T>(T(0.5));
  return rho;
}

}  // namespace qclab::density

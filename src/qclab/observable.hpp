#pragma once

/// \file observable.hpp
/// \brief Pauli-string observables and expectation values.
///
/// QCLAB is positioned as a prototyping platform for quantum algorithm
/// research (paper §1); measuring expectation values of Pauli observables
/// is the core primitive of that workflow (VQE-style energy evaluation,
/// tomography generalizations).  PauliString applies the operators with
/// the in-place kernels — no operator matrix is ever materialized, so
/// expectation values scale as O(terms * 2^n).

#include <cctype>
#include <complex>
#include <string>
#include <vector>

#include "qclab/dense/ops.hpp"
#include "qclab/sim/kernels.hpp"
#include "qclab/sim/state_buffer.hpp"
#include "qclab/util/errors.hpp"

namespace qclab {

/// A weighted Pauli string, e.g. 1.5 * "XIZY": character k acts on
/// qubit k ('I', 'X', 'Y', 'Z'; case-insensitive).
template <typename T>
class PauliString {
 public:
  /// Builds `coefficient * paulis`.  Throws on characters outside IXYZ.
  explicit PauliString(std::string paulis, T coefficient = T(1))
      : paulis_(std::move(paulis)), coefficient_(coefficient) {
    util::require(!paulis_.empty(), "empty Pauli string");
    for (char& c : paulis_) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      util::require(c == 'I' || c == 'X' || c == 'Y' || c == 'Z',
                    "Pauli string may contain only I, X, Y, Z");
    }
  }

  /// Number of qubits the string is defined on.
  int nbQubits() const noexcept { return static_cast<int>(paulis_.size()); }

  /// The Pauli characters.
  const std::string& paulis() const noexcept { return paulis_; }

  /// The real coefficient.
  T coefficient() const noexcept { return coefficient_; }
  void setCoefficient(T coefficient) noexcept { coefficient_ = coefficient; }

  /// Number of non-identity factors.
  int weight() const noexcept {
    int w = 0;
    for (char c : paulis_) {
      if (c != 'I') ++w;
    }
    return w;
  }

  /// Applies `coefficient * P` to a copy of `state` using the in-place
  /// kernels.
  std::vector<std::complex<T>> apply(
      const std::vector<std::complex<T>>& state) const {
    util::require(state.size() == (std::size_t{1} << paulis_.size()),
                  "state dimension does not match Pauli string length");
    std::vector<std::complex<T>> result = state;
    const int n = nbQubits();
    for (int q = 0; q < n; ++q) {
      switch (paulis_[static_cast<std::size_t>(q)]) {
        case 'X':
          sim::apply1(result, n, q, dense::pauliX<T>());
          break;
        case 'Y':
          sim::apply1(result, n, q, dense::pauliY<T>());
          break;
        case 'Z':
          sim::applyDiagonal1(result, n, q, std::complex<T>(1),
                              std::complex<T>(-1));
          break;
        default:
          break;
      }
    }
    if (coefficient_ != T(1)) {
      for (auto& amplitude : result) amplitude *= coefficient_;
    }
    return result;
  }

  /// Expectation value <psi| coefficient * P |psi> (real for normalized
  /// states and real coefficients).
  T expectation(const std::vector<std::complex<T>>& state) const {
    return std::real(dense::inner(state, apply(state)));
  }

  /// Expectation on a tiered state buffer (any tier; reads through a
  /// plain-vector copy).
  T expectation(const sim::StateBuffer<T>& state) const {
    return expectation(state.toVector());
  }

  /// Dense matrix of `coefficient * P` (tests / small registers).
  dense::Matrix<T> matrix() const {
    dense::Matrix<T> m(1, 1);
    m(0, 0) = std::complex<T>(coefficient_);
    for (char c : paulis_) {
      switch (c) {
        case 'X': m = dense::kron(m, dense::pauliX<T>()); break;
        case 'Y': m = dense::kron(m, dense::pauliY<T>()); break;
        case 'Z': m = dense::kron(m, dense::pauliZ<T>()); break;
        default: m = dense::kron(m, dense::pauliI<T>()); break;
      }
    }
    return m;
  }

 private:
  std::string paulis_;
  T coefficient_;
};

/// A Hermitian observable: a real-weighted sum of Pauli strings on a fixed
/// register size.
template <typename T>
class Observable {
 public:
  /// Empty observable on `nbQubits` qubits.
  explicit Observable(int nbQubits) : nbQubits_(nbQubits) {
    util::require(nbQubits >= 1, "observable needs at least one qubit");
  }

  int nbQubits() const noexcept { return nbQubits_; }

  /// Adds a term; its string length must match the register size.  Terms
  /// with identical Pauli strings are merged.
  Observable& add(PauliString<T> term) {
    util::require(term.nbQubits() == nbQubits_,
                  "Pauli string length does not match the observable");
    for (auto& existing : terms_) {
      if (existing.paulis() == term.paulis()) {
        existing.setCoefficient(existing.coefficient() + term.coefficient());
        return *this;
      }
    }
    terms_.push_back(std::move(term));
    return *this;
  }

  /// Convenience: add(coefficient * paulis).
  Observable& add(const std::string& paulis, T coefficient) {
    return add(PauliString<T>(paulis, coefficient));
  }

  const std::vector<PauliString<T>>& terms() const noexcept { return terms_; }
  std::size_t nbTerms() const noexcept { return terms_.size(); }

  /// H |psi>.
  std::vector<std::complex<T>> apply(
      const std::vector<std::complex<T>>& state) const {
    std::vector<std::complex<T>> result(state.size(), std::complex<T>(0));
    for (const auto& term : terms_) {
      const auto contribution = term.apply(state);
      for (std::size_t i = 0; i < result.size(); ++i) {
        result[i] += contribution[i];
      }
    }
    return result;
  }

  /// <psi| H |psi>.
  T expectation(const std::vector<std::complex<T>>& state) const {
    return std::real(dense::inner(state, apply(state)));
  }

  /// <psi| H |psi> on a tiered state buffer.
  T expectation(const sim::StateBuffer<T>& state) const {
    return expectation(state.toVector());
  }

  /// Var(H) = <H^2> - <H>^2 for the given state.
  T variance(const std::vector<std::complex<T>>& state) const {
    const auto hPsi = apply(state);
    const T squared = dense::normSquared(hPsi);               // <H^2>
    const T mean = std::real(dense::inner(state, hPsi));      // <H>
    return squared - mean * mean;
  }

  /// Dense matrix (tests / small registers).
  dense::Matrix<T> matrix() const {
    const std::size_t dim = std::size_t{1} << nbQubits_;
    dense::Matrix<T> m(dim, dim);
    for (const auto& term : terms_) {
      m += term.matrix();
    }
    return m;
  }

 private:
  int nbQubits_;
  std::vector<PauliString<T>> terms_;
};

/// Transverse-field Ising Hamiltonian on a chain:
///   H = -J * sum_i Z_i Z_{i+1} - h * sum_i X_i
/// (periodic adds the wrap-around ZZ bond).  The canonical benchmark
/// observable for time-evolution compilers like F3C built on QCLAB.
template <typename T>
Observable<T> isingHamiltonian(int nbQubits, T coupling, T field,
                               bool periodic = false) {
  Observable<T> hamiltonian(nbQubits);
  const auto bond = [&](int i, int j) {
    std::string paulis(static_cast<std::size_t>(nbQubits), 'I');
    paulis[static_cast<std::size_t>(i)] = 'Z';
    paulis[static_cast<std::size_t>(j)] = 'Z';
    hamiltonian.add(paulis, -coupling);
  };
  for (int i = 0; i + 1 < nbQubits; ++i) bond(i, i + 1);
  if (periodic && nbQubits > 2) bond(nbQubits - 1, 0);
  for (int i = 0; i < nbQubits; ++i) {
    std::string paulis(static_cast<std::size_t>(nbQubits), 'I');
    paulis[static_cast<std::size_t>(i)] = 'X';
    hamiltonian.add(paulis, -field);
  }
  return hamiltonian;
}

}  // namespace qclab

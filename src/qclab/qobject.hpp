#pragma once

/// \file qobject.hpp
/// \brief Abstract base class of everything that can be pushed onto a
/// QCircuit: gates, measurements, resets, barriers, and sub-circuits.

#include <memory>
#include <ostream>
#include <vector>

#include "qclab/io/draw_ir.hpp"

namespace qclab {

/// Discriminator used by the simulator and the I/O passes to dispatch on the
/// object category without dynamic_cast chains.
enum class ObjectType {
  kGate,         ///< unitary gate (any number of qubits / controls)
  kMeasurement,  ///< single-qubit measurement
  kReset,        ///< single-qubit reset to |0>
  kBarrier,      ///< no-op separator for drawing and QASM
  kCircuit,      ///< nested sub-circuit
};

/// Base class for circuit elements, templated over the real scalar type `T`
/// (float or double) like QCLAB++.
template <typename T>
class QObject {
 public:
  virtual ~QObject() = default;

  /// Category of this object.
  virtual ObjectType objectType() const noexcept = 0;

  /// Number of qubits this object acts on.
  virtual int nbQubits() const noexcept = 0;

  /// The qubit indices this object acts on, in ascending order.
  virtual std::vector<int> qubits() const = 0;

  /// Smallest qubit index used.
  int minQubit() const {
    const auto qs = qubits();
    return qs.empty() ? 0 : qs.front();
  }

  /// Largest qubit index used.
  int maxQubit() const {
    const auto qs = qubits();
    return qs.empty() ? 0 : qs.back();
  }

  /// Deep copy.
  virtual std::unique_ptr<QObject<T>> clone() const = 0;

  /// Shifts every qubit index of this object by `delta` (used when
  /// flattening nested circuits).  Throws if an index would go negative.
  virtual void shiftQubits(int delta) = 0;

  /// Writes the OpenQASM 2.0 statement(s) for this object.  `offset` is
  /// added to every qubit index (used when this object sits inside a
  /// sub-circuit).
  virtual void toQASM(std::ostream& stream, int offset = 0) const = 0;

  /// Lowers this object to diagram elements, appending to `items`.
  /// `offset` is added to every qubit row.
  virtual void appendDrawItems(std::vector<io::DrawItem>& items,
                               int offset = 0) const = 0;
};

}  // namespace qclab

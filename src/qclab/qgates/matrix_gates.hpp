#pragma once

/// \file matrix_gates.hpp
/// \brief User-defined gates from explicit unitary matrices.  The paper
/// highlights that QCLAB's object-oriented architecture lets users implement
/// custom quantum gates; these classes are the direct route.

#include <utility>

#include "qclab/dense/decompose.hpp"
#include "qclab/io/format.hpp"
#include "qclab/qgates/qgate1.hpp"

namespace qclab::qgates {

/// Custom single-qubit gate from a 2x2 unitary.
template <typename T>
class MatrixGate1 final : public QGate1<T> {
 public:
  /// Creates the gate; throws InvalidArgumentError if `matrix` is not a
  /// 2x2 unitary.  `label` is used in circuit diagrams.
  MatrixGate1(int qubit, dense::Matrix<T> matrix, std::string label = "U")
      : QGate1<T>(qubit), matrix_(std::move(matrix)), label_(std::move(label)) {
    util::require(matrix_.rows() == 2 && matrix_.cols() == 2,
                  "MatrixGate1 needs a 2x2 matrix");
    util::require(matrix_.isUnitary(unitaryTol()),
                  "MatrixGate1 matrix is not unitary");
  }

  dense::Matrix<T> matrix() const override { return matrix_; }

  std::string qasmName() const override {
    // Export via the ZYZ decomposition (exact up to global phase).
    const auto euler = dense::zyzDecompose(matrix_);
    return "u3(" + io::formatAngle(static_cast<double>(euler.theta)) + ", " +
           io::formatAngle(static_cast<double>(euler.phi)) + ", " +
           io::formatAngle(static_cast<double>(euler.lambda)) + ")";
  }

  std::string drawLabel() const override { return label_; }

  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<MatrixGate1<T>>(this->qubit(), matrix_.dagger(),
                                            label_ + "†");
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<MatrixGate1<T>>(*this);
  }

  static constexpr T unitaryTol() {
    return T(1e4) * std::numeric_limits<T>::epsilon();
  }

 private:
  dense::Matrix<T> matrix_;
  std::string label_;
};

/// Custom gate on an arbitrary ascending qubit list from a 2^k x 2^k
/// unitary (qubit list is MSB-first, matching the rest of the library).
template <typename T>
class MatrixGateN final : public QGate<T> {
 public:
  MatrixGateN(std::vector<int> qubits, dense::Matrix<T> matrix,
              std::string label = "U")
      : qubits_(std::move(qubits)),
        matrix_(std::move(matrix)),
        label_(std::move(label)) {
    util::require(!qubits_.empty(), "MatrixGateN needs at least one qubit");
    for (std::size_t i = 0; i < qubits_.size(); ++i) {
      util::require(qubits_[i] >= 0, "qubit indices must be nonnegative");
      if (i > 0) {
        util::require(qubits_[i] > qubits_[i - 1],
                      "MatrixGateN qubits must be strictly ascending");
      }
    }
    const std::size_t dim = std::size_t{1} << qubits_.size();
    util::require(matrix_.rows() == dim && matrix_.cols() == dim,
                  "MatrixGateN matrix dimension mismatch");
    util::require(matrix_.isUnitary(MatrixGate1<T>::unitaryTol()),
                  "MatrixGateN matrix is not unitary");
  }

  int nbQubits() const noexcept override {
    return static_cast<int>(qubits_.size());
  }
  std::vector<int> qubits() const override { return qubits_; }
  dense::Matrix<T> matrix() const override { return matrix_; }

  void shiftQubits(int delta) override {
    util::require(qubits_.front() + delta >= 0,
                  "qubit shift would go negative");
    for (int& q : qubits_) q += delta;
  }

  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<MatrixGateN<T>>(qubits_, matrix_.dagger(),
                                            label_ + "†");
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<MatrixGateN<T>>(*this);
  }

  void toQASM(std::ostream& stream, int offset = 0) const override {
    if (qubits_.size() == 1) {
      MatrixGate1<T>(qubits_[0], matrix_, label_).toQASM(stream, offset);
      return;
    }
    throw InvalidArgumentError(
        "MatrixGateN (k > 1) has no direct OpenQASM 2 representation; "
        "decompose the gate first");
  }

  void appendDrawItems(std::vector<io::DrawItem>& items,
                       int offset = 0) const override {
    io::DrawItem item;
    item.kind = io::DrawItem::Kind::kBox;
    item.label = label_;
    item.boxTop = qubits_.front() + offset;
    item.boxBottom = qubits_.back() + offset;
    items.push_back(std::move(item));
  }

 private:
  std::vector<int> qubits_;
  dense::Matrix<T> matrix_;
  std::string label_;
};

}  // namespace qclab::qgates

#pragma once

/// \file qgate.hpp
/// \brief Abstract base class for unitary gates plus the generic
/// controlled-matrix construction shared by all controlled gates.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "qclab/dense/matrix.hpp"
#include "qclab/qobject.hpp"
#include "qclab/util/bits.hpp"

namespace qclab::qgates {

/// Builds the matrix of a controlled operation over the ascending qubit list
/// `sortedQubits` (qubit sortedQubits[0] = most significant).  `controls`
/// lists the control qubits, `controlStates` the value (0/1) each control
/// must have, `targets` the target qubits in the ordering assumed by
/// `targetMatrix` (MSB-first).  Non-control non-target qubits inside the
/// list are not allowed.
template <typename T>
dense::Matrix<T> controlledMatrix(const std::vector<int>& sortedQubits,
                                  const std::vector<int>& controls,
                                  const std::vector<int>& controlStates,
                                  const std::vector<int>& targets,
                                  const dense::Matrix<T>& targetMatrix) {
  const int k = static_cast<int>(sortedQubits.size());
  util::require(controls.size() == controlStates.size(),
                "controls/controlStates length mismatch");
  util::require(controls.size() + targets.size() == sortedQubits.size(),
                "controls + targets must cover the qubit list");

  auto position = [&](int qubit) {
    const auto it =
        std::find(sortedQubits.begin(), sortedQubits.end(), qubit);
    util::require(it != sortedQubits.end(), "qubit not in gate qubit list");
    const int idx = static_cast<int>(it - sortedQubits.begin());
    return util::bitPosition(idx, k);  // bit position within the gate index
  };

  std::vector<int> controlPos(controls.size());
  for (std::size_t i = 0; i < controls.size(); ++i)
    controlPos[i] = position(controls[i]);
  std::vector<int> targetPos(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i)
    targetPos[i] = position(targets[i]);

  const std::size_t dim = std::size_t{1} << k;
  const int t = static_cast<int>(targets.size());
  util::require(targetMatrix.rows() == (std::size_t{1} << t) &&
                    targetMatrix.isSquare(),
                "target matrix dimension mismatch");

  dense::Matrix<T> m(dim, dim);
  for (util::index_t r = 0; r < dim; ++r) {
    bool active = true;
    for (std::size_t i = 0; i < controls.size(); ++i) {
      if (util::getBit(r, controlPos[i]) !=
          static_cast<util::index_t>(controlStates[i])) {
        active = false;
        break;
      }
    }
    if (!active) {
      m(r, r) = std::complex<T>(1);
      continue;
    }
    // Row index within the target subspace (MSB-first over targets).
    util::index_t rt = 0;
    for (int i = 0; i < t; ++i)
      rt = (rt << 1) | util::getBit(r, targetPos[i]);
    for (util::index_t ct = 0; ct < (util::index_t{1} << t); ++ct) {
      const auto value = targetMatrix(rt, ct);
      if (value == std::complex<T>(0)) continue;
      util::index_t c = r;
      for (int i = 0; i < t; ++i) {
        const util::index_t bit = util::getBit(ct, util::bitPosition(i, t));
        c = bit ? util::setBit(c, targetPos[i])
                : util::clearBit(c, targetPos[i]);
      }
      m(r, c) = value;
    }
  }
  return m;
}

/// Abstract unitary gate.
template <typename T>
class QGate : public QObject<T> {
 public:
  ObjectType objectType() const noexcept final { return ObjectType::kGate; }

  /// Unitary matrix of this gate over `qubits()` (ascending order, first
  /// qubit = most significant bit).
  virtual dense::Matrix<T> matrix() const = 0;

  /// Control qubits (empty for uncontrolled gates).
  virtual std::vector<int> controls() const { return {}; }

  /// Control state (0 or 1) per control qubit.
  virtual std::vector<int> controlStates() const { return {}; }

  /// Target qubits, in the qubit ordering of `targetMatrix()`.
  virtual std::vector<int> targets() const { return this->qubits(); }

  /// Matrix acting on the targets when all controls are satisfied.
  virtual dense::Matrix<T> targetMatrix() const { return matrix(); }

  /// True if `matrix()` is diagonal — enables fast simulation paths.
  virtual bool isDiagonal() const noexcept { return false; }

  /// The inverse gate (conjugate transpose).
  virtual std::unique_ptr<QGate<T>> inverse() const = 0;

  /// Clone with gate type preserved.
  virtual std::unique_ptr<QGate<T>> cloneGate() const = 0;

  std::unique_ptr<QObject<T>> clone() const final { return cloneGate(); }
};

/// Histogram key of a gate: its first diagram label, prefixed with "c"
/// when the drawn item carries controls.  Shared by QCircuit::gateCounts
/// and the observability layer so static circuit counts and dynamic
/// application counts agree key-for-key.
template <typename T>
std::string gateKindLabel(const QGate<T>& gate) {
  std::vector<io::DrawItem> items;
  gate.appendDrawItems(items, 0);
  std::string key = items.empty() ? "gate" : items[0].label;
  if (!items.empty() &&
      (!items[0].controls1.empty() || !items[0].controls0.empty())) {
    key = "c" + key;
  }
  return key;
}

}  // namespace qclab::qgates

#pragma once

/// \file phases.hpp
/// \brief Phase-type single-qubit gates: S, S†, T, T†, √X, √X†, and the
/// parameterized Phase gate diag(1, e^{iθ}).
///
/// Following QCLAB's numerical-stability convention, the Phase gate stores
/// (cos θ, sin θ) instead of θ itself (see qrotation.hpp for the rationale).

#include "qclab/qgates/qgate1.hpp"
#include "qclab/qgates/qrotation.hpp"

namespace qclab::qgates {

/// S gate: diag(1, i) (phase of 90 degrees).
template <typename T>
class SGate final : public QGate1<T> {
 public:
  using QGate1<T>::QGate1;
  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    return dense::Matrix<T>{{C(1), C(0)}, {C(0), C(0, 1)}};
  }
  bool isDiagonal() const noexcept override { return true; }
  std::string qasmName() const override { return "s"; }
  std::string drawLabel() const override { return "S"; }
  std::unique_ptr<QGate<T>> inverse() const override;
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<SGate<T>>(*this);
  }
};

/// S† gate: diag(1, -i).
template <typename T>
class SdgGate final : public QGate1<T> {
 public:
  using QGate1<T>::QGate1;
  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    return dense::Matrix<T>{{C(1), C(0)}, {C(0), C(0, -1)}};
  }
  bool isDiagonal() const noexcept override { return true; }
  std::string qasmName() const override { return "sdg"; }
  std::string drawLabel() const override { return "S†"; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<SGate<T>>(this->qubit());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<SdgGate<T>>(*this);
  }
};

template <typename T>
std::unique_ptr<QGate<T>> SGate<T>::inverse() const {
  return std::make_unique<SdgGate<T>>(this->qubit());
}

/// T gate: diag(1, e^{iπ/4}) (phase of 45 degrees).
template <typename T>
class TGate final : public QGate1<T> {
 public:
  using QGate1<T>::QGate1;
  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    const T invSqrt2 = T(1) / std::sqrt(T(2));
    return dense::Matrix<T>{{C(1), C(0)}, {C(0), C(invSqrt2, invSqrt2)}};
  }
  bool isDiagonal() const noexcept override { return true; }
  std::string qasmName() const override { return "t"; }
  std::string drawLabel() const override { return "T"; }
  std::unique_ptr<QGate<T>> inverse() const override;
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<TGate<T>>(*this);
  }
};

/// T† gate: diag(1, e^{-iπ/4}).
template <typename T>
class TdgGate final : public QGate1<T> {
 public:
  using QGate1<T>::QGate1;
  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    const T invSqrt2 = T(1) / std::sqrt(T(2));
    return dense::Matrix<T>{{C(1), C(0)}, {C(0), C(invSqrt2, -invSqrt2)}};
  }
  bool isDiagonal() const noexcept override { return true; }
  std::string qasmName() const override { return "tdg"; }
  std::string drawLabel() const override { return "T†"; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<TGate<T>>(this->qubit());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<TdgGate<T>>(*this);
  }
};

template <typename T>
std::unique_ptr<QGate<T>> TGate<T>::inverse() const {
  return std::make_unique<TdgGate<T>>(this->qubit());
}

/// √X gate.
template <typename T>
class SX final : public QGate1<T> {
 public:
  using QGate1<T>::QGate1;
  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    const C a(T(0.5), T(0.5));
    const C b(T(0.5), T(-0.5));
    return dense::Matrix<T>{{a, b}, {b, a}};
  }
  std::string qasmName() const override { return "sx"; }
  std::string drawLabel() const override { return "√X"; }
  std::unique_ptr<QGate<T>> inverse() const override;
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<SX<T>>(*this);
  }
};

/// √X† gate.
template <typename T>
class SXdg final : public QGate1<T> {
 public:
  using QGate1<T>::QGate1;
  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    const C a(T(0.5), T(-0.5));
    const C b(T(0.5), T(0.5));
    return dense::Matrix<T>{{a, b}, {b, a}};
  }
  std::string qasmName() const override { return "sxdg"; }
  std::string drawLabel() const override { return "√X†"; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<SX<T>>(this->qubit());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<SXdg<T>>(*this);
  }
};

template <typename T>
std::unique_ptr<QGate<T>> SX<T>::inverse() const {
  return std::make_unique<SXdg<T>>(this->qubit());
}

/// Parameterized phase gate diag(1, e^{iθ}).
template <typename T>
class Phase final : public QGate1<T> {
 public:
  /// Phase gate with angle θ on `qubit`.
  Phase(int qubit, T theta) : QGate1<T>(qubit), angle_(theta) {}

  /// Phase gate from (cos θ, sin θ) directly (numerically exact path).
  Phase(int qubit, T cosTheta, T sinTheta)
      : QGate1<T>(qubit), angle_(cosTheta, sinTheta) {}

  /// The rotation parameterization (cos θ, sin θ).
  const QAngle<T>& angle() const noexcept { return angle_; }

  /// Angle θ recovered from the stored (cos, sin).
  T theta() const noexcept { return angle_.theta(); }

  /// Updates the angle.
  void setTheta(T theta) noexcept { angle_ = QAngle<T>(theta); }

  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    return dense::Matrix<T>{{C(1), C(0)},
                            {C(0), C(angle_.cos(), angle_.sin())}};
  }
  bool isDiagonal() const noexcept override { return true; }
  std::string qasmName() const override {
    return "p(" + io::formatAngle(static_cast<double>(theta())) + ")";
  }
  std::string drawLabel() const override {
    return "P(" + io::formatAngleShort(static_cast<double>(theta())) + ")";
  }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<Phase<T>>(this->qubit(), angle_.cos(),
                                      -angle_.sin());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<Phase<T>>(*this);
  }

 private:
  QAngle<T> angle_;
};

}  // namespace qclab::qgates

#pragma once

/// \file controlled.hpp
/// \brief Controlled two-qubit gates: CX/CNOT, CY, CZ, CH, CPhase,
/// CRX/CRY/CRZ.  Controls may be on state |1> (default) or |0>, and control
/// and target need not be adjacent — the simulator and the matrix
/// construction handle arbitrary qubit pairs.

#include "qclab/qgates/paulis.hpp"
#include "qclab/qgates/phases.hpp"
#include "qclab/qgates/qgate.hpp"
#include "qclab/qgates/rotations.hpp"

namespace qclab::qgates {

/// Base class of all singly-controlled single-target gates.
template <typename T>
class QControlledGate2 : public QGate<T> {
 public:
  QControlledGate2(int control, int target, int controlState)
      : control_(control), target_(target), controlState_(controlState) {
    util::require(control >= 0 && target >= 0,
                  "qubit indices must be nonnegative");
    util::require(control != target, "control and target must differ");
    util::require(controlState == 0 || controlState == 1,
                  "control state must be 0 or 1");
  }

  int nbQubits() const noexcept final { return 2; }

  /// Control qubit.
  int control() const noexcept { return control_; }
  /// Target qubit.
  int target() const noexcept { return target_; }
  /// Control state: gate fires when the control is in |controlState>.
  int controlState() const noexcept { return controlState_; }

  std::vector<int> qubits() const final {
    return {std::min(control_, target_), std::max(control_, target_)};
  }

  void shiftQubits(int delta) final {
    util::require(control_ + delta >= 0 && target_ + delta >= 0,
                  "qubit shift would go negative");
    control_ += delta;
    target_ += delta;
  }

  /// The single-qubit gate applied to the target.
  virtual const QGate1<T>& gate1() const = 0;

  std::vector<int> controls() const final { return {control_}; }
  std::vector<int> controlStates() const final { return {controlState_}; }
  std::vector<int> targets() const final { return {target_}; }
  dense::Matrix<T> targetMatrix() const final { return gate1().matrix(); }

  dense::Matrix<T> matrix() const final {
    return controlledMatrix(qubits(), {control_}, {controlState_}, {target_},
                            gate1().matrix());
  }

  bool isDiagonal() const noexcept final { return gate1().isDiagonal(); }

  /// QASM mnemonic of the controlled gate, e.g. "cx", "cp(0.5)".
  virtual std::string qasmName() const = 0;

  void toQASM(std::ostream& stream, int offset = 0) const final {
    if (controlState_ == 0) {
      stream << "x q[" << (control_ + offset) << "];\n";
    }
    stream << qasmName() << " q[" << (control_ + offset) << "], q["
           << (target_ + offset) << "];\n";
    if (controlState_ == 0) {
      stream << "x q[" << (control_ + offset) << "];\n";
    }
  }

  void appendDrawItems(std::vector<io::DrawItem>& items,
                       int offset = 0) const final {
    io::DrawItem item;
    item.kind = io::DrawItem::Kind::kBox;
    item.label = gate1().drawLabel();
    item.boxTop = target_ + offset;
    item.boxBottom = target_ + offset;
    if (controlState_ == 1) {
      item.controls1 = {control_ + offset};
    } else {
      item.controls0 = {control_ + offset};
    }
    items.push_back(std::move(item));
  }

 private:
  int control_;
  int target_;
  int controlState_;
};

/// Controlled-X (CNOT) gate.
template <typename T>
class CX final : public QControlledGate2<T> {
 public:
  CX(int control, int target, int controlState = 1)
      : QControlledGate2<T>(control, target, controlState), gate_(target) {}
  const QGate1<T>& gate1() const override { return gate_; }
  std::string qasmName() const override { return "cx"; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<CX<T>>(this->control(), this->target(),
                                   this->controlState());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<CX<T>>(*this);
  }

 private:
  PauliX<T> gate_;
};

/// QCLAB-compatible alias.
template <typename T>
using CNOT = CX<T>;

/// Controlled-Y gate.
template <typename T>
class CY final : public QControlledGate2<T> {
 public:
  CY(int control, int target, int controlState = 1)
      : QControlledGate2<T>(control, target, controlState), gate_(target) {}
  const QGate1<T>& gate1() const override { return gate_; }
  std::string qasmName() const override { return "cy"; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<CY<T>>(this->control(), this->target(),
                                   this->controlState());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<CY<T>>(*this);
  }

 private:
  PauliY<T> gate_;
};

/// Controlled-Z gate.
template <typename T>
class CZ final : public QControlledGate2<T> {
 public:
  CZ(int control, int target, int controlState = 1)
      : QControlledGate2<T>(control, target, controlState), gate_(target) {}
  const QGate1<T>& gate1() const override { return gate_; }
  std::string qasmName() const override { return "cz"; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<CZ<T>>(this->control(), this->target(),
                                   this->controlState());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<CZ<T>>(*this);
  }

 private:
  PauliZ<T> gate_;
};

/// Controlled-Hadamard gate.
template <typename T>
class CH final : public QControlledGate2<T> {
 public:
  CH(int control, int target, int controlState = 1)
      : QControlledGate2<T>(control, target, controlState), gate_(target) {}
  const QGate1<T>& gate1() const override { return gate_; }
  std::string qasmName() const override { return "ch"; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<CH<T>>(this->control(), this->target(),
                                   this->controlState());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<CH<T>>(*this);
  }

 private:
  Hadamard<T> gate_;
};

/// Controlled phase gate diag(1, 1, 1, e^{iθ}) (for control state 1).
template <typename T>
class CPhase final : public QControlledGate2<T> {
 public:
  CPhase(int control, int target, T theta, int controlState = 1)
      : QControlledGate2<T>(control, target, controlState),
        gate_(target, theta) {}
  const QGate1<T>& gate1() const override { return gate_; }
  T theta() const noexcept { return gate_.theta(); }
  void setTheta(T theta) noexcept { gate_.setTheta(theta); }
  std::string qasmName() const override {
    return "cp(" + io::formatAngle(static_cast<double>(theta())) + ")";
  }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<CPhase<T>>(this->control(), this->target(),
                                       -theta(), this->controlState());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<CPhase<T>>(*this);
  }

 private:
  Phase<T> gate_;
};

/// Controlled X-rotation.
template <typename T>
class CRotationX final : public QControlledGate2<T> {
 public:
  CRotationX(int control, int target, T theta, int controlState = 1)
      : QControlledGate2<T>(control, target, controlState),
        gate_(target, theta) {}
  const QGate1<T>& gate1() const override { return gate_; }
  T theta() const noexcept { return gate_.theta(); }
  /// Updates the rotation angle in place (parameter rebinding surface).
  void setTheta(T theta) noexcept { gate_.setTheta(theta); }
  std::string qasmName() const override {
    return "crx(" + io::formatAngle(static_cast<double>(theta())) + ")";
  }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<CRotationX<T>>(this->control(), this->target(),
                                           -theta(), this->controlState());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<CRotationX<T>>(*this);
  }

 private:
  RotationX<T> gate_;
};

/// Controlled Y-rotation.
template <typename T>
class CRotationY final : public QControlledGate2<T> {
 public:
  CRotationY(int control, int target, T theta, int controlState = 1)
      : QControlledGate2<T>(control, target, controlState),
        gate_(target, theta) {}
  const QGate1<T>& gate1() const override { return gate_; }
  T theta() const noexcept { return gate_.theta(); }
  /// Updates the rotation angle in place (parameter rebinding surface).
  void setTheta(T theta) noexcept { gate_.setTheta(theta); }
  std::string qasmName() const override {
    return "cry(" + io::formatAngle(static_cast<double>(theta())) + ")";
  }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<CRotationY<T>>(this->control(), this->target(),
                                           -theta(), this->controlState());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<CRotationY<T>>(*this);
  }

 private:
  RotationY<T> gate_;
};

/// Controlled Z-rotation.
template <typename T>
class CRotationZ final : public QControlledGate2<T> {
 public:
  CRotationZ(int control, int target, T theta, int controlState = 1)
      : QControlledGate2<T>(control, target, controlState),
        gate_(target, theta) {}
  const QGate1<T>& gate1() const override { return gate_; }
  T theta() const noexcept { return gate_.theta(); }
  /// Updates the rotation angle in place (parameter rebinding surface).
  void setTheta(T theta) noexcept { gate_.setTheta(theta); }
  std::string qasmName() const override {
    return "crz(" + io::formatAngle(static_cast<double>(theta())) + ")";
  }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<CRotationZ<T>>(this->control(), this->target(),
                                           -theta(), this->controlState());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<CRotationZ<T>>(*this);
  }

 private:
  RotationZ<T> gate_;
};

}  // namespace qclab::qgates

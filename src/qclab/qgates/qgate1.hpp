#pragma once

/// \file qgate1.hpp
/// \brief Base class for single-qubit gates.

#include <ostream>
#include <string>

#include "qclab/io/format.hpp"
#include "qclab/qgates/qgate.hpp"
#include "qclab/util/errors.hpp"

namespace qclab::qgates {

/// A gate acting on exactly one qubit.
template <typename T>
class QGate1 : public QGate<T> {
 public:
  explicit QGate1(int qubit) : qubit_(qubit) {
    util::require(qubit >= 0, "qubit index must be nonnegative");
  }

  int nbQubits() const noexcept final { return 1; }

  /// The qubit this gate acts on.
  int qubit() const noexcept { return qubit_; }

  /// Moves the gate to another qubit.
  void setQubit(int qubit) {
    util::require(qubit >= 0, "qubit index must be nonnegative");
    qubit_ = qubit;
  }

  std::vector<int> qubits() const final { return {qubit_}; }

  void shiftQubits(int delta) final { setQubit(qubit_ + delta); }

  /// Lowercase OpenQASM mnemonic, e.g. "h", "rx(1.5707)".
  virtual std::string qasmName() const = 0;

  /// Diagram label, e.g. "H", "RX(1.57)".
  virtual std::string drawLabel() const = 0;

  void toQASM(std::ostream& stream, int offset = 0) const override {
    stream << qasmName() << " q[" << (qubit_ + offset) << "];\n";
  }

  void appendDrawItems(std::vector<io::DrawItem>& items,
                       int offset = 0) const override {
    io::DrawItem item;
    item.kind = io::DrawItem::Kind::kBox;
    item.label = drawLabel();
    item.boxTop = qubit_ + offset;
    item.boxBottom = qubit_ + offset;
    items.push_back(std::move(item));
  }

 private:
  int qubit_;
};

}  // namespace qclab::qgates

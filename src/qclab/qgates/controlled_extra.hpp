#pragma once

/// \file controlled_extra.hpp
/// \brief Additional controlled gates: Fredkin (controlled-SWAP) and the
/// generic controlled-U gate CU(theta, phi, lambda, gamma).

#include "qclab/dense/decompose.hpp"
#include "qclab/qgates/qgate.hpp"
#include "qclab/qgates/qrotation.hpp"
#include "qclab/qgates/rotations.hpp"
#include "qclab/qgates/two_qubit.hpp"

namespace qclab::qgates {

/// Fredkin gate: swaps the two targets when the control is satisfied.
template <typename T>
class Fredkin final : public QGate<T> {
 public:
  Fredkin(int control, int target0, int target1, int controlState = 1)
      : control_(control),
        target0_(std::min(target0, target1)),
        target1_(std::max(target0, target1)),
        controlState_(controlState) {
    util::require(control >= 0 && target0 >= 0 && target1 >= 0,
                  "qubit indices must be nonnegative");
    util::require(target0 != target1, "Fredkin targets must differ");
    util::require(control != target0 && control != target1,
                  "Fredkin control equals a target");
    util::require(controlState == 0 || controlState == 1,
                  "control state must be 0 or 1");
  }

  int control() const noexcept { return control_; }
  int target0() const noexcept { return target0_; }
  int target1() const noexcept { return target1_; }
  int controlState() const noexcept { return controlState_; }

  int nbQubits() const noexcept override { return 3; }

  std::vector<int> qubits() const override {
    std::vector<int> qs = {control_, target0_, target1_};
    std::sort(qs.begin(), qs.end());
    return qs;
  }

  std::vector<int> controls() const override { return {control_}; }
  std::vector<int> controlStates() const override { return {controlState_}; }
  std::vector<int> targets() const override { return {target0_, target1_}; }
  dense::Matrix<T> targetMatrix() const override {
    return SWAP<T>(0, 1).matrix();
  }

  dense::Matrix<T> matrix() const override {
    return controlledMatrix(qubits(), {control_}, {controlState_},
                            {target0_, target1_}, targetMatrix());
  }

  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<Fredkin<T>>(*this);  // self-inverse
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<Fredkin<T>>(*this);
  }

  void shiftQubits(int delta) override {
    util::require(control_ + delta >= 0 && target0_ + delta >= 0,
                  "qubit shift would go negative");
    control_ += delta;
    target0_ += delta;
    target1_ += delta;
  }

  void toQASM(std::ostream& stream, int offset = 0) const override {
    if (controlState_ == 0) stream << "x q[" << (control_ + offset) << "];\n";
    stream << "cswap q[" << (control_ + offset) << "], q["
           << (target0_ + offset) << "], q[" << (target1_ + offset) << "];\n";
    if (controlState_ == 0) stream << "x q[" << (control_ + offset) << "];\n";
  }

  void appendDrawItems(std::vector<io::DrawItem>& items,
                       int offset = 0) const override {
    io::DrawItem item;
    item.kind = io::DrawItem::Kind::kSwap;
    item.boxTop = target0_ + offset;
    item.boxBottom = target1_ + offset;
    item.swapQubits = {target0_ + offset, target1_ + offset};
    if (controlState_ == 1) {
      item.controls1 = {control_ + offset};
    } else {
      item.controls0 = {control_ + offset};
    }
    items.push_back(std::move(item));
  }

 private:
  int control_;
  int target0_;
  int target1_;
  int controlState_;
};

/// Generic controlled single-qubit unitary (qiskit-style CU): when the
/// control is satisfied, the target receives e^{i gamma} u3(theta, phi,
/// lambda).  With gamma the target action covers all of U(2), so any
/// controlled single-qubit gate can be expressed exactly (used by the
/// phase-estimation builder for controlled powers of U).
template <typename T>
class CU final : public QGate<T> {
 public:
  CU(int control, int target, T theta, T phi, T lambda, T gamma = T(0),
     int controlState = 1)
      : control_(control),
        target_(target),
        controlState_(controlState),
        rotation_(theta),
        phi_(phi),
        lambda_(lambda),
        gamma_(gamma) {
    util::require(control >= 0 && target >= 0,
                  "qubit indices must be nonnegative");
    util::require(control != target, "control and target must differ");
    util::require(controlState == 0 || controlState == 1,
                  "control state must be 0 or 1");
  }

  /// Builds the CU whose target action equals the 2x2 unitary `u` exactly
  /// (via the ZYZ decomposition, including the global phase).
  static CU fromMatrix(int control, int target, const dense::Matrix<T>& u,
                       int controlState = 1) {
    const auto euler = dense::zyzDecompose(u);
    return CU(control, target, euler.theta, euler.phi, euler.lambda,
              euler.alpha, controlState);
  }

  int control() const noexcept { return control_; }
  int target() const noexcept { return target_; }
  int controlState() const noexcept { return controlState_; }
  T theta() const noexcept { return rotation_.theta(); }
  T phi() const noexcept { return phi_.theta(); }
  T lambda() const noexcept { return lambda_.theta(); }
  T gamma() const noexcept { return gamma_.theta(); }

  int nbQubits() const noexcept override { return 2; }
  std::vector<int> qubits() const override {
    return {std::min(control_, target_), std::max(control_, target_)};
  }

  std::vector<int> controls() const override { return {control_}; }
  std::vector<int> controlStates() const override { return {controlState_}; }
  std::vector<int> targets() const override { return {target_}; }

  dense::Matrix<T> targetMatrix() const override {
    auto m = U3<T>(target_, rotation_, phi_, lambda_).matrix();
    return m * std::complex<T>(gamma_.cos(), gamma_.sin());
  }

  dense::Matrix<T> matrix() const override {
    return controlledMatrix(qubits(), {control_}, {controlState_}, {target_},
                            targetMatrix());
  }

  std::unique_ptr<QGate<T>> inverse() const override {
    // (e^{ig} u3(t, p, l))^H = e^{-ig} u3(-t, -l, -p).
    return std::make_unique<CU<T>>(control_, target_, -theta(), -lambda(),
                                   -phi(), -gamma(), controlState_);
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<CU<T>>(*this);
  }

  void shiftQubits(int delta) override {
    util::require(control_ + delta >= 0 && target_ + delta >= 0,
                  "qubit shift would go negative");
    control_ += delta;
    target_ += delta;
  }

  void toQASM(std::ostream& stream, int offset = 0) const override {
    // cu(theta, phi, lambda, gamma) == p(gamma) on the control (phase on
    // the whole control-active subspace) followed by cu3(theta, phi,
    // lambda).
    const int c = control_ + offset;
    const int t = target_ + offset;
    if (controlState_ == 0) stream << "x q[" << c << "];\n";
    if (gamma() != T(0)) {
      stream << "p(" << io::formatAngle(static_cast<double>(gamma()))
             << ") q[" << c << "];\n";
    }
    stream << "cu3(" << io::formatAngle(static_cast<double>(theta())) << ", "
           << io::formatAngle(static_cast<double>(phi())) << ", "
           << io::formatAngle(static_cast<double>(lambda())) << ") q[" << c
           << "], q[" << t << "];\n";
    if (controlState_ == 0) stream << "x q[" << c << "];\n";
  }

  void appendDrawItems(std::vector<io::DrawItem>& items,
                       int offset = 0) const override {
    io::DrawItem item;
    item.kind = io::DrawItem::Kind::kBox;
    item.label = "U";
    item.boxTop = target_ + offset;
    item.boxBottom = target_ + offset;
    if (controlState_ == 1) {
      item.controls1 = {control_ + offset};
    } else {
      item.controls0 = {control_ + offset};
    }
    items.push_back(std::move(item));
  }

 private:
  int control_;
  int target_;
  int controlState_;
  QRotation<T> rotation_;
  QAngle<T> phi_;
  QAngle<T> lambda_;
  QAngle<T> gamma_;
};

}  // namespace qclab::qgates

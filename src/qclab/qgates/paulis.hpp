#pragma once

/// \file paulis.hpp
/// \brief Fixed single-qubit gates: Identity, Pauli X/Y/Z, Hadamard.

#include "qclab/dense/ops.hpp"
#include "qclab/qgates/qgate1.hpp"

namespace qclab::qgates {

/// Identity gate (useful as an explicit placeholder).
template <typename T>
class Identity final : public QGate1<T> {
 public:
  using QGate1<T>::QGate1;
  dense::Matrix<T> matrix() const override { return dense::pauliI<T>(); }
  bool isDiagonal() const noexcept override { return true; }
  std::string qasmName() const override { return "id"; }
  std::string drawLabel() const override { return "I"; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<Identity<T>>(this->qubit());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<Identity<T>>(*this);
  }
};

/// Pauli-X (NOT) gate.
template <typename T>
class PauliX final : public QGate1<T> {
 public:
  using QGate1<T>::QGate1;
  dense::Matrix<T> matrix() const override { return dense::pauliX<T>(); }
  std::string qasmName() const override { return "x"; }
  std::string drawLabel() const override { return "X"; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<PauliX<T>>(this->qubit());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<PauliX<T>>(*this);
  }
};

/// Pauli-Y gate.
template <typename T>
class PauliY final : public QGate1<T> {
 public:
  using QGate1<T>::QGate1;
  dense::Matrix<T> matrix() const override { return dense::pauliY<T>(); }
  std::string qasmName() const override { return "y"; }
  std::string drawLabel() const override { return "Y"; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<PauliY<T>>(this->qubit());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<PauliY<T>>(*this);
  }
};

/// Pauli-Z gate.
template <typename T>
class PauliZ final : public QGate1<T> {
 public:
  using QGate1<T>::QGate1;
  dense::Matrix<T> matrix() const override { return dense::pauliZ<T>(); }
  bool isDiagonal() const noexcept override { return true; }
  std::string qasmName() const override { return "z"; }
  std::string drawLabel() const override { return "Z"; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<PauliZ<T>>(this->qubit());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<PauliZ<T>>(*this);
  }
};

/// Hadamard gate.
template <typename T>
class Hadamard final : public QGate1<T> {
 public:
  using QGate1<T>::QGate1;
  dense::Matrix<T> matrix() const override {
    const T h = T(1) / std::sqrt(T(2));
    return dense::Matrix<T>{{h, h}, {h, -h}};
  }
  std::string qasmName() const override { return "h"; }
  std::string drawLabel() const override { return "H"; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<Hadamard<T>>(this->qubit());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<Hadamard<T>>(*this);
  }
};

}  // namespace qclab::qgates

#pragma once

/// \file two_qubit.hpp
/// \brief Non-controlled two-qubit gates: SWAP, iSWAP, and the two-qubit
/// rotations RXX, RYY, RZZ (used e.g. by time-evolution circuits such as the
/// F3C compiler built on QCLAB).

#include "qclab/qgates/qgate2.hpp"
#include "qclab/qgates/qrotation.hpp"

namespace qclab::qgates {

/// SWAP gate.
template <typename T>
class SWAP final : public QGate2<T> {
 public:
  using QGate2<T>::QGate2;
  dense::Matrix<T> matrix() const override {
    return dense::Matrix<T>{{1, 0, 0, 0},
                            {0, 0, 1, 0},
                            {0, 1, 0, 0},
                            {0, 0, 0, 1}};
  }
  std::string qasmName() const override { return "swap"; }
  std::string drawLabel() const override { return "SWAP"; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<SWAP<T>>(this->qubit0(), this->qubit1());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<SWAP<T>>(*this);
  }
  void appendDrawItems(std::vector<io::DrawItem>& items,
                       int offset = 0) const override {
    io::DrawItem item;
    item.kind = io::DrawItem::Kind::kSwap;
    item.boxTop = this->qubit0() + offset;
    item.boxBottom = this->qubit1() + offset;
    item.swapQubits = {this->qubit0() + offset, this->qubit1() + offset};
    items.push_back(std::move(item));
  }
};

/// iSWAP gate.
template <typename T>
class iSWAP final : public QGate2<T> {
 public:
  using QGate2<T>::QGate2;
  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    return dense::Matrix<T>{{C(1), C(0), C(0), C(0)},
                            {C(0), C(0), C(0, 1), C(0)},
                            {C(0), C(0, 1), C(0), C(0)},
                            {C(0), C(0), C(0), C(1)}};
  }
  std::string qasmName() const override { return "iswap"; }
  std::string drawLabel() const override { return "iSWAP"; }
  std::unique_ptr<QGate<T>> inverse() const override;
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<iSWAP<T>>(*this);
  }
};

/// iSWAP† gate (inverse of iSWAP).
template <typename T>
class iSWAPdg final : public QGate2<T> {
 public:
  using QGate2<T>::QGate2;
  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    return dense::Matrix<T>{{C(1), C(0), C(0), C(0)},
                            {C(0), C(0), C(0, -1), C(0)},
                            {C(0), C(0, -1), C(0), C(0)},
                            {C(0), C(0), C(0), C(1)}};
  }
  std::string qasmName() const override { return "iswapdg"; }
  std::string drawLabel() const override { return "iSWAP†"; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<iSWAP<T>>(this->qubit0(), this->qubit1());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<iSWAPdg<T>>(*this);
  }
};

template <typename T>
std::unique_ptr<QGate<T>> iSWAP<T>::inverse() const {
  return std::make_unique<iSWAPdg<T>>(this->qubit0(), this->qubit1());
}

/// Base for the two-qubit axis rotations.
template <typename T>
class RotationGate2 : public QGate2<T> {
 public:
  RotationGate2(int qubit0, int qubit1, T theta)
      : QGate2<T>(qubit0, qubit1), rotation_(theta) {}
  RotationGate2(int qubit0, int qubit1, const QRotation<T>& rotation)
      : QGate2<T>(qubit0, qubit1), rotation_(rotation) {}

  const QRotation<T>& rotation() const noexcept { return rotation_; }
  T theta() const noexcept { return rotation_.theta(); }
  void setTheta(T theta) noexcept { rotation_ = QRotation<T>(theta); }
  void fuse(const QRotation<T>& other) noexcept {
    rotation_ = rotation_ * other;
  }

 protected:
  QRotation<T> rotation_;
};

/// Two-qubit rotation exp(-i θ/2 X⊗X).
template <typename T>
class RotationXX final : public RotationGate2<T> {
 public:
  using RotationGate2<T>::RotationGate2;
  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    const C c(this->rotation_.cos());
    const C ms(0, -this->rotation_.sin());
    return dense::Matrix<T>{{c, C(0), C(0), ms},
                            {C(0), c, ms, C(0)},
                            {C(0), ms, c, C(0)},
                            {ms, C(0), C(0), c}};
  }
  std::string qasmName() const override {
    return "rxx(" + io::formatAngle(static_cast<double>(this->theta())) + ")";
  }
  std::string drawLabel() const override {
    return "RXX(" + io::formatAngleShort(static_cast<double>(this->theta())) +
           ")";
  }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<RotationXX<T>>(this->qubit0(), this->qubit1(),
                                           this->rotation_.inverse());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<RotationXX<T>>(*this);
  }
};

/// Two-qubit rotation exp(-i θ/2 Y⊗Y).
template <typename T>
class RotationYY final : public RotationGate2<T> {
 public:
  using RotationGate2<T>::RotationGate2;
  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    const C c(this->rotation_.cos());
    const C is(0, this->rotation_.sin());
    return dense::Matrix<T>{{c, C(0), C(0), is},
                            {C(0), c, -is, C(0)},
                            {C(0), -is, c, C(0)},
                            {is, C(0), C(0), c}};
  }
  std::string qasmName() const override {
    return "ryy(" + io::formatAngle(static_cast<double>(this->theta())) + ")";
  }
  std::string drawLabel() const override {
    return "RYY(" + io::formatAngleShort(static_cast<double>(this->theta())) +
           ")";
  }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<RotationYY<T>>(this->qubit0(), this->qubit1(),
                                           this->rotation_.inverse());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<RotationYY<T>>(*this);
  }
};

/// Two-qubit rotation exp(-i θ/2 Z⊗Z) (diagonal).
template <typename T>
class RotationZZ final : public RotationGate2<T> {
 public:
  using RotationGate2<T>::RotationGate2;
  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    const C eMinus(this->rotation_.cos(), -this->rotation_.sin());
    const C ePlus(this->rotation_.cos(), this->rotation_.sin());
    dense::Matrix<T> m(4, 4);
    m(0, 0) = eMinus;
    m(1, 1) = ePlus;
    m(2, 2) = ePlus;
    m(3, 3) = eMinus;
    return m;
  }
  bool isDiagonal() const noexcept override { return true; }
  std::string qasmName() const override {
    return "rzz(" + io::formatAngle(static_cast<double>(this->theta())) + ")";
  }
  std::string drawLabel() const override {
    return "RZZ(" + io::formatAngleShort(static_cast<double>(this->theta())) +
           ")";
  }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<RotationZZ<T>>(this->qubit0(), this->qubit1(),
                                           this->rotation_.inverse());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<RotationZZ<T>>(*this);
  }
};

}  // namespace qclab::qgates

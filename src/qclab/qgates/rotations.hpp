#pragma once

/// \file rotations.hpp
/// \brief Parameterized single-qubit rotation gates RX, RY, RZ and the
/// generic U2/U3 gates.  All rotations store (cos θ/2, sin θ/2) via
/// QRotation for numerical stability.

#include "qclab/qgates/qgate1.hpp"
#include "qclab/qgates/qrotation.hpp"

namespace qclab::qgates {

/// Common behaviour of the axis rotation gates.
template <typename T>
class RotationGate1 : public QGate1<T> {
 public:
  RotationGate1(int qubit, T theta) : QGate1<T>(qubit), rotation_(theta) {}
  RotationGate1(int qubit, const QRotation<T>& rotation)
      : QGate1<T>(qubit), rotation_(rotation) {}

  /// The stored rotation (half-angle representation).
  const QRotation<T>& rotation() const noexcept { return rotation_; }

  /// Rotation angle θ.
  T theta() const noexcept { return rotation_.theta(); }

  /// Replaces the rotation angle.
  void setTheta(T theta) noexcept { rotation_ = QRotation<T>(theta); }

  /// Fuses another rotation of the same axis into this gate: θ += other.
  void fuse(const QRotation<T>& other) noexcept {
    rotation_ = rotation_ * other;
  }

 protected:
  QRotation<T> rotation_;
};

/// Rotation about the X axis.
template <typename T>
class RotationX final : public RotationGate1<T> {
 public:
  using RotationGate1<T>::RotationGate1;
  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    const T c = this->rotation_.cos();
    const T s = this->rotation_.sin();
    return dense::Matrix<T>{{C(c), C(0, -s)}, {C(0, -s), C(c)}};
  }
  std::string qasmName() const override {
    return "rx(" + io::formatAngle(static_cast<double>(this->theta())) + ")";
  }
  std::string drawLabel() const override {
    return "RX(" + io::formatAngleShort(static_cast<double>(this->theta())) +
           ")";
  }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<RotationX<T>>(this->qubit(),
                                          this->rotation_.inverse());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<RotationX<T>>(*this);
  }
};

/// Rotation about the Y axis.
template <typename T>
class RotationY final : public RotationGate1<T> {
 public:
  using RotationGate1<T>::RotationGate1;
  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    const T c = this->rotation_.cos();
    const T s = this->rotation_.sin();
    return dense::Matrix<T>{{C(c), C(-s)}, {C(s), C(c)}};
  }
  std::string qasmName() const override {
    return "ry(" + io::formatAngle(static_cast<double>(this->theta())) + ")";
  }
  std::string drawLabel() const override {
    return "RY(" + io::formatAngleShort(static_cast<double>(this->theta())) +
           ")";
  }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<RotationY<T>>(this->qubit(),
                                          this->rotation_.inverse());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<RotationY<T>>(*this);
  }
};

/// Rotation about the Z axis (diagonal).
template <typename T>
class RotationZ final : public RotationGate1<T> {
 public:
  using RotationGate1<T>::RotationGate1;
  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    const T c = this->rotation_.cos();
    const T s = this->rotation_.sin();
    return dense::Matrix<T>{{C(c, -s), C(0)}, {C(0), C(c, s)}};
  }
  bool isDiagonal() const noexcept override { return true; }
  std::string qasmName() const override {
    return "rz(" + io::formatAngle(static_cast<double>(this->theta())) + ")";
  }
  std::string drawLabel() const override {
    return "RZ(" + io::formatAngleShort(static_cast<double>(this->theta())) +
           ")";
  }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<RotationZ<T>>(this->qubit(),
                                          this->rotation_.inverse());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<RotationZ<T>>(*this);
  }
};

/// U2(φ, λ) gate (OpenQASM u2).
template <typename T>
class U2 final : public QGate1<T> {
 public:
  U2(int qubit, T phi, T lambda)
      : QGate1<T>(qubit), phi_(phi), lambda_(lambda) {}

  T phi() const noexcept { return phi_.theta(); }
  T lambda() const noexcept { return lambda_.theta(); }

  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    const T invSqrt2 = T(1) / std::sqrt(T(2));
    const C ePhi(phi_.cos(), phi_.sin());
    const C eLambda(lambda_.cos(), lambda_.sin());
    return dense::Matrix<T>{{C(invSqrt2), -eLambda * invSqrt2},
                            {ePhi * invSqrt2, ePhi * eLambda * invSqrt2}};
  }
  std::string qasmName() const override {
    return "u2(" + io::formatAngle(static_cast<double>(phi())) + ", " +
           io::formatAngle(static_cast<double>(lambda())) + ")";
  }
  std::string drawLabel() const override { return "U2"; }
  std::unique_ptr<QGate<T>> inverse() const override;
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<U2<T>>(*this);
  }

 private:
  QAngle<T> phi_;
  QAngle<T> lambda_;
};

/// U3(θ, φ, λ) gate (OpenQASM u3), the generic single-qubit unitary up to
/// global phase.
template <typename T>
class U3 final : public QGate1<T> {
 public:
  U3(int qubit, T theta, T phi, T lambda)
      : QGate1<T>(qubit), rotation_(theta), phi_(phi), lambda_(lambda) {}

  U3(int qubit, const QRotation<T>& rotation, const QAngle<T>& phi,
     const QAngle<T>& lambda)
      : QGate1<T>(qubit), rotation_(rotation), phi_(phi), lambda_(lambda) {}

  T theta() const noexcept { return rotation_.theta(); }
  T phi() const noexcept { return phi_.theta(); }
  T lambda() const noexcept { return lambda_.theta(); }

  dense::Matrix<T> matrix() const override {
    using C = std::complex<T>;
    const T c = rotation_.cos();
    const T s = rotation_.sin();
    const C ePhi(phi_.cos(), phi_.sin());
    const C eLambda(lambda_.cos(), lambda_.sin());
    return dense::Matrix<T>{{C(c), -eLambda * s},
                            {ePhi * s, ePhi * eLambda * c}};
  }
  std::string qasmName() const override {
    return "u3(" + io::formatAngle(static_cast<double>(theta())) + ", " +
           io::formatAngle(static_cast<double>(phi())) + ", " +
           io::formatAngle(static_cast<double>(lambda())) + ")";
  }
  std::string drawLabel() const override { return "U3"; }
  std::unique_ptr<QGate<T>> inverse() const override {
    // (U3(θ, φ, λ))† = U3(-θ, -λ, -φ).
    return std::make_unique<U3<T>>(this->qubit(), rotation_.inverse(),
                                   -lambda_, -phi_);
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<U3<T>>(*this);
  }

 private:
  QRotation<T> rotation_;
  QAngle<T> phi_;
  QAngle<T> lambda_;
};

template <typename T>
std::unique_ptr<QGate<T>> U2<T>::inverse() const {
  // U2(φ, λ) = U3(π/2, φ, λ); its inverse is U3(-π/2, -λ, -φ).
  return std::make_unique<U3<T>>(this->qubit(), -static_cast<T>(M_PI_2),
                                 -lambda(), -phi());
}

}  // namespace qclab::qgates

#pragma once

/// \file qgates.hpp
/// \brief Umbrella header for the full gate set.

#include "qclab/qgates/controlled.hpp"
#include "qclab/qgates/controlled_extra.hpp"
#include "qclab/qgates/matrix_gates.hpp"
#include "qclab/qgates/multi_controlled.hpp"
#include "qclab/qgates/paulis.hpp"
#include "qclab/qgates/phases.hpp"
#include "qclab/qgates/qgate.hpp"
#include "qclab/qgates/qgate1.hpp"
#include "qclab/qgates/qgate2.hpp"
#include "qclab/qgates/qrotation.hpp"
#include "qclab/qgates/rotations.hpp"
#include "qclab/qgates/two_qubit.hpp"

#pragma once

/// \file multi_controlled.hpp
/// \brief Multi-controlled gates MCX, MCY, MCZ with per-control control
/// states, as used by the quantum error correction example (paper §5.4):
///   qec.push_back(qclab.qgates.MCX([3,4], 2, [0,1]))

#include <algorithm>
#include <set>

#include "qclab/qgates/paulis.hpp"
#include "qclab/qgates/qgate.hpp"

namespace qclab::qgates {

/// Base class of multi-controlled single-target gates.
template <typename T>
class MCGate : public QGate<T> {
 public:
  MCGate(std::vector<int> controls, int target,
         std::vector<int> controlStates)
      : controls_(std::move(controls)),
        target_(target),
        controlStates_(std::move(controlStates)) {
    util::require(!controls_.empty(), "MC gate needs at least one control");
    util::require(controls_.size() == controlStates_.size(),
                  "controls/controlStates length mismatch");
    std::set<int> seen;
    for (int c : controls_) {
      util::require(c >= 0, "qubit indices must be nonnegative");
      util::require(c != target_, "control equals target");
      util::require(seen.insert(c).second, "duplicate control qubit");
    }
    util::require(target_ >= 0, "qubit indices must be nonnegative");
    for (int s : controlStates_) {
      util::require(s == 0 || s == 1, "control state must be 0 or 1");
    }
  }

  /// All controls with `controlStates` fire the target gate when matched.
  const std::vector<int>& controlQubits() const noexcept { return controls_; }
  int target() const noexcept { return target_; }
  const std::vector<int>& states() const noexcept { return controlStates_; }

  int nbQubits() const noexcept final {
    return static_cast<int>(controls_.size()) + 1;
  }

  std::vector<int> qubits() const final {
    std::vector<int> qs = controls_;
    qs.push_back(target_);
    std::sort(qs.begin(), qs.end());
    return qs;
  }

  void shiftQubits(int delta) final {
    util::require(target_ + delta >= 0, "qubit shift would go negative");
    for (int c : controls_) {
      util::require(c + delta >= 0, "qubit shift would go negative");
    }
    for (int& c : controls_) c += delta;
    target_ += delta;
  }

  /// The single-qubit gate applied to the target.
  virtual const QGate1<T>& gate1() const = 0;

  std::vector<int> controls() const final { return controls_; }
  std::vector<int> controlStates() const final { return controlStates_; }
  std::vector<int> targets() const final { return {target_}; }
  dense::Matrix<T> targetMatrix() const final { return gate1().matrix(); }

  dense::Matrix<T> matrix() const final {
    return controlledMatrix(qubits(), controls_, controlStates_, {target_},
                            gate1().matrix());
  }

  bool isDiagonal() const noexcept final { return gate1().isDiagonal(); }

  void toQASM(std::ostream& stream, int offset = 0) const final {
    // Flip 0-controls so the emitted gate is the all-ones-controlled one.
    for (std::size_t i = 0; i < controls_.size(); ++i) {
      if (controlStates_[i] == 0)
        stream << "x q[" << (controls_[i] + offset) << "];\n";
    }
    emitControlledBody(stream, offset);
    for (std::size_t i = 0; i < controls_.size(); ++i) {
      if (controlStates_[i] == 0)
        stream << "x q[" << (controls_[i] + offset) << "];\n";
    }
  }

  void appendDrawItems(std::vector<io::DrawItem>& items,
                       int offset = 0) const final {
    io::DrawItem item;
    item.kind = io::DrawItem::Kind::kBox;
    item.label = gate1().drawLabel();
    item.boxTop = target_ + offset;
    item.boxBottom = target_ + offset;
    for (std::size_t i = 0; i < controls_.size(); ++i) {
      if (controlStates_[i] == 1) {
        item.controls1.push_back(controls_[i] + offset);
      } else {
        item.controls0.push_back(controls_[i] + offset);
      }
    }
    items.push_back(std::move(item));
  }

 protected:
  /// Emits the all-ones-controlled gate statement(s).
  virtual void emitControlledBody(std::ostream& stream, int offset) const = 0;

  /// Emits "name c0, c1, ..., target" for the given mnemonic.
  void emitGateLine(std::ostream& stream, const std::string& name,
                    int offset) const {
    stream << name;
    const char* separator = " ";
    for (int c : controls_) {
      stream << separator << "q[" << (c + offset) << "]";
      separator = ", ";
    }
    stream << ", q[" << (target_ + offset) << "];\n";
  }

 private:
  std::vector<int> controls_;
  int target_;
  std::vector<int> controlStates_;
};

/// Multi-controlled X gate (Toffoli for two controls).
template <typename T>
class MCX final : public MCGate<T> {
 public:
  MCX(std::vector<int> controls, int target, std::vector<int> controlStates)
      : MCGate<T>(std::move(controls), target, std::move(controlStates)),
        gate_(target) {}

  /// All controls on state |1>.
  MCX(std::vector<int> controls, int target)
      : MCX(controls, target, std::vector<int>(controls.size(), 1)) {}

  const QGate1<T>& gate1() const override { return gate_; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<MCX<T>>(this->controlQubits(), this->target(),
                                    this->states());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<MCX<T>>(*this);
  }

 protected:
  void emitControlledBody(std::ostream& stream, int offset) const override {
    static const char* kNames[] = {"cx", "ccx", "c3x", "c4x"};
    const std::size_t n = this->controlQubits().size();
    util::require(n <= 4,
                  "MCX with more than 4 controls has no OpenQASM 2 mnemonic; "
                  "decompose the gate first");
    this->emitGateLine(stream, kNames[n - 1], offset);
  }

 private:
  PauliX<T> gate_;
};

/// Toffoli (CCX) convenience gate.
template <typename T>
class Toffoli final : public MCGate<T> {
 public:
  Toffoli(int control0, int control1, int target)
      : MCGate<T>({control0, control1}, target, {1, 1}), gate_(target) {}
  const QGate1<T>& gate1() const override { return gate_; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<Toffoli<T>>(*this);
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<Toffoli<T>>(*this);
  }

 protected:
  void emitControlledBody(std::ostream& stream, int offset) const override {
    this->emitGateLine(stream, "ccx", offset);
  }

 private:
  PauliX<T> gate_;
};

/// Multi-controlled Y gate.
template <typename T>
class MCY final : public MCGate<T> {
 public:
  MCY(std::vector<int> controls, int target, std::vector<int> controlStates)
      : MCGate<T>(std::move(controls), target, std::move(controlStates)),
        gate_(target) {}
  MCY(std::vector<int> controls, int target)
      : MCY(controls, target, std::vector<int>(controls.size(), 1)) {}

  const QGate1<T>& gate1() const override { return gate_; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<MCY<T>>(this->controlQubits(), this->target(),
                                    this->states());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<MCY<T>>(*this);
  }

 protected:
  void emitControlledBody(std::ostream& stream, int offset) const override {
    if (this->controlQubits().size() == 1) {
      this->emitGateLine(stream, "cy", offset);
      return;
    }
    // Y = S X S^H, so an MC-Y is S(t) . MCX . Sdg(t).
    stream << "sdg q[" << (this->target() + offset) << "];\n";
    static const char* kNames[] = {"cx", "ccx", "c3x", "c4x"};
    const std::size_t n = this->controlQubits().size();
    util::require(n <= 4,
                  "MCY with more than 4 controls has no OpenQASM 2 mnemonic; "
                  "decompose the gate first");
    this->emitGateLine(stream, kNames[n - 1], offset);
    stream << "s q[" << (this->target() + offset) << "];\n";
  }

 private:
  PauliY<T> gate_;
};

/// Multi-controlled Z gate.
template <typename T>
class MCZ final : public MCGate<T> {
 public:
  MCZ(std::vector<int> controls, int target, std::vector<int> controlStates)
      : MCGate<T>(std::move(controls), target, std::move(controlStates)),
        gate_(target) {}
  MCZ(std::vector<int> controls, int target)
      : MCZ(controls, target, std::vector<int>(controls.size(), 1)) {}

  const QGate1<T>& gate1() const override { return gate_; }
  std::unique_ptr<QGate<T>> inverse() const override {
    return std::make_unique<MCZ<T>>(this->controlQubits(), this->target(),
                                    this->states());
  }
  std::unique_ptr<QGate<T>> cloneGate() const override {
    return std::make_unique<MCZ<T>>(*this);
  }

 protected:
  void emitControlledBody(std::ostream& stream, int offset) const override {
    if (this->controlQubits().size() == 1) {
      this->emitGateLine(stream, "cz", offset);
      return;
    }
    // Z = H X H, so an MC-Z is H(t) . MCX . H(t).
    stream << "h q[" << (this->target() + offset) << "];\n";
    static const char* kNames[] = {"cx", "ccx", "c3x", "c4x"};
    const std::size_t n = this->controlQubits().size();
    util::require(n <= 4,
                  "MCZ with more than 4 controls has no OpenQASM 2 mnemonic; "
                  "decompose the gate first");
    this->emitGateLine(stream, kNames[n - 1], offset);
    stream << "h q[" << (this->target() + offset) << "];\n";
  }

 private:
  PauliZ<T> gate_;
};

}  // namespace qclab::qgates

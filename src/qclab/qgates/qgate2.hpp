#pragma once

/// \file qgate2.hpp
/// \brief Base class for two-qubit gates acting symmetrically on an ordered
/// qubit pair (SWAP, iSWAP, RXX/RYY/RZZ).  Controlled two-qubit gates live
/// in controlled.hpp.

#include <ostream>
#include <string>

#include "qclab/io/format.hpp"
#include "qclab/qgates/qgate.hpp"
#include "qclab/util/errors.hpp"

namespace qclab::qgates {

/// A gate acting on exactly two (distinct) qubits.
template <typename T>
class QGate2 : public QGate<T> {
 public:
  QGate2(int qubit0, int qubit1) { setQubits(qubit0, qubit1); }

  int nbQubits() const noexcept final { return 2; }

  /// The two qubits in ascending order.
  std::vector<int> qubits() const final { return {qubit0_, qubit1_}; }

  /// Smaller qubit index.
  int qubit0() const noexcept { return qubit0_; }
  /// Larger qubit index.
  int qubit1() const noexcept { return qubit1_; }

  /// Moves the gate to another qubit pair.
  void setQubits(int qubit0, int qubit1) {
    util::require(qubit0 >= 0 && qubit1 >= 0,
                  "qubit indices must be nonnegative");
    util::require(qubit0 != qubit1, "two-qubit gate needs distinct qubits");
    qubit0_ = std::min(qubit0, qubit1);
    qubit1_ = std::max(qubit0, qubit1);
  }

  void shiftQubits(int delta) final {
    setQubits(qubit0_ + delta, qubit1_ + delta);
  }

  /// Lowercase OpenQASM mnemonic.
  virtual std::string qasmName() const = 0;

  /// Diagram label.
  virtual std::string drawLabel() const = 0;

  void toQASM(std::ostream& stream, int offset = 0) const override {
    stream << qasmName() << " q[" << (qubit0_ + offset) << "], q["
           << (qubit1_ + offset) << "];\n";
  }

  void appendDrawItems(std::vector<io::DrawItem>& items,
                       int offset = 0) const override {
    io::DrawItem item;
    item.kind = io::DrawItem::Kind::kBox;
    item.label = drawLabel();
    item.boxTop = qubit0_ + offset;
    item.boxBottom = qubit1_ + offset;
    items.push_back(std::move(item));
  }

 private:
  int qubit0_;
  int qubit1_;
};

}  // namespace qclab::qgates

#pragma once

/// \file qrotation.hpp
/// \brief Numerically stable angle and rotation representations.
///
/// QCLAB's stated emphasis is numerical stability: rotation gates store the
/// pair (cos, sin) rather than the angle itself.  Composing rotations then
/// uses the angle-sum identities
///     cos(a+b) = cos a cos b - sin a sin b
///     sin(a+b) = sin a cos b + cos a sin b
/// which avoids the cancellation incurred by converting to angles and back,
/// and keeps gate matrices exactly unitary up to rounding in two products.
/// QAngle stores a full angle θ; QRotation stores the half angle θ/2 used by
/// the rotation gates RX/RY/RZ (matrices depend only on θ/2).

#include <cmath>
#include <limits>

#include "qclab/util/errors.hpp"

namespace qclab::qgates {

/// An angle θ represented by the pair (cos θ, sin θ).
template <typename T>
class QAngle {
 public:
  /// Zero angle.
  QAngle() noexcept : cos_(1), sin_(0) {}

  /// Angle θ.
  explicit QAngle(T theta) noexcept : cos_(std::cos(theta)), sin_(std::sin(theta)) {}

  /// Angle from (cos, sin) directly; the pair must be normalized.
  QAngle(T cosTheta, T sinTheta) : cos_(cosTheta), sin_(sinTheta) {
    const T norm = cosTheta * cosTheta + sinTheta * sinTheta;
    util::require(std::abs(norm - T(1)) < T(100) * kEps,
                  "(cos, sin) pair is not normalized");
  }

  T cos() const noexcept { return cos_; }
  T sin() const noexcept { return sin_; }

  /// Recovers θ in (-π, π].
  T theta() const noexcept { return std::atan2(sin_, cos_); }

  /// Sum of two angles via the angle-sum identities (no atan2 round trip).
  QAngle operator+(const QAngle& other) const noexcept {
    QAngle result;
    result.cos_ = cos_ * other.cos_ - sin_ * other.sin_;
    result.sin_ = sin_ * other.cos_ + cos_ * other.sin_;
    return result;
  }

  /// Difference of two angles.
  QAngle operator-(const QAngle& other) const noexcept {
    QAngle result;
    result.cos_ = cos_ * other.cos_ + sin_ * other.sin_;
    result.sin_ = sin_ * other.cos_ - cos_ * other.sin_;
    return result;
  }

  /// Negated angle.
  QAngle operator-() const noexcept {
    QAngle result;
    result.cos_ = cos_;
    result.sin_ = -sin_;
    return result;
  }

  QAngle& operator+=(const QAngle& other) noexcept { return *this = *this + other; }
  QAngle& operator-=(const QAngle& other) noexcept { return *this = *this - other; }

  /// Renormalizes the (cos, sin) pair after long fusion chains.
  void normalize() noexcept {
    const T norm = std::sqrt(cos_ * cos_ + sin_ * sin_);
    if (norm > T(0)) {
      cos_ /= norm;
      sin_ /= norm;
    }
  }

  bool approxEqual(const QAngle& other, T tol) const noexcept {
    return std::abs(cos_ - other.cos_) <= tol &&
           std::abs(sin_ - other.sin_) <= tol;
  }

 private:
  static constexpr T kEps = std::numeric_limits<T>::epsilon();
  T cos_;
  T sin_;
};

/// A rotation by θ represented through its half angle: stores
/// (cos θ/2, sin θ/2), which is what the RX/RY/RZ matrices consume.
template <typename T>
class QRotation {
 public:
  /// Zero rotation.
  QRotation() noexcept = default;

  /// Rotation by θ.
  explicit QRotation(T theta) noexcept : half_(theta / T(2)) {}

  /// Rotation from (cos θ/2, sin θ/2) directly.
  QRotation(T cosHalf, T sinHalf) : half_(cosHalf, sinHalf) {}

  /// cos(θ/2).
  T cos() const noexcept { return half_.cos(); }
  /// sin(θ/2).
  T sin() const noexcept { return half_.sin(); }
  /// θ in (-2π, 2π].
  T theta() const noexcept { return T(2) * half_.theta(); }

  /// The underlying half angle.
  const QAngle<T>& halfAngle() const noexcept { return half_; }

  /// Composition: rotation by θ1 + θ2 (stable fusion, no angle round trip).
  QRotation operator*(const QRotation& other) const noexcept {
    QRotation result;
    result.half_ = half_ + other.half_;
    return result;
  }

  /// Rotation by θ1 - θ2.
  QRotation operator/(const QRotation& other) const noexcept {
    QRotation result;
    result.half_ = half_ - other.half_;
    return result;
  }

  /// Inverse rotation (by -θ).
  QRotation inverse() const noexcept {
    QRotation result;
    result.half_ = -half_;
    return result;
  }

  bool approxEqual(const QRotation& other, T tol) const noexcept {
    return half_.approxEqual(other.half_, tol);
  }

 private:
  QAngle<T> half_;
};

}  // namespace qclab::qgates

#pragma once

/// \file simulation.hpp
/// \brief Branching state-vector simulation results.
///
/// A mid-circuit measurement with two nonzero-probability outcomes splits
/// the simulation into branches; each branch carries its own collapsed state
/// vector, accumulated probability, and result bitstring (paper §3.3).  The
/// Simulation object exposes the per-branch results, probabilities, and
/// states, shot sampling (`counts`), and reduced states of unmeasured
/// qubits.

#include <algorithm>
#include <complex>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <string>
#include <vector>

#include "qclab/dense/ops.hpp"
#include "qclab/obs/metrics.hpp"
#include "qclab/obs/trace.hpp"
#include "qclab/random/rng.hpp"
#include "qclab/sim/kernels.hpp"
#include "qclab/sim/state_buffer.hpp"
#include "qclab/util/bitstring.hpp"
#include "qclab/util/errors.hpp"

namespace qclab {

/// Creates the 2^n state vector of the basis state given by `bits`
/// ("00", "010", ...; character k = value of qubit k).
template <typename T>
std::vector<std::complex<T>> basisState(const std::string& bits) {
  util::require(!bits.empty(), "empty bitstring");
  const auto index = util::bitstringToIndex(bits);
  std::vector<std::complex<T>> state(std::size_t{1} << bits.size());
  state[index] = std::complex<T>(1);
  return state;
}

/// Extracts the state of the qubits *not* listed in `knownQubits` from
/// `state`, given that the known qubits are in the basis state described by
/// `knownValues` (paper §5.1, reducedStatevector).  Throws if the state is
/// inconsistent with that assumption (the extracted part would not carry
/// all of the norm), i.e. if the known qubits are entangled with the rest
/// or in a different basis state.
template <typename T, typename State>
std::vector<std::complex<T>> reducedStatevector(
    const State& state,
    const std::vector<int>& knownQubits, const std::string& knownValues,
    T tol = T(1e4) * std::numeric_limits<T>::epsilon()) {
  util::require(util::isPowerOfTwo(state.size()), "state size not 2^n");
  const int nbQubits = util::log2PowerOfTwo(state.size());
  util::require(knownQubits.size() == knownValues.size(),
                "knownQubits/knownValues length mismatch");
  util::require(util::isBitstring(knownValues), "knownValues not a bitstring");
  const int k = static_cast<int>(knownQubits.size());
  util::require(k <= nbQubits, "more known qubits than register qubits");

  // Bit positions of the known qubits, with their fixed values; ascending
  // for insertBit.
  std::vector<std::pair<int, util::index_t>> fixed(knownQubits.size());
  for (int i = 0; i < k; ++i) {
    util::checkQubit(knownQubits[i], nbQubits);
    fixed[static_cast<std::size_t>(i)] = {
        util::bitPosition(knownQubits[i], nbQubits),
        static_cast<util::index_t>(knownValues[static_cast<std::size_t>(i)] -
                                   '0')};
  }
  std::sort(fixed.begin(), fixed.end());
  for (std::size_t i = 1; i < fixed.size(); ++i) {
    util::require(fixed[i].first != fixed[i - 1].first,
                  "duplicate known qubit");
  }

  const std::size_t reducedDim = std::size_t{1} << (nbQubits - k);
  std::vector<std::complex<T>> reduced(reducedDim);
  for (util::index_t r = 0; r < reducedDim; ++r) {
    util::index_t full = r;
    for (const auto& [pos, value] : fixed) {
      full = util::insertBit(full, pos, value);
    }
    reduced[r] = state[full];
  }

  const T fullNorm = dense::norm2(state);
  const T partNorm = dense::norm2(reduced);
  util::require(std::abs(partNorm - fullNorm) <= tol * std::max<T>(T(1), fullNorm),
                "state is not consistent with the given known-qubit values "
                "(entangled or different outcome)");
  // Renormalize exactly.
  if (partNorm > T(0)) {
    const T scale = T(1) / partNorm;
    for (auto& amplitude : reduced) amplitude *= scale;
  }
  return reduced;
}

/// Samples `shots` computational-basis measurements of the listed qubits
/// directly from the amplitudes of `state` (MSB-first outcome ordering,
/// zero-probability outcomes included with count 0).  This is the fast
/// path for *terminal* measurements: no collapse, no branch explosion —
/// sampling 20 measured qubits costs O(2^n + shots) instead of the up-to
/// 2^20 branches the Measurement-object route would track.
template <typename State>
std::vector<std::uint64_t> sampleStateCounts(
    const State& state, const std::vector<int>& qubits,
    std::uint64_t shots, random::Rng& rng) {
  util::require(util::isPowerOfTwo(state.size()), "state size not 2^n");
  const int nbQubits = util::log2PowerOfTwo(state.size());
  const int m = static_cast<int>(qubits.size());
  util::require(m >= 1, "sampleStateCounts needs at least one qubit");
  util::require(m <= 26, "counts vector would exceed 2^26 entries");
  std::vector<int> positions(static_cast<std::size_t>(m));
  for (int b = 0; b < m; ++b) {
    util::checkQubit(qubits[static_cast<std::size_t>(b)], nbQubits);
    positions[static_cast<std::size_t>(b)] =
        util::bitPosition(qubits[static_cast<std::size_t>(b)], nbQubits);
  }
  obs::metrics().countShots(shots);
  // Marginal outcome distribution.
  std::vector<double> weights(std::size_t{1} << m, 0.0);
  for (std::size_t i = 0; i < state.size(); ++i) {
    util::index_t outcome = 0;
    for (int b = 0; b < m; ++b) {
      outcome = (outcome << 1) |
                util::getBit(i, positions[static_cast<std::size_t>(b)]);
    }
    weights[outcome] += static_cast<double>(std::norm(state[i]));
  }
  return rng.multinomial(shots, weights);
}

/// sampleStateCounts over the full register.
template <typename State>
std::vector<std::uint64_t> sampleStateCounts(
    const State& state, std::uint64_t shots,
    random::Rng& rng) {
  util::require(util::isPowerOfTwo(state.size()), "state size not 2^n");
  const int nbQubits = util::log2PowerOfTwo(state.size());
  std::vector<int> qubits(static_cast<std::size_t>(nbQubits));
  for (int q = 0; q < nbQubits; ++q) qubits[static_cast<std::size_t>(q)] = q;
  return sampleStateCounts(state, qubits, shots, rng);
}

/// One simulation branch.
template <typename T>
struct Branch {
  sim::StateBuffer<T> state;  ///< collapsed state (tiered storage)
  double probability = 1.0;   ///< accumulated branch probability
  std::string result;                  ///< recorded outcomes, in order
  /// (qubit, outcome) per recorded measurement, in order.
  std::vector<std::pair<int, int>> measurements;
};

/// Result of simulating a circuit: one branch per observed combination of
/// measurement outcomes.
template <typename T>
class Simulation {
 public:
  Simulation() = default;

  /// Starts a simulation with a single branch holding `state` (a plain
  /// vector converts implicitly into a heap-tier StateBuffer).
  Simulation(int nbQubits, sim::StateBuffer<T> state)
      : nbQubits_(nbQubits) {
    Branch<T> root;
    root.state = std::move(state);
    branches_.push_back(std::move(root));
    retrackStateBytes();
  }

  // Branch state vectors are attributed to obs::metrics() live-memory
  // accounting, so ownership transfers must move the attribution along
  // and copies must attribute their own bytes.
  ~Simulation() { obs::metrics().releaseStateBytes(trackedStateBytes_); }

  Simulation(const Simulation& other)
      : nbQubits_(other.nbQubits_), branches_(other.branches_) {
    retrackStateBytes();
  }

  Simulation(Simulation&& other) noexcept
      : nbQubits_(other.nbQubits_),
        branches_(std::move(other.branches_)),
        trackedStateBytes_(other.trackedStateBytes_) {
    other.branches_.clear();
    other.trackedStateBytes_ = 0;
  }

  Simulation& operator=(const Simulation& other) {
    if (this != &other) {
      nbQubits_ = other.nbQubits_;
      branches_ = other.branches_;
      retrackStateBytes();
    }
    return *this;
  }

  Simulation& operator=(Simulation&& other) noexcept {
    if (this != &other) {
      obs::metrics().releaseStateBytes(trackedStateBytes_);
      nbQubits_ = other.nbQubits_;
      branches_ = std::move(other.branches_);
      trackedStateBytes_ = other.trackedStateBytes_;
      other.branches_.clear();
      other.trackedStateBytes_ = 0;
    }
    return *this;
  }

  /// Re-attributes the current branch-state footprint to the obs
  /// live-memory accounting (current + high-water state bytes).  Called by
  /// the simulators after branch spawn/prune; a no-op under
  /// QCLAB_OBS_DISABLED.
  void retrackStateBytes() {
    if constexpr (obs::kEnabled) {
      std::uint64_t now = 0;
      for (const auto& branch : branches_) {
        now += static_cast<std::uint64_t>(branch.state.size()) *
               sizeof(std::complex<T>);
      }
      if (now >= trackedStateBytes_) {
        obs::metrics().addStateBytes(now - trackedStateBytes_);
      } else {
        obs::metrics().releaseStateBytes(trackedStateBytes_ - now);
      }
      trackedStateBytes_ = now;
    }
  }

  /// Number of register qubits.
  int nbQubits() const noexcept { return nbQubits_; }

  /// All live branches.
  const std::vector<Branch<T>>& branches() const noexcept { return branches_; }
  std::vector<Branch<T>>& branches() noexcept { return branches_; }

  /// Number of branches.
  std::size_t nbBranches() const noexcept { return branches_.size(); }

  /// Result bitstring per branch, in branch order (paper: simulation.results).
  std::vector<std::string> results() const {
    std::vector<std::string> r;
    r.reserve(branches_.size());
    for (const auto& b : branches_) r.push_back(b.result);
    return r;
  }

  /// Probability per branch (paper: simulation.probabilities).
  std::vector<double> probabilities() const {
    std::vector<double> p;
    p.reserve(branches_.size());
    for (const auto& b : branches_) p.push_back(b.probability);
    return p;
  }

  /// Final state vector per branch (paper: simulation.states).
  std::vector<std::vector<std::complex<T>>> states() const {
    std::vector<std::vector<std::complex<T>>> s;
    s.reserve(branches_.size());
    for (const auto& b : branches_) s.push_back(b.state.toVector());
    return s;
  }

  /// Result bitstring of branch `i`.
  const std::string& result(std::size_t i) const { return branches_.at(i).result; }
  /// Probability of branch `i`.
  double probability(std::size_t i) const { return branches_.at(i).probability; }
  /// Final state vector of branch `i` (reference stays valid as long as the
  /// Simulation lives — prefer this over states()[i]).  Heap tier only
  /// (the default); a state that lives on the NUMA/mmap tier must be
  /// read through stateBuffer(i) instead.
  const std::vector<std::complex<T>>& state(std::size_t i) const {
    return branches_.at(i).state.vector();
  }

  /// Tiered state buffer of branch `i` — works on every tier.
  const sim::StateBuffer<T>& stateBuffer(std::size_t i) const {
    return branches_.at(i).state;
  }

  /// Number of recorded measurements (equal across branches).
  std::size_t nbMeasurements() const {
    return branches_.empty() ? 0 : branches_.front().result.size();
  }

  /// Simulated outcome frequencies over `shots` repetitions, as a dense
  /// vector indexed by the result bitstring value (paper §5.2: for one
  /// measured qubit, entry 0 = frequency of '0', entry 1 = frequency of
  /// '1').  Zero-probability outcomes are included with count 0.
  std::vector<std::uint64_t> counts(std::uint64_t shots,
                                    random::Rng& rng) const {
    const obs::ScopedSpan span("sample/counts", "stage");
    const std::size_t m = nbMeasurements();
    util::require(m <= 26, "counts vector would exceed 2^26 entries; use "
                           "countsMap for many measurements");
    for (const auto& b : branches_) {
      util::require(b.result.size() == m,
                    "branches disagree on measurement count");
    }
    obs::metrics().countShots(shots);
    if (m == 0) {
      // No measurements: every shot yields the trivial outcome.
      return {shots};
    }
    std::vector<double> weights(std::size_t{1} << m, 0.0);
    for (const auto& b : branches_) {
      weights[util::bitstringToIndex(b.result)] += b.probability;
    }
    return rng.multinomial(shots, weights);
  }

  /// counts() with a fresh generator seeded by `seed` (mirrors MATLAB's
  /// rng(seed) followed by counts).
  std::vector<std::uint64_t> counts(std::uint64_t shots,
                                    std::uint64_t seed = 0) const {
    random::Rng rng(seed);
    return counts(shots, rng);
  }

  /// Simulated outcome frequencies keyed by result bitstring; scales to any
  /// number of measurements.  Only observed (nonzero-probability) outcomes
  /// appear.
  std::map<std::string, std::uint64_t> countsMap(std::uint64_t shots,
                                                 random::Rng& rng) const {
    const obs::ScopedSpan span("sample/counts", "stage");
    obs::metrics().countShots(shots);
    std::vector<double> weights;
    weights.reserve(branches_.size());
    for (const auto& b : branches_) weights.push_back(b.probability);
    const auto perBranch = rng.multinomial(shots, weights);
    std::map<std::string, std::uint64_t> result;
    for (std::size_t i = 0; i < branches_.size(); ++i) {
      result[branches_[i].result] += perBranch[i];
    }
    return result;
  }

  /// countsMap() with a fresh generator seeded by `seed`.
  std::map<std::string, std::uint64_t> countsMap(std::uint64_t shots,
                                                 std::uint64_t seed = 0) const {
    random::Rng rng(seed);
    return countsMap(shots, rng);
  }

  /// Probability-weighted average of `perBranchValue` over the branches —
  /// the expectation of a classical post-measurement functional, e.g.
  ///   simulation.average([&](const auto& b) { return h.expectation(b.state); })
  /// gives the ensemble expectation value of an observable.
  template <typename Functional>
  double average(Functional&& perBranchValue) const {
    double sum = 0.0;
    for (const auto& branch : branches_) {
      sum += branch.probability *
             static_cast<double>(perBranchValue(branch));
    }
    return sum;
  }

  /// Reduced state of the unmeasured qubits, per branch (paper:
  /// simulation.reducedStates).  For a branch where every qubit was
  /// measured the reduced state is the scalar 1 (a single amplitude).
  std::vector<std::vector<std::complex<T>>> reducedStates() const {
    std::vector<std::vector<std::complex<T>>> reduced;
    reduced.reserve(branches_.size());
    for (const auto& b : branches_) {
      // Last recorded outcome per measured qubit.
      std::map<int, int> lastOutcome;
      for (const auto& [qubit, outcome] : b.measurements) {
        lastOutcome[qubit] = outcome;
      }
      std::vector<int> qubits;
      std::string values;
      for (const auto& [qubit, outcome] : lastOutcome) {
        qubits.push_back(qubit);
        values.push_back(static_cast<char>('0' + outcome));
      }
      reduced.push_back(reducedStatevector<T>(b.state, qubits, values));
    }
    return reduced;
  }

 private:
  int nbQubits_ = 0;
  std::vector<Branch<T>> branches_;
  /// Bytes currently attributed to obs::metrics() for this simulation.
  std::uint64_t trackedStateBytes_ = 0;
};

}  // namespace qclab

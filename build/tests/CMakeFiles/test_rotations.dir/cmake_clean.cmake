file(REMOVE_RECURSE
  "CMakeFiles/test_rotations.dir/test_rotations.cpp.o"
  "CMakeFiles/test_rotations.dir/test_rotations.cpp.o.d"
  "test_rotations"
  "test_rotations.pdb"
  "test_rotations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rotations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

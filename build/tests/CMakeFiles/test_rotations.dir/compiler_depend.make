# Empty compiler generated dependencies file for test_rotations.
# This may be replaced when dependencies are built.

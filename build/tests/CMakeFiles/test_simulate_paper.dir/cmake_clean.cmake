file(REMOVE_RECURSE
  "CMakeFiles/test_simulate_paper.dir/test_simulate_paper.cpp.o"
  "CMakeFiles/test_simulate_paper.dir/test_simulate_paper.cpp.o.d"
  "test_simulate_paper"
  "test_simulate_paper.pdb"
  "test_simulate_paper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulate_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

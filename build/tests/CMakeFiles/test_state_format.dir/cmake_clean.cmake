file(REMOVE_RECURSE
  "CMakeFiles/test_state_format.dir/test_state_format.cpp.o"
  "CMakeFiles/test_state_format.dir/test_state_format.cpp.o.d"
  "test_state_format"
  "test_state_format.pdb"
  "test_state_format[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_state_format.
# This may be replaced when dependencies are built.

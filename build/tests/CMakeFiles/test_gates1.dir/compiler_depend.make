# Empty compiler generated dependencies file for test_gates1.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_gates1.dir/test_gates1.cpp.o"
  "CMakeFiles/test_gates1.dir/test_gates1.cpp.o.d"
  "test_gates1"
  "test_gates1.pdb"
  "test_gates1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gates1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_reduced_statevector.dir/test_reduced_statevector.cpp.o"
  "CMakeFiles/test_reduced_statevector.dir/test_reduced_statevector.cpp.o.d"
  "test_reduced_statevector"
  "test_reduced_statevector.pdb"
  "test_reduced_statevector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reduced_statevector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

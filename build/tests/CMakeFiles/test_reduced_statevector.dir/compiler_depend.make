# Empty compiler generated dependencies file for test_reduced_statevector.
# This may be replaced when dependencies are built.

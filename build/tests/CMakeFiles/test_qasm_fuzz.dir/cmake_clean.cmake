file(REMOVE_RECURSE
  "CMakeFiles/test_qasm_fuzz.dir/test_qasm_fuzz.cpp.o"
  "CMakeFiles/test_qasm_fuzz.dir/test_qasm_fuzz.cpp.o.d"
  "test_qasm_fuzz"
  "test_qasm_fuzz.pdb"
  "test_qasm_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qasm_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_qasm_fuzz.
# This may be replaced when dependencies are built.

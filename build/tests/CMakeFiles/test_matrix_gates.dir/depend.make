# Empty dependencies file for test_matrix_gates.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_gates.dir/test_matrix_gates.cpp.o"
  "CMakeFiles/test_matrix_gates.dir/test_matrix_gates.cpp.o.d"
  "test_matrix_gates"
  "test_matrix_gates.pdb"
  "test_matrix_gates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_multi_controlled.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_multi_controlled.dir/test_multi_controlled.cpp.o"
  "CMakeFiles/test_multi_controlled.dir/test_multi_controlled.cpp.o.d"
  "test_multi_controlled"
  "test_multi_controlled.pdb"
  "test_multi_controlled[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_controlled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

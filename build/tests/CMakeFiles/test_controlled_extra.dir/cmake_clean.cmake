file(REMOVE_RECURSE
  "CMakeFiles/test_controlled_extra.dir/test_controlled_extra.cpp.o"
  "CMakeFiles/test_controlled_extra.dir/test_controlled_extra.cpp.o.d"
  "test_controlled_extra"
  "test_controlled_extra.pdb"
  "test_controlled_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_controlled_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

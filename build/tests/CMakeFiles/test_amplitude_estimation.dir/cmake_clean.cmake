file(REMOVE_RECURSE
  "CMakeFiles/test_amplitude_estimation.dir/test_amplitude_estimation.cpp.o"
  "CMakeFiles/test_amplitude_estimation.dir/test_amplitude_estimation.cpp.o.d"
  "test_amplitude_estimation"
  "test_amplitude_estimation.pdb"
  "test_amplitude_estimation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_amplitude_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_amplitude_estimation.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_fable.
# This may be replaced when dependencies are built.

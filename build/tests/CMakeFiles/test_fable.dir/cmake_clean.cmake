file(REMOVE_RECURSE
  "CMakeFiles/test_fable.dir/test_fable.cpp.o"
  "CMakeFiles/test_fable.dir/test_fable.cpp.o.d"
  "test_fable"
  "test_fable.pdb"
  "test_fable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

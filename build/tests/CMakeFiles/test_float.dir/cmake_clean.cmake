file(REMOVE_RECURSE
  "CMakeFiles/test_float.dir/test_float.cpp.o"
  "CMakeFiles/test_float.dir/test_float.cpp.o.d"
  "test_float"
  "test_float.pdb"
  "test_float[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_float.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

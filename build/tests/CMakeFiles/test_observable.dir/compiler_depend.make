# Empty compiler generated dependencies file for test_observable.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_observable.dir/test_observable.cpp.o"
  "CMakeFiles/test_observable.dir/test_observable.cpp.o.d"
  "test_observable"
  "test_observable.pdb"
  "test_observable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_observable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_qcircuit.
# This may be replaced when dependencies are built.

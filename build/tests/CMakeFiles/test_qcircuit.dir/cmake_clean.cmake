file(REMOVE_RECURSE
  "CMakeFiles/test_qcircuit.dir/test_qcircuit.cpp.o"
  "CMakeFiles/test_qcircuit.dir/test_qcircuit.cpp.o.d"
  "test_qcircuit"
  "test_qcircuit.pdb"
  "test_qcircuit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qcircuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_algorithms2.dir/test_algorithms2.cpp.o"
  "CMakeFiles/test_algorithms2.dir/test_algorithms2.cpp.o.d"
  "test_algorithms2"
  "test_algorithms2.pdb"
  "test_algorithms2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithms2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_algorithms2.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/repro_e5_qec.dir/repro_e5_qec.cpp.o"
  "CMakeFiles/repro_e5_qec.dir/repro_e5_qec.cpp.o.d"
  "repro_e5_qec"
  "repro_e5_qec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_e5_qec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

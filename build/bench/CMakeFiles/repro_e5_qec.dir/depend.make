# Empty dependencies file for repro_e5_qec.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fable.
# This may be replaced when dependencies are built.

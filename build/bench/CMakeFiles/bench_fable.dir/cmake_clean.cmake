file(REMOVE_RECURSE
  "CMakeFiles/bench_fable.dir/bench_fable.cpp.o"
  "CMakeFiles/bench_fable.dir/bench_fable.cpp.o.d"
  "bench_fable"
  "bench_fable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/repro_e4_grover.dir/repro_e4_grover.cpp.o"
  "CMakeFiles/repro_e4_grover.dir/repro_e4_grover.cpp.o.d"
  "repro_e4_grover"
  "repro_e4_grover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_e4_grover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

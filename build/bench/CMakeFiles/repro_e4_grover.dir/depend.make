# Empty dependencies file for repro_e4_grover.
# This may be replaced when dependencies are built.

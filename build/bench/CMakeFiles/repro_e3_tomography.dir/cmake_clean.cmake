file(REMOVE_RECURSE
  "CMakeFiles/repro_e3_tomography.dir/repro_e3_tomography.cpp.o"
  "CMakeFiles/repro_e3_tomography.dir/repro_e3_tomography.cpp.o.d"
  "repro_e3_tomography"
  "repro_e3_tomography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_e3_tomography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for repro_e3_tomography.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_stabilizer.dir/bench_stabilizer.cpp.o"
  "CMakeFiles/bench_stabilizer.dir/bench_stabilizer.cpp.o.d"
  "bench_stabilizer"
  "bench_stabilizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stabilizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

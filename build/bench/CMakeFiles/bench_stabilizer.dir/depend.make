# Empty dependencies file for bench_stabilizer.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_construct_io.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_construct_io.dir/bench_construct_io.cpp.o"
  "CMakeFiles/bench_construct_io.dir/bench_construct_io.cpp.o.d"
  "bench_construct_io"
  "bench_construct_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_construct_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_observable.dir/bench_observable.cpp.o"
  "CMakeFiles/bench_observable.dir/bench_observable.cpp.o.d"
  "bench_observable"
  "bench_observable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_observable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_observable.
# This may be replaced when dependencies are built.

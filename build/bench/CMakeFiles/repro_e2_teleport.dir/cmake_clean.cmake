file(REMOVE_RECURSE
  "CMakeFiles/repro_e2_teleport.dir/repro_e2_teleport.cpp.o"
  "CMakeFiles/repro_e2_teleport.dir/repro_e2_teleport.cpp.o.d"
  "repro_e2_teleport"
  "repro_e2_teleport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_e2_teleport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

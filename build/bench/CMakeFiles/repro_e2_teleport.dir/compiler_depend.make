# Empty compiler generated dependencies file for repro_e2_teleport.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_circuit_sim.
# This may be replaced when dependencies are built.

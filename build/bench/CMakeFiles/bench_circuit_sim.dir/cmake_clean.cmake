file(REMOVE_RECURSE
  "CMakeFiles/bench_circuit_sim.dir/bench_circuit_sim.cpp.o"
  "CMakeFiles/bench_circuit_sim.dir/bench_circuit_sim.cpp.o.d"
  "bench_circuit_sim"
  "bench_circuit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_circuit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

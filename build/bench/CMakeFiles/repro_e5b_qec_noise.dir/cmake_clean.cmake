file(REMOVE_RECURSE
  "CMakeFiles/repro_e5b_qec_noise.dir/repro_e5b_qec_noise.cpp.o"
  "CMakeFiles/repro_e5b_qec_noise.dir/repro_e5b_qec_noise.cpp.o.d"
  "repro_e5b_qec_noise"
  "repro_e5b_qec_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_e5b_qec_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

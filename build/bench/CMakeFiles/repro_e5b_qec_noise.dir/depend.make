# Empty dependencies file for repro_e5b_qec_noise.
# This may be replaced when dependencies are built.

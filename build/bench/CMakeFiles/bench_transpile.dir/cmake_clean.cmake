file(REMOVE_RECURSE
  "CMakeFiles/bench_transpile.dir/bench_transpile.cpp.o"
  "CMakeFiles/bench_transpile.dir/bench_transpile.cpp.o.d"
  "bench_transpile"
  "bench_transpile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transpile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_transpile.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/repro_e1_bell.dir/repro_e1_bell.cpp.o"
  "CMakeFiles/repro_e1_bell.dir/repro_e1_bell.cpp.o.d"
  "repro_e1_bell"
  "repro_e1_bell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_e1_bell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

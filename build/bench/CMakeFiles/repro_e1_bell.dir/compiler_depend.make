# Empty compiler generated dependencies file for repro_e1_bell.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_gate_apply.
# This may be replaced when dependencies are built.

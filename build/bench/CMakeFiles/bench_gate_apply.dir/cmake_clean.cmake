file(REMOVE_RECURSE
  "CMakeFiles/bench_gate_apply.dir/bench_gate_apply.cpp.o"
  "CMakeFiles/bench_gate_apply.dir/bench_gate_apply.cpp.o.d"
  "bench_gate_apply"
  "bench_gate_apply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gate_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

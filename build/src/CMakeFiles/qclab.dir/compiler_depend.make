# Empty compiler generated dependencies file for qclab.
# This may be replaced when dependencies are built.

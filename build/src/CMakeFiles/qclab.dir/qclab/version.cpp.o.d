src/CMakeFiles/qclab.dir/qclab/version.cpp.o: \
 /root/repo/src/qclab/version.cpp /usr/include/stdc-predef.h \
 /root/repo/src/qclab/version.hpp

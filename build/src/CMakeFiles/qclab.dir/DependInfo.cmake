
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qclab/io/layout.cpp" "src/CMakeFiles/qclab.dir/qclab/io/layout.cpp.o" "gcc" "src/CMakeFiles/qclab.dir/qclab/io/layout.cpp.o.d"
  "/root/repo/src/qclab/io/qasm_lexer.cpp" "src/CMakeFiles/qclab.dir/qclab/io/qasm_lexer.cpp.o" "gcc" "src/CMakeFiles/qclab.dir/qclab/io/qasm_lexer.cpp.o.d"
  "/root/repo/src/qclab/random/rng.cpp" "src/CMakeFiles/qclab.dir/qclab/random/rng.cpp.o" "gcc" "src/CMakeFiles/qclab.dir/qclab/random/rng.cpp.o.d"
  "/root/repo/src/qclab/util/bitstring.cpp" "src/CMakeFiles/qclab.dir/qclab/util/bitstring.cpp.o" "gcc" "src/CMakeFiles/qclab.dir/qclab/util/bitstring.cpp.o.d"
  "/root/repo/src/qclab/util/errors.cpp" "src/CMakeFiles/qclab.dir/qclab/util/errors.cpp.o" "gcc" "src/CMakeFiles/qclab.dir/qclab/util/errors.cpp.o.d"
  "/root/repo/src/qclab/version.cpp" "src/CMakeFiles/qclab.dir/qclab/version.cpp.o" "gcc" "src/CMakeFiles/qclab.dir/qclab/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libqclab.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/qclab.dir/qclab/io/layout.cpp.o"
  "CMakeFiles/qclab.dir/qclab/io/layout.cpp.o.d"
  "CMakeFiles/qclab.dir/qclab/io/qasm_lexer.cpp.o"
  "CMakeFiles/qclab.dir/qclab/io/qasm_lexer.cpp.o.d"
  "CMakeFiles/qclab.dir/qclab/random/rng.cpp.o"
  "CMakeFiles/qclab.dir/qclab/random/rng.cpp.o.d"
  "CMakeFiles/qclab.dir/qclab/util/bitstring.cpp.o"
  "CMakeFiles/qclab.dir/qclab/util/bitstring.cpp.o.d"
  "CMakeFiles/qclab.dir/qclab/util/errors.cpp.o"
  "CMakeFiles/qclab.dir/qclab/util/errors.cpp.o.d"
  "CMakeFiles/qclab.dir/qclab/version.cpp.o"
  "CMakeFiles/qclab.dir/qclab/version.cpp.o.d"
  "libqclab.a"
  "libqclab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qclab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_algorithms_gallery.dir/algorithms_gallery.cpp.o"
  "CMakeFiles/example_algorithms_gallery.dir/algorithms_gallery.cpp.o.d"
  "example_algorithms_gallery"
  "example_algorithms_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_algorithms_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_algorithms_gallery.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_tomography.dir/tomography.cpp.o"
  "CMakeFiles/example_tomography.dir/tomography.cpp.o.d"
  "example_tomography"
  "example_tomography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tomography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for example_tomography.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for example_compilers.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_compilers.dir/compilers.cpp.o"
  "CMakeFiles/example_compilers.dir/compilers.cpp.o.d"
  "example_compilers"
  "example_compilers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_sampling_methods.dir/sampling_methods.cpp.o"
  "CMakeFiles/example_sampling_methods.dir/sampling_methods.cpp.o.d"
  "example_sampling_methods"
  "example_sampling_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sampling_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

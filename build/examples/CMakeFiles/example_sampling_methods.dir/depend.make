# Empty dependencies file for example_sampling_methods.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_qft_phase_estimation.dir/qft_phase_estimation.cpp.o"
  "CMakeFiles/example_qft_phase_estimation.dir/qft_phase_estimation.cpp.o.d"
  "example_qft_phase_estimation"
  "example_qft_phase_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_qft_phase_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

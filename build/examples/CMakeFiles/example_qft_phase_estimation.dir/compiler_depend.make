# Empty compiler generated dependencies file for example_qft_phase_estimation.
# This may be replaced when dependencies are built.

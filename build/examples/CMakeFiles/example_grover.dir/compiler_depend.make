# Empty compiler generated dependencies file for example_grover.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_grover.dir/grover.cpp.o"
  "CMakeFiles/example_grover.dir/grover.cpp.o.d"
  "example_grover"
  "example_grover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_grover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_noisy_qec.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_noisy_qec.dir/noisy_qec.cpp.o"
  "CMakeFiles/example_noisy_qec.dir/noisy_qec.cpp.o.d"
  "example_noisy_qec"
  "example_noisy_qec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_noisy_qec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

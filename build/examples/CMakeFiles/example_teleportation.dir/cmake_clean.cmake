file(REMOVE_RECURSE
  "CMakeFiles/example_teleportation.dir/teleportation.cpp.o"
  "CMakeFiles/example_teleportation.dir/teleportation.cpp.o.d"
  "example_teleportation"
  "example_teleportation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_teleportation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

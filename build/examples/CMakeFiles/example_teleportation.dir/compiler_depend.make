# Empty compiler generated dependencies file for example_teleportation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_error_correction.dir/error_correction.cpp.o"
  "CMakeFiles/example_error_correction.dir/error_correction.cpp.o.d"
  "example_error_correction"
  "example_error_correction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_error_correction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

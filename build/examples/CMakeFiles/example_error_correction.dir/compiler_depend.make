# Empty compiler generated dependencies file for example_error_correction.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for example_ising_observables.
# This may be replaced when dependencies are built.

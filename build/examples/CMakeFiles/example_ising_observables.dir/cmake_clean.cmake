file(REMOVE_RECURSE
  "CMakeFiles/example_ising_observables.dir/ising_observables.cpp.o"
  "CMakeFiles/example_ising_observables.dir/ising_observables.cpp.o.d"
  "example_ising_observables"
  "example_ising_observables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ising_observables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/// \file bench_trajectory.cpp
/// \brief Trajectory runner of the bench-regression harness.
///
/// Runs each given bench/repro binary with `--obs-json <tmp>`, parses the
/// BENCH-shaped JSON every binary emits, and merges the reports into one
/// trajectory file (schema qclab-bench-trajectory-v1) suitable for
/// committing as BENCH_baseline.json or diffing with qclab_bench_compare:
///
///   qclab_bench_trajectory --label ci --out BENCH_ci.json
///       ./bench/bench_fusion "./bench/repro_e4_grover --quick"
///
/// Each positional argument is a shell command; the runner appends the
/// --obs-json flag and redirects the bench's own stdout/stderr to
/// <out>.log so the trajectory stays the single machine-readable artifact.
/// Exits nonzero when a bench fails or emits unparsable JSON.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "qclab/obs/benchjson.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: qclab_bench_trajectory --label <label> --out <file.json>\n"
      "                              [--log <file.log>] <bench-cmd>...\n");
  return 2;
}

std::string readFile(const std::string& path, bool& ok) {
  std::ifstream file(path);
  if (!file) {
    ok = false;
    return "";
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  ok = true;
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "trajectory";
  std::string outPath;
  std::string logPath;
  std::vector<std::string> commands;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      outPath = argv[++i];
    } else if (arg == "--log" && i + 1 < argc) {
      logPath = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      commands.push_back(arg);
    }
  }
  if (outPath.empty() || commands.empty()) return usage();
  if (logPath.empty()) logPath = outPath + ".log";

  // Start the log fresh; each bench appends.
  { std::ofstream log(logPath); }

  std::vector<qclab::obs::benchjson::JsonValue> reports;
  for (std::size_t i = 0; i < commands.size(); ++i) {
    const std::string partPath =
        outPath + ".part" + std::to_string(i) + ".json";
    const std::string command = commands[i] + " --obs-json \"" + partPath +
                                "\" >> \"" + logPath + "\" 2>&1";
    std::fprintf(stderr, "[%zu/%zu] %s\n", i + 1, commands.size(),
                 commands[i].c_str());
    const int status = std::system(command.c_str());
    if (status != 0) {
      std::fprintf(stderr, "error: bench failed (exit %d): %s\n", status,
                   commands[i].c_str());
      return 1;
    }
    bool ok = false;
    const std::string text = readFile(partPath, ok);
    if (!ok) {
      std::fprintf(stderr, "error: bench wrote no obs JSON: %s\n",
                   partPath.c_str());
      return 1;
    }
    try {
      reports.push_back(qclab::obs::benchjson::parseJson(text));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s: %s\n", partPath.c_str(),
                   error.what());
      return 1;
    }
    std::remove(partPath.c_str());
  }

  const auto trajectory =
      qclab::obs::benchjson::mergeTrajectory(label, std::move(reports));
  std::ofstream out(outPath);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", outPath.c_str());
    return 1;
  }
  out << qclab::obs::benchjson::dumpJson(trajectory) << "\n";
  std::fprintf(stderr, "wrote %s (%zu benches)\n", outPath.c_str(),
               commands.size());
  return 0;
}

/// \file bench_compare.cpp
/// \brief Baseline comparator of the bench-regression harness.
///
/// Diffs a current trajectory (qclab_bench_trajectory output) against the
/// committed baseline and fails — exit 1 — when any gated timing regressed
/// beyond the tolerance or disappeared:
///
///   qclab_bench_compare --tolerance 0.25 BENCH_baseline.json BENCH_ci.json
///
/// A timing regresses when current > baseline * (1 + tolerance); it is an
/// improvement when current < baseline / (1 + tolerance).  Improvements
/// and new timings never fail the gate (regenerate the baseline to adopt
/// them — see README "Updating the baseline").

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "qclab/obs/benchjson.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: qclab_bench_compare [--tolerance <frac>] "
               "<baseline.json> <current.json>\n");
  return 2;
}

bool readJson(const std::string& path,
              qclab::obs::benchjson::JsonValue& value) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  try {
    value = qclab::obs::benchjson::parseJson(buffer.str());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.what());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.25;
  std::string baselinePath;
  std::string currentPath;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (baselinePath.empty()) {
      baselinePath = arg;
    } else if (currentPath.empty()) {
      currentPath = arg;
    } else {
      return usage();
    }
  }
  if (currentPath.empty()) return usage();

  qclab::obs::benchjson::JsonValue baseline;
  qclab::obs::benchjson::JsonValue current;
  if (!readJson(baselinePath, baseline) || !readJson(currentPath, current)) {
    return 2;
  }

  qclab::obs::benchjson::CompareOutcome outcome;
  try {
    outcome = qclab::obs::benchjson::compareTrajectories(baseline, current,
                                                         tolerance);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }

  std::printf("%-52s %14s %14s %8s  %s\n", "timing", "baseline", "current",
              "ratio", "verdict");
  for (const auto& row : outcome.rows) {
    if (row.ratio > 0.0) {
      std::printf("%-52s %14.1f %14.1f %8.3f  %s\n", row.name.c_str(),
                  row.baseline, row.current, row.ratio,
                  qclab::obs::benchjson::verdictName(row.verdict));
    } else {
      std::printf("%-52s %14.1f %14.1f %8s  %s\n", row.name.c_str(),
                  row.baseline, row.current, "-",
                  qclab::obs::benchjson::verdictName(row.verdict));
    }
  }
  std::printf(
      "summary: %zu timings, %d regressions, %d improvements, %d missing "
      "(tolerance %.0f%%)\n",
      outcome.rows.size(), outcome.regressions, outcome.improvements,
      outcome.missing, tolerance * 100.0);

  if (outcome.failed()) {
    // Failure diagnosis: one line per failed timing with the slowdown and
    // the bench's roofline classification (v3 reports), so the log says
    // whether to chase bandwidth or arithmetic before anyone reruns
    // locally.  The current run's classification wins — it reflects the
    // machine that just regressed — with the baseline's as fallback.
    auto classifications =
        qclab::obs::benchjson::benchClassifications(current);
    for (const auto& [bench, kind] :
         qclab::obs::benchjson::benchClassifications(baseline)) {
      classifications.emplace(bench, kind);
    }
    std::fprintf(stderr, "bench gate FAILED:\n");
    for (const auto& row : outcome.rows) {
      const bool failedRow =
          row.verdict == qclab::obs::benchjson::Verdict::kRegression ||
          row.verdict == qclab::obs::benchjson::Verdict::kMissing;
      if (!failedRow) continue;
      const std::string bench = row.name.substr(0, row.name.find('/'));
      const auto hit = classifications.find(bench);
      const std::string kind =
          hit != classifications.end() ? hit->second : "unclassified";
      if (row.verdict == qclab::obs::benchjson::Verdict::kMissing) {
        std::fprintf(stderr,
                     "  MISSING    %s: present in baseline (%.1f), absent "
                     "from current run [%s workload]\n",
                     row.name.c_str(), row.baseline, kind.c_str());
      } else {
        std::fprintf(stderr,
                     "  REGRESSION %s: %.3fx baseline (%.1f -> %.1f, "
                     "tolerance %.2fx) [%s workload]\n",
                     row.name.c_str(), row.ratio, row.baseline, row.current,
                     1.0 + tolerance, kind.c_str());
      }
    }
  }
  return outcome.failed() ? 1 : 0;
}

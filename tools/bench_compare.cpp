/// \file bench_compare.cpp
/// \brief Baseline comparator of the bench-regression harness.
///
/// Diffs a current trajectory (qclab_bench_trajectory output) against the
/// committed baseline and fails — exit 1 — when any gated timing regressed
/// beyond the tolerance or disappeared:
///
///   qclab_bench_compare --tolerance 0.25 BENCH_baseline.json BENCH_ci.json
///
/// A timing regresses when current > baseline * (1 + tolerance); it is an
/// improvement when current < baseline / (1 + tolerance).  Improvements
/// and new timings never fail the gate (regenerate the baseline to adopt
/// them — see README "Updating the baseline").

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "qclab/obs/benchjson.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: qclab_bench_compare [--tolerance <frac>] "
               "<baseline.json> <current.json>\n");
  return 2;
}

bool readJson(const std::string& path,
              qclab::obs::benchjson::JsonValue& value) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  try {
    value = qclab::obs::benchjson::parseJson(buffer.str());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.what());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.25;
  std::string baselinePath;
  std::string currentPath;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (baselinePath.empty()) {
      baselinePath = arg;
    } else if (currentPath.empty()) {
      currentPath = arg;
    } else {
      return usage();
    }
  }
  if (currentPath.empty()) return usage();

  qclab::obs::benchjson::JsonValue baseline;
  qclab::obs::benchjson::JsonValue current;
  if (!readJson(baselinePath, baseline) || !readJson(currentPath, current)) {
    return 2;
  }

  qclab::obs::benchjson::CompareOutcome outcome;
  try {
    outcome = qclab::obs::benchjson::compareTrajectories(baseline, current,
                                                         tolerance);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }

  std::printf("%-52s %14s %14s %8s  %s\n", "timing", "baseline", "current",
              "ratio", "verdict");
  for (const auto& row : outcome.rows) {
    if (row.ratio > 0.0) {
      std::printf("%-52s %14.1f %14.1f %8.3f  %s\n", row.name.c_str(),
                  row.baseline, row.current, row.ratio,
                  qclab::obs::benchjson::verdictName(row.verdict));
    } else {
      std::printf("%-52s %14.1f %14.1f %8s  %s\n", row.name.c_str(),
                  row.baseline, row.current, "-",
                  qclab::obs::benchjson::verdictName(row.verdict));
    }
  }
  std::printf(
      "summary: %zu timings, %d regressions, %d improvements, %d missing "
      "(tolerance %.0f%%)\n",
      outcome.rows.size(), outcome.regressions, outcome.improvements,
      outcome.missing, tolerance * 100.0);
  return outcome.failed() ? 1 : 0;
}

/// \file metrics_dump.cpp
/// \brief OpenMetrics exposition CLI of the observability layer.
///
/// Runs a workload through the metered pipeline and prints the resulting
/// registries in OpenMetrics text format (obs/openmetrics.hpp) — the same
/// surface the ROADMAP's circuit-as-a-service daemon will expose over
/// HTTP, usable today for piping into promtool or a textfile collector:
///
///   qclab_metrics_dump                        # built-in demo workload
///   qclab_metrics_dump --qasm circuit.qasm    # parse + simulate a file
///   qclab_metrics_dump --delta                # per-workload increments
///   qclab_metrics_dump --out metrics.prom     # write instead of stdout
///
/// --delta demonstrates the scrape API: a snapshot is captured before the
/// workload and the rendered exposition carries only the increments since
/// (snapshotDelta), the pattern a periodic scraper follows.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "qclab/qclab.hpp"

namespace {

using T = double;

int usage() {
  std::fprintf(stderr,
               "usage: qclab_metrics_dump [--qasm <file>] [--out <file>] "
               "[--delta] [--shots <count>]\n");
  return 2;
}

/// Built-in demo: a fused GHZ simulate, a sampled Grover run, and a small
/// batched parameter sweep — enough to populate counters, histograms,
/// stages, the qclab_batch_* families, and (where the host PMU allows)
/// perf families across several kernel paths.
void demoWorkload(std::uint64_t shots) {
  const qclab::obs::InstrumentedBackend<T> backend;
  {
    qclab::QCircuit<T> circuit(12);
    circuit.push_back(std::make_unique<qclab::qgates::Hadamard<T>>(0));
    for (int q = 1; q < 12; ++q) {
      circuit.push_back(
          std::make_unique<qclab::qgates::CNOT<T>>(q - 1, q));
    }
    qclab::SimulateOptions options;
    options.fusion = true;
    auto simulation = circuit.simulate(std::string(12, '0'), options,
                                       backend);
  }
  {
    const auto grover = qclab::algorithms::grover<T>(
        "111", qclab::algorithms::groverIterations(3));
    auto simulation = grover.simulate("000", backend);
    auto counts = simulation.countsMap(shots);
  }
  {
    qclab::QCircuit<T> sweep(4);
    for (int q = 0; q < 4; ++q) {
      sweep.push_back(std::make_unique<qclab::qgates::RotationY<T>>(q, 0.0));
    }
    for (int q = 1; q < 4; ++q) {
      sweep.push_back(std::make_unique<qclab::qgates::CNOT<T>>(q - 1, q));
    }
    std::vector<std::vector<T>> parameterSets;
    for (int member = 0; member < 4; ++member) {
      parameterSets.push_back(
          {0.1 * member, 0.2 * member, 0.3 * member, 0.4 * member});
    }
    auto simulations = sweep.simulateBatch(parameterSets);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string qasmPath;
  std::string outPath;
  bool delta = false;
  std::uint64_t shots = 1024;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--qasm" && i + 1 < argc) {
      qasmPath = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      outPath = argv[++i];
    } else if (arg == "--delta") {
      delta = true;
    } else if (arg == "--shots" && i + 1 < argc) {
      shots = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return usage();
    }
  }

  // A crashing workload (bad QASM input, kernel bug) should still leave a
  // qclab-crash-<pid>.json behind for diagnosis.
  qclab::obs::installCrashHandlers();
  qclab::obs::perfRegistry().enable();
  const qclab::obs::ObsSnapshot before = qclab::obs::captureSnapshot();

  if (qasmPath.empty()) {
    demoWorkload(shots);
  } else {
    std::ifstream file(qasmPath);
    if (!file) {
      std::fprintf(stderr, "error: cannot read %s\n", qasmPath.c_str());
      return 1;
    }
    std::ostringstream source;
    source << file.rdbuf();
    try {
      const auto circuit = qclab::io::parseQasm<T>(source.str());
      const qclab::obs::InstrumentedBackend<T> backend;
      auto simulation = circuit.simulate(
          std::string(static_cast<std::size_t>(circuit.nbQubits()), '0'),
          backend);
      auto counts = simulation.countsMap(shots);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s: %s\n", qasmPath.c_str(),
                   error.what());
      return 1;
    }
  }

  const std::string exposition =
      delta ? qclab::obs::renderOpenMetrics(qclab::obs::snapshotDelta(before))
            : qclab::obs::renderOpenMetrics();

  if (outPath.empty()) {
    std::fputs(exposition.c_str(), stdout);
    return 0;
  }
  std::ofstream out(outPath);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", outPath.c_str());
    return 1;
  }
  out << exposition;
  return 0;
}

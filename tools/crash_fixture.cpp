/// \file crash_fixture.cpp
/// \brief CI fixture that dies mid-circuit to exercise the crash handler.
///
/// Installs the obs v4 crash handlers, simulates a few GHZ layers through
/// the instrumented backend (so the flight recorder, stage spans, and
/// counters hold real data), then kills itself the way the smoke test
/// asks:
///
///   qclab_crash_fixture segv       # write through a null pointer
///   qclab_crash_fixture abort      # std::abort mid-run
///   qclab_crash_fixture fpe        # raise SIGFPE
///   qclab_crash_fixture terminate  # uncaught exception -> std::terminate
///   qclab_crash_fixture dump       # obs::dumpNow() then exit 0
///
/// The CI crash-smoke job runs the segv mode, expects a nonzero
/// (signal-fatal) exit status, and asserts the qclab-crash-<pid>.json
/// left in QCLAB_OBS_CRASH_DIR is well-formed.  The `dump` mode is the
/// graceful path: same JSON, clean exit, for testing without a corpse.

#include <cstdio>
#include <cstring>
#include <csignal>
#include <memory>
#include <stdexcept>
#include <string>

#include "qclab/qclab.hpp"

namespace {

using T = double;

/// Builds flight-recorder and counter state worth dumping.
void simulateSomething() {
  const qclab::obs::InstrumentedBackend<T> backend;
  qclab::QCircuit<T> circuit(10);
  circuit.push_back(std::make_unique<qclab::qgates::Hadamard<T>>(0));
  for (int q = 1; q < 10; ++q) {
    circuit.push_back(std::make_unique<qclab::qgates::CNOT<T>>(q - 1, q));
  }
  auto simulation = circuit.simulate(std::string(10, '0'), backend);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "segv";
  if (!qclab::obs::installCrashHandlers()) {
    std::fprintf(stderr,
                 "crash_fixture: crash handlers unavailable in this build "
                 "(QCLAB_OBS_DISABLED or non-POSIX)\n");
    // The smoke test should skip, not fail, on such builds.
    return 77;
  }

  simulateSomething();
  std::fprintf(stderr, "crash_fixture: circuit done, dying via '%s'\n",
               mode.c_str());
  std::fflush(nullptr);

  if (mode == "segv") {
    volatile int* null = nullptr;
    *null = 42;  // SIGSEGV
  } else if (mode == "abort") {
    std::abort();
  } else if (mode == "fpe") {
    std::raise(SIGFPE);
  } else if (mode == "terminate") {
    throw std::runtime_error("crash_fixture: uncaught on purpose");
  } else if (mode == "dump") {
    if (!qclab::obs::dumpNow()) {
      std::fprintf(stderr, "crash_fixture: dumpNow failed\n");
      return 1;
    }
    return 0;
  } else {
    std::fprintf(stderr, "crash_fixture: unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  return 3;  // a fatal mode survived — the smoke test treats this as failure
}
